// Benchmark harness: one benchmark per evaluation artifact (Fig. 6 and
// Table 1 of the paper) plus the ablation studies DESIGN.md schedules
// (A1–A5) and end-to-end micro-benchmarks of the two update paths.
//
// The paper's metric is message traffic, not wall-clock time, so each
// experiment benchmark reports correspondences-per-update (and related
// shape metrics) through b.ReportMetric; wall-clock ns/op additionally
// measures the simulation cost itself. Absolute counts for the default
// configuration are recorded in EXPERIMENTS.md; `go test -bench .`
// regenerates them.
package avdb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avdb/internal/cluster"
	"avdb/internal/experiment"
	"avdb/internal/site"
	"avdb/internal/storage"
	"avdb/internal/strategy"
	"avdb/internal/trace"
	"avdb/internal/transport"
	"avdb/internal/transport/tcpnet"
	"avdb/internal/wire"
)

// benchCfg is a Fig.6-shaped configuration sized so one iteration is a
// full (but quick) experiment run.
func benchCfg() experiment.Config {
	return experiment.Config{
		Sites:         3,
		Items:         100,
		InitialAmount: 1000,
		Updates:       5000,
		Checkpoint:    1000,
		Seed:          1,
	}
}

// BenchmarkFig6Proposed regenerates the proposed curve of Fig. 6.
func BenchmarkFig6Proposed(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunProposed(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Total.Last())/float64(cfg.Updates), "corr/update")
		b.ReportMetric(res.LocalFraction*100, "%local")
	}
}

// BenchmarkFig6Conventional regenerates the conventional curve of Fig. 6.
func BenchmarkFig6Conventional(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunConventional(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Total.Last())/float64(cfg.Updates), "corr/update")
	}
}

// BenchmarkFig6Reduction runs both systems and reports the headline
// number the paper quotes (~75% fewer correspondences).
func BenchmarkFig6Reduction(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionPct, "%reduction")
	}
}

// BenchmarkTable1PerSite regenerates Table 1 and reports the retailer
// fairness ratio (paper: "almost same between site 1 and site 2").
func BenchmarkTable1PerSite(b *testing.B) {
	cfg := benchCfg()
	cfg.Checkpoint = 1000
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s1 := float64(res.PerSite[1].Last())
		s2 := float64(res.PerSite[2].Last())
		if s2 > 0 {
			b.ReportMetric(s1/s2, "site1/site2")
		}
		b.ReportMetric(s1/float64(cfg.Updates), "site1-corr/update")
	}
}

// BenchmarkAblationDeciding (A1) compares donor policies.
func BenchmarkAblationDeciding(b *testing.B) {
	for _, d := range []strategy.Decider{
		strategy.GrantHalf{}, strategy.GrantExact{}, strategy.GrantAll{}, strategy.GrantGenerous{},
	} {
		b.Run(d.Name(), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Updates = 3000
			cfg.Policy = strategy.Policy{Selector: strategy.MaxKnown{}, Decider: d}
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunProposed(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Total.Last())/float64(cfg.Updates), "corr/update")
				b.ReportMetric(float64(res.Failures), "failures")
			}
		})
	}
}

// BenchmarkAblationSelecting (A2) compares target-selection policies.
func BenchmarkAblationSelecting(b *testing.B) {
	selectors := []func() strategy.Selector{
		func() strategy.Selector { return strategy.MaxKnown{} },
		func() strategy.Selector { return strategy.RandomSelect{} },
		func() strategy.Selector { return &strategy.RoundRobin{} },
	}
	for _, mk := range selectors {
		b.Run(mk().Name(), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Updates = 3000
			for i := 0; i < b.N; i++ {
				cfg.Policy = strategy.Policy{Selector: mk(), Decider: strategy.GrantHalf{}}
				res, err := experiment.RunProposed(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Total.Last())/float64(cfg.Updates), "corr/update")
			}
		})
	}
}

// BenchmarkAblationGossip (A7) measures what the piggybacked AV view
// buys the max-known selector.
func BenchmarkAblationGossip(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run("gossip="+name, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Updates = 3000
			cfg.DisableGossip = disable
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunProposed(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Total.Last())/float64(cfg.Updates), "corr/update")
			}
		})
	}
}

// BenchmarkScalingSites (A3) holds per-site load constant while the
// system grows.
func BenchmarkScalingSites(b *testing.B) {
	for _, sites := range []int{3, 5, 9} {
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Sites = sites
			cfg.Updates = 1000 * sites
			cfg.Checkpoint = cfg.Updates / 5
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunProposed(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Total.Last())/float64(cfg.Updates), "corr/update")
			}
		})
	}
}

// BenchmarkImmediateMix (A5) sweeps the non-regular share.
func BenchmarkImmediateMix(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("nonregular=%.1f", frac), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Updates = 2000
			cfg.NonRegularFraction = frac
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunProposed(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Total.Last())/float64(cfg.Updates), "corr/update")
			}
		})
	}
}

// BenchmarkFaultToleranceDelay (A4) measures availability at an
// isolated retailer.
func BenchmarkFaultToleranceDelay(b *testing.B) {
	cfg := benchCfg()
	cfg.Updates = 1000
	cfg.InitialAmount = 5000
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFault(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(res.DelayOK)/float64(res.DelayTotal), "%delay-avail")
		b.ReportMetric(100*float64(res.ImmediateOK)/float64(res.ImmediateTotal), "%immediate-avail")
	}
}

// BenchmarkLatencyStudy (A6) measures update latency distributions
// under injected network delay and reports the p50s.
func BenchmarkLatencyStudy(b *testing.B) {
	cfg := experiment.LatencyConfig{
		Config: experiment.Config{Updates: 500, Items: 20, Checkpoint: 100,
			InitialAmount: 1000, NonRegularFraction: 0.2, Seed: 1},
		OneWay: 2 * 1000 * 1000, // 2ms in ns
	}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLatency(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DelayLocal.Percentile(50).Microseconds()), "local-p50-us")
		b.ReportMetric(float64(res.Conventional.Percentile(50).Microseconds()), "conv-p50-us")
	}
}

// BenchmarkDelayUpdateLocal measures the end-to-end latency of the
// zero-communication path through the public API.
func BenchmarkDelayUpdateLocal(b *testing.B) {
	c, err := New(Config{Sites: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.AddProduct(Product{Key: "k", Amount: 1 << 50, Class: Regular}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Update(ctx, 1, "k", -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayUpdateWithTransfer measures an update that always needs
// one AV transfer round trip.
func BenchmarkDelayUpdateWithTransfer(b *testing.B) {
	c, err := New(Config{Sites: 2, Decider: "exact"})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// All AV lives at site 0, so every site-1 decrement must fetch.
	if err := c.AddProductAV(Product{Key: "k", Amount: 1 << 50, Class: Regular},
		[]int64{1 << 50, 0}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Update(ctx, 1, "k", -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImmediateUpdate measures the 2PC path through the public API.
func BenchmarkImmediateUpdate(b *testing.B) {
	c, err := New(Config{Sites: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.AddProduct(Product{Key: "k", Amount: 1 << 50, Class: NonRegular}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Update(ctx, 1, "k", -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead compares the Delay-Update fast path (local AV
// spend, zero communication) with tracing absent, present-but-disabled,
// and enabled. The "untraced" and "disabled" numbers should be within
// noise of each other: a disabled tracer costs one atomic load per
// would-be span.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, tr *trace.Tracer) {
		c, err := cluster.New(cluster.Config{
			Sites: 3, Items: 1, InitialAmount: 1 << 50, Tracer: tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		key := c.RegularKeys[0]
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Update(ctx, 1, key, -1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, nil) })
	b.Run("disabled", func(b *testing.B) {
		tr := trace.New(trace.DefaultCapacity)
		tr.SetEnabled(false)
		run(b, tr)
	})
	b.Run("enabled", func(b *testing.B) { run(b, trace.New(trace.DefaultCapacity)) })
}

// BenchmarkLocalDecrementParallel drives concurrent Delay Updates into
// ONE site across many keys — the zero-communication fast path under
// multi-client load. With the striped storage/lock/AV tables this
// scales with GOMAXPROCS; compare against -cpu=1 for the speedup.
func BenchmarkLocalDecrementParallel(b *testing.B) {
	c, err := cluster.New(cluster.Config{Sites: 3, Items: 64, InitialAmount: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	keys := c.RegularKeys
	ctx := context.Background()
	var gctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Start each goroutine on its own key and walk the key space so
		// clients mostly touch independent stripes, like independent
		// customers would.
		i := int(gctr.Add(1)) * 7
		for pb.Next() {
			if _, err := c.Sites[1].Update(ctx, keys[i%len(keys)], -1); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkClusterThroughputMemnet spreads concurrent clients over all
// sites of a memnet cluster, with each client periodically flushing its
// site's replication backlog — update throughput plus the concurrent
// flush fan-out, without socket cost.
func BenchmarkClusterThroughputMemnet(b *testing.B) {
	c, err := cluster.New(cluster.Config{Sites: 3, Items: 64, InitialAmount: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	keys := c.RegularKeys
	ctx := context.Background()
	var gctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gctr.Add(1))
		s := c.Sites[g%len(c.Sites)]
		i := g * 7
		for pb.Next() {
			if _, err := s.Update(ctx, keys[i%len(keys)], -1); err != nil {
				b.Error(err)
				return
			}
			i++
			if i%512 == 0 {
				if err := s.Flush(ctx); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	b.StopTimer()
	if err := c.FlushAll(ctx); err != nil {
		b.Fatal(err)
	}
}

// benchTCPCluster assembles n complete sites wired over loopback TCP
// (the cmd/avnode stack) with `items` regular keys and effectively
// unlimited AV at every site.
func benchTCPCluster(tb testing.TB, n, items int) []*site.Site {
	tb.Helper()
	var mu sync.Mutex
	handlers := make([]transport.Handler, n)
	nodes := make([]*tcpnet.Node, n)
	for i := 0; i < n; i++ {
		idx := i
		node, err := tcpnet.Open(tcpnet.Config{ID: wire.SiteID(i), Listen: "127.0.0.1:0"},
			func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
				mu.Lock()
				h := handlers[idx]
				mu.Unlock()
				if h == nil {
					return nil
				}
				return h(ctx, from, msg)
			})
		if err != nil {
			tb.Fatal(err)
		}
		nodes[i] = node
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].AddPeer(wire.SiteID(j), nodes[j].Addr())
			}
		}
	}
	sites := make([]*site.Site, n)
	for i := 0; i < n; i++ {
		idx := i
		var peers []wire.SiteID
		for p := 0; p < n; p++ {
			if p != i {
				peers = append(peers, wire.SiteID(p))
			}
		}
		s, err := site.Open(site.Config{
			ID: wire.SiteID(i), Base: 0, Peers: peers,
			LockTimeout: 2 * time.Second, PrepareTimeout: 2 * time.Second,
		}, &lateBoundNetwork{node: nodes[idx], mu: &mu, handler: &handlers[idx]})
		if err != nil {
			tb.Fatal(err)
		}
		for k := 0; k < items; k++ {
			key := cluster.KeyName(k)
			if err := s.Seed(storage.Record{Key: key, Amount: 1 << 40, Class: storage.Regular}); err != nil {
				tb.Fatal(err)
			}
			if err := s.DefineAV(key, 1<<38); err != nil {
				tb.Fatal(err)
			}
		}
		sites[i] = s
	}
	tb.Cleanup(func() {
		for _, s := range sites {
			s.Close()
		}
	})
	return sites
}

// lateBoundNetwork lets a TCP node be opened (to learn its port) before
// the site that will handle its messages exists.
type lateBoundNetwork struct {
	node    *tcpnet.Node
	mu      *sync.Mutex
	handler *transport.Handler
}

func (n *lateBoundNetwork) Open(id wire.SiteID, h transport.Handler) (transport.Node, error) {
	n.mu.Lock()
	*n.handler = h
	n.mu.Unlock()
	return n.node, nil
}

// BenchmarkClusterThroughputTCP is BenchmarkClusterThroughputMemnet
// over real loopback sockets: concurrent flushes from every client
// exercise the transport's combining write path.
func BenchmarkClusterThroughputTCP(b *testing.B) {
	sites := benchTCPCluster(b, 3, 64)
	ctx := context.Background()
	var gctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gctr.Add(1))
		s := sites[g%len(sites)]
		i := g * 7
		for pb.Next() {
			if _, err := s.Update(ctx, cluster.KeyName(i%64), -1); err != nil {
				b.Error(err)
				return
			}
			i++
			if i%512 == 0 {
				if err := s.Flush(ctx); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	b.StopTimer()
	for _, s := range sites {
		if err := s.Flush(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncConvergence measures lazy propagation of a batch of
// deltas to two peers.
func BenchmarkSyncConvergence(b *testing.B) {
	c, err := New(Config{Sites: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.AddProduct(Product{Key: "k", Amount: 1 << 50, Class: Regular}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 64; j++ {
			if _, err := c.Update(ctx, 1, "k", -1); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := c.Sync(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
