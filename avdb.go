// Package avdb is a distributed database with per-site autonomous
// consistency for numeric data, reproducing Hanamura, Kaji and Mori,
// "Autonomous Consistency Technique in Distributed Database with
// Heterogeneous Requirements" (IPPS Workshops 2000).
//
// Each site holds a full copy of a product catalog. Numeric columns
// (stock amounts) can be declared to carry an Allowable Volume (AV): a
// site-local escrow quota that lets the site decrement the value with
// zero communication (Delay Update), while an accelerator circulates AV
// between sites on demand. Data without an AV is updated through a
// primary-copy two-phase commit across all sites (Immediate Update).
// The two disciplines coexist per product, which is how the system
// satisfies heterogeneous — even contradictory — consistency
// requirements at once.
//
// Quick start:
//
//	c, _ := avdb.New(avdb.Config{Sites: 3})
//	c.AddProduct(avdb.Product{Key: "widget", Amount: 900, Class: avdb.Regular})
//	c.Update(ctx, 1, "widget", -100) // local at site 1, no messages
//	c.Sync(ctx)                      // lazy convergence
//	v, _ := c.Read(0, "widget")      // 800 at every site
//
// See examples/ for runnable scenarios and cmd/avsim for the paper's
// experiments.
package avdb

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"avdb/internal/core"
	"avdb/internal/metrics"
	"avdb/internal/site"
	"avdb/internal/storage"
	"avdb/internal/strategy"
	"avdb/internal/transport/memnet"
	"avdb/internal/twopc"
	"avdb/internal/wire"
)

// Product classification: Regular products get an AV (Delay Updates);
// NonRegular products are strongly consistent (Immediate Updates).
const (
	Regular    = storage.Regular
	NonRegular = storage.NonRegular
)

// Product is one catalog row.
type Product struct {
	Key    string
	Name   string
	Amount int64
	Class  storage.Class
}

// Result reports how an update was executed.
type Result = core.Result

// Update paths (Result.Path).
const (
	PathDelayLocal    = core.PathDelayLocal
	PathDelayTransfer = core.PathDelayTransfer
	PathImmediate     = core.PathImmediate
)

// Errors a caller is expected to handle.
var (
	// ErrInsufficientAV: the system-wide slack could not cover a Delay
	// Update decrement.
	ErrInsufficientAV = core.ErrInsufficientAV
	// ErrAborted: an Immediate Update was refused (validation or an
	// unreachable site).
	ErrAborted = twopc.ErrAborted
)

// Config parameterizes a cluster.
type Config struct {
	// Sites is the number of sites (site 0 is the base/maker). Required.
	Sites int
	// Selector chooses whom to ask for AV: "max-known" (default),
	// "random", or "round-robin".
	Selector string
	// Decider chooses transfer volumes: "half" (default, the paper's
	// SODA'99 policy), "exact", "all", or "generous".
	Decider string
	// Passes bounds AV-gathering passes per update (default 3).
	Passes int
	// Seed makes policy randomness reproducible.
	Seed uint64
	// Dir, when set, gives each site a durable storage directory
	// (Dir/site-N) with WAL and snapshots; empty runs in memory.
	Dir string
	// PersistAV additionally journals each site's AV table under Dir so
	// allowable volume survives restarts (requires Dir). On a reopened
	// cluster, AddProduct skips rows and AV definitions that already
	// exist.
	PersistAV bool
	// NoSync disables WAL fsync for durable clusters.
	NoSync bool
	// SyncInterval, when > 0, runs lazy propagation automatically in the
	// background; 0 leaves it to explicit Sync calls.
	SyncInterval time.Duration
	// Latency optionally injects per-message network delay.
	Latency func(from, to int) time.Duration
}

// Cluster is a running multi-site database.
type Cluster struct {
	cfg      Config
	net      *memnet.Net
	sites    []*site.Site
	registry *metrics.Registry
	peers    [][]wire.SiteID
}

// selectorByName maps Config.Selector values to implementations.
func selectorByName(name string) (strategy.Selector, error) {
	switch name {
	case "", "max-known":
		return strategy.MaxKnown{}, nil
	case "random":
		return strategy.RandomSelect{}, nil
	case "round-robin":
		return &strategy.RoundRobin{}, nil
	default:
		return nil, fmt.Errorf("avdb: unknown selector %q", name)
	}
}

// deciderByName maps Config.Decider values to implementations.
func deciderByName(name string) (strategy.Decider, error) {
	switch name {
	case "", "half":
		return strategy.GrantHalf{}, nil
	case "exact":
		return strategy.GrantExact{}, nil
	case "all":
		return strategy.GrantAll{}, nil
	case "generous":
		return strategy.GrantGenerous{}, nil
	default:
		return nil, fmt.Errorf("avdb: unknown decider %q", name)
	}
}

// New builds an empty cluster; add products with AddProduct.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites < 1 {
		return nil, errors.New("avdb: Config.Sites must be >= 1")
	}
	sel, err := selectorByName(cfg.Selector)
	if err != nil {
		return nil, err
	}
	dec, err := deciderByName(cfg.Decider)
	if err != nil {
		return nil, err
	}
	var latency func(from, to wire.SiteID) time.Duration
	if cfg.Latency != nil {
		latency = func(from, to wire.SiteID) time.Duration {
			return cfg.Latency(int(from), int(to))
		}
	}
	c := &Cluster{
		cfg:      cfg,
		registry: metrics.NewRegistry(),
	}
	c.net = memnet.New(memnet.Options{Registry: c.registry, Latency: latency})
	for id := 0; id < cfg.Sites; id++ {
		var peers []wire.SiteID
		for p := 0; p < cfg.Sites; p++ {
			if p != id {
				peers = append(peers, wire.SiteID(p))
			}
		}
		c.peers = append(c.peers, peers)
		dir := ""
		if cfg.Dir != "" {
			dir = filepath.Join(cfg.Dir, fmt.Sprintf("site-%d", id))
		}
		s, err := site.Open(site.Config{
			ID:            wire.SiteID(id),
			Base:          0,
			Peers:         peers,
			StorageDir:    dir,
			PersistAV:     cfg.PersistAV,
			NoSync:        cfg.NoSync,
			Policy:        strategy.Policy{Selector: sel, Decider: dec},
			Passes:        cfg.Passes,
			Seed:          cfg.Seed + uint64(id)*7919,
			FlushInterval: cfg.SyncInterval,
			SweepInterval: cfg.SyncInterval,
		}, c.net)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.sites = append(c.sites, s)
	}
	return c, nil
}

// AddProduct inserts p at every site and, for Regular products, splits
// the initial AV (equal to the initial stock) evenly across sites. Use
// AddProductAV for a custom allocation.
func (c *Cluster) AddProduct(p Product) error {
	if p.Class == NonRegular {
		return c.AddProductAV(p, nil)
	}
	share := p.Amount / int64(len(c.sites))
	avs := make([]int64, len(c.sites))
	rem := p.Amount
	for i := range avs {
		avs[i] = share
		rem -= share
	}
	avs[0] += rem
	return c.AddProductAV(p, avs)
}

// AddProductAV inserts p at every site with an explicit per-site initial
// AV allocation (nil for NonRegular products). The allocation's sum is
// the volume the cluster may collectively subtract before coordination
// fails; allocating exactly p.Amount preserves the conservation
// invariant (stock can never go globally negative).
func (c *Cluster) AddProductAV(p Product, avPerSite []int64) error {
	if p.Key == "" {
		return errors.New("avdb: product key must be non-empty")
	}
	if p.Class == Regular && len(avPerSite) != len(c.sites) {
		return fmt.Errorf("avdb: need %d AV allocations, got %d", len(c.sites), len(avPerSite))
	}
	if p.Class == NonRegular && avPerSite != nil {
		return errors.New("avdb: non-regular products carry no AV")
	}
	rec := storage.Record{Key: p.Key, Name: p.Name, Amount: p.Amount, Class: p.Class}
	for i, s := range c.sites {
		// On a reopened durable cluster the row (and journaled AV) may
		// already exist; re-seeding would reset stock and mint AV.
		if _, err := s.Read(p.Key); err != nil {
			if err := s.Seed(rec); err != nil {
				return err
			}
		}
		if p.Class == Regular && !s.AV().Defined(p.Key) {
			if err := s.DefineAV(p.Key, avPerSite[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Update applies delta to key at site idx; the accelerator picks the
// discipline (Delay for Regular products, Immediate for NonRegular).
func (c *Cluster) Update(ctx context.Context, idx int, key string, delta int64) (Result, error) {
	if err := c.checkSite(idx); err != nil {
		return Result{}, err
	}
	return c.sites[idx].Update(ctx, key, delta)
}

// Read returns site idx's current local value of key. For Regular
// products this is eventually consistent (exact after Sync); for
// NonRegular products it is always current.
func (c *Cluster) Read(idx int, key string) (int64, error) {
	if err := c.checkSite(idx); err != nil {
		return 0, err
	}
	return c.sites[idx].Read(key)
}

// AV returns site idx's free allowable volume for key.
func (c *Cluster) AV(idx int, key string) (int64, error) {
	if err := c.checkSite(idx); err != nil {
		return 0, err
	}
	return c.sites[idx].AV().Avail(key), nil
}

// ReadFresh pulls pending deltas from all reachable peers into site idx
// and then reads locally — an up-to-date read of a Regular product
// without waiting for the background sync cycle.
func (c *Cluster) ReadFresh(ctx context.Context, idx int, key string) (int64, error) {
	if err := c.checkSite(idx); err != nil {
		return 0, err
	}
	return c.sites[idx].ReadFresh(ctx, key)
}

// Sync runs one round of lazy propagation from every site.
func (c *Cluster) Sync(ctx context.Context) error {
	var firstErr error
	for _, s := range c.sites {
		if err := s.Flush(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Isolate cuts site idx off from all peers (fault injection).
func (c *Cluster) Isolate(idx int) error {
	if err := c.checkSite(idx); err != nil {
		return err
	}
	c.net.Isolate(wire.SiteID(idx))
	return nil
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.net.Heal() }

// Correspondences returns the total protocol correspondences so far
// (the paper's metric: 2 messages = 1 correspondence).
func (c *Cluster) Correspondences() int64 { return c.registry.TotalCorrespondences() }

// Stats returns site idx's accelerator counters.
func (c *Cluster) Stats(idx int) (delayLocal, delayTransfer, immediate int64, err error) {
	if err := c.checkSite(idx); err != nil {
		return 0, 0, 0, err
	}
	st := c.sites[idx].Accelerator().Stats()
	return st.DelayLocal.Load(), st.DelayTransfer.Load(), st.Immediate.Load(), nil
}

func (c *Cluster) checkSite(idx int) error {
	if idx < 0 || idx >= len(c.sites) {
		return fmt.Errorf("avdb: site %d out of range [0,%d)", idx, len(c.sites))
	}
	return nil
}

// Products returns the catalog as site idx currently sees it, in key
// order.
func (c *Cluster) Products(idx int) ([]Product, error) {
	if err := c.checkSite(idx); err != nil {
		return nil, err
	}
	var out []Product
	err := c.sites[idx].Engine().Scan(func(r storage.Record) bool {
		out = append(out, Product{Key: r.Key, Name: r.Name, Amount: r.Amount, Class: r.Class})
		return true
	})
	return out, err
}

// AVDistribution returns, per site, the free allowable volume each one
// holds for key — how the escrow is currently spread across the system.
func (c *Cluster) AVDistribution(key string) []int64 {
	out := make([]int64, len(c.sites))
	for i, s := range c.sites {
		out[i] = s.AV().Avail(key)
	}
	return out
}

// Sites returns the number of sites.
func (c *Cluster) Sites() int { return len(c.sites) }

// Close shuts down every site.
func (c *Cluster) Close() error {
	var firstErr error
	for _, s := range c.sites {
		if s == nil {
			continue
		}
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.sites = nil
	return firstErr
}
