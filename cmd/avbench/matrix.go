package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"avdb/internal/avstore"
	"avdb/internal/epoch"
	"avdb/internal/metrics"
	"avdb/internal/wal"
)

// matrixResult is the schema of the BENCH_6.json snapshot: the
// multi-core scaling matrix for the durable decrement fast path,
// GOMAXPROCS x commit pipeline. Every cell drives the same fixed pool
// of synchronous workers (each op waits out its own durability ack), so
// the two pipelines are compared at identical offered concurrency:
//
//   - epochs off: group-commit WAL, one sync round per batch of waiters;
//   - epochs on: acks ride epoch boundaries, one fsync per closed epoch,
//     so fsyncs/op is bounded by interval/throughput instead of batch
//     luck.
//
// The headline is epochs_on fsyncs_per_op at go_max_procs >= 4 staying
// at or below 0.1 while ack_wait_p99_ns stays within a few epoch
// intervals.
type matrixResult struct {
	GoVersion       string  `json:"go_version"`
	NumCPU          int     `json:"num_cpu"`
	Workers         int     `json:"workers"`
	OpsPerWorker    int     `json:"ops_per_worker"`
	EpochIntervalUS int     `json:"epoch_interval_us"`
	Cells           []*cell `json:"cells"`
}

type cell struct {
	GoProcs int     `json:"go_max_procs"`
	Epochs  bool    `json:"epochs"`
	Ops     int     `json:"ops"`
	NsOp    float64 `json:"ns_op"`

	// Fsyncs issued during the measured window divided by ops: the
	// amortization factor of the active commit pipeline.
	FsyncsPerOp float64 `json:"fsyncs_per_op"`

	// Epoch-mode only (0 when epochs are off): commits acknowledged per
	// closed epoch, i.e. ops per fsync from the epoch manager's own
	// accounting.
	CommitsPerEpoch float64 `json:"commits_per_epoch"`

	// Per-op acknowledgement latency (request start to durable ack) as
	// observed by the workers, uniform across both pipelines.
	AckWaitP50Ns int64 `json:"ack_wait_p50_ns"`
	AckWaitP99Ns int64 `json:"ack_wait_p99_ns"`
}

// runMatrix measures the scaling matrix and writes it as JSON to path.
// procsList is the GOMAXPROCS axis (the -procs flag, when set, is
// prepended by the caller so ad-hoc runs can pin a single point).
func runMatrix(path string, procsList []int) error {
	const (
		workers      = 32
		opsPerWorker = 250
		intervalUS   = 200
	)
	res := matrixResult{
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		Workers:         workers,
		OpsPerWorker:    opsPerWorker,
		EpochIntervalUS: intervalUS,
	}
	for _, procs := range procsList {
		for _, epochs := range []bool{false, true} {
			c, err := runMatrixCell(procs, epochs, workers, opsPerWorker, intervalUS)
			if err != nil {
				return fmt.Errorf("procs=%d epochs=%v: %w", procs, epochs, err)
			}
			res.Cells = append(res.Cells, c)
		}
	}

	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// runMatrixCell measures one (GOMAXPROCS, pipeline) point: workers
// synchronous goroutines each performing opsPerWorker durable AV
// decrements (acquire+consume, real fsyncs) against one journaled
// store.
func runMatrixCell(procs int, epochs bool, workers, opsPerWorker, intervalUS int) (*cell, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	dir, err := os.MkdirTemp("", "avbench-matrix")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	ws := &wal.Stats{}
	est := &epoch.Stats{}
	opts := avstore.Options{Stats: ws}
	if epochs {
		opts.EpochInterval = time.Duration(intervalUS) * time.Microsecond
		opts.EpochStats = est
	}
	s, err := avstore.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Define("k", 1<<50); err != nil {
		return nil, err
	}

	ackWait := metrics.NewHistogram()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		workErr error
	)
	startFsyncs := ws.Fsyncs.Load()
	startEpochs, startCommits := est.Epochs.Load(), est.Commits.Load()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				opStart := time.Now()
				ok, err := s.Acquire("k", 1)
				if err == nil && ok {
					err = s.Consume("k", 1)
				}
				if err != nil {
					mu.Lock()
					if workErr == nil {
						workErr = err
					}
					mu.Unlock()
					return
				}
				ackWait.Observe(time.Since(opStart))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if workErr != nil {
		return nil, workErr
	}

	ops := workers * opsPerWorker
	c := &cell{
		GoProcs: procs,
		Epochs:  epochs,
		Ops:     ops,
		NsOp:    float64(elapsed.Nanoseconds()) / float64(ops),
	}
	c.FsyncsPerOp = float64(ws.Fsyncs.Load()-startFsyncs) / float64(ops)
	if closed := est.Epochs.Load() - startEpochs; closed > 0 {
		c.CommitsPerEpoch = float64(est.Commits.Load()-startCommits) / float64(closed)
	}
	snap := ackWait.Snapshot()
	c.AckWaitP50Ns = snap.Percentile(50).Nanoseconds()
	c.AckWaitP99Ns = snap.Percentile(99).Nanoseconds()
	return c, nil
}
