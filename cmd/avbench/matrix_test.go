package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunMatrixCellBothPipelines runs one small cell per pipeline and
// checks the accounting that BENCH_6.json is built from: real ops, a
// positive fsync ratio, epoch stats only in epoch mode.
func TestRunMatrixCellBothPipelines(t *testing.T) {
	for _, epochs := range []bool{false, true} {
		c, err := runMatrixCell(2, epochs, 4, 10, 200)
		if err != nil {
			t.Fatalf("epochs=%v: %v", epochs, err)
		}
		if c.Ops != 40 || c.NsOp <= 0 {
			t.Fatalf("epochs=%v: ops=%d ns_op=%v", epochs, c.Ops, c.NsOp)
		}
		if c.FsyncsPerOp <= 0 {
			t.Fatalf("epochs=%v: no fsyncs recorded", epochs)
		}
		if epochs && c.CommitsPerEpoch <= 0 {
			t.Fatal("epoch cell missing commits_per_epoch")
		}
		if !epochs && c.CommitsPerEpoch != 0 {
			t.Fatalf("group-commit cell reports commits_per_epoch %v", c.CommitsPerEpoch)
		}
		if c.AckWaitP99Ns < c.AckWaitP50Ns {
			t.Fatalf("epochs=%v: p99 %d below p50 %d", epochs, c.AckWaitP99Ns, c.AckWaitP50Ns)
		}
	}
}

// TestRunMatrixWritesSnapshot exercises the full -matrix path on a
// single-point axis and validates the JSON schema.
func TestRunMatrixWritesSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix cells are fsync-bound")
	}
	path := filepath.Join(t.TempDir(), "BENCH_6.json")
	if err := runMatrix(path, []int{2}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res matrixResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("want 2 cells (epochs off/on), got %d", len(res.Cells))
	}
	off, on := res.Cells[0], res.Cells[1]
	if off.Epochs || !on.Epochs || off.GoProcs != 2 || on.GoProcs != 2 {
		t.Fatalf("unexpected cell order: %+v", res.Cells)
	}
	if on.FsyncsPerOp >= off.FsyncsPerOp {
		t.Errorf("epochs did not amortize: on %.4f vs off %.4f fsyncs/op",
			on.FsyncsPerOp, off.FsyncsPerOp)
	}
}
