package main

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"avdb/internal/chaos"
	"avdb/internal/cluster"
	"avdb/internal/transport"
	"avdb/internal/transport/tcpnet"
	"avdb/internal/wire"
)

// perfResult is the schema of the BENCH_2.json snapshot: the fast-path
// micro-benchmarks that guard the striped-locking / write-coalescing
// work, in a form the repo can commit and diff.
type perfResult struct {
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Procs     int    `json:"go_max_procs"`

	// Delay Updates against one site, all cores vs one goroutine.
	LocalSerialNsOp   float64 `json:"local_decrement_serial_ns_op"`
	LocalParallelNsOp float64 `json:"local_decrement_parallel_ns_op"`
	// ParallelSpeedup is serial/parallel per-op time; it is bounded above
	// by NumCPU, so on a single-core host ~1.0 is the best possible.
	ParallelSpeedup float64 `json:"parallel_speedup"`

	// Concurrent clients on all sites of a 3-site memnet cluster with
	// periodic replication flushes.
	MemnetThroughputNsOp float64 `json:"cluster_throughput_memnet_ns_op"`

	// The same cluster workload in degraded mode: a seeded chaos
	// injector drops 5% of all messages, with RPC retransmission (and
	// receiver dedup) riding the updates through the loss. The ratio to
	// the healthy number is the price of the failure machinery under
	// fault, not its healthy-path overhead (which is zero by config).
	DegradedThroughputNsOp float64 `json:"cluster_throughput_degraded_5pct_ns_op"`

	// One-way tcpnet sends over loopback (frame coalescing path).
	// Allocation counts include the receiving node's decode side.
	TCPSendNsOp     float64 `json:"tcp_send_ns_op"`
	TCPSendAllocsOp float64 `json:"tcp_send_allocs_op"`
	TCPSendBytesOp  float64 `json:"tcp_send_bytes_op"`
}

// runPerf measures the snapshot and writes it as JSON to path.
func runPerf(path string) error {
	res := perfResult{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Procs:     runtime.GOMAXPROCS(0),
	}

	serial := testing.Benchmark(benchLocalDecrement(false))
	parallel := testing.Benchmark(benchLocalDecrement(true))
	res.LocalSerialNsOp = nsPerOp(serial)
	res.LocalParallelNsOp = nsPerOp(parallel)
	if res.LocalParallelNsOp > 0 {
		res.ParallelSpeedup = res.LocalSerialNsOp / res.LocalParallelNsOp
	}

	res.MemnetThroughputNsOp = nsPerOp(testing.Benchmark(benchMemnetThroughput))
	res.DegradedThroughputNsOp = nsPerOp(testing.Benchmark(benchDegradedThroughput))

	tcp := testing.Benchmark(benchTCPSend)
	res.TCPSendNsOp = nsPerOp(tcp)
	res.TCPSendAllocsOp = float64(tcp.AllocsPerOp())
	res.TCPSendBytesOp = float64(tcp.AllocedBytesPerOp())

	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// benchLocalDecrement mirrors BenchmarkLocalDecrementParallel (and its
// serial baseline): Delay Updates into one site of a 3-site memnet
// cluster, spread across 64 keys.
func benchLocalDecrement(parallelized bool) func(b *testing.B) {
	return func(b *testing.B) {
		c, err := cluster.New(cluster.Config{Sites: 3, Items: 64, InitialAmount: 1 << 40})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		keys := c.RegularKeys
		ctx := context.Background()
		b.ResetTimer()
		if !parallelized {
			for i := 0; i < b.N; i++ {
				if _, err := c.Sites[1].Update(ctx, keys[i%len(keys)], -1); err != nil {
					b.Fatal(err)
				}
			}
			return
		}
		var gctr atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			i := int(gctr.Add(1)) * 7
			for pb.Next() {
				if _, err := c.Sites[1].Update(ctx, keys[i%len(keys)], -1); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	}
}

// benchMemnetThroughput mirrors BenchmarkClusterThroughputMemnet:
// clients on every site, flushing replication every 512 updates.
func benchMemnetThroughput(b *testing.B) {
	c, err := cluster.New(cluster.Config{Sites: 3, Items: 64, InitialAmount: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	keys := c.RegularKeys
	ctx := context.Background()
	var gctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gctr.Add(1))
		s := c.Sites[g%len(c.Sites)]
		i := g * 7
		for pb.Next() {
			if _, err := s.Update(ctx, keys[i%len(keys)], -1); err != nil {
				b.Error(err)
				return
			}
			i++
			if i%512 == 0 {
				if err := s.Flush(ctx); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

// benchDegradedThroughput is benchMemnetThroughput on a lossy network:
// a seeded injector drops 5% of every message and Call retransmits
// until the reply (or its dedup replay) gets through. Flush failures
// are tolerated — the backlog is retained and retried, which is the
// degraded-mode contract.
func benchDegradedThroughput(b *testing.B) {
	inj := chaos.NewInjector(1)
	inj.SetDefault(chaos.LinkFaults{Drop: 0.05})
	c, err := cluster.New(cluster.Config{
		Sites: 3, Items: 64, InitialAmount: 1 << 40,
		Interceptor:        inj,
		RetransmitInterval: 2 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	keys := c.RegularKeys
	ctx := context.Background()
	var gctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gctr.Add(1))
		s := c.Sites[g%len(c.Sites)]
		i := g * 7
		for pb.Next() {
			if _, err := s.Update(ctx, keys[i%len(keys)], -1); err != nil {
				b.Error(err)
				return
			}
			i++
			if i%512 == 0 {
				_ = s.Flush(ctx) // lossy flush keeps its backlog; retried next round
			}
		}
	})
}

// benchTCPSend mirrors tcpnet's BenchmarkSendAllocs: one-way sends
// between two loopback nodes.
func benchTCPSend(b *testing.B) {
	discard := func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message { return nil }
	var nodes [2]*tcpnet.Node
	for i := range nodes {
		n, err := tcpnet.Open(tcpnet.Config{ID: wire.SiteID(i + 1), Listen: "127.0.0.1:0"},
			transport.Handler(discard))
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	nodes[0].AddPeer(2, nodes[1].Addr())
	nodes[1].AddPeer(1, nodes[0].Addr())
	ctx := context.Background()
	msg := &wire.DeltaAck{Origin: 1, UpTo: 42}
	if err := nodes[0].Send(ctx, 2, msg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nodes[0].Send(ctx, 2, msg); err != nil {
			b.Fatal(err)
		}
	}
}
