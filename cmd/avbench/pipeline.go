package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"avdb/internal/avstore"
	"avdb/internal/epoch"
	"avdb/internal/metrics"
	"avdb/internal/wal"
)

// pipelineResult is the schema of the BENCH_8.json snapshot: the
// pipelined commit matrix, GOMAXPROCS x commit pipeline, with every
// worker running a bounded async window instead of the synchronous
// one-op-one-wait loop of BENCH_6. Each worker issues durable AV
// decrements through ConsumeAsync and only blocks on the oldest
// in-flight acknowledgement once its window is full, so both pipelines
// are measured at identical offered concurrency *and* identical
// per-worker overlap:
//
//   - epochs off: the deferred wait is the journal's group-commit
//     SyncTo — overlapping ops widen the sync batches;
//   - epochs on: the deferred wait is an epoch Ticket — epoch N+1
//     fills while epoch N's covering fsync is in flight, which is the
//     cross-epoch pipeline the synchronous loop could never exercise.
//
// The headline: with the ack wait off the issue path, epochs-on ns/op
// lands within 15% of epochs-off at GOMAXPROCS 4 while still issuing
// at most a tenth of an fsync per op (both CI-gated).
type pipelineResult struct {
	GoVersion       string  `json:"go_version"`
	NumCPU          int     `json:"num_cpu"`
	Workers         int     `json:"workers"`
	OpsPerWorker    int     `json:"ops_per_worker"`
	Window          int     `json:"window"`
	EpochIntervalUS int     `json:"epoch_interval_us"`
	Cells           []*cell `json:"cells"`
}

// runPipeline measures the pipelined matrix and writes it as JSON to
// path. procsList is the GOMAXPROCS axis, as in runMatrix.
func runPipeline(path string, procsList []int) error {
	const (
		workers      = 32
		opsPerWorker = 250
		window       = 8
		intervalUS   = 200
	)
	res := pipelineResult{
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		Workers:         workers,
		OpsPerWorker:    opsPerWorker,
		Window:          window,
		EpochIntervalUS: intervalUS,
	}
	for _, procs := range procsList {
		for _, epochs := range []bool{false, true} {
			c, err := runPipelineCell(procs, epochs, workers, opsPerWorker, window, intervalUS)
			if err != nil {
				return fmt.Errorf("procs=%d epochs=%v: %w", procs, epochs, err)
			}
			res.Cells = append(res.Cells, c)
		}
	}

	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// runPipelineCell measures one (GOMAXPROCS, pipeline) point: workers
// goroutines each performing opsPerWorker durable AV decrements
// (acquire + async consume, real fsyncs) against one journaled store,
// holding up to window acknowledgements in flight.
func runPipelineCell(procs int, epochs bool, workers, opsPerWorker, window, intervalUS int) (*cell, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	dir, err := os.MkdirTemp("", "avbench-pipeline")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	ws := &wal.Stats{}
	est := &epoch.Stats{}
	opts := avstore.Options{Stats: ws}
	if epochs {
		opts.EpochInterval = time.Duration(intervalUS) * time.Microsecond
		opts.EpochStats = est
	}
	s, err := avstore.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Define("k", 1<<50); err != nil {
		return nil, err
	}

	ackWait := metrics.NewHistogram()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		workErr error
	)
	fail := func(err error) {
		mu.Lock()
		if workErr == nil {
			workErr = err
		}
		mu.Unlock()
	}
	startFsyncs := ws.Fsyncs.Load()
	startEpochs, startCommits := est.Epochs.Load(), est.Commits.Load()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			type inflight struct {
				start time.Time
				wait  func() error
			}
			// Bounded in-flight window: settle the oldest ack only when
			// the window is full, so up to `window` durability waits
			// overlap the issue path at all times.
			win := make([]inflight, 0, window)
			settle := func(f inflight) bool {
				if err := f.wait(); err != nil {
					fail(err)
					return false
				}
				ackWait.Observe(time.Since(f.start))
				return true
			}
			for i := 0; i < opsPerWorker; i++ {
				opStart := time.Now()
				ok, err := s.Acquire("k", 1)
				var wait func() error
				if err == nil && ok {
					wait, err = s.ConsumeAsync("k", 1)
				}
				if err != nil || !ok {
					if err == nil {
						err = fmt.Errorf("acquire rejected with %d stock", int64(1)<<50)
					}
					fail(err)
					break
				}
				win = append(win, inflight{start: opStart, wait: wait})
				if len(win) == window {
					f := win[0]
					win = append(win[:0], win[1:]...)
					if !settle(f) {
						break
					}
				}
			}
			for _, f := range win {
				if !settle(f) {
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if workErr != nil {
		return nil, workErr
	}

	ops := workers * opsPerWorker
	c := &cell{
		GoProcs: procs,
		Epochs:  epochs,
		Ops:     ops,
		NsOp:    float64(elapsed.Nanoseconds()) / float64(ops),
	}
	c.FsyncsPerOp = float64(ws.Fsyncs.Load()-startFsyncs) / float64(ops)
	if closed := est.Epochs.Load() - startEpochs; closed > 0 {
		c.CommitsPerEpoch = float64(est.Commits.Load()-startCommits) / float64(closed)
	}
	snap := ackWait.Snapshot()
	c.AckWaitP50Ns = snap.Percentile(50).Nanoseconds()
	c.AckWaitP99Ns = snap.Percentile(99).Nanoseconds()
	return c, nil
}
