package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The -shard mode must produce a well-formed BENCH_7-shaped snapshot:
// every cell measured, ops accounted for, routing observed, and zero
// misroutes in a healthy static cluster.
func TestRunShardSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench7.json")
	if err := runShard(path, 2000, 300, 1); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res shardResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(res.Cells) != 5 {
		t.Fatalf("want 5 cells, got %d", len(res.Cells))
	}
	sawForwarding := false
	for _, c := range res.Cells {
		if c.Commits+c.Rejected != int64(c.Ops) {
			t.Errorf("parts=%d rf=%d: commits %d + rejected %d != ops %d",
				c.Partitions, c.RF, c.Commits, c.Rejected, c.Ops)
		}
		if c.Commits == 0 {
			t.Errorf("parts=%d rf=%d: nothing committed", c.Partitions, c.RF)
		}
		if c.OpsPerSec <= 0 || c.NsOp <= 0 {
			t.Errorf("parts=%d rf=%d: throughput unmeasured", c.Partitions, c.RF)
		}
		if c.Misroutes != 0 {
			t.Errorf("parts=%d rf=%d: %d misroutes in a static cluster", c.Partitions, c.RF, c.Misroutes)
		}
		if c.ForwardedFrac < 0 || c.ForwardedFrac > 1 {
			t.Errorf("parts=%d rf=%d: forwarded_frac %v outside [0,1]", c.Partitions, c.RF, c.ForwardedFrac)
		}
		if c.RF < 6 && c.ForwardedFrac > 0 {
			sawForwarding = true
		}
	}
	if !sawForwarding {
		t.Error("no cell forwarded anything — routing never exercised")
	}
}
