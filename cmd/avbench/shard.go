package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/cluster"
	"avdb/internal/core"
	"avdb/internal/twopc"
	"avdb/internal/workload"
)

// shardResult is the schema of the BENCH_7.json snapshot: routed update
// throughput of a 6-site in-process cluster under a Zipfian workload
// over a large key space, swept along two axes:
//
//   - partition count 1 / 4 / 16 at RF 2 — more partitions spread the
//     hot keys' owners across sites, so the routing fan-in per site
//     drops;
//   - replication factor 1 / 2 / 3 at 16 partitions — wider replica
//     sets give more local (unrouted) updates but more anti-entropy
//     fan-out.
//
// forwarded_frac is the fraction of updates that crossed a routing hop
// (origin did not host the key); with site affinity at 0.5, half the
// stream is pinned to the owner and the rest scatters.
type shardResult struct {
	GoVersion string       `json:"go_version"`
	NumCPU    int          `json:"num_cpu"`
	Sites     int          `json:"sites"`
	Keys      int          `json:"keys"`
	Theta     float64      `json:"zipf_theta"`
	Affinity  float64      `json:"site_affinity"`
	Workers   int          `json:"workers"`
	Ops       int          `json:"ops_per_cell"`
	Cells     []*shardCell `json:"cells"`
}

type shardCell struct {
	Partitions int     `json:"partitions"`
	RF         int     `json:"rf"`
	Ops        int     `json:"ops"`
	Commits    int64   `json:"commits"`
	Rejected   int64   `json:"rejected"` // insufficient AV — workload pressure, not errors
	NsOp       float64 `json:"ns_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`

	// ForwardedFrac is forwarded routed updates / ops; Misroutes counts
	// updates a non-replica refused (0 in a healthy static cluster).
	ForwardedFrac float64 `json:"forwarded_frac"`
	Misroutes     uint64  `json:"misroutes"`
}

// runShard measures the sharded matrix and writes it as JSON to path.
// keys and ops are scaled down by the schema test; the committed
// artifact uses the defaults from main.
func runShard(path string, keys, ops int, seed uint64) error {
	const (
		sites    = 6
		theta    = 0.99
		affinity = 0.5
		workers  = 8
	)
	res := shardResult{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Sites:     sites,
		Keys:      keys,
		Theta:     theta,
		Affinity:  affinity,
		Workers:   workers,
		Ops:       ops,
	}
	for _, cell := range []struct{ parts, rf int }{
		{1, 2}, {4, 2}, {16, 2}, {16, 1}, {16, 3},
	} {
		c, err := runShardCell(cell.parts, cell.rf, sites, keys, ops, workers, theta, affinity, seed)
		if err != nil {
			return fmt.Errorf("partitions=%d rf=%d: %w", cell.parts, cell.rf, err)
		}
		res.Cells = append(res.Cells, c)
	}

	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// runShardCell drives one (partitions, rf) point: a fresh in-memory
// cluster, a pre-generated Zipfian op stream, and a fixed worker pool
// issuing each update at its op's origin site (routing happens inside).
func runShardCell(parts, rf, sites, keys, ops, workers int, theta, affinity float64, seed uint64) (*shardCell, error) {
	c, err := cluster.New(cluster.Config{
		Sites:         sites,
		Items:         keys,
		InitialAmount: 100000,
		Partitions:    parts,
		RF:            rf,
		Seed:          seed,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	pm := c.PartMap()
	gen, err := workload.NewZipf(workload.ZipfConfig{
		SCMConfig: workload.SCMConfig{
			Sites:         sites,
			Keys:          workload.Keys(keys),
			InitialAmount: 100000,
			// Small absolute deltas: the cell measures routing and commit
			// throughput, not AV exhaustion, so keep the hot keys solvent.
			MakerIncreaseFrac:    0.0005,
			RetailerDecreaseFrac: 0.0002,
			Seed:                 seed,
		},
		Theta:        theta,
		SiteAffinity: affinity,
		HomeSite:     func(key string) int { return int(pm.OwnerOf(key)) },
	})
	if err != nil {
		return nil, err
	}
	stream := make([]workload.Op, ops)
	for i := range stream {
		stream[i] = gen.Next()
	}

	var (
		next     atomic.Int64
		commits  atomic.Int64
		rejected atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		workErr  error
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				op := stream[i]
				_, err := c.Update(context.Background(), op.Site, op.Key, op.Delta)
				switch {
				case err == nil:
					commits.Add(1)
				case errors.Is(err, core.ErrInsufficientAV) || errors.Is(err, twopc.ErrAborted):
					rejected.Add(1)
				default:
					errMu.Lock()
					if workErr == nil {
						workErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if workErr != nil {
		return nil, workErr
	}

	cell := &shardCell{
		Partitions: parts,
		RF:         rf,
		Ops:        ops,
		Commits:    commits.Load(),
		Rejected:   rejected.Load(),
		NsOp:       float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:  float64(ops) / elapsed.Seconds(),
	}
	for _, s := range c.Sites {
		rs := s.RouteStats()
		cell.ForwardedFrac += float64(rs.Forwarded)
		cell.Misroutes += rs.Misroutes
	}
	cell.ForwardedFrac /= float64(ops)
	return cell, nil
}
