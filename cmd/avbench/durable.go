package main

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"avdb/internal/avstore"
	"avdb/internal/wal"
)

// durableResult is the schema of the BENCH_4.json snapshot: the durable
// fast-path micro-benchmarks that guard the group-commit WAL pipeline.
// Real fsyncs, no NoSync shortcuts — the headline number is
// parallel_fsyncs_per_op falling well below 1 once concurrent durable
// decrements share sync rounds.
type durableResult struct {
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Procs     int    `json:"go_max_procs"`

	// One goroutine: every op waits out its own fsync, so ~1 fsync/op.
	// This is the amortization baseline.
	SerialNsOp        float64 `json:"durable_decrement_serial_ns_op"`
	SerialFsyncsPerOp float64 `json:"durable_decrement_serial_fsyncs_per_op"`

	// Parallelism goroutines (GOMAXPROCS forced to at least 4 so the
	// group-commit batching is measured even on small CI hosts).
	Parallelism         int     `json:"parallelism"`
	ParallelNsOp        float64 `json:"durable_decrement_parallel_ns_op"`
	ParallelFsyncsPerOp float64 `json:"durable_decrement_parallel_fsyncs_per_op"`

	// Mean records made durable per group-commit sync round in the
	// parallel run (records_synced / sync_rounds).
	MeanGroupCommitSize float64 `json:"mean_group_commit_size"`
}

// runDurable measures the durable snapshot and writes it as JSON to
// path.
func runDurable(path string) error {
	res := durableResult{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Procs:     runtime.GOMAXPROCS(0),
	}

	serial := testing.Benchmark(benchDurableDecrement(false, nil))
	res.SerialNsOp = nsPerOp(serial)
	res.SerialFsyncsPerOp = serial.Extra["fsyncs/op"]

	// The batching payoff needs concurrent waiters; on a 1–2 core host
	// GOMAXPROCS-many goroutines cannot contend on the sync round, so
	// force at least 4 (fsync parks in a syscall, so even one core
	// overlaps the waiters).
	res.Parallelism = runtime.NumCPU()
	if res.Parallelism < 4 {
		res.Parallelism = 4
	}
	prev := runtime.GOMAXPROCS(res.Parallelism)
	st := &wal.Stats{}
	parallel := testing.Benchmark(benchDurableDecrement(true, st))
	runtime.GOMAXPROCS(prev)
	res.ParallelNsOp = nsPerOp(parallel)
	res.ParallelFsyncsPerOp = parallel.Extra["fsyncs/op"]
	if rounds := st.SyncRounds.Load(); rounds > 0 {
		res.MeanGroupCommitSize = float64(st.RecordsSynced.Load()) / float64(rounds)
	}

	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// benchDurableDecrement mirrors BenchmarkDurableDecrement{Serial,
// Parallel} in internal/avstore: acquire+consume one AV unit per op
// against a journaled store with real fsyncs. stats, when non-nil,
// receives the WAL counters (cumulative across the calibration runs
// testing.Benchmark performs; ratios stay meaningful).
func benchDurableDecrement(parallelized bool, stats *wal.Stats) func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "avbench-durable")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		st := stats
		if st == nil {
			st = &wal.Stats{}
		}
		s, err := avstore.Open(dir, avstore.Options{Stats: st})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if err := s.Define("k", 1<<50); err != nil {
			b.Fatal(err)
		}
		start := st.Fsyncs.Load()
		b.ResetTimer()
		if !parallelized {
			for i := 0; i < b.N; i++ {
				if ok, _ := s.Acquire("k", 1); ok {
					if err := s.Consume("k", 1); err != nil {
						b.Fatal(err)
					}
				}
			}
		} else {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if ok, _ := s.Acquire("k", 1); ok {
						if err := s.Consume("k", 1); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
		}
		b.StopTimer()
		b.ReportMetric(float64(st.Fsyncs.Load()-start)/float64(b.N), "fsyncs/op")
	}
}
