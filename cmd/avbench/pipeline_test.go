package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunPipelineCellBothPipelines runs one small pipelined cell per
// commit pipeline and checks the accounting BENCH_8.json is built
// from: every issued op settled, a positive fsync ratio, epoch stats
// only in epoch mode.
func TestRunPipelineCellBothPipelines(t *testing.T) {
	for _, epochs := range []bool{false, true} {
		c, err := runPipelineCell(2, epochs, 4, 10, 3, 200)
		if err != nil {
			t.Fatalf("epochs=%v: %v", epochs, err)
		}
		if c.Ops != 40 || c.NsOp <= 0 {
			t.Fatalf("epochs=%v: ops=%d ns_op=%v", epochs, c.Ops, c.NsOp)
		}
		if c.FsyncsPerOp <= 0 {
			t.Fatalf("epochs=%v: no fsyncs recorded", epochs)
		}
		if epochs && c.CommitsPerEpoch <= 0 {
			t.Fatal("epoch cell missing commits_per_epoch")
		}
		if !epochs && c.CommitsPerEpoch != 0 {
			t.Fatalf("group-commit cell reports commits_per_epoch %v", c.CommitsPerEpoch)
		}
		if c.AckWaitP99Ns < c.AckWaitP50Ns {
			t.Fatalf("epochs=%v: p99 %d below p50 %d", epochs, c.AckWaitP99Ns, c.AckWaitP50Ns)
		}
	}
}

// TestRunPipelineWritesSnapshot exercises the full -pipeline path on a
// single-point axis and validates the JSON schema.
func TestRunPipelineWritesSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline cells are fsync-bound")
	}
	path := filepath.Join(t.TempDir(), "BENCH_8.json")
	if err := runPipeline(path, []int{2}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res pipelineResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Window <= 1 {
		t.Fatalf("window = %d: the snapshot does not describe a pipeline", res.Window)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("want 2 cells (epochs off/on), got %d", len(res.Cells))
	}
	off, on := res.Cells[0], res.Cells[1]
	if off.Epochs || !on.Epochs || off.GoProcs != 2 || on.GoProcs != 2 {
		t.Fatalf("unexpected cell order: %+v", res.Cells)
	}
	// Both pipelines amortize fsyncs at this scale and the off/on gap
	// is noise-sized under instrumentation (e.g. -race), so the
	// relative comparison lives in the full-size CI gate. Here, assert
	// each pipeline amortized at all: far below one fsync per op.
	if off.FsyncsPerOp <= 0 || off.FsyncsPerOp > 0.5 {
		t.Errorf("group commit did not amortize: %.4f fsyncs/op", off.FsyncsPerOp)
	}
	if on.FsyncsPerOp <= 0 || on.FsyncsPerOp > 0.5 {
		t.Errorf("epochs did not amortize: %.4f fsyncs/op", on.FsyncsPerOp)
	}
}
