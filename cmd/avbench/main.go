// Command avbench sweeps experiment parameters and emits one CSV row
// per configuration, for plotting beyond the paper's single setting.
//
//	avbench -sweep sites      # 3..33 sites
//	avbench -sweep items      # catalog size
//	avbench -sweep initial    # initial stock (AV headroom)
//	avbench -sweep decrease   # retailer demand intensity
//	avbench -sweep passes     # AV gathering passes
//
// It can also snapshot the fast-path micro-benchmarks as JSON (the
// committed BENCH_2.json), the durable/group-commit fast path (the
// committed BENCH_4.json), the read plane's serving numbers (the
// committed BENCH_5.json), or the multi-core scaling matrix of the
// durable path across GOMAXPROCS 1/4/16 with the epoch commit pipeline
// off and on (the committed BENCH_6.json):
//
//	avbench -perf BENCH_2.json
//	avbench -durable BENCH_4.json
//	avbench -reads BENCH_5.json
//	avbench -matrix BENCH_6.json
//	avbench -shard BENCH_7.json
//	avbench -pipeline BENCH_8.json
//
// -pipeline reruns the BENCH_6 matrix with pipelined workers: each
// holds a bounded window of in-flight durability acknowledgements
// (ConsumeAsync) instead of waiting out every op, comparing the two
// commit pipelines at identical overlap (the committed BENCH_8.json).
//
// -procs pins GOMAXPROCS for the whole run (recorded in every JSON
// snapshot); with -matrix and -pipeline it collapses the GOMAXPROCS
// axis to that single point.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"avdb/internal/experiment"
)

func main() {
	var (
		sweep    = flag.String("sweep", "sites", "sites | items | initial | decrease | passes")
		updates  = flag.Int("updates", 5000, "updates per configuration")
		seed     = flag.Uint64("seed", 1, "workload seed")
		out      = flag.String("o", "", "output file (default stdout)")
		perf     = flag.String("perf", "", `write a perf snapshot (JSON) to this file ("-" for stdout) instead of sweeping`)
		durable  = flag.String("durable", "", `write a durable-path (group commit) snapshot (JSON) to this file ("-" for stdout) instead of sweeping`)
		reads    = flag.String("reads", "", `write a read-plane snapshot (JSON) to this file ("-" for stdout) instead of sweeping`)
		readFrac = flag.Float64("read-frac", 0.9, "fraction of reads in the -reads mixed workload")
		readOps  = flag.Int("read-ops", 5000, "mixed operations in the -reads workload")
		matrix   = flag.String("matrix", "", `write the multi-core scaling matrix (JSON) to this file ("-" for stdout) instead of sweeping`)
		shard    = flag.String("shard", "", `write the sharded-cluster scaling snapshot (JSON) to this file ("-" for stdout) instead of sweeping`)
		pipe     = flag.String("pipeline", "", `write the pipelined-commit matrix (JSON) to this file ("-" for stdout) instead of sweeping`)
		shardKey = flag.Int("shard-keys", 100000, "key-space size for the -shard workload")
		shardOps = flag.Int("shard-ops", 4000, "updates per -shard cell")
		procs    = flag.Int("procs", 0, "pin GOMAXPROCS for the run (0 = runtime default; with -matrix, restricts the axis to this value)")
	)
	flag.Parse()

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	if *perf != "" {
		if err := runPerf(*perf); err != nil {
			fmt.Fprintln(os.Stderr, "avbench:", err)
			os.Exit(1)
		}
		return
	}
	if *durable != "" {
		if err := runDurable(*durable); err != nil {
			fmt.Fprintln(os.Stderr, "avbench:", err)
			os.Exit(1)
		}
		return
	}
	if *reads != "" {
		if err := runReads(*reads, *readFrac, *readOps, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "avbench:", err)
			os.Exit(1)
		}
		return
	}
	if *shard != "" {
		if err := runShard(*shard, *shardKey, *shardOps, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "avbench:", err)
			os.Exit(1)
		}
		return
	}
	if *matrix != "" {
		axis := []int{1, 4, 16}
		if *procs > 0 {
			axis = []int{*procs}
		}
		if err := runMatrix(*matrix, axis); err != nil {
			fmt.Fprintln(os.Stderr, "avbench:", err)
			os.Exit(1)
		}
		return
	}
	if *pipe != "" {
		axis := []int{1, 4, 16}
		if *procs > 0 {
			axis = []int{*procs}
		}
		if err := runPipeline(*pipe, axis); err != nil {
			fmt.Fprintln(os.Stderr, "avbench:", err)
			os.Exit(1)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	base := experiment.Config{Updates: *updates, Seed: *seed, Checkpoint: *updates / 5}
	if err := run(w, *sweep, base); err != nil {
		fmt.Fprintln(os.Stderr, "avbench:", err)
		os.Exit(1)
	}
}

type point struct {
	x        string
	proposed *experiment.ProposedResult
	conv     *experiment.ConventionalResult
}

func run(w *os.File, sweep string, base experiment.Config) error {
	var points []point
	addPoint := func(x string, cfg experiment.Config) error {
		prop, err := experiment.RunProposed(cfg)
		if err != nil {
			return fmt.Errorf("%s=%s proposed: %w", sweep, x, err)
		}
		conv, err := experiment.RunConventional(cfg)
		if err != nil {
			return fmt.Errorf("%s=%s conventional: %w", sweep, x, err)
		}
		points = append(points, point{x: x, proposed: prop, conv: conv})
		return nil
	}

	switch sweep {
	case "sites":
		for _, n := range []int{3, 5, 9, 17, 33} {
			cfg := base
			cfg.Sites = n
			if err := addPoint(fmt.Sprint(n), cfg); err != nil {
				return err
			}
		}
	case "items":
		for _, n := range []int{10, 50, 100, 500, 1000} {
			cfg := base
			cfg.Items = n
			if err := addPoint(fmt.Sprint(n), cfg); err != nil {
				return err
			}
		}
	case "initial":
		for _, n := range []int64{100, 300, 1000, 3000, 10000} {
			cfg := base
			cfg.InitialAmount = n
			if err := addPoint(fmt.Sprint(n), cfg); err != nil {
				return err
			}
		}
	case "decrease":
		for _, f := range []float64{0.02, 0.05, 0.10, 0.20, 0.40} {
			cfg := base
			cfg.RetailerDecreaseFrac = f
			if err := addPoint(fmt.Sprintf("%.2f", f), cfg); err != nil {
				return err
			}
		}
	case "passes":
		for _, p := range []int{1, 2, 3, 5} {
			cfg := base
			cfg.Passes = p
			if err := addPoint(fmt.Sprint(p), cfg); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown sweep %q", sweep)
	}

	fmt.Fprintf(w, "%s,proposed_corr,conventional_corr,reduction_pct,local_frac,failures,transfer_rounds\n", sweep)
	for _, p := range points {
		red := 0.0
		if c := p.conv.Total.Last(); c > 0 {
			red = 100 * (1 - float64(p.proposed.Total.Last())/float64(c))
		}
		fmt.Fprintf(w, "%s,%d,%d,%.1f,%.3f,%d,%d\n",
			p.x, p.proposed.Total.Last(), p.conv.Total.Last(), red,
			p.proposed.LocalFraction, p.proposed.Failures, p.proposed.TransferRounds)
	}
	return nil
}
