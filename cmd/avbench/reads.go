package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"avdb/internal/cluster"
	"avdb/internal/metrics"
	"avdb/internal/workload"
)

// readsResult is the schema of the BENCH_5.json snapshot: the read
// plane's serving numbers. Two headline figures — concurrent
// snapshot-read throughput (read_qps: lock-free copy-on-swap reads
// scale with readers) and commit-to-visibility freshness
// (freshness_lag_p99_ns: how long a read-your-writes token waits
// before the stock view reflects its commit).
type readsResult struct {
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Procs     int    `json:"go_max_procs"`

	Sites    int     `json:"sites"`
	Items    int     `json:"items"`
	ReadFrac float64 `json:"read_frac"`

	// Mixed phase: one driver runs a ReadMix stream; reads hit the
	// stock view, writes commit through the accelerator and then wait
	// out their RYW token.
	MixedOps     int   `json:"mixed_ops"`
	MixedReads   int64 `json:"mixed_reads"`
	MixedWrites  int64 `json:"mixed_writes"`
	WriteCommits int64 `json:"write_commits"`

	FreshnessP50Ns int64 `json:"freshness_lag_p50_ns"`
	FreshnessP99Ns int64 `json:"freshness_lag_p99_ns"`
	FreshnessMaxNs int64 `json:"freshness_lag_max_ns"`

	// Throughput phase: Parallelism goroutines reading the stock view.
	Parallelism int     `json:"parallelism"`
	ReadQPS     float64 `json:"read_qps"`
	ReadNsOp    float64 `json:"read_ns_op"`

	// Summed across every site's plane; must be 0.
	RYWViolations int64 `json:"ryw_violations"`
}

// runReads measures the read-plane snapshot and writes it as JSON to
// path.
func runReads(path string, readFrac float64, ops int, seed uint64) error {
	const (
		sites   = 3
		items   = 50
		initial = 1_000_000
	)
	c, err := cluster.New(cluster.Config{
		Sites:         sites,
		Items:         items,
		InitialAmount: initial,
		Seed:          seed,
		ReadPlane:     true,
		FlushInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	gen, err := workload.NewReadMix(workload.ReadMixConfig{
		Inner: mustSCM(workload.SCMConfig{
			Sites: sites, Keys: c.RegularKeys, InitialAmount: initial, Seed: seed,
		}),
		ReadFrac: readFrac,
		Sites:    sites,
		Keys:     c.RegularKeys,
		Seed:     seed,
	})
	if err != nil {
		return err
	}

	res := readsResult{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Procs:     runtime.GOMAXPROCS(0),
		Sites:     sites,
		Items:     items,
		ReadFrac:  readFrac,
		MixedOps:  ops,
	}

	// Mixed phase: freshness lag is commit-return to token-satisfied at
	// the committing site's own plane.
	ctx := context.Background()
	lag := metrics.NewHistogram()
	for i := 0; i < ops; i++ {
		op := gen.Next()
		if op.Read {
			res.MixedReads++
			c.Sites[op.Site].ReadPlane().Stock().Amount(op.Key)
			continue
		}
		res.MixedWrites++
		r, err := c.Update(ctx, op.Site, op.Key, op.Delta)
		if err != nil {
			continue // AV exhaustion is workload noise, not a bench failure
		}
		res.WriteCommits++
		tok := c.Sites[op.Site].Token(r)
		start := time.Now()
		wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		werr := c.Sites[op.Site].ReadPlane().WaitFor(wctx, tok)
		cancel()
		if werr != nil {
			return fmt.Errorf("RYW token %v unsatisfied: %w", tok, werr)
		}
		lag.Observe(time.Since(start))
	}
	if res.WriteCommits == 0 {
		return errors.New("no write committed; freshness lag unmeasured")
	}
	snap := lag.Snapshot()
	res.FreshnessP50Ns = snap.Percentile(50).Nanoseconds()
	res.FreshnessP99Ns = snap.Percentile(99).Nanoseconds()
	res.FreshnessMaxNs = snap.Max.Nanoseconds()

	// Throughput phase: hammer site 0's stock view from NumCPU readers.
	// Reads are wait-free snapshot loads, so this measures the
	// copy-on-swap read path, not lock contention.
	res.Parallelism = runtime.NumCPU()
	if res.Parallelism < 4 {
		res.Parallelism = 4
	}
	perReader := 200_000
	plane := c.Sites[0].ReadPlane()
	var wg sync.WaitGroup
	startT := time.Now()
	for g := 0; g < res.Parallelism; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := c.RegularKeys
			for i := 0; i < perReader; i++ {
				plane.Stock().Amount(keys[(g+i)%len(keys)])
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(startT)
	total := float64(res.Parallelism) * float64(perReader)
	res.ReadQPS = total / elapsed.Seconds()
	res.ReadNsOp = float64(elapsed.Nanoseconds()) / total

	for _, s := range c.Sites {
		res.RYWViolations += s.ReadPlane().Stats().RYWViolations
	}
	if res.RYWViolations != 0 {
		return fmt.Errorf("%d RYW violations during the benchmark", res.RYWViolations)
	}

	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// mustSCM builds the inner write generator; the config is static, so a
// failure is a programming error.
func mustSCM(cfg workload.SCMConfig) *workload.SCM {
	g, err := workload.NewSCM(cfg)
	if err != nil {
		panic(err)
	}
	return g
}
