package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The -reads mode must produce a well-formed BENCH_5-shaped snapshot
// with the invariants the headline numbers rely on: every mixed op
// accounted for, freshness measured, and zero RYW violations.
func TestRunReadsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench5.json")
	if err := runReads(path, 0.5, 60, 1); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res readsResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if res.MixedReads+res.MixedWrites != int64(res.MixedOps) {
		t.Fatalf("reads %d + writes %d != ops %d", res.MixedReads, res.MixedWrites, res.MixedOps)
	}
	if res.MixedReads == 0 || res.MixedWrites == 0 {
		t.Fatalf("mix degenerate: %d reads, %d writes", res.MixedReads, res.MixedWrites)
	}
	if res.WriteCommits == 0 {
		t.Fatal("no write committed")
	}
	if res.FreshnessP99Ns < res.FreshnessP50Ns {
		t.Fatalf("p99 %d below p50 %d", res.FreshnessP99Ns, res.FreshnessP50Ns)
	}
	if res.ReadQPS <= 0 || res.ReadNsOp <= 0 {
		t.Fatalf("throughput unmeasured: qps=%v ns/op=%v", res.ReadQPS, res.ReadNsOp)
	}
	if res.RYWViolations != 0 {
		t.Fatalf("%d RYW violations", res.RYWViolations)
	}
}
