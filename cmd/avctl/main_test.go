package main

import (
	"strings"
	"testing"
)

func TestEpochSummaryDerivesFromDump(t *testing.T) {
	dump := strings.Join([]string{
		"# counters",
		"epoch_current 42",
		"epoch_durable 41",
		"epoch_closed_total 40",
		"epoch_commits_total 1200",
		"epoch_early_closes_total 3",
		"twopc_cross_epoch_commits 2",
		"",
		"# histogram epoch_ack_wait",
		"epoch_ack_wait_count 1200",
		"epoch_ack_wait_p50_ns 150000",
		"epoch_ack_wait_p99_ns 400000",
		"epoch_ack_wait_max_ns 900000",
	}, "\n")
	var out strings.Builder
	epochSummary(&out, dump)
	got := out.String()
	for _, want := range []string{
		"epoch current 42, durable 41 (lag 1)",
		"closed 40 epochs covering 1200 commits: 30.0 commits per fsync, 3 early closes",
		"ack wait p50 150µs, p99 400µs, max 900µs",
		"cross-epoch 2PC commits 2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestEpochSummaryQuietWhenEpochsOff(t *testing.T) {
	var out strings.Builder
	epochSummary(&out, "# counters\nwal_fsync_total 7\nepoch_closed_total 0\nepoch_commits_total 0\n")
	if out.Len() != 0 {
		t.Fatalf("expected no output for an epochs-off dump, got:\n%s", out.String())
	}
}
