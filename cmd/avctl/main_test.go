package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

func TestEpochSummaryDerivesFromDump(t *testing.T) {
	dump := strings.Join([]string{
		"# counters",
		"epoch_current 42",
		"epoch_durable 41",
		"epoch_closed_total 40",
		"epoch_commits_total 1200",
		"epoch_early_closes_total 3",
		"twopc_cross_epoch_commits 2",
		"",
		"# histogram epoch_ack_wait",
		"epoch_ack_wait_count 1200",
		"epoch_ack_wait_p50_ns 150000",
		"epoch_ack_wait_p99_ns 400000",
		"epoch_ack_wait_max_ns 900000",
	}, "\n")
	var out strings.Builder
	epochSummary(&out, dump)
	got := out.String()
	for _, want := range []string{
		"epoch current 42, durable 41 (lag 1)",
		"closed 40 epochs covering 1200 commits: 30.0 commits per fsync, 3 early closes",
		"ack wait p50 150µs, p99 400µs, max 900µs",
		"cross-epoch 2PC commits 2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestEpochSummaryRendersAdaptiveAndPipelined(t *testing.T) {
	dump := strings.Join([]string{
		"epoch_current 10",
		"epoch_durable 10",
		"epoch_closed_total 9",
		"epoch_commits_total 90",
		"epoch_interval_current_us 800",
		"epoch_widens_total 4",
		"epoch_collapses_total 2",
		"twopc_pipelined_commits 17",
	}, "\n")
	var out strings.Builder
	epochSummary(&out, dump)
	got := out.String()
	for _, want := range []string{
		"pipelined 2PC commits 17",
		"adaptive interval 800µs (widened 4, collapsed 2)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestEpochSummaryQuietWithoutAdaptiveController(t *testing.T) {
	var out strings.Builder
	epochSummary(&out, "epoch_closed_total 5\nepoch_commits_total 50\nepoch_interval_current_us 200\n")
	if strings.Contains(out.String(), "adaptive interval") {
		t.Fatalf("adaptive line rendered with zero widen/collapse counts:\n%s", out.String())
	}
}

func TestEpochSummaryQuietWhenEpochsOff(t *testing.T) {
	var out strings.Builder
	epochSummary(&out, "# counters\nwal_fsync_total 7\nepoch_closed_total 0\nepoch_commits_total 0\n")
	if out.Len() != 0 {
		t.Fatalf("expected no output for an epochs-off dump, got:\n%s", out.String())
	}
}

func TestPartitionsRendersTable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/partitions" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `{"map_version":1,"partitions":4,"rf":2,"sites":[0,1,2],
			"route_forwarded":5,"route_served":3,"route_misroutes":0,"route_map_refreshes":1,
			"hosted":[{"partition":2,"owner":0,"replicas":[0,1],"keys":7,"av_keys":7,
			"av_avail":900,"av_held":10,"stock":2800}]}`)
	}))
	defer srv.Close()

	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	code := partitions(strings.TrimPrefix(srv.URL, "http://"), time.Second)
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)

	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{
		"map v1: 4 partitions, rf 2, sites [0 1 2]",
		"forwarded 5, served 3, misroutes 0, map refreshes 1",
		"0,1",
		"2800",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
