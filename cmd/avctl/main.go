// Command avctl is the client CLI for avnode's text protocol.
//
//	avctl -addr localhost:7201 update product-0000 -50
//	avctl -addr localhost:7201 read product-0000
//	avctl -addr localhost:7201 av product-0000
//	avctl -addr localhost:7201 sync
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "localhost:7200", "avnode client address")
	timeout := flag.Duration("timeout", 5*time.Second, "dial/IO timeout")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: avctl [-addr host:port] <update|read|av|sync> [args...]")
		os.Exit(2)
	}
	cmd := strings.ToUpper(flag.Arg(0))
	line := strings.Join(append([]string{cmd}, flag.Args()[1:]...), " ")

	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avctl:", err)
		os.Exit(1)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(*timeout))

	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		fmt.Fprintln(os.Stderr, "avctl:", err)
		os.Exit(1)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		fmt.Fprintln(os.Stderr, "avctl: no reply")
		os.Exit(1)
	}
	reply := sc.Text()
	fmt.Println(reply)
	if strings.HasPrefix(reply, "ERR") {
		os.Exit(1)
	}
}
