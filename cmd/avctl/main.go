// Command avctl is the client CLI for avnode's text protocol, plus a
// stats subcommand for avnode's admin HTTP server.
//
//	avctl -addr localhost:7201 update product-0000 -50
//	avctl -addr localhost:7201 read product-0000
//	avctl -addr localhost:7201 av product-0000
//	avctl -addr localhost:7201 sync
//	avctl -admin localhost:7300 stats
//	avctl -admin localhost:7300 health
//	avctl -admin localhost:7300 watch [stock|global|hot] [-interval 1s] [-key k]
//	avctl -admin localhost:7300 partitions
//
// `stats` dumps /metrics verbatim, including the durability-pipeline
// gauges (wal_fsync_total, wal_records_synced_total, the
// wal_group_commit_size and wal_sync_wait histograms): when
// wal_records_synced_total outruns wal_fsync_total, group commit is
// amortizing fsyncs across concurrent durable operations. With
// -readplane (the default) the dump also carries the readplane_*
// counters — events applied/stale, resyncs, feed drops, per-model read
// counts, RYW waits/timeouts/violations — and the readplane_lag and
// readplane_ryw_wait histograms. When the node runs with -epoch, stats
// follows the dump with a derived summary of the epoch commit pipeline:
// current/durable epoch, mean commits per epoch (the live fsync
// amortization factor), early closes, and acknowledgement-wait
// percentiles.
//
// `watch` streams one of the read plane's materialized models
// (ndjson, one snapshot per line) from /read/watch until interrupted.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

const usage = "usage: avctl [-addr host:port] [-admin host:port] <update|read|av|sync|stats|health|watch|partitions> [args...]"

func main() {
	addr := flag.String("addr", "localhost:7200", "avnode client address")
	admin := flag.String("admin", "localhost:7300", "avnode admin HTTP address (stats)")
	timeout := flag.Duration("timeout", 5*time.Second, "dial/IO timeout")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}
	cmd := strings.ToUpper(flag.Arg(0))
	if cmd == "STATS" {
		os.Exit(stats(*admin, *timeout))
	}
	if cmd == "HEALTH" {
		os.Exit(health(*admin, *timeout))
	}
	if cmd == "WATCH" {
		os.Exit(watch(*admin, flag.Args()[1:]))
	}
	if cmd == "PARTITIONS" {
		os.Exit(partitions(*admin, *timeout))
	}
	line := strings.Join(append([]string{cmd}, flag.Args()[1:]...), " ")

	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avctl:", err)
		os.Exit(1)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(*timeout))

	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		fmt.Fprintln(os.Stderr, "avctl:", err)
		os.Exit(1)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		fmt.Fprintln(os.Stderr, "avctl: no reply")
		os.Exit(1)
	}
	reply := sc.Text()
	fmt.Println(reply)
	if strings.HasPrefix(reply, "ERR") {
		os.Exit(1)
	}
}

// stats prints the node's /metrics and its recent traces from the admin
// server. Returns the process exit code.
func stats(admin string, timeout time.Duration) int {
	client := &http.Client{Timeout: timeout}
	var dump strings.Builder
	if err := fetch(client, "http://"+admin+"/metrics", io.MultiWriter(os.Stdout, &dump)); err != nil {
		fmt.Fprintln(os.Stderr, "avctl: metrics:", err)
		return 1
	}
	epochSummary(os.Stdout, dump.String())
	fmt.Println("\n# recent traces")
	if err := fetch(client, "http://"+admin+"/trace/recent?format=text&n=50", os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "avctl: traces:", err)
		return 1
	}
	return 0
}

// epochSummary digests the raw epoch_* gauges from a /metrics dump into
// a few human-readable lines. Quiet when the node runs without -epoch
// (every epoch counter zero or absent).
func epochSummary(w io.Writer, dump string) {
	m := make(map[string]int64)
	for _, line := range strings.Split(dump, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if v, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
			m[fields[0]] = v
		}
	}
	closed, commits := m["epoch_closed_total"], m["epoch_commits_total"]
	if closed == 0 && commits == 0 {
		return
	}
	fmt.Fprintf(w, "\n# epoch commit pipeline (derived)\n")
	fmt.Fprintf(w, "epoch current %d, durable %d (lag %d)\n",
		m["epoch_current"], m["epoch_durable"], m["epoch_current"]-m["epoch_durable"])
	perEpoch := 0.0
	if closed > 0 {
		perEpoch = float64(commits) / float64(closed)
	}
	fmt.Fprintf(w, "closed %d epochs covering %d commits: %.1f commits per fsync, %d early closes\n",
		closed, commits, perEpoch, m["epoch_early_closes_total"])
	if count, ok := m["epoch_ack_wait_count"]; ok && count > 0 {
		fmt.Fprintf(w, "ack wait p50 %v, p99 %v, max %v\n",
			time.Duration(m["epoch_ack_wait_p50_ns"]),
			time.Duration(m["epoch_ack_wait_p99_ns"]),
			time.Duration(m["epoch_ack_wait_max_ns"]))
	}
	if x := m["twopc_cross_epoch_commits"]; x > 0 {
		fmt.Fprintf(w, "cross-epoch 2PC commits %d (ack durable-epoch ran ahead of every vote epoch)\n", x)
	}
	if x := m["twopc_pipelined_commits"]; x > 0 {
		fmt.Fprintf(w, "pipelined 2PC commits %d (next round prepared while a prior fsync drained)\n", x)
	}
	// Adaptive interval controller state: only meaningful once the
	// controller has moved the interval at least once.
	if widens, collapses := m["epoch_widens_total"], m["epoch_collapses_total"]; widens > 0 || collapses > 0 {
		fmt.Fprintf(w, "adaptive interval %v (widened %d, collapsed %d)\n",
			time.Duration(m["epoch_interval_current_us"])*time.Microsecond, widens, collapses)
	}
}

// watch streams one read-plane model (stock, global, or hot) from the
// admin server's /read/watch as ndjson, one snapshot per line, until
// the connection drops or the process is interrupted. Returns the
// process exit code.
func watch(admin string, args []string) int {
	model := "stock"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		model, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "snapshot interval (min 10ms)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	url := fmt.Sprintf("http://%s/read/watch?model=%s&interval_ms=%d",
		admin, model, interval.Milliseconds())

	// No client timeout: the stream is open-ended by design.
	resp, err := http.Get(url) //nolint:noctx // interactive CLI stream
	if err != nil {
		fmt.Fprintln(os.Stderr, "avctl: watch:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fmt.Fprintf(os.Stderr, "avctl: watch: %s: %s\n", resp.Status, strings.TrimSpace(string(body)))
		return 1
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "avctl: watch:", err)
		return 1
	}
	return 0
}

// partitions fetches the node's /partitions view and renders it as a
// table: map header, routing counters, one line per hosted partition.
// Returns the process exit code.
func partitions(admin string, timeout time.Duration) int {
	client := &http.Client{Timeout: timeout}
	var buf strings.Builder
	if err := fetch(client, "http://"+admin+"/partitions", &buf); err != nil {
		fmt.Fprintln(os.Stderr, "avctl: partitions:", err)
		return 1
	}
	var reply struct {
		MapVersion uint64 `json:"map_version"`
		Partitions int    `json:"partitions"`
		RF         int    `json:"rf"`
		Sites      []int  `json:"sites"`
		Forwarded  uint64 `json:"route_forwarded"`
		Served     uint64 `json:"route_served"`
		Misroutes  uint64 `json:"route_misroutes"`
		Refreshes  uint64 `json:"route_map_refreshes"`
		Hosted     []struct {
			Partition int   `json:"partition"`
			Owner     int   `json:"owner"`
			Replicas  []int `json:"replicas"`
			Keys      int   `json:"keys"`
			AVKeys    int   `json:"av_keys"`
			AVAvail   int64 `json:"av_avail"`
			AVHeld    int64 `json:"av_held"`
			Stock     int64 `json:"stock"`
		} `json:"hosted"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &reply); err != nil {
		fmt.Fprintln(os.Stderr, "avctl: partitions: bad reply:", err)
		return 1
	}
	fmt.Printf("map v%d: %d partitions, rf %d, sites %v\n",
		reply.MapVersion, reply.Partitions, reply.RF, reply.Sites)
	fmt.Printf("routing: forwarded %d, served %d, misroutes %d, map refreshes %d\n",
		reply.Forwarded, reply.Served, reply.Misroutes, reply.Refreshes)
	fmt.Printf("%-10s %-6s %-12s %6s %8s %10s %8s %10s\n",
		"partition", "owner", "replicas", "keys", "av_keys", "av_avail", "av_held", "stock")
	for _, h := range reply.Hosted {
		fmt.Printf("%-10d %-6d %-12s %6d %8d %10d %8d %10d\n",
			h.Partition, h.Owner, strings.Trim(strings.Join(strings.Fields(fmt.Sprint(h.Replicas)), ","), "[]"),
			h.Keys, h.AVKeys, h.AVAvail, h.AVHeld, h.Stock)
	}
	return 0
}

// health probes the node's /healthz; exit 0 iff the node answers ok.
func health(admin string, timeout time.Duration) int {
	client := &http.Client{Timeout: timeout}
	var buf strings.Builder
	if err := fetch(client, "http://"+admin+"/healthz", &buf); err != nil {
		fmt.Fprintln(os.Stderr, "avctl: health:", err)
		return 1
	}
	fmt.Print(buf.String())
	if !strings.HasPrefix(buf.String(), "ok") {
		return 1
	}
	return 0
}

// fetch GETs url and copies the body to w.
func fetch(client *http.Client, url string, w io.Writer) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
