// Command avsim reproduces the paper's evaluation and the repository's
// extension studies. Each experiment prints the same rows the paper
// reports (Fig. 6's two series, Table 1's per-site counts) as an
// aligned text table, optionally duplicated as CSV.
//
// Usage:
//
//	avsim -experiment fig6
//	avsim -experiment table1
//	avsim -experiment ablation-decide|ablation-select|scaling|mix|fault|all
//	avsim -updates 10000 -items 100 -initial 1000 -seed 1 -csv out.csv
//
// The deterministic whole-cluster simulation (see internal/sim) is also
// reachable here, so a failing sweep seed can be replayed outside the
// test harness:
//
//	avsim -experiment sim -sim-seed 17            # replay one seed
//	avsim -experiment sim -sim-seed 0 -sim-seeds 100  # sweep 100 seeds
package main

import (
	"flag"
	"fmt"
	"os"

	"avdb/internal/experiment"
	"avdb/internal/metrics"
	"avdb/internal/sim"
	"avdb/internal/workload"
)

func main() {
	var (
		exp     = flag.String("experiment", "fig6", "fig6 | table1 | ablation-decide | ablation-select | ablation-gossip | scaling | mix | fault | latency | all")
		sites   = flag.Int("sites", 3, "number of sites (site 0 is the maker/base)")
		items   = flag.Int("items", 100, "products in each local DB")
		initial = flag.Int64("initial", 1000, "initial stock per product")
		updates = flag.Int("updates", 10000, "total updates to drive")
		chkpt   = flag.Int("checkpoint", 1000, "checkpoint interval for series")
		seed    = flag.Uint64("seed", 1, "workload seed")
		passes  = flag.Int("passes", 0, "AV gathering passes (0 = default 3)")
		atBase  = flag.Bool("av-at-base", false, "concentrate initial AV at site 0")
		flushEv = flag.Int("flush-every", 0, "anti-entropy every N updates (0 = end only)")
		bcast   = flag.Bool("conventional-broadcast", false, "baseline maintains replicas synchronously")
		csvPath = flag.String("csv", "", "also write the primary table as CSV to this file")
		traceIn = flag.String("trace-in", "", "replay a recorded op trace instead of the synthetic workload")

		simSeed  = flag.Uint64("sim-seed", 0, "sim: seed to run (reproduces a sweep failure exactly)")
		simSeeds = flag.Int("sim-seeds", 0, "sim: sweep this many consecutive seeds starting at -sim-seed")
		simTicks = flag.Int("sim-ticks", 0, "sim: workload operations per run (0 = default)")
	)
	flag.Parse()

	if *exp == "sim" {
		if err := runSim(*simSeed, *simSeeds, *simTicks); err != nil {
			fmt.Fprintln(os.Stderr, "avsim:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiment.Config{
		Sites:                 *sites,
		Items:                 *items,
		InitialAmount:         *initial,
		Updates:               *updates,
		Checkpoint:            *chkpt,
		Seed:                  *seed,
		Passes:                *passes,
		AVAllAtBase:           *atBase,
		FlushEvery:            *flushEv,
		ConventionalBroadcast: *bcast,
	}

	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsim:", err)
			os.Exit(1)
		}
		ops, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsim:", err)
			os.Exit(1)
		}
		cfg.Replay = ops
	}

	if err := run(*exp, cfg, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "avsim:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg experiment.Config, csvPath string) error {
	switch exp {
	case "fig6":
		return runFig6(cfg, csvPath)
	case "table1":
		return runTable1(cfg, csvPath)
	case "ablation-decide":
		rows, err := experiment.RunDecidingAblation(cfg)
		if err != nil {
			return err
		}
		return emit(experiment.AblationTable("A1 — deciding-policy ablation (how much should a donor grant?)", rows), csvPath)
	case "ablation-select":
		rows, err := experiment.RunSelectingAblation(cfg)
		if err != nil {
			return err
		}
		return emit(experiment.AblationTable("A2 — selecting-policy ablation (whom to ask for AV?)", rows), csvPath)
	case "scaling":
		rows, err := experiment.RunScaling(cfg, []int{3, 5, 9, 17})
		if err != nil {
			return err
		}
		return emit(experiment.AblationTable("A3 — scaling the number of sites (constant per-site load)", rows), csvPath)
	case "mix":
		rows, err := experiment.RunMix(cfg, []float64{0, 0.25, 0.5, 0.75, 1})
		if err != nil {
			return err
		}
		return emit(experiment.AblationTable("A5 — cost of the non-regular (Immediate Update) share", rows), csvPath)
	case "fault":
		res, err := experiment.RunFault(cfg)
		if err != nil {
			return err
		}
		return emit(experiment.FaultTable(res), csvPath)
	case "latency":
		res, err := experiment.RunLatency(experiment.LatencyConfig{Config: cfg})
		if err != nil {
			return err
		}
		return emit(experiment.LatencyTable(res), csvPath)
	case "trace":
		// Emit the synthetic workload the other experiments would drive,
		// for editing or replaying with -trace-in.
		gen, err := workload.NewSCM(workload.SCMConfig{
			Sites:         cfg.Sites,
			Keys:          workload.Keys(cfg.Items),
			InitialAmount: cfg.InitialAmount,
			Seed:          cfg.Seed,
		})
		if err != nil {
			return err
		}
		ops := make([]workload.Op, cfg.Updates)
		for i := range ops {
			ops[i] = gen.Next()
		}
		return workload.WriteTrace(os.Stdout, ops)
	case "ablation-gossip":
		rows, err := experiment.RunGossipAblation(cfg)
		if err != nil {
			return err
		}
		return emit(experiment.AblationTable("A7 — value of the piggybacked AV view (gossip)", rows), csvPath)
	case "all":
		for _, e := range []string{"fig6", "table1", "ablation-decide", "ablation-select", "ablation-gossip", "scaling", "mix", "fault", "latency"} {
			if err := run(e, cfg, ""); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func runFig6(cfg experiment.Config, csvPath string) error {
	res, err := experiment.RunFig6(cfg)
	if err != nil {
		return err
	}
	tab, err := experiment.Fig6Table(res)
	if err != nil {
		return err
	}
	if err := emit(tab, csvPath); err != nil {
		return err
	}
	fmt.Printf("\nreduction vs conventional: %.1f%% (paper reports ~75%%)\n", res.ReductionPct)
	fmt.Printf("delay updates completed locally: %.1f%%\n", 100*res.Proposed.LocalFraction)
	fmt.Printf("AV transfer round trips: %d; failures (insufficient AV): %d\n",
		res.Proposed.TransferRounds, res.Proposed.Failures)
	fmt.Printf("background sync messages (not in the curves): %d\n", res.Proposed.SyncMessages)
	return nil
}

func runTable1(cfg experiment.Config, csvPath string) error {
	res, err := experiment.RunTable1(cfg)
	if err != nil {
		return err
	}
	tab := experiment.Table1Table(res)
	if err := emit(tab, csvPath); err != nil {
		return err
	}
	if len(res.PerSite) >= 3 {
		s1, s2 := res.PerSite[1].Last(), res.PerSite[2].Last()
		fmt.Printf("\nretailer fairness (site1 vs site2 at horizon): %d vs %d\n", s1, s2)
		fmt.Printf("Jain fairness index over retailers: %.4f (1.0 = perfectly fair)\n",
			experiment.Fairness(res))
	}
	return nil
}

func emit(tab *metrics.Table, csvPath string) error {
	if err := tab.WriteText(os.Stdout); err != nil {
		return err
	}
	if csvPath == "" {
		return nil
	}
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.WriteCSV(f)
}

// runSim drives the deterministic whole-cluster simulation: a single
// seed reproduction (the command a sweep failure report prints), or a
// sweep of consecutive seeds with automatic schedule minimization.
func runSim(seed uint64, seeds, ticks int) error {
	cfg := sim.Config{Seed: seed, Ticks: ticks}
	if seeds > 0 {
		failures, err := sim.Sweep(cfg, seed, seeds, os.Stdout)
		if err != nil {
			return err
		}
		if len(failures) > 0 {
			return fmt.Errorf("sim: %d of %d seeds violated an invariant", len(failures), seeds)
		}
		fmt.Printf("sim: %d seeds clean starting at %d\n", seeds, seed)
		return nil
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("sim: seed %d: %d ops (%d commit / %d abort / %d unknown / %d rejected), %d fault steps, trace hash %016x\n",
		res.Seed, res.Ops, res.Commits, res.Aborts, res.Unknown, res.Rejected, len(res.Script), res.TraceHash)
	if res.Violation == nil {
		return nil
	}
	minimized, mres, merr := sim.Minimize(cfg)
	if merr != nil {
		minimized, mres = res.Script, res
	}
	fmt.Print(sim.FormatFailure(seed, mres, minimized, len(res.Script)))
	return fmt.Errorf("sim: seed %d violated an invariant", seed)
}
