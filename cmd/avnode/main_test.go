package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"avdb/internal/partition"
	"avdb/internal/site"
	"avdb/internal/transport/memnet"
	"avdb/internal/wire"
)

func TestParsePeers(t *testing.T) {
	peers, addrs, err := parsePeers("1=localhost:7101, 2=10.0.0.5:7102")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != 1 || peers[1] != 2 {
		t.Fatalf("peers = %v", peers)
	}
	if addrs[1] != "localhost:7101" || addrs[2] != "10.0.0.5:7102" {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestParsePeersEmpty(t *testing.T) {
	peers, addrs, err := parsePeers("")
	if err != nil || len(peers) != 0 || len(addrs) != 0 {
		t.Fatalf("empty spec: %v %v %v", peers, addrs, err)
	}
}

func TestParsePeersErrors(t *testing.T) {
	for _, spec := range []string{"nonsense", "x=host:1", "1", "=host:1"} {
		if _, _, err := parsePeers(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestSeedClassificationAndAV(t *testing.T) {
	net := memnet.New(memnet.Options{})
	s, err := site.Open(site.Config{ID: 0, Peers: []wire.SiteID{1, 2}}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := seed(s, 10, 900, 0, 0.3, 3, nil); err != nil {
		t.Fatal(err)
	}
	if s.Engine().Len() != 10 {
		t.Fatalf("seeded %d rows", s.Engine().Len())
	}
	// 3 of 10 items are non-regular: no AV defined on them.
	if s.AV().Defined("product-0000") || s.AV().Defined("product-0002") {
		t.Fatal("non-regular product has AV")
	}
	if !s.AV().Defined("product-0003") {
		t.Fatal("regular product missing AV")
	}
	// Default AV share = initial / sites.
	if av := s.AV().Avail("product-0003"); av != 300 {
		t.Fatalf("AV share = %d, want 300", av)
	}
}

func TestSeedIdempotentOnRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := site.Config{ID: 0, StorageDir: dir, PersistAV: true, NoSync: true}
	s, err := site.Open(cfg, memnet.New(memnet.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := seed(s, 2, 100, 0, 0, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(ctxBg(), "product-0000", -30); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := site.Open(cfg, memnet.New(memnet.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := seed(s2, 2, 100, 0, 0, 2, nil); err != nil {
		t.Fatal(err)
	}
	// Restart + reseed must not reset stock or mint AV.
	if v, _ := s2.Read("product-0000"); v != 70 {
		t.Fatalf("stock = %d after reseed", v)
	}
	if av := s2.AV().Avail("product-0000"); av != 20 {
		t.Fatalf("AV = %d after reseed, want 50-30", av)
	}
}

func ctxBg() context.Context { return context.Background() }

func TestSeedPartitionedHostsOnly(t *testing.T) {
	pm, err := partition.New([]wire.SiteID{0, 1, 2}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := site.Open(site.Config{ID: 0, Peers: []wire.SiteID{1, 2}, Partitions: pm},
		memnet.New(memnet.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const items = 40
	if err := seed(s, items, 900, 0, 0, 3, pm); err != nil {
		t.Fatal(err)
	}
	hosted := 0
	for i := 0; i < items; i++ {
		key := fmt.Sprintf("product-%04d", i)
		if pm.HostsKey(0, key) {
			hosted++
			if _, err := s.Read(key); err != nil {
				t.Errorf("hosted key %s missing: %v", key, err)
			}
			// AV default splits across the replica set, not the cluster.
			if av := s.AV().Avail(key); av != 450 {
				t.Errorf("AV share for %s = %d, want 450", key, av)
			}
		} else if _, err := s.Read(key); err == nil {
			t.Errorf("foreign key %s seeded locally", key)
		}
	}
	if hosted == 0 || hosted == items {
		t.Fatalf("degenerate hosting: %d/%d", hosted, items)
	}
	if s.Engine().Len() != hosted {
		t.Fatalf("store holds %d rows, hosts %d keys", s.Engine().Len(), hosted)
	}
}

func TestPartitionsHandler(t *testing.T) {
	pm, err := partition.New([]wire.SiteID{0, 1}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := site.Open(site.Config{ID: 0, Peers: []wire.SiteID{1}, Partitions: pm},
		memnet.New(memnet.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := seed(s, 8, 100, 0, 0, 2, pm); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	partitionsHandler(s).ServeHTTP(rec, httptest.NewRequest("GET", "/partitions", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var reply struct {
		MapVersion uint64 `json:"map_version"`
		Partitions int    `json:"partitions"`
		RF         int    `json:"rf"`
		Hosted     []struct {
			Partition int `json:"partition"`
			Keys      int `json:"keys"`
		} `json:"hosted"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if reply.MapVersion != 1 || reply.Partitions != 4 || reply.RF != 1 {
		t.Fatalf("reply header %+v", reply)
	}
	if len(reply.Hosted) != len(pm.Hosted(0)) {
		t.Fatalf("hosted %d partitions, map says %d", len(reply.Hosted), len(pm.Hosted(0)))
	}
}
