// Command avnode runs one avdb site as its own process, speaking the
// inter-site protocol over TCP and serving clients on a simple text
// protocol. A three-node cluster on one machine:
//
//	avnode -id 0 -listen :7100 -peers 1=localhost:7101,2=localhost:7102 -client :7200 &
//	avnode -id 1 -listen :7101 -peers 0=localhost:7100,2=localhost:7102 -client :7201 &
//	avnode -id 2 -listen :7102 -peers 0=localhost:7100,1=localhost:7101 -client :7202 &
//	avctl -addr localhost:7201 update product-0000 -50
//
// Every node must be started with identical -seed-* flags so the seeded
// catalogs agree (the paper assumes initial delivery from the base DB).
//
// Client protocol (one command per line):
//
//	UPDATE <key> <delta>   -> OK <path> token=<site:lsn> | ERR <reason>
//	READ <key>             -> OK <value> | ERR <reason>
//	AV <key>               -> OK <avail>
//	SYNC                   -> OK
//	QUIT                   -> closes the connection
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"avdb/internal/epoch"
	"avdb/internal/failure"
	"avdb/internal/metrics"
	"avdb/internal/obs"
	"avdb/internal/partition"
	"avdb/internal/site"
	"avdb/internal/storage"
	"avdb/internal/trace"
	"avdb/internal/transport/tcpnet"
	"avdb/internal/wal"
	"avdb/internal/wire"
)

func main() {
	var (
		id       = flag.Uint("id", 0, "this site's ID")
		base     = flag.Uint("base", 0, "site hosting the base DB (primary copy)")
		listen   = flag.String("listen", ":7100", "inter-site listen address")
		peerSpec = flag.String("peers", "", "comma-separated id=host:port peer list")
		client   = flag.String("client", ":7200", "client (text protocol) listen address")
		dir      = flag.String("dir", "", "storage directory (empty = in-memory)")
		persist  = flag.Bool("persist-av", false, "journal the AV table under -dir so it survives restarts")
		items    = flag.Int("seed-items", 10, "products to seed")
		initial  = flag.Int64("seed-initial", 1000, "initial stock per product")
		avShare  = flag.Int64("seed-av", 0, "this site's initial AV per product (0 = initial/num-sites)")
		nonReg   = flag.Float64("seed-nonregular", 0, "fraction of products without AV")
		flushMS  = flag.Int("flush-ms", 500, "anti-entropy interval in milliseconds")
		admin    = flag.String("admin", "", "admin HTTP listen address for /healthz, /metrics, /trace (empty = disabled)")
		traceBuf = flag.Int("trace-buf", trace.DefaultCapacity, "finished spans kept for /trace (with -admin)")

		heartbeatMS  = flag.Int("heartbeat-ms", 1000, "peer liveness probe interval in milliseconds (0 = off)")
		suspectMS    = flag.Int("suspect-after-ms", 0, "consecutive-failure duration before a peer is suspected (0 = default)")
		flushPeerMS  = flag.Int("flush-peer-ms", 2000, "per-peer deadline within one anti-entropy flush (0 = unbounded)")
		escrow       = flag.Bool("escrow", false, "make remote AV grants crash-safe escrowed transfers")
		readPlane    = flag.Bool("readplane", true, "materialize read models and serve /read/* on the admin server")
		readTopK     = flag.Int("read-topk", 0, "hot-key view size (0 = default)")
		retransmitMS = flag.Int("retransmit-ms", 0, "inter-site RPC retransmission interval in milliseconds (0 = off; receivers dedup)")
		syncDelayUS  = flag.Int("wal-sync-delay-us", 0, "group-commit leader stall in microseconds to widen fsync batches (0 = commit immediately)")
		epochOn      = flag.Bool("epoch", false, "acknowledge durable commits at epoch boundaries (one fsync per epoch) instead of per group-commit round")
		epochUS      = flag.Int("epoch-interval-us", 200, "epoch length in microseconds (with -epoch)")
		epochMax     = flag.Int("epoch-max-commits", 0, "close an epoch early once it holds this many commits (0 = default, negative = never)")
		epochAdapt   = flag.Bool("epoch-adaptive", false, "adapt the epoch interval to load: widen when epochs fill early, collapse toward the floor when they close near-empty (with -epoch)")
		epochMinUS   = flag.Int("epoch-min-interval-us", 0, "adaptive epoch interval floor in microseconds (0 = interval/4; with -epoch-adaptive)")
		epochMaxUS   = flag.Int("epoch-max-interval-us", 0, "adaptive epoch interval ceiling in microseconds (0 = interval*8; with -epoch-adaptive)")
		partitions   = flag.Int("partitions", 0, "shard the catalog over this many partitions (0 = legacy full replication; identical on every node)")
		rf           = flag.Int("rf", 2, "replicas per partition (with -partitions; capped at the cluster size)")
	)
	flag.Parse()

	peers, addrs, err := parsePeers(*peerSpec)
	if err != nil {
		log.Fatalf("avnode: %v", err)
	}

	// The partition map is derived, not exchanged: every node computes it
	// from the same -partitions/-rf flags over the same membership, so the
	// maps agree by construction (version 1 everywhere).
	var pm *partition.Map
	if *partitions > 0 {
		ids := append([]wire.SiteID{wire.SiteID(*id)}, peers...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		f := *rf
		if f > len(ids) {
			f = len(ids)
		}
		if pm, err = partition.New(ids, *partitions, f); err != nil {
			log.Fatalf("avnode: partition map: %v", err)
		}
	}

	// Observability: the registry always counts (it is cheap); the tracer
	// and admin server exist only when -admin is set.
	registry := metrics.NewRegistry()
	var tracer *trace.Tracer
	var updateLatency *metrics.Histogram
	// walStats aggregates fsync/group-commit counters across the storage
	// WAL and the AV journal; the histograms (which retain samples) are
	// attached only when the admin server will actually serve them.
	walStats := &wal.Stats{}
	// epochStats aggregates epoch-pipeline counters across the storage
	// engine and the AV journal (both share one manager configuration).
	epochStats := &epoch.Stats{}
	if *admin != "" {
		tracer = trace.New(*traceBuf)
		updateLatency = metrics.NewHistogram()
		walStats.GroupSize = metrics.NewHistogram()
		walStats.SyncWait = metrics.NewHistogram()
		epochStats.CommitsPerEpoch = metrics.NewHistogram()
		epochStats.CloseLatency = metrics.NewHistogram()
		epochStats.AckWait = metrics.NewHistogram()
	}

	network := &tcpnet.Network{Cfg: tcpnet.Config{
		ID:                 wire.SiteID(*id),
		Listen:             *listen,
		Peers:              addrs,
		Registry:           registry,
		Tracer:             tracer,
		RetransmitInterval: time.Duration(*retransmitMS) * time.Millisecond,
	}}
	var flushBackoff failure.Policy
	if *flushPeerMS > 0 {
		flushBackoff = failure.Policy{BaseDelay: 250 * time.Millisecond, MaxDelay: 10 * time.Second}
	}
	s, err := site.Open(site.Config{
		ID:                wire.SiteID(*id),
		Base:              wire.SiteID(*base),
		Peers:             peers,
		StorageDir:        *dir,
		PersistAV:         *persist,
		Tracer:            tracer,
		FlushInterval:     time.Duration(*flushMS) * time.Millisecond,
		SweepInterval:     2 * time.Second,
		HeartbeatInterval: time.Duration(*heartbeatMS) * time.Millisecond,
		SuspectAfter:      time.Duration(*suspectMS) * time.Millisecond,
		FlushPeerTimeout:  time.Duration(*flushPeerMS) * time.Millisecond,
		FlushBackoff:      flushBackoff,
		EscrowTransfers:   *escrow,
		ReadPlane:         *readPlane,
		ReadPlaneTopK:     *readTopK,
		WALMaxSyncDelay:   time.Duration(*syncDelayUS) * time.Microsecond,
		WALStats:          walStats,
		EpochInterval:     epochInterval(*epochOn, *epochUS),
		EpochMaxCommits:   *epochMax,
		EpochAdaptive:     *epochAdapt,
		EpochMinInterval:  time.Duration(*epochMinUS) * time.Microsecond,
		EpochMaxInterval:  time.Duration(*epochMaxUS) * time.Microsecond,
		EpochAlignFlush:   *epochOn,
		EpochStats:        epochStats,
		Partitions:        pm,
	}, network)
	if err != nil {
		log.Fatalf("avnode: open site: %v", err)
	}
	defer s.Close()

	if *admin != "" {
		srv := obs.New(obs.Options{Registry: registry, Tracer: tracer})
		srv.RegisterHistogram("update_latency", updateLatency)
		// Failure-model counters: how often the node failed over, retried,
		// aborted, or reconciled — the first place to look when a cluster
		// is degraded.
		srv.RegisterCounter("av_failovers", s.Accelerator().Stats().Failovers.Load)
		srv.RegisterCounter("escrow_settles", s.Accelerator().Stats().Settles.Load)
		srv.RegisterCounter("escrow_cancels", s.Accelerator().Stats().Cancels.Load)
		srv.RegisterCounter("twopc_aborts", s.TwoPC().Stats().Aborts.Load)
		srv.RegisterCounter("twopc_swept", s.TwoPC().Stats().Swept.Load)
		srv.RegisterCounter("twopc_decision_retries", s.TwoPC().Stats().DecisionRetries.Load)
		srv.RegisterCounter("suspected_peers", func() int64 {
			return int64(len(s.Detector().Suspects()))
		})
		// Durability-pipeline counters: fsyncs vs records synced shows the
		// group-commit amortization live (fsyncs/op < 1 under load).
		srv.RegisterCounter("wal_fsync_total", walStats.Fsyncs.Load)
		srv.RegisterCounter("wal_sync_rounds_total", walStats.SyncRounds.Load)
		srv.RegisterCounter("wal_records_synced_total", walStats.RecordsSynced.Load)
		srv.RegisterSizeHistogram("wal_group_commit_size", walStats.GroupSize)
		srv.RegisterHistogram("wal_sync_wait", walStats.SyncWait)
		// Epoch-pipeline counters (all zero unless -epoch): one fsync per
		// closed epoch, so epoch_commits_total / epoch_closed_total is the
		// live amortization factor.
		if em := s.Epochs(); em != nil {
			srv.RegisterCounter("epoch_current", func() int64 { return int64(em.Current()) })
			srv.RegisterCounter("epoch_durable", func() int64 { return int64(em.Durable()) })
			// With -epoch-adaptive this moves between the min/max clamps;
			// otherwise it sits at -epoch-interval-us.
			srv.RegisterCounter("epoch_interval_current_us", func() int64 { return em.Interval().Microseconds() })
		}
		srv.RegisterCounter("epoch_closed_total", epochStats.Epochs.Load)
		srv.RegisterCounter("epoch_commits_total", epochStats.Commits.Load)
		srv.RegisterCounter("epoch_early_closes_total", epochStats.EarlyCloses.Load)
		srv.RegisterCounter("epoch_widens_total", epochStats.Widens.Load)
		srv.RegisterCounter("epoch_collapses_total", epochStats.Collapses.Load)
		srv.RegisterCounter("twopc_cross_epoch_commits", s.TwoPC().Stats().CrossEpochCommits.Load)
		srv.RegisterCounter("twopc_pipelined_commits", s.TwoPC().Stats().PipelinedCommits.Load)
		// Attached before any coordinator traffic exists; the engine only
		// ever reads this field.
		s.TwoPC().Stats().OverlapDepth = metrics.NewHistogram()
		srv.RegisterSizeHistogram("twopc_overlap_depth", s.TwoPC().Stats().OverlapDepth)
		srv.RegisterSizeHistogram("epoch_commits_per_epoch", epochStats.CommitsPerEpoch)
		srv.RegisterHistogram("epoch_close_latency", epochStats.CloseLatency)
		srv.RegisterHistogram("epoch_ack_wait", epochStats.AckWait)
		// Read-plane counters and the /read/* endpoints: how far the
		// materialized models trail the engine and how read traffic splits
		// across them.
		if p := s.ReadPlane(); p != nil {
			srv.Handle("GET /read/", p.HTTPHandler())
			srv.RegisterCounter("readplane_events_applied", func() int64 { return p.Stats().EventsApplied })
			srv.RegisterCounter("readplane_events_stale", func() int64 { return p.Stats().EventsStale })
			srv.RegisterCounter("readplane_resyncs", func() int64 { return p.Stats().Resyncs })
			srv.RegisterCounter("readplane_feed_dropped", func() int64 { return int64(p.Stats().FeedDropped) })
			srv.RegisterCounter("readplane_reads_stock", func() int64 { return p.Stats().ReadsStock })
			srv.RegisterCounter("readplane_reads_global", func() int64 { return p.Stats().ReadsGlobal })
			srv.RegisterCounter("readplane_reads_hot", func() int64 { return p.Stats().ReadsHot })
			srv.RegisterCounter("readplane_ryw_waits", func() int64 { return p.Stats().RYWWaits })
			srv.RegisterCounter("readplane_ryw_timeouts", func() int64 { return p.Stats().RYWTimeouts })
			srv.RegisterCounter("readplane_ryw_violations", func() int64 { return p.Stats().RYWViolations })
			srv.RegisterHistogram("readplane_lag", p.LagHistogram())
			srv.RegisterHistogram("readplane_ryw_wait", p.WaitHistogram())
		}
		// Routing counters and the /partitions inspection endpoint (all
		// zero / 404 unless -partitions).
		if s.PartitionMap() != nil {
			srv.RegisterCounter("partition_route_forwarded", func() int64 { return int64(s.RouteStats().Forwarded) })
			srv.RegisterCounter("partition_route_served", func() int64 { return int64(s.RouteStats().Served) })
			srv.RegisterCounter("partition_misroutes", func() int64 { return int64(s.RouteStats().Misroutes) })
			srv.RegisterCounter("partition_map_refreshes", func() int64 { return int64(s.RouteStats().MapRefreshes) })
			srv.RegisterCounter("partition_hosted", func() int64 {
				return int64(len(s.PartitionMap().Hosted(wire.SiteID(*id))))
			})
			srv.Handle("GET /partitions", partitionsHandler(s))
		}
		if err := srv.Start(*admin); err != nil {
			log.Fatalf("avnode: admin server: %v", err)
		}
		defer srv.Close()
		log.Printf("avnode: admin server on %s", srv.Addr())
	}

	if err := seed(s, *items, *initial, *avShare, *nonReg, len(peers)+1, pm); err != nil {
		log.Fatalf("avnode: seed: %v", err)
	}

	ln, err := net.Listen("tcp", *client)
	if err != nil {
		log.Fatalf("avnode: client listener: %v", err)
	}
	log.Printf("avnode: site %d up — inter-site %s, clients %s, %d products seeded",
		*id, *listen, ln.Addr(), *items)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveClient(s, conn, updateLatency)
	}
}

// partitionsHandler serves the node's partition view as JSON: the map
// parameters, the routing counters, and per-hosted-partition record/AV
// footprints — what `avctl partitions` renders.
func partitionsHandler(s *site.Site) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pm := s.PartitionMap()
		if pm == nil {
			http.Error(w, "partitioning disabled", http.StatusNotFound)
			return
		}
		rs := s.RouteStats()
		reply := struct {
			MapVersion uint64               `json:"map_version"`
			Partitions int                  `json:"partitions"`
			RF         int                  `json:"rf"`
			Sites      []wire.SiteID        `json:"sites"`
			Forwarded  uint64               `json:"route_forwarded"`
			Served     uint64               `json:"route_served"`
			Misroutes  uint64               `json:"route_misroutes"`
			Refreshes  uint64               `json:"route_map_refreshes"`
			Hosted     []site.PartitionInfo `json:"hosted"`
		}{
			MapVersion: pm.Version(),
			Partitions: pm.Parts(),
			RF:         pm.RF(),
			Sites:      pm.Sites(),
			Forwarded:  rs.Forwarded,
			Served:     rs.Served,
			Misroutes:  rs.Misroutes,
			Refreshes:  rs.MapRefreshes,
			Hosted:     s.PartitionStats(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&reply) //nolint:errcheck // best-effort HTTP write
	})
}

// epochInterval maps the -epoch/-epoch-interval-us flag pair onto the
// site config: zero keeps the per-commit group-commit pipeline.
func epochInterval(on bool, us int) time.Duration {
	if !on {
		return 0
	}
	return time.Duration(us) * time.Microsecond
}

// parsePeers turns "1=h:p,2=h:p" into the peer list and address map.
func parsePeers(spec string) ([]wire.SiteID, map[wire.SiteID]string, error) {
	addrs := make(map[wire.SiteID]string)
	var peers []wire.SiteID
	if spec == "" {
		return peers, addrs, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		pid, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		peers = append(peers, wire.SiteID(pid))
		addrs[wire.SiteID(pid)] = kv[1]
	}
	return peers, addrs, nil
}

// seed loads the shared catalog; identical flags on every node yield
// identical catalogs (the paper's initial delivery from the base DB).
// With a partition map, each node seeds only the keys it hosts and the
// AV default splits initial stock across the replica set instead of
// the whole cluster.
func seed(s *site.Site, items int, initial, avShare int64, nonRegular float64, sites int, pm *partition.Map) error {
	nonRegCount := int(nonRegular*float64(items) + 0.5)
	if avShare == 0 && sites > 0 {
		if pm != nil {
			avShare = initial / int64(pm.RF())
		} else {
			avShare = initial / int64(sites)
		}
	}
	self := s.ID()
	for i := 0; i < items; i++ {
		rec := storage.Record{
			Key:    fmt.Sprintf("product-%04d", i),
			Name:   fmt.Sprintf("Product %d", i),
			Amount: initial,
			Class:  storage.Regular,
		}
		if i < nonRegCount {
			rec.Class = storage.NonRegular
		}
		if pm != nil && !pm.HostsKey(self, rec.Key) {
			continue
		}
		// On a durable restart the row (and with -persist-av the AV
		// journal) already exists; re-seeding would reset stock and mint
		// AV, so seed only what is genuinely missing.
		if _, err := s.Read(rec.Key); err != nil {
			if err := s.Seed(rec); err != nil {
				return err
			}
		}
		if rec.Class == storage.Regular && !s.AV().Defined(rec.Key) {
			if err := s.DefineAV(rec.Key, avShare); err != nil {
				return err
			}
		}
	}
	return nil
}

// serveClient speaks the line protocol on one client connection.
// updateLatency, when non-nil, collects per-UPDATE wall time for the
// admin server's /metrics.
func serveClient(s *site.Site, conn net.Conn, updateLatency *metrics.Histogram) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
		w.Flush()
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		switch strings.ToUpper(fields[0]) {
		case "UPDATE":
			if len(fields) != 3 {
				reply("ERR usage: UPDATE <key> <delta>")
				break
			}
			delta, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				reply("ERR bad delta: %v", err)
				break
			}
			start := time.Now()
			res, err := s.Update(ctx, fields[1], delta)
			if updateLatency != nil {
				updateLatency.Observe(time.Since(start))
			}
			if err != nil {
				reply("ERR %v", err)
				break
			}
			// The token lets the client demand read-your-writes from the
			// read plane (/read/*?token=...) — pointless to advertise when
			// the plane is disabled.
			if tok := s.Token(res); s.ReadPlane() != nil && !tok.IsZero() {
				reply("OK %s token=%s", res.Path, tok)
			} else {
				reply("OK %s", res.Path)
			}
		case "READ":
			if len(fields) != 2 {
				reply("ERR usage: READ <key>")
				break
			}
			v, err := s.Read(fields[1])
			if err != nil {
				reply("ERR %v", err)
				break
			}
			reply("OK %d", v)
		case "AV":
			if len(fields) != 2 {
				reply("ERR usage: AV <key>")
				break
			}
			reply("OK %d", s.AV().Avail(fields[1]))
		case "SYNC":
			if err := s.Flush(ctx); err != nil {
				reply("ERR %v", err)
				break
			}
			reply("OK")
		case "QUIT":
			cancel()
			return
		default:
			reply("ERR unknown command %q", fields[0])
		}
		cancel()
	}
}
