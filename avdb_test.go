package avdb

import (
	"context"
	"errors"
	"testing"
)

func bg() context.Context { return context.Background() }

func newC(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Sites == 0 {
		cfg.Sites = 3
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestQuickstartFlow(t *testing.T) {
	c := newC(t, Config{})
	if err := c.AddProduct(Product{Key: "widget", Amount: 900, Class: Regular}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Update(bg(), 1, "widget", -100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathDelayLocal {
		t.Fatalf("path = %v", res.Path)
	}
	if c.Correspondences() != 0 {
		t.Fatalf("local update cost %d correspondences", c.Correspondences())
	}
	if err := c.Sync(bg()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Sites(); i++ {
		if v, _ := c.Read(i, "widget"); v != 800 {
			t.Fatalf("site %d = %d", i, v)
		}
	}
}

func TestNonRegularImmediate(t *testing.T) {
	c := newC(t, Config{})
	if err := c.AddProduct(Product{Key: "custom", Amount: 10, Class: NonRegular}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Update(bg(), 2, "custom", -3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathImmediate {
		t.Fatalf("path = %v", res.Path)
	}
	// No Sync needed: all sites current.
	for i := 0; i < 3; i++ {
		if v, _ := c.Read(i, "custom"); v != 7 {
			t.Fatalf("site %d = %d", i, v)
		}
	}
	if _, err := c.Update(bg(), 0, "custom", -100); !errors.Is(err, ErrAborted) {
		t.Fatalf("overdraft err = %v", err)
	}
}

func TestCustomAVAllocation(t *testing.T) {
	c := newC(t, Config{})
	err := c.AddProductAV(Product{Key: "k", Amount: 100, Class: Regular}, []int64{100, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if av, _ := c.AV(0, "k"); av != 100 {
		t.Fatalf("site 0 AV = %d", av)
	}
	// Site 2 has no AV: its decrement must transfer.
	res, err := c.Update(bg(), 2, "k", -10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathDelayTransfer {
		t.Fatalf("path = %v", res.Path)
	}
	if c.Correspondences() == 0 {
		t.Fatal("transfer cost no correspondences")
	}
}

func TestInsufficientAVError(t *testing.T) {
	c := newC(t, Config{})
	c.AddProduct(Product{Key: "k", Amount: 30, Class: Regular})
	if _, err := c.Update(bg(), 1, "k", -31); !errors.Is(err, ErrInsufficientAV) {
		t.Fatalf("err = %v", err)
	}
}

func TestIsolateAndHeal(t *testing.T) {
	c := newC(t, Config{})
	c.AddProduct(Product{Key: "k", Amount: 900, Class: Regular})
	if err := c.Isolate(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update(bg(), 2, "k", -50); err != nil {
		t.Fatalf("isolated delay update: %v", err)
	}
	c.Heal()
	c.Sync(bg())
	for i := 0; i < 3; i++ {
		if v, _ := c.Read(i, "k"); v != 850 {
			t.Fatalf("site %d = %d after heal", i, v)
		}
	}
}

func TestStats(t *testing.T) {
	c := newC(t, Config{})
	c.AddProduct(Product{Key: "k", Amount: 900, Class: Regular})
	c.Update(bg(), 1, "k", -10)
	local, transfer, imm, err := c.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if local != 1 || transfer != 0 || imm != 0 {
		t.Fatalf("stats = %d/%d/%d", local, transfer, imm)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := New(Config{Sites: 0}); err == nil {
		t.Fatal("0 sites accepted")
	}
	if _, err := New(Config{Sites: 1, Selector: "psychic"}); err == nil {
		t.Fatal("bad selector accepted")
	}
	if _, err := New(Config{Sites: 1, Decider: "everything"}); err == nil {
		t.Fatal("bad decider accepted")
	}
	c := newC(t, Config{})
	if err := c.AddProduct(Product{Key: "", Amount: 1}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := c.AddProductAV(Product{Key: "k", Amount: 1, Class: Regular}, []int64{1}); err == nil {
		t.Fatal("short AV allocation accepted")
	}
	if err := c.AddProductAV(Product{Key: "k", Amount: 1, Class: NonRegular}, []int64{1, 1, 1}); err == nil {
		t.Fatal("AV for non-regular accepted")
	}
	if _, err := c.Read(99, "k"); err == nil {
		t.Fatal("out-of-range site accepted")
	}
	if _, err := c.Update(bg(), -1, "k", 1); err == nil {
		t.Fatal("negative site accepted")
	}
}

func TestDurableCluster(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Sites: 2, Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	c.AddProduct(Product{Key: "k", Amount: 100, Class: Regular})
	if _, err := c.Update(bg(), 0, "k", -25); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: site 0's local state must survive via WAL replay.
	c2, err := New(Config{Sites: 2, Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if v, err := c2.Read(0, "k"); err != nil || v != 75 {
		t.Fatalf("recovered value = %d, %v", v, err)
	}
}

func TestDurableAVCluster(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sites: 2, Dir: dir, PersistAV: true, NoSync: true}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.AddProduct(Product{Key: "k", Amount: 100, Class: Regular}) // AV 50/50
	if _, err := c.Update(bg(), 1, "k", -30); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Idempotent re-registration of the catalog.
	if err := c2.AddProduct(Product{Key: "k", Amount: 100, Class: Regular}); err != nil {
		t.Fatal(err)
	}
	if v, _ := c2.Read(1, "k"); v != 70 {
		t.Fatalf("stock = %d", v)
	}
	if av, _ := c2.AV(1, "k"); av != 20 {
		t.Fatalf("AV = %d, want 20 (50 - 30, not re-minted)", av)
	}
	if av, _ := c2.AV(0, "k"); av != 50 {
		t.Fatalf("site 0 AV = %d", av)
	}
}

func TestPersistAVRequiresDir(t *testing.T) {
	if _, err := New(Config{Sites: 1, PersistAV: true}); err == nil {
		t.Fatal("PersistAV without Dir accepted")
	}
}

func TestAlternativePolicies(t *testing.T) {
	for _, sel := range []string{"max-known", "random", "round-robin"} {
		for _, dec := range []string{"half", "exact", "all", "generous"} {
			c, err := New(Config{Sites: 3, Selector: sel, Decider: dec, Seed: 9})
			if err != nil {
				t.Fatalf("%s/%s: %v", sel, dec, err)
			}
			c.AddProductAV(Product{Key: "k", Amount: 300, Class: Regular}, []int64{300, 0, 0})
			if _, err := c.Update(bg(), 1, "k", -50); err != nil {
				t.Fatalf("%s/%s update: %v", sel, dec, err)
			}
			c.Close()
		}
	}
}

func TestProductsAndAVDistribution(t *testing.T) {
	c := newC(t, Config{})
	c.AddProduct(Product{Key: "b", Name: "B", Amount: 90, Class: Regular})
	c.AddProduct(Product{Key: "a", Name: "A", Amount: 10, Class: NonRegular})
	prods, err := c.Products(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prods) != 2 || prods[0].Key != "a" || prods[1].Key != "b" {
		t.Fatalf("products = %+v", prods)
	}
	if prods[1].Name != "B" || prods[1].Amount != 90 || prods[1].Class != Regular {
		t.Fatalf("product b = %+v", prods[1])
	}
	dist := c.AVDistribution("b")
	if len(dist) != 3 || dist[0]+dist[1]+dist[2] != 90 {
		t.Fatalf("distribution = %v", dist)
	}
	// After a transfer the distribution shifts but conserves.
	if _, err := c.Update(bg(), 1, "b", -40); err != nil {
		t.Fatal(err)
	}
	dist = c.AVDistribution("b")
	if dist[0]+dist[1]+dist[2] != 50 {
		t.Fatalf("post-sale distribution = %v", dist)
	}
	if _, err := c.Products(99); err == nil {
		t.Fatal("out-of-range site accepted")
	}
}
