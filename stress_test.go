package avdb

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"avdb/internal/cluster"
	"avdb/internal/core"
)

// TestConservationUnderConcurrency hammers a memnet cluster with
// concurrent Delay Updates from every site — including AV transfers
// when a site's local allowance runs out — and then checks the escrow
// accounting: after flushing, every site converges to the same value,
// that value matches initial stock minus exactly the decrements that
// reported success, and the cluster-wide AV invariants hold (sum of AV
// equals the global value, nothing held, nothing minted).
func TestConservationUnderConcurrency(t *testing.T) {
	const (
		sites   = 4
		items   = 8
		initial = 1000
		workers = 16
	)
	iters := 250
	if testing.Short() {
		iters = 50
	}

	c, err := cluster.New(cluster.Config{Sites: sites, Items: items, InitialAmount: initial})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	var succeeded [items]atomic.Int64
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := (w*31 + i*7) % items
				s := c.Sites[(w+i)%sites]
				_, err := s.Update(ctx, c.RegularKeys[key], -1)
				switch {
				case err == nil:
					succeeded[key].Add(1)
				case errors.Is(err, core.ErrInsufficientAV):
					// A legal rejection: the global slack for this key was
					// (transiently) exhausted. Conservation still has to hold.
					rejected.Add(1)
				default:
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Drain replication: first pass ships the deltas, second pass is a
	// no-op that proves the logs are empty.
	for i := 0; i < 2; i++ {
		if err := c.FlushAll(ctx); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}

	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, key := range c.RegularKeys {
		want := int64(initial) - succeeded[k].Load()
		got, err := c.ConvergedValue(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if got != want {
			t.Errorf("%s: converged value %d, want %d (%d successful decrements)",
				key, got, want, succeeded[k].Load())
		}
	}
	t.Logf("%d decrements committed, %d rejected for lack of AV",
		workers*iters-int(rejected.Load()), rejected.Load())
}
