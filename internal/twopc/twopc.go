// Package twopc implements the paper's Immediate Update (Fig. 5): a
// primary-copy two-phase commit for the data with no Allowable Volume
// defined (non-regular products), where maker and retailer both demand
// strong consistency.
//
// The requesting site's accelerator acts as the coordinator: it locks
// and tentatively applies the update locally, sends IUPrepare to every
// other site simultaneously, collects ready votes, then distributes the
// commit/abort decision. Per the paper, "the requesting accelerator
// judges the completion of the update with the message from the
// accelerator at the base" — so completion requires the base site's
// acknowledgement of the commit decision.
//
// Participants hold prepared transactions (with their locks, via strict
// 2PL) in a table with a deadline; an expired prepared transaction is
// presumed aborted and swept, so a crashed coordinator cannot wedge a
// site forever.
package twopc

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/clock"
	"avdb/internal/epoch"
	"avdb/internal/failure"
	"avdb/internal/metrics"
	"avdb/internal/storage"
	"avdb/internal/trace"
	"avdb/internal/transport"
	"avdb/internal/txn"
	"avdb/internal/wire"
)

// Immediate Update errors.
var (
	// ErrAborted reports that the update was aborted (a vote failed or a
	// participant was unreachable during prepare).
	ErrAborted = errors.New("twopc: update aborted")
	// ErrCompletionUnknown reports that the commit decision was taken and
	// applied locally, but the base site's acknowledgement did not arrive;
	// the data will converge when the base processes the decision, but
	// the paper's completion condition is unmet.
	ErrCompletionUnknown = errors.New("twopc: committed but base acknowledgement missing")
)

// Validator approves or rejects the tentative result of an update at a
// site. rec is the record before the update; newAmount the amount after.
type Validator func(rec storage.Record, newAmount int64) error

// NonNegative is the default validator: stock may not go below zero.
func NonNegative(rec storage.Record, newAmount int64) error {
	if newAmount < 0 {
		return fmt.Errorf("amount %d would become negative (%d)", rec.Amount, newAmount)
	}
	return nil
}

// Options configure an Engine.
type Options struct {
	// Site is this engine's site ID.
	Site wire.SiteID
	// Base is the site hosting the primary copy (site 0 in the paper).
	Base wire.SiteID
	// BaseFor, when non-nil, supplies the primary-copy site per key: on
	// a partitioned cluster each key's base is its partition's owner,
	// not one global site. Nil keeps the single Base for every key.
	BaseFor func(key string) wire.SiteID
	// Validate approves tentative updates (default NonNegative).
	Validate Validator
	// PrepareTimeout bounds each remote prepare/decision call
	// (default 2s).
	PrepareTimeout time.Duration
	// PreparedTTL is how long a participant holds a prepared transaction
	// before presuming abort (default 10s).
	PreparedTTL time.Duration
	// DecisionRetries is how many times a failed decision delivery is
	// retried per peer (default 2; 0 keeps the single attempt, a negative
	// value disables retries explicitly). Decisions must eventually reach
	// every participant or the prepared-TTL sweep frees it instead.
	DecisionRetries int
	// RetryBackoff spaces decision retries (default 25ms base, 250ms cap).
	RetryBackoff failure.Policy
	// Tracer records protocol spans (nil disables tracing).
	Tracer *trace.Tracer
	// Clock drives prepared-transaction deadlines, decision-retry backoff
	// and remote call timeouts (nil means the real clock). The
	// deterministic simulator passes a virtual clock.
	Clock clock.Clock
	// Observer, when non-nil, is invoked for every transaction outcome
	// this engine applies locally (coordinator and participant roles).
	// The simulator's atomicity oracle consumes these.
	Observer func(Outcome)
	// IDEpoch offsets this engine's transaction counter. A restarted
	// engine starts counting from zero again, so a coordinator reborn
	// from its WAL would re-mint the transaction ids of its previous
	// life — and a participant still holding one of those ids prepared
	// (or decided) would confuse the two transactions. Each incarnation
	// must pass a fresh epoch; epoch e starts the counter at e<<32.
	IDEpoch uint64
	// Epochs, when non-nil, is the site's commit-epoch manager (the
	// storage engine's). Votes then carry the participant's open epoch at
	// prepare and OK acks the participant's durable epoch at commit, so
	// the coordinator can observe rounds pipelining across adjacent
	// epochs (Stats.CrossEpochCommits). Durability semantics are
	// unchanged: a participant's commit still waits for its covering LSN
	// (via the epoch boundary) before the ack escapes.
	Epochs *epoch.Manager
	// MaxPipelined bounds how many UpdateAsync rounds may be in flight —
	// locally applied but their durability-and-ack completion still
	// draining — at once (default 8; values below 1 clamp to 1, which
	// serializes rounds again). Synchronous Update ignores it.
	MaxPipelined int
}

// Outcome is one locally applied transaction decision, as reported to
// Options.Observer.
type Outcome struct {
	TxnID uint64
	Site  wire.SiteID
	Key   string // empty for decisions whose prepare this engine never saw
	// Commit reports the applied outcome.
	Commit bool
	// Swept marks a presumed abort from the prepared-TTL sweep rather
	// than an explicit decision message.
	Swept bool
}

// Stats counts participant/coordinator outcomes; atomically updated.
type Stats struct {
	Aborts          atomic.Int64 // coordinated updates that ended in abort
	Swept           atomic.Int64 // prepared transactions freed by presumed abort
	DecisionRetries atomic.Int64 // decision deliveries that needed a retry
	// CrossEpochCommits counts committed updates whose participant acks
	// reported a durable epoch beyond the epoch any vote was prepared in
	// — i.e. rounds that pipelined across an epoch boundary. Only moves
	// when Options.Epochs is set cluster-wide.
	CrossEpochCommits atomic.Int64
	// PipelinedCommits counts UpdateAsync rounds that committed while at
	// least one earlier async round was still draining — commits that
	// genuinely overlapped the durability boundary.
	PipelinedCommits atomic.Int64
	// OverlapDepth, when non-nil, observes the in-flight async round
	// count (unitless) at each UpdateAsync admission. Install before the
	// engine sees concurrent use.
	OverlapDepth *metrics.Histogram
}

// maxDecidedTxns bounds the decided-outcome cache that makes duplicate
// decision deliveries idempotent.
const maxDecidedTxns = 4096

// Engine runs both coordinator and participant roles for one site.
type Engine struct {
	opts Options
	tm   *txn.Manager
	node transport.Node

	next atomic.Uint64

	mu       sync.Mutex
	prepared map[uint64]*preparedTxn
	// decided remembers the outcome of recently finished transactions so
	// a duplicated or retransmitted decision acknowledges consistently
	// (a re-delivered COMMIT for a committed txn must ack OK, not claim
	// presumed abort). Bounded FIFO.
	decided      map[uint64]bool
	decidedOrder []uint64

	// window bounds in-flight UpdateAsync rounds; depth tracks how many
	// hold a slot right now (the overlap-depth signal).
	window chan struct{}
	depth  atomic.Int64

	stats Stats
}

type preparedTxn struct {
	tx       *txn.Txn
	key      string
	deadline time.Time
}

// New creates an Engine over tm. Call SetNode before coordinating.
func New(opts Options, tm *txn.Manager) *Engine {
	if opts.Validate == nil {
		opts.Validate = NonNegative
	}
	if opts.PrepareTimeout <= 0 {
		opts.PrepareTimeout = 2 * time.Second
	}
	if opts.PreparedTTL <= 0 {
		opts.PreparedTTL = 10 * time.Second
	}
	if opts.DecisionRetries == 0 {
		opts.DecisionRetries = 2
	} else if opts.DecisionRetries < 0 {
		opts.DecisionRetries = 0
	}
	if opts.RetryBackoff.BaseDelay <= 0 {
		opts.RetryBackoff.BaseDelay = 25 * time.Millisecond
	}
	if opts.RetryBackoff.MaxDelay <= 0 {
		opts.RetryBackoff.MaxDelay = 250 * time.Millisecond
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.MaxPipelined == 0 {
		opts.MaxPipelined = 8
	} else if opts.MaxPipelined < 1 {
		opts.MaxPipelined = 1
	}
	e := &Engine{
		opts:     opts,
		tm:       tm,
		prepared: make(map[uint64]*preparedTxn),
		decided:  make(map[uint64]bool),
		window:   make(chan struct{}, opts.MaxPipelined),
	}
	e.next.Store(opts.IDEpoch << 32 & (1<<40 - 1))
	return e
}

// SetNode attaches the transport endpoint (done after the network opens).
func (e *Engine) SetNode(n transport.Node) { e.node = n }

// Stats exposes the outcome counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// recordDecided remembers a transaction's outcome, evicting the oldest
// record when the cache is full. Caller holds e.mu.
func (e *Engine) recordDecided(txnID uint64, commit bool) {
	if _, ok := e.decided[txnID]; ok {
		return
	}
	if len(e.decidedOrder) >= maxDecidedTxns {
		evict := e.decidedOrder[0]
		e.decidedOrder = e.decidedOrder[1:]
		delete(e.decided, evict)
	}
	e.decided[txnID] = commit
	e.decidedOrder = append(e.decidedOrder, txnID)
}

// newTxnID builds a cluster-unique transaction ID.
func (e *Engine) newTxnID() uint64 {
	return uint64(e.opts.Site)<<40 | e.next.Add(1)
}

// observe reports a locally applied outcome to the configured observer.
func (e *Engine) observe(txnID uint64, key string, commit, swept bool) {
	if e.opts.Observer != nil {
		e.opts.Observer(Outcome{TxnID: txnID, Site: e.opts.Site, Key: key, Commit: commit, Swept: swept})
	}
}

// Update coordinates one Immediate Update of key by delta across peers
// (every other site). On success the update is applied at every site.
func (e *Engine) Update(ctx context.Context, peers []wire.SiteID, key string, delta int64) (err error) {
	ctx, sp := e.opts.Tracer.Start(ctx, e.opts.Site, "iu.update")
	if sp != nil {
		sp.SetAttr("key", key)
		defer func() { sp.Finish(err) }()
	}
	txnID := e.newTxnID()

	// Local tentative apply under lock — the coordinator is also the
	// first participant.
	local := e.tm.Begin()
	if err := e.tentative(ctx, local, key, delta); err != nil {
		local.Abort()
		return fmt.Errorf("%w: local prepare: %v", ErrAborted, err)
	}

	allOK, reason, maxVoteEpoch := e.prepareAll(ctx, peers, txnID, key, delta)

	// Phase 2: decide.
	if !allOK {
		local.Abort()
		e.observe(txnID, key, false, false)
		e.stats.Aborts.Add(1)
		e.broadcastDecision(ctx, peers, txnID, false, nil)
		return fmt.Errorf("%w: %s", ErrAborted, reason)
	}
	// Commit goes through Engine.Apply, which returns only after the
	// batch's WAL record is durable (group commit): the COMMIT decision
	// broadcast below never escapes for a transaction a crash could
	// lose.
	if err := local.Commit(); err != nil {
		// Local commit of a validated, locked batch cannot fail in normal
		// operation; treat it as a global abort to stay safe.
		e.observe(txnID, key, false, false)
		e.stats.Aborts.Add(1)
		e.broadcastDecision(ctx, peers, txnID, false, nil)
		return fmt.Errorf("%w: local commit: %v", ErrAborted, err)
	}
	e.observe(txnID, key, true, false)
	return e.commitBroadcast(ctx, peers, txnID, key, maxVoteEpoch)
}

// prepareAll runs phase 1: prepare at every peer simultaneously (paper:
// "it also sends the lock request to the other accelerators
// simultaneously") and collect every vote. On failure the reported
// reason is the failing vote with the lowest site ID, so the abort
// reason does not depend on which reply happened to arrive first.
// maxVoteEpoch is the highest participant epoch any prepare rode.
func (e *Engine) prepareAll(ctx context.Context, peers []wire.SiteID, txnID uint64, key string, delta int64) (allOK bool, reason string, maxVoteEpoch uint64) {
	type voteResult struct {
		peer  wire.SiteID
		ok    bool
		why   string
		epoch uint64
	}
	votes := make(chan voteResult, len(peers))
	for _, p := range peers {
		go func(p wire.SiteID) {
			cctx, cancel := clock.WithTimeout(ctx, e.opts.Clock, e.opts.PrepareTimeout)
			reply, err := e.node.Call(cctx, p, &wire.IUPrepare{
				TxnID: txnID, Coord: e.opts.Site, Key: key, Delta: delta,
			})
			// Cancel before reporting the vote: the vote may be the last
			// act before the coordinator blocks, and no timer of a finished
			// call may linger on a virtual clock.
			cancel()
			if err != nil {
				votes <- voteResult{peer: p, ok: false, why: err.Error()}
				return
			}
			v, ok := reply.(*wire.IUVote)
			if !ok {
				votes <- voteResult{peer: p, ok: false, why: fmt.Sprintf("bad reply %T", reply)}
				return
			}
			votes <- voteResult{peer: p, ok: v.OK, why: v.Reason, epoch: v.Epoch}
		}(p)
	}
	allOK = true
	var failedPeer wire.SiteID
	for range peers {
		v := <-votes
		if v.epoch > maxVoteEpoch {
			maxVoteEpoch = v.epoch
		}
		if v.ok {
			continue
		}
		if allOK || v.peer < failedPeer {
			allOK = false
			failedPeer = v.peer
			reason = fmt.Sprintf("site %d: %s", v.peer, v.why)
		}
	}
	return allOK, reason, maxVoteEpoch
}

// commitBroadcast distributes a COMMIT decision for a locally durable
// transaction and applies the paper's completion rule: the round is
// complete only once the base site acknowledged.
func (e *Engine) commitBroadcast(ctx context.Context, peers []wire.SiteID, txnID uint64, key string, maxVoteEpoch uint64) error {
	base := e.opts.Base
	if e.opts.BaseFor != nil {
		base = e.opts.BaseFor(key)
	}
	baseAcked := base == e.opts.Site // self-ack when we host the base
	crossEpoch := false
	e.broadcastDecision(ctx, peers, txnID, true, func(p wire.SiteID, ok bool, ackEpoch uint64) {
		if p == base && ok {
			baseAcked = true
		}
		// An OK ack whose durable epoch is beyond every prepare epoch
		// means this round straddled an epoch boundary at the
		// participant: prepare in epoch N, durable commit in N+1 or
		// later, with the epochs pipelining the rounds in between.
		if ok && ackEpoch > maxVoteEpoch && maxVoteEpoch > 0 {
			crossEpoch = true
		}
	})
	if crossEpoch {
		e.stats.CrossEpochCommits.Add(1)
	}
	if !baseAcked {
		return ErrCompletionUnknown
	}
	return nil
}

// Pending is one pipelined update's completion handle, returned by
// UpdateAsync once the round is decided and applied locally. Done
// closes when the round's durability wait and decision acknowledgements
// have drained; Err is valid after Done.
type Pending struct {
	// TxnID identifies the round (per-txn completion tracking).
	TxnID uint64
	done  chan struct{}
	err   error
}

// Done is closed once the round has fully completed.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Err returns the round's outcome (nil, ErrAborted-wrapped, or
// ErrCompletionUnknown). Valid only after Done is closed.
func (p *Pending) Err() error { return p.err }

// Wait blocks until the round completes and returns its outcome.
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// UpdateAsync coordinates one Immediate Update like Update but pipelines
// the tail: it runs phase 1, takes the decision, and applies the commit
// locally, then returns a Pending while the commit's durability wait and
// the decision broadcast drain in the background. The caller can issue
// the next round's prepares immediately — epoch N+1 fills while epoch
// N's covering fsync is in flight. Votes carry no durable effect, so
// deferring only the commit-ack wait preserves every 2PC invariant: the
// COMMIT decision still never escapes before the local record is
// durable. At most MaxPipelined rounds may be draining at once;
// UpdateAsync blocks for a window slot when the pipeline is full.
//
// An abort (failed vote, unreachable participant) is reported
// synchronously: UpdateAsync returns (nil, error) and nothing is left
// in flight.
func (e *Engine) UpdateAsync(ctx context.Context, peers []wire.SiteID, key string, delta int64) (*Pending, error) {
	ctx, sp := e.opts.Tracer.Start(ctx, e.opts.Site, "iu.update")
	if sp != nil {
		sp.SetAttr("key", key)
	}
	select {
	case e.window <- struct{}{}:
	case <-ctx.Done():
		err := ctx.Err()
		if sp != nil {
			sp.Finish(err)
		}
		return nil, err
	}
	depth := e.depth.Add(1)
	pipelined := depth > 1
	if e.stats.OverlapDepth != nil {
		e.stats.OverlapDepth.Observe(time.Duration(depth))
	}
	release := func() {
		e.depth.Add(-1)
		<-e.window
	}
	fail := func(err error) (*Pending, error) {
		release()
		if sp != nil {
			sp.Finish(err)
		}
		return nil, err
	}

	txnID := e.newTxnID()
	local := e.tm.Begin()
	if err := e.tentative(ctx, local, key, delta); err != nil {
		local.Abort()
		return fail(fmt.Errorf("%w: local prepare: %v", ErrAborted, err))
	}
	allOK, reason, maxVoteEpoch := e.prepareAll(ctx, peers, txnID, key, delta)
	if !allOK {
		local.Abort()
		e.observe(txnID, key, false, false)
		e.stats.Aborts.Add(1)
		e.broadcastDecision(ctx, peers, txnID, false, nil)
		return fail(fmt.Errorf("%w: %s", ErrAborted, reason))
	}
	// Apply the commit locally but defer the durability wait: the effects
	// become visible now (exactly as with Commit — the engine never hid
	// them behind the fsync) while the acknowledgement, and the COMMIT
	// broadcast it licenses, move behind the epoch boundary.
	wait, err := local.CommitAsync()
	if err != nil {
		e.observe(txnID, key, false, false)
		e.stats.Aborts.Add(1)
		e.broadcastDecision(ctx, peers, txnID, false, nil)
		return fail(fmt.Errorf("%w: local commit: %v", ErrAborted, err))
	}
	p := &Pending{TxnID: txnID, done: make(chan struct{})}
	go func() {
		p.err = e.complete(ctx, peers, txnID, key, maxVoteEpoch, wait, pipelined)
		if sp != nil {
			sp.Finish(p.err)
		}
		close(p.done)
		release()
	}()
	return p, nil
}

// complete drains one pipelined round: waits out the local durability
// boundary, then broadcasts the COMMIT decision (which must never
// escape for a transaction a crash could lose) and collects acks.
func (e *Engine) complete(ctx context.Context, peers []wire.SiteID, txnID uint64, key string, maxVoteEpoch uint64, wait func() error, pipelined bool) error {
	if err := wait(); err != nil {
		// The covering sync failed: same hazard as a failed local Commit
		// on the synchronous path — treat it as a global abort to stay
		// safe.
		e.observe(txnID, key, false, false)
		e.stats.Aborts.Add(1)
		e.broadcastDecision(ctx, peers, txnID, false, nil)
		return fmt.Errorf("%w: local commit: %v", ErrAborted, err)
	}
	e.observe(txnID, key, true, false)
	if pipelined {
		e.stats.PipelinedCommits.Add(1)
	}
	return e.commitBroadcast(ctx, peers, txnID, key, maxVoteEpoch)
}

// broadcastDecision distributes the decision and reports each ack via
// onAck (which may be nil). It waits for all peers (bounded by
// PrepareTimeout each, in parallel).
func (e *Engine) broadcastDecision(ctx context.Context, peers []wire.SiteID, txnID uint64, commit bool, onAck func(p wire.SiteID, ok bool, ackEpoch uint64)) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p wire.SiteID) {
			defer wg.Done()
			ok := false
			var ackEpoch uint64
			// A lost decision would leave the participant prepared until
			// its TTL sweep presumes abort, so retry with backoff — the
			// participant's decided-outcome cache makes duplicates safe.
			for attempt := 0; attempt <= e.opts.DecisionRetries; attempt++ {
				if attempt > 0 {
					e.stats.DecisionRetries.Add(1)
					t := clock.NewTimer(e.opts.Clock, e.opts.RetryBackoff.Backoff(attempt-1))
					select {
					case <-ctx.Done():
						t.Stop()
					case <-t.C:
					}
					if ctx.Err() != nil {
						break
					}
				}
				cctx, cancel := clock.WithTimeout(ctx, e.opts.Clock, e.opts.PrepareTimeout)
				reply, err := e.node.Call(cctx, p, &wire.IUDecision{TxnID: txnID, Commit: commit})
				cancel()
				if err != nil {
					continue
				}
				if a, isAck := reply.(*wire.IUAck); isAck && a.OK {
					ok = true
					ackEpoch = a.Epoch
				}
				break
			}
			if onAck != nil {
				mu.Lock()
				onAck(p, ok, ackEpoch)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
}

// tentative locks key, applies delta in tx, and validates the result.
func (e *Engine) tentative(ctx context.Context, tx *txn.Txn, key string, delta int64) error {
	before, err := tx.Get(ctx, key)
	if err != nil {
		return err
	}
	after, err := tx.ApplyDelta(ctx, key, delta)
	if err != nil {
		return err
	}
	return e.opts.Validate(before, after)
}

// HandlePrepare is the participant's phase-1 handler. ctx carries the
// coordinator's trace context, not a cancellation signal.
func (e *Engine) HandlePrepare(ctx context.Context, from wire.SiteID, msg *wire.IUPrepare) *wire.IUVote {
	ctx, sp := e.opts.Tracer.Start(ctx, e.opts.Site, "iu.prepare")
	if sp != nil {
		sp.SetAttr("key", msg.Key)
		defer sp.EndSpan()
	}
	ctx, cancel := context.WithTimeout(ctx, e.opts.PrepareTimeout)
	defer cancel()
	tx := e.tm.Begin()
	if err := e.tentative(ctx, tx, msg.Key, msg.Delta); err != nil {
		tx.Abort()
		return &wire.IUVote{TxnID: msg.TxnID, OK: false, Reason: err.Error()}
	}
	e.mu.Lock()
	if outcome, ok := e.decided[msg.TxnID]; ok {
		// The decision overtook this prepare (the coordinator timed out
		// while we waited for the lock and already broadcast abort).
		// Registering now would hold the lock until the TTL sweep for a
		// transaction that is long dead — release immediately instead.
		e.mu.Unlock()
		tx.Abort()
		return &wire.IUVote{TxnID: msg.TxnID, OK: false,
			Reason: fmt.Sprintf("txn already decided (commit=%v)", outcome)}
	}
	e.prepared[msg.TxnID] = &preparedTxn{tx: tx, key: msg.Key, deadline: e.opts.Clock.Now().Add(e.opts.PreparedTTL)}
	e.mu.Unlock()
	vote := &wire.IUVote{TxnID: msg.TxnID, OK: true}
	if e.opts.Epochs != nil {
		vote.Epoch = e.opts.Epochs.Current()
	}
	return vote
}

// HandleDecision is the participant's phase-2 handler.
func (e *Engine) HandleDecision(ctx context.Context, from wire.SiteID, msg *wire.IUDecision) *wire.IUAck {
	_, sp := e.opts.Tracer.Start(ctx, e.opts.Site, "iu.decision")
	if sp != nil {
		sp.SetAttr("commit", strconv.FormatBool(msg.Commit))
		defer sp.EndSpan()
	}
	e.mu.Lock()
	p := e.prepared[msg.TxnID]
	delete(e.prepared, msg.TxnID)
	if p == nil {
		// No prepared state. If we already applied a decision for this
		// transaction, acknowledge consistently — a retransmitted COMMIT
		// for a committed txn must ack OK, not claim presumed abort.
		// Otherwise the transaction is unknown: presumed abort, so an
		// abort acks OK and a commit we never prepared does not.
		if outcome, ok := e.decided[msg.TxnID]; ok {
			e.mu.Unlock()
			return &wire.IUAck{TxnID: msg.TxnID, OK: outcome == msg.Commit}
		}
		if !msg.Commit {
			// Record the presumed abort so a prepare still in flight (the
			// decision can overtake it when the coordinator gave up while
			// we waited on the lock) aborts itself instead of registering
			// and pinning the lock until the TTL sweep.
			e.recordDecided(msg.TxnID, false)
		}
		e.mu.Unlock()
		return &wire.IUAck{TxnID: msg.TxnID, OK: !msg.Commit}
	}
	e.recordDecided(msg.TxnID, msg.Commit)
	e.mu.Unlock()
	if msg.Commit {
		// Commit waits on the WAL group commit before returning, so the
		// OK ack (the coordinator's license to forget the transaction)
		// is sent only once the covering LSN is durable here.
		if err := p.tx.Commit(); err != nil {
			return &wire.IUAck{TxnID: msg.TxnID, OK: false}
		}
		e.observe(msg.TxnID, p.key, true, false)
		ack := &wire.IUAck{TxnID: msg.TxnID, OK: true}
		if e.opts.Epochs != nil {
			// Commit just waited out its epoch boundary, so Durable() is at
			// least the epoch the commit rode.
			ack.Epoch = e.opts.Epochs.Durable()
		}
		return ack
	}
	p.tx.Abort()
	e.observe(msg.TxnID, p.key, false, false)
	return &wire.IUAck{TxnID: msg.TxnID, OK: true}
}

// Sweep aborts prepared transactions whose deadline has passed (presumed
// abort after a coordinator failure) and returns how many were swept.
// Sites call it periodically.
func (e *Engine) Sweep(now time.Time) int {
	type victim struct {
		id uint64
		p  *preparedTxn
	}
	e.mu.Lock()
	var victims []victim
	for id, p := range e.prepared {
		if now.After(p.deadline) {
			victims = append(victims, victim{id, p})
			delete(e.prepared, id)
			e.recordDecided(id, false)
		}
	}
	e.mu.Unlock()
	for _, v := range victims {
		v.p.tx.Abort()
		e.observe(v.id, v.p.key, false, true)
	}
	e.stats.Swept.Add(int64(len(victims)))
	return len(victims)
}

// PreparedCount reports how many transactions are currently prepared.
func (e *Engine) PreparedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.prepared)
}
