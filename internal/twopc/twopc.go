// Package twopc implements the paper's Immediate Update (Fig. 5): a
// primary-copy two-phase commit for the data with no Allowable Volume
// defined (non-regular products), where maker and retailer both demand
// strong consistency.
//
// The requesting site's accelerator acts as the coordinator: it locks
// and tentatively applies the update locally, sends IUPrepare to every
// other site simultaneously, collects ready votes, then distributes the
// commit/abort decision. Per the paper, "the requesting accelerator
// judges the completion of the update with the message from the
// accelerator at the base" — so completion requires the base site's
// acknowledgement of the commit decision.
//
// Participants hold prepared transactions (with their locks, via strict
// 2PL) in a table with a deadline; an expired prepared transaction is
// presumed aborted and swept, so a crashed coordinator cannot wedge a
// site forever.
package twopc

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/storage"
	"avdb/internal/trace"
	"avdb/internal/transport"
	"avdb/internal/txn"
	"avdb/internal/wire"
)

// Immediate Update errors.
var (
	// ErrAborted reports that the update was aborted (a vote failed or a
	// participant was unreachable during prepare).
	ErrAborted = errors.New("twopc: update aborted")
	// ErrCompletionUnknown reports that the commit decision was taken and
	// applied locally, but the base site's acknowledgement did not arrive;
	// the data will converge when the base processes the decision, but
	// the paper's completion condition is unmet.
	ErrCompletionUnknown = errors.New("twopc: committed but base acknowledgement missing")
)

// Validator approves or rejects the tentative result of an update at a
// site. rec is the record before the update; newAmount the amount after.
type Validator func(rec storage.Record, newAmount int64) error

// NonNegative is the default validator: stock may not go below zero.
func NonNegative(rec storage.Record, newAmount int64) error {
	if newAmount < 0 {
		return fmt.Errorf("amount %d would become negative (%d)", rec.Amount, newAmount)
	}
	return nil
}

// Options configure an Engine.
type Options struct {
	// Site is this engine's site ID.
	Site wire.SiteID
	// Base is the site hosting the primary copy (site 0 in the paper).
	Base wire.SiteID
	// Validate approves tentative updates (default NonNegative).
	Validate Validator
	// PrepareTimeout bounds each remote prepare/decision call
	// (default 2s).
	PrepareTimeout time.Duration
	// PreparedTTL is how long a participant holds a prepared transaction
	// before presuming abort (default 10s).
	PreparedTTL time.Duration
	// Tracer records protocol spans (nil disables tracing).
	Tracer *trace.Tracer
}

// Engine runs both coordinator and participant roles for one site.
type Engine struct {
	opts Options
	tm   *txn.Manager
	node transport.Node

	next atomic.Uint64

	mu       sync.Mutex
	prepared map[uint64]*preparedTxn
}

type preparedTxn struct {
	tx       *txn.Txn
	deadline time.Time
}

// New creates an Engine over tm. Call SetNode before coordinating.
func New(opts Options, tm *txn.Manager) *Engine {
	if opts.Validate == nil {
		opts.Validate = NonNegative
	}
	if opts.PrepareTimeout <= 0 {
		opts.PrepareTimeout = 2 * time.Second
	}
	if opts.PreparedTTL <= 0 {
		opts.PreparedTTL = 10 * time.Second
	}
	return &Engine{opts: opts, tm: tm, prepared: make(map[uint64]*preparedTxn)}
}

// SetNode attaches the transport endpoint (done after the network opens).
func (e *Engine) SetNode(n transport.Node) { e.node = n }

// newTxnID builds a cluster-unique transaction ID.
func (e *Engine) newTxnID() uint64 {
	return uint64(e.opts.Site)<<40 | e.next.Add(1)
}

// Update coordinates one Immediate Update of key by delta across peers
// (every other site). On success the update is applied at every site.
func (e *Engine) Update(ctx context.Context, peers []wire.SiteID, key string, delta int64) (err error) {
	ctx, sp := e.opts.Tracer.Start(ctx, e.opts.Site, "iu.update")
	if sp != nil {
		sp.SetAttr("key", key)
		defer func() { sp.Finish(err) }()
	}
	txnID := e.newTxnID()

	// Local tentative apply under lock — the coordinator is also the
	// first participant.
	local := e.tm.Begin()
	if err := e.tentative(ctx, local, key, delta); err != nil {
		local.Abort()
		return fmt.Errorf("%w: local prepare: %v", ErrAborted, err)
	}

	// Phase 1: prepare everywhere, simultaneously (paper: "it also sends
	// the lock request to the other accelerators simultaneously").
	type voteResult struct {
		peer wire.SiteID
		ok   bool
		why  string
	}
	votes := make(chan voteResult, len(peers))
	for _, p := range peers {
		go func(p wire.SiteID) {
			cctx, cancel := context.WithTimeout(ctx, e.opts.PrepareTimeout)
			defer cancel()
			reply, err := e.node.Call(cctx, p, &wire.IUPrepare{
				TxnID: txnID, Coord: e.opts.Site, Key: key, Delta: delta,
			})
			if err != nil {
				votes <- voteResult{peer: p, ok: false, why: err.Error()}
				return
			}
			v, ok := reply.(*wire.IUVote)
			if !ok {
				votes <- voteResult{peer: p, ok: false, why: fmt.Sprintf("bad reply %T", reply)}
				return
			}
			votes <- voteResult{peer: p, ok: v.OK, why: v.Reason}
		}(p)
	}
	allOK := true
	var reason string
	for range peers {
		v := <-votes
		if !v.ok && allOK {
			allOK = false
			reason = fmt.Sprintf("site %d: %s", v.peer, v.why)
		}
	}

	// Phase 2: decide.
	if !allOK {
		local.Abort()
		e.broadcastDecision(ctx, peers, txnID, false, nil)
		return fmt.Errorf("%w: %s", ErrAborted, reason)
	}
	if err := local.Commit(); err != nil {
		// Local commit of a validated, locked batch cannot fail in normal
		// operation; treat it as a global abort to stay safe.
		e.broadcastDecision(ctx, peers, txnID, false, nil)
		return fmt.Errorf("%w: local commit: %v", ErrAborted, err)
	}
	baseAcked := e.opts.Base == e.opts.Site // self-ack when we host the base
	e.broadcastDecision(ctx, peers, txnID, true, func(p wire.SiteID, ok bool) {
		if p == e.opts.Base && ok {
			baseAcked = true
		}
	})
	if !baseAcked {
		return ErrCompletionUnknown
	}
	return nil
}

// broadcastDecision distributes the decision and reports each ack via
// onAck (which may be nil). It waits for all peers (bounded by
// PrepareTimeout each, in parallel).
func (e *Engine) broadcastDecision(ctx context.Context, peers []wire.SiteID, txnID uint64, commit bool, onAck func(p wire.SiteID, ok bool)) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p wire.SiteID) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, e.opts.PrepareTimeout)
			defer cancel()
			reply, err := e.node.Call(cctx, p, &wire.IUDecision{TxnID: txnID, Commit: commit})
			ok := false
			if err == nil {
				if a, isAck := reply.(*wire.IUAck); isAck {
					ok = a.OK
				}
			}
			if onAck != nil {
				mu.Lock()
				onAck(p, ok)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
}

// tentative locks key, applies delta in tx, and validates the result.
func (e *Engine) tentative(ctx context.Context, tx *txn.Txn, key string, delta int64) error {
	before, err := tx.Get(ctx, key)
	if err != nil {
		return err
	}
	after, err := tx.ApplyDelta(ctx, key, delta)
	if err != nil {
		return err
	}
	return e.opts.Validate(before, after)
}

// HandlePrepare is the participant's phase-1 handler. ctx carries the
// coordinator's trace context, not a cancellation signal.
func (e *Engine) HandlePrepare(ctx context.Context, from wire.SiteID, msg *wire.IUPrepare) *wire.IUVote {
	ctx, sp := e.opts.Tracer.Start(ctx, e.opts.Site, "iu.prepare")
	if sp != nil {
		sp.SetAttr("key", msg.Key)
		defer sp.EndSpan()
	}
	ctx, cancel := context.WithTimeout(ctx, e.opts.PrepareTimeout)
	defer cancel()
	tx := e.tm.Begin()
	if err := e.tentative(ctx, tx, msg.Key, msg.Delta); err != nil {
		tx.Abort()
		return &wire.IUVote{TxnID: msg.TxnID, OK: false, Reason: err.Error()}
	}
	e.mu.Lock()
	e.prepared[msg.TxnID] = &preparedTxn{tx: tx, deadline: time.Now().Add(e.opts.PreparedTTL)}
	e.mu.Unlock()
	return &wire.IUVote{TxnID: msg.TxnID, OK: true}
}

// HandleDecision is the participant's phase-2 handler.
func (e *Engine) HandleDecision(ctx context.Context, from wire.SiteID, msg *wire.IUDecision) *wire.IUAck {
	_, sp := e.opts.Tracer.Start(ctx, e.opts.Site, "iu.decision")
	if sp != nil {
		sp.SetAttr("commit", strconv.FormatBool(msg.Commit))
		defer sp.EndSpan()
	}
	e.mu.Lock()
	p := e.prepared[msg.TxnID]
	delete(e.prepared, msg.TxnID)
	e.mu.Unlock()
	if p == nil {
		// Unknown transaction: presumed abort. Acknowledging an abort is
		// safe; acknowledging a commit we never prepared is not.
		return &wire.IUAck{TxnID: msg.TxnID, OK: !msg.Commit}
	}
	if msg.Commit {
		if err := p.tx.Commit(); err != nil {
			return &wire.IUAck{TxnID: msg.TxnID, OK: false}
		}
		return &wire.IUAck{TxnID: msg.TxnID, OK: true}
	}
	p.tx.Abort()
	return &wire.IUAck{TxnID: msg.TxnID, OK: true}
}

// Sweep aborts prepared transactions whose deadline has passed (presumed
// abort after a coordinator failure) and returns how many were swept.
// Sites call it periodically.
func (e *Engine) Sweep(now time.Time) int {
	e.mu.Lock()
	var victims []*preparedTxn
	for id, p := range e.prepared {
		if now.After(p.deadline) {
			victims = append(victims, p)
			delete(e.prepared, id)
		}
	}
	e.mu.Unlock()
	for _, p := range victims {
		p.tx.Abort()
	}
	return len(victims)
}

// PreparedCount reports how many transactions are currently prepared.
func (e *Engine) PreparedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.prepared)
}
