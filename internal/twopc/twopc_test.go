package twopc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"avdb/internal/lockmgr"
	"avdb/internal/rng"
	"avdb/internal/storage"
	"avdb/internal/transport"
	"avdb/internal/transport/memnet"
	"avdb/internal/txn"
	"avdb/internal/wire"
)

// harness wires N twopc engines over a memnet.
type harness struct {
	net     *memnet.Net
	engines []*Engine
	stores  []*storage.Engine
	peers   [][]wire.SiteID
}

func newHarness(t *testing.T, n int, initial int64) *harness {
	t.Helper()
	return newHarnessNet(t, n, initial, memnet.Options{CallTimeout: 2 * time.Second})
}

func newHarnessNet(t *testing.T, n int, initial int64, opts memnet.Options) *harness {
	t.Helper()
	h := &harness{net: memnet.New(opts)}
	for i := 0; i < n; i++ {
		eng, err := storage.Open(storage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		eng.Put(storage.Record{Key: "k", Amount: initial, Class: storage.NonRegular})
		tm := txn.NewManager(eng, lockmgr.Options{WaitTimeout: 300 * time.Millisecond})
		e := New(Options{Site: wire.SiteID(i), Base: 0, PrepareTimeout: 500 * time.Millisecond}, tm)
		node, err := h.net.Open(wire.SiteID(i), func(e *Engine) transport.Handler {
			return func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
				switch m := msg.(type) {
				case *wire.IUPrepare:
					return e.HandlePrepare(ctx, from, m)
				case *wire.IUDecision:
					return e.HandleDecision(ctx, from, m)
				}
				return nil
			}
		}(e))
		if err != nil {
			t.Fatal(err)
		}
		e.SetNode(node)
		h.engines = append(h.engines, e)
		h.stores = append(h.stores, eng)
	}
	for i := 0; i < n; i++ {
		var ps []wire.SiteID
		for j := 0; j < n; j++ {
			if j != i {
				ps = append(ps, wire.SiteID(j))
			}
		}
		h.peers = append(h.peers, ps)
	}
	return h
}

func (h *harness) amounts(t *testing.T) []int64 {
	t.Helper()
	out := make([]int64, len(h.stores))
	for i, s := range h.stores {
		n, err := s.Amount("k")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = n
	}
	return out
}

func TestCommitAppliesEverywhere(t *testing.T) {
	h := newHarness(t, 3, 100)
	if err := h.engines[1].Update(context.Background(), h.peers[1], "k", -40); err != nil {
		t.Fatal(err)
	}
	for i, n := range h.amounts(t) {
		if n != 60 {
			t.Fatalf("site %d amount = %d, want 60", i, n)
		}
	}
	for i, e := range h.engines {
		if e.PreparedCount() != 0 {
			t.Fatalf("site %d leaked %d prepared txns", i, e.PreparedCount())
		}
	}
}

func TestCoordinatorAtBase(t *testing.T) {
	h := newHarness(t, 3, 100)
	if err := h.engines[0].Update(context.Background(), h.peers[0], "k", 25); err != nil {
		t.Fatal(err)
	}
	for _, n := range h.amounts(t) {
		if n != 125 {
			t.Fatalf("amounts = %v", h.amounts(t))
		}
	}
}

func TestUpdateAsyncCommitsEverywhere(t *testing.T) {
	h := newHarness(t, 3, 100)
	p, err := h.engines[1].UpdateAsync(context.Background(), h.peers[1], "k", -40)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.TxnID == 0 {
		t.Fatal("pending round carries no txn id")
	}
	for i, n := range h.amounts(t) {
		if n != 60 {
			t.Fatalf("site %d amount = %d, want 60", i, n)
		}
	}
	for i, e := range h.engines {
		if e.PreparedCount() != 0 {
			t.Fatalf("site %d leaked %d prepared txns", i, e.PreparedCount())
		}
	}
}

func TestUpdateAsyncAbortReportedSynchronously(t *testing.T) {
	h := newHarness(t, 3, 10)
	p, err := h.engines[1].UpdateAsync(context.Background(), h.peers[1], "k", -50)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if p != nil {
		t.Fatal("aborted round left a pending handle in flight")
	}
	for i, n := range h.amounts(t) {
		if n != 10 {
			t.Fatalf("site %d mutated on abort: %d", i, n)
		}
	}
	// The window slot was released: a valid follow-up pipelines fine.
	p, err = h.engines[1].UpdateAsync(context.Background(), h.peers[1], "k", -5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateAsyncPipelinesAcrossEpochs runs the coordinator on an
// epoch-committed durable store and issues rounds back to back: while
// round N's covering fsync is parked on the epoch boundary, rounds
// N+1.. must prepare and apply — the overlap PipelinedCommits counts.
func TestUpdateAsyncPipelinesAcrossEpochs(t *testing.T) {
	net := memnet.New(memnet.Options{CallTimeout: 2 * time.Second})
	var engines []*Engine
	var stores []*storage.Engine
	for i := 0; i < 2; i++ {
		opts := storage.Options{}
		if i == 0 {
			// Coordinator commits through epochs; a wide interval parks
			// every durability wait long enough for later rounds to admit.
			opts = storage.Options{Dir: t.TempDir(), EpochInterval: 5 * time.Millisecond, EpochMaxCommits: -1}
		}
		eng, err := storage.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		eng.Put(storage.Record{Key: "k", Amount: 100, Class: storage.NonRegular})
		tm := txn.NewManager(eng, lockmgr.Options{WaitTimeout: 300 * time.Millisecond})
		e := New(Options{Site: wire.SiteID(i), Base: 0, PrepareTimeout: 500 * time.Millisecond}, tm)
		node, err := net.Open(wire.SiteID(i), func(e *Engine) transport.Handler {
			return func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
				switch m := msg.(type) {
				case *wire.IUPrepare:
					return e.HandlePrepare(ctx, from, m)
				case *wire.IUDecision:
					return e.HandleDecision(ctx, from, m)
				}
				return nil
			}
		}(e))
		if err != nil {
			t.Fatal(err)
		}
		e.SetNode(node)
		engines = append(engines, e)
		stores = append(stores, eng)
	}

	const rounds = 4
	var pendings []*Pending
	for i := 0; i < rounds; i++ {
		p, err := engines[0].UpdateAsync(context.Background(), []wire.SiteID{1}, "k", -1)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		pendings = append(pendings, p)
	}
	for i, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatalf("round %d completion: %v", i, err)
		}
	}
	for i, s := range stores {
		n, err := s.Amount("k")
		if err != nil {
			t.Fatal(err)
		}
		if n != 100-rounds {
			t.Fatalf("site %d amount = %d, want %d", i, n, 100-rounds)
		}
	}
	if engines[0].Stats().PipelinedCommits.Load() == 0 {
		t.Fatal("no round overlapped a prior fsync: the pipeline never formed")
	}
	if engines[0].PreparedCount() != 0 || engines[1].PreparedCount() != 0 {
		t.Fatal("pipelined rounds leaked prepared txns")
	}
}

func TestValidationAbortsEverywhere(t *testing.T) {
	h := newHarness(t, 3, 10)
	err := h.engines[1].Update(context.Background(), h.peers[1], "k", -50)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	for i, n := range h.amounts(t) {
		if n != 10 {
			t.Fatalf("site %d mutated on abort: %d", i, n)
		}
	}
	// No locks leaked: a follow-up valid update succeeds.
	if err := h.engines[1].Update(context.Background(), h.peers[1], "k", -5); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownKeyAborts(t *testing.T) {
	h := newHarness(t, 2, 10)
	if err := h.engines[0].Update(context.Background(), h.peers[0], "ghost", 1); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
}

func TestParticipantUnreachableAborts(t *testing.T) {
	h := newHarness(t, 3, 100)
	h.net.Crash(2)
	err := h.engines[1].Update(context.Background(), h.peers[1], "k", -10)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if n, _ := h.stores[0].Amount("k"); n != 100 {
		t.Fatalf("site 0 mutated: %d", n)
	}
	if n, _ := h.stores[1].Amount("k"); n != 100 {
		t.Fatalf("coordinator mutated: %d", n)
	}
	// After the site returns, updates flow again.
	h.net.Restart(2)
	if err := h.engines[1].Update(context.Background(), h.peers[1], "k", -10); err != nil {
		t.Fatal(err)
	}
	for _, n := range h.amounts(t) {
		if n != 90 {
			t.Fatalf("amounts = %v", h.amounts(t))
		}
	}
}

func TestConcurrentUpdatesSerialize(t *testing.T) {
	// Symmetric contention can abort every coordinator in a round (each
	// holds its local lock while waiting on the others), so clients retry
	// with backoff — as the paper's end users would. The invariant under
	// test: after all retries, every replica shows exactly the committed
	// total, i.e. aborts never leak partial effects.
	h := newHarness(t, 3, 1000)
	var wg sync.WaitGroup
	const updaters, perUpdate = 6, -10
	for g := 0; g < updaters; g++ {
		wg.Add(1)
		site := g % 3
		r := rng.New(uint64(g) + 99)
		go func() {
			defer wg.Done()
			for attempt := 0; attempt < 300; attempt++ {
				err := h.engines[site].Update(context.Background(), h.peers[site], "k", perUpdate)
				if err == nil {
					return
				}
				if !errors.Is(err, ErrAborted) {
					t.Errorf("unexpected error: %v", err)
					return
				}
				// Randomized backoff: deterministic delays can re-align
				// the coordinators and livelock forever.
				time.Sleep(time.Duration(r.Range(1, 20*(int64(attempt)+1))) * time.Millisecond)
			}
			t.Error("update never committed after 300 attempts")
		}()
	}
	wg.Wait()
	want := int64(1000 + updaters*perUpdate)
	for i, n := range h.amounts(t) {
		if n != want {
			t.Fatalf("site %d = %d, want %d", i, n, want)
		}
	}
}

func TestSweepAbortsOrphanedPrepares(t *testing.T) {
	h := newHarness(t, 2, 100)
	// Prepare directly (simulating a coordinator that died before phase 2).
	vote := h.engines[1].HandlePrepare(context.Background(), 0, &wire.IUPrepare{TxnID: 999, Coord: 0, Key: "k", Delta: -10})
	if !vote.OK {
		t.Fatalf("prepare refused: %s", vote.Reason)
	}
	if h.engines[1].PreparedCount() != 1 {
		t.Fatal("prepared txn not held")
	}
	// Before the TTL nothing is swept.
	if n := h.engines[1].Sweep(time.Now()); n != 0 {
		t.Fatalf("early sweep removed %d", n)
	}
	if n := h.engines[1].Sweep(time.Now().Add(time.Minute)); n != 1 {
		t.Fatalf("sweep removed %d, want 1", n)
	}
	// The lock is free again and the data unchanged.
	if n, _ := h.stores[1].Amount("k"); n != 100 {
		t.Fatalf("swept txn mutated data: %d", n)
	}
	if err := h.engines[0].Update(context.Background(), h.peers[0], "k", -1); err != nil {
		t.Fatalf("after sweep: %v", err)
	}
}

func TestDecisionForUnknownTxn(t *testing.T) {
	h := newHarness(t, 2, 100)
	ack := h.engines[1].HandleDecision(context.Background(), 0, &wire.IUDecision{TxnID: 12345, Commit: true})
	if ack.OK {
		t.Fatal("acked commit of unknown txn")
	}
	ack = h.engines[1].HandleDecision(context.Background(), 0, &wire.IUDecision{TxnID: 12345, Commit: false})
	if !ack.OK {
		t.Fatal("abort of unknown txn must be presumed fine")
	}
}

func TestBaseAckRequiredForCompletion(t *testing.T) {
	// Contract: when the base is unreachable for phase 2, Update returns
	// ErrCompletionUnknown while still committing at reachable sites. A
	// drop filter that eats only decision messages to the base makes the
	// scenario deterministic.
	dropDecisionsToBase := func(from, to wire.SiteID, msg wire.Message) bool {
		_, isDecision := msg.(*wire.IUDecision)
		return isDecision && to == 0
	}
	net := memnet.New(memnet.Options{Drop: dropDecisionsToBase, CallTimeout: 300 * time.Millisecond})
	var engines []*Engine
	var stores []*storage.Engine
	for i := 0; i < 3; i++ {
		eng, _ := storage.Open(storage.Options{})
		t.Cleanup(func() { eng.Close() })
		eng.Put(storage.Record{Key: "k", Amount: 100})
		tm := txn.NewManager(eng, lockmgr.Options{WaitTimeout: 300 * time.Millisecond})
		e := New(Options{Site: wire.SiteID(i), Base: 0, PrepareTimeout: 300 * time.Millisecond}, tm)
		node, err := net.Open(wire.SiteID(i), func(e *Engine) transport.Handler {
			return func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
				switch m := msg.(type) {
				case *wire.IUPrepare:
					return e.HandlePrepare(ctx, from, m)
				case *wire.IUDecision:
					return e.HandleDecision(ctx, from, m)
				}
				return nil
			}
		}(e))
		if err != nil {
			t.Fatal(err)
		}
		e.SetNode(node)
		engines = append(engines, e)
		stores = append(stores, eng)
	}
	err := engines[1].Update(context.Background(), []wire.SiteID{0, 2}, "k", -10)
	if !errors.Is(err, ErrCompletionUnknown) {
		t.Fatalf("err = %v, want ErrCompletionUnknown", err)
	}
	// Coordinator and site 2 committed; base still holds the prepared txn.
	if n, _ := stores[1].Amount("k"); n != 90 {
		t.Fatalf("coordinator = %d", n)
	}
	if n, _ := stores[2].Amount("k"); n != 90 {
		t.Fatalf("site 2 = %d", n)
	}
	if engines[0].PreparedCount() != 1 {
		t.Fatalf("base prepared count = %d", engines[0].PreparedCount())
	}
}

func BenchmarkImmediateUpdate3Sites(b *testing.B) {
	net := memnet.New(memnet.Options{})
	var engines []*Engine
	for i := 0; i < 3; i++ {
		eng, _ := storage.Open(storage.Options{})
		defer eng.Close()
		eng.Put(storage.Record{Key: "k", Amount: 1 << 40})
		tm := txn.NewManager(eng, lockmgr.Options{})
		e := New(Options{Site: wire.SiteID(i), Base: 0}, tm)
		node, _ := net.Open(wire.SiteID(i), func(e *Engine) transport.Handler {
			return func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
				switch m := msg.(type) {
				case *wire.IUPrepare:
					return e.HandlePrepare(ctx, from, m)
				case *wire.IUDecision:
					return e.HandleDecision(ctx, from, m)
				}
				return nil
			}
		}(e))
		e.SetNode(node)
		engines = append(engines, e)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engines[1].Update(ctx, []wire.SiteID{0, 2}, "k", -1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDuplicateCommitAcksConsistently(t *testing.T) {
	h := newHarness(t, 2, 100)
	e := h.engines[1]
	vote := e.HandlePrepare(context.Background(), 0, &wire.IUPrepare{TxnID: 7, Coord: 0, Key: "k", Delta: -10})
	if !vote.OK {
		t.Fatalf("prepare refused: %s", vote.Reason)
	}
	ack := e.HandleDecision(context.Background(), 0, &wire.IUDecision{TxnID: 7, Commit: true})
	if !ack.OK {
		t.Fatal("commit not acked")
	}
	// A retransmitted COMMIT for the committed txn must ack OK — the
	// decided-outcome cache distinguishes it from a never-prepared txn —
	// and must not re-apply the delta.
	ack = e.HandleDecision(context.Background(), 0, &wire.IUDecision{TxnID: 7, Commit: true})
	if !ack.OK {
		t.Fatal("duplicate commit reported as presumed abort")
	}
	if n, _ := h.stores[1].Amount("k"); n != 90 {
		t.Fatalf("duplicate commit re-applied: %d", n)
	}
	// But a conflicting decision (abort of a committed txn) must not ack.
	ack = e.HandleDecision(context.Background(), 0, &wire.IUDecision{TxnID: 7, Commit: false})
	if ack.OK {
		t.Fatal("acked an abort of a committed txn")
	}
}

func TestParticipantVotesAbortOnValidation(t *testing.T) {
	// One participant cannot satisfy the update (its replica would go
	// negative): it votes abort and the coordinator aborts everywhere,
	// releasing all prepared state.
	h := newHarness(t, 3, 100)
	h.stores[2].Put(storage.Record{Key: "k", Amount: 3, Class: storage.NonRegular})
	err := h.engines[0].Update(context.Background(), h.peers[0], "k", -10)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want abort", err)
	}
	if got := h.amounts(t); got[0] != 100 || got[1] != 100 || got[2] != 3 {
		t.Fatalf("amounts after abort = %v", got)
	}
	for i, e := range h.engines {
		if e.PreparedCount() != 0 {
			t.Fatalf("site %d still holds prepared txns", i)
		}
	}
	if h.engines[0].Stats().Aborts.Load() != 1 {
		t.Fatal("Aborts not counted")
	}
}

func TestCoordinatorDeathAfterPrepareFreesParticipant(t *testing.T) {
	// The coordinator prepares at a participant and then dies: no
	// decision ever arrives. The participant's update path is blocked
	// only until the TTL sweep presumes abort; afterwards new updates
	// proceed and the data is untouched.
	h := newHarness(t, 2, 100)
	e := h.engines[1]
	vote := e.HandlePrepare(context.Background(), 0, &wire.IUPrepare{TxnID: 42, Coord: 0, Key: "k", Delta: -50})
	if !vote.OK {
		t.Fatalf("prepare refused: %s", vote.Reason)
	}
	// The prepared txn holds the lock: a local immediate update times out.
	if err := h.engines[1].Update(context.Background(), h.peers[1], "k", -1); !errors.Is(err, ErrAborted) {
		t.Fatalf("expected lock-blocked abort, got %v", err)
	}
	if n := e.Sweep(time.Now().Add(time.Minute)); n != 1 {
		t.Fatalf("sweep removed %d, want 1", n)
	}
	if e.Stats().Swept.Load() != 1 {
		t.Fatal("Swept not counted")
	}
	// A decision that straggles in after the sweep sees presumed abort.
	ack := e.HandleDecision(context.Background(), 0, &wire.IUDecision{TxnID: 42, Commit: true})
	if ack.OK {
		t.Fatal("acked commit of a swept (presumed-aborted) txn")
	}
	if err := h.engines[1].Update(context.Background(), h.peers[1], "k", -1); err != nil {
		t.Fatalf("update after sweep: %v", err)
	}
	if got := h.amounts(t); got[0] != 99 || got[1] != 99 {
		t.Fatalf("amounts = %v", got)
	}
}

func TestDecisionRetriedThroughDrops(t *testing.T) {
	// Phase 1 goes through clean; the first delivery of every decision is
	// dropped. The retry loop re-sends and the participant's dedup-free
	// handler (each retry is a fresh call) still applies exactly once.
	drop := &decisionDropper{remaining: 1}
	h := newHarnessNet(t, 2, 100, memnet.Options{CallTimeout: 2 * time.Second, Interceptor: drop})
	if err := h.engines[0].Update(context.Background(), h.peers[0], "k", -25); err != nil {
		t.Fatal(err)
	}
	if got := h.amounts(t); got[0] != 75 || got[1] != 75 {
		t.Fatalf("amounts = %v", got)
	}
	if h.engines[0].Stats().DecisionRetries.Load() == 0 {
		t.Fatal("DecisionRetries not counted")
	}
}

// decisionDropper drops the first `remaining` IUDecision requests.
type decisionDropper struct {
	mu        sync.Mutex
	remaining int
}

func (d *decisionDropper) Intercept(from, to wire.SiteID, isReply bool, kind wire.Kind) transport.Fault {
	if isReply || kind != wire.KindIUDecision {
		return transport.Fault{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.remaining > 0 {
		d.remaining--
		return transport.Fault{Drop: true}
	}
	return transport.Fault{}
}

func TestAbortOvertakesPrepare(t *testing.T) {
	// A coordinator that gives up while the participant is still waiting
	// for the lock broadcasts ABORT before the prepare finishes. The
	// late prepare must see the recorded decision and release its lock
	// immediately — not register and pin the key until the TTL sweep
	// (which a quiet engine may not run for a long time).
	h := newHarness(t, 2, 100)
	ack := h.engines[1].HandleDecision(context.Background(), 0, &wire.IUDecision{TxnID: 777, Commit: false})
	if !ack.OK {
		t.Fatal("presumed abort not acked")
	}
	vote := h.engines[1].HandlePrepare(context.Background(), 0, &wire.IUPrepare{TxnID: 777, Coord: 0, Key: "k", Delta: -10})
	if vote.OK {
		t.Fatal("prepare succeeded after its txn was aborted")
	}
	if h.engines[1].PreparedCount() != 0 {
		t.Fatal("aborted txn left prepared state")
	}
	// The lock must be free: a fresh update goes straight through.
	if err := h.engines[0].Update(context.Background(), h.peers[0], "k", -1); err != nil {
		t.Fatalf("key still locked after overtaken prepare: %v", err)
	}
	if n, _ := h.stores[1].Amount("k"); n != 99 {
		t.Fatalf("amount = %d, want 99", n)
	}
}
