package av

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"avdb/internal/rng"
)

func TestDefineAndCheck(t *testing.T) {
	tbl := NewTable()
	if tbl.Defined("p") {
		t.Fatal("undefined key reported defined")
	}
	if err := tbl.Define("p", 100); err != nil {
		t.Fatal(err)
	}
	if !tbl.Defined("p") {
		t.Fatal("defined key reported undefined")
	}
	if tbl.Avail("p") != 100 || tbl.Held("p") != 0 || tbl.Total("p") != 100 {
		t.Fatalf("avail=%d held=%d total=%d", tbl.Avail("p"), tbl.Held("p"), tbl.Total("p"))
	}
	// Re-define adds.
	tbl.Define("p", 50)
	if tbl.Avail("p") != 150 {
		t.Fatalf("avail after re-define = %d", tbl.Avail("p"))
	}
	if err := tbl.Define("q", -1); !errors.Is(err, ErrNegative) {
		t.Fatalf("negative define: %v", err)
	}
}

func TestUndefinedKeyOps(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.AcquireUpTo("x", 10); !errors.Is(err, ErrUndefined) {
		t.Fatalf("AcquireUpTo: %v", err)
	}
	if _, err := tbl.Acquire("x", 10); !errors.Is(err, ErrUndefined) {
		t.Fatalf("Acquire: %v", err)
	}
	if err := tbl.Credit("x", 10); !errors.Is(err, ErrUndefined) {
		t.Fatalf("Credit: %v", err)
	}
	if _, err := tbl.Debit("x", 10); !errors.Is(err, ErrUndefined) {
		t.Fatalf("Debit: %v", err)
	}
	if tbl.Avail("x") != 0 || tbl.Total("x") != 0 {
		t.Fatal("undefined key has nonzero volume")
	}
}

func TestAcquireUpTo(t *testing.T) {
	tbl := NewTable()
	tbl.Define("p", 30)
	got, err := tbl.AcquireUpTo("p", 20)
	if err != nil || got != 20 {
		t.Fatalf("got %d, %v", got, err)
	}
	if tbl.Avail("p") != 10 || tbl.Held("p") != 20 {
		t.Fatalf("avail=%d held=%d", tbl.Avail("p"), tbl.Held("p"))
	}
	// Shortfall: takes what's there.
	got, _ = tbl.AcquireUpTo("p", 50)
	if got != 10 {
		t.Fatalf("partial acquire got %d, want 10", got)
	}
	if tbl.Avail("p") != 0 || tbl.Held("p") != 30 {
		t.Fatalf("avail=%d held=%d", tbl.Avail("p"), tbl.Held("p"))
	}
}

func TestAcquireAllOrNothing(t *testing.T) {
	tbl := NewTable()
	tbl.Define("p", 30)
	ok, err := tbl.Acquire("p", 31)
	if err != nil || ok {
		t.Fatalf("over-acquire: ok=%v err=%v", ok, err)
	}
	if tbl.Avail("p") != 30 {
		t.Fatal("failed acquire mutated table")
	}
	ok, _ = tbl.Acquire("p", 30)
	if !ok || tbl.Held("p") != 30 {
		t.Fatalf("exact acquire failed: held=%d", tbl.Held("p"))
	}
}

func TestHoldLifecycle(t *testing.T) {
	tbl := NewTable()
	tbl.Define("p", 100)
	tbl.AcquireUpTo("p", 60)
	// The paper's Fig.1 scenario: site needs 30 more, receives a grant.
	if err := tbl.CreditHeld("p", 30); err != nil {
		t.Fatal(err)
	}
	if tbl.Held("p") != 90 {
		t.Fatalf("held = %d", tbl.Held("p"))
	}
	// Update commits spending 70; surplus 20 returns to the table.
	if err := tbl.Consume("p", 70); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Release("p", 20); err != nil {
		t.Fatal(err)
	}
	if tbl.Avail("p") != 60 || tbl.Held("p") != 0 {
		t.Fatalf("avail=%d held=%d, want 60/0", tbl.Avail("p"), tbl.Held("p"))
	}
}

func TestAbortCompensation(t *testing.T) {
	tbl := NewTable()
	tbl.Define("p", 50)
	tbl.AcquireUpTo("p", 50)
	// Rollback: everything held goes back.
	if err := tbl.Release("p", 50); err != nil {
		t.Fatal(err)
	}
	if tbl.Avail("p") != 50 || tbl.Held("p") != 0 {
		t.Fatal("abort did not restore the table")
	}
}

func TestOverspendRejected(t *testing.T) {
	tbl := NewTable()
	tbl.Define("p", 10)
	tbl.AcquireUpTo("p", 10)
	if err := tbl.Consume("p", 11); !errors.Is(err, ErrOverspend) {
		t.Fatalf("over-consume: %v", err)
	}
	if err := tbl.Release("p", 11); !errors.Is(err, ErrOverspend) {
		t.Fatalf("over-release: %v", err)
	}
	if tbl.Held("p") != 10 {
		t.Fatal("failed ops mutated holds")
	}
}

func TestDebitCaps(t *testing.T) {
	tbl := NewTable()
	tbl.Define("p", 40)
	got, err := tbl.Debit("p", 100)
	if err != nil || got != 40 {
		t.Fatalf("debit got %d, %v", got, err)
	}
	if tbl.Avail("p") != 0 {
		t.Fatalf("avail = %d", tbl.Avail("p"))
	}
	got, _ = tbl.Debit("p", 10)
	if got != 0 {
		t.Fatalf("debit from empty got %d", got)
	}
}

func TestNegativeAmountsRejectedEverywhere(t *testing.T) {
	tbl := NewTable()
	tbl.Define("p", 10)
	if _, err := tbl.AcquireUpTo("p", -1); !errors.Is(err, ErrNegative) {
		t.Fatal("AcquireUpTo")
	}
	if _, err := tbl.Acquire("p", -1); !errors.Is(err, ErrNegative) {
		t.Fatal("Acquire")
	}
	if err := tbl.Credit("p", -1); !errors.Is(err, ErrNegative) {
		t.Fatal("Credit")
	}
	if err := tbl.CreditHeld("p", -1); !errors.Is(err, ErrNegative) {
		t.Fatal("CreditHeld")
	}
	if err := tbl.Release("p", -1); !errors.Is(err, ErrNegative) {
		t.Fatal("Release")
	}
	if err := tbl.Consume("p", -1); !errors.Is(err, ErrNegative) {
		t.Fatal("Consume")
	}
	if _, err := tbl.Debit("p", -1); !errors.Is(err, ErrNegative) {
		t.Fatal("Debit")
	}
}

func TestSnapshotAndKeys(t *testing.T) {
	tbl := NewTable()
	tbl.Define("a", 1)
	tbl.Define("b", 2)
	tbl.AcquireUpTo("b", 1)
	snap := tbl.Snapshot()
	if snap["a"] != 1 || snap["b"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if len(tbl.Keys()) != 2 {
		t.Fatalf("keys = %v", tbl.Keys())
	}
}

// TestTransferConservation simulates random transfers between N tables
// and checks that the system-wide total volume for the key is invariant:
// transfers move AV, never create or destroy it.
func TestTransferConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 4
		tables := make([]*Table, n)
		var total int64
		for i := range tables {
			tables[i] = NewTable()
			init := r.Range(0, 500)
			tables[i].Define("k", init)
			total += init
		}
		for step := 0; step < 300; step++ {
			from := tables[r.Intn(n)]
			to := tables[r.Intn(n)]
			want := r.Range(0, 200)
			granted, err := from.Debit("k", want)
			if err != nil {
				return false
			}
			if err := to.Credit("k", granted); err != nil {
				return false
			}
			// Random holds and releases interleave with transfers.
			if r.Bool(0.5) {
				tb := tables[r.Intn(n)]
				got, _ := tb.AcquireUpTo("k", r.Range(0, 100))
				if r.Bool(0.5) {
					tb.Release("k", got)
				} else {
					// Leave the hold in place; it still counts in Total.
					_ = got
				}
			}
		}
		var sum int64
		for _, tb := range tables {
			if tb.Avail("k") < 0 || tb.Held("k") < 0 {
				return false
			}
			sum += tb.Total("k")
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentHoldsNeverOverdraw runs concurrent acquire/consume and
// verifies total consumption never exceeds the defined volume.
func TestConcurrentHoldsNeverOverdraw(t *testing.T) {
	tbl := NewTable()
	const budget = 10000
	tbl.Define("k", budget)
	var consumed sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		id := g
		go func() {
			defer wg.Done()
			r := rng.New(uint64(id + 1))
			var mine int64
			for i := 0; i < 500; i++ {
				n := r.Range(1, 10)
				ok, err := tbl.Acquire("k", n)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					continue
				}
				if r.Bool(0.8) {
					if err := tbl.Consume("k", n); err != nil {
						t.Error(err)
						return
					}
					mine += n
				} else {
					if err := tbl.Release("k", n); err != nil {
						t.Error(err)
						return
					}
				}
			}
			consumed.Store(id, mine)
		}()
	}
	wg.Wait()
	var totalConsumed int64
	consumed.Range(func(_, v any) bool { totalConsumed += v.(int64); return true })
	if totalConsumed > budget {
		t.Fatalf("consumed %d exceeds budget %d", totalConsumed, budget)
	}
	if tbl.Avail("k")+tbl.Held("k")+totalConsumed != budget {
		t.Fatalf("accounting broken: avail=%d held=%d consumed=%d budget=%d",
			tbl.Avail("k"), tbl.Held("k"), totalConsumed, budget)
	}
}

func BenchmarkAcquireConsume(b *testing.B) {
	tbl := NewTable()
	tbl.Define("k", 1<<62)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := tbl.Acquire("k", 1); ok {
			tbl.Consume("k", 1)
		}
	}
}

func BenchmarkAcquireUpToContended(b *testing.B) {
	tbl := NewTable()
	tbl.Define("k", 1<<62)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			got, _ := tbl.AcquireUpTo("k", 5)
			tbl.Release("k", got)
		}
	})
}

func TestEscrowDebitMovesAvailToEscrow(t *testing.T) {
	tb := NewTable()
	tb.Define("k", 100)
	got, err := tb.EscrowDebit("k", 7, 30)
	if err != nil || got != 30 {
		t.Fatalf("EscrowDebit = %d, %v", got, err)
	}
	if a := tb.Avail("k"); a != 70 {
		t.Fatalf("Avail = %d want 70", a)
	}
	if e := tb.Escrowed("k"); e != 30 {
		t.Fatalf("Escrowed = %d want 30", e)
	}
	if tot := tb.Total("k"); tot != 100 {
		t.Fatalf("Total = %d want 100 (escrow still counts)", tot)
	}
}

func TestEscrowDebitCapsAtAvail(t *testing.T) {
	tb := NewTable()
	tb.Define("k", 10)
	got, err := tb.EscrowDebit("k", 7, 25)
	if err != nil || got != 10 {
		t.Fatalf("EscrowDebit = %d, %v", got, err)
	}
}

func TestEscrowDebitIdempotentOnXfer(t *testing.T) {
	tb := NewTable()
	tb.Define("k", 100)
	tb.EscrowDebit("k", 7, 30)
	// Duplicate request (same xfer): same answer, no extra debit.
	got, err := tb.EscrowDebit("k", 7, 30)
	if err != nil || got != 30 {
		t.Fatalf("duplicate EscrowDebit = %d, %v", got, err)
	}
	if a := tb.Avail("k"); a != 70 {
		t.Fatalf("Avail = %d want 70 after duplicate", a)
	}
}

func TestSettleDestroysEscrow(t *testing.T) {
	tb := NewTable()
	tb.Define("k", 100)
	tb.EscrowDebit("k", 7, 30)
	n, err := tb.ResolveEscrow(7, false)
	if err != nil || n != 30 {
		t.Fatalf("ResolveEscrow = %d, %v", n, err)
	}
	if tot := tb.Total("k"); tot != 70 {
		t.Fatalf("Total = %d want 70 after settle", tot)
	}
	if e := tb.Escrowed("k"); e != 0 {
		t.Fatalf("Escrowed = %d want 0", e)
	}
}

func TestCancelRefundsEscrow(t *testing.T) {
	tb := NewTable()
	tb.Define("k", 100)
	tb.EscrowDebit("k", 7, 30)
	n, err := tb.ResolveEscrow(7, true)
	if err != nil || n != 30 {
		t.Fatalf("ResolveEscrow = %d, %v", n, err)
	}
	if a := tb.Avail("k"); a != 100 {
		t.Fatalf("Avail = %d want 100 after cancel", a)
	}
}

func TestResolveUnknownXferIsNoop(t *testing.T) {
	tb := NewTable()
	tb.Define("k", 100)
	if n, err := tb.ResolveEscrow(99, false); n != 0 || err != nil {
		t.Fatalf("ResolveEscrow(unknown) = %d, %v", n, err)
	}
}

func TestLateDuplicateAfterResolveGetsNothing(t *testing.T) {
	tb := NewTable()
	tb.Define("k", 100)
	tb.EscrowDebit("k", 7, 30)
	tb.ResolveEscrow(7, true)
	// A delayed duplicate of the original request must not re-escrow.
	got, err := tb.EscrowDebit("k", 7, 30)
	if err != nil || got != 0 {
		t.Fatalf("late duplicate EscrowDebit = %d, %v", got, err)
	}
	if a := tb.Avail("k"); a != 100 {
		t.Fatalf("Avail = %d want 100", a)
	}
}

func TestPendingEscrows(t *testing.T) {
	tb := NewTable()
	tb.Define("a", 50)
	tb.Define("b", 50)
	tb.EscrowDebit("a", 1, 10)
	tb.EscrowDebit("b", 2, 20)
	tb.ResolveEscrow(1, false)
	pend := tb.PendingEscrows()
	if len(pend) != 1 || pend[0].Xfer != 2 || pend[0].Key != "b" || pend[0].N != 20 {
		t.Fatalf("PendingEscrows = %+v", pend)
	}
}

func TestEscrowDebitRejectsZeroXfer(t *testing.T) {
	tb := NewTable()
	tb.Define("k", 10)
	if _, err := tb.EscrowDebit("k", 0, 5); err == nil {
		t.Fatal("zero xfer accepted")
	}
}
