// Package av implements the paper's central data structure: the
// Allowable Volume table. An AV is a site-local slice of the global
// slack of one numeric datum (a product's stock). A site may decrement
// the datum locally, with no communication, as long as it spends AV it
// holds; AV moves between sites through explicit transfers. Because
// every unit of AV is backed by a unit of real global stock and
// transfers only move units (never mint them), local autonomous updates
// can never drive the global value negative — this is the escrow
// argument behind the paper's "autonomous consistency".
//
// The table distinguishes *available* AV from *held* AV: an in-flight
// update reserves (holds) the volume it intends to spend, so concurrent
// updates at the same site share the remainder without exclusive locks
// (paper §3.3: "extra AV can be used by other process while one process
// accesses the same data"). Aborting releases the hold — the paper's
// compensating "opposite of update volume".
//
// The table is hash-striped: every operation touches exactly one key,
// so entries are partitioned across independently locked shards and
// concurrent Delay Updates to different keys never serialize here.
package av

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// AV table errors.
var (
	ErrUndefined = errors.New("av: no allowable volume defined for key")
	ErrOverspend = errors.New("av: attempt to consume or release more than held")
	ErrNegative  = errors.New("av: negative amount")
)

// numShards partitions the table; a power of two so the shard index is
// a mask.
const numShards = 64

// shardOf hashes a key (FNV-1a) to its shard index.
func shardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (numShards - 1))
}

// maxResolvedXfers bounds the tombstone set remembering resolved
// transfer IDs (so a late duplicate request can't re-create escrow).
const maxResolvedXfers = 4096

// Table is one site's AV management table. It is safe for concurrent use.
type Table struct {
	shards [numShards]tableShard

	// Escrowed outbound transfers, keyed by transfer ID. Guarded by its
	// own lock; lock order is xmu before a shard lock, never the reverse.
	xmu           sync.Mutex
	xfers         map[uint64]escrowRec
	resolved      map[uint64]bool // tombstones of settled/canceled xfers
	resolvedOrder []uint64        // FIFO for tombstone eviction
	obls          map[uint64]Obligation
}

type escrowRec struct {
	key string
	n   int64
}

type tableShard struct {
	mu      sync.Mutex
	entries map[string]*entry
}

type entry struct {
	avail  int64 // free allowable volume
	held   int64 // reserved by in-flight updates
	escrow int64 // debited for a transfer but not yet settled/canceled
}

// NewTable creates an empty table.
func NewTable() *Table {
	t := &Table{
		xfers:    make(map[uint64]escrowRec),
		resolved: make(map[uint64]bool),
		obls:     make(map[uint64]Obligation),
	}
	for i := range t.shards {
		t.shards[i].entries = make(map[string]*entry)
	}
	return t
}

// shard returns the locked shard for key; the caller must unlock it.
func (t *Table) shard(key string) *tableShard {
	s := &t.shards[shardOf(key)]
	s.mu.Lock()
	return s
}

// Define declares an AV for key with an initial available volume. It is
// the act that classifies the datum as a Delay-Update (regular) product:
// the accelerator's checking function routes keys with a defined AV to
// the Delay path. Defining an already-defined key adds to it.
func (t *Table) Define(key string, initial int64) error {
	if initial < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		e = &entry{}
		s.entries[key] = e
	}
	e.avail += initial
	return nil
}

// Defined reports whether an AV exists for key — the checking function.
func (t *Table) Defined(key string) bool {
	s := t.shard(key)
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Avail returns the free (unheld) volume for key, 0 if undefined.
func (t *Table) Avail(key string) int64 {
	s := t.shard(key)
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		return e.avail
	}
	return 0
}

// Held returns the volume currently reserved by in-flight updates.
func (t *Table) Held(key string) int64 {
	s := t.shard(key)
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		return e.held
	}
	return 0
}

// Total returns avail + held + escrow: every unit of global slack this
// site is accountable for. Escrowed units still count against the site
// until the requester settles the transfer, which is what keeps the
// cluster-wide conservation sum exact while transfers are in flight.
func (t *Table) Total(key string) int64 {
	s := t.shard(key)
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		return e.avail + e.held + e.escrow
	}
	return 0
}

// Escrowed returns the volume parked in unresolved outbound transfers
// of key.
func (t *Table) Escrowed(key string) int64 {
	s := t.shard(key)
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		return e.escrow
	}
	return 0
}

// AcquireUpTo moves up to want units from available to held and returns
// how many were taken (possibly 0). This is the Delay path's first step:
// take what the local table has, then go shopping for the shortage.
func (t *Table) AcquireUpTo(key string, want int64) (int64, error) {
	if want < 0 {
		return 0, ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return 0, ErrUndefined
	}
	take := want
	if e.avail < take {
		take = e.avail
	}
	e.avail -= take
	e.held += take
	return take, nil
}

// Acquire reserves exactly n units, or nothing: it returns false when
// fewer than n are available.
func (t *Table) Acquire(key string, n int64) (bool, error) {
	if n < 0 {
		return false, ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return false, ErrUndefined
	}
	if e.avail < n {
		return false, nil
	}
	e.avail -= n
	e.held += n
	return true, nil
}

// CreditHeld adds n units received from a peer directly to the held
// reservation of an in-flight update (an AV grant the requester is about
// to spend).
func (t *Table) CreditHeld(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return ErrUndefined
	}
	e.held += n
	return nil
}

// Release moves n units from held back to available — the abort path,
// or the return of surplus after an update completed.
func (t *Table) Release(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return ErrUndefined
	}
	if e.held < n {
		return fmt.Errorf("%w: release %d held %d", ErrOverspend, n, e.held)
	}
	e.held -= n
	e.avail += n
	return nil
}

// Consume destroys n held units — the commit of a decrement update. The
// destroyed slack is exactly matched by the decrement of the datum, so
// global conservation is preserved.
func (t *Table) Consume(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return ErrUndefined
	}
	if e.held < n {
		return fmt.Errorf("%w: consume %d held %d", ErrOverspend, n, e.held)
	}
	e.held -= n
	return nil
}

// Credit adds n fresh units of available volume — an increment update
// creating new slack, or an inbound AV transfer.
func (t *Table) Credit(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return ErrUndefined
	}
	e.avail += n
	return nil
}

// Debit removes up to n available units for an outbound transfer and
// returns how many were actually taken. The grantor's deciding policy
// computes n; Debit enforces it cannot exceed what is free.
func (t *Table) Debit(key string, n int64) (int64, error) {
	if n < 0 {
		return 0, ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return 0, ErrUndefined
	}
	take := n
	if e.avail < take {
		take = e.avail
	}
	e.avail -= take
	return take, nil
}

// EscrowDebit removes up to n available units for the outbound
// transfer identified by xfer and parks them in escrow instead of
// handing them over unconditionally. The units leave avail but stay in
// this site's Total until ResolveEscrow settles (destroys) or cancels
// (refunds) them, so a lost grant reply can never make AV vanish — it
// strands slack, which the requester-driven settle protocol reclaims.
//
// EscrowDebit is idempotent on xfer: a duplicate request for a known
// transfer returns the originally escrowed amount without debiting
// again, and a request for an already-resolved transfer returns 0 (the
// tombstone blocks late duplicates from minting fresh escrow).
func (t *Table) EscrowDebit(key string, xfer uint64, n int64) (int64, error) {
	if n < 0 {
		return 0, ErrNegative
	}
	if xfer == 0 {
		return 0, fmt.Errorf("av: zero transfer id")
	}
	t.xmu.Lock()
	defer t.xmu.Unlock()
	if rec, ok := t.xfers[xfer]; ok {
		return rec.n, nil
	}
	if t.resolved[xfer] {
		return 0, nil
	}
	s := t.shard(key)
	e := s.entries[key]
	if e == nil {
		s.mu.Unlock()
		return 0, ErrUndefined
	}
	take := n
	if e.avail < take {
		take = e.avail
	}
	e.avail -= take
	e.escrow += take
	s.mu.Unlock()
	if take > 0 {
		// A zero take leaves no ledger entry: the requester uses a fresh
		// transfer id per attempt, and resolving an unknown id is a no-op.
		t.xfers[xfer] = escrowRec{key: key, n: take}
	}
	return take, nil
}

// ResolveEscrow finishes the transfer identified by xfer. With refund
// false (settle) the escrowed units are destroyed — the requester
// credited them, so this site's share of the global slack shrinks by
// exactly what the requester's grew. With refund true (cancel) they
// return to avail. Resolving an unknown or already-resolved transfer
// returns (0, nil): settles and cancels may be retried and duplicated
// freely.
func (t *Table) ResolveEscrow(xfer uint64, refund bool) (int64, error) {
	t.xmu.Lock()
	defer t.xmu.Unlock()
	rec, ok := t.xfers[xfer]
	if !ok {
		return 0, nil
	}
	delete(t.xfers, xfer)
	t.tombstone(xfer)
	s := t.shard(rec.key)
	defer s.mu.Unlock()
	e := s.entries[rec.key]
	if e == nil || e.escrow < rec.n {
		return 0, fmt.Errorf("%w: resolve %d escrow %d", ErrOverspend, rec.n, t.escrowOf(e))
	}
	e.escrow -= rec.n
	if refund {
		e.avail += rec.n
	}
	return rec.n, nil
}

func (t *Table) escrowOf(e *entry) int64 {
	if e == nil {
		return 0
	}
	return e.escrow
}

// tombstone records a resolved xfer, evicting the oldest record when
// the set is full. Caller holds t.xmu.
func (t *Table) tombstone(xfer uint64) {
	if len(t.resolvedOrder) >= maxResolvedXfers {
		evict := t.resolvedOrder[0]
		t.resolvedOrder = t.resolvedOrder[1:]
		delete(t.resolved, evict)
	}
	t.resolved[xfer] = true
	t.resolvedOrder = append(t.resolvedOrder, xfer)
}

// EscrowAmount returns the pending amount of transfer xfer, or 0 when
// the transfer is unknown or already resolved.
func (t *Table) EscrowAmount(xfer uint64) int64 {
	t.xmu.Lock()
	defer t.xmu.Unlock()
	return t.xfers[xfer].n
}

// Escrow describes one unresolved outbound transfer.
type Escrow struct {
	Xfer uint64
	Key  string
	N    int64
}

// PendingEscrows returns the unresolved outbound transfers, ordered by
// transfer id, for restart recovery and invariant checks.
func (t *Table) PendingEscrows() []Escrow {
	t.xmu.Lock()
	defer t.xmu.Unlock()
	out := make([]Escrow, 0, len(t.xfers))
	for x, rec := range t.xfers {
		out = append(out, Escrow{Xfer: x, Key: rec.key, N: rec.n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Xfer < out[j].Xfer })
	return out
}

// Obligation is a requester-side promise to finish an escrowed inbound
// transfer: Cancel=false settles (the units were credited locally, the
// granter must destroy its escrow), Cancel=true cancels (the request
// failed, the granter must refund). Obligations are recorded before
// their effects so that after a crash the requester re-drives the
// settle/cancel and the granter's escrow cannot strand double-counted.
type Obligation struct {
	Xfer   uint64
	Peer   uint32 // granter site
	Cancel bool
}

// AddObligation records ob, overwriting any previous record for the
// same transfer.
func (t *Table) AddObligation(ob Obligation) error {
	if ob.Xfer == 0 {
		return errors.New("av: zero obligation transfer id")
	}
	t.xmu.Lock()
	defer t.xmu.Unlock()
	t.obls[ob.Xfer] = ob
	return nil
}

// CompleteObligation discharges the obligation for xfer (no-op when
// unknown).
func (t *Table) CompleteObligation(xfer uint64) error {
	t.xmu.Lock()
	defer t.xmu.Unlock()
	delete(t.obls, xfer)
	return nil
}

// Obligations returns the outstanding obligations, ordered by transfer
// id so callers that iterate them (escrow reconciliation) behave
// deterministically.
func (t *Table) Obligations() []Obligation {
	t.xmu.Lock()
	defer t.xmu.Unlock()
	out := make([]Obligation, 0, len(t.obls))
	for _, ob := range t.obls {
		out = append(out, ob)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Xfer < out[j].Xfer })
	return out
}

// Keys returns the defined keys (unordered).
func (t *Table) Keys() []string {
	var out []string
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			out = append(out, k)
		}
		s.mu.Unlock()
	}
	return out
}

// Snapshot returns key -> available volume for gossip piggybacking.
// Shards are visited one at a time, so the view across keys may be
// slightly stale — gossip consumers tolerate staleness by design.
func (t *Table) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			out[k] = e.avail
		}
		s.mu.Unlock()
	}
	return out
}
