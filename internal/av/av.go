// Package av implements the paper's central data structure: the
// Allowable Volume table. An AV is a site-local slice of the global
// slack of one numeric datum (a product's stock). A site may decrement
// the datum locally, with no communication, as long as it spends AV it
// holds; AV moves between sites through explicit transfers. Because
// every unit of AV is backed by a unit of real global stock and
// transfers only move units (never mint them), local autonomous updates
// can never drive the global value negative — this is the escrow
// argument behind the paper's "autonomous consistency".
//
// The table distinguishes *available* AV from *held* AV: an in-flight
// update reserves (holds) the volume it intends to spend, so concurrent
// updates at the same site share the remainder without exclusive locks
// (paper §3.3: "extra AV can be used by other process while one process
// accesses the same data"). Aborting releases the hold — the paper's
// compensating "opposite of update volume".
package av

import (
	"errors"
	"fmt"
	"sync"
)

// AV table errors.
var (
	ErrUndefined = errors.New("av: no allowable volume defined for key")
	ErrOverspend = errors.New("av: attempt to consume or release more than held")
	ErrNegative  = errors.New("av: negative amount")
)

// Table is one site's AV management table. It is safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	entries map[string]*entry
}

type entry struct {
	avail int64 // free allowable volume
	held  int64 // reserved by in-flight updates
}

// NewTable creates an empty table.
func NewTable() *Table {
	return &Table{entries: make(map[string]*entry)}
}

// Define declares an AV for key with an initial available volume. It is
// the act that classifies the datum as a Delay-Update (regular) product:
// the accelerator's checking function routes keys with a defined AV to
// the Delay path. Defining an already-defined key adds to it.
func (t *Table) Define(key string, initial int64) error {
	if initial < 0 {
		return ErrNegative
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		e = &entry{}
		t.entries[key] = e
	}
	e.avail += initial
	return nil
}

// Defined reports whether an AV exists for key — the checking function.
func (t *Table) Defined(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.entries[key]
	return ok
}

// Avail returns the free (unheld) volume for key, 0 if undefined.
func (t *Table) Avail(key string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[key]; e != nil {
		return e.avail
	}
	return 0
}

// Held returns the volume currently reserved by in-flight updates.
func (t *Table) Held(key string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[key]; e != nil {
		return e.held
	}
	return 0
}

// Total returns avail + held.
func (t *Table) Total(key string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[key]; e != nil {
		return e.avail + e.held
	}
	return 0
}

// AcquireUpTo moves up to want units from available to held and returns
// how many were taken (possibly 0). This is the Delay path's first step:
// take what the local table has, then go shopping for the shortage.
func (t *Table) AcquireUpTo(key string, want int64) (int64, error) {
	if want < 0 {
		return 0, ErrNegative
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		return 0, ErrUndefined
	}
	take := want
	if e.avail < take {
		take = e.avail
	}
	e.avail -= take
	e.held += take
	return take, nil
}

// Acquire reserves exactly n units, or nothing: it returns false when
// fewer than n are available.
func (t *Table) Acquire(key string, n int64) (bool, error) {
	if n < 0 {
		return false, ErrNegative
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		return false, ErrUndefined
	}
	if e.avail < n {
		return false, nil
	}
	e.avail -= n
	e.held += n
	return true, nil
}

// CreditHeld adds n units received from a peer directly to the held
// reservation of an in-flight update (an AV grant the requester is about
// to spend).
func (t *Table) CreditHeld(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		return ErrUndefined
	}
	e.held += n
	return nil
}

// Release moves n units from held back to available — the abort path,
// or the return of surplus after an update completed.
func (t *Table) Release(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		return ErrUndefined
	}
	if e.held < n {
		return fmt.Errorf("%w: release %d held %d", ErrOverspend, n, e.held)
	}
	e.held -= n
	e.avail += n
	return nil
}

// Consume destroys n held units — the commit of a decrement update. The
// destroyed slack is exactly matched by the decrement of the datum, so
// global conservation is preserved.
func (t *Table) Consume(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		return ErrUndefined
	}
	if e.held < n {
		return fmt.Errorf("%w: consume %d held %d", ErrOverspend, n, e.held)
	}
	e.held -= n
	return nil
}

// Credit adds n fresh units of available volume — an increment update
// creating new slack, or an inbound AV transfer.
func (t *Table) Credit(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		return ErrUndefined
	}
	e.avail += n
	return nil
}

// Debit removes up to n available units for an outbound transfer and
// returns how many were actually taken. The grantor's deciding policy
// computes n; Debit enforces it cannot exceed what is free.
func (t *Table) Debit(key string, n int64) (int64, error) {
	if n < 0 {
		return 0, ErrNegative
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		return 0, ErrUndefined
	}
	take := n
	if e.avail < take {
		take = e.avail
	}
	e.avail -= take
	return take, nil
}

// Keys returns the defined keys (unordered).
func (t *Table) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	return out
}

// Snapshot returns key -> available volume for gossip piggybacking.
func (t *Table) Snapshot() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.entries))
	for k, e := range t.entries {
		out[k] = e.avail
	}
	return out
}
