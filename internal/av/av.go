// Package av implements the paper's central data structure: the
// Allowable Volume table. An AV is a site-local slice of the global
// slack of one numeric datum (a product's stock). A site may decrement
// the datum locally, with no communication, as long as it spends AV it
// holds; AV moves between sites through explicit transfers. Because
// every unit of AV is backed by a unit of real global stock and
// transfers only move units (never mint them), local autonomous updates
// can never drive the global value negative — this is the escrow
// argument behind the paper's "autonomous consistency".
//
// The table distinguishes *available* AV from *held* AV: an in-flight
// update reserves (holds) the volume it intends to spend, so concurrent
// updates at the same site share the remainder without exclusive locks
// (paper §3.3: "extra AV can be used by other process while one process
// accesses the same data"). Aborting releases the hold — the paper's
// compensating "opposite of update volume".
//
// The table is hash-striped: every operation touches exactly one key,
// so entries are partitioned across independently locked shards and
// concurrent Delay Updates to different keys never serialize here.
package av

import (
	"errors"
	"fmt"
	"sync"
)

// AV table errors.
var (
	ErrUndefined = errors.New("av: no allowable volume defined for key")
	ErrOverspend = errors.New("av: attempt to consume or release more than held")
	ErrNegative  = errors.New("av: negative amount")
)

// numShards partitions the table; a power of two so the shard index is
// a mask.
const numShards = 64

// shardOf hashes a key (FNV-1a) to its shard index.
func shardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (numShards - 1))
}

// Table is one site's AV management table. It is safe for concurrent use.
type Table struct {
	shards [numShards]tableShard
}

type tableShard struct {
	mu      sync.Mutex
	entries map[string]*entry
}

type entry struct {
	avail int64 // free allowable volume
	held  int64 // reserved by in-flight updates
}

// NewTable creates an empty table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].entries = make(map[string]*entry)
	}
	return t
}

// shard returns the locked shard for key; the caller must unlock it.
func (t *Table) shard(key string) *tableShard {
	s := &t.shards[shardOf(key)]
	s.mu.Lock()
	return s
}

// Define declares an AV for key with an initial available volume. It is
// the act that classifies the datum as a Delay-Update (regular) product:
// the accelerator's checking function routes keys with a defined AV to
// the Delay path. Defining an already-defined key adds to it.
func (t *Table) Define(key string, initial int64) error {
	if initial < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		e = &entry{}
		s.entries[key] = e
	}
	e.avail += initial
	return nil
}

// Defined reports whether an AV exists for key — the checking function.
func (t *Table) Defined(key string) bool {
	s := t.shard(key)
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Avail returns the free (unheld) volume for key, 0 if undefined.
func (t *Table) Avail(key string) int64 {
	s := t.shard(key)
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		return e.avail
	}
	return 0
}

// Held returns the volume currently reserved by in-flight updates.
func (t *Table) Held(key string) int64 {
	s := t.shard(key)
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		return e.held
	}
	return 0
}

// Total returns avail + held.
func (t *Table) Total(key string) int64 {
	s := t.shard(key)
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		return e.avail + e.held
	}
	return 0
}

// AcquireUpTo moves up to want units from available to held and returns
// how many were taken (possibly 0). This is the Delay path's first step:
// take what the local table has, then go shopping for the shortage.
func (t *Table) AcquireUpTo(key string, want int64) (int64, error) {
	if want < 0 {
		return 0, ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return 0, ErrUndefined
	}
	take := want
	if e.avail < take {
		take = e.avail
	}
	e.avail -= take
	e.held += take
	return take, nil
}

// Acquire reserves exactly n units, or nothing: it returns false when
// fewer than n are available.
func (t *Table) Acquire(key string, n int64) (bool, error) {
	if n < 0 {
		return false, ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return false, ErrUndefined
	}
	if e.avail < n {
		return false, nil
	}
	e.avail -= n
	e.held += n
	return true, nil
}

// CreditHeld adds n units received from a peer directly to the held
// reservation of an in-flight update (an AV grant the requester is about
// to spend).
func (t *Table) CreditHeld(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return ErrUndefined
	}
	e.held += n
	return nil
}

// Release moves n units from held back to available — the abort path,
// or the return of surplus after an update completed.
func (t *Table) Release(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return ErrUndefined
	}
	if e.held < n {
		return fmt.Errorf("%w: release %d held %d", ErrOverspend, n, e.held)
	}
	e.held -= n
	e.avail += n
	return nil
}

// Consume destroys n held units — the commit of a decrement update. The
// destroyed slack is exactly matched by the decrement of the datum, so
// global conservation is preserved.
func (t *Table) Consume(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return ErrUndefined
	}
	if e.held < n {
		return fmt.Errorf("%w: consume %d held %d", ErrOverspend, n, e.held)
	}
	e.held -= n
	return nil
}

// Credit adds n fresh units of available volume — an increment update
// creating new slack, or an inbound AV transfer.
func (t *Table) Credit(key string, n int64) error {
	if n < 0 {
		return ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return ErrUndefined
	}
	e.avail += n
	return nil
}

// Debit removes up to n available units for an outbound transfer and
// returns how many were actually taken. The grantor's deciding policy
// computes n; Debit enforces it cannot exceed what is free.
func (t *Table) Debit(key string, n int64) (int64, error) {
	if n < 0 {
		return 0, ErrNegative
	}
	s := t.shard(key)
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return 0, ErrUndefined
	}
	take := n
	if e.avail < take {
		take = e.avail
	}
	e.avail -= take
	return take, nil
}

// Keys returns the defined keys (unordered).
func (t *Table) Keys() []string {
	var out []string
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			out = append(out, k)
		}
		s.mu.Unlock()
	}
	return out
}

// Snapshot returns key -> available volume for gossip piggybacking.
// Shards are visited one at a time, so the view across keys may be
// slightly stale — gossip consumers tolerate staleness by design.
func (t *Table) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			out[k] = e.avail
		}
		s.mu.Unlock()
	}
	return out
}
