package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"avdb/internal/cluster"
	"avdb/internal/core"
	"avdb/internal/metrics"
	"avdb/internal/strategy"
	"avdb/internal/twopc"
	"avdb/internal/workload"
)

// AblationRow is one configuration's outcome in a comparison study.
type AblationRow struct {
	Name            string
	Correspondences int64
	PerUpdate       float64
	LocalFraction   float64
	Failures        int
	TransferRounds  int64
}

// runOnePolicy executes the proposed system once under the given policy
// and summarizes it.
func runOnePolicy(cfg Config, name string, policy strategy.Policy) (AblationRow, error) {
	cfg.Policy = policy
	res, err := RunProposed(cfg)
	if err != nil {
		return AblationRow{}, err
	}
	cfg = cfg.withDefaults()
	return AblationRow{
		Name:            name,
		Correspondences: res.Total.Last(),
		PerUpdate:       float64(res.Total.Last()) / float64(cfg.Updates),
		LocalFraction:   res.LocalFraction,
		Failures:        res.Failures,
		TransferRounds:  res.TransferRounds,
	}, nil
}

// RunDecidingAblation compares deciding policies (A1): how much should a
// donor grant? The paper/SODA'99 answer is "half".
func RunDecidingAblation(cfg Config) ([]AblationRow, error) {
	deciders := []strategy.Decider{
		strategy.GrantHalf{},
		strategy.GrantExact{},
		strategy.GrantAll{},
		strategy.GrantGenerous{},
	}
	var rows []AblationRow
	for _, d := range deciders {
		row, err := runOnePolicy(cfg, "decide="+d.Name(),
			strategy.Policy{Selector: strategy.MaxKnown{}, Decider: d})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	demand, err := RunDemandAwareRow(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, demand)
	return rows, nil
}

// RunDemandAwareRow runs the demand-aware deciding extension: every
// site gets its own consumption meter feeding a GrantDemandAware donor.
func RunDemandAwareRow(cfg Config) (AblationRow, error) {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	c, err := cluster.New(cluster.Config{
		Sites:         cfg.Sites,
		Items:         cfg.Items,
		InitialAmount: cfg.InitialAmount,
		Seed:          cfg.Seed,
		Registry:      reg,
		PolicyFor: func(site int) (strategy.Policy, core.DemandObserver) {
			m := strategy.NewMeter(0.2)
			return strategy.Policy{
				Selector: strategy.MaxKnown{},
				Decider:  strategy.GrantDemandAware{Meter: m},
			}, m
		},
		CallTimeout: 5 * time.Second,
	})
	if err != nil {
		return AblationRow{}, err
	}
	defer c.Close()
	gen, err := workload.NewSCM(workload.SCMConfig{
		Sites:         cfg.Sites,
		Keys:          c.RegularKeys,
		InitialAmount: cfg.InitialAmount,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return AblationRow{}, err
	}
	ctx := context.Background()
	failures := 0
	for i := 0; i < cfg.Updates; i++ {
		op := gen.Next()
		if _, err := c.Update(ctx, op.Site, op.Key, op.Delta); err != nil {
			failures++
		}
	}
	if err := c.FlushAll(ctx); err != nil {
		return AblationRow{}, err
	}
	if err := c.CheckInvariants(); err != nil {
		return AblationRow{}, err
	}
	var local, transfer, rounds int64
	for _, s := range c.Sites {
		st := s.Accelerator().Stats()
		local += st.DelayLocal.Load()
		transfer += st.DelayTransfer.Load()
		rounds += st.TransferRounds.Load()
	}
	corr := metrics.Correspondences(updateMessages(reg))
	row := AblationRow{
		Name:            "decide=demand-aware",
		Correspondences: corr,
		PerUpdate:       float64(corr) / float64(cfg.Updates),
		Failures:        failures,
		TransferRounds:  rounds,
	}
	if local+transfer > 0 {
		row.LocalFraction = float64(local) / float64(local+transfer)
	}
	return row, nil
}

// RunGossipAblation (A7) isolates the value of the paper's piggybacked
// AV view: the same max-known selector with gossip on vs. off (with
// gossip off the selector has no information and degenerates to a fixed
// order).
func RunGossipAblation(cfg Config) ([]AblationRow, error) {
	on, err := runOnePolicy(cfg, "gossip=on", strategy.SODA99())
	if err != nil {
		return nil, err
	}
	offCfg := cfg
	offCfg.DisableGossip = true
	off, err := runOnePolicy(offCfg, "gossip=off", strategy.SODA99())
	if err != nil {
		return nil, err
	}
	return []AblationRow{on, off}, nil
}

// RunSelectingAblation compares selecting policies (A2): whom to ask?
func RunSelectingAblation(cfg Config) ([]AblationRow, error) {
	selectors := []strategy.Selector{
		strategy.MaxKnown{},
		strategy.RandomSelect{},
		&strategy.RoundRobin{},
	}
	var rows []AblationRow
	for _, s := range selectors {
		row, err := runOnePolicy(cfg, "select="+s.Name(),
			strategy.Policy{Selector: s, Decider: strategy.GrantHalf{}})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunScaling measures correspondences per update as the system grows
// (A3). Per-site load is held constant: Updates scales with Sites.
func RunScaling(cfg Config, siteCounts []int) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	baseUpdates := cfg.Updates
	var rows []AblationRow
	for _, n := range siteCounts {
		c := cfg
		c.Sites = n
		c.Updates = baseUpdates / 3 * n
		c.Checkpoint = c.Updates / 10
		row, err := runOnePolicy(c, fmt.Sprintf("sites=%d", n), cfg.Policy)
		if err != nil {
			return nil, err
		}
		row.PerUpdate = float64(row.Correspondences) / float64(c.Updates)
		rows = append(rows, row)
	}
	return rows, nil
}

// RunMix measures the cost of heterogeneity (A5): as the share of
// non-regular (Immediate Update) products grows, correspondences rise —
// the quantitative version of the paper's motivation for giving regular
// products the Delay discipline.
func RunMix(cfg Config, fractions []float64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, f := range fractions {
		c := cfg
		c.NonRegularFraction = f
		row, err := runOnePolicy(c, fmt.Sprintf("nonregular=%.2f", f), c.Policy)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FaultResult summarizes the fault-tolerance experiment (A4): a retailer
// is partitioned from the rest of the system and keeps taking updates.
type FaultResult struct {
	// DelayOK / DelayTotal: Delay Updates attempted at the isolated site.
	DelayOK, DelayTotal int
	// ImmediateOK / ImmediateTotal: Immediate Updates attempted there.
	ImmediateOK, ImmediateTotal int
	// ConvergedAfterHeal reports whether replicas agreed after healing.
	ConvergedAfterHeal bool
}

// RunFault isolates site (Sites-1), drives updates at it during the
// partition, heals, and verifies convergence. Delay Updates within the
// site's AV must survive; Immediate Updates must abort — the paper's
// fault-tolerance argument made measurable.
func RunFault(cfg Config) (*FaultResult, error) {
	cfg = cfg.withDefaults()
	cfg.NonRegularFraction = 0.5
	reg := metrics.NewRegistry()
	c, err := cluster.New(cluster.Config{
		Sites:              cfg.Sites,
		Items:              cfg.Items,
		InitialAmount:      cfg.InitialAmount,
		NonRegularFraction: cfg.NonRegularFraction,
		Policy:             cfg.Policy,
		Seed:               cfg.Seed,
		Registry:           reg,
		CallTimeout:        200 * time.Millisecond,
		PrepareTimeout:     200 * time.Millisecond,
		RequestTimeout:     200 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	ctx := context.Background()
	victim := cfg.Sites - 1
	gen, err := workload.NewSCM(workload.SCMConfig{
		Sites:         cfg.Sites,
		Keys:          c.RegularKeys,
		InitialAmount: cfg.InitialAmount,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Warm-up traffic so AV has circulated.
	for i := 0; i < cfg.Updates/10; i++ {
		op := gen.Next()
		_, _ = c.Update(ctx, op.Site, op.Key, op.Delta)
	}

	c.Net.Isolate(c.Sites[victim].ID())
	res := &FaultResult{}
	for i := 0; i < cfg.Updates/10; i++ {
		regularKey := c.RegularKeys[i%len(c.RegularKeys)]
		nonRegKey := c.NonRegularKeys[i%len(c.NonRegularKeys)]
		res.DelayTotal++
		if _, err := c.Update(ctx, victim, regularKey, -1); err == nil {
			res.DelayOK++
		} else if !errors.Is(err, core.ErrInsufficientAV) {
			return nil, fmt.Errorf("experiment: unexpected delay failure: %w", err)
		}
		res.ImmediateTotal++
		if _, err := c.Update(ctx, victim, nonRegKey, -1); err == nil {
			res.ImmediateOK++
		} else if !errors.Is(err, twopc.ErrAborted) && !errors.Is(err, twopc.ErrCompletionUnknown) {
			return nil, fmt.Errorf("experiment: unexpected immediate failure: %w", err)
		}
	}
	c.Net.Heal()
	if err := c.FlushAll(ctx); err != nil {
		return nil, err
	}
	res.ConvergedAfterHeal = c.CheckInvariants() == nil
	return res, nil
}

// AblationTable renders comparison rows.
func AblationTable(title string, rows []AblationRow) *metrics.Table {
	t := &metrics.Table{
		Title:   title,
		Columns: []string{"config", "correspondences", "corr/update", "local-frac", "failures", "transfer-rounds"},
	}
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprint(r.Correspondences),
			fmt.Sprintf("%.4f", r.PerUpdate),
			fmt.Sprintf("%.3f", r.LocalFraction),
			fmt.Sprint(r.Failures),
			fmt.Sprint(r.TransferRounds))
	}
	return t
}

// FaultTable renders the fault study.
func FaultTable(res *FaultResult) *metrics.Table {
	t := &metrics.Table{
		Title:   "A4 — availability at an isolated retailer during a partition",
		Columns: []string{"discipline", "succeeded", "attempted", "availability"},
	}
	t.AddRow("delay (AV)", fmt.Sprint(res.DelayOK), fmt.Sprint(res.DelayTotal),
		fmt.Sprintf("%.1f%%", 100*float64(res.DelayOK)/float64(res.DelayTotal)))
	t.AddRow("immediate (2PC)", fmt.Sprint(res.ImmediateOK), fmt.Sprint(res.ImmediateTotal),
		fmt.Sprintf("%.1f%%", 100*float64(res.ImmediateOK)/float64(res.ImmediateTotal)))
	t.AddRow("converged after heal", fmt.Sprint(res.ConvergedAfterHeal), "-", "-")
	return t
}
