package experiment

import (
	"strings"
	"testing"

	"avdb/internal/metrics"
	"avdb/internal/workload"
)

// small returns a config fast enough for unit tests while keeping the
// paper's structure (3 sites, maker/retailer workload).
func small() Config {
	return Config{Updates: 1500, Items: 20, Checkpoint: 300, InitialAmount: 1000, Seed: 1}
}

func TestFig6ShapeHolds(t *testing.T) {
	res, err := RunFig6(small())
	if err != nil {
		t.Fatal(err)
	}
	prop, conv := res.Proposed.Total, res.Conventional.Total
	if prop.Len() != 5 || conv.Len() != 5 {
		t.Fatalf("series lengths %d/%d", prop.Len(), conv.Len())
	}
	// The headline claim: proposed massively under-communicates the
	// conventional system (paper: ~75% fewer correspondences).
	if res.ReductionPct < 50 {
		t.Fatalf("reduction = %.1f%%, want > 50%%", res.ReductionPct)
	}
	// Both curves are nondecreasing; conventional is ~linear.
	for i := 1; i < prop.Len(); i++ {
		if prop.Y[i] < prop.Y[i-1] || conv.Y[i] < conv.Y[i-1] {
			t.Fatal("cumulative series decreased")
		}
	}
	// Most updates complete within the local site.
	if res.Proposed.LocalFraction < 0.6 {
		t.Fatalf("local fraction = %.3f", res.Proposed.LocalFraction)
	}
	// Conventional pays ~1 correspondence per non-central update
	// (2/3 of updates originate at retailers).
	perUpdate := float64(conv.Last()) / 1500
	if perUpdate < 0.55 || perUpdate > 0.75 {
		t.Fatalf("conventional corr/update = %.3f, want ~0.67", perUpdate)
	}
}

func TestTable1Fairness(t *testing.T) {
	cfg := small()
	res, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSite) != 3 {
		t.Fatalf("per-site series = %d", len(res.PerSite))
	}
	s1, s2 := res.PerSite[1].Last(), res.PerSite[2].Last()
	if s1 == 0 || s2 == 0 {
		t.Fatalf("retailer counts zero: %d/%d", s1, s2)
	}
	// The paper's assurance claim: the retailers' counts are "almost
	// same". Allow 40% asymmetry on this small run.
	ratio := float64(s1) / float64(s2)
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("retailer asymmetry: site1=%d site2=%d", s1, s2)
	}
	// The maker originates increments only, which never need transfers:
	// its correspondence count stays 0.
	if res.PerSite[0].Last() != 0 {
		t.Fatalf("maker correspondences = %d, want 0", res.PerSite[0].Last())
	}
}

func TestFig6TableRendering(t *testing.T) {
	res, err := RunFig6(Config{Updates: 400, Items: 5, Checkpoint: 100, InitialAmount: 500})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Fig6Table(res)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"updates", "proposed", "conventional", "400"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	res, err := RunTable1(Config{Updates: 400, Items: 5, Checkpoint: 200, InitialAmount: 500})
	if err != nil {
		t.Fatal(err)
	}
	tab := Table1Table(res)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Columns) != 3 { // site + 2 checkpoints
		t.Fatalf("columns = %v", tab.Columns)
	}
}

func TestDeterministicReruns(t *testing.T) {
	a, err := RunProposed(Config{Updates: 600, Items: 10, Checkpoint: 200, InitialAmount: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProposed(Config{Updates: 600, Items: 10, Checkpoint: 200, InitialAmount: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Total.Y {
		if a.Total.Y[i] != b.Total.Y[i] {
			t.Fatalf("rerun diverged at checkpoint %d: %d vs %d", i, a.Total.Y[i], b.Total.Y[i])
		}
	}
	if a.Failures != b.Failures {
		t.Fatalf("failures differ: %d vs %d", a.Failures, b.Failures)
	}
}

func TestFlushEveryKeepsShape(t *testing.T) {
	cfg := small()
	cfg.Updates = 600
	cfg.Checkpoint = 200
	cfg.FlushEvery = 50
	res, err := RunProposed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncMessages == 0 {
		t.Fatal("periodic flushing produced no sync traffic")
	}
	// Sync traffic must not pollute the update-correspondence metric:
	// rerun without flushing and compare the curves.
	cfg.FlushEvery = 0
	res2, err := RunProposed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Last() != res2.Total.Last() {
		t.Fatalf("flush cadence changed the update metric: %d vs %d",
			res.Total.Last(), res2.Total.Last())
	}
}

func TestDecidingAblation(t *testing.T) {
	rows, err := RunDecidingAblation(Config{Updates: 900, Items: 10, Checkpoint: 300, InitialAmount: 900})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // half, exact, all, generous, demand-aware
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// grant=exact must need at least as many transfer rounds as
	// grant=half: it never leaves the requester a cushion.
	if byName["decide=exact"].TransferRounds < byName["decide=half"].TransferRounds {
		t.Fatalf("exact (%d rounds) beat half (%d rounds); cushion effect missing",
			byName["decide=exact"].TransferRounds, byName["decide=half"].TransferRounds)
	}
}

func TestSelectingAblation(t *testing.T) {
	rows, err := RunSelectingAblation(Config{Updates: 900, Items: 10, Checkpoint: 300, InitialAmount: 900})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Correspondences == 0 {
			t.Fatalf("%s recorded no traffic", r.Name)
		}
	}
}

func TestScaling(t *testing.T) {
	rows, err := RunScaling(Config{Updates: 900, Items: 10, InitialAmount: 900}, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PerUpdate <= 0 {
			t.Fatalf("%s per-update = %v", r.Name, r.PerUpdate)
		}
	}
}

func TestMixMonotonicity(t *testing.T) {
	rows, err := RunMix(Config{Updates: 600, Items: 10, Checkpoint: 200, InitialAmount: 900}, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	// More Immediate traffic must cost strictly more correspondences.
	if !(rows[0].Correspondences < rows[1].Correspondences &&
		rows[1].Correspondences < rows[2].Correspondences) {
		t.Fatalf("mix not monotone: %d, %d, %d",
			rows[0].Correspondences, rows[1].Correspondences, rows[2].Correspondences)
	}
}

func TestFaultStudy(t *testing.T) {
	res, err := RunFault(Config{Updates: 400, Items: 10, Checkpoint: 100, InitialAmount: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.DelayOK == 0 {
		t.Fatal("no delay update survived the partition")
	}
	if res.ImmediateOK != 0 {
		t.Fatalf("%d immediate updates 'succeeded' during the partition", res.ImmediateOK)
	}
	if !res.ConvergedAfterHeal {
		t.Fatal("system did not converge after healing")
	}
	tab := FaultTable(res)
	if len(tab.Rows) != 3 {
		t.Fatalf("fault table rows = %d", len(tab.Rows))
	}
}

func TestAblationTableRendering(t *testing.T) {
	tab := AblationTable("x", []AblationRow{{Name: "a", Correspondences: 5, PerUpdate: 0.1}})
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.1000") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestGossipAblation(t *testing.T) {
	rows, err := RunGossipAblation(Config{Updates: 900, Items: 10, Checkpoint: 300, InitialAmount: 900})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "gossip=on" || rows[1].Name != "gossip=off" {
		t.Fatalf("rows = %+v", rows)
	}
	// Gossip can only help (or tie) the max-known selector.
	if rows[0].Correspondences > rows[1].Correspondences*3/2 {
		t.Fatalf("gossip=on (%d) much worse than off (%d)",
			rows[0].Correspondences, rows[1].Correspondences)
	}
}

func TestDemandAwareRow(t *testing.T) {
	row, err := RunDemandAwareRow(Config{Updates: 900, Items: 10, Checkpoint: 300, InitialAmount: 900})
	if err != nil {
		t.Fatal(err)
	}
	if row.Name != "decide=demand-aware" {
		t.Fatalf("row = %+v", row)
	}
	if row.Correspondences == 0 {
		t.Fatal("no traffic recorded")
	}
	if row.LocalFraction < 0.5 {
		t.Fatalf("local fraction = %v", row.LocalFraction)
	}
}

func TestReplayReproducesSyntheticRun(t *testing.T) {
	cfg := Config{Updates: 500, Items: 10, Checkpoint: 100, InitialAmount: 900, Seed: 4}
	// Record the synthetic stream the run would use.
	gen, _ := workload.NewSCM(workload.SCMConfig{
		Sites: 3, Keys: workload.Keys(10), InitialAmount: 900, Seed: 4,
	})
	var ops []workload.Op
	for i := 0; i < 500; i++ {
		ops = append(ops, gen.Next())
	}
	direct, err := RunProposed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := cfg
	replayCfg.Replay = ops
	replayed, err := RunProposed(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Total.Y {
		if direct.Total.Y[i] != replayed.Total.Y[i] {
			t.Fatalf("checkpoint %d: direct %d != replayed %d",
				i, direct.Total.Y[i], replayed.Total.Y[i])
		}
	}
}

func TestReplayCapsUpdates(t *testing.T) {
	ops := []workload.Op{{Site: 1, Key: "product-0000", Delta: -5}}
	res, err := RunProposed(Config{Updates: 1000, Items: 2, Checkpoint: 1, InitialAmount: 100, Replay: ops})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Len() != 1 {
		t.Fatalf("checkpoints = %d, want capped at replay length", res.Total.Len())
	}
}

func TestFairnessIndex(t *testing.T) {
	mk := func(vals ...int64) *ProposedResult {
		res := &ProposedResult{}
		for _, v := range vals {
			s := &metrics.Series{}
			s.Append(1, v)
			res.PerSite = append(res.PerSite, s)
		}
		return res
	}
	if f := Fairness(mk(0, 100, 100)); f != 1 {
		t.Fatalf("equal retailers: %v", f)
	}
	if f := Fairness(mk(0, 100, 0)); f != 0.5 {
		t.Fatalf("fully skewed 2 retailers: %v, want 0.5", f)
	}
	if f := Fairness(mk(0)); f != 1 {
		t.Fatalf("no retailers: %v", f)
	}
	// The real run is nearly fair.
	res, err := RunTable1(small())
	if err != nil {
		t.Fatal(err)
	}
	if f := Fairness(res); f < 0.95 {
		t.Fatalf("paper run fairness = %v, want > 0.95", f)
	}
}
