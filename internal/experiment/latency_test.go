package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyStudyShape(t *testing.T) {
	res, err := RunLatency(LatencyConfig{
		Config: Config{Updates: 300, Items: 10, Checkpoint: 100, InitialAmount: 1000,
			NonRegularFraction: 0.2, Seed: 3},
		OneWay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DelayLocal.Count() == 0 || res.Conventional.Count() == 0 {
		t.Fatalf("missing samples: local=%d conv=%d",
			res.DelayLocal.Count(), res.Conventional.Count())
	}
	// The real-time property: a local Delay Update is far below one
	// network round trip; the conventional remote update cannot be.
	localP50 := res.DelayLocal.Percentile(50)
	convP50 := res.Conventional.Percentile(50)
	if localP50 >= 2*time.Millisecond {
		t.Fatalf("delay-local p50 = %v, want well under one-way latency", localP50)
	}
	if convP50 < 4*time.Millisecond {
		t.Fatalf("conventional p50 = %v, want >= 1 RTT (4ms)", convP50)
	}
	// Immediate updates pay at least two round trips.
	if res.Immediate.Count() > 0 {
		if imm := res.Immediate.Percentile(50); imm < 8*time.Millisecond {
			t.Fatalf("immediate p50 = %v, want >= 2 RTTs", imm)
		}
	}
	tab := LatencyTable(res)
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "delay-local") {
		t.Fatalf("table:\n%s", b.String())
	}
}

func TestLatencyDefaultsApplied(t *testing.T) {
	// The default 10000-update horizon is clamped for the latency study.
	cfg := LatencyConfig{Config: Config{Items: 5, InitialAmount: 500}}
	cfg.Config = cfg.Config.withDefaults()
	cfg.Updates = 120
	cfg.OneWay = time.Millisecond
	res, err := RunLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := res.DelayLocal.Count() + res.DelayTransfer.Count() + res.Immediate.Count()
	if total == 0 || total > 120 {
		t.Fatalf("sample count = %d", total)
	}
}
