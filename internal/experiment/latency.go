package experiment

import (
	"context"
	"fmt"
	"time"

	"avdb/internal/baseline"
	"avdb/internal/cluster"
	"avdb/internal/core"
	"avdb/internal/metrics"
	"avdb/internal/wire"
	"avdb/internal/workload"
)

// LatencyConfig parameterizes the real-time-property study (A6): the
// same workload as Fig. 6, but with injected one-way network latency,
// measuring each update's wall-clock completion time by discipline.
type LatencyConfig struct {
	Config
	// OneWay is the injected one-way message latency (default 2ms).
	OneWay time.Duration
}

// LatencyResult holds per-discipline latency distributions.
type LatencyResult struct {
	DelayLocal    *metrics.Histogram // proposed, completed locally
	DelayTransfer *metrics.Histogram // proposed, needed AV transfers
	Immediate     *metrics.Histogram // proposed, 2PC path
	Conventional  *metrics.Histogram // baseline, remote updates only
	OneWay        time.Duration
}

// RunLatency measures update latency under network delay. The paper's
// real-time claim is that a retailer's update completes at local speed;
// with d one-way latency the conventional system cannot beat 2d.
func RunLatency(cfg LatencyConfig) (*LatencyResult, error) {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.OneWay <= 0 {
		cfg.OneWay = 2 * time.Millisecond
	}
	if cfg.Updates == 10000 {
		cfg.Updates = 2000 // default horizon would take minutes of real sleep
	}
	if cfg.NonRegularFraction == 0 {
		cfg.NonRegularFraction = 0.1 // represent the Immediate path too
	}
	lat := func(from, to wire.SiteID) time.Duration { return cfg.OneWay }

	res := &LatencyResult{
		DelayLocal:    metrics.NewHistogram(),
		DelayTransfer: metrics.NewHistogram(),
		Immediate:     metrics.NewHistogram(),
		Conventional:  metrics.NewHistogram(),
		OneWay:        cfg.OneWay,
	}
	ctx := context.Background()

	// Proposed system.
	c, err := cluster.New(cluster.Config{
		Sites:              cfg.Sites,
		Items:              cfg.Items,
		InitialAmount:      cfg.InitialAmount,
		NonRegularFraction: cfg.NonRegularFraction,
		Policy:             cfg.Policy,
		Seed:               cfg.Seed,
		Latency:            lat,
		CallTimeout:        10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewSCM(workload.SCMConfig{
		Sites:         cfg.Sites,
		Keys:          append(append([]string{}, c.RegularKeys...), c.NonRegularKeys...),
		InitialAmount: cfg.InitialAmount,
		Seed:          cfg.Seed,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	for i := 0; i < cfg.Updates; i++ {
		op := gen.Next()
		start := time.Now()
		r, err := c.Update(ctx, op.Site, op.Key, op.Delta)
		elapsed := time.Since(start)
		if err != nil {
			continue // refused updates measured elsewhere
		}
		switch r.Path {
		case core.PathDelayLocal:
			res.DelayLocal.Observe(elapsed)
		case core.PathDelayTransfer:
			res.DelayTransfer.Observe(elapsed)
		case core.PathImmediate:
			res.Immediate.Observe(elapsed)
		}
	}
	c.Close()

	// Conventional system under the same latency. Only remote updates
	// are measured (central-site updates are trivially local there too).
	sys, err := baseline.New(baseline.Config{
		Sites:         cfg.Sites,
		Items:         cfg.Items,
		InitialAmount: cfg.InitialAmount,
		CallTimeout:   10 * time.Second,
		Latency:       lat,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	gen2, err := workload.NewSCM(workload.SCMConfig{
		Sites:         cfg.Sites,
		Keys:          sys.Keys,
		InitialAmount: cfg.InitialAmount,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Updates; i++ {
		op := gen2.Next()
		start := time.Now()
		err := sys.Update(ctx, op.Site, op.Key, op.Delta)
		elapsed := time.Since(start)
		if err != nil {
			continue
		}
		if op.Site != 0 {
			res.Conventional.Observe(elapsed)
		}
	}
	return res, nil
}

// LatencyTable renders the distribution comparison.
func LatencyTable(res *LatencyResult) *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("A6 — update latency with %v one-way network delay", res.OneWay),
		Columns: []string{"path", "count", "p50", "p95", "p99", "max"},
	}
	row := func(name string, h *metrics.Histogram) {
		t.AddRow(name,
			fmt.Sprint(h.Count()),
			h.Percentile(50).Round(10*time.Microsecond).String(),
			h.Percentile(95).Round(10*time.Microsecond).String(),
			h.Percentile(99).Round(10*time.Microsecond).String(),
			h.Max().Round(10*time.Microsecond).String())
	}
	row("proposed delay-local", res.DelayLocal)
	row("proposed delay-transfer", res.DelayTransfer)
	row("proposed immediate", res.Immediate)
	row("conventional remote", res.Conventional)
	return t
}
