// Package experiment reproduces the paper's evaluation (§4): Fig. 6
// (updates vs correspondences, proposed vs conventional) and Table 1
// (per-site correspondence counts), plus the ablation and extension
// studies listed in DESIGN.md. Each Run* function builds the system
// fresh, drives the deterministic workload, and returns series/tables
// that cmd/avsim renders and bench_test.go measures.
//
// Counting follows the paper: 2 messages = 1 correspondence, and the
// metric is "correspondences for update" — AV management, Immediate
// Update, and baseline update traffic. Background replica convergence
// (delta.sync) and read traffic are measured separately, not mixed into
// the Fig. 6 curves (see DESIGN.md §2 for the rationale).
package experiment

import (
	"context"
	"fmt"
	"time"

	"avdb/internal/baseline"
	"avdb/internal/cluster"
	"avdb/internal/metrics"
	"avdb/internal/strategy"
	"avdb/internal/workload"
)

// Config parameterizes the paper-reproduction experiments. Zero fields
// take the paper's (or DESIGN.md's documented) defaults.
type Config struct {
	Sites         int   // default 3 (one maker + two retailers)
	Items         int   // default 100 products
	InitialAmount int64 // default 1000 units per product
	Updates       int   // default 10000
	Checkpoint    int   // default 1000 (Table 1 uses 2000)
	Seed          uint64
	Policy        strategy.Policy // default SODA99
	Passes        int
	AVAllAtBase   bool
	// FlushEvery > 0 runs replica anti-entropy every N updates; 0 only
	// flushes at the end.
	FlushEvery int
	// ConventionalBroadcast makes the baseline also maintain replicas.
	ConventionalBroadcast bool
	// NonRegularFraction routes that share of items through Immediate
	// Update (0 reproduces §4, which simulates the Delay Update).
	NonRegularFraction float64
	// MakerIncreaseFrac / RetailerDecreaseFrac override the paper's
	// 20% / 10% workload bounds.
	MakerIncreaseFrac    float64
	RetailerDecreaseFrac float64
	// DisableGossip turns off the AV-view piggyback (ablation A7).
	DisableGossip bool
	// Replay, when non-empty, drives this recorded operation sequence
	// instead of the synthetic SCM generator (see workload.ReadTrace);
	// Updates is capped at its length.
	Replay []workload.Op
}

// generator builds the op source for a run: the replay when present,
// otherwise the paper's SCM generator over keys.
func (c Config) generator(keys []string) (workload.Generator, int, error) {
	if len(c.Replay) > 0 {
		updates := c.Updates
		if updates > len(c.Replay) {
			updates = len(c.Replay)
		}
		return workload.NewReplay(c.Replay), updates, nil
	}
	gen, err := workload.NewSCM(workload.SCMConfig{
		Sites:                c.Sites,
		Keys:                 keys,
		InitialAmount:        c.InitialAmount,
		MakerIncreaseFrac:    c.MakerIncreaseFrac,
		RetailerDecreaseFrac: c.RetailerDecreaseFrac,
		Seed:                 c.Seed,
	})
	if err != nil {
		return nil, 0, err
	}
	return gen, c.Updates, nil
}

func (c Config) withDefaults() Config {
	if c.Sites == 0 {
		c.Sites = 3
	}
	if c.Items == 0 {
		c.Items = 100
	}
	if c.InitialAmount == 0 {
		c.InitialAmount = 1000
	}
	if c.Updates == 0 {
		c.Updates = 10000
	}
	if c.Checkpoint == 0 {
		c.Checkpoint = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Policy.Selector == nil || c.Policy.Decider == nil {
		c.Policy = strategy.SODA99()
	}
	return c
}

// updateKinds are the message kinds charged as "correspondences for
// update" in the paper's metric.
var updateKinds = map[string]bool{
	"av.request":     true,
	"av.reply":       true,
	"iu.prepare":     true,
	"iu.vote":        true,
	"iu.decision":    true,
	"iu.ack":         true,
	"central.update": true,
	"central.reply":  true,
}

// updateMessages sums the registry's update-traffic messages.
func updateMessages(reg *metrics.Registry) int64 {
	var total int64
	for kind, n := range reg.MessagesByKind() {
		if updateKinds[kind] {
			total += n
		}
	}
	return total
}

// updateMessagesBySite sums update-traffic messages per initiating site.
func updateMessagesBySite(reg *metrics.Registry) map[int]int64 {
	out := make(map[int]int64)
	for _, s := range reg.Snapshot() {
		if updateKinds[s.Kind] {
			out[s.Site] += s.Count
		}
	}
	return out
}

// ProposedResult is one run of the proposed (AV/accelerator) system.
type ProposedResult struct {
	// Total is cumulative update correspondences at each checkpoint.
	Total *metrics.Series
	// PerSite is the same, split by initiating site (Table 1).
	PerSite []*metrics.Series
	// SyncMessages counts the background delta.sync traffic separately.
	SyncMessages int64
	// Failures counts updates refused for insufficient AV.
	Failures int
	// LocalFraction is the share of delay updates completed with zero
	// communication ("most of the update is completed within the local
	// site").
	LocalFraction float64
	// TransferRounds is the total number of AV request round trips.
	TransferRounds int64
}

// RunProposed drives the paper's workload through the AV system.
func RunProposed(cfg Config) (*ProposedResult, error) {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	c, err := cluster.New(cluster.Config{
		Sites:              cfg.Sites,
		Items:              cfg.Items,
		InitialAmount:      cfg.InitialAmount,
		NonRegularFraction: cfg.NonRegularFraction,
		AVAllAtBase:        cfg.AVAllAtBase,
		Policy:             cfg.Policy,
		Passes:             cfg.Passes,
		Seed:               cfg.Seed,
		DisableGossip:      cfg.DisableGossip,
		Registry:           reg,
		CallTimeout:        5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	gen, updates, err := cfg.generator(append(append([]string{}, c.RegularKeys...), c.NonRegularKeys...))
	if err != nil {
		return nil, err
	}

	res := &ProposedResult{Total: &metrics.Series{Name: "proposed"}}
	for i := 0; i < cfg.Sites; i++ {
		res.PerSite = append(res.PerSite, &metrics.Series{Name: fmt.Sprintf("site%d", i)})
	}
	ctx := context.Background()
	for i := 1; i <= updates; i++ {
		op := gen.Next()
		if _, err := c.Update(ctx, op.Site, op.Key, op.Delta); err != nil {
			// Insufficient AV (or an aborted immediate update) is a
			// workload outcome, not a harness error; its traffic counts.
			res.Failures++
		}
		if cfg.FlushEvery > 0 && i%cfg.FlushEvery == 0 {
			if err := c.FlushAll(ctx); err != nil {
				return nil, err
			}
		}
		if i%cfg.Checkpoint == 0 {
			res.Total.Append(int64(i), metrics.Correspondences(updateMessages(reg)))
			bySite := updateMessagesBySite(reg)
			for s := 0; s < cfg.Sites; s++ {
				res.PerSite[s].Append(int64(i), metrics.Correspondences(bySite[s]))
			}
		}
	}
	if err := c.FlushAll(ctx); err != nil {
		return nil, err
	}
	if err := c.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("experiment: post-run invariant violation: %w", err)
	}
	for kind, n := range reg.MessagesByKind() {
		if kind == "delta.sync" || kind == "delta.ack" {
			res.SyncMessages += n
		}
	}
	var local, transfer int64
	for _, s := range c.Sites {
		st := s.Accelerator().Stats()
		local += st.DelayLocal.Load()
		transfer += st.DelayTransfer.Load()
		res.TransferRounds += st.TransferRounds.Load()
	}
	if local+transfer > 0 {
		res.LocalFraction = float64(local) / float64(local+transfer)
	}
	return res, nil
}

// ConventionalResult is one run of the centralized baseline.
type ConventionalResult struct {
	Total   *metrics.Series
	PerSite []*metrics.Series
	Rejects int
}

// RunConventional drives the identical workload through the baseline.
func RunConventional(cfg Config) (*ConventionalResult, error) {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	sys, err := baseline.New(baseline.Config{
		Sites:         cfg.Sites,
		Items:         cfg.Items,
		InitialAmount: cfg.InitialAmount,
		Broadcast:     cfg.ConventionalBroadcast,
		Registry:      reg,
		CallTimeout:   5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	gen, updates, err := cfg.generator(sys.Keys)
	if err != nil {
		return nil, err
	}

	res := &ConventionalResult{Total: &metrics.Series{Name: "conventional"}}
	for i := 0; i < cfg.Sites; i++ {
		res.PerSite = append(res.PerSite, &metrics.Series{Name: fmt.Sprintf("site%d", i)})
	}
	ctx := context.Background()
	for i := 1; i <= updates; i++ {
		op := gen.Next()
		if err := sys.Update(ctx, op.Site, op.Key, op.Delta); err != nil {
			res.Rejects++
		}
		if i%cfg.Checkpoint == 0 {
			res.Total.Append(int64(i), metrics.Correspondences(updateMessages(reg)))
			bySite := updateMessagesBySite(reg)
			for s := 0; s < cfg.Sites; s++ {
				res.PerSite[s].Append(int64(i), metrics.Correspondences(bySite[s]))
			}
		}
	}
	return res, nil
}

// Fig6Result pairs the two curves of Fig. 6.
type Fig6Result struct {
	Proposed     *ProposedResult
	Conventional *ConventionalResult
	// ReductionPct is 100 * (1 - proposed/conventional) at the horizon —
	// the paper reports "decreases the correspondences by 75%".
	ReductionPct float64
}

// RunFig6 runs both systems on the identical workload.
func RunFig6(cfg Config) (*Fig6Result, error) {
	prop, err := RunProposed(cfg)
	if err != nil {
		return nil, err
	}
	conv, err := RunConventional(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Proposed: prop, Conventional: conv}
	if last := conv.Total.Last(); last > 0 {
		res.ReductionPct = 100 * (1 - float64(prop.Total.Last())/float64(last))
	}
	return res, nil
}

// Fig6Table renders the two curves as the series table cmd/avsim prints.
func Fig6Table(res *Fig6Result) (*metrics.Table, error) {
	return metrics.SeriesTable(
		"Fig. 6 — number of updates vs number of correspondences for update",
		"updates", res.Proposed.Total, res.Conventional.Total)
}

// Fairness computes Jain's fairness index over the retailers' final
// correspondence counts: (Σx)² / (n·Σx²), which is 1.0 for perfect
// equality and 1/n for total concentration. It quantifies the paper's
// *assurance* claim that "the real-time property is fairly achieved at
// the retailer sites". The maker (site 0) is excluded — its increments
// legitimately never communicate.
func Fairness(res *ProposedResult) float64 {
	var sum, sumSq float64
	n := 0
	for i, s := range res.PerSite {
		if i == 0 {
			continue
		}
		x := float64(s.Last())
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// RunTable1 reproduces Table 1: per-site correspondences at checkpoints
// of 2000 updates (overridable via cfg.Checkpoint).
func RunTable1(cfg Config) (*ProposedResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Checkpoint == 1000 {
		cfg.Checkpoint = 2000
	}
	return RunProposed(cfg)
}

// Table1Table renders per-site counts with one row per site and one
// column per checkpoint, the paper's layout.
func Table1Table(res *ProposedResult) *metrics.Table {
	t := &metrics.Table{
		Title:   "Table 1 — number of correspondences for update in each site (proposed)",
		Columns: []string{"site"},
	}
	if len(res.PerSite) == 0 {
		return t
	}
	for _, x := range res.PerSite[0].X {
		t.Columns = append(t.Columns, fmt.Sprint(x))
	}
	for i, s := range res.PerSite {
		row := []string{fmt.Sprintf("site %d", i)}
		for _, y := range s.Y {
			row = append(row, fmt.Sprint(y))
		}
		t.AddRow(row...)
	}
	return t
}
