package readplane

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"avdb/internal/storage"
)

func newHTTPHarness(t *testing.T) (*harness, *httptest.Server) {
	t.Helper()
	h := newHarness(t, 1, storage.Options{}, Config{})
	srv := httptest.NewServer(h.plane.HTTPHandler())
	t.Cleanup(srv.Close)
	return h, srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHTTPStockEndpoint(t *testing.T) {
	h, srv := newHTTPHarness(t)
	if err := h.eng.Put(storage.Record{Key: "a", Amount: 11}); err != nil {
		t.Fatal(err)
	}
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	var all struct {
		Site       uint32           `json:"site"`
		AppliedLSN uint64           `json:"applied_lsn"`
		EngineLSN  uint64           `json:"engine_lsn"`
		LagLSNs    int64            `json:"lag_lsns"`
		Amounts    map[string]int64 `json:"amounts"`
	}
	if resp := getJSON(t, srv.URL+"/read/stock", &all); resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if all.Site != 1 || all.Amounts["a"] != 11 || all.AppliedLSN != all.EngineLSN || all.LagLSNs != 0 {
		t.Fatalf("body = %+v", all)
	}
	var one struct {
		Key    string `json:"key"`
		Amount *int64 `json:"amount"`
		Found  *bool  `json:"found"`
	}
	getJSON(t, srv.URL+"/read/stock?key=a", &one)
	if one.Key != "a" || one.Amount == nil || *one.Amount != 11 || one.Found == nil || !*one.Found {
		t.Fatalf("body = %+v", one)
	}
	getJSON(t, srv.URL+"/read/stock?key=missing", &one)
	if one.Found == nil || *one.Found {
		t.Fatalf("missing key reported found: %+v", one)
	}
}

func TestHTTPTokenWaitAndTimeout(t *testing.T) {
	h, srv := newHTTPHarness(t)
	if err := h.eng.Put(storage.Record{Key: "a", Amount: 1}); err != nil {
		t.Fatal(err)
	}
	tok := Mint(1, h.eng.LastLSN())
	if resp := getJSON(t, srv.URL+"/read/stock?token="+tok.String(), nil); resp.StatusCode != 200 {
		t.Fatalf("satisfiable token: status = %d", resp.StatusCode)
	}
	// A future LSN with a tiny deadline answers 504.
	future := Mint(1, h.eng.LastLSN()+100)
	if resp := getJSON(t, srv.URL+"/read/stock?token="+future.String()+"&wait_ms=20", nil); resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status = %d, want 504", resp.StatusCode)
	}
	// Malformed tokens and foreign sites are client errors.
	if resp := getJSON(t, srv.URL+"/read/stock?token=garbage", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad token: status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/read/stock?token=9:1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("foreign token: status = %d", resp.StatusCode)
	}
}

func TestHTTPHotAndGlobalEndpoints(t *testing.T) {
	h, srv := newHTTPHarness(t)
	if err := h.eng.Put(storage.Record{Key: "a", Amount: 5}); err != nil {
		t.Fatal(err)
	}
	if err := h.eng.Put(storage.Record{Key: "b", Amount: 6}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := h.eng.ApplyDelta("b", -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	var hot struct {
		Top []struct {
			Key     string `json:"key"`
			Updates uint64 `json:"updates"`
		} `json:"top"`
	}
	getJSON(t, srv.URL+"/read/hot?k=1", &hot)
	if len(hot.Top) != 1 || hot.Top[0].Key != "b" || hot.Top[0].Updates != 4 {
		t.Fatalf("hot = %+v", hot)
	}
	if resp := getJSON(t, srv.URL+"/read/hot?k=zero", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k: status = %d", resp.StatusCode)
	}
	var global struct {
		Keys []struct {
			Key    string `json:"key"`
			Amount int64  `json:"amount"`
		} `json:"keys"`
	}
	getJSON(t, srv.URL+"/read/global", &global)
	if len(global.Keys) != 2 || global.Keys[0].Key != "a" || global.Keys[1].Amount != 3 {
		t.Fatalf("global = %+v", global)
	}
	getJSON(t, srv.URL+"/read/global?key=b", &global)
	if len(global.Keys) != 1 || global.Keys[0].Key != "b" {
		t.Fatalf("global filter = %+v", global)
	}
}

func TestHTTPWatchStreams(t *testing.T) {
	h, srv := newHTTPHarness(t)
	if err := h.eng.Put(storage.Record{Key: "a", Amount: 9}); err != nil {
		t.Fatal(err)
	}
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/read/watch?model=stock&interval_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() && lines < 3 {
		var tick struct {
			AppliedLSN uint64           `json:"applied_lsn"`
			Amounts    map[string]int64 `json:"amounts"`
		}
		if err := json.Unmarshal(sc.Bytes(), &tick); err != nil {
			t.Fatalf("line %d: %v (%q)", lines, err, sc.Text())
		}
		if tick.Amounts["a"] != 9 {
			t.Fatalf("tick = %+v", tick)
		}
		lines++
	}
	if lines < 3 {
		t.Fatalf("stream ended after %d lines: %v", lines, sc.Err())
	}
	if resp := getJSON(t, srv.URL+"/read/watch?model=nope", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model: status = %d", resp.StatusCode)
	}
}
