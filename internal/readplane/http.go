package readplane

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// HTTPHandler returns the plane's read API, rooted at /read/:
//
//	GET /read/stock[?key=K][&token=S:L&wait_ms=N] — stock view
//	GET /read/global[?key=K]                      — cross-site position view
//	GET /read/hot[?k=N]                           — top-K hot keys
//	GET /read/watch?model=stock|global|hot        — streaming (one JSON
//	    [&interval_ms=N]                            line per tick)
//
// A token query demands read-your-writes: the request blocks (up to
// wait_ms, default 1000) until the model has applied the token's LSN,
// answering 504 when the deadline expires first. Mount the handler on
// a mux that routes the /read/ subtree here (paths are absolute).
func (p *Plane) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /read/stock", p.handleStock)
	mux.HandleFunc("GET /read/global", p.handleGlobal)
	mux.HandleFunc("GET /read/hot", p.handleHot)
	mux.HandleFunc("GET /read/watch", p.handleWatch)
	return mux
}

// freshness is the staleness block every response carries.
type freshness struct {
	Site       uint32 `json:"site"`
	AppliedLSN uint64 `json:"applied_lsn"`
	EngineLSN  uint64 `json:"engine_lsn"`
	LagLSNs    int64  `json:"lag_lsns"`
	AsOf       string `json:"as_of"`
	AgeMS      int64  `json:"age_ms"`
}

func (p *Plane) freshnessOf(appliedLSN uint64, asOf time.Time) freshness {
	now := p.cfg.Now()
	engineLSN := p.cfg.Engine.LastLSN()
	return freshness{
		Site:       uint32(p.cfg.Site),
		AppliedLSN: appliedLSN,
		EngineLSN:  engineLSN,
		LagLSNs:    int64(engineLSN) - int64(appliedLSN),
		AsOf:       asOf.UTC().Format(time.RFC3339Nano),
		AgeMS:      now.Sub(asOf).Milliseconds(),
	}
}

// awaitToken applies a request's RYW barrier, answering the error
// itself. It reports whether the handler should continue.
func (p *Plane) awaitToken(w http.ResponseWriter, r *http.Request) bool {
	tokStr := r.URL.Query().Get("token")
	if tokStr == "" {
		return true
	}
	tok, err := ParseToken(tokStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	waitMS := 1000
	if q := r.URL.Query().Get("wait_ms"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad wait_ms parameter", http.StatusBadRequest)
			return false
		}
		waitMS = v
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(waitMS)*time.Millisecond)
	defer cancel()
	switch err := p.WaitFor(ctx, tok); {
	case err == nil:
		return true
	case errors.Is(err, ErrWrongSite):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "read-your-writes deadline expired before the model caught up", http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
	return false
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort HTTP write
}

type stockResponse struct {
	freshness
	Key     string           `json:"key,omitempty"`
	Amount  *int64           `json:"amount,omitempty"`
	Found   *bool            `json:"found,omitempty"`
	Amounts map[string]int64 `json:"amounts,omitempty"`
}

func (p *Plane) handleStock(w http.ResponseWriter, r *http.Request) {
	if !p.awaitToken(w, r) {
		return
	}
	s := p.Stock()
	resp := stockResponse{freshness: p.freshnessOf(s.AppliedLSN, s.AsOf)}
	if key := r.URL.Query().Get("key"); key != "" {
		amount, found := s.Amount(key)
		resp.Key, resp.Amount, resp.Found = key, &amount, &found
	} else {
		resp.Amounts = make(map[string]int64, s.Len())
		s.Each(func(k string, v int64) bool {
			resp.Amounts[k] = v
			return true
		})
	}
	writeJSON(w, resp)
}

type globalRow struct {
	Key     string           `json:"key"`
	Amount  int64            `json:"amount"`
	AVAvail int64            `json:"av_avail"`
	AVHeld  int64            `json:"av_held"`
	PeerAV  map[uint32]int64 `json:"peer_av,omitempty"`
	KnownAV int64            `json:"known_av"`
}

type globalResponse struct {
	freshness
	Keys []globalRow `json:"keys"`
}

func globalRowOf(k *GlobalKey) globalRow {
	row := globalRow{
		Key: k.Key, Amount: k.Amount,
		AVAvail: k.AVAvail, AVHeld: k.AVHeld, KnownAV: k.KnownAV,
	}
	if len(k.PeerAV) > 0 {
		row.PeerAV = make(map[uint32]int64, len(k.PeerAV))
		for site, n := range k.PeerAV {
			row.PeerAV[uint32(site)] = n
		}
	}
	return row
}

func (p *Plane) handleGlobal(w http.ResponseWriter, r *http.Request) {
	if !p.awaitToken(w, r) {
		return
	}
	g := p.Global()
	resp := globalResponse{freshness: p.freshnessOf(g.AppliedLSN, g.AsOf)}
	if key := r.URL.Query().Get("key"); key != "" {
		if row := g.Key(key); row != nil {
			resp.Keys = []globalRow{globalRowOf(row)}
		} else {
			resp.Keys = []globalRow{}
		}
	} else {
		resp.Keys = make([]globalRow, 0, len(g.Keys))
		for i := range g.Keys {
			resp.Keys = append(resp.Keys, globalRowOf(&g.Keys[i]))
		}
	}
	writeJSON(w, resp)
}

type hotRow struct {
	Key     string `json:"key"`
	Updates uint64 `json:"updates"`
	Volume  int64  `json:"volume"`
}

type hotResponse struct {
	freshness
	Top []hotRow `json:"top"`
}

func (p *Plane) handleHot(w http.ResponseWriter, r *http.Request) {
	if !p.awaitToken(w, r) {
		return
	}
	h := p.Hot()
	top := h.Top
	if q := r.URL.Query().Get("k"); q != "" {
		k, err := strconv.Atoi(q)
		if err != nil || k < 1 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		if k < len(top) {
			top = top[:k]
		}
	}
	resp := hotResponse{freshness: p.freshnessOf(h.AppliedLSN, h.AsOf)}
	resp.Top = make([]hotRow, 0, len(top))
	for _, hk := range top {
		resp.Top = append(resp.Top, hotRow{Key: hk.Key, Updates: hk.Updates, Volume: hk.Volume})
	}
	writeJSON(w, resp)
}

// handleWatch streams the chosen model: one compact JSON line per
// tick, flushed, until the client disconnects or the plane closes.
// avctl watch is the intended consumer.
func (p *Plane) handleWatch(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	if model == "" {
		model = "stock"
	}
	switch model {
	case "stock", "global", "hot":
	default:
		http.Error(w, "bad model parameter (want stock, global, or hot)", http.StatusBadRequest)
		return
	}
	intervalMS := 1000
	if q := r.URL.Query().Get("interval_ms"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 10 {
			http.Error(w, "bad interval_ms parameter (min 10)", http.StatusBadRequest)
			return
		}
		intervalMS = v
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	tick := time.NewTicker(time.Duration(intervalMS) * time.Millisecond)
	defer tick.Stop()
	for {
		var v any
		switch model {
		case "stock":
			s := p.Stock()
			resp := stockResponse{freshness: p.freshnessOf(s.AppliedLSN, s.AsOf)}
			resp.Amounts = make(map[string]int64, s.Len())
			s.Each(func(k string, n int64) bool {
				resp.Amounts[k] = n
				return true
			})
			v = resp
		case "global":
			g := p.Global()
			resp := globalResponse{freshness: p.freshnessOf(g.AppliedLSN, g.AsOf)}
			resp.Keys = make([]globalRow, 0, len(g.Keys))
			for i := range g.Keys {
				resp.Keys = append(resp.Keys, globalRowOf(&g.Keys[i]))
			}
			v = resp
		case "hot":
			h := p.Hot()
			resp := hotResponse{freshness: p.freshnessOf(h.AppliedLSN, h.AsOf)}
			resp.Top = make([]hotRow, 0, len(h.Top))
			for _, hk := range h.Top {
				resp.Top = append(resp.Top, hotRow{Key: hk.Key, Updates: hk.Updates, Volume: hk.Volume})
			}
			v = resp
		}
		if err := enc.Encode(v); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-p.stop:
			return
		case <-tick.C:
		}
	}
}
