package readplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"avdb/internal/eventlog"
	"avdb/internal/lockmgr"
	"avdb/internal/storage"
	"avdb/internal/txn"
	"avdb/internal/wire"
)

// harness wires an engine's apply observer into a feed log the way a
// site does, and builds a plane over the pair.
type harness struct {
	eng   *storage.Engine
	feed  *eventlog.Log
	plane *Plane
}

func newHarness(t *testing.T, site wire.SiteID, opts storage.Options, cfg Config) *harness {
	t.Helper()
	eng, err := storage.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	feed := eventlog.New(64)
	eng.SetApplyObserver(func(lsn uint64, ops []storage.Op) {
		feed.Append(eventlog.Event{
			Site: site, Type: EventType, LSN: lsn,
			Payload: append([]storage.Op(nil), ops...),
		})
	})
	cfg.Site, cfg.Engine, cfg.Feed = site, eng, feed
	plane, err := New(cfg)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		plane.Close()
		eng.Close()
	})
	return &harness{eng: eng, feed: feed, plane: plane}
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestStockFollowsApplies(t *testing.T) {
	h := newHarness(t, 1, storage.Options{}, Config{})
	if err := h.eng.Put(storage.Record{Key: "a", Amount: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.eng.ApplyDelta("a", -3); err != nil {
		t.Fatal(err)
	}
	if err := h.eng.Put(storage.Record{Key: "b", Amount: 5}); err != nil {
		t.Fatal(err)
	}
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	s := h.plane.Stock()
	if s.AppliedLSN != h.eng.LastLSN() {
		t.Fatalf("watermark %d, engine %d", s.AppliedLSN, h.eng.LastLSN())
	}
	if v, ok := s.Amount("a"); !ok || v != 7 {
		t.Fatalf("a = %d %v, want 7", v, ok)
	}
	if v, ok := s.Amount("b"); !ok || v != 5 {
		t.Fatalf("b = %d %v, want 5", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestBootstrapCoversPreexistingState(t *testing.T) {
	eng, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Put(storage.Record{Key: "seeded", Amount: 42}); err != nil {
		t.Fatal(err)
	}
	feed := eventlog.New(64)
	plane, err := New(Config{Site: 3, Engine: eng, Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	s := plane.Stock()
	if v, ok := s.Amount("seeded"); !ok || v != 42 {
		t.Fatalf("seeded = %d %v", v, ok)
	}
	if s.AppliedLSN != eng.LastLSN() {
		t.Fatalf("bootstrap watermark %d, engine %d", s.AppliedLSN, eng.LastLSN())
	}
}

func TestOutOfOrderEventsApplyInLSNOrder(t *testing.T) {
	eng, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	feed := eventlog.New(64)
	plane, err := New(Config{Site: 1, Engine: eng, Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	// LSN 2 (a delta) arrives before LSN 1 (the put it depends on).
	feed.Append(eventlog.Event{Site: 1, Type: EventType, LSN: 2,
		Payload: []storage.Op{storage.DeltaOp("k", -4)}})
	feed.Append(eventlog.Event{Site: 1, Type: EventType, LSN: 1,
		Payload: []storage.Op{storage.PutOp(storage.Record{Key: "k", Amount: 10})}})
	if err := plane.WaitFor(waitCtx(t), Token{Site: 1, LSN: 2}); err != nil {
		t.Fatal(err)
	}
	if v, ok := plane.Stock().Amount("k"); !ok || v != 6 {
		t.Fatalf("k = %d %v, want 6", v, ok)
	}
}

func TestGapBeyondPendingLimitResyncsFromEngine(t *testing.T) {
	eng, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	feed := eventlog.New(64)
	plane, err := New(Config{Site: 1, Engine: eng, Feed: feed, PendingLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	// The authoritative state the resync must recover.
	if err := eng.Put(storage.Record{Key: "k", Amount: 99}); err != nil { // LSN 1 (observer not wired: event lost)
		t.Fatal(err)
	}
	// Feed events 3..6 with 1 and 2 missing: the parking buffer
	// overflows the limit and forces a resync to the engine cursor.
	for lsn := uint64(3); lsn <= 6; lsn++ {
		feed.Append(eventlog.Event{Site: 1, Type: EventType, LSN: lsn,
			Payload: []storage.Op{storage.DeltaOp("lost", 1)}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for plane.Stats().Resyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no resync after pending overflow")
		}
		time.Sleep(time.Millisecond)
	}
	if err := plane.WaitFor(waitCtx(t), Token{Site: 1, LSN: eng.LastLSN()}); err != nil {
		t.Fatal(err)
	}
	if v, ok := plane.Stock().Amount("k"); !ok || v != 99 {
		t.Fatalf("k = %d %v after resync, want 99", v, ok)
	}
}

func TestSlowFeedConvergesUnderPressure(t *testing.T) {
	// A tiny subscription buffer under a fast writer drops events; the
	// plane must detect the drops and still converge to the engine.
	h := newHarness(t, 1, storage.Options{}, Config{Buffer: 1})
	if err := h.eng.Put(storage.Record{Key: "k", Amount: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := h.eng.ApplyDelta("k", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.plane.Stock().Amount("k"); !ok || v != 500 {
		t.Fatalf("k = %d %v, want 500", v, ok)
	}
	if h.plane.Stats().RYWViolations != 0 {
		t.Fatalf("violations = %d", h.plane.Stats().RYWViolations)
	}
}

func TestHotViewRanksTopK(t *testing.T) {
	h := newHarness(t, 1, storage.Options{}, Config{TopK: 2})
	for _, k := range []string{"cold", "warm", "hot"} {
		if err := h.eng.Put(storage.Record{Key: k, Amount: 100}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := h.eng.ApplyDelta("hot", -1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := h.eng.ApplyDelta("warm", -2); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	hot := h.plane.Hot()
	if len(hot.Top) != 2 {
		t.Fatalf("topK = %d entries", len(hot.Top))
	}
	// "hot": 1 put + 5 deltas = 6 updates; "warm": 1 + 3 = 4.
	if hot.Top[0].Key != "hot" || hot.Top[1].Key != "warm" {
		t.Fatalf("ranking = %+v", hot.Top)
	}
	// Volume counts delta flow only (a put sets state, it moves none).
	if hot.Top[0].Updates != 6 || hot.Top[0].Volume != 5 {
		t.Fatalf("hot stats = %+v", hot.Top[0])
	}
}

type fakeAV struct {
	avail, held map[string]int64
}

func (f *fakeAV) Keys() []string {
	out := make([]string, 0, len(f.avail))
	for k := range f.avail {
		out = append(out, k)
	}
	return out
}
func (f *fakeAV) Avail(key string) int64 { return f.avail[key] }
func (f *fakeAV) Held(key string) int64  { return f.held[key] }

type fakeView map[wire.SiteID]map[string]int64

func (f fakeView) Known(site wire.SiteID, key string) (int64, bool) {
	n, ok := f[site][key]
	return n, ok
}

func TestGlobalViewJoinsAVAndPeers(t *testing.T) {
	av := &fakeAV{avail: map[string]int64{"k": 30}, held: map[string]int64{"k": 5}}
	view := fakeView{2: {"k": 10}, 3: {"k": 7}}
	h := newHarness(t, 1, storage.Options{}, Config{
		AV: av, View: view, Peers: []wire.SiteID{2, 3},
	})
	if err := h.eng.Put(storage.Record{Key: "k", Amount: 100}); err != nil {
		t.Fatal(err)
	}
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	g := h.plane.Global()
	row := g.Key("k")
	if row == nil {
		t.Fatal("k missing from global view")
	}
	if row.Amount != 100 || row.AVAvail != 30 || row.AVHeld != 5 {
		t.Fatalf("row = %+v", row)
	}
	if row.KnownAV != 30+10+7 {
		t.Fatalf("KnownAV = %d", row.KnownAV)
	}
	if row.PeerAV[2] != 10 || row.PeerAV[3] != 7 {
		t.Fatalf("PeerAV = %v", row.PeerAV)
	}
	if g.Key("absent") != nil {
		t.Fatal("phantom row")
	}
}

func TestWaitForWrongSiteRejected(t *testing.T) {
	h := newHarness(t, 1, storage.Options{}, Config{})
	if err := h.plane.WaitFor(waitCtx(t), Token{Site: 2, LSN: 1}); !errors.Is(err, ErrWrongSite) {
		t.Fatalf("err = %v, want ErrWrongSite", err)
	}
}

func TestMonotonicWatermark(t *testing.T) {
	h := newHarness(t, 1, storage.Options{}, Config{})
	if err := h.eng.Put(storage.Record{Key: "k", Amount: 0}); err != nil {
		t.Fatal(err)
	}
	var last uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			h.eng.ApplyDelta("k", 1) //nolint:errcheck
		}
	}()
	for {
		s := h.plane.Stock()
		if s.AppliedLSN < last {
			t.Errorf("watermark regressed: %d after %d", s.AppliedLSN, last)
			break
		}
		last = s.AppliedLSN
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	h := newHarness(t, 1, storage.Options{}, Config{})
	if err := h.eng.Put(storage.Record{Key: "k", Amount: 0}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.eng.ApplyDelta("k", 1) //nolint:errcheck
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := h.plane.Stock()
				s.Amount("k")
				h.plane.Hot()
				h.plane.Global()
			}
		}()
	}
	wg.Wait()
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.plane.Stock().Amount("k"); v != 400 {
		t.Fatalf("k = %d, want 400", v)
	}
}

// --- RYW token edge cases ---

// An aborted transaction advances nothing: no token is minted for it,
// and a token minted from the pre-abort cursor is still immediately
// satisfiable (the abort neither advances nor regresses the
// watermark).
func TestRYWTokenAroundAbortedTxn(t *testing.T) {
	h := newHarness(t, 1, storage.Options{}, Config{})
	if err := h.eng.Put(storage.Record{Key: "k", Amount: 10}); err != nil {
		t.Fatal(err)
	}
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	before := h.eng.LastLSN()
	tok := Mint(1, before)

	tm := txn.NewManager(h.eng, lockmgr.Options{WaitTimeout: time.Second})
	tx := tm.Begin()
	if _, err := tx.ApplyDelta(context.Background(), "k", -5); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	if h.eng.LastLSN() != before {
		t.Fatalf("abort advanced the cursor: %d -> %d", before, h.eng.LastLSN())
	}
	// The pre-abort token is satisfied without waiting, and the model
	// shows no trace of the aborted write.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := h.plane.WaitFor(ctx, tok); err != nil {
		t.Fatalf("pre-abort token not satisfied: %v", err)
	}
	if v, _ := h.plane.Stock().Amount("k"); v != 10 {
		t.Fatalf("k = %d, aborted delta leaked into the model", v)
	}
}

// A token for an LSN the site has not produced yet expires at the
// caller's deadline — and succeeds later once the write actually
// lands.
func TestRYWTokenFutureLSNExpires(t *testing.T) {
	h := newHarness(t, 1, storage.Options{}, Config{})
	if err := h.eng.Put(storage.Record{Key: "k", Amount: 0}); err != nil {
		t.Fatal(err)
	}
	future := Mint(1, h.eng.LastLSN()+3)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := h.plane.WaitFor(ctx, future); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if h.plane.Stats().RYWTimeouts != 1 {
		t.Fatalf("timeouts = %d", h.plane.Stats().RYWTimeouts)
	}
	// Produce the missing LSNs; the same token is now satisfiable.
	for i := 0; i < 3; i++ {
		if _, err := h.eng.ApplyDelta("k", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.plane.WaitFor(waitCtx(t), future); err != nil {
		t.Fatalf("token still unsatisfied after the writes: %v", err)
	}
	if h.plane.Stats().RYWViolations != 0 {
		t.Fatalf("violations = %d", h.plane.Stats().RYWViolations)
	}
}

// A token survives a site restart: the durable engine recovers the
// cursor past the token's LSN, and the rebuilt plane satisfies the
// replayed token immediately — with the token's write visible.
func TestRYWTokenReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() (*storage.Engine, *Plane) {
		eng, err := storage.Open(storage.Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		feed := eventlog.New(64)
		eng.SetApplyObserver(func(lsn uint64, ops []storage.Op) {
			feed.Append(eventlog.Event{Site: 1, Type: EventType, LSN: lsn,
				Payload: append([]storage.Op(nil), ops...)})
		})
		plane, err := New(Config{Site: 1, Engine: eng, Feed: feed})
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		return eng, plane
	}
	eng, plane := open()
	if err := eng.Put(storage.Record{Key: "k", Amount: 7}); err != nil {
		t.Fatal(err)
	}
	tok := Mint(1, eng.LastLSN())
	if err := plane.WaitFor(waitCtx(t), tok); err != nil {
		t.Fatal(err)
	}
	plane.Close()
	eng.Close()

	eng2, plane2 := open()
	defer func() {
		plane2.Close()
		eng2.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := plane2.WaitFor(ctx, tok); err != nil {
		t.Fatalf("replayed token not satisfied after restart: %v", err)
	}
	if v, ok := plane2.Stock().Amount("k"); !ok || v != 7 {
		t.Fatalf("k = %d %v after restart", v, ok)
	}
}

func TestWaitForOnClosedPlane(t *testing.T) {
	eng, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	plane, err := New(Config{Site: 1, Engine: eng, Feed: eventlog.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- plane.WaitFor(context.Background(), Token{Site: 1, LSN: 100})
	}()
	time.Sleep(20 * time.Millisecond)
	plane.Close()
	plane.Close() // idempotent
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter leaked past Close")
	}
}

func TestTokenStringParseRoundTrip(t *testing.T) {
	tok := Mint(3, 12345)
	if tok.String() != "3:12345" {
		t.Fatalf("string = %q", tok.String())
	}
	back, err := ParseToken(tok.String())
	if err != nil || back != tok {
		t.Fatalf("roundtrip = %+v, %v", back, err)
	}
	for _, bad := range []string{"", "3", "x:1", "3:y", "3:"} {
		if _, err := ParseToken(bad); err == nil {
			t.Fatalf("ParseToken(%q) accepted", bad)
		}
	}
	if !(Token{}).IsZero() || Mint(1, 2).IsZero() {
		t.Fatal("IsZero misclassifies")
	}
	_ = fmt.Sprintf("%v", tok)
}

func TestAccessorsAndStalenessAge(t *testing.T) {
	h := newHarness(t, 7, storage.Options{}, Config{})
	if got := h.plane.Site(); got != 7 {
		t.Fatalf("Site() = %d, want 7", got)
	}
	if h.plane.LagHistogram() == nil || h.plane.WaitHistogram() == nil {
		t.Fatal("histograms must exist from New")
	}
	if err := h.eng.Put(storage.Record{Key: "a", Amount: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.plane.WaitCaughtUp(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	s := h.plane.Stock()
	if age := s.Age(s.AsOf.Add(3 * time.Second)); age != 3*time.Second {
		t.Fatalf("Age = %v, want 3s", age)
	}
	if h.plane.LagHistogram().Snapshot().Count == 0 {
		t.Fatal("publish recorded no lag sample")
	}
}
