// Package readplane is avdb's event-sourced read subsystem (CQRS): it
// tails a site's storage apply stream — published as eventlog events
// carrying the WAL LSN and ops of every applied batch — into lock-free
// materialized read models, so heavy read traffic is served from
// purpose-built views instead of the transactional core.
//
// Three models are maintained per site:
//
//   - stock: every product's amount as the local replica believes it
//     (the per-site stock view)
//   - global: the cross-site position view — local amount joined with
//     the site's own AV and the last-gossiped AV of every peer
//   - hot: the top-K most-updated keys (update count and volume)
//
// Each model is a copy-on-swap immutable snapshot behind an
// atomic.Pointer: readers load a pointer and never block the applier;
// the applier clones on first mutation after a publish and swaps. Every
// snapshot carries an applied-LSN watermark and an as-of timestamp, so
// staleness is explicit rather than hidden.
//
// Session guarantees ride on the watermark: a Token{site, lsn} minted
// on commit lets a client demand read-your-writes by calling WaitFor,
// which blocks (with the caller's deadline) until the published stock
// snapshot has applied the token's LSN. Because the watermark is
// monotonic, satisfied tokens also give monotonic reads. The write
// path is untouched: tokens are minted from the engine's LSN cursor
// the commit already produced. Epoch commit changes none of this:
// epochs batch acknowledgements, not LSNs, so the durable LSN sequence
// stays dense and a token minted from an epoch-released commit is
// satisfiable exactly as before.
//
// The applier is resilient to its feed: events may arrive out of LSN
// order (batches on disjoint stripes race to publish), so it parks
// out-of-order events and advances a contiguous watermark; events may
// be dropped entirely (the feed never blocks the data path), which the
// per-subscriber drop counter reveals, and the applier then
// resynchronizes from the engine's consistent SnapshotAmounts pair.
package readplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/eventlog"
	"avdb/internal/metrics"
	"avdb/internal/storage"
	"avdb/internal/wire"
)

// EventType is the eventlog event type the applier consumes. Feed
// publishers stamp applied batches with it, the batch LSN, and the ops
// slice as Payload.
const EventType = "apply"

// Plane errors.
var (
	ErrWrongSite = errors.New("readplane: token was minted at a different site")
	ErrClosed    = errors.New("readplane: plane closed")
)

// AVSampler is the slice of the AV table the global view samples.
// core.AVTable satisfies it.
type AVSampler interface {
	Keys() []string
	Avail(key string) int64
	Held(key string) int64
}

// PeerView is the gossiped belief about peers' AV the global view
// joins in. strategy.View satisfies it.
type PeerView interface {
	Known(site wire.SiteID, key string) (int64, bool)
}

// Config parameterizes a Plane.
type Config struct {
	// Site is the identity snapshots and tokens carry.
	Site wire.SiteID
	// Engine is the authoritative store: the bootstrap/resync source
	// and the cursor tokens are checked against.
	Engine *storage.Engine
	// Feed is the event stream of applied batches (see EventType). The
	// plane subscribes before its initial materialization, so no batch
	// falls between snapshot and tail.
	Feed *eventlog.Log
	// AV, when non-nil, feeds the global view's local AV columns.
	AV AVSampler
	// View, when non-nil, feeds the global view's peer AV columns.
	View PeerView
	// Peers are the sites the global view samples from View.
	Peers []wire.SiteID
	// Now stamps snapshots (default time.Now; the simulator injects its
	// virtual clock so staleness is in simulated time).
	Now func() time.Time
	// TopK bounds the hot view (default 10).
	TopK int
	// Buffer is the feed subscription depth (default 1024).
	Buffer int
	// PendingLimit bounds the out-of-order parking buffer; beyond it
	// the applier resynchronizes from the engine (default 256).
	PendingLimit int
}

// Plane tails one site's apply stream into its read models.
type Plane struct {
	cfg Config
	sub *eventlog.Subscriber

	stock atomic.Pointer[StockSnapshot]
	hot   atomic.Pointer[HotSnapshot]

	wmu     sync.Mutex
	waiters map[*waiter]struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	eventsApplied atomic.Int64
	eventsStale   atomic.Int64
	resyncs       atomic.Int64
	readsStock    atomic.Int64
	readsGlobal   atomic.Int64
	readsHot      atomic.Int64
	rywWaits      atomic.Int64
	rywTimeouts   atomic.Int64
	rywViolations atomic.Int64

	lagHist  *metrics.Histogram // event time -> publish time, per publish
	waitHist *metrics.Histogram // WaitFor blocking durations
}

type waiter struct {
	lsn uint64
	ch  chan struct{}
}

// New subscribes to the feed, materializes the initial models from the
// engine, and starts the applier.
func New(cfg Config) (*Plane, error) {
	if cfg.Engine == nil || cfg.Feed == nil {
		return nil, fmt.Errorf("readplane: Engine and Feed are required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.PendingLimit <= 0 {
		cfg.PendingLimit = 256
	}
	p := &Plane{
		cfg:      cfg,
		waiters:  make(map[*waiter]struct{}),
		stop:     make(chan struct{}),
		lagHist:  metrics.NewHistogram(),
		waitHist: metrics.NewHistogram(),
	}
	// Subscribe first: every batch applied after the snapshot below is
	// either in the snapshot (LSN <= cursor, discarded as stale) or on
	// the channel. Nothing can fall in between.
	p.sub = cfg.Feed.NewSubscriber(cfg.Buffer)
	st := &applierState{
		pending: make(map[uint64]eventlog.Event),
		counts:  make(map[string]*hotStat),
	}
	if err := p.resync(st); err != nil {
		p.sub.Cancel()
		return nil, err
	}
	p.publish(st)
	p.wg.Add(1)
	go p.run(st)
	return p, nil
}

// applierState is owned by the applier goroutine (and by New before the
// goroutine starts).
type applierState struct {
	amounts map[string]int64
	cow     bool // amounts is shared with a published snapshot; clone before mutating
	counts  map[string]*hotStat
	applied uint64 // contiguous watermark: every batch <= applied is in amounts
	// published is the watermark of the last published snapshots;
	// publish is skipped while nothing advanced.
	published  uint64
	everPub    bool
	pending    map[uint64]eventlog.Event // parked out-of-order events by LSN
	lastDrop   uint64                    // sub.Dropped() at the last check
	lastEvent  time.Time                 // event time of the newest applied batch
	hotChanged bool
}

type hotStat struct {
	updates uint64
	volume  int64
}

// mutable returns the amounts map safe to write (cloning it when the
// current one is referenced by a published snapshot).
func (st *applierState) mutable() map[string]int64 {
	if st.cow {
		clone := make(map[string]int64, len(st.amounts))
		for k, v := range st.amounts {
			clone[k] = v
		}
		st.amounts = clone
		st.cow = false
	}
	return st.amounts
}

func (p *Plane) run(st *applierState) {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case e, ok := <-p.sub.C():
			if !ok {
				return
			}
			p.ingest(st, e)
			// Drain whatever is already buffered so one wakeup yields
			// one publish (snapshot clones amortize over the burst).
		drain:
			for {
				select {
				case <-p.stop:
					return
				case e, ok := <-p.sub.C():
					if !ok {
						break drain
					}
					p.ingest(st, e)
				default:
					break drain
				}
			}
			// A drop means a batch is gone from the feed forever: the
			// contiguous watermark would stall, so resynchronize from
			// the engine. Same cure when reordering parks too much.
			if d := p.sub.Dropped(); d != st.lastDrop || len(st.pending) > p.cfg.PendingLimit {
				st.lastDrop = d
				if err := p.resync(st); err != nil {
					return // engine closed; the plane is shutting down
				}
			}
			p.publish(st)
		}
	}
}

// ingest routes one feed event: apply it if it extends the contiguous
// watermark (then drain any parked successors), park it if it is
// early, drop it if it is already covered.
func (p *Plane) ingest(st *applierState, e eventlog.Event) {
	ops, ok := e.Payload.([]storage.Op)
	if !ok || e.LSN == 0 {
		return // not an apply event; feeds may carry other traffic
	}
	if e.LSN <= st.applied {
		p.eventsStale.Add(1)
		return
	}
	if e.LSN != st.applied+1 {
		st.pending[e.LSN] = e
		return
	}
	p.applyEvent(st, e, ops)
	for {
		next, ok := st.pending[st.applied+1]
		if !ok {
			return
		}
		delete(st.pending, st.applied+1)
		nops, _ := next.Payload.([]storage.Op)
		p.applyEvent(st, next, nops)
	}
}

func (p *Plane) applyEvent(st *applierState, e eventlog.Event, ops []storage.Op) {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case storage.OpPut:
			st.mutable()[op.Key] = op.Rec.Amount
			st.bump(op.Key, 0)
		case storage.OpDelete:
			delete(st.mutable(), op.Key)
		case storage.OpDelta:
			st.mutable()[op.Key] += op.Delta
			st.bump(op.Key, op.Delta)
		default:
			// Meta ops (replication logs, watermarks) are not part of
			// the read schema; the batch still advances the watermark.
		}
	}
	st.applied = e.LSN
	st.lastEvent = e.Time
	p.eventsApplied.Add(1)
}

// bump records one update against the hot view's counters.
func (st *applierState) bump(key string, delta int64) {
	h := st.counts[key]
	if h == nil {
		h = &hotStat{}
		st.counts[key] = h
	}
	h.updates++
	if delta < 0 {
		delta = -delta
	}
	h.volume += delta
	st.hotChanged = true
}

// resync rebuilds the stock model from the engine's consistent
// (amounts, cursor) pair and jumps the watermark to the cursor. Parked
// events the snapshot already covers are discarded; later ones stay
// parked. Hot counters survive (they are cumulative heuristics, not a
// projection of current state).
func (p *Plane) resync(st *applierState) error {
	amounts, lsn, err := p.cfg.Engine.SnapshotAmounts()
	if err != nil {
		return err
	}
	st.amounts = amounts
	st.cow = false
	if st.everPub {
		// Only bootstrap (the first materialization) is free.
		p.resyncs.Add(1)
	}
	st.applied = lsn
	for l := range st.pending {
		if l <= lsn {
			delete(st.pending, l)
		}
	}
	return nil
}

// publish swaps fresh immutable snapshots in and wakes satisfied RYW
// waiters. Skipped when the watermark has not advanced.
func (p *Plane) publish(st *applierState) {
	if st.everPub && st.applied == st.published {
		return
	}
	now := p.cfg.Now()
	p.stock.Store(&StockSnapshot{
		Site:       p.cfg.Site,
		AppliedLSN: st.applied,
		AsOf:       now,
		LastEvent:  st.lastEvent,
		amounts:    st.amounts,
	})
	st.cow = true
	if st.hotChanged || !st.everPub {
		p.hot.Store(buildHot(p.cfg.Site, st, now, p.cfg.TopK))
		st.hotChanged = false
	} else if h := p.hot.Load(); h != nil {
		// Content unchanged; republish with the advanced watermark.
		fresh := *h
		fresh.AppliedLSN, fresh.AsOf = st.applied, now
		p.hot.Store(&fresh)
	}
	st.published = st.applied
	st.everPub = true
	if !st.lastEvent.IsZero() {
		if lag := now.Sub(st.lastEvent); lag > 0 {
			p.lagHist.Observe(lag)
		} else {
			p.lagHist.Observe(0)
		}
	}
	p.notify(st.applied)
}

// notify releases every waiter whose token the published watermark now
// covers. Called after the snapshot swap, so a released waiter always
// finds a satisfying snapshot.
func (p *Plane) notify(applied uint64) {
	p.wmu.Lock()
	for w := range p.waiters {
		if w.lsn <= applied {
			close(w.ch)
			delete(p.waiters, w)
		}
	}
	p.wmu.Unlock()
}

func (p *Plane) removeWaiter(w *waiter) {
	p.wmu.Lock()
	delete(p.waiters, w)
	p.wmu.Unlock()
}

// Site returns the identity the plane serves.
func (p *Plane) Site() wire.SiteID { return p.cfg.Site }

// Stock returns the current stock snapshot. Never nil after New.
func (p *Plane) Stock() *StockSnapshot {
	p.readsStock.Add(1)
	return p.stock.Load()
}

// Hot returns the current top-K snapshot. Never nil after New.
func (p *Plane) Hot() *HotSnapshot {
	p.readsHot.Add(1)
	return p.hot.Load()
}

// Global builds the cross-site position view on demand: the stock
// snapshot joined with the local AV table and the gossiped peer AVs.
// The AV columns are sampled at call time (AV moves independently of
// the storage LSN stream), so the snapshot's watermark bounds only the
// stock column's staleness.
func (p *Plane) Global() *GlobalSnapshot {
	p.readsGlobal.Add(1)
	return buildGlobal(&p.cfg, p.stock.Load())
}

// WaitFor blocks until the published stock snapshot has applied the
// token's LSN, honoring ctx's deadline: the read-your-writes barrier.
// After it returns nil, every model read observes the token's write
// (and, the watermark being monotonic, reads are monotonic too).
func (p *Plane) WaitFor(ctx context.Context, tok Token) error {
	if tok.IsZero() {
		// The zero token (failed update) demands nothing of the model,
		// whichever site it is presented to.
		return nil
	}
	if tok.Site != p.cfg.Site {
		return ErrWrongSite
	}
	p.rywWaits.Add(1)
	start := time.Now()
	if s := p.stock.Load(); s != nil && s.AppliedLSN >= tok.LSN {
		p.waitHist.Observe(time.Since(start))
		return nil
	}
	w := &waiter{lsn: tok.LSN, ch: make(chan struct{})}
	p.wmu.Lock()
	p.waiters[w] = struct{}{}
	p.wmu.Unlock()
	// Re-check after registering: a publish may have slipped between
	// the fast path and the registration, and it only notifies
	// registered waiters.
	if s := p.stock.Load(); s != nil && s.AppliedLSN >= tok.LSN {
		p.removeWaiter(w)
		p.waitHist.Observe(time.Since(start))
		return nil
	}
	select {
	case <-w.ch:
		p.waitHist.Observe(time.Since(start))
		if s := p.stock.Load(); s == nil || s.AppliedLSN < tok.LSN {
			// Must be impossible (publish precedes notify); counted so
			// the simulator's oracle can prove it never happens.
			p.rywViolations.Add(1)
			return fmt.Errorf("readplane: woken below token lsn %d", tok.LSN)
		}
		return nil
	case <-ctx.Done():
		p.removeWaiter(w)
		p.rywTimeouts.Add(1)
		return ctx.Err()
	case <-p.stop:
		p.removeWaiter(w)
		return ErrClosed
	}
}

// WaitCaughtUp blocks until the plane has applied everything the
// engine has, as of the call. Oracles and tests use it to bound the
// apply pipeline before comparing models to authoritative state.
func (p *Plane) WaitCaughtUp(ctx context.Context) error {
	return p.WaitFor(ctx, Token{Site: p.cfg.Site, LSN: p.cfg.Engine.LastLSN()})
}

// Stats is a point-in-time summary of the plane's counters.
type Stats struct {
	EventsApplied int64  // batches applied to the models
	EventsStale   int64  // feed events already covered by the watermark
	Resyncs       int64  // engine resynchronizations after drops/overflow
	FeedDropped   uint64 // feed events dropped at the subscription
	ReadsStock    int64
	ReadsGlobal   int64
	ReadsHot      int64
	RYWWaits      int64 // WaitFor calls
	RYWTimeouts   int64 // WaitFor calls that hit their deadline
	RYWViolations int64 // tokens satisfied below their LSN (must stay 0)
}

// Stats returns the plane's counters.
func (p *Plane) Stats() Stats {
	return Stats{
		EventsApplied: p.eventsApplied.Load(),
		EventsStale:   p.eventsStale.Load(),
		Resyncs:       p.resyncs.Load(),
		FeedDropped:   p.sub.Dropped(),
		ReadsStock:    p.readsStock.Load(),
		ReadsGlobal:   p.readsGlobal.Load(),
		ReadsHot:      p.readsHot.Load(),
		RYWWaits:      p.rywWaits.Load(),
		RYWTimeouts:   p.rywTimeouts.Load(),
		RYWViolations: p.rywViolations.Load(),
	}
}

// LagHistogram is the event-time-to-publish lag distribution (one
// sample per publish).
func (p *Plane) LagHistogram() *metrics.Histogram { return p.lagHist }

// WaitHistogram is the WaitFor blocking-time distribution.
func (p *Plane) WaitHistogram() *metrics.Histogram { return p.waitHist }

// Close stops the applier and releases pending waiters. Idempotent.
func (p *Plane) Close() {
	p.stopOnce.Do(func() {
		close(p.stop)
		p.sub.Cancel()
		p.wg.Wait()
	})
}
