package readplane

import (
	"fmt"
	"strconv"
	"strings"

	"avdb/internal/wire"
)

// Token is a session token minted on commit: the committing site and a
// storage LSN at-or-above the commit's batch. Presenting it to the
// site's Plane via WaitFor gives read-your-writes — and, the watermark
// being monotonic, monotonic reads — without touching the write path.
//
// Tokens are plain values: they serialize to "site:lsn" so clients can
// carry them across processes (the avnode text protocol returns one
// per update).
type Token struct {
	Site wire.SiteID
	LSN  uint64
}

// Mint builds a token for a commit observed at lsn on site.
func Mint(site wire.SiteID, lsn uint64) Token { return Token{Site: site, LSN: lsn} }

// IsZero reports whether the token carries no commit (failed updates
// mint none).
func (t Token) IsZero() bool { return t.LSN == 0 }

// String renders the wire form "site:lsn".
func (t Token) String() string { return fmt.Sprintf("%d:%d", t.Site, t.LSN) }

// ParseToken parses the wire form produced by String.
func ParseToken(s string) (Token, error) {
	site, lsn, ok := strings.Cut(s, ":")
	if !ok {
		return Token{}, fmt.Errorf("readplane: token %q: want site:lsn", s)
	}
	sid, err := strconv.ParseUint(site, 10, 32)
	if err != nil {
		return Token{}, fmt.Errorf("readplane: token site %q: %v", site, err)
	}
	l, err := strconv.ParseUint(lsn, 10, 64)
	if err != nil {
		return Token{}, fmt.Errorf("readplane: token lsn %q: %v", lsn, err)
	}
	return Token{Site: wire.SiteID(sid), LSN: l}, nil
}
