package readplane

import (
	"sort"
	"time"

	"avdb/internal/wire"
)

// StockSnapshot is the per-site stock view: every product's amount as
// the local replica believes it, frozen at one watermark. Snapshots
// are immutable; readers share them freely.
type StockSnapshot struct {
	Site wire.SiteID
	// AppliedLSN is the watermark: every storage batch with LSN <= it
	// is reflected, none above it is.
	AppliedLSN uint64
	// AsOf is when the snapshot was published (the staleness anchor).
	AsOf time.Time
	// LastEvent is the event time of the newest applied batch (zero
	// before any batch).
	LastEvent time.Time

	amounts map[string]int64
}

// Amount returns key's amount in this snapshot.
func (s *StockSnapshot) Amount(key string) (int64, bool) {
	v, ok := s.amounts[key]
	return v, ok
}

// Len returns how many keys the snapshot holds.
func (s *StockSnapshot) Len() int { return len(s.amounts) }

// Each calls fn for every key in ascending order until fn returns
// false.
func (s *StockSnapshot) Each(fn func(key string, amount int64) bool) {
	keys := make([]string, 0, len(s.amounts))
	for k := range s.amounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(k, s.amounts[k]) {
			return
		}
	}
}

// Age returns how stale the snapshot is relative to now.
func (s *StockSnapshot) Age(now time.Time) time.Duration { return now.Sub(s.AsOf) }

// HotKey is one entry of the hot view.
type HotKey struct {
	Key     string
	Updates uint64 // batch ops observed for the key
	Volume  int64  // sum of absolute deltas
}

// HotSnapshot is the top-K most-updated keys, by update count (volume,
// then key, break ties).
type HotSnapshot struct {
	Site       wire.SiteID
	AppliedLSN uint64
	AsOf       time.Time
	Top        []HotKey
}

// buildHot ranks the applier's counters into an immutable top-K slice.
func buildHot(site wire.SiteID, st *applierState, now time.Time, k int) *HotSnapshot {
	all := make([]HotKey, 0, len(st.counts))
	for key, h := range st.counts {
		all = append(all, HotKey{Key: key, Updates: h.updates, Volume: h.volume})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Updates != all[j].Updates {
			return all[i].Updates > all[j].Updates
		}
		if all[i].Volume != all[j].Volume {
			return all[i].Volume > all[j].Volume
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return &HotSnapshot{Site: site, AppliedLSN: st.applied, AsOf: now, Top: all}
}

// GlobalKey is one row of the cross-site position view.
type GlobalKey struct {
	Key string
	// Amount is the local replica's belief of the global stock.
	Amount int64
	// AVAvail / AVHeld are the site's own allowable volume for the key.
	AVAvail, AVHeld int64
	// PeerAV is the last-gossiped available AV per peer (absent when
	// never heard).
	PeerAV map[wire.SiteID]int64
	// KnownAV is AVAvail plus every known peer AV: the site's belief
	// of how much decrement headroom exists system-wide.
	KnownAV int64
}

// GlobalSnapshot is the cross-site position view. The stock column is
// bounded by AppliedLSN; the AV columns are sampled at build time.
type GlobalSnapshot struct {
	Site       wire.SiteID
	AppliedLSN uint64
	AsOf       time.Time
	Keys       []GlobalKey
}

// Key returns the row for key, nil when absent.
func (g *GlobalSnapshot) Key(key string) *GlobalKey {
	i := sort.Search(len(g.Keys), func(i int) bool { return g.Keys[i].Key >= key })
	if i < len(g.Keys) && g.Keys[i].Key == key {
		return &g.Keys[i]
	}
	return nil
}

// buildGlobal joins the stock snapshot with the AV samplers.
func buildGlobal(cfg *Config, stock *StockSnapshot) *GlobalSnapshot {
	keySet := make(map[string]struct{}, stock.Len())
	stock.Each(func(k string, _ int64) bool {
		keySet[k] = struct{}{}
		return true
	})
	if cfg.AV != nil {
		for _, k := range cfg.AV.Keys() {
			keySet[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := &GlobalSnapshot{
		Site:       cfg.Site,
		AppliedLSN: stock.AppliedLSN,
		AsOf:       cfg.Now(),
		Keys:       make([]GlobalKey, 0, len(keys)),
	}
	for _, k := range keys {
		row := GlobalKey{Key: k}
		row.Amount, _ = stock.Amount(k)
		if cfg.AV != nil {
			row.AVAvail = cfg.AV.Avail(k)
			row.AVHeld = cfg.AV.Held(k)
		}
		row.KnownAV = row.AVAvail
		if cfg.View != nil {
			for _, p := range cfg.Peers {
				if n, ok := cfg.View.Known(p, k); ok {
					if row.PeerAV == nil {
						row.PeerAV = make(map[wire.SiteID]int64, len(cfg.Peers))
					}
					row.PeerAV[p] = n
					row.KnownAV += n
				}
			}
		}
		out.Keys = append(out.Keys, row)
	}
	return out
}
