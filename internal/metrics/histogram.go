package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Histogram collects duration samples and reports distribution
// statistics — used by the latency experiment to quantify the paper's
// "real-time property" (update latency under injected network delay).
// It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// sortLocked orders samples for quantile queries. Caller holds h.mu.
func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank, or 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(p/100*float64(len(h.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[0]
}

// Summary renders "p50=… p95=… p99=… max=… (n=…)".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("p50=%v p95=%v p99=%v max=%v (n=%d)",
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(95).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond),
		h.Count())
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
}

// HistogramSnapshot is an immutable point-in-time view of a Histogram.
// Unlike querying the live histogram stat by stat, a snapshot is
// internally consistent (all statistics describe the same sample set)
// and costs the lock only once.
type HistogramSnapshot struct {
	Count          int
	Mean, Min, Max time.Duration
	sorted         []time.Duration
}

// Snapshot copies the current samples and computes their statistics.
// The histogram may keep collecting concurrently.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	samples := make([]time.Duration, len(h.samples))
	copy(samples, h.samples)
	h.mu.Unlock()
	// Sort the copy outside the lock; Observe stays cheap.
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := HistogramSnapshot{Count: len(samples), sorted: samples}
	if s.Count == 0 {
		return s
	}
	s.Min = samples[0]
	s.Max = samples[len(samples)-1]
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	s.Mean = sum / time.Duration(s.Count)
	return s
}

// Percentile returns the p-th percentile (p in [0,100]) of the snapshot
// using nearest-rank, or 0 when empty.
func (s HistogramSnapshot) Percentile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p <= 0 {
		return s.sorted[0]
	}
	if p >= 100 {
		return s.sorted[s.Count-1]
	}
	rank := int(p/100*float64(s.Count)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= s.Count {
		rank = s.Count - 1
	}
	return s.sorted[rank]
}

// Summary renders the snapshot like Histogram.Summary.
func (s HistogramSnapshot) Summary() string {
	return fmt.Sprintf("p50=%v p95=%v p99=%v max=%v (n=%d)",
		s.Percentile(50).Round(time.Microsecond),
		s.Percentile(95).Round(time.Microsecond),
		s.Percentile(99).Round(time.Microsecond),
		s.Max.Round(time.Microsecond),
		s.Count)
}
