// Package metrics collects the quantities the paper reports: message
// counts per site and per message kind, derived correspondence counts
// (the paper's unit — 2 messages = 1 correspondence), and checkpointed
// series such as "cumulative correspondences after N updates". It also
// renders results as aligned text tables and CSV, which is how cmd/avsim
// reproduces Fig. 6 and Table 1.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing concurrent counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n may be negative for adjustments,
// though protocol counters only ever add).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry tracks message traffic for one system under test. Counters are
// keyed by (site, kind) where kind names a protocol message class (for
// example "av.request" or "iu.lock"). Registry is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[key]*Counter
}

type key struct {
	site int
	kind string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[key]*Counter)}
}

// Counter returns (creating if needed) the counter for messages of the
// given kind sent by the given site.
func (r *Registry) Counter(site int, kind string) *Counter {
	k := key{site, kind}
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[k]; ok {
		return c
	}
	c = &Counter{}
	r.counters[k] = c
	return c
}

// MessagesBySite returns the total number of messages recorded per site.
func (r *Registry) MessagesBySite() map[int]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[int]int64)
	for k, c := range r.counters {
		out[k.site] += c.Value()
	}
	return out
}

// MessagesByKind returns the total number of messages recorded per kind.
func (r *Registry) MessagesByKind() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64)
	for k, c := range r.counters {
		out[k.kind] += c.Value()
	}
	return out
}

// TotalMessages returns the total number of messages recorded.
func (r *Registry) TotalMessages() int64 {
	var total int64
	for _, v := range r.MessagesBySite() {
		total += v
	}
	return total
}

// Correspondences converts a message count to the paper's unit:
// 2 messages = 1 correspondence. Odd residues round up (a request whose
// reply is still in flight is charged as a full correspondence).
func Correspondences(messages int64) int64 {
	return (messages + 1) / 2
}

// TotalCorrespondences returns the registry-wide correspondence count.
func (r *Registry) TotalCorrespondences() int64 {
	return Correspondences(r.TotalMessages())
}

// CorrespondencesBySite returns per-site correspondence counts.
func (r *Registry) CorrespondencesBySite() map[int]int64 {
	out := make(map[int]int64)
	for site, msgs := range r.MessagesBySite() {
		out[site] = Correspondences(msgs)
	}
	return out
}

// Reset zeroes every counter (the counters themselves survive, so cached
// *Counter handles stay valid).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
}

// Snapshot returns a copy of all (site, kind) -> count entries, sorted
// for stable iteration by callers that render them.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Sample, 0, len(r.counters))
	for k, c := range r.counters {
		out = append(out, Sample{Site: k.site, Kind: k.kind, Count: c.Value()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Sample is one (site, kind, count) observation from a Registry snapshot.
type Sample struct {
	Site  int
	Kind  string
	Count int64
}

// Series records a y-value at increasing x checkpoints — e.g. cumulative
// correspondences (y) after each block of updates (x). It is what Fig. 6
// plots.
type Series struct {
	Name string
	X    []int64
	Y    []int64
}

// Append adds a checkpoint observation.
func (s *Series) Append(x, y int64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of checkpoints.
func (s *Series) Len() int { return len(s.X) }

// Last returns the final y value, or 0 if the series is empty.
func (s *Series) Last() int64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// Table is a simple rectangular result table with row labels, used to
// render Table 1 and the ablation studies both as aligned text and CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// WriteText renders the table with aligned columns to w.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (no quoting needed: cells are plain
// labels and numbers).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SeriesTable renders one or more series sharing the same x checkpoints
// as a Table with one x column and one column per series.
func SeriesTable(title, xName string, series ...*Series) (*Table, error) {
	t := &Table{Title: title, Columns: []string{xName}}
	if len(series) == 0 {
		return t, nil
	}
	n := series[0].Len()
	for _, s := range series {
		if s.Len() != n {
			return nil, fmt.Errorf("metrics: series %q has %d points, want %d", s.Name, s.Len(), n)
		}
		t.Columns = append(t.Columns, s.Name)
	}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprint(series[0].X[i])}
		for _, s := range series {
			if s.X[i] != series[0].X[i] {
				return nil, fmt.Errorf("metrics: series %q x[%d]=%d misaligned with %d", s.Name, i, s.X[i], series[0].X[i])
			}
			row = append(row, fmt.Sprint(s.Y[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
