package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram reports nonzero stats")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 5*time.Millisecond {
			t.Fatalf("p%.0f = %v", p, got)
		}
	}
	if h.Mean() != 5*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(95); got != 95*time.Millisecond {
		t.Fatalf("p95 = %v", got)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Fatalf("min = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramUnorderedInsertion(t *testing.T) {
	h := NewHistogram()
	for _, ms := range []int{90, 10, 50, 30, 70} {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	if got := h.Percentile(100); got != 90*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	// Observing after a quantile query re-sorts correctly.
	h.Observe(95 * time.Millisecond)
	if got := h.Max(); got != 95*time.Millisecond {
		t.Fatalf("max after late insert = %v", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	s := h.Summary()
	for _, want := range []string{"p50=", "p95=", "p99=", "max=", "n=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
				_ = h.Percentile(50)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	for _, ms := range []int{30, 10, 20, 40} {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 10*time.Millisecond || s.Max != 40*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 25*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean)
	}
	if got := s.Percentile(50); got != 20*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 40*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	// Snapshots match the live histogram for the same sample set.
	if live := h.Percentile(50); live != s.Percentile(50) {
		t.Fatalf("live p50 %v != snapshot p50 %v", live, s.Percentile(50))
	}
	if !strings.Contains(s.Summary(), "n=4") {
		t.Fatalf("summary = %q", s.Summary())
	}
	// The snapshot is detached: later samples don't change it.
	h.Observe(time.Second)
	if s.Count != 4 || s.Max != 40*time.Millisecond {
		t.Fatal("snapshot mutated by later Observe")
	}
}

func TestHistogramSnapshotEmpty(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.Min != 0 || s.Max != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty snapshot reports nonzero stats")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset histogram retains samples")
	}
	h.Observe(7 * time.Millisecond)
	if h.Count() != 1 || h.Percentile(50) != 7*time.Millisecond {
		t.Fatal("histogram unusable after reset")
	}
}

func TestHistogramSnapshotConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		s := h.Snapshot()
		if s.Percentile(50) > s.Max {
			t.Error("snapshot p50 exceeds its own max")
		}
	}
	close(stop)
	wg.Wait()
}
