package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter value = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value = %d, want 8000", c.Value())
	}
}

func TestRegistryAggregation(t *testing.T) {
	r := NewRegistry()
	r.Counter(0, "av.request").Add(3)
	r.Counter(0, "av.grant").Add(3)
	r.Counter(1, "av.request").Add(5)
	bySite := r.MessagesBySite()
	if bySite[0] != 6 || bySite[1] != 5 {
		t.Fatalf("bySite = %v", bySite)
	}
	byKind := r.MessagesByKind()
	if byKind["av.request"] != 8 || byKind["av.grant"] != 3 {
		t.Fatalf("byKind = %v", byKind)
	}
	if r.TotalMessages() != 11 {
		t.Fatalf("total = %d", r.TotalMessages())
	}
}

func TestRegistryCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(2, "x")
	b := r.Counter(2, "x")
	if a != b {
		t.Fatal("same (site,kind) returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counter identity broken")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		site := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter(site, "m").Inc()
			}
		}()
	}
	wg.Wait()
	if r.TotalMessages() != 2000 {
		t.Fatalf("total = %d, want 2000", r.TotalMessages())
	}
}

func TestCorrespondences(t *testing.T) {
	cases := []struct{ msgs, want int64 }{
		{0, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {100, 50},
	}
	for _, c := range cases {
		if got := Correspondences(c.msgs); got != c.want {
			t.Errorf("Correspondences(%d) = %d, want %d", c.msgs, got, c.want)
		}
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(0, "m")
	c.Add(9)
	r.Reset()
	if r.TotalMessages() != 0 {
		t.Fatal("Reset did not zero totals")
	}
	c.Inc() // cached handle must remain live
	if r.TotalMessages() != 1 {
		t.Fatal("cached counter handle detached after Reset")
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter(1, "b").Inc()
	r.Counter(0, "z").Inc()
	r.Counter(1, "a").Inc()
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	want := []Sample{{0, "z", 1}, {1, "a", 1}, {1, "b", 1}}
	for i, s := range snap {
		if s != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 {
		t.Fatal("empty series Last != 0")
	}
	s.Append(100, 7)
	s.Append(200, 11)
	if s.Len() != 2 || s.Last() != 11 {
		t.Fatalf("len=%d last=%d", s.Len(), s.Last())
	}
}

func TestTableText(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"site", "count"}}
	tab.AddRow("0", "123")
	tab.AddRow("longsite", "4")
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T\n", "site", "count", "longsite", "123"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestSeriesTable(t *testing.T) {
	s1 := &Series{Name: "proposed"}
	s2 := &Series{Name: "conventional"}
	for i := int64(1); i <= 3; i++ {
		s1.Append(i*1000, i)
		s2.Append(i*1000, i*4)
	}
	tab, err := SeriesTable("fig6", "updates", s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Columns) != 3 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	if tab.Rows[2][2] != "12" {
		t.Fatalf("cell = %q, want 12", tab.Rows[2][2])
	}
}

func TestSeriesTableMisaligned(t *testing.T) {
	s1 := &Series{Name: "a"}
	s2 := &Series{Name: "b"}
	s1.Append(1, 1)
	s2.Append(2, 1)
	if _, err := SeriesTable("x", "n", s1, s2); err == nil {
		t.Fatal("misaligned series not rejected")
	}
	s3 := &Series{Name: "c"}
	if _, err := SeriesTable("x", "n", s1, s3); err == nil {
		t.Fatal("length-mismatched series not rejected")
	}
}
