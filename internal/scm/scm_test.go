package scm

import (
	"context"
	"testing"
	"time"

	"avdb/internal/cluster"
)

func bg() context.Context { return context.Background() }

func newMarket(t *testing.T, initial int64) *Market {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Sites:              3,
		Items:              4,
		InitialAmount:      initial,
		NonRegularFraction: 0.5, // items 0,1 non-regular; 2,3 regular
		CallTimeout:        time.Second,
		LockTimeout:        500 * time.Millisecond,
		PrepareTimeout:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return NewMarket(Config{}, c)
}

func TestOrderFromStock(t *testing.T) {
	m := newMarket(t, 900)
	key := m.Cluster().RegularKeys[0]
	out, err := m.CustomerOrder(bg(), 1, key, 50)
	if err != nil {
		t.Fatal(err)
	}
	if out != FromStock {
		t.Fatalf("outcome = %v", out)
	}
	if v, _ := m.StockAt(1, key); v != 850 {
		t.Fatalf("stock = %d", v)
	}
}

func TestOrderTriggersReplenishment(t *testing.T) {
	m := newMarket(t, 30) // tiny stock: first decent order drains it
	key := m.Cluster().RegularKeys[0]
	out, err := m.CustomerOrder(bg(), 2, key, 40)
	if err != nil {
		t.Fatal(err)
	}
	if out != Replenished {
		t.Fatalf("outcome = %v", out)
	}
	// Batch (>= 100) minus the 40 shipped remains somewhere in the
	// system; converge and check the global value.
	m.Cluster().FlushAll(bg())
	v, err := m.Cluster().ConvergedValue(key)
	if err != nil {
		t.Fatal(err)
	}
	if v != 30+400-40 { // batchFor(40) = 400
		t.Fatalf("global stock = %d", v)
	}
	if err := m.Cluster().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMadeToOrder(t *testing.T) {
	m := newMarket(t, 0)
	key := m.Cluster().NonRegularKeys[0]
	if !m.IsMadeToOrder(key) {
		t.Fatal("classification lost")
	}
	out, err := m.CustomerOrder(bg(), 1, key, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out != MadeToOrder {
		t.Fatalf("outcome = %v", out)
	}
	// Immediate updates: every site agrees right away, no flush.
	for i := 0; i < 3; i++ {
		if v, _ := m.StockAt(i, key); v != 95 { // +100 batch, -5 sold
			t.Fatalf("site %d stock = %d", i, v)
		}
	}
}

func TestRestock(t *testing.T) {
	m := newMarket(t, 100)
	key := m.Cluster().RegularKeys[0]
	if err := m.Restock(bg(), key, 500); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.StockAt(0, key); v != 600 {
		t.Fatalf("maker stock = %d", v)
	}
	// Restocking a made-to-order product is refused.
	if err := m.Restock(bg(), m.Cluster().NonRegularKeys[0], 10); err == nil {
		t.Fatal("restock of non-regular accepted")
	}
	if err := m.Restock(bg(), key, 0); err == nil {
		t.Fatal("zero restock accepted")
	}
}

func TestOrderValidation(t *testing.T) {
	m := newMarket(t, 100)
	key := m.Cluster().RegularKeys[0]
	if _, err := m.CustomerOrder(bg(), 0, key, 1); err == nil {
		t.Fatal("order at the maker accepted")
	}
	if _, err := m.CustomerOrder(bg(), 9, key, 1); err == nil {
		t.Fatal("order at unknown site accepted")
	}
	if _, err := m.CustomerOrder(bg(), 1, "ghost", 1); err == nil {
		t.Fatal("unknown product accepted")
	}
	if _, err := m.CustomerOrder(bg(), 1, key, 0); err == nil {
		t.Fatal("zero quantity accepted")
	}
	if _, err := m.CustomerOrder(bg(), 1, key, -5); err == nil {
		t.Fatal("negative quantity accepted")
	}
}

func TestBatchSizing(t *testing.T) {
	m := newMarket(t, 100)
	if got := m.batchFor(5); got != 100 {
		t.Fatalf("batchFor(5) = %d, want floor 100", got)
	}
	if got := m.batchFor(50); got != 500 {
		t.Fatalf("batchFor(50) = %d", got)
	}
	m.cfg.BatchSize = 20
	if got := m.batchFor(50); got != 50 {
		t.Fatalf("batchFor must cover the order: %d", got)
	}
}

func TestBusyDayEndsConsistent(t *testing.T) {
	m := newMarket(t, 500)
	keys := m.Cluster().RegularKeys
	for i := 0; i < 200; i++ {
		retailer := 1 + i%2
		key := keys[i%len(keys)]
		if _, err := m.CustomerOrder(bg(), retailer, key, int64(1+i%7)); err != nil {
			t.Fatalf("order %d: %v", i, err)
		}
	}
	if err := m.Cluster().FlushAll(bg()); err != nil {
		t.Fatal(err)
	}
	if err := m.Cluster().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		FromStock: "from-stock", Replenished: "replenished",
		MadeToOrder: "made-to-order", Rejected: "rejected",
	} {
		if o.String() != want {
			t.Fatalf("%d.String() = %s", o, o.String())
		}
	}
}
