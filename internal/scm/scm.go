// Package scm models the paper's motivating domain: a supply chain with
// one maker and N retailers sharing an integrated stock database
// (§1.1). It gives the abstract update streams business meaning:
//
//   - regular products are kept in stock at retailers; a customer order
//     ships from the retailer's own stock — a Delay Update decrement
//     whose real-time property the AV mechanism protects. If the shared
//     stock cannot cover it, the retailer places a replenishment order
//     with the maker (manufacture = increment at site 0) and retries.
//   - non-regular products are made to order; the sale is recorded
//     through Immediate Update so maker and retailer agree instantly.
//
// The package exercises exactly the code paths the accelerator provides
// and is used by examples/scm and the mix experiments.
package scm

import (
	"context"
	"errors"
	"fmt"

	"avdb/internal/cluster"
	"avdb/internal/core"
)

// Market errors.
var (
	ErrUnknownProduct = errors.New("scm: unknown product")
	ErrNotRetailer    = errors.New("scm: site is not a retailer")
)

// Outcome says how an order was satisfied.
type Outcome int

// Outcomes.
const (
	// FromStock: shipped straight from shared stock (Delay Update).
	FromStock Outcome = iota
	// Replenished: stock was insufficient; the maker manufactured a
	// batch first, then the order shipped.
	Replenished
	// MadeToOrder: a non-regular product manufactured and sold under
	// Immediate Update.
	MadeToOrder
	// Rejected: the order could not be satisfied.
	Rejected
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case FromStock:
		return "from-stock"
	case Replenished:
		return "replenished"
	case MadeToOrder:
		return "made-to-order"
	default:
		return "rejected"
	}
}

// Config parameterizes a market.
type Config struct {
	// BatchSize is how much the maker manufactures per replenishment
	// (default 10x the order quantity, min 100).
	BatchSize int64
}

// Market wraps a cluster with supply-chain operations. Site 0 is the
// maker; all other sites are retailers.
type Market struct {
	cfg Config
	c   *cluster.Cluster

	regular map[string]bool
}

// NewMarket wraps an existing cluster.
func NewMarket(cfg Config, c *cluster.Cluster) *Market {
	m := &Market{cfg: cfg, c: c, regular: make(map[string]bool)}
	for _, k := range c.RegularKeys {
		m.regular[k] = true
	}
	for _, k := range c.NonRegularKeys {
		m.regular[k] = false
	}
	return m
}

// batchFor sizes a manufacturing batch for an order of qty.
func (m *Market) batchFor(qty int64) int64 {
	b := m.cfg.BatchSize
	if b <= 0 {
		b = 10 * qty
		if b < 100 {
			b = 100
		}
	}
	if b < qty {
		b = qty
	}
	return b
}

// CustomerOrder processes a customer buying qty of key at the given
// retailer site.
func (m *Market) CustomerOrder(ctx context.Context, retailer int, key string, qty int64) (Outcome, error) {
	if retailer <= 0 || retailer >= len(m.c.Sites) {
		return Rejected, fmt.Errorf("%w: site %d", ErrNotRetailer, retailer)
	}
	if qty <= 0 {
		return Rejected, fmt.Errorf("scm: order quantity %d must be positive", qty)
	}
	isRegular, known := m.regular[key]
	if !known {
		return Rejected, fmt.Errorf("%w: %s", ErrUnknownProduct, key)
	}

	if !isRegular {
		// Non-regular: manufacture to order, then sell — both strongly
		// consistent so the maker's and retailer's books agree at once.
		if _, err := m.c.Update(ctx, 0, key, m.batchFor(qty)); err != nil {
			return Rejected, fmt.Errorf("scm: manufacture: %w", err)
		}
		if _, err := m.c.Update(ctx, retailer, key, -qty); err != nil {
			return Rejected, fmt.Errorf("scm: made-to-order sale: %w", err)
		}
		return MadeToOrder, nil
	}

	// Regular: ship from stock via the Delay discipline.
	_, err := m.c.Update(ctx, retailer, key, -qty)
	if err == nil {
		return FromStock, nil
	}
	if !errors.Is(err, core.ErrInsufficientAV) {
		return Rejected, err
	}
	// Stock exhausted: order a batch from the maker, then retry once.
	if _, err := m.c.Update(ctx, 0, key, m.batchFor(qty)); err != nil {
		return Rejected, fmt.Errorf("scm: replenishment: %w", err)
	}
	if _, err := m.c.Update(ctx, retailer, key, -qty); err != nil {
		return Rejected, fmt.Errorf("scm: sale after replenishment: %w", err)
	}
	return Replenished, nil
}

// Restock has the maker proactively manufacture qty of a regular
// product (a Delay Update increment at site 0).
func (m *Market) Restock(ctx context.Context, key string, qty int64) error {
	if qty <= 0 {
		return fmt.Errorf("scm: restock quantity %d must be positive", qty)
	}
	if isRegular, known := m.regular[key]; !known || !isRegular {
		return fmt.Errorf("%w: %s (restock applies to regular products)", ErrUnknownProduct, key)
	}
	_, err := m.c.Update(ctx, 0, key, qty)
	return err
}

// StockAt returns the stock of key as the given site currently sees it.
func (m *Market) StockAt(site int, key string) (int64, error) {
	return m.c.Read(site, key)
}

// IsMadeToOrder reports whether key is a non-regular product.
func (m *Market) IsMadeToOrder(key string) bool {
	isRegular, known := m.regular[key]
	return known && !isRegular
}

// Cluster exposes the underlying cluster (for sync and metrics).
func (m *Market) Cluster() *cluster.Cluster { return m.c }
