// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every workload generator and latency model in
// avdb. Experiments must be exactly reproducible from a single seed, and
// the generator must be splittable so that independent components (each
// site's workload, the network latency model, ...) consume independent
// streams that do not perturb each other when one component draws more or
// fewer values.
//
// The implementation is SplitMix64 for seeding/splitting and
// xoshiro256** for the main stream — both public-domain algorithms by
// Blackman and Vigna. They are tiny, fast, and of far higher quality than
// needed for workload generation.
package rng

import "math/bits"

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used to expand seeds and to derive child generator states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator. The zero value is not
// valid; construct with New or Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Any seed, including zero, is
// valid: the state is expanded through SplitMix64 as the xoshiro authors
// recommend, so similar seeds yield unrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix of any seed produces one
	// with overwhelming probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, statistically independent generator from r.
// r advances, so successive Splits yield distinct children.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method, which avoids modulo bias without divisions in the
// common case. n must be nonzero.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform int64 in [lo, hi] inclusive. It panics if
// lo > hi.
func (r *Rand) Range(lo, hi int64) int64 {
	if lo > hi {
		panic("rng: Range called with lo > hi")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n), like rand.Perm.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
