package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator produced only %d distinct values", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
	// Splitting must not depend on how much the child was used.
	p1, p2 := New(7), New(7)
	a := p1.Split()
	_ = a.Uint64()
	_ = a.Uint64()
	b1 := p1.Split()
	_ = p2.Split()
	b2 := p2.Split()
	if b1.Uint64() != b2.Uint64() {
		t.Fatal("child usage perturbed parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRangeInclusive(t *testing.T) {
	r := New(5)
	sawLo, sawHi := false, false
	for i := 0; i < 5000; i++ {
		v := r.Range(10, 13)
		if v < 10 || v > 13 {
			t.Fatalf("Range(10,13) = %d", v)
		}
		if v == 10 {
			sawLo = true
		}
		if v == 13 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatalf("Range never hit an endpoint: lo=%v hi=%v", sawLo, sawHi)
	}
	if got := r.Range(5, 5); got != 5 {
		t.Fatalf("Range(5,5) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(13)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(19)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	if trues < 2000 || trues > 3000 {
		t.Fatalf("Bool(0.25) true-rate %d/10000 implausible", trues)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
