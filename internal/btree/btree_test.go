package btree

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"avdb/internal/rng"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete("x") {
		t.Fatal("Delete on empty tree returned true")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	count := 0
	tr.Ascend(func(string, []byte) bool { count++; return true })
	if count != 0 {
		t.Fatal("Ascend on empty tree visited entries")
	}
}

func TestPutGetReplace(t *testing.T) {
	var tr Tree
	if tr.Put("a", []byte("1")) {
		t.Fatal("fresh Put reported replacement")
	}
	if !tr.Put("a", []byte("2")) {
		t.Fatal("second Put did not report replacement")
	}
	v, ok := tr.Get("a")
	if !ok || string(v) != "2" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestManyKeysSplitsAndOrder(t *testing.T) {
	var tr Tree
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Put(fmt.Sprintf("key-%06d", i), []byte(fmt.Sprint(i)))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for _, i := range []int{0, 1, 499, 2500, n - 1} {
		v, ok := tr.Get(fmt.Sprintf("key-%06d", i))
		if !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("Get key %d = %q, %v", i, v, ok)
		}
	}
	prev := ""
	count := 0
	tr.Ascend(func(k string, v []byte) bool {
		if k <= prev && prev != "" {
			t.Fatalf("order violated: %q after %q", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("Ascend visited %d, want %d", count, n)
	}
	min, _ := tr.Min()
	max, _ := tr.Max()
	if min != "key-000000" || max != fmt.Sprintf("key-%06d", n-1) {
		t.Fatalf("min/max = %q/%q", min, max)
	}
}

func TestDeleteAll(t *testing.T) {
	var tr Tree
	const n = 2000
	r := rng.New(1)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%05d", i)
		tr.Put(keys[i], []byte{1})
	}
	r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%q) = false", k)
		}
		if tr.Delete(k) {
			t.Fatalf("double Delete(%q) = true", k)
		}
		if tr.Len() != n-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min after deleting everything")
	}
}

func TestAscendRange(t *testing.T) {
	var tr Tree
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("%03d", i), nil)
	}
	var got []string
	tr.AscendRange("010", "015", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"010", "011", "012", "013", "014"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.Ascend(func(k string, v []byte) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
	// Range starting between keys.
	got = nil
	tr.AscendRange("0105", "012", func(k string, v []byte) bool { got = append(got, k); return true })
	if len(got) != 1 || got[0] != "011" {
		t.Fatalf("between-keys range got %v", got)
	}
}

// opSequence applies a random operation sequence to both the tree and a
// reference map and checks full equivalence at the end.
func opSequence(seed uint64, ops int) error {
	tr := &Tree{}
	ref := map[string]string{}
	r := rng.New(seed)
	keyspace := 200
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("k%03d", r.Intn(keyspace))
		switch r.Intn(3) {
		case 0, 1: // put twice as often as delete
			v := fmt.Sprint(r.Intn(10000))
			replaced := tr.Put(k, []byte(v))
			_, existed := ref[k]
			if replaced != existed {
				return fmt.Errorf("op %d: Put(%q) replaced=%v want %v", i, k, replaced, existed)
			}
			ref[k] = v
		case 2:
			deleted := tr.Delete(k)
			_, existed := ref[k]
			if deleted != existed {
				return fmt.Errorf("op %d: Delete(%q) = %v want %v", i, k, deleted, existed)
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			return fmt.Errorf("op %d: Len=%d want %d", i, tr.Len(), len(ref))
		}
	}
	// Final equivalence, including iteration order.
	var refKeys []string
	for k := range ref {
		refKeys = append(refKeys, k)
	}
	sort.Strings(refKeys)
	i := 0
	var iterErr error
	tr.Ascend(func(k string, v []byte) bool {
		if i >= len(refKeys) || k != refKeys[i] || string(v) != ref[k] {
			iterErr = fmt.Errorf("iteration mismatch at %d: %q", i, k)
			return false
		}
		i++
		return true
	})
	if iterErr != nil {
		return iterErr
	}
	if i != len(refKeys) {
		return fmt.Errorf("iterated %d keys, want %d", i, len(refKeys))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || string(got) != v {
			return fmt.Errorf("Get(%q) = %q,%v want %q", k, got, ok, v)
		}
	}
	return nil
}

func TestQuickRandomOpsMatchReference(t *testing.T) {
	f := func(seed uint64) bool {
		return opSequence(seed, 3000) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomSequence(t *testing.T) {
	if err := opSequence(42, 50000); err != nil {
		t.Fatal(err)
	}
}

func TestDescendingInsertion(t *testing.T) {
	var tr Tree
	for i := 999; i >= 0; i-- {
		tr.Put(fmt.Sprintf("%04d", i), []byte{byte(i)})
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	prev := ""
	tr.Ascend(func(k string, v []byte) bool {
		if prev != "" && k <= prev {
			t.Fatalf("order broken: %q <= %q", k, prev)
		}
		prev = k
		return true
	})
}

func BenchmarkPut(b *testing.B) {
	var tr Tree
	keys := make([]string, 100000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%07d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i%len(keys)], nil)
	}
}

func BenchmarkGet(b *testing.B) {
	var tr Tree
	const n = 100000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%07d", i)
		tr.Put(keys[i], []byte{1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%n])
	}
}
