package btree

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"avdb/internal/rng"
)

// model mirrors a Tree with a plain map plus a sorted key slice, the
// obviously-correct reference the property test compares against.
type model struct {
	m map[string][]byte
}

func (md *model) put(k string, v []byte) bool {
	_, existed := md.m[k]
	md.m[k] = v
	return existed
}

func (md *model) del(k string) bool {
	_, existed := md.m[k]
	delete(md.m, k)
	return existed
}

func (md *model) sortedKeys() []string {
	keys := make([]string, 0, len(md.m))
	for k := range md.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// rangeKeys returns the model's keys in [from, to), with to=="" meaning
// "to the end" — the same contract AscendRange documents.
func (md *model) rangeKeys(from, to string) []string {
	var keys []string
	for _, k := range md.sortedKeys() {
		if k < from {
			continue
		}
		if to != "" && k >= to {
			break
		}
		keys = append(keys, k)
	}
	return keys
}

// propKey draws from a bounded key space so repeated runs revisit the
// same keys, forcing overwrite, delete-of-present, and the split/merge
// churn that a sparse random space would almost never trigger.
func propKey(r *rng.Rand, space int) string {
	return fmt.Sprintf("key-%04d", r.Intn(space))
}

// checkAgainstModel verifies every read path of the tree against the
// model: Len, Get (present and absent), full Ascend order, Min/Max,
// random AscendRange windows, and the Iterator.
func checkAgainstModel(t *testing.T, tr *Tree, md *model, r *rng.Rand, space int) {
	t.Helper()

	keys := md.sortedKeys()
	if tr.Len() != len(keys) {
		t.Fatalf("Len() = %d, model has %d keys", tr.Len(), len(keys))
	}

	// Full scan must yield exactly the sorted model contents.
	i := 0
	tr.Ascend(func(k string, v []byte) bool {
		if i >= len(keys) {
			t.Fatalf("Ascend yielded extra key %q after %d expected entries", k, len(keys))
		}
		if k != keys[i] {
			t.Fatalf("Ascend[%d] = %q, want %q", i, k, keys[i])
		}
		if !bytes.Equal(v, md.m[k]) {
			t.Fatalf("Ascend value for %q = %q, want %q", k, v, md.m[k])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("Ascend yielded %d entries, want %d", i, len(keys))
	}

	// Point reads: every present key, plus a few absent probes.
	for _, k := range keys {
		v, ok := tr.Get(k)
		if !ok || !bytes.Equal(v, md.m[k]) {
			t.Fatalf("Get(%q) = %q, %v; want %q, true", k, v, ok, md.m[k])
		}
	}
	for j := 0; j < 8; j++ {
		k := propKey(r, space)
		v, ok := tr.Get(k)
		_, want := md.m[k]
		if ok != want {
			t.Fatalf("Get(%q) present = %v, model says %v", k, ok, want)
		}
		if ok && !bytes.Equal(v, md.m[k]) {
			t.Fatalf("Get(%q) = %q, want %q", k, v, md.m[k])
		}
	}

	min, okMin := tr.Min()
	max, okMax := tr.Max()
	if okMin != (len(keys) > 0) || okMax != (len(keys) > 0) {
		t.Fatalf("Min/Max ok = %v/%v with %d keys", okMin, okMax, len(keys))
	}
	if len(keys) > 0 && (min != keys[0] || max != keys[len(keys)-1]) {
		t.Fatalf("Min/Max = %q/%q, want %q/%q", min, max, keys[0], keys[len(keys)-1])
	}

	// Random range windows, including inverted (from > to) and
	// out-of-space bounds; to=="" exercises the open-ended scan.
	for j := 0; j < 8; j++ {
		from := propKey(r, space+10)
		to := propKey(r, space+10)
		if r.Bool(0.2) {
			to = ""
		}
		want := md.rangeKeys(from, to)
		var got []string
		tr.AscendRange(from, to, func(k string, v []byte) bool {
			got = append(got, k)
			if !bytes.Equal(v, md.m[k]) {
				t.Fatalf("AscendRange value for %q = %q, want %q", k, v, md.m[k])
			}
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("AscendRange(%q, %q) yielded %d keys, want %d", from, to, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AscendRange(%q, %q)[%d] = %q, want %q", from, to, i, got[i], want[i])
			}
		}
	}

	// Iterator from a random start must walk the same suffix Ascend
	// would, and stay Valid exactly while entries remain.
	from := propKey(r, space+10)
	want := md.rangeKeys(from, "")
	it := tr.IterFrom(from)
	for i, k := range want {
		if !it.Valid() {
			t.Fatalf("IterFrom(%q) exhausted after %d entries, want %d", from, i, len(want))
		}
		if it.Key() != k {
			t.Fatalf("IterFrom(%q) entry %d = %q, want %q", from, i, it.Key(), k)
		}
		if !bytes.Equal(it.Value(), md.m[k]) {
			t.Fatalf("IterFrom(%q) value for %q = %q, want %q", from, k, it.Value(), md.m[k])
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatalf("IterFrom(%q) still valid at %q after %d expected entries", from, it.Key(), len(want))
	}

	// Early stop: fn returning false must halt the scan immediately.
	if len(keys) > 1 {
		seen := 0
		tr.Ascend(func(string, []byte) bool {
			seen++
			return seen < 2
		})
		if seen != 2 {
			t.Fatalf("Ascend early stop saw %d entries, want 2", seen)
		}
	}
}

// TestTreeMatchesModel drives random Put/Delete churn over a bounded
// key space across several seeds and verifies every read path against
// a sorted-map model between batches. The key space (~3× the expected
// live size) keeps the tree splitting and merging constantly.
func TestTreeMatchesModel(t *testing.T) {
	const (
		space   = 600
		batches = 20
		opsPer  = 400
	)
	seeds := []uint64{0, 1, 2, 0xDEADBEEF}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rng.New(seed)
			tr := &Tree{}
			md := &model{m: map[string][]byte{}}
			for b := 0; b < batches; b++ {
				for o := 0; o < opsPer; o++ {
					k := propKey(r, space)
					if r.Bool(0.6) {
						v := []byte(fmt.Sprintf("v-%d-%d-%s", b, o, k))
						if tr.Put(k, v) != md.put(k, v) {
							t.Fatalf("Put(%q) existed-vs-new disagrees with model", k)
						}
					} else {
						if tr.Delete(k) != md.del(k) {
							t.Fatalf("Delete(%q) present-vs-absent disagrees with model", k)
						}
					}
				}
				checkAgainstModel(t, tr, md, r, space)
			}
			// Drain to empty through the delete path and check the
			// empty-tree behaviour of every reader.
			for _, k := range md.sortedKeys() {
				if !tr.Delete(k) {
					t.Fatalf("drain: Delete(%q) reported absent", k)
				}
				md.del(k)
			}
			checkAgainstModel(t, tr, md, r, space)
		})
	}
}
