// Package btree implements an in-memory B+tree mapping string keys to
// byte-slice values. It is the memtable/index structure under each site's
// local database: ordered, with range scans over linked leaves, and
// O(log n) point operations.
//
// The tree is not safe for concurrent use; the storage engine above it
// serializes access (its lock also covers the WAL, so a coarse lock here
// would be redundant).
package btree

import "sort"

const (
	// maxKeys is the fan-out: a node splits when it holds this many keys.
	maxKeys = 32
	// minKeys is the smallest legal population for a non-root node.
	minKeys = maxKeys / 2
)

// Tree is a B+tree. The zero value is an empty tree ready for use.
type Tree struct {
	root *node
	size int
}

// node is either a leaf (vals populated, children nil) or an internal
// node (children populated, vals nil). In an internal node with m keys,
// children[i] covers keys k with keys[i-1] <= k < keys[i] (using -inf and
// +inf at the ends); separators need not themselves be present in leaves.
type node struct {
	leaf     bool
	keys     []string
	vals     [][]byte
	children []*node
	next     *node // leaf chain for range scans
}

// childIndex returns which child of an internal node covers key.
func (n *node) childIndex(key string) int {
	return sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
}

// leafIndex returns the position of key in a leaf and whether it exists.
func (n *node) leafIndex(key string) (int, bool) {
	i := sort.SearchStrings(n.keys, key)
	return i, i < len(n.keys) && n.keys[i] == key
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored for key. The returned slice is the tree's
// own copy; callers must not mutate it.
func (t *Tree) Get(key string) ([]byte, bool) {
	n := t.root
	if n == nil {
		return nil, false
	}
	for !n.leaf {
		n = n.children[n.childIndex(key)]
	}
	if i, ok := n.leafIndex(key); ok {
		return n.vals[i], true
	}
	return nil, false
}

// Put stores value under key, replacing any previous value, and reports
// whether the key already existed.
func (t *Tree) Put(key string, value []byte) bool {
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	if len(t.root.keys) >= maxKeys {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	replaced := t.root.insertNonFull(key, value)
	if !replaced {
		t.size++
	}
	return replaced
}

// insertNonFull inserts into a node known to have room (splitting full
// children on the way down).
func (n *node) insertNonFull(key string, value []byte) bool {
	if n.leaf {
		i, ok := n.leafIndex(key)
		if ok {
			n.vals[i] = value
			return true
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = value
		return false
	}
	i := n.childIndex(key)
	if len(n.children[i].keys) >= maxKeys {
		n.splitChild(i)
		if key >= n.keys[i] {
			i++
		}
	}
	return n.children[i].insertNonFull(key, value)
}

// splitChild splits the full child at index i, hoisting a separator into n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	h := len(child.keys) / 2
	var sep string
	var right *node
	if child.leaf {
		right = &node{leaf: true}
		right.keys = append(right.keys, child.keys[h:]...)
		right.vals = append(right.vals, child.vals[h:]...)
		child.keys = child.keys[:h:h]
		child.vals = child.vals[:h:h]
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		right = &node{}
		sep = child.keys[h]
		right.keys = append(right.keys, child.keys[h+1:]...)
		right.children = append(right.children, child.children[h+1:]...)
		child.keys = child.keys[:h:h]
		child.children = child.children[: h+1 : h+1]
	}
	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key and reports whether it was present.
func (t *Tree) Delete(key string) bool {
	if t.root == nil {
		return false
	}
	deleted := t.root.remove(key)
	if deleted {
		t.size--
	}
	// Shrink the root when it becomes an empty internal node.
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root.leaf && len(t.root.keys) == 0 && t.size == 0 {
		t.root = nil
	}
	return deleted
}

// remove deletes key from the subtree rooted at n. Before descending it
// guarantees the target child holds more than minKeys keys, borrowing
// from or merging with a sibling if necessary, so deletion never needs
// to back up the tree.
func (n *node) remove(key string) bool {
	if n.leaf {
		i, ok := n.leafIndex(key)
		if !ok {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	i := n.childIndex(key)
	if len(n.children[i].keys) <= minKeys {
		i = n.fixChild(i)
	}
	return n.children[i].remove(key)
}

// fixChild ensures children[i] has more than minKeys keys and returns
// the (possibly shifted) index of the child that now covers its range.
func (n *node) fixChild(i int) int {
	child := n.children[i]
	if i > 0 && len(n.children[i-1].keys) > minKeys {
		n.borrowFromLeft(i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys {
		n.borrowFromRight(i)
		return i
	}
	if i > 0 {
		n.mergeChildren(i - 1)
		return i - 1
	}
	_ = child
	n.mergeChildren(i)
	return i
}

// borrowFromLeft moves the left sibling's greatest entry into children[i].
func (n *node) borrowFromLeft(i int) {
	left, child := n.children[i-1], n.children[i]
	if child.leaf {
		last := len(left.keys) - 1
		child.keys = append([]string{left.keys[last]}, child.keys...)
		child.vals = append([][]byte{left.vals[last]}, child.vals...)
		left.keys = left.keys[:last]
		left.vals = left.vals[:last]
		n.keys[i-1] = child.keys[0]
	} else {
		lastK := len(left.keys) - 1
		lastC := len(left.children) - 1
		child.keys = append([]string{n.keys[i-1]}, child.keys...)
		child.children = append([]*node{left.children[lastC]}, child.children...)
		n.keys[i-1] = left.keys[lastK]
		left.keys = left.keys[:lastK]
		left.children = left.children[:lastC]
	}
}

// borrowFromRight moves the right sibling's smallest entry into children[i].
func (n *node) borrowFromRight(i int) {
	child, right := n.children[i], n.children[i+1]
	if child.leaf {
		child.keys = append(child.keys, right.keys[0])
		child.vals = append(child.vals, right.vals[0])
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		n.keys[i] = right.keys[0]
	} else {
		child.keys = append(child.keys, n.keys[i])
		child.children = append(child.children, right.children[0])
		n.keys[i] = right.keys[0]
		right.keys = right.keys[1:]
		right.children = right.children[1:]
	}
}

// mergeChildren merges children[i+1] into children[i], removing the
// separator between them.
func (n *node) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend calls fn for every (key, value) in ascending key order until fn
// returns false.
func (t *Tree) Ascend(fn func(key string, value []byte) bool) {
	t.AscendRange("", "", fn)
}

// AscendRange calls fn for keys in [from, to) in ascending order; an
// empty `to` means "to the end". fn returning false stops the scan.
func (t *Tree) AscendRange(from, to string, fn func(key string, value []byte) bool) {
	n := t.root
	if n == nil {
		return
	}
	for !n.leaf {
		n = n.children[n.childIndex(from)]
	}
	i, _ := n.leafIndex(from)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if to != "" && n.keys[i] >= to {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Iterator walks a tree's leaves in ascending key order. It is
// positioned with IterFrom and invalidated by any mutation of the tree;
// callers must hold whatever lock protects the tree for the iterator's
// whole lifetime.
type Iterator struct {
	n *node
	i int
}

// IterFrom returns an iterator positioned at the first key >= from.
func (t *Tree) IterFrom(from string) Iterator {
	n := t.root
	if n == nil {
		return Iterator{}
	}
	for !n.leaf {
		n = n.children[n.childIndex(from)]
	}
	i, _ := n.leafIndex(from)
	it := Iterator{n: n, i: i}
	it.skipExhausted()
	return it
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current entry's key. Valid must be true.
func (it *Iterator) Key() string { return it.n.keys[it.i] }

// Value returns the current entry's value. Valid must be true.
func (it *Iterator) Value() []byte { return it.n.vals[it.i] }

// Next advances to the following entry (Valid reports whether one exists).
func (it *Iterator) Next() {
	it.i++
	it.skipExhausted()
}

// skipExhausted moves past empty tails onto the next populated leaf.
func (it *Iterator) skipExhausted() {
	for it.n != nil && it.i >= len(it.n.keys) {
		it.n = it.n.next
		it.i = 0
	}
}

// Min returns the smallest key, or "" and false when the tree is empty.
func (t *Tree) Min() (string, bool) {
	n := t.root
	if n == nil || t.size == 0 {
		return "", false
	}
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0], true
}

// Max returns the greatest key, or "" and false when the tree is empty.
func (t *Tree) Max() (string, bool) {
	n := t.root
	if n == nil || t.size == 0 {
		return "", false
	}
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], true
}
