//go:build !race

package sim

// stabilityWindow is how long the pending-timer set must hold still
// (network settled in between) before the scheduler trusts that every
// pending virtual timer is live and advances to the earliest one.
const stabilityWindow = 500_000 // 500µs in nanoseconds
