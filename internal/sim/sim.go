// Package sim is the deterministic whole-cluster simulator. One Run
// builds a complete multi-site cluster on the in-process network, drives
// a randomized workload and a scripted fault schedule against it on a
// virtual clock, and checks a set of invariant oracles both continuously
// and after quiescence. Everything — workload choices, fault injection,
// retransmission timing, 2PC deadlines — derives from one uint64 seed,
// so any schedule the simulator can produce it can reproduce bit for
// bit, and a failing seed can be shrunk to a minimal fault script
// (Minimize) and swept en masse (Sweep).
package sim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"time"

	"avdb/internal/chaos"
	"avdb/internal/clock"
	"avdb/internal/cluster"
	"avdb/internal/core"
	"avdb/internal/eventlog"
	"avdb/internal/rng"
	"avdb/internal/transport"
	"avdb/internal/twopc"
	"avdb/internal/wire"
)

// Config parameterizes one simulation run.
type Config struct {
	// Seed determines everything: workload, fault schedule (when Script
	// is nil), per-site accelerator randomness, chaos coin flips and
	// escrow transfer ids.
	Seed uint64
	// Sites, Items, InitialAmount, NonRegularFraction shape the cluster
	// (defaults: 4 sites, 6 items, 400 units, 1/3 non-regular).
	Sites              int
	Items              int
	InitialAmount      int64
	NonRegularFraction float64
	// Ticks is the number of workload operations (default 250).
	Ticks int
	// Script overrides the generated fault schedule. nil generates one
	// from Seed; an empty non-nil slice runs fault-free.
	Script []chaos.Step
	// Dir is the durable root; empty uses a temp dir removed on return.
	Dir string
	// EventCap bounds each site's event ring (default 1<<14).
	EventCap int
	// Epochs forces epoch-based commit on at every site (2ms virtual
	// interval), so the invariant oracles exercise acknowledgements that
	// ride epoch boundaries. Off (the default) is byte-identical to
	// pre-epoch builds: same trace hashes for the same seed.
	Epochs bool
	// EpochsAdaptive additionally turns on the adaptive interval
	// controller (clamped to [1ms, 8ms] on the virtual clock), so every
	// oracle also runs while the epoch interval widens and collapses.
	// Implies Epochs.
	EpochsAdaptive bool
	// Partitions, when > 0, shards the cluster's key space over that
	// many virtual partitions with replication factor RF (see
	// cluster.Config). The oracles then check per partition: each key
	// converges and conserves AV across its replica set, and a store
	// locality oracle asserts no site holds a foreign key. Expected
	// stock is accounted at the APPLYING site via the update observer —
	// in a routed world the origin's error is not ground truth (a lost
	// RouteReply means "rejected" at the origin and "committed" at the
	// owner). Zero keeps legacy full replication, byte-identical traces
	// included.
	Partitions int
	RF         int

	// Deliberate-bug knobs for oracle self-tests: when MintAt > 0, at
	// that tick MintAmount units of the first regular key's AV are
	// conjured from nothing at site MintSite — a conservation violation
	// the no-mint oracle must catch.
	MintAt     int64
	MintSite   int
	MintAmount int64
}

func (cfg Config) withDefaults() Config {
	if cfg.Sites == 0 {
		cfg.Sites = 4
	}
	if cfg.Items == 0 {
		cfg.Items = 6
	}
	if cfg.InitialAmount == 0 {
		cfg.InitialAmount = 400
	}
	if cfg.NonRegularFraction == 0 {
		cfg.NonRegularFraction = 1.0 / 3
	}
	if cfg.Ticks == 0 {
		cfg.Ticks = 250
	}
	if cfg.EventCap == 0 {
		cfg.EventCap = 1 << 14
	}
	return cfg
}

// Violation is an invariant breach found by an oracle. It is a verdict
// about the system under test, not a harness failure (those are the
// error return of Run).
type Violation struct {
	Oracle string // conservation | no-mint | atomicity | history | convergence | obligations | read-plane | locality | unexpected-error
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("sim: %s oracle violated: %s", v.Oracle, v.Detail)
}

// Result summarizes one run.
type Result struct {
	Seed   uint64
	Script []chaos.Step // the fault schedule actually injected
	// TraceHash digests the whole observable schedule: every site's
	// event log, every driver operation with its outcome, and every
	// locally applied 2PC outcome. Two runs of the same Config produce
	// the same hash.
	TraceHash  uint64
	SiteEvents []uint64 // per-site event totals
	Ops        int
	Commits    int // operations applied (nil error)
	Aborts     int
	Unknown    int // ErrCompletionUnknown and kin: maybe applied
	Rejected   int // ErrInsufficientAV, unreachable, timeout: not applied
	Violation  *Violation
}

// opOutcome classifies a driver operation's error.
type opOutcome int

const (
	opCommit   opOutcome = iota // applied
	opAbort                     // definitely not applied anywhere
	opUnknown                   // committed, completion unconfirmed
	opRejected                  // not applied (insufficient AV, unreachable, timed out)
	opFailed                    // unexpected error class — itself a violation
)

var outcomeNames = [...]string{"commit", "abort", "unknown", "rejected", "failed"}

func classify(err error) opOutcome {
	switch {
	case err == nil:
		return opCommit
	case errors.Is(err, twopc.ErrCompletionUnknown):
		return opUnknown
	case errors.Is(err, twopc.ErrAborted):
		return opAbort
	case errors.Is(err, core.ErrInsufficientAV),
		errors.Is(err, transport.ErrUnreachable),
		errors.Is(err, transport.ErrTimeout):
		return opRejected
	default:
		return opFailed
	}
}

// opRecord is one driver operation, part of the reproducibility trace.
type opRecord struct {
	Tick    int64
	Site    int
	Key     string
	Delta   int64
	Outcome opOutcome
}

// GenSteps derives a fault schedule from seed: an ambient drop rate, at
// most one partition window and at most one crash/restart window, all
// positioned pseudo-randomly within the run.
func GenSteps(seed uint64, sites int, ticks int64) []chaos.Step {
	r := rng.New(seed ^ 0xC0FFEEC0FFEE)
	var steps []chaos.Step
	drops := []float64{0, 0.02, 0.05, 0.1}
	if p := drops[r.Intn(len(drops))]; p > 0 {
		steps = append(steps, chaos.Step{At: 0, Op: chaos.OpDrop, Prob: p})
	}
	if sites >= 3 && r.Bool(0.6) {
		start := r.Range(ticks/5, ticks/2)
		dur := r.Range(10, 10+ticks/4)
		split := 1 + r.Intn(sites-1)
		all := make([]wire.SiteID, sites)
		for i, p := range r.Perm(sites) {
			all[i] = wire.SiteID(p)
		}
		steps = append(steps,
			chaos.Step{At: start, Op: chaos.OpPartition, Sites: all, GroupSplit: split},
			chaos.Step{At: start + dur, Op: chaos.OpHeal})
	}
	if sites >= 2 && r.Bool(0.6) {
		victim := wire.SiteID(r.Intn(sites))
		start := r.Range(ticks/3, 2*ticks/3)
		dur := r.Range(10, 10+ticks/4)
		steps = append(steps,
			chaos.Step{At: start, Op: chaos.OpCrash, Sites: []wire.SiteID{victim}},
			chaos.Step{At: start + dur, Op: chaos.OpRestart, Sites: []wire.SiteID{victim}})
	}
	return steps
}

type harness struct {
	cfg Config
	clk *clock.Virtual
	inj *chaos.Injector
	c   *cluster.Cluster

	logs []*eventlog.Log
	ops  []opRecord

	omu      sync.Mutex
	outcomes []twopc.Outcome

	// expected is each regular key's stock implied by the applied
	// operations; appliedNR is, per non-regular key and site, the sum of
	// 2PC commit deltas that site actually applied (from Outcome
	// observations), which is exactly the value the site must hold.
	// In partitioned mode expected is fed by the cluster's update
	// observer (commits land at the applying site, possibly not the
	// origin), so it has its own lock; legacy mode mutates it only from
	// the driver goroutine between settled steps.
	emu       sync.Mutex
	expected  map[string]int64
	appliedNR map[string]map[wire.SiteID]int64
}

// addExpected records a committed Delay Update against the expected
// stock; ignores non-regular keys (not tracked in expected).
func (h *harness) addExpected(key string, delta int64) {
	h.emu.Lock()
	if _, ok := h.expected[key]; ok {
		h.expected[key] += delta
	}
	h.emu.Unlock()
}

// expectedFor reads one key's expected stock under the lock.
func (h *harness) expectedFor(key string) int64 {
	h.emu.Lock()
	defer h.emu.Unlock()
	return h.expected[key]
}

// Run executes one simulation. The error return reports harness
// failures (setup, wedged scheduler, unappliable script); invariant
// breaches are reported in Result.Violation.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	steps := cfg.Script
	if steps == nil {
		steps = GenSteps(cfg.Seed, cfg.Sites, int64(cfg.Ticks))
	}
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "avdb-sim-*")
		if err != nil {
			return Result{}, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	h := &harness{
		cfg:       cfg,
		clk:       clock.NewVirtual(time.Unix(1_700_000_000, 0).UTC()),
		inj:       chaos.NewInjector(cfg.Seed),
		logs:      make([]*eventlog.Log, cfg.Sites),
		expected:  make(map[string]int64),
		appliedNR: make(map[string]map[wire.SiteID]int64),
	}
	for i := range h.logs {
		h.logs[i] = eventlog.New(cfg.EventCap)
		h.logs[i].SetNow(h.clk.Now)
	}
	var epochInterval time.Duration
	if cfg.Epochs || cfg.EpochsAdaptive {
		// Coarse on the virtual clock: driver ops block on the epoch
		// boundary, so only the timer can close it and the schedule stays
		// deterministic.
		epochInterval = 2 * time.Millisecond
	}
	ccfg := cluster.Config{
		Sites:              cfg.Sites,
		Items:              cfg.Items,
		InitialAmount:      cfg.InitialAmount,
		NonRegularFraction: cfg.NonRegularFraction,
		Seed:               cfg.Seed,
		Dir:                dir,
		Partitions:         cfg.Partitions,
		RF:                 cfg.RF,
		EpochInterval:      epochInterval,
		EpochAdaptive:      cfg.EpochsAdaptive,
		EpochMinInterval:   time.Millisecond,
		EpochMaxInterval:   8 * time.Millisecond,
		Clock:              h.clk,
		Interceptor:        h.inj,
		EventsFor:          func(i int) *eventlog.Log { return h.logs[i] },
		XferSalt:           cfg.Seed*0x9E3779B97F4A7C15 | 1,
		TxnObserver: func(o twopc.Outcome) {
			h.omu.Lock()
			h.outcomes = append(h.outcomes, o)
			h.omu.Unlock()
		},
		EscrowTransfers:    true,
		ReadPlane:          true,
		CallTimeout:        250 * time.Millisecond,
		RetransmitInterval: 25 * time.Millisecond,
		RequestTimeout:     250 * time.Millisecond,
		PrepareTimeout:     100 * time.Millisecond,
		LockTimeout:        100 * time.Millisecond,
		FlushPeerTimeout:   200 * time.Millisecond,
		SuspectAfter:       1000 * time.Hour,
	}
	if cfg.Partitions > 0 {
		// Ground-truth accounting at the applying site (see Config).
		ccfg.UpdateObserver = h.addExpected
	}
	c, err := h.buildCluster(ccfg)
	if err != nil {
		return Result{}, err
	}
	defer c.Close()
	h.c = c
	return h.run(steps)
}

// buildCluster runs cluster.New while driving the virtual clock: with
// epoch commit on, seeding blocks on epoch boundaries before the
// settle/advance scheduler exists, so someone must fire the epoch
// timers. Setup is a single goroutine committing serially, so each
// blocked op arms exactly one timer and the advance count (hence the
// virtual timeline) is deterministic. With epochs off no timer is ever
// pending and the clock never moves — byte-identical to pre-epoch runs.
func (h *harness) buildCluster(ccfg cluster.Config) (*cluster.Cluster, error) {
	type built struct {
		c   *cluster.Cluster
		err error
	}
	done := make(chan built, 1)
	go func() {
		c, err := cluster.New(ccfg)
		done <- built{c, err}
	}()
	for {
		select {
		case b := <-done:
			return b.c, b.err
		default:
			if _, ok := h.clk.AdvanceToNext(); !ok {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
}

func (h *harness) run(steps []chaos.Step) (Result, error) {
	c, cfg := h.c, h.cfg
	res := Result{Seed: cfg.Seed, Script: steps}
	script := chaos.NewScript(steps)
	env := c.ChaosEnv()
	wl := rng.New(cfg.Seed ^ 0x5EEDFACE)
	ctx := context.Background()

	allKeys := append(append([]string{}, c.RegularKeys...), c.NonRegularKeys...)
	for _, k := range c.RegularKeys {
		h.expected[k] = cfg.InitialAmount
	}
	for _, k := range c.NonRegularKeys {
		h.appliedNR[k] = make(map[wire.SiteID]int64)
	}

	for tick := int64(0); tick < int64(cfg.Ticks); tick++ {
		if _, err := script.Advance(tick, h.inj, env); err != nil {
			return res, fmt.Errorf("sim: seed %d: %w", cfg.Seed, err)
		}
		if cfg.MintAt > 0 && tick == cfg.MintAt && len(c.RegularKeys) > 0 {
			ms := cfg.MintSite % cfg.Sites
			if !c.SiteDown(ms) {
				// Under the scheduler: the durable Define may block on an
				// epoch boundary only a timer can close.
				var merr error
				if err := h.step(func() { merr = c.Sites[ms].DefineAV(c.RegularKeys[0], cfg.MintAmount) }); err != nil {
					return res, err
				}
				if merr != nil {
					return res, fmt.Errorf("sim: mint injection: %w", merr)
				}
			}
		}

		// The workload draws are made whether or not the chosen site is
		// up, so the random stream never depends on fault timing.
		idx := wl.Intn(cfg.Sites)
		key := allKeys[wl.Intn(len(allKeys))]
		delta := wl.Range(1, 5)
		if wl.Bool(0.75) {
			delta = -delta
		}
		if !c.SiteDown(idx) {
			nOut := h.outcomeCount()
			var opRes core.Result
			var opErr error
			if err := h.step(func() { opRes, opErr = c.Update(ctx, idx, key, delta) }); err != nil {
				return res, err
			}
			out := classify(opErr)
			res.Ops++
			h.ops = append(h.ops, opRecord{Tick: tick, Site: idx, Key: key, Delta: delta, Outcome: out})
			switch out {
			case opCommit:
				res.Commits++
				// Partitioned runs account at the applying site via the
				// update observer (the commit may have landed remotely, and
				// a routed outcome can even be "rejected" at the origin when
				// only the reply was lost); counting here too would double.
				if cfg.Partitions == 0 {
					h.addExpected(key, delta)
				}
			case opAbort:
				res.Aborts++
			case opUnknown:
				res.Unknown++
			case opRejected:
				res.Rejected++
			case opFailed:
				res.Violation = &Violation{Oracle: "unexpected-error",
					Detail: fmt.Sprintf("tick %d site %d key %s delta %d: %v", tick, idx, key, delta, opErr)}
			}
			// Attribute every 2PC apply observed during the operation to
			// it: per site, the applied commit deltas are exactly the
			// value the site must end up holding.
			if applied, ok := h.appliedNR[key]; ok {
				for _, o := range h.outcomesSince(nOut) {
					if o.Commit && !o.Swept {
						applied[o.Site] += delta
					}
				}
			}
			if res.Violation == nil && out == opCommit {
				res.Violation = h.checkRYW(idx, opRes)
			}
			if res.Violation != nil {
				break
			}
		}
		if tick%20 == 19 {
			if err := h.step(func() { _ = c.FlushAll(ctx) }); err != nil {
				return res, err
			}
		}
		if tick%25 == 24 {
			if v := h.checkNoMint(); v != nil {
				res.Violation = v
				break
			}
		}
	}

	if res.Violation == nil {
		if err := h.quiesce(ctx); err != nil {
			return res, err
		}
		res.Violation = h.checkOracles()
	}
	res.TraceHash = h.traceHash()
	for _, l := range h.logs {
		res.SiteEvents = append(res.SiteEvents, l.Total())
	}
	return res, nil
}

// quiesce heals every fault, restarts crashed sites, drains orphaned
// 2PC state and escrow obligations, and converges the replicas.
func (h *harness) quiesce(ctx context.Context) error {
	c := h.c
	h.inj.SetDefault(chaos.LinkFaults{})
	h.inj.Heal()
	for i := range c.Sites {
		if !c.SiteDown(i) {
			continue
		}
		var err error
		if serr := h.step(func() { err = c.RestartSite(i) }); serr != nil {
			return serr
		}
		if err != nil {
			return fmt.Errorf("sim: quiesce restart site %d: %w", i, err)
		}
	}
	for round := 0; round < 6; round++ {
		err := h.step(func() {
			for _, s := range c.Sites {
				s.TwoPC().Sweep(h.clk.Now().Add(time.Hour))
				hctx, cancel := clock.WithTimeout(ctx, h.clk, 2*time.Second)
				s.Heartbeat(hctx)
				_, _ = s.Reconcile(hctx)
				cancel()
			}
			_ = c.FlushAll(ctx)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// settle waits for the network to reach its fixpoint. With epochs off
// and no partitioning that is full quiescence (no message in flight,
// no handler running — the blocking Settle). With epochs on, a handler
// may park on an epoch boundary that only a virtual-clock advance can
// close; with partitioning on, a routed update runs its whole update
// path inside a handler, so the handler can park on a 2PC or transfer
// deadline the same way. Either way full settle is unreachable, so the
// fixpoint is an activity level that holds still: every deliverable
// message delivered, every handler either finished or timer-parked.
func (h *harness) settle() {
	if !h.cfg.Epochs && !h.cfg.EpochsAdaptive && h.cfg.Partitions == 0 {
		h.c.Net.Settle()
		return
	}
	prev, stable := -1, 0
	for {
		cur := h.c.Net.Activity()
		if cur == 0 {
			return
		}
		if cur == prev {
			if stable++; stable >= 2 {
				return
			}
		} else {
			prev, stable = cur, 0
		}
		time.Sleep(stabilityWindow * time.Nanosecond)
	}
}

// step runs fn to completion against the settle/advance scheduler: wait
// for the network to settle, and once fn can only proceed via a timer,
// jump the virtual clock to the next deadline. Real time passes only in
// sub-millisecond scheduling waits and bounded lock waits inside
// handlers.
func (h *harness) step(fn func()) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	watchdog := time.Now().Add(60 * time.Second)
	stable := 0
	for {
		select {
		case <-done:
			return nil
		default:
		}
		h.settle()
		// Give goroutines unblocked by the settle a moment to either
		// finish fn or register/stop their next timer, then re-settle;
		// only advance once the pending-timer set has held still for two
		// consecutive windows.
		pending := h.clk.Pending()
		if waitDone(done, stabilityWindow*time.Nanosecond) {
			return nil
		}
		h.settle()
		select {
		case <-done:
			return nil
		default:
		}
		if h.clk.Pending() != pending {
			stable = 0
			continue
		}
		if stable++; stable < 2 {
			continue
		}
		stable = 0
		if _, ok := h.clk.AdvanceToNext(); !ok {
			// No virtual timer pending: fn is in a real-time lock wait or
			// still being scheduled. Give it real time.
			if waitDone(done, 2*time.Millisecond) {
				return nil
			}
		}
		if time.Now().After(watchdog) {
			return fmt.Errorf("sim: seed %d: scheduler wedged (operation neither finished nor registered a timer for 60s)", h.cfg.Seed)
		}
	}
}

func waitDone(done <-chan struct{}, d time.Duration) bool {
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

func (h *harness) outcomeCount() int {
	h.omu.Lock()
	defer h.omu.Unlock()
	return len(h.outcomes)
}

func (h *harness) outcomesSince(n int) []twopc.Outcome {
	h.omu.Lock()
	defer h.omu.Unlock()
	return append([]twopc.Outcome(nil), h.outcomes[n:]...)
}

// checkNoMint is the continuous conservation oracle, run between
// operations while the network is settled. Escrowed units are excluded
// from the sum because an in-flight transfer legitimately double-counts
// until its obligation settles; free+held volume alone can never exceed
// the stock implied by the applied operations. It only runs while every
// site is up (a crashed site's in-memory table is not authoritative).
func (h *harness) checkNoMint() *Violation {
	for i := range h.c.Sites {
		if h.c.SiteDown(i) {
			return nil
		}
	}
	for _, key := range h.c.RegularKeys {
		var sum int64
		for _, s := range h.c.Sites {
			sum += s.AV().Total(key) - s.AV().Escrowed(key)
		}
		if want := h.expectedFor(key); sum > want {
			return &Violation{Oracle: "no-mint",
				Detail: fmt.Sprintf("key %s: free+held AV %d exceeds applied stock %d mid-run", key, sum, want)}
		}
	}
	return nil
}

// checkRYW asserts read-your-writes after a committed operation: the
// token minted by the commit must be satisfiable at the read plane of
// the site that applied it — the origin for local commits, the remote
// owner for routed updates (the token carries the applying site's ID).
// The wait deadline is real time on purpose — the plane's applier
// free-runs outside the settle/advance scheduler and its feed log is
// not part of the hashed trace, so registering a virtual-clock timer
// here would perturb bit-reproducibility.
func (h *harness) checkRYW(idx int, opRes core.Result) *Violation {
	s := h.c.Sites[idx]
	if opRes.Site != wire.SiteID(idx) && int(opRes.Site) < len(h.c.Sites) {
		s = h.c.Sites[int(opRes.Site)]
	}
	p := s.ReadPlane()
	if p == nil || opRes.LSN == 0 {
		return nil
	}
	wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.WaitFor(wctx, s.Token(opRes)); err != nil {
		return &Violation{Oracle: "read-plane",
			Detail: fmt.Sprintf("site %d: RYW token %v unsatisfied after commit: %v", idx, s.Token(opRes), err)}
	}
	if n := p.Stats().RYWViolations; n != 0 {
		return &Violation{Oracle: "read-plane",
			Detail: fmt.Sprintf("site %d: %d RYW waits woke before the model applied their LSN", idx, n)}
	}
	return nil
}

// checkReadPlane is the post-quiescence read-plane oracle: every
// materialized stock view must converge to exactly its authoritative
// engine's state (no stale, phantom, or missing keys), and no
// read-your-writes wait may ever have been satisfied by a model that
// had not applied the token's LSN. Deadlines are real time for the
// same reason as checkRYW.
func (h *harness) checkReadPlane() *Violation {
	for i, s := range h.c.Sites {
		p := s.ReadPlane()
		if p == nil {
			continue
		}
		wctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		err := p.WaitCaughtUp(wctx)
		cancel()
		if err != nil {
			return &Violation{Oracle: "read-plane",
				Detail: fmt.Sprintf("site %d: stock view never caught up to its engine: %v", i, err)}
		}
		amounts, lsn, err := s.Engine().SnapshotAmounts()
		if err != nil {
			return &Violation{Oracle: "read-plane",
				Detail: fmt.Sprintf("site %d: engine snapshot: %v", i, err)}
		}
		snap := p.Stock()
		if snap.AppliedLSN < lsn {
			return &Violation{Oracle: "read-plane",
				Detail: fmt.Sprintf("site %d: watermark %d behind engine LSN %d after catch-up", i, snap.AppliedLSN, lsn)}
		}
		for k, want := range amounts {
			got, ok := snap.Amount(k)
			if !ok {
				return &Violation{Oracle: "read-plane",
					Detail: fmt.Sprintf("site %d: key %s missing from stock view (engine holds %d)", i, k, want)}
			}
			if got != want {
				return &Violation{Oracle: "read-plane",
					Detail: fmt.Sprintf("site %d: key %s stock view %d, engine %d", i, k, got, want)}
			}
		}
		if snap.Len() != len(amounts) {
			return &Violation{Oracle: "read-plane",
				Detail: fmt.Sprintf("site %d: stock view has %d keys, engine %d (phantom rows)", i, snap.Len(), len(amounts))}
		}
		if n := p.Stats().RYWViolations; n != 0 {
			return &Violation{Oracle: "read-plane",
				Detail: fmt.Sprintf("site %d: %d RYW waits woke before the model applied their LSN", i, n)}
		}
	}
	return nil
}

// checkOracles evaluates every post-quiescence invariant.
func (h *harness) checkOracles() *Violation {
	c := h.c

	// 2PC atomicity: no site may apply a commit for a transaction any
	// other site aborted. Presumed-abort sweeps of orphaned prepares are
	// excluded — they are the one legitimate divergence, and the history
	// oracle below accounts for them exactly.
	commits := make(map[uint64][]wire.SiteID)
	aborts := make(map[uint64][]wire.SiteID)
	h.omu.Lock()
	outcomes := append([]twopc.Outcome(nil), h.outcomes...)
	h.omu.Unlock()
	for _, o := range outcomes {
		if o.Swept {
			continue
		}
		if o.Commit {
			commits[o.TxnID] = append(commits[o.TxnID], o.Site)
		} else {
			aborts[o.TxnID] = append(aborts[o.TxnID], o.Site)
		}
	}
	for id, cs := range commits {
		if as := aborts[id]; len(as) > 0 {
			return &Violation{Oracle: "atomicity",
				Detail: fmt.Sprintf("txn %d committed at sites %v but aborted at sites %v", id, cs, as)}
		}
	}

	// Regular keys: replicas converged, value equals the applied
	// history, AV conservation exact, no leaked holds or escrow.
	for _, key := range c.RegularKeys {
		v, err := c.ConvergedValue(key)
		if err != nil {
			return &Violation{Oracle: "convergence", Detail: err.Error()}
		}
		if want := h.expectedFor(key); v != want {
			return &Violation{Oracle: "history",
				Detail: fmt.Sprintf("key %s converged to %d, applied operations imply %d", key, v, want)}
		}
		var avSum int64
		for _, s := range c.Sites {
			avSum += s.AV().Total(key)
		}
		if avSum > v {
			return &Violation{Oracle: "no-mint",
				Detail: fmt.Sprintf("key %s: AV sum %d exceeds global stock %d", key, avSum, v)}
		}
		if avSum < v {
			return &Violation{Oracle: "conservation",
				Detail: fmt.Sprintf("key %s: AV sum %d lost slack against global stock %d", key, avSum, v)}
		}
		for i, s := range c.Sites {
			if held := s.AV().Held(key); held != 0 {
				return &Violation{Oracle: "conservation",
					Detail: fmt.Sprintf("key %s site %d leaked hold of %d", key, i, held)}
			}
			if esc := s.AV().Escrowed(key); esc != 0 {
				return &Violation{Oracle: "conservation",
					Detail: fmt.Sprintf("key %s site %d left %d in escrow", key, i, esc)}
			}
		}
	}

	// Escrow obligations must all have been re-driven to completion.
	for i, s := range c.Sites {
		if n := len(s.Accelerator().Obligations()); n != 0 {
			return &Violation{Oracle: "obligations",
				Detail: fmt.Sprintf("site %d still holds %d escrow obligations after quiesce", i, n)}
		}
	}

	// Non-regular keys: every site must hold exactly its applied 2PC
	// commit history — the linearizability check of the Immediate Update
	// path. Divergence is legitimate only when a commit decision never
	// reached a participant (its prepare was swept), and then the
	// site's value must still equal precisely the commits it did apply.
	for _, key := range c.NonRegularKeys {
		for _, i := range c.HostSitesFor(key) {
			got, err := c.Read(i, key)
			if err != nil {
				return &Violation{Oracle: "history", Detail: fmt.Sprintf("key %s site %d: %v", key, i, err)}
			}
			want := h.cfg.InitialAmount + h.appliedNR[key][wire.SiteID(i)]
			if got != want {
				return &Violation{Oracle: "history",
					Detail: fmt.Sprintf("key %s site %d holds %d, its applied commit history implies %d", key, i, got, want)}
			}
		}
	}

	// Partitioned runs additionally prove partial replication held: no
	// site's store ever received a key outside its hosted partitions.
	if h.cfg.Partitions > 0 {
		if err := c.CheckStoreLocality(); err != nil {
			return &Violation{Oracle: "locality", Detail: err.Error()}
		}
	}

	return h.checkReadPlane()
}

// traceHash digests the run's observable schedule: per-site event logs
// (timestamps included — the virtual clock makes them deterministic),
// the driver's operation log, and the sorted 2PC outcome set.
func (h *harness) traceHash() uint64 {
	fh := fnv.New64a()
	for i, l := range h.logs {
		fmt.Fprintf(fh, "site %d total %d\n", i, l.Total())
		for _, e := range l.Snapshot() {
			fmt.Fprintf(fh, "%d %d %s %s %s\n", e.Time.UnixNano(), e.Site, e.Type, e.Key, e.Detail)
		}
	}
	for _, op := range h.ops {
		fmt.Fprintf(fh, "op %d %d %s %d %s\n", op.Tick, op.Site, op.Key, op.Delta, outcomeNames[op.Outcome])
	}
	h.omu.Lock()
	outcomes := append([]twopc.Outcome(nil), h.outcomes...)
	h.omu.Unlock()
	// 2PC applies on different sites race only in observation order, not
	// in effect; sort for a stable digest.
	sort.Slice(outcomes, func(i, j int) bool {
		a, b := outcomes[i], outcomes[j]
		if a.TxnID != b.TxnID {
			return a.TxnID < b.TxnID
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return !a.Swept && b.Swept
	})
	for _, o := range outcomes {
		fmt.Fprintf(fh, "txn %d %d %v %v\n", o.TxnID, o.Site, o.Commit, o.Swept)
	}
	return fh.Sum64()
}
