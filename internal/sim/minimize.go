// Schedule minimization: shrink a failing fault script to a minimal one
// that still trips an oracle, so a failure report names the few faults
// that matter instead of the whole generated schedule.
package sim

import (
	"fmt"
	"strings"

	"avdb/internal/chaos"
)

// Minimize re-runs cfg with ever-smaller subsets of its fault script
// (cfg.Script, or the schedule generated from cfg.Seed when nil) and
// returns the smallest script that still produces a violation, together
// with that run's Result. It is a one-at-a-time ddmin: each pass tries
// dropping every step individually and keeps a drop when the failure
// persists, repeating to a fixed point. Subsets the scheduler cannot
// apply — a restart whose crash was dropped — are skipped, which is why
// crash/restart pairs shrink restart-first across passes.
func Minimize(cfg Config) ([]chaos.Step, Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Script == nil {
		cfg.Script = GenSteps(cfg.Seed, cfg.Sites, int64(cfg.Ticks))
	}
	cur := append([]chaos.Step(nil), cfg.Script...)
	cfg.Script = cur
	best, err := Run(cfg)
	if err != nil {
		return cur, best, err
	}
	if best.Violation == nil {
		return cur, best, fmt.Errorf("sim: seed %d does not fail with the given script", cfg.Seed)
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			trial := make([]chaos.Step, 0, len(cur)-1)
			trial = append(append(trial, cur[:i]...), cur[i+1:]...)
			cfg.Script = trial
			res, err := Run(cfg)
			if err != nil || res.Violation == nil {
				continue
			}
			cur, best = trial, res
			changed = true
			i--
		}
	}
	return cur, best, nil
}

// FormatFailure renders a reproducible failure report: the violation,
// the minimized fault script (in chaos.Parse syntax), and the command
// that replays it.
func FormatFailure(seed uint64, res Result, minimized []chaos.Step, originalSteps int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: seed %d FAILED: %v\n", seed, res.Violation)
	fmt.Fprintf(&b, "minimized fault script (%d -> %d steps):\n", originalSteps, len(minimized))
	if len(minimized) == 0 {
		b.WriteString("  (empty — the failure does not depend on any injected fault)\n")
	} else {
		for _, line := range strings.Split(strings.TrimRight(chaos.FormatSteps(minimized), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	fmt.Fprintf(&b, "reproduce: go run ./cmd/avsim -experiment sim -sim-seed %d\n", seed)
	return b.String()
}
