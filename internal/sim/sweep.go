package sim

import (
	"fmt"
	"io"

	"avdb/internal/chaos"
)

// Failure is one seed's minimized failure from a sweep.
type Failure struct {
	Seed      uint64
	Violation *Violation
	Steps     []chaos.Step // the full generated schedule
	Minimized []chaos.Step // the smallest schedule that still fails
	Report    string
}

// Sweep runs n consecutive seeds starting at start, minimizes every
// failing schedule, and writes progress plus one report per failure to
// w (nil discards). The error return is for harness failures only;
// oracle violations land in the returned slice.
func Sweep(base Config, start uint64, n int, w io.Writer) ([]Failure, error) {
	if w == nil {
		w = io.Discard
	}
	var failures []Failure
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Seed = start + uint64(i)
		cfg.Script = nil
		res, err := Run(cfg)
		if err != nil {
			return failures, fmt.Errorf("sim: sweep seed %d: %w", cfg.Seed, err)
		}
		if res.Violation == nil {
			if (i+1)%50 == 0 || i == n-1 {
				fmt.Fprintf(w, "sim: swept %d/%d seeds, %d failures\n", i+1, n, len(failures))
			}
			continue
		}
		minimized, mres, merr := Minimize(cfg)
		if merr != nil {
			// Keep the original failure even when minimization could not
			// re-run it; a flaky shrink must not hide a real violation.
			minimized, mres = res.Script, res
		}
		f := Failure{
			Seed:      cfg.Seed,
			Violation: mres.Violation,
			Steps:     res.Script,
			Minimized: minimized,
			Report:    FormatFailure(cfg.Seed, mres, minimized, len(res.Script)),
		}
		failures = append(failures, f)
		fmt.Fprint(w, f.Report)
	}
	return failures, nil
}
