package sim

import (
	"testing"

	"avdb/internal/chaos"
)

// shardedCfg is the acceptance configuration: 6 sites, 16 partitions,
// RF 2 — every key lives on exactly two sites and most updates route.
func shardedCfg(seed uint64, ticks int) Config {
	return Config{
		Seed:       seed,
		Ticks:      ticks,
		Sites:      6,
		Items:      12,
		Partitions: 16,
		RF:         2,
	}
}

// TestSimShardedHealthy runs the sharded cluster fault-free and
// expects every oracle — including the per-partition conservation and
// store-locality ones — to pass.
func TestSimShardedHealthy(t *testing.T) {
	cfg := shardedCfg(1, 60)
	cfg.Script = []chaos.Step{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("sharded fault-free run violated an invariant: %v", res.Violation)
	}
	if res.Commits == 0 {
		t.Fatal("sharded run committed nothing")
	}
}

// TestSimShardedBitReproducible requires the routed schedule to hash
// identically across two independent runs of the same seed, with the
// generated fault script active.
func TestSimShardedBitReproducible(t *testing.T) {
	cfg := shardedCfg(7, 120)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Errorf("sharded trace hash diverged: %#x vs %#x (events %v vs %v, ops %d vs %d)",
			a.TraceHash, b.TraceHash, a.SiteEvents, b.SiteEvents, a.Ops, b.Ops)
	}
	if a.Violation != nil {
		t.Errorf("unexpected violation: %v", a.Violation)
	}
}

// TestSimShardedSweepSmall sweeps a few seeds with faults through the
// sharded configuration.
func TestSimShardedSweepSmall(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 2
	}
	failures, err := Sweep(shardedCfg(0, 60), 100, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Errorf("sharded seed %d: %v\n%s", f.Seed, f.Violation, f.Report)
	}
}
