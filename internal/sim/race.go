//go:build race

package sim

// Under the race detector goroutine scheduling is an order of magnitude
// slower, so the scheduler's stability window must widen accordingly or
// a descheduled goroutine's about-to-be-stopped timer can be mistaken
// for a genuinely pending one.
const stabilityWindow = 5_000_000 // 5ms in nanoseconds
