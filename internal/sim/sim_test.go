package sim

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"avdb/internal/chaos"
)

// TestSimHealthy runs a few seeds fault-free and with faults and
// expects every oracle to pass.
func TestSimHealthy(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ticks: 60, Script: []chaos.Step{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("fault-free run violated an invariant: %v", res.Violation)
	}
	if res.Commits == 0 {
		t.Fatal("fault-free run committed nothing")
	}
}

// TestSimBitReproducible runs the same seed twice, independently, and
// requires the full observable schedule — every site's event log, every
// operation outcome, every 2PC apply — to hash identically.
func TestSimBitReproducible(t *testing.T) {
	seeds := []uint64{3, 7, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := Config{Seed: seed, Ticks: 120}
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d first run: %v", seed, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d second run: %v", seed, err)
		}
		if a.TraceHash != b.TraceHash {
			t.Errorf("seed %d: trace hash diverged: %#x vs %#x (events %v vs %v, ops %d vs %d)",
				seed, a.TraceHash, b.TraceHash, a.SiteEvents, b.SiteEvents, a.Ops, b.Ops)
		}
		if a.Violation != nil {
			t.Errorf("seed %d: unexpected violation: %v", seed, a.Violation)
		}
	}
}

// TestSimMintBugCaught injects a deliberate AV-minting bug and requires
// the conservation oracle to catch it and the minimizer to shrink the
// fault script, producing a reproducible failure report.
func TestSimMintBugCaught(t *testing.T) {
	cfg := Config{Seed: 5, Ticks: 80, MintAt: 30, MintSite: 1, MintAmount: 50}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("minted 50 units of AV from nothing and no oracle noticed")
	}
	if res.Violation.Oracle != "no-mint" {
		t.Fatalf("wrong oracle caught the mint: %v", res.Violation)
	}
	minimized, mres, err := Minimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Violation == nil {
		t.Fatal("minimized run no longer fails")
	}
	// The mint does not depend on any injected fault, so the script must
	// shrink to nothing.
	if len(minimized) != 0 {
		t.Fatalf("expected the fault script to minimize away, kept %d steps:\n%s",
			len(minimized), chaos.FormatSteps(minimized))
	}
	report := FormatFailure(cfg.Seed, mres, minimized, len(res.Script))
	for _, want := range []string{"seed 5 FAILED", "no-mint", "minimized fault script", "reproduce:"} {
		if !strings.Contains(report, want) {
			t.Errorf("failure report missing %q:\n%s", want, report)
		}
	}
}

// TestSimEpochsHealthy forces epoch-based commit on and expects the
// same oracles (no-mint, atomicity, convergence, read-plane/RYW) to
// hold: epochs batch acknowledgements, not effects, so no invariant may
// move.
func TestSimEpochsHealthy(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ticks: 60, Epochs: true, Script: []chaos.Step{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("epoch-mode fault-free run violated an invariant: %v", res.Violation)
	}
	if res.Commits == 0 {
		t.Fatal("epoch-mode run committed nothing")
	}
}

// TestSimEpochsBitReproducible requires the virtual-clock epoch timers
// to schedule deterministically: same seed, same trace hash, with
// epochs on and faults injected.
func TestSimEpochsBitReproducible(t *testing.T) {
	cfg := Config{Seed: 7, Ticks: 120, Epochs: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Errorf("epoch-mode trace hash diverged: %#x vs %#x", a.TraceHash, b.TraceHash)
	}
	if a.Violation != nil {
		t.Errorf("unexpected violation: %v", a.Violation)
	}
}

// TestSimEpochsAdaptiveHealthy runs the adaptive interval controller
// under the full oracle suite: the controller moves only *when* acks
// release, never what is journaled, so every invariant must still hold
// while the interval widens and collapses.
func TestSimEpochsAdaptiveHealthy(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ticks: 60, EpochsAdaptive: true, Script: []chaos.Step{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("adaptive epoch-mode fault-free run violated an invariant: %v", res.Violation)
	}
	if res.Commits == 0 {
		t.Fatal("adaptive epoch-mode run committed nothing")
	}
}

// TestSimEpochsAdaptiveBitReproducible pins the adaptive controller to
// the virtual clock: interval adjustments derive only from per-epoch
// commit counts, so the schedule — and the trace hash — must reproduce.
func TestSimEpochsAdaptiveBitReproducible(t *testing.T) {
	cfg := Config{Seed: 7, Ticks: 120, EpochsAdaptive: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Errorf("adaptive epoch-mode trace hash diverged: %#x vs %#x", a.TraceHash, b.TraceHash)
	}
	if a.Violation != nil {
		t.Errorf("unexpected violation: %v", a.Violation)
	}
}

// TestSimEpochsSweepSmall sweeps a few seeds with epochs forced on.
func TestSimEpochsSweepSmall(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 2
	}
	failures, err := Sweep(Config{Ticks: 60, Epochs: true}, 100, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Errorf("epoch mode seed %d: %v\n%s", f.Seed, f.Violation, f.Report)
	}
}

// TestSimSweepSmall sweeps a handful of seeds end to end.
func TestSimSweepSmall(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 2
	}
	failures, err := Sweep(Config{Ticks: 60}, 100, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Errorf("seed %d: %v\n%s", f.Seed, f.Violation, f.Report)
	}
}

// TestSimSeedSweepNightly is the CI seed sweep: set AVDB_SIM_SWEEP_SEEDS
// (and optionally AVDB_SIM_SWEEP_START) to run it.
func TestSimSeedSweepNightly(t *testing.T) {
	nStr := os.Getenv("AVDB_SIM_SWEEP_SEEDS")
	if nStr == "" {
		t.Skip("set AVDB_SIM_SWEEP_SEEDS to run the nightly seed sweep")
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n <= 0 {
		t.Fatalf("bad AVDB_SIM_SWEEP_SEEDS %q", nStr)
	}
	start := uint64(1)
	if s := os.Getenv("AVDB_SIM_SWEEP_START"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad AVDB_SIM_SWEEP_START %q", s)
		}
		start = v
	}
	// Sweep both commit pipelines plus the sharded configuration under
	// the same seeds and oracles.
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"group-commit", Config{}},
		{"epochs", Config{Epochs: true}},
		{"epochs-adaptive", Config{EpochsAdaptive: true}},
		{"sharded", Config{Sites: 6, Items: 12, Partitions: 16, RF: 2}},
	} {
		failures, err := Sweep(mode.cfg, start, n, os.Stderr)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range failures {
			t.Errorf("[%s] %s", mode.name, f.Report)
		}
	}
}
