package partition

import (
	"fmt"
	"reflect"
	"testing"

	"avdb/internal/rng"
	"avdb/internal/wire"
)

func sitesUpTo(n int) []wire.SiteID {
	out := make([]wire.SiteID, n)
	for i := range out {
		out[i] = wire.SiteID(i)
	}
	return out
}

// Every key must resolve to exactly RF distinct live sites, with the
// owner a member of its own replica set — across a grid of cluster
// shapes and a large sample of keys.
func TestEveryKeyResolvesToExactlyRF(t *testing.T) {
	for _, tc := range []struct{ sites, parts, rf int }{
		{1, 1, 1},
		{3, 4, 2},
		{6, 16, 2},
		{6, 16, 3},
		{9, 64, 3},
		{33, 128, 5},
	} {
		m, err := New(sitesUpTo(tc.sites), tc.parts, tc.rf)
		if err != nil {
			t.Fatalf("sites=%d parts=%d rf=%d: %v", tc.sites, tc.parts, tc.rf, err)
		}
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("product-%04d", i)
			reps := m.ReplicasOf(key)
			if len(reps) != tc.rf {
				t.Fatalf("sites=%d parts=%d rf=%d key %s: %d replicas", tc.sites, tc.parts, tc.rf, key, len(reps))
			}
			seen := make(map[wire.SiteID]bool)
			for _, s := range reps {
				if seen[s] {
					t.Fatalf("key %s: duplicate replica %d", key, s)
				}
				seen[s] = true
				if int(s) >= tc.sites {
					t.Fatalf("key %s: replica %d outside the cluster", key, s)
				}
				if !m.HostsKey(s, key) {
					t.Fatalf("key %s: replica %d does not report hosting it", key, s)
				}
			}
			if !seen[m.OwnerOf(key)] {
				t.Fatalf("key %s: owner %d not in replica set", key, m.OwnerOf(key))
			}
		}
	}
}

// Rendezvous hashing's minimal-disruption property, asserted exactly:
// when a site joins, a partition's replica set changes iff the
// newcomer ranked into its top-RF; when a site leaves, iff the leaver
// was in the set. No third partition may move.
func TestRemapStabilityOnJoinAndLeave(t *testing.T) {
	const parts, rf = 64, 2
	base, err := New(sitesUpTo(5), parts, rf)
	if err != nil {
		t.Fatal(err)
	}

	// Join: site 5 enters.
	joined, err := base.WithSites(sitesUpTo(6))
	if err != nil {
		t.Fatal(err)
	}
	if joined.Version() != base.Version()+1 {
		t.Fatalf("join version = %d, want %d", joined.Version(), base.Version()+1)
	}
	moved := 0
	for p := 0; p < parts; p++ {
		before, after := base.Replicas(p), joined.Replicas(p)
		if joined.IsReplica(p, 5) {
			moved++
			continue
		}
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("join: partition %d moved without involving the newcomer: %v -> %v", p, before, after)
		}
	}
	// The newcomer takes roughly its fair share of the RF*parts replica
	// slots (64*2/6 ≈ 21); a wide bound guards against a degenerate hash.
	if moved == 0 || moved > parts/2 {
		t.Fatalf("join: newcomer entered %d of %d partitions", moved, parts)
	}

	// Leave: site 2 exits the original map.
	var rest []wire.SiteID
	for _, s := range sitesUpTo(5) {
		if s != 2 {
			rest = append(rest, s)
		}
	}
	left, err := base.WithSites(rest)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		before, after := base.Replicas(p), left.Replicas(p)
		if base.IsReplica(p, 2) {
			if left.IsReplica(p, 2) {
				t.Fatalf("leave: partition %d still lists the departed site", p)
			}
			continue
		}
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("leave: partition %d moved without hosting the leaver: %v -> %v", p, before, after)
		}
	}
}

// The assignment is a pure function of (version, sites, parts, rf):
// a receiver rebuilding a redirect's map routes identically.
func TestRebuildIsDeterministic(t *testing.T) {
	a, err := NewAt(7, []wire.SiteID{4, 0, 2, 4, 1, 3}, 16, 2) // unsorted + dup
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAt(7, sitesUpTo(5), 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sites(), b.Sites()) {
		t.Fatalf("sites normalize differently: %v vs %v", a.Sites(), b.Sites())
	}
	for p := 0; p < 16; p++ {
		if !reflect.DeepEqual(a.Replicas(p), b.Replicas(p)) {
			t.Fatalf("partition %d: %v vs %v", p, a.Replicas(p), b.Replicas(p))
		}
	}
}

// Hosted must be the exact inverse of the replica table, and partitions
// should spread across sites rather than pile onto one.
func TestHostedMatchesReplicaTable(t *testing.T) {
	m, err := New(sitesUpTo(6), 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[wire.SiteID]int)
	for _, s := range m.Sites() {
		for _, p := range m.Hosted(s) {
			if !m.IsReplica(p, s) {
				t.Fatalf("site %d claims partition %d it does not host", s, p)
			}
			counts[s]++
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 64*2 {
		t.Fatalf("hosted slots = %d, want %d", total, 64*2)
	}
	for s, n := range counts {
		// Fair share is ~21; any site holding over half the slots means
		// the weights are badly skewed.
		if n == 0 || n > 64 {
			t.Fatalf("site %d hosts %d partition slots", s, n)
		}
	}
	if m.Hosted(wire.SiteID(99)) != nil {
		t.Fatal("site outside the map hosts partitions")
	}
}

// PeersFor removes self and keeps everyone else, whichever replica asks.
func TestPeersFor(t *testing.T) {
	m, err := New(sitesUpTo(6), 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k-%d", r.Uint64())
		reps := m.ReplicasOf(key)
		for _, self := range reps {
			peers := m.PeersFor(self, key)
			if len(peers) != len(reps)-1 {
				t.Fatalf("key %s self %d: %d peers", key, self, len(peers))
			}
			for _, p := range peers {
				if p == self {
					t.Fatalf("key %s: self in peer set", key)
				}
				if !m.HostsKey(p, key) {
					t.Fatalf("key %s: peer %d is not a replica", key, p)
				}
			}
		}
	}
}

// Config validation: bad shapes must be refused, not mis-built.
func TestValidation(t *testing.T) {
	if _, err := New(nil, 4, 1); err == nil {
		t.Fatal("empty site set accepted")
	}
	if _, err := New(sitesUpTo(3), 0, 1); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := New(sitesUpTo(3), 4, 4); err == nil {
		t.Fatal("rf > sites accepted")
	}
	if _, err := New(sitesUpTo(3), 4, 0); err == nil {
		t.Fatal("rf 0 accepted")
	}
	if _, err := NewAt(0, sitesUpTo(3), 4, 1); err == nil {
		t.Fatal("version 0 accepted")
	}
}
