// Package partition shards the key space across sites. Keys hash onto
// a fixed set of virtual partitions; each partition is assigned an
// owner and a replica set by rendezvous (highest-random-weight) hashing
// over the member sites. Rendezvous hashing gives the property the
// router depends on for smooth rebalancing: adding or removing one site
// changes a partition's replica set if and only if that site ranks into
// (or out of) the partition's top-RF — every other assignment is
// untouched, so key movement is bounded by the joining/leaving site's
// own share.
//
// A Map is immutable and versioned. Every site of a sharded cluster
// holds one; routed messages carry the sender's version, and a receiver
// with a different map attaches its own to the reply so stale senders
// converge (see wire.RouteReply and PROTOCOL.md). A nil *Map everywhere
// means partitioning is off: the legacy full-replication deployment,
// whose behaviour is byte-identical to pre-partition builds.
package partition

import (
	"fmt"
	"sort"

	"avdb/internal/wire"
)

// Map is one immutable, versioned assignment of the key space:
// hash(key) mod Parts chooses the partition, rendezvous hashing over
// Sites chooses each partition's replica set (the top-RF sites by
// weight; the top-ranked one is the owner, holding the partition's
// primary copy for Immediate Updates).
type Map struct {
	version uint64
	parts   int
	rf      int
	sites   []wire.SiteID   // sorted, deduplicated
	table   [][]wire.SiteID // partition -> replicas, owner first
	hosted  map[wire.SiteID][]int
}

// New builds a version-1 map: parts virtual partitions over sites,
// each replicated on rf of them.
func New(sites []wire.SiteID, parts, rf int) (*Map, error) {
	return NewAt(1, sites, parts, rf)
}

// NewAt builds a map carrying an explicit version (>= 1). Sites
// receiving a redirect rebuild the sender's map with this constructor;
// the assignment is a pure function of (sites, parts, rf), so equal
// inputs yield equal routing everywhere.
func NewAt(version uint64, sites []wire.SiteID, parts, rf int) (*Map, error) {
	if version == 0 {
		return nil, fmt.Errorf("partition: version must be >= 1")
	}
	if parts < 1 {
		return nil, fmt.Errorf("partition: need >= 1 partition, got %d", parts)
	}
	sorted := append([]wire.SiteID(nil), sites...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			uniq = append(uniq, s)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("partition: need >= 1 site")
	}
	if rf < 1 || rf > len(uniq) {
		return nil, fmt.Errorf("partition: replication factor %d outside [1, %d sites]", rf, len(uniq))
	}
	m := &Map{
		version: version,
		parts:   parts,
		rf:      rf,
		sites:   uniq,
		table:   make([][]wire.SiteID, parts),
		hosted:  make(map[wire.SiteID][]int, len(uniq)),
	}
	type ranked struct {
		site   wire.SiteID
		weight uint64
	}
	ranks := make([]ranked, len(uniq))
	for p := 0; p < parts; p++ {
		for i, s := range uniq {
			ranks[i] = ranked{site: s, weight: weight(p, s)}
		}
		// Highest weight first; the site id breaks (astronomically
		// unlikely) ties so the order is total and deterministic.
		sort.Slice(ranks, func(i, j int) bool {
			if ranks[i].weight != ranks[j].weight {
				return ranks[i].weight > ranks[j].weight
			}
			return ranks[i].site < ranks[j].site
		})
		replicas := make([]wire.SiteID, rf)
		for i := 0; i < rf; i++ {
			replicas[i] = ranks[i].site
			m.hosted[ranks[i].site] = append(m.hosted[ranks[i].site], p)
		}
		m.table[p] = replicas
	}
	return m, nil
}

// weight is the rendezvous score of (partition, site): a splitmix64
// finalization over both, so each pair's rank is independent.
func weight(p int, s wire.SiteID) uint64 {
	z := uint64(p)*0x9E3779B97F4A7C15 ^ (uint64(s)+1)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fnv1a is the 64-bit FNV-1a hash of key.
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// Version returns the map's version.
func (m *Map) Version() uint64 { return m.version }

// Parts returns the number of virtual partitions.
func (m *Map) Parts() int { return m.parts }

// RF returns the replication factor.
func (m *Map) RF() int { return m.rf }

// Sites returns the member sites (sorted; callers must not mutate).
func (m *Map) Sites() []wire.SiteID { return m.sites }

// PartitionOf maps key to its partition.
func (m *Map) PartitionOf(key string) int {
	return int(fnv1a(key) % uint64(m.parts))
}

// Replicas returns partition p's replica set, owner first (callers must
// not mutate).
func (m *Map) Replicas(p int) []wire.SiteID { return m.table[p] }

// Owner returns the site holding partition p's primary copy.
func (m *Map) Owner(p int) wire.SiteID { return m.table[p][0] }

// OwnerOf returns the owner of key's partition.
func (m *Map) OwnerOf(key string) wire.SiteID { return m.Owner(m.PartitionOf(key)) }

// ReplicasOf returns the replica set of key's partition, owner first.
func (m *Map) ReplicasOf(key string) []wire.SiteID { return m.table[m.PartitionOf(key)] }

// IsReplica reports whether site hosts partition p.
func (m *Map) IsReplica(p int, site wire.SiteID) bool {
	for _, s := range m.table[p] {
		if s == site {
			return true
		}
	}
	return false
}

// HostsKey reports whether site hosts key's partition.
func (m *Map) HostsKey(site wire.SiteID, key string) bool {
	return m.IsReplica(m.PartitionOf(key), site)
}

// Hosted returns the partitions site hosts, ascending (callers must not
// mutate). A site outside the map hosts nothing.
func (m *Map) Hosted(site wire.SiteID) []int { return m.hosted[site] }

// PeersFor returns key's replica set with self removed — the candidate
// set a hosting site's accelerator gathers AV from and the participant
// list for Immediate Updates.
func (m *Map) PeersFor(self wire.SiteID, key string) []wire.SiteID {
	reps := m.ReplicasOf(key)
	out := make([]wire.SiteID, 0, len(reps)-1)
	for _, s := range reps {
		if s != self {
			out = append(out, s)
		}
	}
	return out
}

// WithSites derives the next version of the map over a new member set
// (a site joined or left), keeping Parts and RF. Rendezvous hashing
// guarantees the minimal-disruption property the router's remap tests
// pin down: a partition's replica set changes iff the set difference
// touches its top-RF ranking.
func (m *Map) WithSites(sites []wire.SiteID) (*Map, error) {
	return NewAt(m.version+1, sites, m.parts, m.rf)
}
