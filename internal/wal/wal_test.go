package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, dir
}

func collect(t *testing.T, l *Log, from uint64) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	err := l.Replay(from, func(lsn uint64, p []byte) error {
		got[lsn] = append([]byte(nil), p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendAssignsDenseLSNs(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	for i := 1; i <= 10; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if l.NextLSN() != 11 {
		t.Fatalf("NextLSN = %d", l.NextLSN())
	}
}

func TestReplayReturnsWrites(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	want := map[uint64][]byte{}
	for i := 1; i <= 50; i++ {
		p := []byte(fmt.Sprintf("payload %d", i))
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		want[lsn] = p
	}
	got := collect(t, l, 1)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for lsn, p := range want {
		if !bytes.Equal(got[lsn], p) {
			t.Fatalf("lsn %d: %q != %q", lsn, got[lsn], p)
		}
	}
}

func TestReplayFromOffset(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	for i := 1; i <= 20; i++ {
		l.Append([]byte{byte(i)})
	}
	got := collect(t, l, 15)
	if len(got) != 6 {
		t.Fatalf("got %d records from LSN 15, want 6", len(got))
	}
	if _, ok := got[14]; ok {
		t.Fatal("record below `from` replayed")
	}
}

func TestEmptyPayload(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 1)
	if len(got) != 1 || len(got[1]) != 0 {
		t.Fatalf("empty payload mishandled: %v", got)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		l.Append([]byte("x"))
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	lsn, err := l2.Append([]byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 8 {
		t.Fatalf("lsn after reopen = %d, want 8", lsn)
	}
	if got := collect(t, l2, 1); len(got) != 8 {
		t.Fatalf("replay after reopen got %d records", len(got))
	}
}

func TestSegmentRotationAndReplay(t *testing.T) {
	l, dir := openTemp(t, Options{SegmentMaxBytes: 128})
	defer l.Close()
	const n = 100
	for i := 1; i <= n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record number %03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) < 3 {
		t.Fatalf("expected multiple segments, got %d files", len(entries))
	}
	got := collect(t, l, 1)
	if len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}
	if string(got[37]) != "record number 037" {
		t.Fatalf("record 37 = %q", got[37])
	}
}

func TestTruncateBeforeDropsWholeSegments(t *testing.T) {
	l, dir := openTemp(t, Options{SegmentMaxBytes: 100})
	defer l.Close()
	for i := 1; i <= 60; i++ {
		l.Append([]byte(fmt.Sprintf("rec %04d", i)))
	}
	before, _ := os.ReadDir(dir)
	if err := l.TruncateBefore(40); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadDir(dir)
	if len(after) >= len(before) {
		t.Fatalf("truncate removed nothing: %d -> %d segments", len(before), len(after))
	}
	if l.FirstLSN() <= 1 {
		t.Fatalf("FirstLSN = %d, want > 1", l.FirstLSN())
	}
	if l.FirstLSN() > 40 {
		t.Fatalf("FirstLSN = %d overshoots 40", l.FirstLSN())
	}
	// Everything >= 40 must still replay.
	got := collect(t, l, 40)
	if len(got) != 21 {
		t.Fatalf("got %d records >= 40, want 21", len(got))
	}
}

func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		l.Append([]byte("intact record"))
	}
	l.Close()
	// Corrupt the tail: chop bytes off the last record.
	segs, _ := os.ReadDir(dir)
	path := filepath.Join(dir, segs[len(segs)-1].Name())
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2, 1)
	if len(got) != 4 {
		t.Fatalf("recovered %d records, want 4 (torn 5th dropped)", len(got))
	}
	// The torn record's LSN is reused.
	lsn, err := l2.Append([]byte("rewritten"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("lsn = %d, want 5", lsn)
	}
}

func TestCorruptTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	for i := 0; i < 3; i++ {
		l.Append([]byte("some payload data"))
	}
	l.Close()
	segs, _ := os.ReadDir(dir)
	path := filepath.Join(dir, segs[0].Name())
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF // flip a bit in the last record's payload
	os.WriteFile(path, data, 0o644)
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 1); len(got) != 2 {
		t.Fatalf("recovered %d, want 2 (corrupt 3rd dropped)", len(got))
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	l, _ := openTemp(t, Options{})
	l.Close()
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v", err)
	}
}

func TestQuickReplayEqualsHistory(t *testing.T) {
	f := func(payloads [][]byte) bool {
		dir, err := os.MkdirTemp("", "walq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l, err := Open(dir, Options{SegmentMaxBytes: 64, NoSync: true})
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if _, err := l.Append(p); err != nil {
				return false
			}
		}
		l.Close()
		l2, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		defer l2.Close()
		i := 0
		err = l2.Replay(1, func(lsn uint64, p []byte) error {
			if lsn != uint64(i+1) || !bytes.Equal(p, payloads[i]) {
				return fmt.Errorf("mismatch at %d", i)
			}
			i++
			return nil
		})
		return err == nil && i == len(payloads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, _ := openTemp(t, Options{NoSync: true})
	defer l.Close()
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				l.Append([]byte("concurrent"))
			}
			done <- true
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := collect(t, l, 1); len(got) != 400 {
		t.Fatalf("got %d records, want 400", len(got))
	}
}

func BenchmarkAppendNoSync(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSyncEvery100(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("y"), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
