package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"avdb/internal/metrics"
)

// frame encodes one record exactly as the log writes it.
func frame(payload string) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE([]byte(payload)))
	return append(hdr[:], payload...)
}

// lastSegPath returns the path of the highest-numbered segment.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), segSuffix) {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	last := segs[0]
	for _, s := range segs[1:] {
		if s > last {
			last = s
		}
	}
	return filepath.Join(dir, last)
}

func TestGroupCommitSingleFsyncCoversBatch(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	const n = 100
	var last uint64
	for i := 0; i < n; i++ {
		lsn, err := l.Append([]byte("batched record"))
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if d := l.DurableLSN(); d != 0 {
		t.Fatalf("DurableLSN before any sync = %d, want 0", d)
	}
	if err := l.SyncTo(last); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if got := st.Fsyncs.Load(); got != 1 {
		t.Fatalf("Fsyncs = %d, want 1 (one group commit for %d records)", got, n)
	}
	if got := st.RecordsSynced.Load(); got != n {
		t.Fatalf("RecordsSynced = %d, want %d", got, n)
	}
	if got := st.SyncRounds.Load(); got != 1 {
		t.Fatalf("SyncRounds = %d, want 1", got)
	}
	if d := l.DurableLSN(); d != last {
		t.Fatalf("DurableLSN = %d, want %d", d, last)
	}
	// A covered SyncTo is free: no new round, no new fsync.
	if err := l.SyncTo(1); err != nil {
		t.Fatal(err)
	}
	if got := st.Fsyncs.Load(); got != 1 {
		t.Fatalf("covered SyncTo issued an fsync (total %d)", got)
	}
}

func TestGroupSizeHistogramObserves(t *testing.T) {
	stats := &Stats{GroupSize: metrics.NewHistogram(), SyncWait: metrics.NewHistogram()}
	l, _ := openTemp(t, Options{Stats: stats})
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if stats.GroupSize.Count() != 1 {
		t.Fatalf("GroupSize samples = %d, want 1", stats.GroupSize.Count())
	}
	if got := stats.GroupSize.Max(); got != time.Duration(10) {
		t.Fatalf("GroupSize sample = %d, want 10", got)
	}
	if stats.SyncWait.Count() == 0 {
		t.Fatal("SyncWait recorded nothing")
	}
}

func TestConcurrentSyncToSharesFsyncs(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn, err := l.Append([]byte("durable op"))
				if err != nil {
					errs <- err
					return
				}
				if err := l.SyncTo(lsn); err != nil {
					errs <- err
					return
				}
				if l.DurableLSN() < lsn {
					errs <- fmt.Errorf("SyncTo(%d) returned with DurableLSN %d", lsn, l.DurableLSN())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := int64(goroutines * perG)
	st := l.Stats()
	if got := st.RecordsSynced.Load(); got != total {
		t.Fatalf("RecordsSynced = %d, want %d", got, total)
	}
	if l.DurableLSN() != uint64(total) {
		t.Fatalf("DurableLSN = %d, want %d", l.DurableLSN(), total)
	}
	// The whole point: concurrent waiters share fsyncs. Requiring every
	// op to have paid its own would mean 400 perfectly serialized rounds.
	if got := st.Fsyncs.Load(); got >= total {
		t.Fatalf("Fsyncs = %d for %d ops: group commit amortized nothing", got, total)
	}
	t.Logf("%d ops, %d fsyncs (%.2f fsyncs/op)", total, st.Fsyncs.Load(),
		float64(st.Fsyncs.Load())/float64(total))
}

func TestSyncToUnappendedLSNErrors(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	for i := 0; i < 3; i++ {
		l.Append([]byte("x"))
	}
	err := l.SyncTo(99)
	if err == nil {
		t.Fatal("SyncTo beyond the appended tail succeeded")
	}
	if !strings.Contains(err.Error(), "highest appended LSN is 3") {
		t.Fatalf("error = %v", err)
	}
	// The log is still usable afterwards.
	if err := l.SyncTo(3); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSyncDelayStillCommits(t *testing.T) {
	l, _ := openTemp(t, Options{MaxSyncDelay: time.Millisecond})
	defer l.Close()
	lsn, err := l.Append([]byte("delayed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() != lsn {
		t.Fatalf("DurableLSN = %d, want %d", l.DurableLSN(), lsn)
	}
}

// TestCrashDropsUnsyncedBufferedTail models a crash inside a
// group-commit window: records appended but never covered by a round
// exist only in the log's buffer, so recovery must come back with
// exactly the durable prefix.
func TestCrashDropsUnsyncedBufferedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("durable-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SyncTo(5); err != nil {
		t.Fatal(err)
	}
	for i := 6; i <= 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("buffered-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon l without Close — the buffered tail is never
	// flushed, exactly like losing power before the next group commit.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 1)
	if len(got) != 5 {
		t.Fatalf("recovered %d records, want the 5 durable ones", len(got))
	}
	if !bytes.Equal(got[5], []byte("durable-5")) {
		t.Fatalf("record 5 = %q", got[5])
	}
	if l2.DurableLSN() != 5 || l2.NextLSN() != 6 {
		t.Fatalf("DurableLSN=%d NextLSN=%d after recovery", l2.DurableLSN(), l2.NextLSN())
	}
}

// TestCrashTornMidGroupCommitBatch simulates the disk dying partway
// through a group-commit flush: one whole record of the batch made it,
// the next is torn. Recovery replays the durable prefix plus the intact
// part of the batch and drops the torn suffix.
func TestCrashTornMidGroupCommitBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		l.Append([]byte("pre-batch"))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Hand-write a torn batch onto the tail: record 4 complete, record 5
	// cut off mid-payload (the single Write of a two-record batch was
	// interrupted).
	batch := frame("batch record 4")
	torn := frame("batch record 5 never finished")
	batch = append(batch, torn[:len(torn)-7]...)
	f, err := os.OpenFile(lastSegPath(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(batch); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// l is abandoned (crashed); recover from disk.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 1)
	if len(got) != 4 {
		t.Fatalf("recovered %d records, want 4 (3 pre-batch + 1 intact from batch)", len(got))
	}
	if !bytes.Equal(got[4], []byte("batch record 4")) {
		t.Fatalf("record 4 = %q", got[4])
	}
	// The torn record's LSN is reissued.
	lsn, err := l2.Append([]byte("rewritten"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("next lsn = %d, want 5", lsn)
	}
}

// TestTruncateBeforeVsBufferedAppends pins the invariant that buffered
// (not yet flushed) records always live in the current segment, which
// TruncateBefore never drops.
func TestTruncateBeforeVsBufferedAppends(t *testing.T) {
	l, _ := openTemp(t, Options{SegmentMaxBytes: 64})
	defer l.Close()
	for i := 1; i <= 30; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec %04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	// Buffered, unsynced appends; truncation's contract ("everything
	// >= lsn is still present") must hold for them too even though they
	// have not been flushed, let alone fsynced.
	for i := 31; i <= 40; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec %04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateBefore(35); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 35)
	for i := uint64(35); i <= 40; i++ {
		want := fmt.Sprintf("rec %04d", i)
		if string(got[i]) != want {
			t.Fatalf("record %d = %q, want %q (buffered append lost to truncation)", i, got[i], want)
		}
	}
	if err := l.SyncTo(40); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() != 40 {
		t.Fatalf("DurableLSN = %d, want 40", l.DurableLSN())
	}
}

// TestTruncateConcurrentWithGroupCommit churns truncation against
// appends and group commits for race coverage.
func TestTruncateConcurrentWithGroupCommit(t *testing.T) {
	l, _ := openTemp(t, Options{SegmentMaxBytes: 64})
	defer l.Close()
	const goroutines = 4
	const perG = 50
	stop := make(chan struct{})
	truncDone := make(chan struct{})
	go func() {
		defer close(truncDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = l.TruncateBefore(l.DurableLSN())
			}
		}
	}()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var appendErr error
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn, err := l.Append([]byte("churn record"))
				if err == nil {
					err = l.SyncTo(lsn)
				}
				if err != nil {
					mu.Lock()
					appendErr = err
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-truncDone
	if appendErr != nil {
		t.Fatal(appendErr)
	}
	if l.DurableLSN() != goroutines*perG {
		t.Fatalf("DurableLSN = %d, want %d", l.DurableLSN(), goroutines*perG)
	}
}

func TestPreallocatedSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// A stale staging file from a "crash" must not break Open.
	if err := os.WriteFile(filepath.Join(dir, preallocName), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{SegmentMaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, preallocName)); !os.IsNotExist(err) {
		t.Fatal("stale wal-next.tmp survived Open")
	}
	const n = 200
	for i := 1; i <= n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("prealloc record %04d", i))); err != nil {
			t.Fatal(err)
		}
		if i%25 == 0 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l, 1); len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close waits for the prealloc goroutine and removes its staging
	// file; only real segments may remain.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), segSuffix) {
			t.Fatalf("unexpected leftover file %q after Close", e.Name())
		}
	}
	l2, err := Open(dir, Options{SegmentMaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 1); len(got) != n {
		t.Fatalf("replayed %d records after reopen, want %d", len(got), n)
	}
}
