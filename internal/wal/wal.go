// Package wal implements a segmented write-ahead log: the durability
// substrate under each site's local database. Records are opaque byte
// payloads framed with a length and a CRC-32 checksum; the log assigns
// dense, monotonically increasing LSNs starting at 1.
//
// The log is split into segment files named wal-<firstLSN>.seg so that
// TruncateBefore (after a storage checkpoint) can drop whole files, and
// so that recovery knows each segment's starting LSN without an index.
// A torn final record (from a crash mid-append) is tolerated at the tail
// of the last segment only; corruption anywhere else is an error.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Log errors.
var (
	ErrClosed    = errors.New("wal: log closed")
	ErrCorrupt   = errors.New("wal: corrupt record")
	ErrShortRead = errors.New("wal: torn record at tail")
)

const (
	headerSize        = 8 // u32 length + u32 crc
	defaultSegmentMax = 4 << 20
	segPrefix         = "wal-"
	segSuffix         = ".seg"
)

// Options tune a Log.
type Options struct {
	// SegmentMaxBytes rotates to a new segment once the current one
	// exceeds this size (default 4 MiB).
	SegmentMaxBytes int64
	// NoSync skips fsync on Sync calls. Experiments that only need the
	// code path (not durability against power loss) set this for speed.
	NoSync bool
}

// Log is a segmented write-ahead log. It is safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	closed   bool
	nextLSN  uint64 // LSN the next Append will receive
	firstLSN uint64 // smallest LSN still present (1 if never truncated)
	cur      *os.File
	curFirst uint64 // first LSN of the current segment
	curSize  int64
}

// Open opens (or creates) a log in dir.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = defaultSegmentMax
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, nextLSN: 1, firstLSN: 1}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.rotateLocked(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	l.firstLSN = segs[0].first
	// Scan the last segment to find the next LSN and truncate a torn tail.
	last := segs[len(segs)-1]
	n, validBytes, err := scanSegment(last.path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.cur = f
	l.curFirst = last.first
	l.curSize = validBytes
	l.nextLSN = last.first + n
	// Count records in earlier segments to sanity-check continuity.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].first <= segs[i].first {
			return nil, fmt.Errorf("wal: segment order corrupt: %d then %d", segs[i].first, segs[i+1].first)
		}
	}
	return l, nil
}

type segInfo struct {
	first uint64
	path  string
}

// segments lists segment files sorted by first LSN.
func (l *Log) segments() ([]segInfo, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(numStr, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{first: first, path: filepath.Join(l.dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

// rotateLocked closes the current segment and starts a new one whose
// first record will carry LSN first. Caller holds l.mu.
func (l *Log) rotateLocked(first uint64) error {
	if l.cur != nil {
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(first)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.cur = f
	l.curFirst = first
	l.curSize = 0
	return nil
}

// Append writes payload as the next record and returns its LSN. The
// record is buffered by the OS; call Sync to force it to stable storage.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.curSize >= l.opts.SegmentMaxBytes {
		if err := l.rotateLocked(l.nextLSN); err != nil {
			return 0, err
		}
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.cur.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.cur.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.curSize += int64(headerSize + len(payload))
	lsn := l.nextLSN
	l.nextLSN++
	return lsn, nil
}

// Sync flushes the current segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.opts.NoSync {
		return nil
	}
	return l.cur.Sync()
}

// NextLSN returns the LSN the next Append will be assigned.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// FirstLSN returns the smallest LSN still retained.
func (l *Log) FirstLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstLSN
}

// Replay calls fn for every record with LSN >= from, in order. fn
// returning an error stops the replay and returns that error.
func (l *Log) Replay(from uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// Flush buffered writes so the read-side sees them.
	segs, err := l.segments()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	for i, seg := range segs {
		lastSeg := i == len(segs)-1
		err := replaySegment(seg.path, seg.first, lastSeg, from, fn)
		if err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's records through fn.
func replaySegment(path string, first uint64, tolerateTorn bool, from uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	lsn := first
	var hdr [headerSize]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			if tolerateTorn {
				return nil
			}
			return ErrShortRead
		}
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if tolerateTorn && (err == io.EOF || err == io.ErrUnexpectedEOF) {
				return nil
			}
			return ErrShortRead
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if tolerateTorn {
				return nil // torn write inside the final record
			}
			return ErrCorrupt
		}
		if lsn >= from {
			if err := fn(lsn, payload); err != nil {
				return err
			}
		}
		lsn++
	}
}

// scanSegment validates a segment and returns the number of intact
// records and the byte offset after the last intact record.
func scanSegment(path string) (records uint64, validBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return records, validBytes, nil
		}
		if err == io.ErrUnexpectedEOF {
			return records, validBytes, nil // torn header
		}
		if err != nil {
			return 0, 0, fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return records, validBytes, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, validBytes, nil // torn/corrupt tail record
		}
		records++
		validBytes += int64(headerSize) + int64(length)
	}
}

// TruncateBefore drops whole segments whose records all have LSN < lsn.
// It never splits a segment, so some records below lsn may survive; the
// caller (storage checkpointing) only relies on "everything >= lsn is
// still present".
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		// A segment is fully below lsn iff the next segment starts at or
		// below lsn (segment i spans [first_i, first_{i+1}-1]).
		if segs[i+1].first <= lsn {
			if err := os.Remove(segs[i].path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.firstLSN = segs[i+1].first
		} else {
			break
		}
	}
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if !l.opts.NoSync {
		if err := l.cur.Sync(); err != nil {
			l.cur.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	return l.cur.Close()
}
