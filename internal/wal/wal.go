// Package wal implements a segmented write-ahead log: the durability
// substrate under each site's local database. Records are opaque byte
// payloads framed with a length and a CRC-32 checksum; the log assigns
// dense, monotonically increasing LSNs starting at 1.
//
// The log is split into segment files named wal-<firstLSN>.seg so that
// TruncateBefore (after a storage checkpoint) can drop whole files, and
// so that recovery knows each segment's starting LSN without an index.
// A torn final record (from a crash mid-append) is tolerated at the tail
// of the last segment only; corruption anywhere else is an error.
//
// Durability is pipelined as group commit. Append only encodes the
// record into an in-memory buffer (at most one write syscall per record,
// usually zero); SyncTo(lsn) parks the caller until a group-commit round
// has flushed the buffer and fsynced once, covering every record
// appended before the flush. Concurrent waiters share that single fsync:
// one leader at a time runs a round (serialized by syncMu), publishes
// the new durable LSN, and every waiter at or below it returns without
// touching the disk. DurableLSN reports the published watermark.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/metrics"
)

// Log errors.
var (
	ErrClosed    = errors.New("wal: log closed")
	ErrCorrupt   = errors.New("wal: corrupt record")
	ErrShortRead = errors.New("wal: torn record at tail")
)

const (
	headerSize        = 8 // u32 length + u32 crc
	defaultSegmentMax = 4 << 20
	segPrefix         = "wal-"
	segSuffix         = ".seg"
	// preallocName is the staging name for the background-created next
	// segment; it is renamed into place at rotation. A leftover tmp from
	// a crash is removed at Open.
	preallocName = "wal-next.tmp"
	// flushThreshold bounds the append buffer: once it holds this many
	// bytes Append flushes it to the OS (no fsync) so memory stays flat
	// under sync-free workloads.
	flushThreshold = 1 << 20
)

// Stats counts the durability work a Log performs. The atomic counters
// are always maintained; the histograms are observed only when non-nil
// (they retain every sample, so long-lived processes opt in explicitly,
// typically when the admin/observability server is enabled).
type Stats struct {
	// Fsyncs counts physical fsync syscalls issued.
	Fsyncs atomic.Int64
	// SyncRounds counts group-commit rounds that advanced the durable
	// LSN (each round is at most one fsync of the current segment, plus
	// one per rotated-away segment with unsynced writes).
	SyncRounds atomic.Int64
	// RecordsSynced totals records made durable across all rounds;
	// RecordsSynced/SyncRounds is the mean group-commit batch size.
	RecordsSynced atomic.Int64
	// GroupSize, when non-nil, observes the per-round batch size
	// (records per round, stored as a unitless time.Duration count).
	GroupSize *metrics.Histogram
	// SyncWait, when non-nil, observes per-caller wall time spent inside
	// SyncTo waiting for durability.
	SyncWait *metrics.Histogram
}

// Options tune a Log.
type Options struct {
	// SegmentMaxBytes rotates to a new segment once the current one
	// exceeds this size (default 4 MiB).
	SegmentMaxBytes int64
	// NoSync skips fsync in group-commit rounds: SyncTo still flushes
	// the buffer to the OS and publishes the durable LSN, but durability
	// against power loss is waived. Experiments that only need the code
	// path set this for speed.
	NoSync bool
	// MaxSyncDelay, when positive, stalls each group-commit leader by
	// this duration before flushing, widening batches at the cost of
	// per-op latency. Default 0: the leader flushes immediately and
	// batching comes only from waiters that pile up during the fsync.
	MaxSyncDelay time.Duration
	// Stats, when non-nil, receives the log's durability counters —
	// pass a shared instance to aggregate across logs. Nil allocates a
	// private one, reachable via (*Log).Stats().
	Stats *Stats
}

// Log is a segmented write-ahead log. It is safe for concurrent use.
type Log struct {
	dir   string
	opts  Options
	stats *Stats

	// durable is the published group-commit watermark: every record with
	// LSN <= durable has been flushed and (unless NoSync) fsynced. Only
	// a group-commit leader or Close stores it, both under syncMu.
	durable atomic.Uint64

	// syncMu serializes group-commit rounds (leader election): whoever
	// holds it runs the flush+fsync for everyone parked behind it.
	// Lock order: syncMu before mu, never the reverse.
	syncMu sync.Mutex

	mu       sync.Mutex
	closed   bool
	nextLSN  uint64 // LSN the next Append will receive
	firstLSN uint64 // smallest LSN still present (1 if never truncated)
	cur      *os.File
	curFirst uint64     // first LSN of the current segment
	curSize  int64      // bytes in the current segment, written + buffered
	buf      []byte     // encoded records not yet written to cur
	written  uint64     // highest LSN flushed to the OS
	dirty    []*os.File // rotated-away segments with writes not yet fsynced
	failed   error      // sticky: a write/fsync failed, durability unknown

	prealloc     *os.File // background-created next segment, if ready
	preallocPath string
	preallocBusy bool
	preallocWG   sync.WaitGroup
}

// Open opens (or creates) a log in dir.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = defaultSegmentMax
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// A crash may leave a staged next-segment file behind; it holds no
	// records, so drop it rather than let it shadow a future prealloc.
	_ = os.Remove(filepath.Join(dir, preallocName))
	l := &Log{dir: dir, opts: opts, stats: opts.Stats, nextLSN: 1, firstLSN: 1}
	if l.stats == nil {
		l.stats = &Stats{}
	}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.rotateLocked(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	l.firstLSN = segs[0].first
	// Scan the last segment to find the next LSN and truncate a torn tail.
	last := segs[len(segs)-1]
	n, validBytes, err := scanSegment(last.path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.cur = f
	l.curFirst = last.first
	l.curSize = validBytes
	l.nextLSN = last.first + n
	l.written = l.nextLSN - 1
	l.durable.Store(l.written) // recovered records are on stable storage
	// Count records in earlier segments to sanity-check continuity.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].first <= segs[i].first {
			return nil, fmt.Errorf("wal: segment order corrupt: %d then %d", segs[i].first, segs[i+1].first)
		}
	}
	return l, nil
}

type segInfo struct {
	first uint64
	path  string
}

// segments lists segment files sorted by first LSN.
func (l *Log) segments() ([]segInfo, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(numStr, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{first: first, path: filepath.Join(l.dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

// flushLocked writes the append buffer to the current segment with a
// single syscall. Caller holds l.mu.
func (l *Log) flushLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.cur.Write(l.buf); err != nil {
		l.failed = fmt.Errorf("wal: %w", err)
		return l.failed
	}
	l.buf = l.buf[:0]
	l.written = l.nextLSN - 1
	return nil
}

// rotateLocked flushes buffered records into the current segment, parks
// it on the dirty list (the next group-commit round fsyncs and closes
// it), and starts a new segment whose first record will carry LSN
// first. A background-preallocated file is renamed into place when
// available so rotation does not stall appenders on file creation.
// Caller holds l.mu.
func (l *Log) rotateLocked(first uint64) error {
	if l.cur != nil {
		if err := l.flushLocked(); err != nil {
			return err
		}
		l.dirty = append(l.dirty, l.cur)
	}
	path := filepath.Join(l.dir, segName(first))
	if l.prealloc != nil {
		f, staged := l.prealloc, l.preallocPath
		l.prealloc, l.preallocPath = nil, ""
		if err := os.Rename(staged, path); err == nil {
			l.cur = f
			l.curFirst = first
			l.curSize = 0
			return nil
		}
		f.Close()
		os.Remove(staged)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.cur = f
	l.curFirst = first
	l.curSize = 0
	return nil
}

// maybePreallocLocked stages the next segment file in the background
// once the current segment is half full. Caller holds l.mu.
func (l *Log) maybePreallocLocked() {
	if l.preallocBusy || l.prealloc != nil || l.curSize < l.opts.SegmentMaxBytes/2 {
		return
	}
	l.preallocBusy = true
	l.preallocWG.Add(1)
	go func() {
		defer l.preallocWG.Done()
		path := filepath.Join(l.dir, preallocName)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR|os.O_APPEND, 0o644)
		l.mu.Lock()
		defer l.mu.Unlock()
		l.preallocBusy = false
		if err != nil {
			return // rotation falls back to creating the file inline
		}
		if l.closed || l.prealloc != nil {
			f.Close()
			os.Remove(path)
			return
		}
		l.prealloc = f
		l.preallocPath = path
	}()
}

// Append encodes payload as the next record into the log's buffer and
// returns its LSN. The record reaches the OS on the next flush (buffer
// cap, rotation, Replay, or a group-commit round) and stable storage
// once a SyncTo/Sync round covers it; an effect that must not escape
// the site before it is durable should wait on SyncTo(lsn).
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, l.failed
	}
	if l.curSize >= l.opts.SegmentMaxBytes {
		if err := l.rotateLocked(l.nextLSN); err != nil {
			return 0, err
		}
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.curSize += int64(headerSize + len(payload))
	lsn := l.nextLSN
	l.nextLSN++
	if len(l.buf) >= flushThreshold {
		if err := l.flushLocked(); err != nil {
			return 0, err
		}
	}
	l.maybePreallocLocked()
	return lsn, nil
}

// DurableLSN returns the highest LSN known to be on stable storage
// (or flushed, under NoSync). It only increases.
func (l *Log) DurableLSN() uint64 {
	return l.durable.Load()
}

// Stats returns the log's durability counters.
func (l *Log) Stats() *Stats {
	return l.stats
}

// SyncTo blocks until every record with LSN <= lsn is durable. Many
// concurrent callers share one fsync: the first to acquire syncMu runs
// a group-commit round for everyone parked behind it, and waiters whose
// LSN the published watermark already covers return immediately.
// lsn 0 (no covering record) returns nil at once.
func (l *Log) SyncTo(lsn uint64) error {
	if lsn == 0 || l.durable.Load() >= lsn {
		return nil
	}
	var start time.Time
	if l.stats.SyncWait != nil {
		start = time.Now()
	}
	for l.durable.Load() < lsn {
		l.syncMu.Lock()
		if l.durable.Load() >= lsn {
			// A leader's round covered us while we were parked.
			l.syncMu.Unlock()
			break
		}
		err := l.syncRoundLeader()
		l.syncMu.Unlock()
		if err != nil {
			return err
		}
		if l.durable.Load() >= lsn {
			break
		}
		// The round completed without covering lsn, so lsn was never
		// appended (or was lost to recovery truncation): error out
		// rather than spin forever.
		l.mu.Lock()
		next := l.nextLSN
		l.mu.Unlock()
		if lsn >= next {
			return fmt.Errorf("wal: SyncTo(%d): highest appended LSN is %d", lsn, next-1)
		}
	}
	if l.stats.SyncWait != nil {
		l.stats.SyncWait.Observe(time.Since(start))
	}
	return nil
}

// syncRoundLeader runs one group-commit round: flush the append buffer,
// fsync (unless NoSync) every file carrying unsynced records, publish
// the new durable LSN. Caller holds l.syncMu.
func (l *Log) syncRoundLeader() error {
	if d := l.opts.MaxSyncDelay; d > 0 {
		time.Sleep(d) // widen the batch: appenders keep filling the buffer
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	target := l.written
	cur := l.cur
	dirty := l.dirty
	l.dirty = nil
	l.mu.Unlock()

	prev := l.durable.Load()
	if target <= prev && len(dirty) == 0 {
		return nil
	}
	if !l.opts.NoSync {
		// Rotated-away segments first: replay order must never show a
		// durable record whose predecessors are not.
		for _, f := range dirty {
			if err := f.Sync(); err != nil {
				return l.fail(err)
			}
			l.stats.Fsyncs.Add(1)
		}
		if target > prev {
			if err := cur.Sync(); err != nil {
				return l.fail(err)
			}
			l.stats.Fsyncs.Add(1)
		}
	}
	for _, f := range dirty {
		f.Close()
	}
	if target > prev {
		l.durable.Store(target)
		l.stats.SyncRounds.Add(1)
		l.stats.RecordsSynced.Add(int64(target - prev))
		if l.stats.GroupSize != nil {
			l.stats.GroupSize.Observe(time.Duration(target - prev))
		}
	}
	return nil
}

// fail records a sticky durability failure: once a flush or fsync has
// failed the on-disk suffix is unknowable, so the log refuses further
// appends and syncs instead of pretending.
func (l *Log) fail(err error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed == nil {
		l.failed = fmt.Errorf("wal: %w", err)
	}
	return l.failed
}

// Sync flushes everything appended so far to stable storage (one
// group-commit round covering the whole tail).
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	lsn := l.nextLSN - 1
	l.mu.Unlock()
	return l.SyncTo(lsn)
}

// NextLSN returns the LSN the next Append will be assigned.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// FirstLSN returns the smallest LSN still retained.
func (l *Log) FirstLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstLSN
}

// Replay calls fn for every record with LSN >= from, in order. fn
// returning an error stops the replay and returns that error.
func (l *Log) Replay(from uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// Flush buffered records so the read-side sees them.
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	segs, err := l.segments()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	for i, seg := range segs {
		lastSeg := i == len(segs)-1
		err := replaySegment(seg.path, seg.first, lastSeg, from, fn)
		if err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's records through fn.
func replaySegment(path string, first uint64, tolerateTorn bool, from uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	lsn := first
	var hdr [headerSize]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			if tolerateTorn {
				return nil
			}
			return ErrShortRead
		}
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if tolerateTorn && (err == io.EOF || err == io.ErrUnexpectedEOF) {
				return nil
			}
			return ErrShortRead
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if tolerateTorn {
				return nil // torn write inside the final record
			}
			return ErrCorrupt
		}
		if lsn >= from {
			if err := fn(lsn, payload); err != nil {
				return err
			}
		}
		lsn++
	}
}

// scanSegment validates a segment and returns the number of intact
// records and the byte offset after the last intact record.
func scanSegment(path string) (records uint64, validBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return records, validBytes, nil
		}
		if err == io.ErrUnexpectedEOF {
			return records, validBytes, nil // torn header
		}
		if err != nil {
			return 0, 0, fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return records, validBytes, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, validBytes, nil // torn/corrupt tail record
		}
		records++
		validBytes += int64(headerSize) + int64(length)
	}
}

// TruncateBefore drops whole segments whose records all have LSN < lsn.
// It never splits a segment, so some records below lsn may survive; the
// caller (storage checkpointing) only relies on "everything >= lsn is
// still present". Buffered appends always belong to the current segment
// (rotation flushes first), which is never dropped, so truncation and
// the group-commit pipeline cannot race over the same file's records —
// at worst a dirty rotated segment is unlinked here and fsynced by a
// leader afterwards, which is harmless.
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		// A segment is fully below lsn iff the next segment starts at or
		// below lsn (segment i spans [first_i, first_{i+1}-1]).
		if segs[i+1].first <= lsn {
			if err := os.Remove(segs[i].path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.firstLSN = segs[i+1].first
		} else {
			break
		}
	}
	return nil
}

// Close flushes, syncs, and closes the log. It takes the group-commit
// lock so it can never close a file out from under an in-flight round.
func (l *Log) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	flushErr := l.flushLocked()
	l.closed = true
	cur := l.cur
	dirty := l.dirty
	l.dirty = nil
	target := l.nextLSN - 1
	if l.prealloc != nil {
		l.prealloc.Close()
		os.Remove(l.preallocPath)
		l.prealloc, l.preallocPath = nil, ""
	}
	l.mu.Unlock()
	// The prealloc goroutine only touches l.mu; with closed set it will
	// discard its file. Wait so no tmp outlives Close.
	l.preallocWG.Wait()

	firstErr := flushErr
	for _, f := range dirty {
		if !l.opts.NoSync && firstErr == nil {
			if err := f.Sync(); err != nil {
				firstErr = fmt.Errorf("wal: %w", err)
			} else {
				l.stats.Fsyncs.Add(1)
			}
		}
		f.Close()
	}
	if !l.opts.NoSync && firstErr == nil {
		if err := cur.Sync(); err != nil {
			firstErr = fmt.Errorf("wal: %w", err)
		} else {
			l.stats.Fsyncs.Add(1)
		}
	}
	if err := cur.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("wal: %w", err)
	}
	if firstErr == nil {
		l.durable.Store(target) // under syncMu, like a leader round
	}
	return firstErr
}
