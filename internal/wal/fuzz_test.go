package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzSeg builds a seed segment from whole records.
func fuzzSeg(payloads ...string) []byte {
	var out []byte
	for _, p := range payloads {
		out = append(out, frame(p)...)
	}
	return out
}

// FuzzRecoverAppendReplay throws an arbitrary byte blob at recovery as
// the tail segment, then drives the buffered/group-commit append path
// over it. Whatever recovery salvages plus everything appended after it
// must replay exactly — no panics, no lost or duplicated LSNs. The
// tiny SegmentMaxBytes forces the appends to span several segment
// rotations (exercising the dirty-segment handoff and preallocation).
func FuzzRecoverAppendReplay(f *testing.F) {
	// Seed corpus: intact framings, records long enough that follow-up
	// appends rotate mid-stream, torn headers/payloads, and bit flips.
	f.Add([]byte{})
	f.Add(fuzzSeg("a"))
	f.Add(fuzzSeg("alpha", "beta", "gamma"))
	f.Add(fuzzSeg(strings.Repeat("x", 100)))                         // > one 64-byte segment on its own
	f.Add(fuzzSeg(strings.Repeat("r", 40), strings.Repeat("s", 40))) // records spanning a rotation boundary
	f.Add(fuzzSeg("ok")[:headerSize+1])                              // torn payload
	f.Add(fuzzSeg("ok", "torn")[:len(fuzzSeg("ok"))+3])              // torn header after intact record
	corrupt := fuzzSeg("intact", "flipped")
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{SegmentMaxBytes: 64, NoSync: true})
		if err != nil {
			// Recovery may reject garbage, but only with a real error.
			return
		}
		recovered := 0
		if err := l.Replay(1, func(lsn uint64, p []byte) error {
			recovered++
			if lsn != uint64(recovered) {
				return fmt.Errorf("replay lsn %d at position %d", lsn, recovered)
			}
			return nil
		}); err != nil {
			t.Fatalf("replay of recovered log: %v", err)
		}
		if next := l.NextLSN(); next != uint64(recovered)+1 {
			t.Fatalf("NextLSN %d after recovering %d records", next, recovered)
		}
		const extra = 20
		for i := 0; i < extra; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("appended record %02d spanning rotations", i))); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{SegmentMaxBytes: 64, NoSync: true})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		total := 0
		if err := l2.Replay(1, func(lsn uint64, p []byte) error {
			total++
			return nil
		}); err != nil {
			t.Fatalf("replay after reopen: %v", err)
		}
		if total != recovered+extra {
			t.Fatalf("replayed %d records, want %d recovered + %d appended", total, recovered, extra)
		}
	})
}
