package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"avdb/internal/core"
	"avdb/internal/twopc"
)

func bg() context.Context { return context.Background() }

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Sites == 0 {
		cfg.Sites = 3
	}
	if cfg.Items == 0 {
		cfg.Items = 4
	}
	if cfg.InitialAmount == 0 {
		cfg.InitialAmount = 900
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = 500 * time.Millisecond
	}
	if cfg.PrepareTimeout == 0 {
		cfg.PrepareTimeout = 500 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSeededStateAndAVSplit(t *testing.T) {
	c := newCluster(t, Config{Sites: 3, Items: 4, InitialAmount: 900})
	key := c.RegularKeys[0]
	for i := 0; i < 3; i++ {
		if v, err := c.Read(i, key); err != nil || v != 900 {
			t.Fatalf("site %d: %d, %v", i, v, err)
		}
		if av := c.Sites[i].AV().Avail(key); av != 300 {
			t.Fatalf("site %d AV = %d, want 300", i, av)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayLocalUpdateNoMessages(t *testing.T) {
	c := newCluster(t, Config{})
	key := c.RegularKeys[0]
	before := c.Registry.TotalMessages()
	res, err := c.Update(bg(), 1, key, -100) // within site 1's AV of 300
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != core.PathDelayLocal || res.Rounds != 0 {
		t.Fatalf("result = %+v", res)
	}
	if got := c.Registry.TotalMessages(); got != before {
		t.Fatalf("local delay update sent %d messages", got-before)
	}
	if v, _ := c.Read(1, key); v != 800 {
		t.Fatalf("local value = %d", v)
	}
	// Other sites have not seen it yet (lazy).
	if v, _ := c.Read(0, key); v != 900 {
		t.Fatalf("remote value = %d before flush", v)
	}
	if err := c.FlushAll(bg()); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.ConvergedValue(key); v != 800 {
		t.Fatalf("converged = %d", v)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayUpdateWithTransfer(t *testing.T) {
	c := newCluster(t, Config{})
	key := c.RegularKeys[0]
	// Site 1 holds 300; needs 500 -> must pull from peers.
	res, err := c.Update(bg(), 1, key, -500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != core.PathDelayTransfer {
		t.Fatalf("path = %v", res.Path)
	}
	if res.Rounds == 0 || res.Transferred < 200 {
		t.Fatalf("res = %+v", res)
	}
	if v, _ := c.Read(1, key); v != 400 {
		t.Fatalf("value = %d", v)
	}
	c.FlushAll(bg())
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Messages flowed and were attributed to the initiator, site 1.
	bySite := c.Registry.MessagesBySite()
	if bySite[1] == 0 {
		t.Fatalf("no messages attributed to initiator: %v", bySite)
	}
}

func TestIncrementRefillsAV(t *testing.T) {
	c := newCluster(t, Config{})
	key := c.RegularKeys[0]
	res, err := c.Update(bg(), 0, key, 250) // the maker restocks
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != core.PathDelayLocal {
		t.Fatalf("path = %v", res.Path)
	}
	if av := c.Sites[0].AV().Avail(key); av != 550 {
		t.Fatalf("maker AV = %d, want 300+250", av)
	}
	c.FlushAll(bg())
	if v, _ := c.ConvergedValue(key); v != 1150 {
		t.Fatalf("converged = %d", v)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsufficientAVFailsCleanly(t *testing.T) {
	c := newCluster(t, Config{Sites: 3, Items: 2, InitialAmount: 90})
	key := c.RegularKeys[0]
	// Global slack is 90; 200 can never be satisfied.
	_, err := c.Update(bg(), 2, key, -200)
	if !errors.Is(err, core.ErrInsufficientAV) {
		t.Fatalf("err = %v", err)
	}
	// Nothing changed, and the accumulated AV went back to the table
	// (possibly redistributed: the requester now holds what peers sent).
	c.FlushAll(bg())
	if v, _ := c.ConvergedValue(key); v != 90 {
		t.Fatalf("value mutated to %d", v)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A satisfiable update still works afterwards.
	if _, err := c.Update(bg(), 2, key, -80); err != nil {
		t.Fatalf("follow-up update: %v", err)
	}
	c.FlushAll(bg())
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestImmediateUpdatePath(t *testing.T) {
	c := newCluster(t, Config{Sites: 3, Items: 4, NonRegularFraction: 0.5, InitialAmount: 100})
	if len(c.NonRegularKeys) != 2 || len(c.RegularKeys) != 2 {
		t.Fatalf("classification: %d/%d", len(c.NonRegularKeys), len(c.RegularKeys))
	}
	key := c.NonRegularKeys[0]
	res, err := c.Update(bg(), 2, key, -40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != core.PathImmediate {
		t.Fatalf("path = %v", res.Path)
	}
	// Immediate: every site sees the new value at once, no flush needed.
	for i := 0; i < 3; i++ {
		if v, _ := c.Read(i, key); v != 60 {
			t.Fatalf("site %d = %d, want 60 immediately", i, v)
		}
	}
	// Validation failure propagates.
	if _, err := c.Update(bg(), 1, key, -100); !errors.Is(err, twopc.ErrAborted) {
		t.Fatalf("overdraft: %v", err)
	}
}

func TestPartitionDelayContinuesImmediateAborts(t *testing.T) {
	c := newCluster(t, Config{Sites: 3, Items: 4, NonRegularFraction: 0.25, InitialAmount: 900, CallTimeout: 300 * time.Millisecond})
	regular, nonRegular := c.RegularKeys[0], c.NonRegularKeys[0]
	c.Net.Isolate(2)

	// The isolated retailer keeps serving Delay Updates from its AV —
	// the paper's fault-tolerance claim.
	if _, err := c.Update(bg(), 2, regular, -200); err != nil {
		t.Fatalf("delay update during partition: %v", err)
	}
	// Immediate Updates need everyone: they abort.
	if _, err := c.Update(bg(), 2, nonRegular, -1); !errors.Is(err, twopc.ErrAborted) {
		t.Fatalf("immediate during partition: %v", err)
	}
	// And a Delay Update beyond local AV also fails (peers unreachable).
	if _, err := c.Update(bg(), 2, regular, -500); !errors.Is(err, core.ErrInsufficientAV) {
		t.Fatalf("transfer during partition: %v", err)
	}

	c.Net.Heal()
	if err := c.FlushAll(bg()); err != nil {
		t.Fatal(err)
	}
	if v, err := c.ConvergedValue(regular); err != nil || v != 700 {
		t.Fatalf("after heal: %d, %v", v, err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGossipInformsSelection(t *testing.T) {
	c := newCluster(t, Config{Sites: 3, Items: 1, InitialAmount: 900})
	key := c.RegularKeys[0]
	// First shortage forces site 1 to ask someone; replies teach it who
	// holds what.
	if _, err := c.Update(bg(), 1, key, -400); err != nil {
		t.Fatal(err)
	}
	v := c.Sites[1].Accelerator().View()
	known0, ok0 := v.Known(0, key)
	known2, ok2 := v.Known(2, key)
	if !ok0 && !ok2 {
		t.Fatal("view learned nothing from AV replies")
	}
	_ = known0
	_ = known2
}

func TestAVAllAtBase(t *testing.T) {
	c := newCluster(t, Config{Sites: 3, Items: 2, InitialAmount: 600, AVAllAtBase: true})
	key := c.RegularKeys[0]
	if av := c.Sites[0].AV().Avail(key); av != 600 {
		t.Fatalf("base AV = %d", av)
	}
	if av := c.Sites[1].AV().Avail(key); av != 0 {
		t.Fatalf("retailer AV = %d", av)
	}
	// A retailer's first decrement must fetch AV from the base.
	res, err := c.Update(bg(), 1, key, -50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != core.PathDelayTransfer {
		t.Fatalf("path = %v", res.Path)
	}
	c.FlushAll(bg())
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestManyUpdatesInvariantHolds(t *testing.T) {
	c := newCluster(t, Config{Sites: 3, Items: 3, InitialAmount: 3000, Seed: 11})
	for i := 0; i < 300; i++ {
		siteIdx := i % 3
		key := c.RegularKeys[i%len(c.RegularKeys)]
		var delta int64
		if siteIdx == 0 {
			delta = int64(1 + i%40) // maker restocks
		} else {
			delta = -int64(1 + i%25) // retailers sell
		}
		if _, err := c.Update(bg(), siteIdx, key, delta); err != nil {
			if errors.Is(err, core.ErrInsufficientAV) {
				continue // legitimate under heavy draw-down
			}
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if err := c.FlushAll(bg()); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBadConfigs(t *testing.T) {
	if _, err := New(Config{Sites: 0, Items: 1}); err == nil {
		t.Fatal("0 sites accepted")
	}
	if _, err := New(Config{Sites: 1, Items: 0}); err == nil {
		t.Fatal("0 items accepted")
	}
}

func TestSingleSiteCluster(t *testing.T) {
	c := newCluster(t, Config{Sites: 1, Items: 2, InitialAmount: 100})
	key := c.RegularKeys[0]
	if _, err := c.Update(bg(), 0, key, -100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update(bg(), 0, key, -1); !errors.Is(err, core.ErrInsufficientAV) {
		t.Fatalf("overdraft on single site: %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
