package cluster

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"avdb/internal/core"
	"avdb/internal/rng"
	"avdb/internal/transport"
	"avdb/internal/twopc"
	"avdb/internal/wire"
)

// expectedChaosErr reports whether err is a legitimate outcome under
// fault injection (as opposed to a correctness bug).
func expectedChaosErr(err error) bool {
	return errors.Is(err, core.ErrInsufficientAV) ||
		errors.Is(err, twopc.ErrAborted) ||
		errors.Is(err, twopc.ErrCompletionUnknown) ||
		errors.Is(err, transport.ErrUnreachable) ||
		errors.Is(err, transport.ErrTimeout)
}

// chaosRun drives random updates while randomly partitioning, crashing
// and healing sites, then heals everything and checks that every
// invariant still holds: replicas converge and no allowable volume was
// minted or destroyed.
func chaosRun(t *testing.T, seed uint64, steps int) error {
	t.Helper()
	c, err := New(Config{
		Sites:              4,
		Items:              5,
		InitialAmount:      4000,
		NonRegularFraction: 0.2,
		Seed:               seed,
		CallTimeout:        150 * time.Millisecond,
		LockTimeout:        150 * time.Millisecond,
		PrepareTimeout:     150 * time.Millisecond,
		RequestTimeout:     150 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	r := rng.New(seed)
	ctx := context.Background()
	allKeys := append(append([]string{}, c.RegularKeys...), c.NonRegularKeys...)
	crashed := map[int]bool{}

	for i := 0; i < steps; i++ {
		switch r.Intn(12) {
		case 0: // partition a random pair
			a, b := r.Intn(4), r.Intn(4)
			if a != b {
				c.Net.Block(wire.SiteID(a), wire.SiteID(b))
			}
		case 1: // isolate a site
			c.Net.Isolate(wire.SiteID(r.Intn(4)))
		case 2: // heal everything
			c.Net.Heal()
		case 3: // crash a site (never all of them)
			if len(crashed) < 2 {
				v := r.Intn(4)
				c.Net.Crash(wire.SiteID(v))
				crashed[v] = true
			}
		case 4: // restart a crashed site
			for v := range crashed {
				c.Net.Restart(wire.SiteID(v))
				delete(crashed, v)
				break
			}
		case 5: // anti-entropy attempt (may be partially blocked: fine)
			_ = c.FlushAll(ctx)
		default: // an update from a random live site
			siteIdx := r.Intn(4)
			if crashed[siteIdx] {
				continue
			}
			key := allKeys[r.Intn(len(allKeys))]
			var delta int64
			if siteIdx == 0 {
				delta = r.Range(1, 100)
			} else {
				delta = -r.Range(1, 60)
			}
			if _, err := c.Update(ctx, siteIdx, key, delta); err != nil && !expectedChaosErr(err) {
				return err
			}
		}
	}

	// Quiesce: heal, restart, drain orphaned 2PC state, converge.
	c.Net.Heal()
	for v := range crashed {
		c.Net.Restart(wire.SiteID(v))
	}
	for _, s := range c.Sites {
		s.TwoPC().Sweep(time.Now().Add(time.Hour))
	}
	for round := 0; round < 3; round++ {
		if err := c.FlushAll(ctx); err != nil {
			return err
		}
	}
	// Regular keys: full conservation must hold.
	for _, key := range c.RegularKeys {
		v, err := c.ConvergedValue(key)
		if err != nil {
			return err
		}
		var avSum int64
		for _, s := range c.Sites {
			avSum += s.AV().Total(key)
		}
		if avSum != v {
			return errors.New("AV conservation violated after chaos")
		}
	}
	// Non-regular keys: replicas may legitimately diverge only if a
	// coordinator committed while a participant was crashed mid-decision
	// (ErrCompletionUnknown surfaced then). Verify each value is at
	// least sane (no panic, readable); strict convergence is asserted in
	// the partition-free tests.
	for _, key := range c.NonRegularKeys {
		for i := range c.Sites {
			if _, err := c.Read(i, key); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is slow")
	}
	f := func(seed uint64) bool {
		if err := chaosRun(t, seed, 250); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestChaosFixedSeedLong(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is slow")
	}
	if err := chaosRun(t, 424242, 800); err != nil {
		t.Fatal(err)
	}
}
