package cluster

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"avdb/internal/chaos"
	"avdb/internal/core"
	"avdb/internal/failure"
	"avdb/internal/rng"
	"avdb/internal/transport"
	"avdb/internal/twopc"
	"avdb/internal/wire"
)

// expectedChaosErr reports whether err is a legitimate outcome under
// fault injection (as opposed to a correctness bug).
func expectedChaosErr(err error) bool {
	return errors.Is(err, core.ErrInsufficientAV) ||
		errors.Is(err, twopc.ErrAborted) ||
		errors.Is(err, twopc.ErrCompletionUnknown) ||
		errors.Is(err, transport.ErrUnreachable) ||
		errors.Is(err, transport.ErrTimeout)
}

// chaosRun drives random updates while randomly partitioning, crashing
// and healing sites, then heals everything and checks that every
// invariant still holds: replicas converge and no allowable volume was
// minted or destroyed.
func chaosRun(t *testing.T, seed uint64, steps int) error {
	t.Helper()
	c, err := New(Config{
		Sites:              4,
		Items:              5,
		InitialAmount:      4000,
		NonRegularFraction: 0.2,
		Seed:               seed,
		CallTimeout:        150 * time.Millisecond,
		LockTimeout:        150 * time.Millisecond,
		PrepareTimeout:     150 * time.Millisecond,
		RequestTimeout:     150 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	r := rng.New(seed)
	ctx := context.Background()
	allKeys := append(append([]string{}, c.RegularKeys...), c.NonRegularKeys...)
	crashed := map[int]bool{}

	for i := 0; i < steps; i++ {
		switch r.Intn(12) {
		case 0: // partition a random pair
			a, b := r.Intn(4), r.Intn(4)
			if a != b {
				c.Net.Block(wire.SiteID(a), wire.SiteID(b))
			}
		case 1: // isolate a site
			c.Net.Isolate(wire.SiteID(r.Intn(4)))
		case 2: // heal everything
			c.Net.Heal()
		case 3: // crash a site (never all of them)
			if len(crashed) < 2 {
				v := r.Intn(4)
				c.Net.Crash(wire.SiteID(v))
				crashed[v] = true
			}
		case 4: // restart a crashed site
			for v := range crashed {
				c.Net.Restart(wire.SiteID(v))
				delete(crashed, v)
				break
			}
		case 5: // anti-entropy attempt (may be partially blocked: fine)
			_ = c.FlushAll(ctx)
		default: // an update from a random live site
			siteIdx := r.Intn(4)
			if crashed[siteIdx] {
				continue
			}
			key := allKeys[r.Intn(len(allKeys))]
			var delta int64
			if siteIdx == 0 {
				delta = r.Range(1, 100)
			} else {
				delta = -r.Range(1, 60)
			}
			if _, err := c.Update(ctx, siteIdx, key, delta); err != nil && !expectedChaosErr(err) {
				return err
			}
		}
	}

	// Quiesce: heal, restart, drain orphaned 2PC state, converge.
	c.Net.Heal()
	for v := range crashed {
		c.Net.Restart(wire.SiteID(v))
	}
	for _, s := range c.Sites {
		s.TwoPC().Sweep(time.Now().Add(time.Hour))
	}
	for round := 0; round < 3; round++ {
		if err := c.FlushAll(ctx); err != nil {
			return err
		}
	}
	// Regular keys: full conservation must hold.
	for _, key := range c.RegularKeys {
		v, err := c.ConvergedValue(key)
		if err != nil {
			return err
		}
		var avSum int64
		for _, s := range c.Sites {
			avSum += s.AV().Total(key)
		}
		if avSum != v {
			return errors.New("AV conservation violated after chaos")
		}
	}
	// Non-regular keys: replicas may legitimately diverge only if a
	// coordinator committed while a participant was crashed mid-decision
	// (ErrCompletionUnknown surfaced then). Verify each value is at
	// least sane (no panic, readable); strict convergence is asserted in
	// the partition-free tests.
	for _, key := range c.NonRegularKeys {
		for i := range c.Sites {
			if _, err := c.Read(i, key); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is slow")
	}
	f := func(seed uint64) bool {
		if err := chaosRun(t, seed, 250); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestChaosFixedSeedLong(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is slow")
	}
	if err := chaosRun(t, 424242, 800); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSoakScripted is the conservation soak for the full failure
// model: durable sites on a fault-injected network run a seeded
// workload through scripted 5% message loss, a symmetric partition, and
// a crash-restart-from-WAL of one site, with escrowed AV transfers,
// retransmission, per-peer flush backoff and failure detection all on.
// After the scenario heals and the cluster quiesces (sweeps, escrow
// reconciliation, anti-entropy), every invariant must hold: replicas
// converge, sum(AV) equals the surviving stock, and no hold or escrow
// is left behind — a crash may lose slack, never mint it.
func TestChaosSoakScripted(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is slow")
	}
	inj := chaos.NewInjector(2026)
	c, err := New(Config{
		Sites:              4,
		Items:              3,
		InitialAmount:      120,
		NonRegularFraction: 0.34,
		Seed:               99,
		Dir:                t.TempDir(),
		Interceptor:        inj,
		RetransmitInterval: 25 * time.Millisecond,
		CallTimeout:        250 * time.Millisecond,
		LockTimeout:        250 * time.Millisecond,
		PrepareTimeout:     250 * time.Millisecond,
		RequestTimeout:     250 * time.Millisecond,
		FlushPeerTimeout:   200 * time.Millisecond,
		FlushBackoff:       failure.Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 800 * time.Millisecond},
		SuspectAfter:       500 * time.Millisecond,
		EscrowTransfers:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	script, err := chaos.Parse(`
		# ambient loss for the whole run
		at 0 drop 0.05
		# split {0,1} | {2,3} for a while
		at 60 partition 0 1 | 2 3
		at 75 heal
		# kill site 2, bring it back from its WAL
		at 110 crash 2
		at 140 restart 2
		# clean network for the tail of the run
		at 180 drop 0
		at 180 heal
	`)
	if err != nil {
		t.Fatal(err)
	}
	env := c.ChaosEnv()
	ctx := context.Background()
	r := rng.New(7)
	allKeys := append(append([]string{}, c.RegularKeys...), c.NonRegularKeys...)

	const ticks = 200
	for tick := int64(0); tick < ticks; tick++ {
		if _, err := script.Advance(tick, inj, env); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		idx := r.Intn(4)
		if c.SiteDown(idx) {
			continue
		}
		key := allKeys[r.Intn(len(allKeys))]
		delta := -r.Range(1, 5)
		if _, err := c.Update(ctx, idx, key, delta); err != nil && !expectedChaosErr(err) {
			t.Fatalf("tick %d site %d key %s: %v", tick, idx, key, err)
		}
		if tick%20 == 19 {
			_ = c.FlushAll(ctx) // partial failure is the point
		}
	}
	if !script.Done() {
		t.Fatal("scenario script did not run to completion")
	}

	// Quiesce: stop injecting, drain orphaned 2PC state, settle escrow
	// obligations, and let anti-entropy outlast the flush backoff
	// windows opened during the faults.
	inj.SetDefault(chaos.LinkFaults{})
	inj.Heal()
	for round := 0; round < 6; round++ {
		hctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		for i, s := range c.Sites {
			if c.SiteDown(i) {
				continue
			}
			s.TwoPC().Sweep(time.Now().Add(time.Hour))
			s.Heartbeat(hctx)
		}
		cancel()
		if err := c.FlushAll(ctx); err != nil {
			t.Fatalf("quiesce flush round %d: %v", round, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	for i, s := range c.Sites {
		if got := len(s.Accelerator().Obligations()); got != 0 {
			t.Fatalf("site %d still holds %d escrow obligations after quiesce", i, got)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
