// Package cluster builds complete multi-site avdb systems on an
// in-process network: N sites (site 0 is the base/maker), a shared
// product catalog seeded everywhere, and initial AV allocations for the
// regular products. Experiments, examples and integration tests all
// start from here.
package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"avdb/internal/chaos"
	"avdb/internal/clock"
	"avdb/internal/core"
	"avdb/internal/eventlog"
	"avdb/internal/failure"
	"avdb/internal/metrics"
	"avdb/internal/partition"
	"avdb/internal/site"
	"avdb/internal/storage"
	"avdb/internal/strategy"
	"avdb/internal/trace"
	"avdb/internal/transport"
	"avdb/internal/transport/memnet"
	"avdb/internal/twopc"
	"avdb/internal/wire"
)

// Config parameterizes a cluster.
type Config struct {
	// Sites is the number of sites (>= 1); site 0 is the base.
	Sites int
	// Items is the number of products in the catalog.
	Items int
	// InitialAmount is every product's starting stock.
	InitialAmount int64
	// NonRegularFraction in [0,1] selects how many items get no AV and
	// therefore take the Immediate path (the first
	// round(frac*Items) items, deterministically).
	NonRegularFraction float64
	// AVAllAtBase concentrates the whole initial AV at site 0 instead of
	// the default equal split (an ablation of the initial allocation).
	AVAllAtBase bool
	// Policy, Passes, Seed configure every accelerator.
	Policy strategy.Policy
	Passes int
	Seed   uint64
	// PolicyFor, when non-nil, supplies each site its own policy and
	// optional demand observer (stateful policies such as
	// strategy.GrantDemandAware must not be shared between sites).
	PolicyFor func(site int) (strategy.Policy, core.DemandObserver)
	// DisableGossip turns off AV-view piggybacking everywhere (A7).
	DisableGossip bool
	// Registry counts messages; nil creates a fresh one.
	Registry *metrics.Registry
	// Tracer, when non-nil, records distributed-tracing spans for every
	// site and the network. One tracer serves the whole cluster; spans
	// carry the site ID.
	Tracer *trace.Tracer
	// Latency optionally injects network delay.
	Latency func(from, to wire.SiteID) time.Duration
	// CallTimeout bounds RPCs (default 5s; fault experiments shorten it).
	CallTimeout time.Duration
	// LockTimeout, RequestTimeout, PrepareTimeout are passed to sites.
	LockTimeout, RequestTimeout, PrepareTimeout time.Duration
	// FlushInterval/SweepInterval enable background loops on every site.
	FlushInterval, SweepInterval time.Duration
	// Dir, when non-empty, makes every site durable: site i keeps its
	// storage and AV journal under Dir/site-<i>, so a crashed site can be
	// restarted from its WAL (RestartSite). Durable sites run with fsync
	// off — the chaos scenarios model process crashes, not disk loss.
	Dir string
	// EpochInterval, when positive on a durable cluster, turns on
	// epoch-based commit on every site (see site.Config.EpochInterval).
	EpochInterval time.Duration
	// EpochMaxCommits caps commits per epoch (see site.Config).
	EpochMaxCommits int
	// EpochAdaptive turns on the adaptive interval controller, clamped
	// to [EpochMinInterval, EpochMaxInterval] (see site.Config).
	EpochAdaptive                      bool
	EpochMinInterval, EpochMaxInterval time.Duration
	// Interceptor, when non-nil, is consulted for every message on the
	// in-process network — the seam chaos.Injector plugs into.
	Interceptor transport.Interceptor
	// RetransmitInterval enables Call retransmission on the network
	// (receivers dedup), letting RPCs ride out injected drops.
	RetransmitInterval time.Duration
	// HeartbeatInterval/SuspectAfter run each site's failure detector.
	HeartbeatInterval, SuspectAfter time.Duration
	// FlushPeerTimeout/FlushBackoff bound and back off per-peer flushes.
	FlushPeerTimeout time.Duration
	FlushBackoff     failure.Policy
	// EscrowTransfers makes remote AV grants crash-safe escrowed
	// transfers on every site.
	EscrowTransfers bool
	// Clock, when non-nil, drives every timer in the cluster — network
	// delivery and call timeouts, 2PC deadlines, flush deadlines, sweeps.
	// The deterministic simulator passes a *clock.Virtual; nil keeps the
	// real clock.
	Clock clock.Clock
	// EventsFor, when non-nil, supplies each site's event log (the
	// simulator hashes these into its reproducibility trace).
	EventsFor func(site int) *eventlog.Log
	// XferSalt, when non-zero, makes escrow transfer ids deterministic;
	// the cluster mixes in the site id and a per-site restart epoch so
	// ids stay unique across restarts. Zero keeps wall-clock entropy.
	XferSalt uint64
	// TxnObserver, when non-nil, receives every locally applied 2PC
	// outcome cluster-wide.
	TxnObserver func(twopc.Outcome)
	// ReadPlane gives every site an event-sourced read plane (see
	// site.Config.ReadPlane). The simulator enables it so its oracles
	// can prove read-model convergence and RYW-token safety.
	ReadPlane bool
	// Partitions, when > 0, shards the catalog over that many virtual
	// partitions with replication factor RF: each key lives only on its
	// partition's replica set (seeded there, AV defined there,
	// anti-entropied there), and every site routes updates for foreign
	// keys to the owning replicas. Zero keeps legacy full replication.
	Partitions int
	// RF is the replication factor in sharded mode (default 2, capped
	// at Sites). Ignored when Partitions is zero.
	RF int
	// UpdateObserver, when non-nil, fires once per Delay Update
	// committed anywhere in the cluster, at the applying site (see
	// site.Config.UpdateObserver).
	UpdateObserver func(key string, delta int64)
}

// Cluster is a running multi-site system.
type Cluster struct {
	Cfg      Config
	Net      *memnet.Net
	Sites    []*site.Site
	Registry *metrics.Registry

	// RegularKeys have AVs (Delay Update); NonRegularKeys do not
	// (Immediate Update).
	RegularKeys    []string
	NonRegularKeys []string

	// pm is the shared partition map, nil for legacy full replication.
	pm *partition.Map

	mu     sync.Mutex
	down   map[int]bool // crashed sites (durable clusters only)
	epochs map[int]int  // per-site restart count, salts transfer ids
}

// KeyName returns the catalog key for item i.
func KeyName(i int) string { return fmt.Sprintf("product-%04d", i) }

// New builds and seeds a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 site, got %d", cfg.Sites)
	}
	if cfg.Items < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 item, got %d", cfg.Items)
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	var pm *partition.Map
	if cfg.Partitions > 0 {
		if cfg.RF <= 0 {
			cfg.RF = 2
		}
		if cfg.RF > cfg.Sites {
			cfg.RF = cfg.Sites
		}
		ids := make([]wire.SiteID, cfg.Sites)
		for i := range ids {
			ids[i] = wire.SiteID(i)
		}
		var err error
		pm, err = partition.New(ids, cfg.Partitions, cfg.RF)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}
	c := &Cluster{
		pm:       pm,
		Cfg:      cfg,
		Registry: cfg.Registry,
		down:     make(map[int]bool),
		epochs:   make(map[int]int),
		Net: memnet.New(memnet.Options{
			Registry:           cfg.Registry,
			Latency:            cfg.Latency,
			CallTimeout:        cfg.CallTimeout,
			Tracer:             cfg.Tracer,
			Interceptor:        cfg.Interceptor,
			RetransmitInterval: cfg.RetransmitInterval,
			Clock:              cfg.Clock,
		}),
	}

	nonRegular := int(cfg.NonRegularFraction*float64(cfg.Items) + 0.5)
	var records []storage.Record
	for i := 0; i < cfg.Items; i++ {
		rec := storage.Record{
			Key:    KeyName(i),
			Name:   fmt.Sprintf("Product %d", i),
			Amount: cfg.InitialAmount,
			Class:  storage.Regular,
		}
		if i < nonRegular {
			rec.Class = storage.NonRegular
			c.NonRegularKeys = append(c.NonRegularKeys, rec.Key)
		} else {
			c.RegularKeys = append(c.RegularKeys, rec.Key)
		}
		records = append(records, rec)
	}

	for id := 0; id < cfg.Sites; id++ {
		s, err := site.Open(c.siteConfig(id), c.Net)
		if err != nil {
			c.Close()
			return nil, err
		}
		recs := records
		if pm != nil {
			// Partial replication: a site's store holds only the keys of
			// the partitions it hosts.
			recs = recs[:0:0]
			for _, r := range records {
				if pm.HostsKey(wire.SiteID(id), r.Key) {
					recs = append(recs, r)
				}
			}
		}
		if err := s.Seed(recs...); err != nil {
			s.Close()
			c.Close()
			return nil, err
		}
		c.Sites = append(c.Sites, s)
	}

	// Initial AV allocation: the whole slack (== initial stock) is split
	// across the sites hosting the key (all of them under full
	// replication, the RF replicas under partitioning); equality of
	// sum(AV) and global stock is the system's conservation invariant
	// thereafter — partition-local when sharded.
	for _, key := range c.RegularKeys {
		hosts := c.HostSitesFor(key)
		if cfg.AVAllAtBase {
			// Sharded clusters concentrate at the partition owner (the
			// first replica), legacy ones at the base.
			if err := c.Sites[hosts[0]].DefineAV(key, cfg.InitialAmount); err != nil {
				c.Close()
				return nil, err
			}
			for _, id := range hosts[1:] {
				if err := c.Sites[id].DefineAV(key, 0); err != nil {
					c.Close()
					return nil, err
				}
			}
			continue
		}
		share := cfg.InitialAmount / int64(len(hosts))
		remainder := cfg.InitialAmount - share*int64(len(hosts))
		for i, id := range hosts {
			vol := share
			if i == 0 {
				vol += remainder // owner (or base) takes the odd units
			}
			if err := c.Sites[id].DefineAV(key, vol); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	return c, nil
}

// PartMap returns the cluster's partition map, nil when partitioning
// is off.
func (c *Cluster) PartMap() *partition.Map { return c.pm }

// HostSitesFor lists the site indices hosting key: the partition's
// replica set (owner first) when sharded, every site otherwise.
func (c *Cluster) HostSitesFor(key string) []int {
	if c.pm == nil {
		all := make([]int, c.Cfg.Sites)
		for i := range all {
			all[i] = i
		}
		return all
	}
	reps := c.pm.ReplicasOf(key)
	out := make([]int, len(reps))
	for i, r := range reps {
		out[i] = int(r)
	}
	return out
}

// siteConfig builds site id's configuration; Open and RestartSite use
// the same one so a restarted site is the site that crashed.
func (c *Cluster) siteConfig(id int) site.Config {
	cfg := c.Cfg
	var peers []wire.SiteID
	for p := 0; p < cfg.Sites; p++ {
		if p != id {
			peers = append(peers, wire.SiteID(p))
		}
	}
	policy := cfg.Policy
	var demand core.DemandObserver
	if cfg.PolicyFor != nil {
		policy, demand = cfg.PolicyFor(id)
	}
	sc := site.Config{
		ID:                wire.SiteID(id),
		Base:              0,
		Peers:             peers,
		Policy:            policy,
		Passes:            cfg.Passes,
		Seed:              cfg.Seed + uint64(id)*7919,
		Demand:            demand,
		DisableGossip:     cfg.DisableGossip,
		Tracer:            cfg.Tracer,
		Clock:             cfg.Clock,
		TxnObserver:       cfg.TxnObserver,
		LockTimeout:       cfg.LockTimeout,
		RequestTimeout:    cfg.RequestTimeout,
		PrepareTimeout:    cfg.PrepareTimeout,
		FlushInterval:     cfg.FlushInterval,
		SweepInterval:     cfg.SweepInterval,
		HeartbeatInterval: cfg.HeartbeatInterval,
		SuspectAfter:      cfg.SuspectAfter,
		FlushPeerTimeout:  cfg.FlushPeerTimeout,
		FlushBackoff:      cfg.FlushBackoff,
		EscrowTransfers:   cfg.EscrowTransfers,
		ReadPlane:         cfg.ReadPlane,
		Partitions:        c.pm,
		UpdateObserver:    cfg.UpdateObserver,
	}
	if cfg.EventsFor != nil {
		sc.Events = cfg.EventsFor(id)
	}
	c.mu.Lock()
	epoch := c.epochs[id]
	c.mu.Unlock()
	// A reborn site must never re-mint an id a previous life used:
	// granters tombstone resolved transfer ids, and participants may
	// still hold the old incarnation's transactions.
	sc.TxnIDEpoch = uint64(epoch)
	if cfg.XferSalt != 0 {
		sc.XferSalt = cfg.XferSalt ^ ((uint64(id) + 1) << 32) ^ (uint64(epoch) + 1)
	}
	if cfg.Dir != "" {
		sc.StorageDir = filepath.Join(cfg.Dir, fmt.Sprintf("site-%d", id))
		sc.PersistAV = true
		sc.NoSync = true
		sc.EpochInterval = cfg.EpochInterval
		sc.EpochMaxCommits = cfg.EpochMaxCommits
		sc.EpochAdaptive = cfg.EpochAdaptive
		sc.EpochMinInterval = cfg.EpochMinInterval
		sc.EpochMaxInterval = cfg.EpochMaxInterval
	}
	return sc
}

// CrashSite tears site idx down: its node leaves the network mid-flight
// and, for a durable cluster, only the WAL survives. Updates must not
// be routed to a crashed site until RestartSite.
func (c *Cluster) CrashSite(idx int) error {
	if idx < 0 || idx >= len(c.Sites) {
		return fmt.Errorf("cluster: no site %d", idx)
	}
	c.mu.Lock()
	if c.down[idx] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: site %d already down", idx)
	}
	c.down[idx] = true
	c.mu.Unlock()
	return c.Sites[idx].Close()
}

// RestartSite rebuilds a crashed durable site from its on-disk state.
func (c *Cluster) RestartSite(idx int) error {
	if c.Cfg.Dir == "" {
		return fmt.Errorf("cluster: RestartSite requires a durable cluster (Config.Dir)")
	}
	if idx < 0 || idx >= len(c.Sites) {
		return fmt.Errorf("cluster: no site %d", idx)
	}
	c.mu.Lock()
	if !c.down[idx] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: site %d is not down", idx)
	}
	c.epochs[idx]++ // the reborn site mints transfer ids from a new salt
	c.mu.Unlock()
	s, err := site.Reopen(c.siteConfig(idx), c.Net)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.Sites[idx] = s
	delete(c.down, idx)
	c.mu.Unlock()
	return nil
}

// SiteDown reports whether site idx is currently crashed.
func (c *Cluster) SiteDown(idx int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[idx]
}

// clusterEnv adapts a Cluster to chaos.Env so scripted scenarios can
// crash and restart its sites.
type clusterEnv struct{ c *Cluster }

func (e clusterEnv) Sites() []wire.SiteID {
	ids := make([]wire.SiteID, len(e.c.Sites))
	for i := range ids {
		ids[i] = wire.SiteID(i)
	}
	return ids
}

func (e clusterEnv) Crash(s wire.SiteID) error   { return e.c.CrashSite(int(s)) }
func (e clusterEnv) Restart(s wire.SiteID) error { return e.c.RestartSite(int(s)) }

// ChaosEnv returns the cluster as a chaos.Env.
func (c *Cluster) ChaosEnv() chaos.Env { return clusterEnv{c} }

// Update applies delta to key at site idx.
func (c *Cluster) Update(ctx context.Context, idx int, key string, delta int64) (core.Result, error) {
	return c.Sites[idx].Update(ctx, key, delta)
}

// Read returns site idx's local value of key.
func (c *Cluster) Read(idx int, key string) (int64, error) {
	return c.Sites[idx].Read(key)
}

// FlushAll pushes every live site's replication backlog once.
func (c *Cluster) FlushAll(ctx context.Context) error {
	var firstErr error
	for i, s := range c.Sites {
		if c.SiteDown(i) {
			continue
		}
		if err := s.Flush(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ConvergedValue verifies every site hosting key holds the same value
// for it (call after FlushAll) and returns it. Under full replication
// that is every site; under partitioning, the partition's replicas.
func (c *Cluster) ConvergedValue(key string) (int64, error) {
	hosts := c.HostSitesFor(key)
	v0, err := c.Sites[hosts[0]].Read(key)
	if err != nil {
		return 0, err
	}
	for _, i := range hosts[1:] {
		v, err := c.Sites[i].Read(key)
		if err != nil {
			return 0, err
		}
		if v != v0 {
			return 0, fmt.Errorf("cluster: key %s diverged: site%d=%d site%d=%d", key, hosts[0], v0, i, v)
		}
	}
	return v0, nil
}

// CheckInvariants asserts, for every regular key, that the replicas have
// converged and that the system-wide AV exactly equals the global stock:
// transfers conserve AV, decrements consume one unit of AV per unit of
// stock, increments mint one per unit. Call after FlushAll with no
// in-flight updates.
func (c *Cluster) CheckInvariants() error {
	for _, key := range c.RegularKeys {
		v, err := c.ConvergedValue(key)
		if err != nil {
			return err
		}
		var avSum int64
		for _, s := range c.Sites {
			avSum += s.AV().Total(key)
		}
		if avSum != v {
			return fmt.Errorf("cluster: key %s AV sum %d != global stock %d", key, avSum, v)
		}
		// At quiescence no update is in flight, so no reservation or
		// unsettled escrow may linger — a leaked hold would silently
		// shrink usable slack, an unsettled escrow double-counts volume.
		for i, s := range c.Sites {
			if held := s.AV().Held(key); held != 0 {
				return fmt.Errorf("cluster: key %s site %d leaked hold of %d", key, i, held)
			}
			if esc := s.AV().Escrowed(key); esc != 0 {
				return fmt.Errorf("cluster: key %s site %d left %d in escrow", key, i, esc)
			}
		}
	}
	for _, key := range c.NonRegularKeys {
		if _, err := c.ConvergedValue(key); err != nil {
			return err
		}
	}
	return c.CheckStoreLocality()
}

// CheckStoreLocality asserts, in a sharded cluster, that every site's
// store contains exactly the keys of the partitions it hosts — partial
// replication never leaked a foreign key in, and no hosted key went
// missing. No-op under full replication.
func (c *Cluster) CheckStoreLocality() error {
	if c.pm == nil {
		return nil
	}
	for i, s := range c.Sites {
		if c.SiteDown(i) {
			continue
		}
		id := wire.SiteID(i)
		var violation error
		seen := 0
		err := s.Engine().Scan(func(rec storage.Record) bool {
			seen++
			if !c.pm.HostsKey(id, rec.Key) {
				violation = fmt.Errorf(
					"cluster: site %d stores %q (partition %d) but does not host it",
					i, rec.Key, c.pm.PartitionOf(rec.Key))
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if violation != nil {
			return violation
		}
		want := 0
		for _, key := range c.RegularKeys {
			if c.pm.HostsKey(id, key) {
				want++
			}
		}
		for _, key := range c.NonRegularKeys {
			if c.pm.HostsKey(id, key) {
				want++
			}
		}
		if seen != want {
			return fmt.Errorf("cluster: site %d stores %d records, hosts %d", i, seen, want)
		}
	}
	return nil
}

// Close shuts down every site.
func (c *Cluster) Close() error {
	var firstErr error
	for i, s := range c.Sites {
		if s == nil || c.SiteDown(i) {
			continue
		}
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.Sites = nil
	return firstErr
}
