package cluster

import (
	"context"
	"testing"
	"time"
)

// A ReadPlane cluster serves reads from the materialized models:
// committing sites satisfy their own tokens immediately, and after
// replication every site's stock view agrees with its authoritative
// engine.
func TestReadPlaneTokensAndConvergence(t *testing.T) {
	c := newCluster(t, Config{ReadPlane: true, NonRegularFraction: 0.25})
	key := c.RegularKeys[0]

	res, err := c.Update(bg(), 1, key, -30)
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN == 0 {
		t.Fatal("commit minted no LSN")
	}
	tok := c.Sites[1].Token(res)
	ctx, cancel := context.WithTimeout(bg(), 5*time.Second)
	defer cancel()
	if err := c.Sites[1].ReadPlane().WaitFor(ctx, tok); err != nil {
		t.Fatalf("RYW at the committing site: %v", err)
	}
	if v, ok := c.Sites[1].ReadPlane().Stock().Amount(key); !ok || v != 870 {
		t.Fatalf("stock view = %d %v, want 870", v, ok)
	}

	// An Immediate-Update commit mints a usable token too.
	nrKey := c.NonRegularKeys[0]
	res, err = c.Update(bg(), 2, nrKey, -5)
	if err != nil {
		t.Fatal(err)
	}
	tok = c.Sites[2].Token(res)
	if err := c.Sites[2].ReadPlane().WaitFor(ctx, tok); err != nil {
		t.Fatalf("RYW after immediate update: %v", err)
	}

	// After replication settles, every plane converges to its engine.
	if err := c.FlushAll(bg()); err != nil {
		t.Fatal(err)
	}
	for i, s := range c.Sites {
		if err := s.ReadPlane().WaitCaughtUp(ctx); err != nil {
			t.Fatalf("site %d: %v", i, err)
		}
		want, err := s.Read(key)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := s.ReadPlane().Stock().Amount(key); !ok || v != want {
			t.Fatalf("site %d stock view = %d %v, engine = %d", i, v, ok, want)
		}
		if n := s.ReadPlane().Stats().RYWViolations; n != 0 {
			t.Fatalf("site %d: %d RYW violations", i, n)
		}
	}

	// A failed update mints no token: the zero token satisfies
	// trivially and demands nothing of the model.
	failRes, err := c.Update(bg(), 1, key, -10_000_000)
	if err == nil {
		t.Fatal("impossible decrement succeeded")
	}
	zero := c.Sites[1].Token(failRes)
	if !zero.IsZero() {
		t.Fatalf("failed update minted token %v", zero)
	}
	if err := c.Sites[1].ReadPlane().WaitFor(ctx, zero); err != nil {
		t.Fatalf("zero token: %v", err)
	}
}
