package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"avdb/internal/readplane"
)

// A ReadPlane cluster serves reads from the materialized models:
// committing sites satisfy their own tokens immediately, and after
// replication every site's stock view agrees with its authoritative
// engine.
func TestReadPlaneTokensAndConvergence(t *testing.T) {
	c := newCluster(t, Config{ReadPlane: true, NonRegularFraction: 0.25})
	key := c.RegularKeys[0]

	res, err := c.Update(bg(), 1, key, -30)
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN == 0 {
		t.Fatal("commit minted no LSN")
	}
	tok := c.Sites[1].Token(res)
	ctx, cancel := context.WithTimeout(bg(), 5*time.Second)
	defer cancel()
	if err := c.Sites[1].ReadPlane().WaitFor(ctx, tok); err != nil {
		t.Fatalf("RYW at the committing site: %v", err)
	}
	if v, ok := c.Sites[1].ReadPlane().Stock().Amount(key); !ok || v != 870 {
		t.Fatalf("stock view = %d %v, want 870", v, ok)
	}

	// An Immediate-Update commit mints a usable token too.
	nrKey := c.NonRegularKeys[0]
	res, err = c.Update(bg(), 2, nrKey, -5)
	if err != nil {
		t.Fatal(err)
	}
	tok = c.Sites[2].Token(res)
	if err := c.Sites[2].ReadPlane().WaitFor(ctx, tok); err != nil {
		t.Fatalf("RYW after immediate update: %v", err)
	}

	// After replication settles, every plane converges to its engine.
	if err := c.FlushAll(bg()); err != nil {
		t.Fatal(err)
	}
	for i, s := range c.Sites {
		if err := s.ReadPlane().WaitCaughtUp(ctx); err != nil {
			t.Fatalf("site %d: %v", i, err)
		}
		want, err := s.Read(key)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := s.ReadPlane().Stock().Amount(key); !ok || v != want {
			t.Fatalf("site %d stock view = %d %v, engine = %d", i, v, ok, want)
		}
		if n := s.ReadPlane().Stats().RYWViolations; n != 0 {
			t.Fatalf("site %d: %d RYW violations", i, n)
		}
	}

	// A failed update mints no token: the zero token satisfies
	// trivially and demands nothing of the model.
	failRes, err := c.Update(bg(), 1, key, -10_000_000)
	if err == nil {
		t.Fatal("impossible decrement succeeded")
	}
	zero := c.Sites[1].Token(failRes)
	if !zero.IsZero() {
		t.Fatalf("failed update minted token %v", zero)
	}
	if err := c.Sites[1].ReadPlane().WaitFor(ctx, zero); err != nil {
		t.Fatalf("zero token: %v", err)
	}
}

// A routed update's reply carries the applying site's {site, lsn}, so
// the origin mints a token that gates the APPLYING site's read plane —
// the site whose engine actually holds the write. The token must open
// that site's /read/stock and be rejected as foreign everywhere else.
func TestRoutedUpdateTokenGatesApplyingSiteStock(t *testing.T) {
	c, err := New(Config{
		Sites:         6,
		Items:         40,
		InitialAmount: 60,
		Partitions:    16,
		RF:            2,
		Seed:          7,
		ReadPlane:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pick a key and an origin outside its replica set: the update must
	// forward.
	key, origin := "", -1
	for i := 0; i < c.Cfg.Items && origin < 0; i++ {
		k := KeyName(i)
		hosts := map[int]bool{}
		for _, h := range c.HostSitesFor(k) {
			hosts[h] = true
		}
		for s := 0; s < c.Cfg.Sites; s++ {
			if !hosts[s] {
				key, origin = k, s
				break
			}
		}
	}
	if origin < 0 {
		t.Fatal("no non-replica origin found")
	}

	res, err := c.Update(bg(), origin, key, -3)
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN == 0 {
		t.Fatal("routed update minted no LSN: the RYW token gap is back")
	}
	if int(res.Site) == origin {
		t.Fatalf("update from non-replica origin %d reported itself as applier", origin)
	}
	tok := c.Sites[origin].Token(res)
	if tok.IsZero() || tok.Site != res.Site {
		t.Fatalf("token = %v, want one minted for applying site %d", tok, res.Site)
	}

	// The token opens the applying site's /read/stock: the request
	// blocks until the model applied the write, then serves it.
	srv := httptest.NewServer(c.Sites[int(res.Site)].ReadPlane().HTTPHandler())
	defer srv.Close()
	url := fmt.Sprintf("%s/read/stock?key=%s&token=%s&wait_ms=5000", srv.URL, key, tok)
	resp, err := http.Get(url) //nolint:noctx // test client
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gated stock read: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if !strings.Contains(string(body), `"amount": 57`) {
		t.Fatalf("gated stock read missing the routed write:\n%s", body)
	}

	// Presented anywhere else the token is foreign, exactly because it
	// names the applying site.
	ctx, cancel := context.WithTimeout(bg(), time.Second)
	defer cancel()
	if err := c.Sites[origin].ReadPlane().WaitFor(ctx, tok); !errors.Is(err, readplane.ErrWrongSite) {
		t.Fatalf("foreign token at origin = %v, want ErrWrongSite", err)
	}
}
