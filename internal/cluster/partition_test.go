package cluster

import (
	"context"
	"errors"
	"testing"

	"avdb/internal/core"
	"avdb/internal/wire"
)

func shardedCluster(t *testing.T, sites, parts, rf int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Sites:              sites,
		Items:              40,
		InitialAmount:      60,
		NonRegularFraction: 0.2,
		Partitions:         parts,
		RF:                 rf,
		Seed:               7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// A sharded cluster serves updates issued at arbitrary sites by
// routing them to the owning replicas, and still satisfies every
// quiescent invariant: per-partition convergence, AV conservation,
// and store locality (no site holds a foreign key).
func TestShardedClusterEndToEnd(t *testing.T) {
	c := shardedCluster(t, 6, 16, 2)
	ctx := context.Background()

	for round := 0; round < 3; round++ {
		for i := 0; i < c.Cfg.Items; i++ {
			key := KeyName(i)
			origin := (i + round) % c.Cfg.Sites
			if _, err := c.Update(ctx, origin, key, -1); err != nil {
				t.Fatalf("update %s from site %d: %v", key, origin, err)
			}
		}
	}
	if err := c.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Cfg.Items; i++ {
		v, err := c.ConvergedValue(KeyName(i))
		if err != nil {
			t.Fatal(err)
		}
		if v != 57 {
			t.Fatalf("%s = %d, want 57", KeyName(i), v)
		}
	}

	// With RF=2 of 6 sites, most origins cannot have hosted their key:
	// forwarding must actually have happened, and been served.
	var fwd, served uint64
	for _, s := range c.Sites {
		rs := s.RouteStats()
		fwd += rs.Forwarded
		served += rs.Served
		if rs.Misroutes != 0 {
			t.Fatalf("site %d counted %d misroutes in a healthy run", s.ID(), rs.Misroutes)
		}
	}
	if fwd == 0 || served != fwd {
		t.Fatalf("forwarded=%d served=%d, want equal and nonzero", fwd, served)
	}
}

// Per-partition stats surface exactly the hosted partitions.
func TestPartitionStatsCoverHostedPartitions(t *testing.T) {
	c := shardedCluster(t, 6, 16, 2)
	for _, s := range c.Sites {
		infos := s.PartitionStats()
		hosted := c.PartMap().Hosted(s.ID())
		if len(infos) != len(hosted) {
			t.Fatalf("site %d: %d stat entries, hosts %d partitions", s.ID(), len(infos), len(hosted))
		}
		for _, info := range infos {
			if !c.PartMap().IsReplica(info.Partition, s.ID()) {
				t.Fatalf("site %d reports stats for foreign partition %d", s.ID(), info.Partition)
			}
		}
	}
}

// A RouteUpdate that lands on a site not hosting the key's partition
// is rejected with RouteNotReplica and the current map attached — and
// the update is NOT applied anywhere.
func TestMisroutedUpdateRejectedNotApplied(t *testing.T) {
	c := shardedCluster(t, 6, 16, 2)
	pm := c.PartMap()

	// Find a key and a site outside its replica set.
	key, wrong := "", -1
	for i := 0; i < c.Cfg.Items && wrong < 0; i++ {
		k := KeyName(i)
		hosts := map[int]bool{}
		for _, h := range c.HostSitesFor(k) {
			hosts[h] = true
		}
		for s := 0; s < c.Cfg.Sites; s++ {
			if !hosts[s] {
				key, wrong = k, s
				break
			}
		}
	}
	if wrong < 0 {
		t.Fatal("no non-replica site found")
	}
	before, err := c.ConvergedValue(key)
	if err != nil {
		t.Fatal(err)
	}

	// A rogue client node speaks RouteUpdate straight at the wrong site.
	node, err := c.Net.Open(wire.SiteID(99), func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	reply, err := node.Call(context.Background(), wire.SiteID(wrong), &wire.RouteUpdate{
		MapVersion: pm.Version(), Key: key, Delta: -5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := reply.(*wire.RouteReply)
	if !ok {
		t.Fatalf("reply = %T", reply)
	}
	if rep.Status != wire.RouteNotReplica {
		t.Fatalf("status = %d, want RouteNotReplica", rep.Status)
	}
	if rep.MapVersion != pm.Version() || int(rep.Parts) != pm.Parts() {
		t.Fatalf("rejection must carry the receiver's map, got version=%d parts=%d", rep.MapVersion, rep.Parts)
	}
	if rs := c.Sites[wrong].RouteStats(); rs.Misroutes != 1 {
		t.Fatalf("misroutes = %d, want 1", rs.Misroutes)
	}
	// Not applied: the wrong site still has no copy, the replicas the
	// old value.
	if _, err := c.Sites[wrong].Read(key); err == nil {
		t.Fatalf("non-replica site %d has a copy of %q", wrong, key)
	}
	after, err := c.ConvergedValue(key)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("misrouted update applied: %d -> %d", before, after)
	}
}

// A RouteUpdate to a site with partitioning disabled fails cleanly.
func TestRouteUpdateWithPartitioningDisabled(t *testing.T) {
	c, err := New(Config{Sites: 2, Items: 4, InitialAmount: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	node, err := c.Net.Open(wire.SiteID(99), func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	reply, err := node.Call(context.Background(), 0, &wire.RouteUpdate{MapVersion: 1, Key: KeyName(0), Delta: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := reply.(*wire.RouteReply)
	if !ok || rep.Status != wire.RouteErr {
		t.Fatalf("reply = %#v, want RouteErr", reply)
	}
	if v, _ := c.Read(0, KeyName(0)); v != 10 {
		t.Fatalf("value = %d, want 10 untouched", v)
	}
}

// Routed failures carry their class across the wire: an update that
// exhausts the partition's AV surfaces core.ErrInsufficientAV at the
// origin exactly as a local rejection would.
func TestRoutedErrorKeepsSentinel(t *testing.T) {
	c := shardedCluster(t, 6, 16, 2)
	ctx := context.Background()

	// Pick a regular key and an origin that does not host it.
	key, origin := "", -1
	for _, k := range c.RegularKeys {
		hosts := map[int]bool{}
		for _, h := range c.HostSitesFor(k) {
			hosts[h] = true
		}
		for s := 0; s < c.Cfg.Sites; s++ {
			if !hosts[s] {
				key, origin = k, s
				break
			}
		}
		if origin >= 0 {
			break
		}
	}
	if origin < 0 {
		t.Fatal("no non-replica origin found")
	}
	// Drain the partition-local AV (initial stock is 60) until the
	// routed update is rejected; the rejection must carry the same
	// sentinel a local one would.
	var err error
	drained := 0
	for i := 0; i < 8; i++ {
		if _, err = c.Update(ctx, origin, key, -10); err != nil {
			break
		}
		drained++
	}
	if err == nil {
		t.Fatal("over-drain succeeded")
	}
	if drained == 0 {
		t.Fatalf("first routed update already failed: %v", err)
	}
	if !errors.Is(err, core.ErrInsufficientAV) {
		t.Fatalf("err = %v, want core.ErrInsufficientAV", err)
	}
}
