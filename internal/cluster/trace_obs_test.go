package cluster

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"avdb/internal/core"
	"avdb/internal/obs"
	"avdb/internal/trace"
	"avdb/internal/wire"
)

// TestCrossSiteTraceViaAdminServer is the observability acceptance path:
// one Delay Update that exhausts the requester's local AV must leave a
// trace whose causally-linked spans cover both the requesting and the
// granting site, and that trace must be retrievable over the admin
// server's /trace endpoint.
func TestCrossSiteTraceViaAdminServer(t *testing.T) {
	tr := trace.New(1024)
	c := newCluster(t, Config{Sites: 2, Items: 1, InitialAmount: 100, Tracer: tr})
	key := c.RegularKeys[0]

	// Each site starts with AV 50; -80 exceeds site 1's share, forcing an
	// AV request to site 0.
	res, err := c.Update(bg(), 1, key, -80)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if res.Path != core.PathDelayTransfer {
		t.Fatalf("update path = %v, want delay-transfer", res.Path)
	}

	// The root span of the update is the newest "update" span at site 1.
	var root *trace.Span
	for _, sp := range tr.Snapshot() {
		if sp.Name == "update" && sp.Site == 1 {
			sp := sp
			root = &sp
		}
	}
	if root == nil {
		t.Fatal("no update span recorded at site 1")
	}

	srv := obs.New(obs.Options{Registry: c.Registry, Tracer: tr})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("admin server: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/trace?id=" + root.Trace.String())
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	spans, err := trace.ReadJSON(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("decode spans: %v", err)
	}

	byID := make(map[trace.SpanID]*trace.Span, len(spans))
	sites := make(map[wire.SiteID]bool)
	for i := range spans {
		if spans[i].Trace != root.Trace {
			t.Fatalf("span %s belongs to trace %s, want %s", spans[i].Name, spans[i].Trace, root.Trace)
		}
		byID[spans[i].ID] = &spans[i]
		sites[spans[i].Site] = true
	}
	if len(sites) < 2 {
		t.Fatalf("trace covers %d site(s), want >= 2; spans: %s", len(sites), body)
	}

	// Walk one grant back to the root: av.grant (site 0) must reach the
	// update span (site 1) purely via parent links.
	find := func(name string, site wire.SiteID) *trace.Span {
		for i := range spans {
			if spans[i].Name == name && spans[i].Site == site {
				return &spans[i]
			}
		}
		t.Fatalf("no %q span at site %d in trace; spans: %s", name, site, body)
		return nil
	}
	grant := find("av.grant", 0)
	find("av.gather", 1)
	cur := grant
	steps := 0
	for cur.Parent != 0 {
		next := byID[cur.Parent]
		if next == nil {
			t.Fatalf("span %s at site %d has dangling parent %s", cur.Name, cur.Site, cur.Parent)
		}
		cur = next
		if steps++; steps > len(spans) {
			t.Fatal("parent chain does not terminate")
		}
	}
	if cur.Name != "update" || cur.Site != 1 {
		t.Fatalf("grant's root span = %q at site %d, want \"update\" at site 1", cur.Name, cur.Site)
	}
}
