package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avdb/internal/rng"
)

func ctxBg() context.Context { return context.Background() }

func TestSharedLocksCoexist(t *testing.T) {
	m := New(Options{})
	for txn := TxnID(1); txn <= 5; txn++ {
		if err := m.Acquire(ctxBg(), txn, "k", Shared); err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
	}
	for txn := TxnID(1); txn <= 5; txn++ {
		if mode, ok := m.Holds(txn, "k"); !ok || mode != Shared {
			t.Fatalf("txn %d holds = %v,%v", txn, mode, ok)
		}
	}
}

func TestExclusiveBlocksOthers(t *testing.T) {
	m := New(Options{WaitTimeout: 50 * time.Millisecond})
	if err := m.Acquire(ctxBg(), 1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctxBg(), 2, "k", Shared); !errors.Is(err, ErrTimeout) {
		t.Fatalf("S behind X: %v, want timeout", err)
	}
	if err := m.Acquire(ctxBg(), 3, "k", Exclusive); !errors.Is(err, ErrTimeout) {
		t.Fatalf("X behind X: %v, want timeout", err)
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	m := New(Options{})
	if err := m.Acquire(ctxBg(), 1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Acquire(ctxBg(), 2, "k", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	m.Release(1, "k")
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken")
	}
	if _, ok := m.Holds(2, "k"); !ok {
		t.Fatal("txn 2 does not hold the lock after wake")
	}
}

func TestReentrantAcquire(t *testing.T) {
	m := New(Options{})
	if err := m.Acquire(ctxBg(), 1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctxBg(), 1, "k", Exclusive); err != nil {
		t.Fatalf("re-acquire X: %v", err)
	}
	if err := m.Acquire(ctxBg(), 1, "k", Shared); err != nil {
		t.Fatalf("S while holding X: %v", err)
	}
	if m.HeldKeys(1) != 1 {
		t.Fatalf("HeldKeys = %d", m.HeldKeys(1))
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := New(Options{})
	if err := m.Acquire(ctxBg(), 1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctxBg(), 1, "k", Exclusive); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	if mode, _ := m.Holds(1, "k"); mode != Exclusive {
		t.Fatalf("mode after upgrade = %v", mode)
	}
}

func TestUpgradeWaitsForReaders(t *testing.T) {
	m := New(Options{})
	m.Acquire(ctxBg(), 1, "k", Shared)
	m.Acquire(ctxBg(), 2, "k", Shared)
	got := make(chan error, 1)
	go func() { got <- m.Acquire(ctxBg(), 1, "k", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-got:
		t.Fatalf("upgrade completed with reader present: %v", err)
	default:
	}
	m.Release(2, "k")
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("upgrade never granted")
	}
	if mode, _ := m.Holds(1, "k"); mode != Exclusive {
		t.Fatalf("mode = %v", mode)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New(Options{WaitTimeout: 5 * time.Second})
	m.Acquire(ctxBg(), 1, "a", Exclusive)
	m.Acquire(ctxBg(), 2, "b", Exclusive)
	got := make(chan error, 1)
	go func() { got <- m.Acquire(ctxBg(), 1, "b", Exclusive) }() // 1 waits on 2
	time.Sleep(20 * time.Millisecond)
	// 2 requesting a would close the cycle: must be refused immediately.
	start := time.Now()
	err := m.Acquire(ctxBg(), 2, "a", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadlock detection took too long (timed out instead?)")
	}
	// Victim releases; txn 1 proceeds.
	m.ReleaseAll(2)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("txn 1 never unblocked after victim released")
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := New(Options{WaitTimeout: 5 * time.Second})
	m.Acquire(ctxBg(), 1, "a", Exclusive)
	m.Acquire(ctxBg(), 2, "b", Exclusive)
	m.Acquire(ctxBg(), 3, "c", Exclusive)
	go m.Acquire(ctxBg(), 1, "b", Exclusive)
	go m.Acquire(ctxBg(), 2, "c", Exclusive)
	time.Sleep(20 * time.Millisecond)
	if err := m.Acquire(ctxBg(), 3, "a", Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	m.ReleaseAll(3)
}

func TestFIFOOrdering(t *testing.T) {
	m := New(Options{})
	m.Acquire(ctxBg(), 1, "k", Exclusive)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 2; i <= 4; i++ {
		wg.Add(1)
		txn := TxnID(i)
		go func() {
			defer wg.Done()
			if err := m.Acquire(ctxBg(), txn, "k", Exclusive); err != nil {
				t.Errorf("txn %d: %v", txn, err)
				return
			}
			mu.Lock()
			order = append(order, int(txn))
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			m.Release(txn, "k")
		}()
		time.Sleep(15 * time.Millisecond) // force distinct queue positions
	}
	m.Release(1, "k")
	wg.Wait()
	if fmt.Sprint(order) != "[2 3 4]" {
		t.Fatalf("grant order = %v, want [2 3 4]", order)
	}
}

func TestReleaseAll(t *testing.T) {
	m := New(Options{})
	for _, k := range []string{"a", "b", "c"} {
		m.Acquire(ctxBg(), 7, k, Exclusive)
	}
	if m.HeldKeys(7) != 3 {
		t.Fatalf("HeldKeys = %d", m.HeldKeys(7))
	}
	m.ReleaseAll(7)
	if m.HeldKeys(7) != 0 {
		t.Fatalf("HeldKeys after ReleaseAll = %d", m.HeldKeys(7))
	}
	if err := m.Acquire(ctxBg(), 8, "a", Exclusive); err != nil {
		t.Fatalf("lock not actually free: %v", err)
	}
}

func TestTimeoutRemovesFromQueue(t *testing.T) {
	m := New(Options{WaitTimeout: 30 * time.Millisecond})
	m.Acquire(ctxBg(), 1, "k", Exclusive)
	if err := m.Acquire(ctxBg(), 2, "k", Exclusive); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	// After the timed-out waiter is gone, release must not grant to it.
	m.Release(1, "k")
	if err := m.Acquire(ctxBg(), 3, "k", Exclusive); err != nil {
		t.Fatalf("txn 3: %v", err)
	}
	if _, ok := m.Holds(2, "k"); ok {
		t.Fatal("timed-out txn 2 somehow holds the lock")
	}
}

func TestContextCancellation(t *testing.T) {
	m := New(Options{})
	m.Acquire(ctxBg(), 1, "k", Exclusive)
	ctx, cancel := context.WithCancel(ctxBg())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if err := m.Acquire(ctx, 2, "k", Exclusive); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestNoConflictingGrants hammers the manager and asserts the core safety
// property: never two holders where one is exclusive.
func TestNoConflictingGrants(t *testing.T) {
	m := New(Options{WaitTimeout: 2 * time.Second})
	keys := []string{"a", "b", "c"}
	var inCS [3]atomic.Int32 // index per key: +1 per S holder, +1000 per X holder
	var violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		seed := uint64(g + 1)
		go func() {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 200; i++ {
				txn := TxnID(uint64(seed)*100000 + uint64(i))
				ki := r.Intn(len(keys))
				mode := Shared
				if r.Bool(0.5) {
					mode = Exclusive
				}
				if err := m.Acquire(ctxBg(), txn, keys[ki], mode); err != nil {
					continue // deadlock/timeout: fine, just skip
				}
				delta := int32(1)
				if mode == Exclusive {
					delta = 1000
				}
				v := inCS[ki].Add(delta)
				if (mode == Exclusive && v != 1000) || (mode == Shared && v >= 1000) {
					violations.Add(1)
				}
				inCS[ki].Add(-delta)
				m.ReleaseAll(txn)
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
}

func BenchmarkUncontendedAcquireRelease(b *testing.B) {
	m := New(Options{})
	for i := 0; i < b.N; i++ {
		txn := TxnID(i)
		if err := m.Acquire(ctxBg(), txn, "k", Exclusive); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(txn)
	}
}

func BenchmarkSharedAcquireRelease(b *testing.B) {
	m := New(Options{})
	for i := 0; i < b.N; i++ {
		txn := TxnID(i)
		if err := m.Acquire(ctxBg(), txn, "k", Shared); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(txn)
	}
}
