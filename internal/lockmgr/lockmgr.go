// Package lockmgr provides the shared/exclusive lock manager used for
// strict two-phase locking in each site's local database and by the
// Immediate-Update (primary-copy 2PC) participants.
//
// Locks are granted in FIFO order to prevent starvation, lock upgrades
// (S -> X by the sole holder) are supported, waiters time out, and
// deadlocks are detected eagerly by a waits-for-graph cycle search at
// block time — the requester that would close the cycle is the victim
// and gets ErrDeadlock.
package lockmgr

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// String names the mode for diagnostics.
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// TxnID identifies a lock owner (a transaction).
type TxnID uint64

// Lock manager errors.
var (
	ErrDeadlock = errors.New("lockmgr: deadlock detected")
	ErrTimeout  = errors.New("lockmgr: lock wait timed out")
)

// Options configure a Manager.
type Options struct {
	// WaitTimeout bounds how long Acquire blocks when the caller's
	// context has no deadline (default 5s).
	WaitTimeout time.Duration
}

// Manager is a lock table. It is safe for concurrent use.
type Manager struct {
	opts Options

	mu        sync.Mutex
	locks     map[string]*lockState
	held      map[TxnID]map[string]Mode // txn -> keys it holds
	waitingOn map[TxnID]string          // txn -> key it is blocked on
}

type lockState struct {
	holders map[TxnID]Mode
	queue   []*waiter
}

type waiter struct {
	txn      TxnID
	mode     Mode
	upgrade  bool
	canceled bool
	ready    chan struct{} // closed when granted
}

// New creates a Manager.
func New(opts Options) *Manager {
	if opts.WaitTimeout <= 0 {
		opts.WaitTimeout = 5 * time.Second
	}
	return &Manager{
		opts:      opts,
		locks:     make(map[string]*lockState),
		held:      make(map[TxnID]map[string]Mode),
		waitingOn: make(map[TxnID]string),
	}
}

// Acquire obtains key in mode for txn, blocking if necessary. It returns
// nil on success, ErrDeadlock if granting would deadlock, ErrTimeout if
// the wait exceeded the deadline, or the context's error.
//
// A transaction that already holds the key in the same or a stronger
// mode returns immediately; holding Shared and requesting Exclusive
// performs an upgrade.
func (m *Manager) Acquire(ctx context.Context, txn TxnID, key string, mode Mode) error {
	m.mu.Lock()
	ls := m.locks[key]
	if ls == nil {
		ls = &lockState{holders: make(map[TxnID]Mode)}
		m.locks[key] = ls
	}

	if cur, ok := ls.holders[txn]; ok {
		if cur >= mode {
			m.mu.Unlock()
			return nil // already strong enough
		}
		// Upgrade S -> X: immediate if sole holder.
		if len(ls.holders) == 1 {
			ls.holders[txn] = Exclusive
			m.held[txn][key] = Exclusive
			m.mu.Unlock()
			return nil
		}
		w := &waiter{txn: txn, mode: Exclusive, upgrade: true, ready: make(chan struct{})}
		// Upgraders queue ahead of ordinary waiters.
		ls.queue = append([]*waiter{w}, ls.queue...)
		return m.block(ctx, ls, w, key)
	}

	if m.grantableLocked(ls, txn, mode) && len(ls.queue) == 0 {
		m.grantLocked(ls, txn, key, mode)
		m.mu.Unlock()
		return nil
	}
	w := &waiter{txn: txn, mode: mode, ready: make(chan struct{})}
	ls.queue = append(ls.queue, w)
	return m.block(ctx, ls, w, key)
}

// block waits for w to be granted. Called with m.mu held; releases it.
func (m *Manager) block(ctx context.Context, ls *lockState, w *waiter, key string) error {
	m.waitingOn[w.txn] = key
	if m.cycleFromLocked(w.txn) {
		delete(m.waitingOn, w.txn)
		m.removeWaiterLocked(ls, w, key)
		m.mu.Unlock()
		return ErrDeadlock
	}
	m.mu.Unlock()

	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.opts.WaitTimeout)
		defer cancel()
	}
	select {
	case <-w.ready:
		m.mu.Lock()
		delete(m.waitingOn, w.txn)
		m.mu.Unlock()
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		delete(m.waitingOn, w.txn)
		select {
		case <-w.ready:
			// Granted in the race window; the caller gets the lock after
			// all (strict 2PL will release it with the rest).
			m.mu.Unlock()
			return nil
		default:
		}
		w.canceled = true
		m.removeWaiterLocked(ls, w, key)
		m.pumpLocked(ls, key)
		m.mu.Unlock()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return ErrTimeout
		}
		return ctx.Err()
	}
}

// grantableLocked reports whether txn could hold key in mode alongside
// the current holders (ignoring txn's own existing hold, for upgrades).
func (m *Manager) grantableLocked(ls *lockState, txn TxnID, mode Mode) bool {
	for holder, hmode := range ls.holders {
		if holder == txn {
			continue
		}
		if mode == Exclusive || hmode == Exclusive {
			return false
		}
	}
	return true
}

// grantLocked records the grant.
func (m *Manager) grantLocked(ls *lockState, txn TxnID, key string, mode Mode) {
	ls.holders[txn] = mode
	hk := m.held[txn]
	if hk == nil {
		hk = make(map[string]Mode)
		m.held[txn] = hk
	}
	hk[key] = mode
}

// pumpLocked grants queued waiters in FIFO order while compatible.
func (m *Manager) pumpLocked(ls *lockState, key string) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if w.canceled {
			ls.queue = ls.queue[1:]
			continue
		}
		if !m.grantableLocked(ls, w.txn, w.mode) {
			return
		}
		ls.queue = ls.queue[1:]
		m.grantLocked(ls, w.txn, key, w.mode)
		close(w.ready)
	}
}

// removeWaiterLocked deletes w from the queue if still present.
func (m *Manager) removeWaiterLocked(ls *lockState, w *waiter, key string) {
	for i, q := range ls.queue {
		if q == w {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			return
		}
	}
}

// conflictersLocked returns the set of transactions that currently
// prevent txn from acquiring key in mode: incompatible holders plus
// incompatible waiters queued ahead of txn.
func (m *Manager) conflictersLocked(txn TxnID, key string) map[TxnID]bool {
	ls := m.locks[key]
	if ls == nil {
		return nil
	}
	var mode Mode = Exclusive
	// Find txn's queued request to know its mode and position.
	pos := len(ls.queue)
	for i, w := range ls.queue {
		if w.txn == txn {
			mode = w.mode
			pos = i
			break
		}
	}
	out := make(map[TxnID]bool)
	for holder, hmode := range ls.holders {
		if holder == txn {
			continue
		}
		if mode == Exclusive || hmode == Exclusive {
			out[holder] = true
		}
	}
	for i := 0; i < pos; i++ {
		w := ls.queue[i]
		if w.txn == txn || w.canceled {
			continue
		}
		if mode == Exclusive || w.mode == Exclusive {
			out[w.txn] = true
		}
	}
	return out
}

// cycleFromLocked reports whether the waits-for graph reachable from
// start leads back to start.
func (m *Manager) cycleFromLocked(start TxnID) bool {
	visited := map[TxnID]bool{}
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		key, blocked := m.waitingOn[t]
		if !blocked {
			return false
		}
		for c := range m.conflictersLocked(t, key) {
			if c == start {
				return true
			}
			if !visited[c] {
				visited[c] = true
				if dfs(c) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// Release drops txn's lock on key (if held) and wakes compatible waiters.
func (m *Manager) Release(txn TxnID, key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(txn, key)
}

func (m *Manager) releaseLocked(txn TxnID, key string) {
	ls := m.locks[key]
	if ls == nil {
		return
	}
	if _, ok := ls.holders[txn]; !ok {
		return
	}
	delete(ls.holders, txn)
	delete(m.held[txn], key)
	m.pumpLocked(ls, key)
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, key)
	}
}

// ReleaseAll drops every lock txn holds — the strict-2PL release at
// commit or abort.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key := range m.held[txn] {
		m.releaseLocked(txn, key)
	}
	delete(m.held, txn)
}

// Holds reports the mode txn holds on key, if any.
func (m *Manager) Holds(txn TxnID, key string) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[txn][key]
	return mode, ok
}

// HeldKeys returns how many keys txn currently holds.
func (m *Manager) HeldKeys(txn TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[txn])
}
