// Package lockmgr provides the shared/exclusive lock manager used for
// strict two-phase locking in each site's local database and by the
// Immediate-Update (primary-copy 2PC) participants.
//
// Locks are granted in FIFO order to prevent starvation, lock upgrades
// (S -> X by the sole holder) are supported, waiters time out, and
// deadlocks are detected eagerly by a waits-for-graph cycle search at
// block time — the requester that would close the cycle is the victim
// and gets ErrDeadlock.
//
// The lock table is hash-partitioned into shards, each with its own
// mutex, so transactions locking unrelated keys never contend on one
// global mutex. Cross-shard state (which keys a transaction holds,
// which key it waits on) lives behind small dedicated mutexes with a
// fixed acquisition order — waiting-graph mutex, then one shard at a
// time, then a held-set shard mutex (partitioned by TxnID) — so the
// manager itself cannot deadlock. The cycle detector inspects shards one by one without a
// global freeze; under true concurrency it may therefore pick a victim
// from a cycle that a concurrent release is already breaking (a benign
// spurious abort), and a cycle it misses is still cut by the wait
// timeout.
package lockmgr

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// String names the mode for diagnostics.
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// TxnID identifies a lock owner (a transaction).
type TxnID uint64

// Lock manager errors.
var (
	ErrDeadlock = errors.New("lockmgr: deadlock detected")
	ErrTimeout  = errors.New("lockmgr: lock wait timed out")
)

// Options configure a Manager.
type Options struct {
	// WaitTimeout bounds how long Acquire blocks when the caller's
	// context has no deadline (default 5s).
	WaitTimeout time.Duration
}

// numShards partitions the lock table; a power of two so the shard
// index is a mask.
const numShards = 64

// shardOf hashes a key (FNV-1a) to its shard index.
func shardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (numShards - 1))
}

// shard is one partition of the lock table. free is a one-slot
// lockState recycler so the common lock/release churn of a key does not
// allocate a fresh state (and holders map) every transaction.
type shard struct {
	mu    sync.Mutex
	locks map[string]*lockState
	free  *lockState
}

// heldShard is one partition of the cross-shard held set, partitioned
// by TxnID so concurrent transactions record their grants without a
// single global mutex. The per-txn key set is a small slice: almost
// every transaction holds a handful of keys, and a linear scan beats a
// map allocation per transaction.
type heldShard struct {
	mu   sync.Mutex
	held map[TxnID][]heldEntry
}

type heldEntry struct {
	key  string
	mode Mode
}

// Manager is a lock table. It is safe for concurrent use.
type Manager struct {
	opts Options

	shards [numShards]shard

	// heldShards guard the held set, partitioned by TxnID. They are
	// leaves: one may be taken while holding a shard mutex, and nothing
	// is acquired under one.
	heldShards [numShards]heldShard

	// wmu guards waitingOn and orders before shard mutexes: the cycle
	// detector holds wmu while visiting shards one at a time.
	wmu       sync.Mutex
	waitingOn map[TxnID]string // txn -> key it is blocked on
}

// heldShardOf returns the held-set partition for txn.
func (m *Manager) heldShardOf(txn TxnID) *heldShard {
	return &m.heldShards[uint64(txn)&(numShards-1)]
}

type lockState struct {
	holders map[TxnID]Mode
	queue   []*waiter
}

type waiter struct {
	txn      TxnID
	mode     Mode
	upgrade  bool
	canceled bool
	ready    chan struct{} // closed when granted, under the shard mutex
}

// New creates a Manager.
func New(opts Options) *Manager {
	if opts.WaitTimeout <= 0 {
		opts.WaitTimeout = 5 * time.Second
	}
	m := &Manager{
		opts:      opts,
		waitingOn: make(map[TxnID]string),
	}
	for i := range m.shards {
		m.shards[i].locks = make(map[string]*lockState)
		m.heldShards[i].held = make(map[TxnID][]heldEntry)
	}
	return m
}

// Acquire obtains key in mode for txn, blocking if necessary. It returns
// nil on success, ErrDeadlock if granting would deadlock, ErrTimeout if
// the wait exceeded the deadline, or the context's error.
//
// A transaction that already holds the key in the same or a stronger
// mode returns immediately; holding Shared and requesting Exclusive
// performs an upgrade.
func (m *Manager) Acquire(ctx context.Context, txn TxnID, key string, mode Mode) error {
	sh := &m.shards[shardOf(key)]
	sh.mu.Lock()
	ls := sh.locks[key]
	if ls == nil {
		if ls = sh.free; ls != nil {
			sh.free = nil
		} else {
			ls = &lockState{holders: make(map[TxnID]Mode)}
		}
		sh.locks[key] = ls
	}

	if cur, ok := ls.holders[txn]; ok {
		if cur >= mode {
			sh.mu.Unlock()
			return nil // already strong enough
		}
		// Upgrade S -> X: immediate if sole holder.
		if len(ls.holders) == 1 {
			ls.holders[txn] = Exclusive
			m.recordHeld(txn, key, Exclusive)
			sh.mu.Unlock()
			return nil
		}
		w := &waiter{txn: txn, mode: Exclusive, upgrade: true, ready: make(chan struct{})}
		// Upgraders queue ahead of ordinary waiters.
		ls.queue = append([]*waiter{w}, ls.queue...)
		sh.mu.Unlock()
		return m.block(ctx, sh, ls, w, key)
	}

	if m.grantableLocked(ls, txn, mode) && len(ls.queue) == 0 {
		m.grantLocked(ls, txn, key, mode)
		sh.mu.Unlock()
		return nil
	}
	w := &waiter{txn: txn, mode: mode, ready: make(chan struct{})}
	ls.queue = append(ls.queue, w)
	sh.mu.Unlock()
	return m.block(ctx, sh, ls, w, key)
}

// block waits for w (already queued) to be granted. Called with no
// locks held.
func (m *Manager) block(ctx context.Context, sh *shard, ls *lockState, w *waiter, key string) error {
	m.wmu.Lock()
	m.waitingOn[w.txn] = key
	cycle := m.cycleFromWLocked(w.txn)
	if cycle {
		delete(m.waitingOn, w.txn)
	}
	m.wmu.Unlock()
	if cycle {
		if m.cancelWaiter(sh, ls, w, key) {
			// Granted between enqueue and the cycle check; keep the lock
			// (strict 2PL will release it with the rest).
			return nil
		}
		return ErrDeadlock
	}

	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.opts.WaitTimeout)
		defer cancel()
	}
	select {
	case <-w.ready:
		m.unregisterWait(w.txn)
		return nil
	case <-ctx.Done():
		m.unregisterWait(w.txn)
		if m.cancelWaiter(sh, ls, w, key) {
			// Granted in the race window; the caller gets the lock after
			// all (strict 2PL will release it with the rest).
			return nil
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return ErrTimeout
		}
		return ctx.Err()
	}
}

// unregisterWait removes txn from the waits-for graph.
func (m *Manager) unregisterWait(txn TxnID) {
	m.wmu.Lock()
	delete(m.waitingOn, txn)
	m.wmu.Unlock()
}

// cancelWaiter withdraws w from the queue unless it was granted in the
// race window; it reports whether the grant won.
func (m *Manager) cancelWaiter(sh *shard, ls *lockState, w *waiter, key string) (granted bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select {
	case <-w.ready:
		return true
	default:
	}
	w.canceled = true
	m.removeWaiterLocked(ls, w)
	m.pumpLocked(sh, ls, key)
	return false
}

// recordHeld notes txn's hold of key in the cross-shard held set.
// Callable while holding a shard mutex (held shards are leaves).
func (m *Manager) recordHeld(txn TxnID, key string, mode Mode) {
	hs := m.heldShardOf(txn)
	hs.mu.Lock()
	entries := hs.held[txn]
	for i := range entries {
		if entries[i].key == key {
			entries[i].mode = mode
			hs.mu.Unlock()
			return
		}
	}
	hs.held[txn] = append(entries, heldEntry{key: key, mode: mode})
	hs.mu.Unlock()
}

// grantableLocked reports whether txn could hold key in mode alongside
// the current holders (ignoring txn's own existing hold, for upgrades).
// Caller holds the key's shard mutex.
func (m *Manager) grantableLocked(ls *lockState, txn TxnID, mode Mode) bool {
	for holder, hmode := range ls.holders {
		if holder == txn {
			continue
		}
		if mode == Exclusive || hmode == Exclusive {
			return false
		}
	}
	return true
}

// grantLocked records the grant. Caller holds the key's shard mutex.
func (m *Manager) grantLocked(ls *lockState, txn TxnID, key string, mode Mode) {
	ls.holders[txn] = mode
	m.recordHeld(txn, key, mode)
}

// pumpLocked grants queued waiters in FIFO order while compatible.
// Caller holds the shard mutex.
func (m *Manager) pumpLocked(sh *shard, ls *lockState, key string) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if w.canceled {
			ls.queue = ls.queue[1:]
			continue
		}
		if !m.grantableLocked(ls, w.txn, w.mode) {
			return
		}
		ls.queue = ls.queue[1:]
		m.grantLocked(ls, w.txn, key, w.mode)
		close(w.ready)
	}
}

// removeWaiterLocked deletes w from the queue if still present.
func (m *Manager) removeWaiterLocked(ls *lockState, w *waiter) {
	for i, q := range ls.queue {
		if q == w {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			return
		}
	}
}

// conflictersLocked returns the set of transactions that currently
// prevent txn from acquiring key in mode: incompatible holders plus
// incompatible waiters queued ahead of txn. Caller holds the key's
// shard mutex.
func (m *Manager) conflictersLocked(sh *shard, txn TxnID, key string) map[TxnID]bool {
	ls := sh.locks[key]
	if ls == nil {
		return nil
	}
	// Find txn's queued request to know its mode and position. No live
	// queue entry means txn is not actually waiting here — its waitingOn
	// record is stale (granted or canceled, goroutine not yet woken to
	// unregister) and following it would manufacture phantom edges to
	// everything queued behind its old slot.
	var req *waiter
	pos := len(ls.queue)
	for i, w := range ls.queue {
		if w.txn == txn {
			req = w
			pos = i
			break
		}
	}
	if req == nil || req.canceled {
		return nil
	}
	mode := req.mode
	out := make(map[TxnID]bool)
	for holder, hmode := range ls.holders {
		if holder == txn {
			continue
		}
		if mode == Exclusive || hmode == Exclusive {
			out[holder] = true
		}
	}
	for i := 0; i < pos; i++ {
		w := ls.queue[i]
		if w.txn == txn || w.canceled {
			continue
		}
		if mode == Exclusive || w.mode == Exclusive {
			out[w.txn] = true
		}
	}
	return out
}

// cycleFromWLocked reports whether the waits-for graph reachable from
// start leads back to start. Caller holds wmu; each visited key's shard
// is locked transiently (one at a time, never two — shards are below
// wmu in the lock order and a DFS may revisit a shard).
func (m *Manager) cycleFromWLocked(start TxnID) bool {
	visited := map[TxnID]bool{}
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		key, blocked := m.waitingOn[t]
		if !blocked {
			return false
		}
		sh := &m.shards[shardOf(key)]
		sh.mu.Lock()
		conf := m.conflictersLocked(sh, t, key)
		sh.mu.Unlock()
		for c := range conf {
			if c == start {
				return true
			}
			if !visited[c] {
				visited[c] = true
				if dfs(c) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// Release drops txn's lock on key (if held) and wakes compatible waiters.
func (m *Manager) Release(txn TxnID, key string) {
	sh := &m.shards[shardOf(key)]
	sh.mu.Lock()
	m.releaseLocked(sh, txn, key)
	sh.mu.Unlock()
	hs := m.heldShardOf(txn)
	hs.mu.Lock()
	entries := hs.held[txn]
	for i := range entries {
		if entries[i].key == key {
			hs.held[txn] = append(entries[:i], entries[i+1:]...)
			break
		}
	}
	if len(hs.held[txn]) == 0 {
		delete(hs.held, txn)
	}
	hs.mu.Unlock()
}

// releaseLocked drops the shard-local hold and pumps the queue. Caller
// holds the shard mutex; the held set is the caller's to update.
func (m *Manager) releaseLocked(sh *shard, txn TxnID, key string) {
	ls := sh.locks[key]
	if ls == nil {
		return
	}
	if _, ok := ls.holders[txn]; !ok {
		return
	}
	delete(ls.holders, txn)
	m.pumpLocked(sh, ls, key)
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(sh.locks, key)
		sh.free = ls
	}
}

// ReleaseAll drops every lock txn holds — the strict-2PL release at
// commit or abort.
func (m *Manager) ReleaseAll(txn TxnID) {
	hs := m.heldShardOf(txn)
	hs.mu.Lock()
	entries := hs.held[txn]
	delete(hs.held, txn)
	hs.mu.Unlock()
	for _, e := range entries {
		sh := &m.shards[shardOf(e.key)]
		sh.mu.Lock()
		m.releaseLocked(sh, txn, e.key)
		sh.mu.Unlock()
	}
}

// Holds reports the mode txn holds on key, if any.
func (m *Manager) Holds(txn TxnID, key string) (Mode, bool) {
	hs := m.heldShardOf(txn)
	hs.mu.Lock()
	defer hs.mu.Unlock()
	for _, e := range hs.held[txn] {
		if e.key == key {
			return e.mode, true
		}
	}
	return 0, false
}

// HeldKeys returns how many keys txn currently holds.
func (m *Manager) HeldKeys(txn TxnID) int {
	hs := m.heldShardOf(txn)
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return len(hs.held[txn])
}
