// Package replica implements the lazy convergence path for Delay
// Updates. A committed Delay Update mutates only the local copy of the
// datum; the delta is recorded in the site's outbound log and batched to
// peers ("the result is propagated to all the system at the earliest" —
// asynchronously, off the update's critical path).
//
// Because every update is a delta and deltas commute, each site's copy
// equals the initial value plus the sum of all deltas it has applied —
// a PN-counter. Exactly-once application is guaranteed by per-origin
// sequence numbers: a receiver applies only the contiguous extension of
// what it has already applied, so replays, reorderings and losses (the
// sender retransmits from the last acknowledged sequence) are all safe.
package replica

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"avdb/internal/clock"
	"avdb/internal/failure"
	"avdb/internal/storage"
	"avdb/internal/transport"
	"avdb/internal/txn"
	"avdb/internal/wire"
)

// Metadata keys used by durable replicators (stored through the
// engine's meta namespace, atomically with the data they describe).
const (
	metaLogPrefix     = "repl/log/"
	metaAppliedPrefix = "repl/applied/"
	metaFloorKey      = "repl/floor"
)

// metaLogKey pads the sequence so meta rows sort in log order.
func metaLogKey(seq uint64) string {
	return fmt.Sprintf("%s%020d", metaLogPrefix, seq)
}

// encodeLogValue serializes one outbound log entry's (key, delta).
func encodeLogValue(key string, delta int64) []byte {
	b := binary.AppendVarint(nil, delta)
	return append(b, key...)
}

// decodeLogValue parses encodeLogValue output.
func decodeLogValue(v []byte) (key string, delta int64, err error) {
	delta, n := binary.Varint(v)
	if n <= 0 {
		return "", 0, fmt.Errorf("replica: corrupt log value")
	}
	return string(v[n:]), delta, nil
}

// Replicator manages one site's outbound delta log and the application
// of other sites' deltas. It is safe for concurrent use.
type Replicator struct {
	origin  wire.SiteID
	eng     *storage.Engine
	durable bool

	mu       sync.Mutex
	log      []wire.Delta
	firstSeq uint64                 // seq of log[0]; log is a contiguous suffix
	applied  map[wire.SiteID]uint64 // remote origin -> highest seq applied here
	acked    map[wire.SiteID]uint64 // peer -> highest of OUR seqs it acked

	// Partial replication (see SetPartitionFilter); nil = replicate
	// everything to everyone, the legacy full-replication behaviour.
	peerHosts  func(peer wire.SiteID, key string) bool
	localHosts func(key string) bool

	// Epoch-aligned flushing (see AlignToEpochs/Fence). When fenceOn,
	// outbound windows stop at fenceSeq — the log top snapshotted at the
	// last durable epoch boundary — so every delta a flush ships is
	// covered by an already-issued epoch fsync, never racing one.
	fenceOn  bool
	fenceSeq uint64

	// Per-peer flush control (see SetFlushPolicy). Guarded by fmu, not
	// mu: Flush consults it while the log lock is free.
	fmu          sync.Mutex
	flushTimeout time.Duration
	flushPolicy  failure.Policy
	flushClock   clock.Clock
	flushFail    map[wire.SiteID]*flushBackoff
}

// flushBackoff tracks one unreachable peer on the flush path.
type flushBackoff struct {
	failures int
	until    time.Time
}

// New creates a volatile replicator for the site origin writing into
// eng — correct for in-memory sites, whose whole state vanishes
// together on restart.
func New(origin wire.SiteID, eng *storage.Engine) *Replicator {
	return &Replicator{
		origin:   origin,
		eng:      eng,
		firstSeq: 1,
		applied:  make(map[wire.SiteID]uint64),
		acked:    make(map[wire.SiteID]uint64),
	}
}

// NewDurable creates a replicator whose outbound log and per-origin
// applied watermarks live in the engine's metadata namespace, written
// atomically with the data they describe. A durable site therefore
// survives restarts without double-applying retransmitted deltas
// (watermark persists) and without losing committed-but-unpropagated
// local deltas (log persists).
func NewDurable(origin wire.SiteID, eng *storage.Engine) (*Replicator, error) {
	r := New(origin, eng)
	r.durable = true
	// Recover the compaction floor.
	if v, ok, err := eng.GetMeta(metaFloorKey); err != nil {
		return nil, err
	} else if ok {
		floor, n := binary.Uvarint(v)
		if n <= 0 {
			return nil, fmt.Errorf("replica: corrupt floor")
		}
		r.firstSeq = floor
	}
	// Recover the outbound log.
	var scanErr error
	err := eng.ScanMeta(metaLogPrefix, func(k string, v []byte) bool {
		seq, err := strconv.ParseUint(strings.TrimPrefix(k, metaLogPrefix), 10, 64)
		if err != nil {
			scanErr = fmt.Errorf("replica: corrupt log key %q", k)
			return false
		}
		key, delta, err := decodeLogValue(v)
		if err != nil {
			scanErr = err
			return false
		}
		want := r.firstSeq + uint64(len(r.log))
		if seq != want {
			scanErr = fmt.Errorf("replica: log gap: found seq %d, want %d", seq, want)
			return false
		}
		r.log = append(r.log, wire.Delta{Seq: seq, Key: key, Amount: delta})
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	// Recover applied watermarks.
	err = eng.ScanMeta(metaAppliedPrefix, func(k string, v []byte) bool {
		id, err := strconv.ParseUint(strings.TrimPrefix(k, metaAppliedPrefix), 10, 32)
		if err != nil {
			scanErr = fmt.Errorf("replica: corrupt applied key %q", k)
			return false
		}
		upTo, n := binary.Uvarint(v)
		if n <= 0 {
			scanErr = fmt.Errorf("replica: corrupt applied value for %q", k)
			return false
		}
		r.applied[wire.SiteID(id)] = upTo
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return r, nil
}

// Durable reports whether this replicator persists its state.
func (r *Replicator) Durable() bool { return r.durable }

// Record appends a locally committed delta to the outbound log and
// returns its sequence number. Volatile replicators only — durable
// callers must use CommitWithRecord so the log row lands in the same
// storage batch as the data it describes.
func (r *Replicator) Record(key string, delta int64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := r.firstSeq + uint64(len(r.log))
	r.log = append(r.log, wire.Delta{Seq: seq, Key: key, Amount: delta})
	return seq
}

// NextSeq returns the sequence the next Record will get.
func (r *Replicator) NextSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.firstSeq + uint64(len(r.log))
}

// CommitWithRecord commits tx — which must already hold the buffered
// data write of (key, delta) — together with the outbound log entry,
// and returns the entry's sequence. For volatile replicators the commit
// and the in-memory log append simply happen back to back; for durable
// ones the log row is part of the committed batch, so a crash can never
// separate the update from its replication record.
func (r *Replicator) CommitWithRecord(tx *txn.Txn, key string, delta int64) (uint64, error) {
	if !r.durable {
		if err := tx.Commit(); err != nil {
			return 0, err
		}
		return r.Record(key, delta), nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := r.firstSeq + uint64(len(r.log))
	if err := tx.PutMeta(metaLogKey(seq), encodeLogValue(key, delta)); err != nil {
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	r.log = append(r.log, wire.Delta{Seq: seq, Key: key, Amount: delta})
	return seq, nil
}

// SetPartitionFilter makes replication partial: outbound windows carry
// only the entries whose key peerHosts says the destination hosts, and
// inbound windows apply only the entries localHosts accepts (a second
// line of defense against a sender with a different partition map).
// Watermarks still advance over whole windows — a filtered-out entry is
// acknowledged, never retransmitted — via DeltaSync.WindowTop. Call
// before any traffic flows; nil functions restore full replication.
func (r *Replicator) SetPartitionFilter(peerHosts func(peer wire.SiteID, key string) bool, localHosts func(key string) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peerHosts = peerHosts
	r.localHosts = localHosts
}

// SetFlushPolicy bounds each peer's exchange during Flush with its own
// deadline and backs off peers that keep failing: a peer inside its
// backoff window is skipped entirely (its backlog is kept), so one dead
// site cannot slow every flush round to its timeout. A zero timeout
// disables the per-peer deadline; a zero policy disables backoff. clk
// may be nil (wall clock); tests inject a virtual one.
func (r *Replicator) SetFlushPolicy(timeout time.Duration, policy failure.Policy, clk clock.Clock) {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	if clk == nil {
		clk = clock.Real{}
	}
	r.flushTimeout = timeout
	r.flushPolicy = policy
	r.flushClock = clk
	r.flushFail = make(map[wire.SiteID]*flushBackoff)
}

// flushSkip reports whether peer is inside its failure backoff window.
func (r *Replicator) flushSkip(peer wire.SiteID) bool {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	if r.flushFail == nil {
		return false
	}
	fb := r.flushFail[peer]
	return fb != nil && r.flushClock.Now().Before(fb.until)
}

// flushOutcome records a peer's flush result for the backoff window.
func (r *Replicator) flushOutcome(peer wire.SiteID, ok bool) {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	if r.flushFail == nil {
		return
	}
	if ok {
		delete(r.flushFail, peer)
		return
	}
	if r.flushPolicy.BaseDelay <= 0 {
		return
	}
	fb := r.flushFail[peer]
	if fb == nil {
		fb = &flushBackoff{}
		r.flushFail[peer] = fb
	}
	fb.failures++
	fb.until = r.flushClock.Now().Add(r.flushPolicy.Backoff(fb.failures))
}

// AlignToEpochs turns on epoch-aligned flushing: outbound delta windows
// are capped at the fence last snapshotted by Fence instead of the live
// log top. The site arranges for Fence to run each time the durable
// epoch watermark advances (epoch.Options.OnDurable), so one covering
// fsync pays for both the epoch's commit acks and the replication
// window those commits ride out in — the flush never snapshots a window
// mid-epoch. Entries beyond the fence simply wait for the next epoch
// close; with epochs off this must stay off (windows would wedge).
func (r *Replicator) AlignToEpochs() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fenceOn = true
	r.fenceSeq = r.firstSeq + uint64(len(r.log)) - 1
}

// Fence snapshots the current log top as the outbound window cap.
// Called from the epoch manager's OnDurable hook: everything in the log
// right now was committed — and therefore journaled — no later than the
// epoch that just became durable.
func (r *Replicator) Fence() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if top := r.firstSeq + uint64(len(r.log)) - 1; top > r.fenceSeq {
		r.fenceSeq = top
	}
}

// windowTopLocked returns the highest sequence an outbound window may
// cover: the log top, capped at the epoch fence when aligned flushing
// is on. Caller holds r.mu.
func (r *Replicator) windowTopLocked() uint64 {
	top := r.firstSeq + uint64(len(r.log)) - 1
	if r.fenceOn && r.fenceSeq < top {
		top = r.fenceSeq
	}
	return top
}

// PendingFor returns the deltas peer has not acknowledged yet.
func (r *Replicator) PendingFor(peer wire.SiteID) []wire.Delta {
	r.mu.Lock()
	defer r.mu.Unlock()
	from := r.acked[peer] + 1
	if from < r.firstSeq {
		// The log was compacted past entries the peer never acked; this
		// cannot happen through Compact, which respects all acks.
		from = r.firstSeq
	}
	idx := int(from - r.firstSeq)
	if idx >= len(r.log) {
		return nil
	}
	out := make([]wire.Delta, len(r.log)-idx)
	copy(out, r.log[idx:])
	return out
}

// Lag returns how many of our deltas peer has not acknowledged.
func (r *Replicator) Lag(peer wire.SiteID) int {
	return len(r.PendingFor(peer))
}

// PendingSyncFor returns the unacknowledged backlog for peer as one
// coalesced DeltaSync, or nil when the peer is caught up. Deltas to the
// same key within the window are summed into a single entry (they
// commute), so a hot key costs one wire entry per flush instead of one
// per update. The message's FirstSeq marks the first covered sequence
// and each entry's Seq the last sequence it absorbed; the receiver
// applies the window all-or-nothing (see wire.DeltaSync).
func (r *Replicator) PendingSyncFor(peer wire.SiteID) *wire.DeltaSync {
	r.mu.Lock()
	defer r.mu.Unlock()
	from := r.acked[peer] + 1
	if from < r.firstSeq {
		// The log was compacted past entries the peer never acked; this
		// cannot happen through Compact, which respects all acks.
		from = r.firstSeq
	}
	top := r.windowTopLocked()
	if from > top {
		return nil
	}
	idx := int(from - r.firstSeq)
	end := int(top - r.firstSeq + 1)
	msg := &wire.DeltaSync{Origin: r.origin, FirstSeq: from}
	byKey := make(map[string]int)
	filtered := false
	for _, d := range r.log[idx:end] {
		if r.peerHosts != nil && !r.peerHosts(peer, d.Key) {
			// Partial replication: the peer does not host this key's
			// partition. The entry is omitted but its sequence is still
			// covered by the window (WindowTop below), so the peer acks
			// it and it is never retransmitted.
			filtered = true
			continue
		}
		if i, ok := byKey[d.Key]; ok {
			msg.Deltas[i].Amount += d.Amount
			msg.Deltas[i].Seq = d.Seq
			continue
		}
		byKey[d.Key] = len(msg.Deltas)
		msg.Deltas = append(msg.Deltas, d)
	}
	if filtered {
		msg.WindowTop = top
	}
	return msg
}

// AppliedFrom returns the highest sequence applied from origin.
func (r *Replicator) AppliedFrom(origin wire.SiteID) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied[origin]
}

// HandleSync applies a peer's delta batch and returns the cumulative
// acknowledgement.
//
// A verbatim batch (FirstSeq zero) applies its contiguous new prefix:
// already-applied entries are skipped (idempotence) and a gap stops
// application (the sender will retransmit from our ack). A coalesced
// batch (FirstSeq nonzero) no longer carries individual sequences, so
// it applies all-or-nothing: only when FirstSeq extends our watermark
// exactly. Either way the returned ack tells the sender precisely where
// to resume, so a lost ack or misaligned window costs one realignment
// round, never a lost or doubled delta.
func (r *Replicator) HandleSync(msg *wire.DeltaSync) (*wire.DeltaAck, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	high := r.applied[msg.Origin]
	var ops []storage.Op
	if msg.FirstSeq != 0 {
		to := msg.WindowTop // sender-filtered windows may end past the last entry
		for _, d := range msg.Deltas {
			if d.Seq > to {
				to = d.Seq
			}
		}
		if to > high && msg.FirstSeq == high+1 {
			for _, d := range msg.Deltas {
				if r.localHosts != nil && !r.localHosts(d.Key) {
					continue // not our partition; ack it, never apply it
				}
				ops = append(ops, storage.DeltaOp(d.Key, d.Amount))
			}
			high = to
		}
		// to <= high: pure duplicate (skip, ack our watermark).
		// FirstSeq > high+1: gap — wait for retransmission from the ack.
		// FirstSeq <= high < to: partially replayed window; coalesced
		// entries cannot be split, so reject it whole and let the ack
		// realign the sender's next flush.
	} else {
		for _, d := range msg.Deltas {
			if d.Seq <= high {
				continue // duplicate
			}
			if d.Seq != high+1 {
				break // gap: wait for retransmission
			}
			if r.localHosts == nil || r.localHosts(d.Key) {
				ops = append(ops, storage.DeltaOp(d.Key, d.Amount))
			}
			high = d.Seq
		}
	}
	if len(ops) > 0 || (r.durable && high > r.applied[msg.Origin]) {
		if r.durable {
			// The watermark commits in the same batch as the deltas, so
			// a crash can never double-apply a retransmission. It must be
			// persisted even when the window applied nothing (every entry
			// filtered to a foreign partition): the ack we return makes
			// the sender trim its retransmission window permanently, so a
			// crash forgetting the advance would leave our durable
			// watermark stranded behind acks the sender will never
			// re-cover — wedging replication at the gap.
			wm := binary.AppendUvarint(nil, high)
			ops = append(ops, storage.MetaPutOp(
				fmt.Sprintf("%s%d", metaAppliedPrefix, msg.Origin), wm))
		}
		if err := r.eng.Apply(ops...); err != nil {
			// All sites share the same schema seeded from the base DB, so
			// a missing key is a real invariant violation, not a race.
			return nil, fmt.Errorf("replica: apply batch from site %d: %w", msg.Origin, err)
		}
	}
	r.applied[msg.Origin] = high
	return &wire.DeltaAck{Origin: msg.Origin, UpTo: high}, nil
}

// HandleAck records a peer's cumulative acknowledgement of our log.
func (r *Replicator) HandleAck(peer wire.SiteID, upTo uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if upTo > r.acked[peer] {
		r.acked[peer] = upTo
	}
}

// Flush pushes pending deltas to every peer concurrently and processes
// their acks; it returns once every peer's exchange finished. Each peer
// gets one coalesced DeltaSync, so flush latency is the slowest peer's
// round trip, not the sum. Unreachable peers are skipped (their backlog
// is kept for the next flush); every peer is attempted regardless of
// other peers' failures, and all unexpected errors are returned joined.
func (r *Replicator) Flush(ctx context.Context, node transport.Node, peers []wire.SiteID) error {
	type job struct {
		peer wire.SiteID
		msg  *wire.DeltaSync
	}
	var jobs []job
	for _, peer := range peers {
		if r.flushSkip(peer) {
			continue // failing peer inside its backoff window
		}
		if msg := r.PendingSyncFor(peer); msg != nil {
			jobs = append(jobs, job{peer, msg})
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			cctx := ctx
			r.fmu.Lock()
			timeout := r.flushTimeout
			clk := r.flushClock
			r.fmu.Unlock()
			cancel := context.CancelFunc(func() {})
			if timeout > 0 {
				// Per-peer deadline: one slow peer bounds only its own
				// exchange, never the whole fan-out.
				cctx, cancel = clock.WithTimeout(ctx, clk, timeout)
			}
			reply, err := node.Call(cctx, j.peer, j.msg)
			// Cancelled eagerly, not deferred: a finished exchange must not
			// leave its deadline timer pending on a virtual clock.
			cancel()
			if err != nil {
				// Partition or crash: keep the backlog, back the peer off,
				// try again later. This is the fault tolerance claim: Delay
				// Updates committed during the partition flow out once it
				// heals.
				r.flushOutcome(j.peer, false)
				return
			}
			r.flushOutcome(j.peer, true)
			ack, ok := reply.(*wire.DeltaAck)
			if !ok {
				errs[i] = fmt.Errorf("replica: unexpected reply %T from site %d", reply, j.peer)
				return
			}
			r.HandleAck(j.peer, ack.UpTo)
		}(i, j)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Pull fetches pending deltas *from* every peer (the push direction is
// Flush): each peer replies with the suffix of its log we have not yet
// acknowledged; we apply it and acknowledge with a one-way DeltaAck.
// After a Pull from all live peers, the local replica reflects every
// update those peers had committed when they answered — the basis for
// fresh reads. Unreachable peers are skipped.
func (r *Replicator) Pull(ctx context.Context, node transport.Node, peers []wire.SiteID) error {
	var firstErr error
	for _, peer := range peers {
		reply, err := node.Call(ctx, peer, &wire.SyncPull{})
		if err != nil {
			continue // partitioned/crashed peer: pull what we can reach
		}
		sync, ok := reply.(*wire.DeltaSync)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("replica: unexpected pull reply %T from site %d", reply, peer)
			}
			continue
		}
		ack, err := r.HandleSync(sync)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Tell the peer what we now hold so its push path and Compact
		// see the progress. Best effort: a lost ack only means a
		// harmless retransmission later.
		_ = node.Send(ctx, peer, ack)
	}
	return firstErr
}

// Compact drops log entries acknowledged by every peer in peers. It
// must be called with the full peer set; entries a peer has not acked
// are retained.
func (r *Replicator) Compact(peers []wire.SiteID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.log) == 0 {
		return
	}
	min := r.firstSeq + uint64(len(r.log)) - 1
	for _, p := range peers {
		if a := r.acked[p]; a < min {
			min = a
		}
	}
	if min < r.firstSeq {
		return
	}
	drop := int(min - r.firstSeq + 1)
	if r.durable {
		ops := make([]storage.Op, 0, drop+1)
		for seq := r.firstSeq; seq <= min; seq++ {
			ops = append(ops, storage.MetaDeleteOp(metaLogKey(seq)))
		}
		ops = append(ops, storage.MetaPutOp(metaFloorKey, binary.AppendUvarint(nil, min+1)))
		if err := r.eng.Apply(ops...); err != nil {
			return // keep the uncompacted log; retry next time
		}
	}
	r.log = append([]wire.Delta(nil), r.log[drop:]...)
	r.firstSeq = min + 1
}

// LogLen returns the current outbound log length (for tests/metrics).
func (r *Replicator) LogLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.log)
}
