package replica

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"avdb/internal/clock"
	"avdb/internal/failure"
	"avdb/internal/rng"
	"avdb/internal/storage"
	"avdb/internal/transport"
	"avdb/internal/transport/memnet"
	"avdb/internal/wire"
)

func newEng(t *testing.T, amount int64) *storage.Engine {
	t.Helper()
	e, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	e.Put(storage.Record{Key: "k", Amount: amount})
	return e
}

func TestRecordAssignsSeqs(t *testing.T) {
	r := New(1, newEng(t, 0))
	if s := r.Record("k", -5); s != 1 {
		t.Fatalf("seq = %d", s)
	}
	if s := r.Record("k", 3); s != 2 {
		t.Fatalf("seq = %d", s)
	}
	if r.NextSeq() != 3 {
		t.Fatalf("NextSeq = %d", r.NextSeq())
	}
}

func TestHandleSyncAppliesContiguous(t *testing.T) {
	eng := newEng(t, 100)
	r := New(2, eng)
	ack, err := r.HandleSync(&wire.DeltaSync{Origin: 1, Deltas: []wire.Delta{
		{Seq: 1, Key: "k", Amount: -10},
		{Seq: 2, Key: "k", Amount: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.UpTo != 2 || ack.Origin != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if n, _ := eng.Amount("k"); n != 95 {
		t.Fatalf("amount = %d, want 95", n)
	}
}

func TestHandleSyncDedupes(t *testing.T) {
	eng := newEng(t, 100)
	r := New(2, eng)
	batch := &wire.DeltaSync{Origin: 1, Deltas: []wire.Delta{{Seq: 1, Key: "k", Amount: -10}}}
	r.HandleSync(batch)
	ack, err := r.HandleSync(batch) // replay must be a no-op
	if err != nil {
		t.Fatal(err)
	}
	if ack.UpTo != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if n, _ := eng.Amount("k"); n != 90 {
		t.Fatalf("replay double-applied: %d", n)
	}
}

func TestHandleSyncStopsAtGap(t *testing.T) {
	eng := newEng(t, 100)
	r := New(2, eng)
	ack, err := r.HandleSync(&wire.DeltaSync{Origin: 1, Deltas: []wire.Delta{
		{Seq: 1, Key: "k", Amount: -1},
		{Seq: 3, Key: "k", Amount: -100}, // gap: seq 2 missing
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.UpTo != 1 {
		t.Fatalf("ack = %+v, want UpTo 1", ack)
	}
	if n, _ := eng.Amount("k"); n != 99 {
		t.Fatalf("gap entry applied: %d", n)
	}
	// Retransmission with the gap filled applies the rest.
	ack, _ = r.HandleSync(&wire.DeltaSync{Origin: 1, Deltas: []wire.Delta{
		{Seq: 2, Key: "k", Amount: -2},
		{Seq: 3, Key: "k", Amount: -100},
	}})
	if ack.UpTo != 3 {
		t.Fatalf("ack = %+v", ack)
	}
	if n, _ := eng.Amount("k"); n != -3 {
		t.Fatalf("amount = %d, want -3", n)
	}
}

func TestHandleSyncUnknownKeyErrors(t *testing.T) {
	r := New(2, newEng(t, 0))
	_, err := r.HandleSync(&wire.DeltaSync{Origin: 1, Deltas: []wire.Delta{
		{Seq: 1, Key: "ghost", Amount: 1},
	}})
	if err == nil {
		t.Fatal("unknown key silently accepted")
	}
}

func TestPendingAndAck(t *testing.T) {
	r := New(1, newEng(t, 0))
	for i := 0; i < 5; i++ {
		r.Record("k", 1)
	}
	if got := r.PendingFor(2); len(got) != 5 {
		t.Fatalf("pending = %d", len(got))
	}
	r.HandleAck(2, 3)
	pend := r.PendingFor(2)
	if len(pend) != 2 || pend[0].Seq != 4 {
		t.Fatalf("pending after ack = %+v", pend)
	}
	r.HandleAck(2, 2) // stale ack must not regress
	if r.Lag(2) != 2 {
		t.Fatalf("lag = %d", r.Lag(2))
	}
}

// TestEpochFenceCapsWindows pins the epoch-aligned flush contract:
// with AlignToEpochs on, PendingSyncFor exposes only entries at or
// below the last Fence — a flush kicked by an epoch close ships
// exactly the deltas that epoch covered, and the advertised WindowTop
// never claims entries past the fence.
func TestEpochFenceCapsWindows(t *testing.T) {
	r := New(1, newEng(t, 0))
	r.AlignToEpochs()
	// Distinct keys: same-key deltas coalesce within a window and would
	// hide the per-sequence fence boundary this test pins.
	r.Record("a", 1)
	r.Record("b", 1)
	// No fence advance yet: the log top at alignment was 0.
	if msg := r.PendingSyncFor(2); msg != nil {
		t.Fatalf("unfenced entries leaked into a window: %+v", msg)
	}
	r.Fence() // epoch closed covering seqs 1-2
	r.Record("c", 1)
	msg := r.PendingSyncFor(2)
	if msg == nil {
		t.Fatal("no window after the fence advanced")
	}
	if len(msg.Deltas) != 2 || msg.Deltas[1].Seq != 2 {
		t.Fatalf("window = %+v, want exactly seqs 1-2", msg.Deltas)
	}
	// The next fence exposes the straggler.
	r.Fence()
	msg = r.PendingSyncFor(2)
	if len(msg.Deltas) != 3 || msg.Deltas[2].Seq != 3 {
		t.Fatalf("window after second fence = %+v, want seqs 1-3", msg.Deltas)
	}
}

// TestFenceMonotone checks a fence never regresses and that an
// unaligned replicator is unaffected by fencing.
func TestFenceMonotone(t *testing.T) {
	r := New(1, newEng(t, 0))
	r.Record("k", 1) // no AlignToEpochs: windows are unfenced
	if msg := r.PendingSyncFor(2); msg == nil || len(msg.Deltas) != 1 {
		t.Fatalf("unaligned replicator fenced its window: %+v", msg)
	}
	r.AlignToEpochs() // aligns at the current top: entry 1 stays visible
	if msg := r.PendingSyncFor(2); msg == nil || len(msg.Deltas) != 1 {
		t.Fatalf("alignment at top hid an existing entry: %+v", msg)
	}
}

func TestCompactRespectsSlowestPeer(t *testing.T) {
	r := New(1, newEng(t, 0))
	for i := 0; i < 10; i++ {
		r.Record("k", 1)
	}
	r.HandleAck(2, 10)
	r.HandleAck(3, 4)
	r.Compact([]wire.SiteID{2, 3})
	if r.LogLen() != 6 {
		t.Fatalf("log len = %d, want 6 (seqs 5..10 kept)", r.LogLen())
	}
	pend := r.PendingFor(3)
	if len(pend) != 6 || pend[0].Seq != 5 {
		t.Fatalf("pending for slow peer = %+v", pend)
	}
	if len(r.PendingFor(2)) != 0 {
		t.Fatal("fast peer has pending after full ack")
	}
}

func TestFlushOverNetwork(t *testing.T) {
	net := memnet.New(memnet.Options{})
	engA := newEng(t, 100)
	engB := newEng(t, 100)
	replA := New(1, engA)
	replB := New(2, engB)
	var nodeA transport.Node
	handler := func(r *Replicator) transport.Handler {
		return func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
			if s, ok := msg.(*wire.DeltaSync); ok {
				ack, err := r.HandleSync(s)
				if err != nil {
					t.Error(err)
					return nil
				}
				return ack
			}
			return nil
		}
	}
	nodeA, err := net.Open(1, handler(replA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Open(2, handler(replB)); err != nil {
		t.Fatal(err)
	}

	// A commits local deltas and flushes to B.
	engA.ApplyDelta("k", -30)
	replA.Record("k", -30)
	engA.ApplyDelta("k", +10)
	replA.Record("k", +10)
	if err := replA.Flush(context.Background(), nodeA, []wire.SiteID{2}); err != nil {
		t.Fatal(err)
	}
	if n, _ := engB.Amount("k"); n != 80 {
		t.Fatalf("B amount = %d, want 80", n)
	}
	if replA.Lag(2) != 0 {
		t.Fatalf("lag after flush = %d", replA.Lag(2))
	}
	// Flush with nothing pending sends nothing.
	if err := replA.Flush(context.Background(), nodeA, []wire.SiteID{2}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushSurvivesPartition(t *testing.T) {
	net := memnet.New(memnet.Options{})
	engA := newEng(t, 100)
	engB := newEng(t, 100)
	replA := New(1, engA)
	replB := New(2, engB)
	nodeA, _ := net.Open(1, func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message { return nil })
	net.Open(2, func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		ack, _ := replB.HandleSync(msg.(*wire.DeltaSync))
		return ack
	})
	engA.ApplyDelta("k", -50)
	replA.Record("k", -50)
	net.Block(1, 2)
	if err := replA.Flush(context.Background(), nodeA, []wire.SiteID{2}); err != nil {
		t.Fatalf("flush during partition must not error: %v", err)
	}
	if replA.Lag(2) != 1 {
		t.Fatal("backlog dropped during partition")
	}
	net.Unblock(1, 2)
	if err := replA.Flush(context.Background(), nodeA, []wire.SiteID{2}); err != nil {
		t.Fatal(err)
	}
	if n, _ := engB.Amount("k"); n != 50 {
		t.Fatalf("B amount = %d after heal, want 50", n)
	}
}

// TestQuickConvergence: three sites record random deltas; syncs are
// delivered in random interleavings with duplications; after full
// exchange all copies are equal to initial + sum of all deltas.
func TestQuickConvergence(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 3
		engs := make([]*storage.Engine, n)
		repls := make([]*Replicator, n)
		var total int64 = 1000
		for i := 0; i < n; i++ {
			e, _ := storage.Open(storage.Options{})
			defer e.Close()
			e.Put(storage.Record{Key: "k", Amount: total})
			engs[i] = e
			repls[i] = New(wire.SiteID(i), e)
		}
		var sum int64
		for step := 0; step < 100; step++ {
			i := r.Intn(n)
			d := r.Range(-20, 20)
			engs[i].ApplyDelta("k", d)
			repls[i].Record("k", d)
			sum += d
			// Random (possibly duplicated, possibly stale-prefix) sync.
			if r.Bool(0.5) {
				src, dst := r.Intn(n), r.Intn(n)
				if src != dst {
					pend := repls[src].PendingFor(wire.SiteID(dst))
					if len(pend) > 0 {
						cut := r.Intn(len(pend)) + 1
						ack, err := repls[dst].HandleSync(&wire.DeltaSync{Origin: wire.SiteID(src), Deltas: pend[:cut]})
						if err != nil {
							return false
						}
						if r.Bool(0.8) { // acks may be lost too
							repls[src].HandleAck(wire.SiteID(dst), ack.UpTo)
						}
					}
				}
			}
		}
		// Final anti-entropy until quiescent.
		for round := 0; round < 10; round++ {
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					pend := repls[src].PendingFor(wire.SiteID(dst))
					if len(pend) == 0 {
						continue
					}
					ack, err := repls[dst].HandleSync(&wire.DeltaSync{Origin: wire.SiteID(src), Deltas: pend})
					if err != nil {
						return false
					}
					repls[src].HandleAck(wire.SiteID(dst), ack.UpTo)
				}
			}
		}
		for i := 0; i < n; i++ {
			if v, _ := engs[i].Amount("k"); v != total+sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPullFetchesPeerDeltas(t *testing.T) {
	net := memnet.New(memnet.Options{})
	engA := newEng(t, 100)
	engB := newEng(t, 100)
	replA := New(1, engA)
	replB := New(2, engB)
	// A answers pulls and receives acks; B initiates the pull.
	nodeA, _ := net.Open(1, func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		switch m := msg.(type) {
		case *wire.SyncPull:
			return &wire.DeltaSync{Origin: 1, Deltas: replA.PendingFor(from)}
		case *wire.DeltaAck:
			replA.HandleAck(from, m.UpTo)
		}
		return nil
	})
	_ = nodeA
	nodeB, _ := net.Open(2, func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message { return nil })

	engA.ApplyDelta("k", -40)
	replA.Record("k", -40)
	if err := replB.Pull(context.Background(), nodeB, []wire.SiteID{1}); err != nil {
		t.Fatal(err)
	}
	if v, _ := engB.Amount("k"); v != 60 {
		t.Fatalf("B amount = %d after pull", v)
	}
	// The one-way ack reaches A so its push backlog drains.
	net.Quiesce()
	deadline := time.Now().Add(2 * time.Second)
	for replA.Lag(2) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lag = %d after pulled ack", replA.Lag(2))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPullSkipsUnreachable(t *testing.T) {
	net := memnet.New(memnet.Options{})
	engB := newEng(t, 100)
	replB := New(2, engB)
	nodeB, _ := net.Open(2, func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message { return nil })
	// Peer 9 does not exist: Pull must not error.
	if err := replB.Pull(context.Background(), nodeB, []wire.SiteID{9}); err != nil {
		t.Fatalf("pull from missing peer: %v", err)
	}
}

func TestFlushBacksOffFailingPeer(t *testing.T) {
	net := memnet.New(memnet.Options{CallTimeout: 100 * time.Millisecond})
	engA := newEng(t, 100)
	engB := newEng(t, 100)
	replA := New(1, engA)
	replB := New(2, engB)
	nodeA, _ := net.Open(1, func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message { return nil })
	net.Open(2, func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		ack, _ := replB.HandleSync(msg.(*wire.DeltaSync))
		return ack
	})
	vc := clock.NewVirtual(time.Unix(100, 0))
	replA.SetFlushPolicy(50*time.Millisecond, failure.Policy{BaseDelay: time.Second, MaxDelay: 8 * time.Second}, vc)

	engA.ApplyDelta("k", -10)
	replA.Record("k", -10)
	net.Block(1, 2)
	// First flush fails and opens the backoff window.
	if err := replA.Flush(context.Background(), nodeA, []wire.SiteID{2}); err != nil {
		t.Fatal(err)
	}
	if replA.Lag(2) != 1 {
		t.Fatal("backlog lost")
	}
	// Within the window the peer is skipped even though the partition has
	// healed — no call is made (the backlog stays).
	net.Unblock(1, 2)
	if err := replA.Flush(context.Background(), nodeA, []wire.SiteID{2}); err != nil {
		t.Fatal(err)
	}
	if replA.Lag(2) != 1 {
		t.Fatal("flush inside backoff window contacted the peer")
	}
	// After the window the peer is retried and catches up.
	vc.Advance(2 * time.Second)
	if err := replA.Flush(context.Background(), nodeA, []wire.SiteID{2}); err != nil {
		t.Fatal(err)
	}
	if replA.Lag(2) != 0 {
		t.Fatalf("lag after backoff expiry = %d", replA.Lag(2))
	}
	if n, _ := engB.Amount("k"); n != 90 {
		t.Fatalf("B amount = %d, want 90", n)
	}
}

func TestFlushPerPeerDeadline(t *testing.T) {
	// A slow peer bounds only its own exchange: the flush returns within
	// the per-peer timeout, not the transport's (much longer) one.
	net := memnet.New(memnet.Options{CallTimeout: 5 * time.Second})
	engA := newEng(t, 100)
	replA := New(1, engA)
	nodeA, _ := net.Open(1, func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message { return nil })
	net.Open(2, func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		<-ctx.Done() // never answers
		return nil
	})
	replA.SetFlushPolicy(80*time.Millisecond, failure.Policy{}, nil)
	engA.ApplyDelta("k", -10)
	replA.Record("k", -10)
	start := time.Now()
	if err := replA.Flush(context.Background(), nodeA, []wire.SiteID{2}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("flush took %v, want ~80ms per-peer deadline", d)
	}
	if replA.Lag(2) != 1 {
		t.Fatal("backlog lost on timeout")
	}
}
