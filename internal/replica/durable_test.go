package replica

import (
	"context"
	"testing"

	"avdb/internal/lockmgr"
	"avdb/internal/storage"
	"avdb/internal/txn"
	"avdb/internal/wire"
)

func durableEng(t *testing.T, dir string, amount int64) *storage.Engine {
	t.Helper()
	e, err := storage.Open(storage.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get("k"); err != nil {
		e.Put(storage.Record{Key: "k", Amount: amount})
	}
	return e
}

// commitDelta applies one delta through a transaction + CommitWithRecord,
// the way the accelerator does.
func commitDelta(t *testing.T, eng *storage.Engine, r *Replicator, key string, delta int64) uint64 {
	t.Helper()
	tm := txn.NewManager(eng, lockmgr.Options{})
	tx := tm.Begin()
	if _, err := tx.ApplyDelta(context.Background(), key, delta); err != nil {
		t.Fatal(err)
	}
	seq, err := r.CommitWithRecord(tx, key, delta)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestDurableLogSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	eng := durableEng(t, dir, 100)
	r, err := NewDurable(1, eng)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Durable() {
		t.Fatal("not durable")
	}
	if seq := commitDelta(t, eng, r, "k", -30); seq != 1 {
		t.Fatalf("seq = %d", seq)
	}
	commitDelta(t, eng, r, "k", +5)
	eng.Close()

	eng2 := durableEng(t, dir, 100)
	defer eng2.Close()
	r2, err := NewDurable(1, eng2)
	if err != nil {
		t.Fatal(err)
	}
	// The value and the unpropagated log both survived.
	if v, _ := eng2.Amount("k"); v != 75 {
		t.Fatalf("value = %d", v)
	}
	pend := r2.PendingFor(2)
	if len(pend) != 2 || pend[0].Seq != 1 || pend[0].Amount != -30 ||
		pend[1].Seq != 2 || pend[1].Amount != 5 {
		t.Fatalf("pending after restart = %+v", pend)
	}
	if r2.NextSeq() != 3 {
		t.Fatalf("NextSeq = %d", r2.NextSeq())
	}
}

func TestDurableWatermarkPreventsDoubleApply(t *testing.T) {
	dir := t.TempDir()
	eng := durableEng(t, dir, 100)
	r, err := NewDurable(2, eng)
	if err != nil {
		t.Fatal(err)
	}
	batch := &wire.DeltaSync{Origin: 1, Deltas: []wire.Delta{
		{Seq: 1, Key: "k", Amount: -10},
		{Seq: 2, Key: "k", Amount: -10},
	}}
	if _, err := r.HandleSync(batch); err != nil {
		t.Fatal(err)
	}
	if v, _ := eng.Amount("k"); v != 80 {
		t.Fatalf("value = %d", v)
	}
	eng.Close()

	// Restart; the sender (whose ack was lost) retransmits the same batch.
	eng2 := durableEng(t, dir, 100)
	defer eng2.Close()
	r2, err := NewDurable(2, eng2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.AppliedFrom(1); got != 2 {
		t.Fatalf("recovered watermark = %d", got)
	}
	ack, err := r2.HandleSync(batch)
	if err != nil {
		t.Fatal(err)
	}
	if ack.UpTo != 2 {
		t.Fatalf("ack = %+v", ack)
	}
	if v, _ := eng2.Amount("k"); v != 80 {
		t.Fatalf("retransmission double-applied: %d", v)
	}
}

func TestDurableCompactPersistsFloor(t *testing.T) {
	dir := t.TempDir()
	eng := durableEng(t, dir, 1000)
	r, err := NewDurable(1, eng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		commitDelta(t, eng, r, "k", -1)
	}
	r.HandleAck(2, 4)
	r.Compact([]wire.SiteID{2})
	if r.LogLen() != 2 {
		t.Fatalf("log len = %d", r.LogLen())
	}
	eng.Close()

	eng2 := durableEng(t, dir, 1000)
	defer eng2.Close()
	r2, err := NewDurable(1, eng2)
	if err != nil {
		t.Fatal(err)
	}
	// Floor survived: new sequences continue after the compacted range,
	// so receivers' watermarks stay meaningful.
	if r2.NextSeq() != 7 {
		t.Fatalf("NextSeq after compacted restart = %d", r2.NextSeq())
	}
	pend := r2.PendingFor(3) // never-acked peer gets the retained suffix
	if len(pend) != 2 || pend[0].Seq != 5 {
		t.Fatalf("pending = %+v", pend)
	}
}

func TestDurableFullyCompactedRestartKeepsSeq(t *testing.T) {
	dir := t.TempDir()
	eng := durableEng(t, dir, 1000)
	r, _ := NewDurable(1, eng)
	for i := 0; i < 3; i++ {
		commitDelta(t, eng, r, "k", -1)
	}
	r.HandleAck(2, 3)
	r.Compact([]wire.SiteID{2})
	if r.LogLen() != 0 {
		t.Fatalf("log len = %d", r.LogLen())
	}
	eng.Close()
	eng2 := durableEng(t, dir, 1000)
	defer eng2.Close()
	r2, err := NewDurable(1, eng2)
	if err != nil {
		t.Fatal(err)
	}
	// Without the durable floor this would restart at 1 and receivers
	// would silently drop all future deltas as duplicates.
	if r2.NextSeq() != 4 {
		t.Fatalf("NextSeq = %d, want 4", r2.NextSeq())
	}
}

func TestVolatileCommitWithRecord(t *testing.T) {
	eng := newEng(t, 100)
	r := New(1, eng)
	tm := txn.NewManager(eng, lockmgr.Options{})
	tx := tm.Begin()
	if _, err := tx.ApplyDelta(context.Background(), "k", -7); err != nil {
		t.Fatal(err)
	}
	seq, err := r.CommitWithRecord(tx, "k", -7)
	if err != nil || seq != 1 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	if v, _ := eng.Amount("k"); v != 93 {
		t.Fatalf("value = %d", v)
	}
	if len(r.PendingFor(2)) != 1 {
		t.Fatal("log entry missing")
	}
}
