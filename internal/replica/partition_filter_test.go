package replica

import (
	"testing"

	"avdb/internal/storage"
	"avdb/internal/wire"
)

func newEng2(t *testing.T, a, b int64) *storage.Engine {
	t.Helper()
	e, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	e.Put(storage.Record{Key: "a", Amount: a})
	e.Put(storage.Record{Key: "b", Amount: b})
	return e
}

// With a partition filter, outbound windows carry only the keys the
// peer hosts, and WindowTop covers the filtered-out tail so the peer
// acks the whole window and nothing is retransmitted.
func TestPartitionFilterOutbound(t *testing.T) {
	src := New(1, newEng2(t, 0, 0))
	src.SetPartitionFilter(
		func(peer wire.SiteID, key string) bool { return key == "a" }, // peer 2 hosts only "a"
		nil,
	)
	src.Record("a", -1) // seq 1
	src.Record("b", -2) // seq 2: filtered for peer 2
	src.Record("a", -3) // seq 3
	src.Record("b", -4) // seq 4: filtered, and it is the window's top

	msg := src.PendingSyncFor(2)
	if msg == nil {
		t.Fatal("no pending sync")
	}
	if len(msg.Deltas) != 1 || msg.Deltas[0].Key != "a" || msg.Deltas[0].Amount != -4 {
		t.Fatalf("deltas = %+v, want one coalesced entry for a/-4", msg.Deltas)
	}
	if msg.FirstSeq != 1 || msg.WindowTop != 4 {
		t.Fatalf("window = [%d, top %d], want [1, 4]", msg.FirstSeq, msg.WindowTop)
	}

	dst := New(2, newEng2(t, 100, 100))
	ack, err := dst.HandleSync(msg)
	if err != nil {
		t.Fatal(err)
	}
	if ack.UpTo != 4 {
		t.Fatalf("ack = %d, want 4 (filtered tail acked)", ack.UpTo)
	}
	if n, _ := dst.eng.Amount("a"); n != 96 {
		t.Fatalf("a = %d, want 96", n)
	}
	if n, _ := dst.eng.Amount("b"); n != 100 {
		t.Fatalf("b = %d, want 100 (never sent)", n)
	}
	src.HandleAck(2, ack.UpTo)
	if src.PendingSyncFor(2) != nil {
		t.Fatal("filtered entries retransmitted after full-window ack")
	}
}

// A window whose every entry is filtered still flows and still
// advances the peer's watermark — otherwise the sender's backlog for
// that peer would never drain.
func TestPartitionFilterEmptyWindowAdvances(t *testing.T) {
	src := New(1, newEng2(t, 0, 0))
	src.SetPartitionFilter(
		func(peer wire.SiteID, key string) bool { return false }, // peer hosts nothing of ours
		nil,
	)
	src.Record("b", -2)
	src.Record("b", -4)

	msg := src.PendingSyncFor(2)
	if msg == nil {
		t.Fatal("empty-after-filter window must still be sent")
	}
	if len(msg.Deltas) != 0 || msg.FirstSeq != 1 || msg.WindowTop != 2 {
		t.Fatalf("msg = %+v, want empty deltas covering [1, 2]", msg)
	}

	dst := New(2, newEng2(t, 100, 100))
	ack, err := dst.HandleSync(msg)
	if err != nil {
		t.Fatal(err)
	}
	if ack.UpTo != 2 {
		t.Fatalf("ack = %d, want 2", ack.UpTo)
	}
	src.HandleAck(2, ack.UpTo)
	if src.PendingSyncFor(2) != nil {
		t.Fatal("backlog not drained by empty-window ack")
	}
}

// The receiver-side filter is a second line of defense: entries for
// partitions we do not host are acknowledged but never applied, even
// if a sender with a divergent map ships them.
func TestPartitionFilterInboundDefense(t *testing.T) {
	dst := New(2, newEng2(t, 100, 100))
	dst.SetPartitionFilter(nil, func(key string) bool { return key == "a" })

	// Coalesced window mixing hosted and non-hosted keys.
	ack, err := dst.HandleSync(&wire.DeltaSync{Origin: 1, FirstSeq: 1, Deltas: []wire.Delta{
		{Seq: 1, Key: "a", Amount: -5},
		{Seq: 2, Key: "b", Amount: -7},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.UpTo != 2 {
		t.Fatalf("ack = %d, want 2", ack.UpTo)
	}
	// Verbatim batch too.
	ack, err = dst.HandleSync(&wire.DeltaSync{Origin: 1, Deltas: []wire.Delta{
		{Seq: 3, Key: "b", Amount: -11},
		{Seq: 4, Key: "a", Amount: -13},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.UpTo != 4 {
		t.Fatalf("ack = %d, want 4", ack.UpTo)
	}
	if n, _ := dst.eng.Amount("a"); n != 82 {
		t.Fatalf("a = %d, want 82", n)
	}
	if n, _ := dst.eng.Amount("b"); n != 100 {
		t.Fatalf("b = %d, want 100 (non-hosted entries applied)", n)
	}
}

// Without a filter the sync message is byte-identical to the legacy
// encoding: WindowTop stays zero and is omitted from the wire.
func TestNoFilterKeepsLegacyEncoding(t *testing.T) {
	src := New(1, newEng2(t, 0, 0))
	src.Record("a", -1)
	src.Record("b", -2)
	msg := src.PendingSyncFor(2)
	if msg.WindowTop != 0 {
		t.Fatalf("WindowTop = %d, want 0 without a filter", msg.WindowTop)
	}
}
