package avstore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"avdb/internal/av"
	"avdb/internal/core"
	"avdb/internal/rng"
)

// interface conformance
var _ core.AVTable = (*Store)(nil)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Define("k", 500); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	defer s2.Close()
	if !s2.Defined("k") || s2.Avail("k") != 500 {
		t.Fatalf("recovered avail = %d, defined=%v", s2.Avail("k"), s2.Defined("k"))
	}
}

func TestBalanceOpsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Define("k", 100)
	s.Credit("k", 50) // increment minted slack
	// A committed decrement of 30.
	if ok, _ := s.Acquire("k", 30); !ok {
		t.Fatal("acquire failed")
	}
	if err := s.Consume("k", 30); err != nil {
		t.Fatal(err)
	}
	// A transfer of up to 40 out (grant policy already applied upstream).
	granted, err := s.Debit("k", 40)
	if err != nil || granted != 40 {
		t.Fatalf("debit = %d, %v", granted, err)
	}
	s.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	if got := s2.Avail("k"); got != 80 { // 100+50-30-40
		t.Fatalf("recovered avail = %d, want 80", got)
	}
	if s2.Held("k") != 0 {
		t.Fatal("holds must be volatile")
	}
}

func TestHoldsAreVolatile(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Define("k", 100)
	s.AcquireUpTo("k", 70) // in-flight update reserves, then we "crash"
	if s.Avail("k") != 30 || s.Held("k") != 70 {
		t.Fatal("hold not applied")
	}
	s.Close()
	s2 := openStore(t, dir)
	defer s2.Close()
	// The uncommitted reservation is returned to the balance.
	if s2.Avail("k") != 100 || s2.Held("k") != 0 {
		t.Fatalf("after restart avail=%d held=%d, want 100/0", s2.Avail("k"), s2.Held("k"))
	}
}

func TestReceivedGrantSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Define("k", 10)
	s.AcquireUpTo("k", 10)
	// A peer's grant arrives into the hold; we crash before committing
	// the update. The grant is durable (the peer durably debited it),
	// and recovery returns it to avail.
	if err := s.CreditHeld("k", 25); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	defer s2.Close()
	if got := s2.Avail("k"); got != 35 {
		t.Fatalf("recovered avail = %d, want 10+25", got)
	}
}

func TestCheckpointAndRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Define("a", 100)
	s.Define("b", 200)
	if ok, _ := s.Acquire("a", 40); !ok {
		t.Fatal("acquire")
	}
	s.Consume("a", 40)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic lands in the journal only.
	s.Credit("b", 11)
	s.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	if s2.Avail("a") != 60 || s2.Avail("b") != 211 {
		t.Fatalf("a=%d b=%d", s2.Avail("a"), s2.Avail("b"))
	}
}

func TestCheckpointNotReplayedTwice(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Define("k", 100)
	for round := 0; round < 4; round++ {
		s.Credit("k", 10)
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		s.Credit("k", 1)
		s.Close()
		s = openStore(t, dir)
		want := int64(100 + (round+1)*11)
		if got := s.Avail("k"); got != want {
			t.Fatalf("round %d: avail = %d, want %d", round, got, want)
		}
	}
	s.Close()
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Define("k", 5)
	s.Checkpoint()
	s.Close()
	path := filepath.Join(dir, snapName)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestCheckpointIncludesHolds(t *testing.T) {
	// A hold at checkpoint time is part of the durable balance (the
	// update may still commit); after a restart it is available again.
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Define("k", 100)
	s.AcquireUpTo("k", 60)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	defer s2.Close()
	if got := s2.Avail("k"); got != 100 {
		t.Fatalf("avail = %d, want 100", got)
	}
}

// TestQuickRecoveredBalanceNeverExceedsTruth drives a random history of
// durable ops, restarts at the end, and checks the recovered balance
// equals the arithmetic truth (crash-free runs lose nothing) and that
// recovery always succeeds.
func TestQuickRecoveredBalanceNeverExceedsTruth(t *testing.T) {
	f := func(seed uint64) bool {
		dir, err := os.MkdirTemp("", "avstoreq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		s, err := Open(dir, Options{NoSync: true, SegmentMaxBytes: 128})
		if err != nil {
			return false
		}
		r := rng.New(seed)
		truth := int64(0)
		s.Define("k", 1000)
		truth = 1000
		for i := 0; i < 150; i++ {
			switch r.Intn(5) {
			case 0:
				n := r.Range(1, 50)
				s.Credit("k", n)
				truth += n
			case 1:
				n := r.Range(1, 50)
				if ok, _ := s.Acquire("k", n); ok {
					s.Consume("k", n)
					truth -= n
				}
			case 2:
				n := r.Range(1, 80)
				taken, _ := s.Debit("k", n)
				truth -= taken
			case 3:
				got, _ := s.AcquireUpTo("k", r.Range(1, 40))
				if r.Bool(0.5) {
					s.Release("k", got)
				} // else leave held across restart: must come back as avail
			case 4:
				if r.Bool(0.3) {
					if err := s.Checkpoint(); err != nil {
						return false
					}
				}
			}
		}
		held := s.Held("k")
		availBefore := s.Avail("k")
		if availBefore+held != truth {
			return false
		}
		s.Close()
		s2, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		defer s2.Close()
		return s2.Avail("k") == truth && s2.Held("k") == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDurableConsume(b *testing.B) {
	s, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.Define("k", 1<<50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := s.Acquire("k", 1); ok {
			if err := s.Consume("k", 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestTornJournalTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Define("k", 100)
	s.Credit("k", 50)
	s.Close()
	// Chop bytes off the journal's last record, as a crash mid-append
	// would.
	segs, err := filepath.Glob(filepath.Join(dir, "journal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, _ := os.Stat(last)
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn journal tail not tolerated: %v", err)
	}
	defer s2.Close()
	// The torn Credit is lost — the safe direction (slack lost, not
	// minted).
	if got := s2.Avail("k"); got != 100 {
		t.Fatalf("avail = %d, want 100 (torn credit dropped)", got)
	}
}

func TestConcurrentDurableOps(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	s.Define("k", 1_000_000)
	done := make(chan int64, 8)
	for g := 0; g < 8; g++ {
		go func(seed uint64) {
			r := rng.New(seed)
			var spent int64
			for i := 0; i < 100; i++ {
				n := r.Range(1, 20)
				if ok, err := s.Acquire("k", n); err == nil && ok {
					if err := s.Consume("k", n); err != nil {
						break
					}
					spent += n
				}
			}
			done <- spent
		}(uint64(g + 1))
	}
	var total int64
	for g := 0; g < 8; g++ {
		total += <-done
	}
	if s.Avail("k")+s.Held("k")+total != 1_000_000 {
		t.Fatalf("accounting: avail=%d held=%d spent=%d", s.Avail("k"), s.Held("k"), total)
	}
}

func TestEscrowSurvivesRestartViaJournal(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Define("k", 100); err != nil {
		t.Fatal(err)
	}
	taken, err := s.EscrowDebit("k", 7, 30)
	if err != nil || taken != 30 {
		t.Fatalf("EscrowDebit = %d, %v", taken, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	if got := s2.Escrowed("k"); got != 30 {
		t.Fatalf("escrowed after restart = %d, want 30", got)
	}
	if got := s2.Avail("k"); got != 70 {
		t.Fatalf("avail after restart = %d, want 70", got)
	}
	if got := s2.Total("k"); got != 100 {
		t.Fatalf("total after restart = %d, want 100", got)
	}
	// The transfer id must still be resolvable.
	n, err := s2.ResolveEscrow(7, true)
	if err != nil || n != 30 {
		t.Fatalf("ResolveEscrow = %d, %v", n, err)
	}
	if got := s2.Avail("k"); got != 100 {
		t.Fatalf("avail after refund = %d, want 100", got)
	}
}

func TestEscrowSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Define("k", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EscrowDebit("k", 9, 40); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	if got := s2.Escrowed("k"); got != 40 {
		t.Fatalf("escrowed after checkpoint+restart = %d, want 40", got)
	}
	if got := s2.Total("k"); got != 100 {
		t.Fatalf("total after checkpoint+restart = %d, want 100", got)
	}
	// Settle destroys the units at the granter.
	n, err := s2.ResolveEscrow(9, false)
	if err != nil || n != 40 {
		t.Fatalf("ResolveEscrow = %d, %v", n, err)
	}
	if got := s2.Total("k"); got != 60 {
		t.Fatalf("total after settle = %d, want 60", got)
	}
}

func TestEscrowResolveSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Define("k", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EscrowDebit("k", 3, 25); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ResolveEscrow(3, false); err != nil { // settle: destroy
		t.Fatal(err)
	}
	if _, err := s.EscrowDebit("k", 4, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ResolveEscrow(4, true); err != nil { // cancel: refund
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	if got := s2.Total("k"); got != 75 {
		t.Fatalf("total after replay = %d, want 75", got)
	}
	if got := s2.Escrowed("k"); got != 0 {
		t.Fatalf("escrowed after replay = %d, want 0", got)
	}
	if got := s2.Avail("k"); got != 75 {
		t.Fatalf("avail after replay = %d, want 75", got)
	}
}

func TestV1SnapshotStillLoads(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Define("k", 55); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the snapshot as v1: same body minus the escrow section,
	// stamped with the old magic.
	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := data[len(snapMagic)+4:]
	// Strip the trailing escrow + obligation sections (two 0x00 count
	// bytes here).
	if body[len(body)-1] != 0 || body[len(body)-2] != 0 {
		t.Fatalf("expected empty escrow/obligation sections, got trailing bytes % x", body[len(body)-2:])
	}
	v1body := body[:len(body)-2]
	out := make([]byte, 0, len(snapMagicV1)+4+len(v1body))
	out = append(out, snapMagicV1...)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(v1body))
	out = append(out, sum[:]...)
	out = append(out, v1body...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	if got := s2.Total("k"); got != 55 {
		t.Fatalf("total from v1 snapshot = %d, want 55", got)
	}
	if escs := s2.PendingEscrows(); len(escs) != 0 {
		t.Fatalf("v1 snapshot produced escrows: %v", escs)
	}
}

func TestDuplicateEscrowDebitNotDoubleJournaled(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Define("k", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EscrowDebit("k", 11, 20); err != nil {
		t.Fatal(err)
	}
	// Duplicate request for the same transfer id must be idempotent.
	taken, err := s.EscrowDebit("k", 11, 20)
	if err != nil || taken != 20 {
		t.Fatalf("duplicate EscrowDebit = %d, %v", taken, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	if got := s2.Escrowed("k"); got != 20 {
		t.Fatalf("escrowed after replay = %d, want 20", got)
	}
	if got := s2.Total("k"); got != 100 {
		t.Fatalf("total after replay = %d, want 100", got)
	}
}

func TestObligationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AddObligation(av.Obligation{Xfer: 21, Peer: 3, Cancel: false}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddObligation(av.Obligation{Xfer: 22, Peer: 5, Cancel: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteObligation(21); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	obls := s2.Obligations()
	if len(obls) != 1 || obls[0] != (av.Obligation{Xfer: 22, Peer: 5, Cancel: true}) {
		t.Fatalf("obligations after journal replay = %v", obls)
	}
	// And through a checkpoint (snapshot path).
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir)
	defer s3.Close()
	obls = s3.Obligations()
	if len(obls) != 1 || obls[0] != (av.Obligation{Xfer: 22, Peer: 5, Cancel: true}) {
		t.Fatalf("obligations after snapshot = %v", obls)
	}
	if err := s3.CompleteObligation(22); err != nil {
		t.Fatal(err)
	}
	if got := s3.Obligations(); len(got) != 0 {
		t.Fatalf("obligations after discharge = %v", got)
	}
}
