// Package avstore makes a site's Allowable Volume table durable. The
// paper's fault-tolerance argument needs the AV to survive a site
// restart: AV is real purchasing power over the shared stock, so losing
// the table on crash would strand (or worse, double) slack.
//
// Store wraps av.Table with a journal of the *durable* balance changes:
// Define, Credit (an increment's new slack or a received grant), Spend
// (a committed decrement's consumption) and TransferOut (a grant to a
// peer). Holds are deliberately volatile — they are reservations of
// in-flight updates, and an update that did not commit before the crash
// must not consume AV.
//
// Crash-safety discipline (the escrow rule): AV-decreasing records are
// journaled *before* their effect escapes the site, AV-increasing
// records *after* their cause is durable. A crash can therefore only
// lose slack, never mint it: after recovery the system-wide invariant
// weakens from `sum(AV) == global stock` to `sum(AV) <= global stock`,
// which preserves the non-negativity guarantee that makes autonomous
// updates safe.
package avstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"avdb/internal/av"
	"avdb/internal/clock"
	"avdb/internal/epoch"
	"avdb/internal/wal"
)

// Journal record kinds.
const (
	opDefine byte = iota + 1
	opCredit
	opSpend
	opTransferOut
	// opEscrow parks a grant in escrow (amount + transfer id); the units
	// leave avail but stay in the balance until resolved.
	opEscrow
	// opEscrowResolve finishes a transfer: amount 1 means cancel
	// (refund), 0 means settle (destroy).
	opEscrowResolve
	// opOblige records a requester-side settle (amount 0) or cancel
	// (amount 1) obligation for an inbound transfer; the key field holds
	// the granter site id. opObligeDone discharges it.
	opOblige
	opObligeDone
)

// Store errors.
var ErrCorrupt = errors.New("avstore: corrupt journal or snapshot")

const (
	snapName = "av-snapshot.db"
	snapTmp  = "av-snapshot.tmp"
	// snapMagicV1 snapshots hold balances only; snapMagic (v2) appends an
	// escrow section so unresolved transfers survive restart. New
	// snapshots are v2; v1 still loads (its escrow set is empty).
	snapMagicV1 = "AVDBAVS1"
	snapMagic   = "AVDBAVS2"
)

// Options tune a Store.
type Options struct {
	// NoSync skips fsync on journal appends (experiments).
	NoSync bool
	// SegmentMaxBytes passes through to the journal's WAL.
	SegmentMaxBytes int64
	// MaxSyncDelay passes through to the journal's WAL group commit.
	MaxSyncDelay time.Duration
	// Stats passes through to the journal's WAL (shared fsync counters).
	Stats *wal.Stats
	// EpochInterval, when positive, rides durable acknowledgements on
	// epoch boundaries instead of per-op group commits: one covering
	// fsync per epoch. Record contents and append order are unchanged,
	// so the escrow discipline (decreases journal-before-ack) survives.
	EpochInterval time.Duration
	// EpochMaxCommits closes an epoch early at this many commits
	// (0 means epoch.DefaultMaxCommits; negative disables).
	EpochMaxCommits int
	// EpochAdaptive turns on the epoch manager's adaptive interval
	// controller; EpochMinInterval/EpochMaxInterval clamp it (see
	// epoch.Options).
	EpochAdaptive    bool
	EpochMinInterval time.Duration
	EpochMaxInterval time.Duration
	// Clock drives epoch deadlines (nil means the real clock).
	Clock clock.Clock
	// EpochStats, when non-nil, receives epoch counters (shareable with
	// the storage engine's manager).
	EpochStats *epoch.Stats
}

// Store is a durable AV table. It implements core.AVTable.
//
// Durable operations pair the journal append and the table change under
// s.mu, but wait for the group-commit fsync *after* releasing the lock:
// the record's LSN is captured inside the critical section and the
// operation returns — so any dependent message can escape the site —
// only once journal.SyncTo reports that LSN durable. Concurrent ops
// therefore share one fsync instead of serializing on one each.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex // serializes journal append + table apply pairs
	tbl     *av.Table
	journal *wal.Log
	epochs  *epoch.Manager // nil unless EpochInterval > 0
	enc     []byte         // scratch encode buffer for journal records; guarded by mu

	ckptMu sync.Mutex // serializes whole checkpoints (snapshot + truncate)
}

// Open loads (or creates) the store in dir, replaying snapshot +
// journal into a fresh table with zero holds.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("avstore: %w", err)
	}
	s := &Store{dir: dir, opts: opts, tbl: av.NewTable()}
	boundary, balances, escrows, obls, err := s.loadSnapshot()
	if err != nil {
		return nil, err
	}
	for key, n := range balances {
		if n < 0 {
			return nil, fmt.Errorf("%w: negative snapshot balance for %s", ErrCorrupt, key)
		}
		if err := s.tbl.Define(key, n); err != nil {
			return nil, err
		}
	}
	// Balances include escrowed units; move them from avail back into
	// their transfers so a restart preserves the escrow ledger.
	for _, esc := range escrows {
		taken, err := s.tbl.EscrowDebit(esc.Key, esc.Xfer, esc.N)
		if err != nil {
			return nil, err
		}
		if taken != esc.N {
			return nil, fmt.Errorf("%w: snapshot escrow %d wants %d of %s, took %d",
				ErrCorrupt, esc.Xfer, esc.N, esc.Key, taken)
		}
	}
	for _, ob := range obls {
		if err := s.tbl.AddObligation(ob); err != nil {
			return nil, err
		}
	}
	j, err := wal.Open(filepath.Join(dir, "journal"), wal.Options{
		NoSync:          opts.NoSync,
		SegmentMaxBytes: opts.SegmentMaxBytes,
		MaxSyncDelay:    opts.MaxSyncDelay,
		Stats:           opts.Stats,
	})
	if err != nil {
		return nil, err
	}
	s.journal = j
	err = j.Replay(boundary+1, func(lsn uint64, payload []byte) error {
		return s.applyRecord(payload)
	})
	if err != nil {
		j.Close()
		return nil, err
	}
	if opts.EpochInterval > 0 {
		s.epochs = epoch.New(epoch.Options{
			Interval:    opts.EpochInterval,
			MaxCommits:  opts.EpochMaxCommits,
			Clock:       opts.Clock,
			Sync:        j.SyncTo,
			Stats:       opts.EpochStats,
			Adaptive:    opts.EpochAdaptive,
			MinInterval: opts.EpochMinInterval,
			MaxInterval: opts.EpochMaxInterval,
		})
	}
	return s, nil
}

// Epochs returns the store's epoch manager, nil when epoch commit is
// off.
func (s *Store) Epochs() *epoch.Manager { return s.epochs }

// syncTo is the durable-ack wait every journal-backed operation ends
// with: ride the open epoch when epoch commit is on, otherwise join the
// per-op group commit. Called after s.mu is released. Checkpoint does
// NOT use it — a truncation boundary must not wait out an open epoch's
// interval, and its direct SyncTo is correct either way.
func (s *Store) syncTo(lsn uint64) error {
	if s.epochs != nil {
		_, err := s.epochs.Commit(lsn)
		return err
	}
	return s.journal.SyncTo(lsn)
}

// syncToAsync is syncTo's pipelined form: it registers the wait (riding
// the open epoch when epoch commit is on) and returns a function that
// blocks until lsn is durable. The caller withholds the operation's
// acknowledgement until that wait resolves, but may keep issuing ops —
// filling the next epoch while the previous one's covering fsync
// drains.
func (s *Store) syncToAsync(lsn uint64) func() error {
	if s.epochs != nil {
		t, err := s.epochs.Enqueue(lsn)
		if err != nil {
			return func() error { return err }
		}
		return func() error {
			_, werr := t.Wait()
			return werr
		}
	}
	return func() error { return s.journal.SyncTo(lsn) }
}

// applyRecord replays one journal record into the table.
func (s *Store) applyRecord(payload []byte) error {
	if len(payload) < 1 {
		return ErrCorrupt
	}
	op := payload[0]
	r := payload[1:]
	keyLen, n := binary.Uvarint(r)
	if n <= 0 || keyLen > uint64(len(r)-n) {
		return ErrCorrupt
	}
	key := string(r[n : n+int(keyLen)])
	r = r[n+int(keyLen):]
	amount, n := binary.Varint(r)
	if n <= 0 {
		return ErrCorrupt
	}
	r = r[n:]
	// Escrow and obligation records carry a trailing transfer id.
	var xfer uint64
	if op == opEscrow || op == opEscrowResolve || op == opOblige || op == opObligeDone {
		xfer, n = binary.Uvarint(r)
		if n <= 0 {
			return ErrCorrupt
		}
		r = r[n:]
	}
	if len(r) != 0 {
		return ErrCorrupt
	}
	switch op {
	case opDefine, opCredit:
		return s.tbl.Define(key, amount) // Define adds; Credit to a fresh table is the same
	case opSpend, opTransferOut:
		// Balance decrease. The table holds it all as avail during
		// replay; route through acquire+consume to keep accounting exact.
		ok, err := s.tbl.Acquire(key, amount)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: replayed decrease of %d exceeds balance for %s", ErrCorrupt, amount, key)
		}
		return s.tbl.Consume(key, amount)
	case opEscrow:
		taken, err := s.tbl.EscrowDebit(key, xfer, amount)
		if err != nil {
			return err
		}
		if taken != amount {
			return fmt.Errorf("%w: replayed escrow %d wants %d of %s, took %d", ErrCorrupt, xfer, amount, key, taken)
		}
		return nil
	case opEscrowResolve:
		// amount 1 = cancel (refund), 0 = settle. Resolving an unknown
		// transfer is a no-op, so replayed duplicates are harmless.
		_, err := s.tbl.ResolveEscrow(xfer, amount == 1)
		return err
	case opOblige:
		peer, err := strconv.ParseUint(key, 10, 32)
		if err != nil {
			return fmt.Errorf("%w: obligation peer %q", ErrCorrupt, key)
		}
		return s.tbl.AddObligation(av.Obligation{Xfer: xfer, Peer: uint32(peer), Cancel: amount == 1})
	case opObligeDone:
		return s.tbl.CompleteObligation(xfer)
	default:
		return fmt.Errorf("%w: journal op %d", ErrCorrupt, op)
	}
}

// appendLocked journals one record and returns its LSN. Caller holds
// s.mu; durability is the caller's job (journal.SyncTo after unlock).
func (s *Store) appendLocked(op byte, key string, amount int64) (uint64, error) {
	return s.appendXferLocked(op, key, amount, 0)
}

// appendXferLocked journals one record with a trailing transfer id
// (escrow ops only) and returns its LSN. The record is encoded into the
// store's scratch buffer (guarded by s.mu, copied by the WAL's own
// append buffer) so the hot path allocates nothing. Caller holds s.mu.
func (s *Store) appendXferLocked(op byte, key string, amount int64, xfer uint64) (uint64, error) {
	payload := append(s.enc[:0], op)
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = append(payload, key...)
	payload = binary.AppendVarint(payload, amount)
	if op == opEscrow || op == opEscrowResolve || op == opOblige || op == opObligeDone {
		payload = binary.AppendUvarint(payload, xfer)
	}
	s.enc = payload
	return s.journal.Append(payload)
}

// --- durable operations (journal + table) ---

// Define declares (or adds to) the AV for key, durably.
func (s *Store) Define(key string, initial int64) error {
	s.mu.Lock()
	// Increase: table first (cause), then journal. A crash between the
	// two loses the new slack — safe direction.
	err := s.tbl.Define(key, initial)
	var lsn uint64
	if err == nil {
		lsn, err = s.appendLocked(opDefine, key, initial)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.syncTo(lsn)
}

// Credit adds fresh available volume durably (an increment's slack or a
// received transfer). Journaled after the table so a crash loses, never
// mints.
func (s *Store) Credit(key string, n int64) error {
	s.mu.Lock()
	err := s.tbl.Credit(key, n)
	var lsn uint64
	if err == nil {
		lsn, err = s.appendLocked(opCredit, key, n)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.syncTo(lsn)
}

// Consume destroys n held units durably. The journal record precedes
// the table change: if we crash after journaling, recovery has already
// removed the volume (the accompanying storage-WAL decrement may or may
// not have committed — if it did not, slack is lost, which is safe).
// The fsync wait happens after s.mu is released, so concurrent durable
// ops batch onto one group commit.
func (s *Store) Consume(key string, n int64) error {
	s.mu.Lock()
	lsn, err := s.appendLocked(opSpend, key, n)
	if err == nil {
		err = s.tbl.Consume(key, n)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.syncTo(lsn)
}

// ConsumeAsync is Consume's pipelined form: the journal append and
// table change happen before it returns (same order, same records —
// the escrow discipline is untouched), but the durable-ack wait is
// returned as a function instead of blocked on inline. The caller must
// not acknowledge the consumption until the wait resolves; until then
// a crash loses only unacked slack, exactly as with Consume.
func (s *Store) ConsumeAsync(key string, n int64) (wait func() error, err error) {
	s.mu.Lock()
	lsn, err := s.appendLocked(opSpend, key, n)
	if err == nil {
		err = s.tbl.Consume(key, n)
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.syncToAsync(lsn), nil
}

// Debit removes up to n available units for an outbound transfer,
// durably, and returns the amount taken. The journal precedes the grant
// leaving the site: the debit only returns (letting the grant escape)
// once its record is durable. If the group commit fails, the in-memory
// debit is kept and zero is reported — the units are lost slack, never
// minted volume.
func (s *Store) Debit(key string, n int64) (int64, error) {
	s.mu.Lock()
	taken, err := s.tbl.Debit(key, n)
	if err != nil || taken == 0 {
		s.mu.Unlock()
		return taken, err
	}
	lsn, err := s.appendLocked(opTransferOut, key, taken)
	if err != nil {
		// Undo the in-memory debit: the grant must not leave the site
		// without a durable record.
		_ = s.tbl.Credit(key, taken)
		s.mu.Unlock()
		return 0, err
	}
	s.mu.Unlock()
	if err := s.syncTo(lsn); err != nil {
		return 0, err
	}
	return taken, nil
}

// EscrowDebit durably parks up to n available units in escrow for the
// transfer xfer and returns the amount taken. Like Debit, the journal
// record lands before the grant leaves the site; on journal failure
// the in-memory escrow is canceled (append error) or reported as zero
// granted (sync error) so nothing escapes unrecorded.
func (s *Store) EscrowDebit(key string, xfer uint64, n int64) (int64, error) {
	s.mu.Lock()
	taken, err := s.tbl.EscrowDebit(key, xfer, n)
	if err != nil || taken == 0 {
		s.mu.Unlock()
		return taken, err
	}
	lsn, err := s.appendXferLocked(opEscrow, key, taken, xfer)
	if err != nil {
		_, _ = s.tbl.ResolveEscrow(xfer, true)
		s.mu.Unlock()
		return 0, err
	}
	s.mu.Unlock()
	if err := s.syncTo(lsn); err != nil {
		return 0, err
	}
	return taken, nil
}

// ResolveEscrow durably finishes transfer xfer (refund=true cancels,
// false settles). The journal record precedes the table change: a
// settle that crashed mid-way must re-apply on replay (the requester
// already owns the units), and a replayed cancel is equally safe
// because the refund is rebuilt from the same journal.
func (s *Store) ResolveEscrow(xfer uint64, refund bool) (int64, error) {
	s.mu.Lock()
	// Peek first: resolving an unknown transfer is a no-op and should
	// not pollute the journal.
	if s.tbl.EscrowAmount(xfer) == 0 {
		s.mu.Unlock()
		return 0, nil
	}
	amount := int64(0)
	if refund {
		amount = 1
	}
	lsn, err := s.appendXferLocked(opEscrowResolve, "", amount, xfer)
	var refunded int64
	if err == nil {
		refunded, err = s.tbl.ResolveEscrow(xfer, refund)
	}
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := s.syncTo(lsn); err != nil {
		return 0, err
	}
	return refunded, nil
}

// Escrowed implements core.AVTable.
func (s *Store) Escrowed(key string) int64 { return s.tbl.Escrowed(key) }

// PendingEscrows returns the unresolved outbound transfers.
func (s *Store) PendingEscrows() []av.Escrow { return s.tbl.PendingEscrows() }

// AddObligation durably records a settle/cancel obligation for an
// inbound transfer. The journal record precedes the table change so the
// obligation is re-driven after a crash; the effect it guards (the
// local credit) is journaled after it.
func (s *Store) AddObligation(ob av.Obligation) error {
	s.mu.Lock()
	amount := int64(0)
	if ob.Cancel {
		amount = 1
	}
	peer := strconv.FormatUint(uint64(ob.Peer), 10)
	lsn, err := s.appendXferLocked(opOblige, peer, amount, ob.Xfer)
	if err == nil {
		err = s.tbl.AddObligation(ob)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.syncTo(lsn)
}

// CompleteObligation durably discharges the obligation for xfer.
func (s *Store) CompleteObligation(xfer uint64) error {
	s.mu.Lock()
	lsn, err := s.appendXferLocked(opObligeDone, "", 0, xfer)
	if err == nil {
		err = s.tbl.CompleteObligation(xfer)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.syncTo(lsn)
}

// Obligations returns the outstanding obligations.
func (s *Store) Obligations() []av.Obligation { return s.tbl.Obligations() }

// --- volatile operations (reservations; pass through) ---

// Defined implements core.AVTable.
func (s *Store) Defined(key string) bool { return s.tbl.Defined(key) }

// Avail implements core.AVTable.
func (s *Store) Avail(key string) int64 { return s.tbl.Avail(key) }

// Held implements core.AVTable.
func (s *Store) Held(key string) int64 { return s.tbl.Held(key) }

// Total implements core.AVTable.
func (s *Store) Total(key string) int64 { return s.tbl.Total(key) }

// AcquireUpTo implements core.AVTable (volatile reservation).
func (s *Store) AcquireUpTo(key string, want int64) (int64, error) {
	return s.tbl.AcquireUpTo(key, want)
}

// Acquire implements core.AVTable (volatile reservation).
func (s *Store) Acquire(key string, n int64) (bool, error) { return s.tbl.Acquire(key, n) }

// CreditHeld adds a received grant to the reservation. The grant's
// durable record is written immediately (it is already durably debited
// at the granter), while the hold itself stays volatile: a crash before
// the update commits must return the volume to `avail`, which replaying
// a Credit does.
func (s *Store) CreditHeld(key string, n int64) error {
	s.mu.Lock()
	err := s.tbl.CreditHeld(key, n)
	var lsn uint64
	if err == nil {
		lsn, err = s.appendLocked(opCredit, key, n)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.syncTo(lsn)
}

// Release implements core.AVTable (volatile reservation).
func (s *Store) Release(key string, n int64) error { return s.tbl.Release(key, n) }

// Keys implements core.AVTable.
func (s *Store) Keys() []string { return s.tbl.Keys() }

// Snapshot implements core.AVTable.
func (s *Store) Snapshot() map[string]int64 { return s.tbl.Snapshot() }

// Checkpoint writes the durable balances (avail + held — holds are
// reservations of still-running updates and belong to the balance) to a
// snapshot and truncates the journal.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	boundary := s.journal.NextLSN() - 1
	balances := make(map[string]int64)
	for _, key := range s.tbl.Keys() {
		balances[key] = s.tbl.Total(key)
	}
	escrows := s.tbl.PendingEscrows()
	obls := s.tbl.Obligations()
	s.mu.Unlock()
	// With buffered group commit the journal tail may not be on disk
	// yet; make everything the snapshot covers durable before any
	// segment holding it can be dropped, so the journal remains a
	// complete record even if the snapshot rename is lost to a crash.
	if err := s.journal.SyncTo(boundary); err != nil {
		return err
	}
	if err := s.writeSnapshot(boundary, balances, escrows, obls); err != nil {
		return err
	}
	return s.journal.TruncateBefore(boundary + 1)
}

// writeSnapshot dumps balances, the escrow ledger, and the obligation
// ledger atomically.
func (s *Store) writeSnapshot(boundary uint64, balances map[string]int64, escrows []av.Escrow, obls []av.Obligation) error {
	out := encodeSnapshot(boundary, balances, escrows, obls)
	tmp := filepath.Join(s.dir, snapTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("avstore: %w", err)
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return fmt.Errorf("avstore: %w", err)
	}
	// The snapshot replaces truncated journal segments, so it must hit
	// stable storage before the rename makes it authoritative.
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("avstore: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("avstore: %w", err)
	}
	return os.Rename(tmp, filepath.Join(s.dir, snapName))
}

// encodeSnapshot renders the v2 snapshot format: magic, CRC32 of the
// body, then boundary LSN, balances, escrows and obligations.
func encodeSnapshot(boundary uint64, balances map[string]int64, escrows []av.Escrow, obls []av.Obligation) []byte {
	keys := make([]string, 0, len(balances))
	for k := range balances {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sort.Slice(escrows, func(i, j int) bool { return escrows[i].Xfer < escrows[j].Xfer })
	var body []byte
	body = binary.LittleEndian.AppendUint64(body, boundary)
	body = binary.AppendUvarint(body, uint64(len(keys)))
	for _, k := range keys {
		body = binary.AppendUvarint(body, uint64(len(k)))
		body = append(body, k...)
		body = binary.AppendVarint(body, balances[k])
	}
	body = binary.AppendUvarint(body, uint64(len(escrows)))
	for _, esc := range escrows {
		body = binary.AppendUvarint(body, esc.Xfer)
		body = binary.AppendUvarint(body, uint64(len(esc.Key)))
		body = append(body, esc.Key...)
		body = binary.AppendVarint(body, esc.N)
	}
	sort.Slice(obls, func(i, j int) bool { return obls[i].Xfer < obls[j].Xfer })
	body = binary.AppendUvarint(body, uint64(len(obls)))
	for _, ob := range obls {
		body = binary.AppendUvarint(body, ob.Xfer)
		body = binary.AppendUvarint(body, uint64(ob.Peer))
		cancel := int64(0)
		if ob.Cancel {
			cancel = 1
		}
		body = binary.AppendVarint(body, cancel)
	}
	out := make([]byte, 0, len(snapMagic)+4+len(body))
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	out = append(out, body...)
	return out
}

// loadSnapshot reads the snapshot if present. Both the v1 format (balances
// only) and the v2 format (balances plus the pending-escrow ledger) are
// accepted; a v1 snapshot simply yields no escrows.
func (s *Store) loadSnapshot() (uint64, map[string]int64, []av.Escrow, []av.Obligation, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, snapName))
	if os.IsNotExist(err) {
		return 0, nil, nil, nil, nil
	}
	if err != nil {
		return 0, nil, nil, nil, fmt.Errorf("avstore: %w", err)
	}
	return decodeSnapshot(data)
}

// decodeSnapshot parses a v1 or v2 snapshot blob. Corrupt input of any
// shape must come back as ErrCorrupt, never a panic — the fuzz harness
// holds it to that.
func decodeSnapshot(data []byte) (uint64, map[string]int64, []av.Escrow, []av.Obligation, error) {
	if len(data) < len(snapMagic)+4 {
		return 0, nil, nil, nil, fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	magic := string(data[:len(snapMagic)])
	if magic != snapMagic && magic != snapMagicV1 {
		return 0, nil, nil, nil, fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	sum := binary.LittleEndian.Uint32(data[len(snapMagic):])
	body := data[len(snapMagic)+4:]
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, nil, nil, fmt.Errorf("%w: snapshot checksum", ErrCorrupt)
	}
	if len(body) < 8 {
		return 0, nil, nil, nil, fmt.Errorf("%w: snapshot truncated", ErrCorrupt)
	}
	boundary := binary.LittleEndian.Uint64(body)
	body = body[8:]
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, nil, nil, fmt.Errorf("%w: snapshot count", ErrCorrupt)
	}
	body = body[n:]
	balances := make(map[string]int64, count)
	for i := uint64(0); i < count; i++ {
		keyLen, n := binary.Uvarint(body)
		if n <= 0 || keyLen > uint64(len(body)-n) {
			return 0, nil, nil, nil, fmt.Errorf("%w: snapshot key", ErrCorrupt)
		}
		key := string(body[n : n+int(keyLen)])
		body = body[n+int(keyLen):]
		amount, n := binary.Varint(body)
		if n <= 0 {
			return 0, nil, nil, nil, fmt.Errorf("%w: snapshot amount", ErrCorrupt)
		}
		body = body[n:]
		balances[key] = amount
	}
	if magic == snapMagicV1 {
		return boundary, balances, nil, nil, nil
	}
	escCount, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, nil, nil, fmt.Errorf("%w: snapshot escrow count", ErrCorrupt)
	}
	body = body[n:]
	escrows := make([]av.Escrow, 0, escCount)
	for i := uint64(0); i < escCount; i++ {
		xfer, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, nil, nil, nil, fmt.Errorf("%w: snapshot escrow xfer", ErrCorrupt)
		}
		body = body[n:]
		keyLen, n := binary.Uvarint(body)
		if n <= 0 || keyLen > uint64(len(body)-n) {
			return 0, nil, nil, nil, fmt.Errorf("%w: snapshot escrow key", ErrCorrupt)
		}
		key := string(body[n : n+int(keyLen)])
		body = body[n+int(keyLen):]
		amount, n := binary.Varint(body)
		if n <= 0 {
			return 0, nil, nil, nil, fmt.Errorf("%w: snapshot escrow amount", ErrCorrupt)
		}
		body = body[n:]
		escrows = append(escrows, av.Escrow{Xfer: xfer, Key: key, N: amount})
	}
	oblCount, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, nil, nil, fmt.Errorf("%w: snapshot obligation count", ErrCorrupt)
	}
	body = body[n:]
	obls := make([]av.Obligation, 0, oblCount)
	for i := uint64(0); i < oblCount; i++ {
		xfer, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, nil, nil, nil, fmt.Errorf("%w: snapshot obligation xfer", ErrCorrupt)
		}
		body = body[n:]
		peer, n := binary.Uvarint(body)
		if n <= 0 || peer > 0xFFFFFFFF {
			return 0, nil, nil, nil, fmt.Errorf("%w: snapshot obligation peer", ErrCorrupt)
		}
		body = body[n:]
		cancel, n := binary.Varint(body)
		if n <= 0 {
			return 0, nil, nil, nil, fmt.Errorf("%w: snapshot obligation flag", ErrCorrupt)
		}
		body = body[n:]
		obls = append(obls, av.Obligation{Xfer: xfer, Peer: uint32(peer), Cancel: cancel == 1})
	}
	return boundary, balances, escrows, obls, nil
}

// Close syncs and closes the journal. The epoch manager (if any) is
// flushed first so no committer is left waiting on a boundary whose
// journal has gone away.
func (s *Store) Close() error {
	var err error
	if s.epochs != nil {
		err = s.epochs.Close()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	return err
}
