package avstore

import (
	"os"
	"sync"
	"testing"
	"time"

	"avdb/internal/epoch"
	"avdb/internal/metrics"
	"avdb/internal/wal"
)

// TestEpochModeAckedCommitsAreDurable pins the epoch-mode ack
// contract: every durable op that returned success has its journal
// record covered by the WAL's durable watermark the moment it returns —
// a crash at any point after the ack (including between one epoch's
// close and the next's fsync) can only lose records that were never
// acknowledged.
func TestEpochModeAckedCommitsAreDurable(t *testing.T) {
	dir := t.TempDir()
	st := &epoch.Stats{}
	ws := &wal.Stats{}
	s, err := Open(dir, Options{
		EpochInterval: 200 * time.Microsecond,
		EpochStats:    st,
		Stats:         ws,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Define("k", 1_000_000); err != nil {
		t.Fatal(err)
	}

	const workers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if ok, err := s.Acquire("k", 1); err != nil || !ok {
					t.Errorf("acquire: ok=%v err=%v", ok, err)
					return
				}
				if err := s.Consume("k", 1); err != nil {
					t.Errorf("consume: %v", err)
					return
				}
				// The ack contract: the record this op appended is already
				// durable. LSNs are dense, so covering the whole prefix
				// below is equivalent per op; assert the watermark never
				// trails an acknowledged op's journal tail by a whole
				// unsynced epoch.
				if got, tail := s.journal.DurableLSN(), s.journal.NextLSN()-1; got == 0 && tail > 0 {
					t.Errorf("acked consume with durable watermark 0 (tail %d)", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Quiesced: no op is in flight, so everything acknowledged is exactly
	// everything appended, and all of it must be durable.
	if got, want := s.journal.DurableLSN(), s.journal.NextLSN()-1; got != want {
		t.Fatalf("durable watermark %d after quiesce, want %d: acked commits not durable", got, want)
	}
	// workers*per consumes plus the initial Define all rode epochs.
	if st.Epochs.Load() == 0 || st.Commits.Load() != workers*per+1 {
		t.Fatalf("epoch stats: %d epochs / %d commits, want >0 / %d",
			st.Epochs.Load(), st.Commits.Load(), workers*per+1)
	}
	if f := ws.Fsyncs.Load(); f >= workers*per {
		t.Fatalf("%d fsyncs for %d commits: epochs did not amortize", f, workers*per)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart (epoch mode again) and verify no acknowledged commit was
	// lost: all workers*per spends must be reflected.
	s2, err := Open(dir, Options{EpochInterval: 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got, want := s2.Avail("k"), int64(1_000_000-workers*per); got != want {
		t.Fatalf("recovered avail %d, want %d", got, want)
	}
}

// TestCrashTornMidEpochNeverMints extends the torn-mid-batch crash test
// to epoch mode: a crash lands between an epoch's close and the
// completion of its covering fsync, so the journal tail holds an intact
// acknowledged decrement followed by a torn, never-acknowledged credit
// from the same epoch. Epoch-mode recovery must apply the intact prefix
// and drop the tail — lost slack, never minted AV.
func TestCrashTornMidEpochNeverMints(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{EpochInterval: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Define("k", 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Plant the crashed epoch on the journal tail: the decrease was
	// journaled before its ack escaped (escrow rule), the increase's
	// record is torn mid-frame by the crash.
	f, err := os.OpenFile(tailSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(walFrame(avRecord(opSpend, "k", 30))); err != nil {
		t.Fatal(err)
	}
	torn := walFrame(avRecord(opCredit, "k", 50))
	if _, err := f.Write(torn[:len(torn)-4]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{EpochInterval: 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("epoch-mode recovery after torn epoch: %v", err)
	}
	defer s2.Close()
	if got := s2.Avail("k"); got != 70 {
		t.Fatalf("recovered avail = %d, want 70 (spend applied, torn credit dropped)", got)
	}
	if got := s2.Total("k"); got > 120 {
		t.Fatalf("recovered total = %d exceeds arithmetic truth 120: AV minted", got)
	}
	// The recovered store keeps committing through fresh epochs.
	if err := s2.Credit("k", 5); err != nil {
		t.Fatal(err)
	}
	if got := s2.Avail("k"); got != 75 {
		t.Fatalf("avail after post-recovery credit = %d, want 75", got)
	}
}

// TestEpochModeCheckpointUnderLoad runs durable ops against an
// epoch-mode store while checkpoints snapshot and truncate underneath:
// Checkpoint syncs its boundary directly (it must not wait out an open
// epoch), and the books must balance across a restart.
func TestEpochModeCheckpointUnderLoad(t *testing.T) {
	dir := t.TempDir()
	st := &epoch.Stats{
		CommitsPerEpoch: metrics.NewHistogram(),
		CloseLatency:    metrics.NewHistogram(),
		AckWait:         metrics.NewHistogram(),
	}
	s, err := Open(dir, Options{
		SegmentMaxBytes: 512,
		EpochInterval:   200 * time.Microsecond,
		EpochMaxCommits: 8,
		EpochStats:      st,
	})
	if err != nil {
		t.Fatal(err)
	}
	const initial = 10_000
	if err := s.Define("k", initial); err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if ok, err := s.Acquire("k", 1); err == nil && ok {
					if err := s.Consume("k", 1); err != nil {
						t.Errorf("consume: %v", err)
						return
					}
				}
			}
		}()
	}
	stop := make(chan struct{})
	ckptDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				ckptDone <- nil
				return
			default:
				if err := s.Checkpoint(); err != nil {
					ckptDone <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got, want := s2.Avail("k"), int64(initial-workers*per); got != want {
		t.Fatalf("recovered avail %d, want %d", got, want)
	}
	if n := st.CommitsPerEpoch.Snapshot().Count; n == 0 {
		t.Fatal("CommitsPerEpoch histogram never observed")
	}
}
