package avstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"avdb/internal/av"
)

// v1Snapshot hand-builds a legacy AVDBAVS1 blob (boundary + balances
// only), since the writer only emits v2 now.
func v1Snapshot(boundary uint64, balances map[string]int64, keys []string) []byte {
	var body []byte
	body = binary.LittleEndian.AppendUint64(body, boundary)
	body = binary.AppendUvarint(body, uint64(len(keys)))
	for _, k := range keys {
		body = binary.AppendUvarint(body, uint64(len(k)))
		body = append(body, k...)
		body = binary.AppendVarint(body, balances[k])
	}
	out := append([]byte{}, snapMagicV1...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return append(out, body...)
}

// FuzzSnapshotLoad feeds arbitrary bytes to the snapshot decoder. The
// contract: valid v1 and v2 blobs decode to their contents, anything
// else comes back as ErrCorrupt — never a panic, never a silent
// misparse that survives a re-encode.
func FuzzSnapshotLoad(f *testing.F) {
	balances := map[string]int64{"product-0001": 120, "product-0002": 0, "αβ": 7}
	escrows := []av.Escrow{{Xfer: 0x700000001, Key: "product-0001", N: 25}, {Xfer: 9, Key: "product-0002", N: 1}}
	obls := []av.Obligation{{Xfer: 0x700000001, Peer: 2, Cancel: false}, {Xfer: 11, Peer: 3, Cancel: true}}

	f.Add(encodeSnapshot(42, balances, escrows, obls))
	f.Add(encodeSnapshot(0, nil, nil, nil))
	f.Add(encodeSnapshot(1, map[string]int64{"k": -3}, nil, obls[:1]))
	f.Add(v1Snapshot(7, balances, []string{"product-0001", "product-0002", "αβ"}))
	f.Add(v1Snapshot(0, nil, nil))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	truncated := encodeSnapshot(42, balances, escrows, obls)
	f.Add(truncated[:len(truncated)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		boundary, bals, escs, os, err := decodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		// Whatever decoded must survive a round trip bit-exactly modulo
		// ordering, which the encoder canonicalizes.
		re := encodeSnapshot(boundary, bals, escs, os)
		b2, bals2, escs2, os2, err := decodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if b2 != boundary || len(bals2) != len(bals) || len(escs2) != len(escs) || len(os2) != len(os) {
			t.Fatalf("round trip changed shape: boundary %d->%d, %d->%d balances, %d->%d escrows, %d->%d obligations",
				boundary, b2, len(bals), len(bals2), len(escs), len(escs2), len(os), len(os2))
		}
		for k, v := range bals {
			if bals2[k] != v {
				t.Fatalf("round trip changed balance %q: %d -> %d", k, v, bals2[k])
			}
		}
		if !bytes.Equal(re, encodeSnapshot(b2, bals2, escs2, os2)) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// TestSnapshotV1Decode pins the legacy format: a v1 blob yields its
// balances and no escrow or obligation ledgers.
func TestSnapshotV1Decode(t *testing.T) {
	balances := map[string]int64{"a": 5, "b": 0}
	blob := v1Snapshot(3, balances, []string{"a", "b"})
	boundary, bals, escs, obls, err := decodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if boundary != 3 || len(bals) != 2 || bals["a"] != 5 || bals["b"] != 0 {
		t.Fatalf("bad v1 decode: boundary=%d balances=%v", boundary, bals)
	}
	if escs != nil || obls != nil {
		t.Fatalf("v1 snapshot produced ledgers: %v %v", escs, obls)
	}
}
