package avstore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"avdb/internal/rng"
	"avdb/internal/wal"
)

// avRecord hand-encodes one journal record exactly as appendXferLocked
// does, so crash tests can plant records the store never acknowledged.
func avRecord(op byte, key string, amount int64) []byte {
	p := []byte{op}
	p = binary.AppendUvarint(p, uint64(len(key)))
	p = append(p, key...)
	p = binary.AppendVarint(p, amount)
	return p
}

// walFrame wraps a payload in the WAL's on-disk framing (u32 length,
// u32 CRC32, payload).
func walFrame(payload []byte) []byte {
	buf := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// tailSegment returns the path of the journal's highest-numbered
// segment file.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "journal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments: %v", err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// TestConcurrentDurableOpsWithCheckpointer hammers the store with every
// class of durable op from many goroutines while a checkpointer loops
// snapshot+truncate underneath them, with real fsyncs so the group
// commit leader/follower protocol is exercised. Run under -race this
// checks the append-under-lock / sync-after-unlock split and the
// checkpoint's mid-flight lock release; afterwards the books must
// balance in memory and survive a restart.
func TestConcurrentDurableOpsWithCheckpointer(t *testing.T) {
	dir := t.TempDir()
	st := &wal.Stats{}
	s, err := Open(dir, Options{SegmentMaxBytes: 512, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	const initial = 1_000_000
	if err := s.Define("k", initial); err != nil {
		t.Fatal(err)
	}

	const workers = 6
	var wg sync.WaitGroup
	spent := make([]int64, workers)   // committed decrements
	minted := make([]int64, workers)  // credits
	settled := make([]int64, workers) // escrows resolved as settle (destroyed)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g + 1))
			for i := 0; i < 40; i++ {
				switch r.Intn(4) {
				case 0:
					n := r.Range(1, 20)
					if ok, err := s.Acquire("k", n); err == nil && ok {
						if err := s.Consume("k", n); err != nil {
							t.Errorf("consume: %v", err)
							return
						}
						spent[g] += n
					}
				case 1:
					n := r.Range(1, 10)
					if err := s.Credit("k", n); err != nil {
						t.Errorf("credit: %v", err)
						return
					}
					minted[g] += n
				case 2:
					n := r.Range(1, 15)
					taken, err := s.Debit("k", n)
					if err != nil {
						t.Errorf("debit: %v", err)
						return
					}
					spent[g] += taken
				case 3:
					xfer := uint64(g)<<32 | uint64(i)
					taken, err := s.EscrowDebit("k", xfer, r.Range(1, 10))
					if err != nil || taken == 0 {
						continue
					}
					cancel := r.Bool(0.5)
					if _, err := s.ResolveEscrow(xfer, cancel); err != nil {
						t.Errorf("resolve: %v", err)
						return
					}
					if !cancel {
						settled[g] += taken
					}
				}
			}
		}(g)
	}
	ckptDone := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				ckptDone <- nil
				return
			default:
				if err := s.Checkpoint(); err != nil {
					ckptDone <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	truth := int64(initial)
	for g := 0; g < workers; g++ {
		truth += minted[g] - spent[g] - settled[g]
	}
	if got := s.Avail("k") + s.Held("k"); got != truth {
		t.Fatalf("in-memory balance %d, want %d", got, truth)
	}
	if st.RecordsSynced.Load() == 0 || st.Fsyncs.Load() == 0 {
		t.Fatalf("group commit never ran: %d records / %d fsyncs",
			st.RecordsSynced.Load(), st.Fsyncs.Load())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.Avail("k"); got != truth {
		t.Fatalf("recovered balance %d, want %d", got, truth)
	}
}

// BenchmarkDurableDecrementSerial measures the durable decrement fast
// path with real fsyncs and no concurrency: every op must wait for its
// own sync round, so fsyncs/op ≈ 1. The parallel variant below is the
// payoff comparison.
func BenchmarkDurableDecrementSerial(b *testing.B) {
	st := &wal.Stats{}
	s, err := Open(b.TempDir(), Options{Stats: st})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Define("k", 1<<50); err != nil {
		b.Fatal(err)
	}
	start := st.Fsyncs.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := s.Acquire("k", 1); ok {
			if err := s.Consume("k", 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(st.Fsyncs.Load()-start)/float64(b.N), "fsyncs/op")
}

// BenchmarkDurableDecrementParallel runs the same durable decrement
// from GOMAXPROCS goroutines. Group commit batches concurrent waiters
// behind one leader fsync, so fsyncs/op drops well below 1 at
// parallelism ≥ 4 — the headline number reported in BENCH_4.json.
func BenchmarkDurableDecrementParallel(b *testing.B) {
	st := &wal.Stats{}
	s, err := Open(b.TempDir(), Options{Stats: st})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Define("k", 1<<50); err != nil {
		b.Fatal(err)
	}
	start := st.Fsyncs.Load()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if ok, _ := s.Acquire("k", 1); ok {
				if err := s.Consume("k", 1); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(st.Fsyncs.Load()-start)/float64(b.N), "fsyncs/op")
}

// TestCrashTornMidGroupCommitBatchNeverMints simulates a crash that
// lands inside one group-commit batch: the first record of the batch
// (a decrement) reached disk intact, the second (a credit) is torn.
// Recovery must apply the intact prefix and drop the tail — losing the
// credit's slack, never minting AV — so the recovered balance stays at
// or below the arithmetic truth.
func TestCrashTornMidGroupCommitBatchNeverMints(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Define("k", 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Plant the crashed batch on the journal tail: a complete spend of
	// 30 followed by a credit of 50 torn mid-frame.
	f, err := os.OpenFile(tailSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(walFrame(avRecord(opSpend, "k", 30))); err != nil {
		t.Fatal(err)
	}
	torn := walFrame(avRecord(opCredit, "k", 50))
	if _, err := f.Write(torn[:len(torn)-4]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after torn batch: %v", err)
	}
	defer s2.Close()
	// Truth if everything had committed: 100 - 30 + 50 = 120. The torn
	// credit is dropped, so exactly 70 — strictly below truth, no mint.
	if got := s2.Avail("k"); got != 70 {
		t.Fatalf("recovered avail = %d, want 70 (spend applied, torn credit dropped)", got)
	}
	if got := s2.Total("k"); got > 120 {
		t.Fatalf("recovered total = %d exceeds arithmetic truth 120: AV minted", got)
	}
	// The store must keep working past the repaired tail.
	if err := s2.Credit("k", 5); err != nil {
		t.Fatal(err)
	}
	if got := s2.Avail("k"); got != 75 {
		t.Fatalf("avail after post-recovery credit = %d, want 75", got)
	}
}
