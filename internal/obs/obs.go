// Package obs is avdb's embeddable admin/observability surface: a small
// HTTP server (stdlib only) that exposes the process's health, its
// metrics.Registry counters and latency histograms, and the distributed
// traces recorded by an internal/trace.Tracer. cmd/avnode mounts it
// behind the -admin flag; in-process clusters embed it in tests.
//
// Endpoints:
//
//	GET /healthz       — liveness: "ok", uptime, site count
//	GET /metrics       — aligned-text counters, correspondences, histograms
//	GET /trace?id=...  — one trace as JSON (or ?format=text for a tree)
//	GET /trace/recent  — most recently finished spans as JSON (?n= limit)
package obs

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"avdb/internal/metrics"
	"avdb/internal/trace"
)

// Options configure a Server. All fields are optional; endpoints whose
// backing component is absent report that instead of failing.
type Options struct {
	// Registry supplies the message counters for /metrics.
	Registry *metrics.Registry
	// Tracer supplies spans for /trace and /trace/recent.
	Tracer *trace.Tracer
	// Uptime anchor; zero means "when New was called".
	Start time.Time
}

// Server is the admin HTTP server. Create with New, then either mount
// Handler() into an existing mux or call Start/Close for a standalone
// listener.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu       sync.Mutex
	hists    []namedHist
	counters []namedCounter
	ln       net.Listener
	srv      *http.Server
}

type namedHist struct {
	name string
	h    *metrics.Histogram
	// unitless renders samples as raw values (e.g. records per group
	// commit) instead of nanosecond durations.
	unitless bool
}

type namedCounter struct {
	name string
	read func() int64
}

// New builds a server over the given components.
func New(opts Options) *Server {
	if opts.Start.IsZero() {
		opts.Start = time.Now()
	}
	s := &Server{opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /trace", s.handleTrace)
	s.mux.HandleFunc("GET /trace/recent", s.handleTraceRecent)
	return s
}

// RegisterHistogram adds a named latency histogram to /metrics. Safe to
// call while the server runs.
func (s *Server) RegisterHistogram(name string, h *metrics.Histogram) {
	s.registerHist(name, h, false)
}

// RegisterSizeHistogram adds a histogram whose samples are unitless
// counts (metrics.Histogram stores them as time.Duration internally,
// one "nanosecond" per unit); /metrics renders them without the _ns
// suffix. Used for the WAL's records-per-group-commit distribution.
func (s *Server) RegisterSizeHistogram(name string, h *metrics.Histogram) {
	s.registerHist(name, h, true)
}

func (s *Server) registerHist(name string, h *metrics.Histogram, unitless bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.hists {
		if s.hists[i].name == name {
			s.hists[i].h = h
			s.hists[i].unitless = unitless
			return
		}
	}
	s.hists = append(s.hists, namedHist{name, h, unitless})
}

// RegisterCounter exposes a named counter on /metrics, sampled at
// scrape time. read is typically a method value — (*metrics.Counter).
// Value, (*atomic.Int64).Load — so the counter stays live. Registering
// a name again replaces its reader. Safe to call while the server runs.
func (s *Server) RegisterCounter(name string, read func() int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].name == name {
			s.counters[i].read = read
			return
		}
	}
	s.counters = append(s.counters, namedCounter{name, read})
}

// Handle mounts an extra handler on the admin mux (e.g. the read
// plane's /read/ subtree). Call before Start; patterns follow
// http.ServeMux rules.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Handler returns the admin mux for embedding into another server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; ":0" picks a free port) and serves
// in a background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. Idempotent; a no-op before Start.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok\nuptime: %v\n", time.Since(s.opts.Start).Round(time.Millisecond))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")

	if reg := s.opts.Registry; reg != nil {
		samples := reg.Snapshot()
		t := &metrics.Table{Title: "# messages", Columns: []string{"site", "kind", "count"}}
		for _, smp := range samples {
			t.AddRow(strconv.Itoa(smp.Site), smp.Kind, strconv.FormatInt(smp.Count, 10))
		}
		t.WriteText(w) //nolint:errcheck // best-effort HTTP write
		fmt.Fprintf(w, "\ntotal_messages %d\ntotal_correspondences %d\n",
			reg.TotalMessages(), reg.TotalCorrespondences())
		sites := make([]int, 0)
		bySite := reg.CorrespondencesBySite()
		for site := range bySite {
			sites = append(sites, site)
		}
		sort.Ints(sites)
		for _, site := range sites {
			fmt.Fprintf(w, "correspondences{site=%d} %d\n", site, bySite[site])
		}
	} else {
		fmt.Fprintln(w, "# no metrics registry configured")
	}

	s.mu.Lock()
	hists := append([]namedHist(nil), s.hists...)
	counters := append([]namedCounter(nil), s.counters...)
	s.mu.Unlock()
	if len(counters) > 0 {
		fmt.Fprintln(w, "\n# counters")
		for _, nc := range counters {
			fmt.Fprintf(w, "%s %d\n", nc.name, nc.read())
		}
	}
	for _, nh := range hists {
		snap := nh.h.Snapshot()
		fmt.Fprintf(w, "\n# histogram %s\n%s_count %d\n", nh.name, nh.name, snap.Count)
		if snap.Count > 0 {
			suffix := "_ns"
			if nh.unitless {
				suffix = ""
			}
			fmt.Fprintf(w, "%s_mean%s %d\n%s_p50%s %d\n%s_p95%s %d\n%s_p99%s %d\n%s_max%s %d\n",
				nh.name, suffix, snap.Mean.Nanoseconds(),
				nh.name, suffix, snap.Percentile(50).Nanoseconds(),
				nh.name, suffix, snap.Percentile(95).Nanoseconds(),
				nh.name, suffix, snap.Percentile(99).Nanoseconds(),
				nh.name, suffix, snap.Max.Nanoseconds())
		}
	}

	if tr := s.opts.Tracer; tr != nil {
		fmt.Fprintf(w, "\ntrace_enabled %t\ntrace_spans_dropped %d\n", tr.Enabled(), tr.Dropped())
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.opts.Tracer
	if tr == nil {
		http.Error(w, "no tracer configured", http.StatusNotFound)
		return
	}
	idStr := r.URL.Query().Get("id")
	if idStr == "" {
		http.Error(w, "missing id parameter", http.StatusBadRequest)
		return
	}
	id, err := trace.ParseTraceID(idStr)
	if err != nil {
		http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
		return
	}
	spans := tr.Trace(id)
	if len(spans) == 0 {
		http.Error(w, "trace not found (evicted or never recorded)", http.StatusNotFound)
		return
	}
	writeSpans(w, r, spans)
}

func (s *Server) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	tr := s.opts.Tracer
	if tr == nil {
		http.Error(w, "no tracer configured", http.StatusNotFound)
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		n = v
	}
	writeSpans(w, r, tr.Recent(n))
}

// writeSpans renders spans as JSON, or as an indented tree with
// ?format=text.
func writeSpans(w http.ResponseWriter, r *http.Request, spans []trace.Span) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		trace.WriteText(w, spans) //nolint:errcheck // best-effort HTTP write
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WriteJSON(w, spans) //nolint:errcheck // best-effort HTTP write
}
