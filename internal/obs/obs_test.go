package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"avdb/internal/metrics"
	"avdb/internal/trace"
)

// get fetches path from the running server and returns status and body.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func startServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := New(opts)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestHealthz(t *testing.T) {
	s := startServer(t, Options{})
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if !strings.HasPrefix(body, "ok\n") || !strings.Contains(body, "uptime:") {
		t.Fatalf("healthz body = %q", body)
	}
}

func TestMetricsRendersCountersAndHistograms(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter(0, "av.request").Add(4)
	reg.Counter(1, "iu.prepare").Add(3)
	tr := trace.New(16)
	s := startServer(t, Options{Registry: reg, Tracer: tr})
	h := metrics.NewHistogram()
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	s.RegisterHistogram("update_latency", h)

	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	for _, want := range []string{
		"av.request",
		"iu.prepare",
		"total_messages 7",
		"total_correspondences 4",
		"correspondences{site=0} 2",
		"update_latency_count 2",
		"update_latency_p95_ns",
		"trace_enabled true",
		"trace_spans_dropped 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsWithoutRegistry(t *testing.T) {
	s := startServer(t, Options{})
	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	if !strings.Contains(body, "no metrics registry") {
		t.Fatalf("metrics body = %q", body)
	}
}

func TestTraceEndpoint(t *testing.T) {
	tr := trace.New(64)
	ctx, root := tr.Start(context.Background(), 3, "update")
	_, child := tr.Start(ctx, 3, "av.gather")
	child.EndSpan()
	root.EndSpan()
	s := startServer(t, Options{Tracer: tr})

	code, body := get(t, s, "/trace?id="+root.Context().Trace.String())
	if code != http.StatusOK {
		t.Fatalf("trace status = %d: %s", code, body)
	}
	got, err := trace.ReadJSON(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decode trace JSON: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("trace returned %d spans, want 2", len(got))
	}

	if code, _ := get(t, s, "/trace?id="+trace.TraceID(0xdead).String()); code != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", code)
	}
	if code, _ := get(t, s, "/trace?id=zzz"); code != http.StatusBadRequest {
		t.Errorf("bad id status = %d, want 400", code)
	}
	if code, _ := get(t, s, "/trace"); code != http.StatusBadRequest {
		t.Errorf("missing id status = %d, want 400", code)
	}

	code, text := get(t, s, "/trace?format=text&id="+root.Context().Trace.String())
	if code != http.StatusOK || !strings.Contains(text, "update") {
		t.Errorf("text trace: status %d body %q", code, text)
	}
}

func TestTraceRecent(t *testing.T) {
	tr := trace.New(64)
	for i := 0; i < 5; i++ {
		_, sp := tr.Start(context.Background(), 0, "op")
		sp.EndSpan()
	}
	s := startServer(t, Options{Tracer: tr})

	code, body := get(t, s, "/trace/recent?n=3")
	if code != http.StatusOK {
		t.Fatalf("recent status = %d", code)
	}
	got, err := trace.ReadJSON(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decode recent JSON: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("recent returned %d spans, want 3", len(got))
	}
	if code, _ := get(t, s, "/trace/recent?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n status = %d, want 400", code)
	}
}

func TestTraceEndpointsWithoutTracer(t *testing.T) {
	s := startServer(t, Options{})
	if code, _ := get(t, s, "/trace?id=1"); code != http.StatusNotFound {
		t.Errorf("trace status = %d, want 404", code)
	}
	if code, _ := get(t, s, "/trace/recent"); code != http.StatusNotFound {
		t.Errorf("recent status = %d, want 404", code)
	}
}

func TestMetricsRendersRegisteredCounters(t *testing.T) {
	s := startServer(t, Options{})
	var aborts metrics.Counter
	aborts.Add(5)
	s.RegisterCounter("twopc_aborts", aborts.Value)
	live := int64(0)
	s.RegisterCounter("suspected_peers", func() int64 { return live })

	_, body := get(t, s, "/metrics")
	for _, want := range []string{"# counters", "twopc_aborts 5", "suspected_peers 0"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q:\n%s", want, body)
		}
	}
	// Counters are sampled at scrape time, and re-registration replaces.
	aborts.Inc()
	live = 3
	_, body = get(t, s, "/metrics")
	for _, want := range []string{"twopc_aborts 6", "suspected_peers 3"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q:\n%s", want, body)
		}
	}
	s.RegisterCounter("suspected_peers", func() int64 { return 9 })
	if _, body = get(t, s, "/metrics"); !strings.Contains(body, "suspected_peers 9") {
		t.Errorf("re-registered counter not replaced:\n%s", body)
	}
}
