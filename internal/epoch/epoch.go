// Package epoch implements SCAR-style epoch-based commit: instead of
// every commit waiting out its own group-commit fsync, commits enqueue
// on the currently open, monotonically numbered epoch and are released
// together once the epoch's covering LSN — the maximum LSN any commit
// in the epoch wrote — is durable. One fsync is amortized across every
// commit the epoch collected, so the fsync rate is bounded by the epoch
// interval rather than the commit rate.
//
// An epoch opens lazily at the first commit after its predecessor
// closed and closes when either its interval elapses or it reaches
// MaxCommits (size-based early close). Closes of adjacent epochs may
// overlap: epoch N+1 accepts commits while epoch N's sync is still in
// flight, and the underlying WAL serializes the actual fsyncs. An idle
// manager arms no timer and issues no fsync.
//
// The manager changes nothing about *what* is journaled or in what
// order — records are still appended under their stores' locks before
// the commit enqueues — only *when* the acknowledgement is released.
// The escrow discipline (decreases journal-before-ack, a crash loses
// slack but never mints AV) therefore survives intact: an epoch crash
// window can only lose commits that were never acknowledged.
//
// Callers that can overlap work across the durability boundary use the
// async half of the API: Enqueue registers the commit on the open epoch
// and returns a Ticket immediately, so epoch N+1 can fill while epoch
// N's covering fsync is still in flight; Ticket.Wait (or Done/Err)
// collects the outcome later. Commit is exactly Enqueue followed by
// Wait.
package epoch

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/clock"
	"avdb/internal/metrics"
)

// ErrClosed reports a commit against a manager that has shut down.
var ErrClosed = errors.New("epoch: manager closed")

// Defaults.
const (
	DefaultInterval   = 200 * time.Microsecond
	DefaultMaxCommits = 1024
)

// Stats counts epoch activity; atomically updated, shareable between
// the managers of one site (storage WAL + AV journal).
type Stats struct {
	// Epochs counts closed epochs (each closed epoch issued exactly one
	// covering sync).
	Epochs atomic.Int64
	// Commits counts commits acknowledged through an epoch boundary.
	Commits atomic.Int64
	// EarlyCloses counts size-triggered closes (epoch hit MaxCommits
	// before its interval elapsed).
	EarlyCloses atomic.Int64
	// Widens counts adaptive-interval widenings (epoch filled to
	// MaxCommits, so the controller doubled the interval toward
	// MaxInterval to amortize more commits per fsync).
	Widens atomic.Int64
	// Collapses counts adaptive-interval collapses (epoch closed nearly
	// empty, so the controller halved the interval toward MinInterval to
	// shed ack latency while there is nothing to amortize).
	Collapses atomic.Int64
	// CommitsPerEpoch, when non-nil, observes each closed epoch's commit
	// count (unitless).
	CommitsPerEpoch *metrics.Histogram
	// CloseLatency, when non-nil, observes the wall time from an epoch's
	// first commit to its covering LSN being durable.
	CloseLatency *metrics.Histogram
	// AckWait, when non-nil, observes the per-commit wall time spent
	// waiting for the epoch boundary.
	AckWait *metrics.Histogram
}

// Options tune a Manager.
type Options struct {
	// Interval is how long an epoch stays open after its first commit
	// (default DefaultInterval).
	Interval time.Duration
	// MaxCommits closes an epoch early once it has collected this many
	// commits (default DefaultMaxCommits; negative disables the cap).
	MaxCommits int
	// Clock drives epoch deadlines (nil means the real clock; the
	// deterministic simulator passes a virtual clock).
	Clock clock.Clock
	// Sync makes every record up to the given LSN durable. Required;
	// normally a *wal.Log's SyncTo.
	Sync func(lsn uint64) error
	// Stats, when non-nil, receives the counters above.
	Stats *Stats
	// Adaptive turns on the interval controller: the interval widens
	// (doubles, clamped to MaxInterval) when an epoch fills to
	// MaxCommits before its timer fires, and collapses (halves, clamped
	// to MinInterval) when an epoch closes with at most MaxCommits/8
	// commits. The feedback signal is the same per-epoch commit count
	// the CommitsPerEpoch histogram observes.
	Adaptive bool
	// MinInterval / MaxInterval clamp the adaptive controller (defaults
	// Interval/4 and Interval*8). Ignored unless Adaptive is set.
	MinInterval time.Duration
	MaxInterval time.Duration
	// OnDurable, when non-nil, is invoked (on the closing goroutine,
	// outside the manager's lock) each time the durable epoch watermark
	// advances. Replication uses it to fence delta windows on epoch
	// boundaries.
	OnDurable func(epoch uint64)
}

// state is one epoch's accumulation window.
type state struct {
	num    uint64
	maxLSN uint64
	count  int64
	opened time.Time // first commit's arrival, for CloseLatency
	timer  *clock.Timer
	cancel chan struct{} // closed when the timer watcher must stand down
	done   chan struct{} // closed once the epoch is durable (or failed)
	err    error
	// detached marks the epoch as claimed for closing (by the timer
	// watcher, a size-triggered committer, or Close). Guarded by the
	// manager's mu.
	detached bool
}

// Manager batches commit acknowledgements onto epoch boundaries.
type Manager struct {
	opts Options

	mu     sync.Mutex
	cur    *state // open epoch, nil when idle
	num    uint64 // number of the most recently opened epoch
	closed bool

	durable  atomic.Uint64 // highest epoch number known fully durable
	interval atomic.Int64  // current interval in ns (adaptive moves it)
}

// New builds a Manager. Sync is required.
func New(opts Options) *Manager {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.MaxCommits == 0 {
		opts.MaxCommits = DefaultMaxCommits
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.Adaptive {
		if opts.MinInterval <= 0 {
			opts.MinInterval = opts.Interval / 4
		}
		if opts.MaxInterval <= 0 {
			opts.MaxInterval = opts.Interval * 8
		}
		if opts.MinInterval > opts.Interval {
			opts.MinInterval = opts.Interval
		}
		if opts.MaxInterval < opts.Interval {
			opts.MaxInterval = opts.Interval
		}
	}
	m := &Manager{opts: opts}
	m.interval.Store(int64(opts.Interval))
	return m
}

// Interval returns the interval the next epoch will be armed with. With
// the adaptive controller off this is constant; with it on, this is the
// controller's current setting (exported as epoch_interval_current_us).
func (m *Manager) Interval() time.Duration {
	return time.Duration(m.interval.Load())
}

// Current returns the number of the epoch a commit enqueued now would
// join: the open epoch's, or the next to open when the manager is idle.
func (m *Manager) Current() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur != nil {
		return m.cur.num
	}
	return m.num + 1
}

// Durable returns the highest epoch number whose commits are all
// durable (0 before any epoch closed).
func (m *Manager) Durable() uint64 { return m.durable.Load() }

// Ticket is one commit's claim on an epoch boundary, handed out by
// Enqueue. The commit is acknowledged — its epoch's covering LSN is
// durable, or the covering sync failed — once Done is closed.
type Ticket struct {
	m     *Manager
	e     *state
	start time.Time // enqueue time, for AckWait (zero when unobserved)
}

// Epoch returns the number of the epoch the commit rode.
func (t Ticket) Epoch() uint64 { return t.e.num }

// Done is closed once the ticket's epoch is durable (or its covering
// sync failed — check Err after Done).
func (t Ticket) Done() <-chan struct{} { return t.e.done }

// Err returns the epoch's sync outcome. Valid only after Done is
// closed; on error the record may or may not have reached disk and
// callers treat the effect as lost slack, exactly as with a failed
// direct sync.
func (t Ticket) Err() error { return t.e.err }

// Wait blocks until the ticket's epoch is durable and returns the epoch
// number and the sync outcome, observing the caller's ack wait.
func (t Ticket) Wait() (uint64, error) {
	<-t.e.done
	if !t.start.IsZero() {
		t.m.opts.Stats.AckWait.Observe(t.m.opts.Clock.Now().Sub(t.start))
	}
	return t.e.num, t.e.err
}

// Enqueue registers a commit whose WAL record ends at lsn on the open
// epoch and returns immediately with a Ticket for the acknowledgement.
// This is the pipelined half of the API: the caller keeps filling epoch
// N+1 while epoch N's covering fsync is in flight and collects the
// outcome later via Ticket.Wait (or Done/Err).
func (m *Manager) Enqueue(lsn uint64) (Ticket, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Ticket{}, ErrClosed
	}
	e := m.cur
	if e == nil {
		e = m.openLocked()
	}
	if lsn > e.maxLSN {
		e.maxLSN = lsn
	}
	e.count++
	closeNow := m.opts.MaxCommits > 0 && e.count >= int64(m.opts.MaxCommits) && !e.detached
	if closeNow {
		e.detached = true
		m.cur = nil
	}
	m.mu.Unlock()

	t := Ticket{m: m, e: e}
	if m.opts.Stats != nil && m.opts.Stats.AckWait != nil {
		t.start = m.opts.Clock.Now()
	}
	if closeNow {
		// This enqueuer tipped the epoch over MaxCommits. It must not
		// block on the covering sync itself — the next enqueue may
		// already be filling epoch N+1 — so the close runs detached;
		// the WAL serializes the fsyncs of overlapping closes.
		if m.opts.Stats != nil {
			m.opts.Stats.EarlyCloses.Add(1)
		}
		e.timer.Stop()
		close(e.cancel)
		go m.close(e)
	}
	return t, nil
}

// Commit enqueues a commit whose WAL record ends at lsn on the open
// epoch and blocks until the epoch's covering LSN is durable. It
// returns the epoch the commit rode and the sync outcome: on error the
// record may or may not have reached disk — callers treat the effect
// as lost slack, exactly as with a failed direct sync. Commit is
// Enqueue followed by Ticket.Wait.
func (m *Manager) Commit(lsn uint64) (uint64, error) {
	t, err := m.Enqueue(lsn)
	if err != nil {
		return 0, err
	}
	return t.Wait()
}

// openLocked starts the next epoch and arms its close timer. Caller
// holds m.mu.
func (m *Manager) openLocked() *state {
	m.num++
	e := &state{
		num:    m.num,
		opened: m.opts.Clock.Now(),
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
	}
	e.timer = clock.NewTimer(m.opts.Clock, time.Duration(m.interval.Load()))
	m.cur = e
	go m.watch(e)
	return e
}

// watch closes e when its interval elapses, unless a size-triggered
// committer or Close claimed it first.
func (m *Manager) watch(e *state) {
	select {
	case <-e.cancel:
		return
	case <-e.timer.C:
	}
	m.mu.Lock()
	if e.detached {
		m.mu.Unlock()
		return
	}
	e.detached = true
	if m.cur == e {
		m.cur = nil
	}
	m.mu.Unlock()
	m.close(e)
}

// close makes e's covering LSN durable and releases its waiters. The
// caller must have detached e; the underlying WAL serializes syncs, so
// overlapping closes of adjacent epochs are safe.
func (m *Manager) close(e *state) {
	e.err = m.opts.Sync(e.maxLSN)
	advanced := false
	if e.err == nil {
		// Publish in max order: a stale close finishing late must not
		// regress the durable epoch.
		for {
			cur := m.durable.Load()
			if e.num <= cur {
				break
			}
			if m.durable.CompareAndSwap(cur, e.num) {
				advanced = true
				break
			}
		}
	}
	if st := m.opts.Stats; st != nil {
		st.Epochs.Add(1)
		st.Commits.Add(e.count)
		if st.CommitsPerEpoch != nil {
			st.CommitsPerEpoch.Observe(time.Duration(e.count))
		}
		if st.CloseLatency != nil {
			st.CloseLatency.Observe(m.opts.Clock.Now().Sub(e.opened))
		}
	}
	if m.opts.Adaptive {
		m.adapt(e)
	}
	// Release waiters before the fence callback: the callback may do
	// real work (kick a replication flush) and must not delay acks.
	close(e.done)
	if advanced && m.opts.OnDurable != nil {
		m.opts.OnDurable(e.num)
	}
}

// adapt is the interval controller: one adjustment per closed epoch,
// driven by how full the epoch was when it closed (the signal the
// CommitsPerEpoch histogram records). A full epoch means the commit
// rate outran the window — widen so the next fsync amortizes more. A
// near-empty epoch means commits are paying interval-sized ack waits
// for nothing — collapse toward MinInterval. Adjustments serialize
// under m.mu so overlapping closes of adjacent epochs cannot compound
// a single observation.
func (m *Manager) adapt(e *state) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := time.Duration(m.interval.Load())
	switch {
	case m.opts.MaxCommits > 0 && e.count >= int64(m.opts.MaxCommits):
		if next := min(cur*2, m.opts.MaxInterval); next > cur {
			m.interval.Store(int64(next))
			if m.opts.Stats != nil {
				m.opts.Stats.Widens.Add(1)
			}
		}
	case e.count <= int64(m.opts.MaxCommits)/8:
		if next := max(cur/2, m.opts.MinInterval); next < cur {
			m.interval.Store(int64(next))
			if m.opts.Stats != nil {
				m.opts.Stats.Collapses.Add(1)
			}
		}
	}
}

// Close flushes the open epoch (releasing its waiters durable) and
// rejects further commits. Safe to call more than once.
func (m *Manager) Close() error {
	m.mu.Lock()
	m.closed = true
	e := m.cur
	if e != nil && !e.detached {
		e.detached = true
		m.cur = nil
	} else {
		e = nil
	}
	m.mu.Unlock()
	if e == nil {
		return nil
	}
	e.timer.Stop()
	close(e.cancel)
	m.close(e)
	return e.err
}
