// Package epoch implements SCAR-style epoch-based commit: instead of
// every commit waiting out its own group-commit fsync, commits enqueue
// on the currently open, monotonically numbered epoch and are released
// together once the epoch's covering LSN — the maximum LSN any commit
// in the epoch wrote — is durable. One fsync is amortized across every
// commit the epoch collected, so the fsync rate is bounded by the epoch
// interval rather than the commit rate.
//
// An epoch opens lazily at the first commit after its predecessor
// closed and closes when either its interval elapses or it reaches
// MaxCommits (size-based early close). Closes of adjacent epochs may
// overlap: epoch N+1 accepts commits while epoch N's sync is still in
// flight, and the underlying WAL serializes the actual fsyncs. An idle
// manager arms no timer and issues no fsync.
//
// The manager changes nothing about *what* is journaled or in what
// order — records are still appended under their stores' locks before
// the commit enqueues — only *when* the acknowledgement is released.
// The escrow discipline (decreases journal-before-ack, a crash loses
// slack but never mints AV) therefore survives intact: an epoch crash
// window can only lose commits that were never acknowledged.
package epoch

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/clock"
	"avdb/internal/metrics"
)

// ErrClosed reports a commit against a manager that has shut down.
var ErrClosed = errors.New("epoch: manager closed")

// Defaults.
const (
	DefaultInterval   = 200 * time.Microsecond
	DefaultMaxCommits = 1024
)

// Stats counts epoch activity; atomically updated, shareable between
// the managers of one site (storage WAL + AV journal).
type Stats struct {
	// Epochs counts closed epochs (each closed epoch issued exactly one
	// covering sync).
	Epochs atomic.Int64
	// Commits counts commits acknowledged through an epoch boundary.
	Commits atomic.Int64
	// EarlyCloses counts size-triggered closes (epoch hit MaxCommits
	// before its interval elapsed).
	EarlyCloses atomic.Int64
	// CommitsPerEpoch, when non-nil, observes each closed epoch's commit
	// count (unitless).
	CommitsPerEpoch *metrics.Histogram
	// CloseLatency, when non-nil, observes the wall time from an epoch's
	// first commit to its covering LSN being durable.
	CloseLatency *metrics.Histogram
	// AckWait, when non-nil, observes the per-commit wall time spent
	// waiting for the epoch boundary.
	AckWait *metrics.Histogram
}

// Options tune a Manager.
type Options struct {
	// Interval is how long an epoch stays open after its first commit
	// (default DefaultInterval).
	Interval time.Duration
	// MaxCommits closes an epoch early once it has collected this many
	// commits (default DefaultMaxCommits; negative disables the cap).
	MaxCommits int
	// Clock drives epoch deadlines (nil means the real clock; the
	// deterministic simulator passes a virtual clock).
	Clock clock.Clock
	// Sync makes every record up to the given LSN durable. Required;
	// normally a *wal.Log's SyncTo.
	Sync func(lsn uint64) error
	// Stats, when non-nil, receives the counters above.
	Stats *Stats
}

// state is one epoch's accumulation window.
type state struct {
	num    uint64
	maxLSN uint64
	count  int64
	opened time.Time // first commit's arrival, for CloseLatency
	timer  *clock.Timer
	cancel chan struct{} // closed when the timer watcher must stand down
	done   chan struct{} // closed once the epoch is durable (or failed)
	err    error
	// detached marks the epoch as claimed for closing (by the timer
	// watcher, a size-triggered committer, or Close). Guarded by the
	// manager's mu.
	detached bool
}

// Manager batches commit acknowledgements onto epoch boundaries.
type Manager struct {
	opts Options

	mu     sync.Mutex
	cur    *state // open epoch, nil when idle
	num    uint64 // number of the most recently opened epoch
	closed bool

	durable atomic.Uint64 // highest epoch number known fully durable
}

// New builds a Manager. Sync is required.
func New(opts Options) *Manager {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.MaxCommits == 0 {
		opts.MaxCommits = DefaultMaxCommits
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	return &Manager{opts: opts}
}

// Current returns the number of the epoch a commit enqueued now would
// join: the open epoch's, or the next to open when the manager is idle.
func (m *Manager) Current() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur != nil {
		return m.cur.num
	}
	return m.num + 1
}

// Durable returns the highest epoch number whose commits are all
// durable (0 before any epoch closed).
func (m *Manager) Durable() uint64 { return m.durable.Load() }

// Commit enqueues a commit whose WAL record ends at lsn on the open
// epoch and blocks until the epoch's covering LSN is durable. It
// returns the epoch the commit rode and the sync outcome: on error the
// record may or may not have reached disk — callers treat the effect
// as lost slack, exactly as with a failed direct sync.
func (m *Manager) Commit(lsn uint64) (uint64, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, ErrClosed
	}
	e := m.cur
	if e == nil {
		e = m.openLocked()
	}
	if lsn > e.maxLSN {
		e.maxLSN = lsn
	}
	e.count++
	closeNow := m.opts.MaxCommits > 0 && e.count >= int64(m.opts.MaxCommits) && !e.detached
	if closeNow {
		e.detached = true
		m.cur = nil
	}
	m.mu.Unlock()

	var start time.Time
	if m.opts.Stats != nil && m.opts.Stats.AckWait != nil {
		start = m.opts.Clock.Now()
	}
	if closeNow {
		// This committer tipped the epoch over MaxCommits: it runs the
		// close itself instead of waiting for the interval.
		if m.opts.Stats != nil {
			m.opts.Stats.EarlyCloses.Add(1)
		}
		e.timer.Stop()
		close(e.cancel)
		m.close(e)
	} else {
		<-e.done
	}
	if !start.IsZero() {
		m.opts.Stats.AckWait.Observe(m.opts.Clock.Now().Sub(start))
	}
	return e.num, e.err
}

// openLocked starts the next epoch and arms its close timer. Caller
// holds m.mu.
func (m *Manager) openLocked() *state {
	m.num++
	e := &state{
		num:    m.num,
		opened: m.opts.Clock.Now(),
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
	}
	e.timer = clock.NewTimer(m.opts.Clock, m.opts.Interval)
	m.cur = e
	go m.watch(e)
	return e
}

// watch closes e when its interval elapses, unless a size-triggered
// committer or Close claimed it first.
func (m *Manager) watch(e *state) {
	select {
	case <-e.cancel:
		return
	case <-e.timer.C:
	}
	m.mu.Lock()
	if e.detached {
		m.mu.Unlock()
		return
	}
	e.detached = true
	if m.cur == e {
		m.cur = nil
	}
	m.mu.Unlock()
	m.close(e)
}

// close makes e's covering LSN durable and releases its waiters. The
// caller must have detached e; the underlying WAL serializes syncs, so
// overlapping closes of adjacent epochs are safe.
func (m *Manager) close(e *state) {
	e.err = m.opts.Sync(e.maxLSN)
	if e.err == nil {
		// Publish in max order: a stale close finishing late must not
		// regress the durable epoch.
		for {
			cur := m.durable.Load()
			if e.num <= cur || m.durable.CompareAndSwap(cur, e.num) {
				break
			}
		}
	}
	if st := m.opts.Stats; st != nil {
		st.Epochs.Add(1)
		st.Commits.Add(e.count)
		if st.CommitsPerEpoch != nil {
			st.CommitsPerEpoch.Observe(time.Duration(e.count))
		}
		if st.CloseLatency != nil {
			st.CloseLatency.Observe(m.opts.Clock.Now().Sub(e.opened))
		}
	}
	close(e.done)
}

// Close flushes the open epoch (releasing its waiters durable) and
// rejects further commits. Safe to call more than once.
func (m *Manager) Close() error {
	m.mu.Lock()
	m.closed = true
	e := m.cur
	if e != nil && !e.detached {
		e.detached = true
		m.cur = nil
	} else {
		e = nil
	}
	m.mu.Unlock()
	if e == nil {
		return nil
	}
	e.timer.Stop()
	close(e.cancel)
	m.close(e)
	return e.err
}
