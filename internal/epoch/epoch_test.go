package epoch

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avdb/internal/clock"
	"avdb/internal/metrics"
)

// fakeSync records calls and the highest LSN requested durable.
type fakeSync struct {
	mu    sync.Mutex
	calls int
	maxTo uint64
	err   error
}

func (f *fakeSync) sync(lsn uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if lsn > f.maxTo {
		f.maxTo = lsn
	}
	return f.err
}

func (f *fakeSync) snapshot() (int, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.maxTo
}

func TestIntervalCloseReleasesCommits(t *testing.T) {
	fs := &fakeSync{}
	st := &Stats{CommitsPerEpoch: metrics.NewHistogram(), AckWait: metrics.NewHistogram()}
	m := New(Options{Interval: time.Millisecond, Sync: fs.sync, Stats: st})
	defer m.Close()

	const n = 8
	var wg sync.WaitGroup
	epochs := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := m.Commit(uint64(i + 1))
			if err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
			epochs[i] = ep
		}(i)
	}
	wg.Wait()
	calls, maxTo := fs.snapshot()
	if maxTo < n {
		t.Fatalf("covering sync reached %d, want >= %d", maxTo, n)
	}
	if calls >= n {
		t.Fatalf("%d syncs for %d commits: no amortization", calls, n)
	}
	if got := st.Commits.Load(); got != n {
		t.Fatalf("Commits = %d, want %d", got, n)
	}
	if m.Durable() == 0 {
		t.Fatal("no epoch became durable")
	}
	for i, ep := range epochs {
		if ep == 0 {
			t.Fatalf("commit %d rode epoch 0", i)
		}
		if ep > m.Durable() {
			t.Fatalf("commit %d released from epoch %d before it was durable (durable=%d)", i, ep, m.Durable())
		}
	}
}

func TestSizeBasedEarlyClose(t *testing.T) {
	fs := &fakeSync{}
	st := &Stats{}
	// Interval far beyond the test deadline: only the size cap can close.
	m := New(Options{Interval: time.Hour, MaxCommits: 4, Sync: fs.sync, Stats: st})
	defer m.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := m.Commit(uint64(i + 1)); err != nil {
				t.Errorf("commit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if st.EarlyCloses.Load() != 1 {
		t.Fatalf("EarlyCloses = %d, want 1", st.EarlyCloses.Load())
	}
	if calls, _ := fs.snapshot(); calls != 1 {
		t.Fatalf("syncs = %d, want 1", calls)
	}
}

func TestVirtualClockClose(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	fs := &fakeSync{}
	m := New(Options{Interval: 2 * time.Millisecond, Clock: vc, Sync: fs.sync})
	defer m.Close()

	done := make(chan uint64, 1)
	go func() {
		ep, err := m.Commit(7)
		if err != nil {
			t.Errorf("commit: %v", err)
		}
		done <- ep
	}()
	// Wait for the commit to arm the epoch timer, then advance past it.
	deadline := time.Now().Add(5 * time.Second)
	for vc.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("epoch timer never armed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	vc.Advance(2 * time.Millisecond)
	select {
	case ep := <-done:
		if ep != 1 {
			t.Fatalf("first epoch numbered %d, want 1", ep)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit never released after the virtual interval elapsed")
	}
	if _, maxTo := fs.snapshot(); maxTo != 7 {
		t.Fatalf("synced to %d, want 7", maxTo)
	}
}

func TestSyncErrorPropagates(t *testing.T) {
	boom := errors.New("disk gone")
	fs := &fakeSync{err: boom}
	m := New(Options{Interval: time.Millisecond, Sync: fs.sync})
	defer m.Close()
	if _, err := m.Commit(1); !errors.Is(err, boom) {
		t.Fatalf("Commit error = %v, want %v", err, boom)
	}
	if m.Durable() != 0 {
		t.Fatalf("failed epoch published durable %d", m.Durable())
	}
}

func TestCloseFlushesOpenEpoch(t *testing.T) {
	fs := &fakeSync{}
	m := New(Options{Interval: time.Hour, Sync: fs.sync})
	released := make(chan error, 1)
	go func() {
		_, err := m.Commit(3)
		released <- err
	}()
	// Wait until the commit is enqueued on the open epoch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.mu.Lock()
		armed := m.cur != nil
		m.mu.Unlock()
		if armed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("commit never opened an epoch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("commit released with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the pending commit")
	}
	if _, maxTo := fs.snapshot(); maxTo != 3 {
		t.Fatalf("Close synced to %d, want 3", maxTo)
	}
	if _, err := m.Commit(4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after Close = %v, want ErrClosed", err)
	}
}

func TestEpochNumbersMonotonic(t *testing.T) {
	fs := &fakeSync{}
	m := New(Options{Interval: 200 * time.Microsecond, Sync: fs.sync})
	defer m.Close()
	var last uint64
	for i := 0; i < 5; i++ {
		ep, err := m.Commit(uint64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		if ep < last {
			t.Fatalf("epoch regressed: %d after %d", ep, last)
		}
		last = ep
		// Let the epoch close so the next commit opens a fresh one.
		time.Sleep(time.Millisecond)
	}
	if last < 2 {
		t.Fatalf("expected multiple epochs across spaced commits, got %d", last)
	}
	if cur := m.Current(); cur != last+1 && cur != last {
		t.Fatalf("Current() = %d after epoch %d", cur, last)
	}
}

// gateSync blocks every covering sync until the gate opens, simulating
// an fsync in flight.
type gateSync struct {
	gate chan struct{}
	fs   fakeSync
}

func (g *gateSync) sync(lsn uint64) error {
	<-g.gate
	return g.fs.sync(lsn)
}

// TestEnqueuePipelinesAcrossEpochs drives the async half of the API:
// with epoch 1's covering sync deliberately stalled, Enqueue must keep
// accepting commits into epoch 2 — the cross-epoch pipeline the 2PC
// coordinator builds on.
func TestEnqueuePipelinesAcrossEpochs(t *testing.T) {
	gs := &gateSync{gate: make(chan struct{})}
	m := New(Options{Interval: time.Hour, MaxCommits: 2, Sync: gs.sync})
	defer m.Close()

	t1, err := m.Enqueue(1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.Enqueue(2)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 hit MaxCommits and its sync is now parked on the gate.
	// The next enqueues must land on epoch 2 without blocking.
	t3, err := m.Enqueue(3)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Epoch() != 1 || t2.Epoch() != 1 {
		t.Fatalf("first two commits rode epochs %d/%d, want 1/1", t1.Epoch(), t2.Epoch())
	}
	if t3.Epoch() != 2 {
		t.Fatalf("commit enqueued during epoch 1's sync rode epoch %d, want 2", t3.Epoch())
	}
	if m.Durable() != 0 {
		t.Fatalf("durable %d while every sync is gated", m.Durable())
	}
	select {
	case <-t1.Done():
		t.Fatal("ticket released before its covering sync ran")
	default:
	}
	t4, err := m.Enqueue(4) // tips epoch 2 over MaxCommits too
	if err != nil {
		t.Fatal(err)
	}
	close(gs.gate)
	for i, tk := range []Ticket{t1, t2, t3, t4} {
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if m.Durable() != 2 {
		t.Fatalf("durable %d after both epochs synced, want 2", m.Durable())
	}
	if _, maxTo := gs.fs.snapshot(); maxTo != 4 {
		t.Fatalf("covering syncs reached LSN %d, want 4", maxTo)
	}
}

// TestTicketCompletesAfterVirtualClose holds a ticket across a
// virtual-clock epoch boundary: Done stays open until the interval
// elapses, then closes with a nil Err.
func TestTicketCompletesAfterVirtualClose(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	fs := &fakeSync{}
	m := New(Options{Interval: 2 * time.Millisecond, Clock: vc, Sync: fs.sync})
	defer m.Close()

	tk, err := m.Enqueue(9)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
		t.Fatal("ticket done before the virtual interval elapsed")
	default:
	}
	deadline := time.Now().Add(5 * time.Second)
	for vc.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("epoch timer never armed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	vc.Advance(2 * time.Millisecond)
	select {
	case <-tk.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("ticket never completed after the virtual interval elapsed")
	}
	if tk.Err() != nil {
		t.Fatalf("Err = %v after a clean close", tk.Err())
	}
	if ep, err := tk.Wait(); ep != 1 || err != nil {
		t.Fatalf("Wait = (%d, %v), want (1, nil)", ep, err)
	}
	if _, maxTo := fs.snapshot(); maxTo != 9 {
		t.Fatalf("synced to %d, want 9", maxTo)
	}
}

// TestTornEpochKeepsAckedWatermark crashes the covering sync of a later
// epoch and requires the durable watermark to stay where the last acked
// epoch left it: a torn epoch loses only its own unacknowledged
// commits, never the contract that acked commits are durable.
func TestTornEpochKeepsAckedWatermark(t *testing.T) {
	fs := &fakeSync{}
	m := New(Options{Interval: time.Millisecond, Sync: fs.sync})
	defer m.Close()

	if ep, err := m.Commit(1); err != nil || ep != 1 {
		t.Fatalf("first commit = (%d, %v)", ep, err)
	}
	if m.Durable() != 1 {
		t.Fatalf("durable %d after a clean epoch, want 1", m.Durable())
	}
	boom := errors.New("torn write")
	fs.mu.Lock()
	fs.err = boom
	fs.mu.Unlock()
	tk, err := m.Enqueue(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); !errors.Is(err, boom) {
		t.Fatalf("torn epoch Wait error = %v, want %v", err, boom)
	}
	if !errors.Is(tk.Err(), boom) {
		t.Fatalf("Err = %v, want %v", tk.Err(), boom)
	}
	if m.Durable() != 1 {
		t.Fatalf("durable moved to %d through a failed sync, want 1", m.Durable())
	}
}

// TestAdaptiveWidenAndCollapse drives the interval controller through
// both directions: a size-capped epoch widens the interval, a
// near-empty one collapses it back.
func TestAdaptiveWidenAndCollapse(t *testing.T) {
	fs := &fakeSync{}
	st := &Stats{}
	m := New(Options{
		Interval:    time.Millisecond,
		MaxCommits:  16,
		Adaptive:    true,
		MinInterval: time.Millisecond,
		MaxInterval: 8 * time.Millisecond,
		Sync:        fs.sync,
		Stats:       st,
	})
	defer m.Close()

	var last Ticket
	for i := 1; i <= 16; i++ {
		tk, err := m.Enqueue(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		last = tk
	}
	if _, err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := m.Interval(); got != 2*time.Millisecond {
		t.Fatalf("interval after a full epoch = %v, want 2ms", got)
	}
	if st.Widens.Load() != 1 {
		t.Fatalf("Widens = %d, want 1", st.Widens.Load())
	}
	// One lonely commit: count 1 <= 16/8, so the controller halves back.
	if _, err := m.Commit(17); err != nil {
		t.Fatal(err)
	}
	if got := m.Interval(); got != time.Millisecond {
		t.Fatalf("interval after a near-empty epoch = %v, want 1ms", got)
	}
	if st.Collapses.Load() != 1 {
		t.Fatalf("Collapses = %d, want 1", st.Collapses.Load())
	}
}

// TestAdaptiveClampsAtMaxInterval keeps every epoch full and requires
// the controller to stop at the ceiling.
func TestAdaptiveClampsAtMaxInterval(t *testing.T) {
	fs := &fakeSync{}
	st := &Stats{}
	m := New(Options{
		Interval:    time.Millisecond,
		MaxCommits:  1,
		Adaptive:    true,
		MinInterval: time.Millisecond,
		MaxInterval: 4 * time.Millisecond,
		Sync:        fs.sync,
		Stats:       st,
	})
	defer m.Close()
	for i := 1; i <= 6; i++ {
		if _, err := m.Commit(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Interval(); got != 4*time.Millisecond {
		t.Fatalf("interval = %v, want clamp at 4ms", got)
	}
	// 1ms -> 2ms -> 4ms: exactly two widens despite six full epochs.
	if st.Widens.Load() != 2 {
		t.Fatalf("Widens = %d, want 2", st.Widens.Load())
	}
}

// TestOnDurableFiresOnAdvance requires the durable hook to run for each
// watermark advance, after the epoch's waiters were released.
func TestOnDurableFiresOnAdvance(t *testing.T) {
	fs := &fakeSync{}
	fired := make(chan uint64, 4)
	m := New(Options{
		Interval: time.Millisecond,
		Sync:     fs.sync,
		OnDurable: func(ep uint64) {
			fired <- ep
		},
	})
	defer m.Close()
	if _, err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	select {
	case ep := <-fired:
		if ep != 1 {
			t.Fatalf("OnDurable(%d), want 1", ep)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDurable never fired for a durable epoch")
	}
}

func TestConcurrentCommitsShareSyncs(t *testing.T) {
	fs := &fakeSync{}
	m := New(Options{Interval: 500 * time.Microsecond, Sync: fs.sync})
	defer m.Close()
	const workers, per = 8, 25
	var lsn atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := m.Commit(lsn.Add(1)); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	calls, maxTo := fs.snapshot()
	if maxTo != workers*per {
		t.Fatalf("synced to %d, want %d", maxTo, workers*per)
	}
	if calls >= workers*per/2 {
		t.Fatalf("%d syncs for %d commits: epochs are not batching", calls, workers*per)
	}
}
