package epoch

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avdb/internal/clock"
	"avdb/internal/metrics"
)

// fakeSync records calls and the highest LSN requested durable.
type fakeSync struct {
	mu    sync.Mutex
	calls int
	maxTo uint64
	err   error
}

func (f *fakeSync) sync(lsn uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if lsn > f.maxTo {
		f.maxTo = lsn
	}
	return f.err
}

func (f *fakeSync) snapshot() (int, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.maxTo
}

func TestIntervalCloseReleasesCommits(t *testing.T) {
	fs := &fakeSync{}
	st := &Stats{CommitsPerEpoch: metrics.NewHistogram(), AckWait: metrics.NewHistogram()}
	m := New(Options{Interval: time.Millisecond, Sync: fs.sync, Stats: st})
	defer m.Close()

	const n = 8
	var wg sync.WaitGroup
	epochs := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := m.Commit(uint64(i + 1))
			if err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
			epochs[i] = ep
		}(i)
	}
	wg.Wait()
	calls, maxTo := fs.snapshot()
	if maxTo < n {
		t.Fatalf("covering sync reached %d, want >= %d", maxTo, n)
	}
	if calls >= n {
		t.Fatalf("%d syncs for %d commits: no amortization", calls, n)
	}
	if got := st.Commits.Load(); got != n {
		t.Fatalf("Commits = %d, want %d", got, n)
	}
	if m.Durable() == 0 {
		t.Fatal("no epoch became durable")
	}
	for i, ep := range epochs {
		if ep == 0 {
			t.Fatalf("commit %d rode epoch 0", i)
		}
		if ep > m.Durable() {
			t.Fatalf("commit %d released from epoch %d before it was durable (durable=%d)", i, ep, m.Durable())
		}
	}
}

func TestSizeBasedEarlyClose(t *testing.T) {
	fs := &fakeSync{}
	st := &Stats{}
	// Interval far beyond the test deadline: only the size cap can close.
	m := New(Options{Interval: time.Hour, MaxCommits: 4, Sync: fs.sync, Stats: st})
	defer m.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := m.Commit(uint64(i + 1)); err != nil {
				t.Errorf("commit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if st.EarlyCloses.Load() != 1 {
		t.Fatalf("EarlyCloses = %d, want 1", st.EarlyCloses.Load())
	}
	if calls, _ := fs.snapshot(); calls != 1 {
		t.Fatalf("syncs = %d, want 1", calls)
	}
}

func TestVirtualClockClose(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	fs := &fakeSync{}
	m := New(Options{Interval: 2 * time.Millisecond, Clock: vc, Sync: fs.sync})
	defer m.Close()

	done := make(chan uint64, 1)
	go func() {
		ep, err := m.Commit(7)
		if err != nil {
			t.Errorf("commit: %v", err)
		}
		done <- ep
	}()
	// Wait for the commit to arm the epoch timer, then advance past it.
	deadline := time.Now().Add(5 * time.Second)
	for vc.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("epoch timer never armed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	vc.Advance(2 * time.Millisecond)
	select {
	case ep := <-done:
		if ep != 1 {
			t.Fatalf("first epoch numbered %d, want 1", ep)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit never released after the virtual interval elapsed")
	}
	if _, maxTo := fs.snapshot(); maxTo != 7 {
		t.Fatalf("synced to %d, want 7", maxTo)
	}
}

func TestSyncErrorPropagates(t *testing.T) {
	boom := errors.New("disk gone")
	fs := &fakeSync{err: boom}
	m := New(Options{Interval: time.Millisecond, Sync: fs.sync})
	defer m.Close()
	if _, err := m.Commit(1); !errors.Is(err, boom) {
		t.Fatalf("Commit error = %v, want %v", err, boom)
	}
	if m.Durable() != 0 {
		t.Fatalf("failed epoch published durable %d", m.Durable())
	}
}

func TestCloseFlushesOpenEpoch(t *testing.T) {
	fs := &fakeSync{}
	m := New(Options{Interval: time.Hour, Sync: fs.sync})
	released := make(chan error, 1)
	go func() {
		_, err := m.Commit(3)
		released <- err
	}()
	// Wait until the commit is enqueued on the open epoch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.mu.Lock()
		armed := m.cur != nil
		m.mu.Unlock()
		if armed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("commit never opened an epoch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("commit released with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the pending commit")
	}
	if _, maxTo := fs.snapshot(); maxTo != 3 {
		t.Fatalf("Close synced to %d, want 3", maxTo)
	}
	if _, err := m.Commit(4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after Close = %v, want ErrClosed", err)
	}
}

func TestEpochNumbersMonotonic(t *testing.T) {
	fs := &fakeSync{}
	m := New(Options{Interval: 200 * time.Microsecond, Sync: fs.sync})
	defer m.Close()
	var last uint64
	for i := 0; i < 5; i++ {
		ep, err := m.Commit(uint64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		if ep < last {
			t.Fatalf("epoch regressed: %d after %d", ep, last)
		}
		last = ep
		// Let the epoch close so the next commit opens a fresh one.
		time.Sleep(time.Millisecond)
	}
	if last < 2 {
		t.Fatalf("expected multiple epochs across spaced commits, got %d", last)
	}
	if cur := m.Current(); cur != last+1 && cur != last {
		t.Fatalf("Current() = %d after epoch %d", cur, last)
	}
}

func TestConcurrentCommitsShareSyncs(t *testing.T) {
	fs := &fakeSync{}
	m := New(Options{Interval: 500 * time.Microsecond, Sync: fs.sync})
	defer m.Close()
	const workers, per = 8, 25
	var lsn atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := m.Commit(lsn.Add(1)); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	calls, maxTo := fs.snapshot()
	if maxTo != workers*per {
		t.Fatalf("synced to %d, want %d", maxTo, workers*per)
	}
	if calls >= workers*per/2 {
		t.Fatalf("%d syncs for %d commits: epochs are not batching", calls, workers*per)
	}
}
