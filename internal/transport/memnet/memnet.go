// Package memnet is an in-process implementation of transport.Network.
// Messages are really encoded and decoded through the wire codec (so
// every test exercises the protocol bytes), delivered through channels,
// and optionally subjected to deterministic latency, probabilistic drops,
// partitions and site crashes. memnet also records every message into a
// metrics.Registry, attributing both directions of an exchange to the
// *initiating* site — the attribution the paper uses for Table 1 ("number
// of correspondences for update in each site").
package memnet

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"avdb/internal/clock"
	"avdb/internal/metrics"
	"avdb/internal/trace"
	"avdb/internal/wire"

	"avdb/internal/transport"
)

// Options configure a Net.
type Options struct {
	// Latency returns the one-way delivery delay from -> to. Nil means
	// instantaneous delivery (the default for counting experiments).
	Latency func(from, to wire.SiteID) time.Duration
	// Drop returns true if this message should be lost. Nil never drops.
	Drop func(from, to wire.SiteID, msg wire.Message) bool
	// Registry receives message counts. Nil disables counting.
	Registry *metrics.Registry
	// Tracer records send/recv spans for every Call/Send and propagates
	// trace context through envelopes. All in-process sites share it
	// (spans carry the site ID). Nil disables tracing.
	Tracer *trace.Tracer
	// QueueLen is the inbox depth per node (default 1024).
	QueueLen int
	// CallTimeout bounds Call when the caller's context has no deadline
	// (default 5s).
	CallTimeout time.Duration
	// Interceptor, when non-nil, is consulted for every envelope put on
	// the wire (requests, one-way sends, and replies) and may drop, delay,
	// or duplicate it — the seam the chaos package plugs into. Unlike
	// Drop, interceptor-dropped messages are lost silently mid-flight: a
	// Call observes a timeout, not an error.
	Interceptor transport.Interceptor
	// RetransmitInterval, when > 0, makes Call re-send its request (same
	// envelope seq) at this interval until the reply arrives or the
	// context expires. Receivers dedup on (from, seq) and replay the
	// original reply, so retransmission is safe for non-idempotent
	// handlers. Off by default: the healthy-path experiments count every
	// message, and retransmission must not perturb them.
	RetransmitInterval time.Duration
	// Clock drives delayed delivery, the Call timeout fallback and
	// retransmission. Nil means the real clock. The deterministic
	// simulator passes a *clock.Virtual here so that every transport
	// timer fires under the simulator's control.
	Clock clock.Clock
}

// Net is an in-process network. The zero value is not usable; call New.
type Net struct {
	opts Options

	mu        sync.RWMutex
	nodes     map[wire.SiteID]*node
	blocked   map[[2]wire.SiteID]bool
	crashed   map[wire.SiteID]bool
	opens     uint64 // total Opens ever, for per-open seq epochs
	deliverWG sync.WaitGroup

	// act counts network activity: every scheduled delivery holds one
	// token from the moment it is put on the wire until the receiver has
	// fully processed it (reply matched, duplicate absorbed, or handler
	// finished). Settle blocks until act reaches zero — the quiescence
	// point the deterministic simulator advances virtual time at.
	actMu   sync.Mutex
	act     int
	actCond *sync.Cond
}

// New creates an empty network.
func New(opts Options) *Net {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 1024
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 5 * time.Second
	}
	n := &Net{
		opts:    opts,
		nodes:   make(map[wire.SiteID]*node),
		blocked: make(map[[2]wire.SiteID]bool),
		crashed: make(map[wire.SiteID]bool),
	}
	n.actCond = sync.NewCond(&n.actMu)
	return n
}

// actAdd takes k activity tokens (k may be negative to release).
func (n *Net) actAdd(k int) {
	n.actMu.Lock()
	n.act += k
	if n.act == 0 {
		n.actCond.Broadcast()
	}
	n.actMu.Unlock()
}

// actDone releases one activity token.
func (n *Net) actDone() { n.actAdd(-1) }

// Settle blocks until no message is in flight and no inbound request is
// still being handled. Handlers never make nested network calls and only
// ever block on bounded real-time lock waits, so Settle always returns
// in bounded real time; once it does, the only way the cluster can make
// further progress is a timer firing — which is exactly when the
// simulator advances its virtual clock.
func (n *Net) Settle() {
	n.actMu.Lock()
	for n.act != 0 {
		n.actCond.Wait()
	}
	n.actMu.Unlock()
}

// Activity returns the current number of in-flight messages and
// still-running inbound handlers. The simulator's epoch-mode scheduler
// polls this instead of blocking in Settle: with epoch-based commit a
// handler may park on an epoch boundary that only a virtual-clock
// advance can close, so full settle (act == 0) may be unreachable while
// a stable nonzero activity level is the real fixpoint.
func (n *Net) Activity() int {
	n.actMu.Lock()
	defer n.actMu.Unlock()
	return n.act
}

// Open implements transport.Network.
func (n *Net) Open(id wire.SiteID, handler transport.Handler) (transport.Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("memnet: site %d already open", id)
	}
	n.opens++
	nd := &node{
		net:     n,
		id:      id,
		handler: handler,
		inbox:   make(chan []byte, n.opts.QueueLen),
		pending: make(map[uint64]chan wire.Message),
		dedup:   transport.NewDeduper(0),
		done:    make(chan struct{}),
		// Seqs start at a per-open epoch so a site closed and reopened
		// (crash-restart) never reuses seqs its peers may still have in
		// their dedup caches.
		seq: n.opens << 32,
	}
	n.nodes[id] = nd
	nd.wg.Add(1)
	go nd.loop()
	return nd, nil
}

// Block makes traffic between a and b (both directions) disappear.
func (n *Net) Block(a, b wire.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]wire.SiteID{a, b}] = true
	n.blocked[[2]wire.SiteID{b, a}] = true
}

// Unblock restores traffic between a and b.
func (n *Net) Unblock(a, b wire.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]wire.SiteID{a, b})
	delete(n.blocked, [2]wire.SiteID{b, a})
}

// Isolate blocks traffic between id and every other currently open site —
// a single-site partition.
func (n *Net) Isolate(id wire.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.nodes {
		if other != id {
			n.blocked[[2]wire.SiteID{id, other}] = true
			n.blocked[[2]wire.SiteID{other, id}] = true
		}
	}
}

// Heal removes every partition.
func (n *Net) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]wire.SiteID]bool)
}

// Crash makes a site drop all inbound and outbound traffic until Restart.
// The node stays open (its goroutine keeps running) — this models a hung
// or unreachable process, not a clean shutdown.
func (n *Net) Crash(id wire.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart undoes Crash.
func (n *Net) Restart(id wire.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// reachable reports whether a message from -> to would currently be
// delivered, ignoring probabilistic drops.
func (n *Net) reachable(from, to wire.SiteID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.crashed[from] || n.crashed[to] {
		return false
	}
	if n.blocked[[2]wire.SiteID{from, to}] {
		return false
	}
	_, ok := n.nodes[to]
	return ok
}

// count attributes one message to the exchange's initiator: the sender
// for requests, the destination for replies.
func (n *Net) count(env *wire.Envelope) {
	if n.opts.Registry == nil {
		return
	}
	site := env.From
	if env.IsReply {
		site = env.To
	}
	n.opts.Registry.Counter(int(site), env.Msg.Kind().String()).Inc()
}

// send encodes and routes one envelope. It returns transport.ErrUnreachable
// if the destination is partitioned, crashed or absent. The message is
// counted when it is put on the wire, even if later dropped.
func (n *Net) send(env *wire.Envelope) error {
	if !n.reachable(env.From, env.To) {
		return transport.ErrUnreachable
	}
	n.count(env)
	if n.opts.Drop != nil && n.opts.Drop(env.From, env.To, env.Msg) {
		return nil // silently lost
	}
	var fault transport.Fault
	if n.opts.Interceptor != nil {
		fault = n.opts.Interceptor.Intercept(env.From, env.To, env.IsReply, env.Msg.Kind())
		if fault.Drop {
			return nil // silently lost mid-flight
		}
	}
	raw := wire.EncodeEnvelope(env)
	deliver := func() {
		defer n.deliverWG.Done()
		n.mu.RLock()
		dst, ok := n.nodes[env.To]
		crashed := n.crashed[env.To]
		n.mu.RUnlock()
		if !ok || crashed {
			n.actDone()
			return
		}
		select {
		case dst.inbox <- raw:
			// The activity token travels with the queued frame; the
			// receiver's loop releases it once processing completes.
		case <-dst.done:
			n.actDone()
		}
	}
	copies := 1
	if fault.Duplicate {
		copies = 2
	}
	d := fault.Delay
	if n.opts.Latency != nil {
		d += n.opts.Latency(env.From, env.To)
	}
	for i := 0; i < copies; i++ {
		n.deliverWG.Add(1)
		n.actAdd(1)
		if d <= 0 {
			deliver()
		} else {
			t := clock.NewTimer(n.opts.Clock, d)
			go func() {
				<-t.C
				deliver()
			}()
		}
	}
	return nil
}

// Quiesce blocks until every in-flight delivery has been handed to its
// destination inbox. It does not wait for handlers to finish processing.
func (n *Net) Quiesce() { n.deliverWG.Wait() }

// node is one site's endpoint.
type node struct {
	net     *Net
	id      wire.SiteID
	handler transport.Handler
	inbox   chan []byte
	dedup   *transport.Deduper
	done    chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan wire.Message
	closed  bool
}

// ID implements transport.Node.
func (nd *node) ID() wire.SiteID { return nd.id }

// loop dispatches inbound envelopes: replies are matched to pending
// calls; requests are handled in their own goroutine so a slow handler
// (for example a 2PC participant waiting on a lock) cannot stall the
// node's reply matching.
func (nd *node) loop() {
	defer nd.wg.Done()
	for {
		select {
		case <-nd.done:
			return
		case raw := <-nd.inbox:
			env, err := wire.DecodeEnvelope(raw)
			if err != nil {
				nd.net.actDone()
				continue // corrupt frame: drop, as a real transport would
			}
			if env.IsReply {
				nd.mu.Lock()
				ch := nd.pending[env.Seq]
				delete(nd.pending, env.Seq)
				nd.mu.Unlock()
				if ch != nil {
					// The activity token travels with the reply: the waiting
					// call releases it only after stopping its retransmit and
					// timeout timers, so a settled network never has a dead
					// timer still pending on a virtual clock.
					ch <- env.Msg
				} else {
					nd.net.actDone()
				}
				continue
			}
			// Idempotent receive: a duplicate of a request we already
			// served replays the recorded reply without re-running the
			// handler; a duplicate still in flight is dropped (the
			// retransmitting caller will try again).
			run, replay := nd.dedup.Begin(env.From, env.Seq)
			if !run {
				if replay != nil {
					if out, err := wire.DecodeEnvelope(replay); err == nil {
						_ = nd.net.send(out)
					}
				}
				nd.net.actDone()
				continue
			}
			go func() {
				nd.serve(env)
				nd.net.actDone()
			}()
		}
	}
}

// serve runs the handler for one request and sends back its reply. The
// envelope's trace context (if any) is planted in the handler's context
// and a recv span brackets the handler, so work done here parents back
// to the remote caller's span.
func (nd *node) serve(env *wire.Envelope) {
	ctx := context.Background()
	if env.TraceID != 0 {
		ctx = trace.ContextWith(ctx, trace.SpanContext{
			Trace: trace.TraceID(env.TraceID), Span: trace.SpanID(env.SpanID)})
	}
	ctx, sp := nd.net.opts.Tracer.Start(ctx, nd.id, "recv."+env.Msg.Kind().String())
	if sp != nil {
		sp.SetAttr("from", strconv.Itoa(int(env.From)))
	}
	reply := nd.handler(ctx, env.From, env.Msg)
	sp.EndSpan()
	if reply == nil {
		nd.dedup.Finish(env.From, env.Seq, nil)
		return
	}
	out := &wire.Envelope{
		From:    nd.id,
		To:      env.From,
		Seq:     env.Seq,
		IsReply: true,
		Msg:     reply,
	}
	// The reply carries the same trace so the caller's transport (and
	// any tap between) can attribute it; its parent is the recv span.
	if sc := trace.FromContext(ctx); sc.Valid() {
		out.TraceID, out.SpanID = uint64(sc.Trace), uint64(sc.Span)
	}
	nd.dedup.Finish(env.From, env.Seq, wire.EncodeEnvelope(out))
	_ = nd.net.send(out)
}

// Call implements transport.Node.
func (nd *node) Call(ctx context.Context, to wire.SiteID, req wire.Message) (wire.Message, error) {
	ctx, sp := nd.span(ctx, to, "call.", req)
	reply, err := nd.call(ctx, to, req)
	sp.Finish(err)
	return reply, err
}

// call is Call without the tracing wrapper.
func (nd *node) call(ctx context.Context, to wire.SiteID, req wire.Message) (wire.Message, error) {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil, transport.ErrClosed
	}
	nd.seq++
	seq := nd.seq
	ch := make(chan wire.Message, 1)
	nd.pending[seq] = ch
	nd.mu.Unlock()

	// A matched reply arrives carrying its activity token; release it
	// last, after the deferred timer stops below have run, so the network
	// only reads as settled once this call's virtual timers are gone.
	replyToken := false
	defer func() {
		if replyToken {
			nd.net.actDone()
		}
	}()

	// unregister withdraws seq and reports whether it was still pending;
	// false means the node's loop already claimed it, so a reply (and its
	// token) is in ch or about to be.
	unregister := func() bool {
		nd.mu.Lock()
		defer nd.mu.Unlock()
		if _, ok := nd.pending[seq]; !ok {
			return false
		}
		delete(nd.pending, seq)
		return true
	}

	env := nd.envelope(ctx, to, seq, req)
	err := nd.net.send(env)
	if err != nil {
		unregister()
		return nil, err
	}

	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = clock.WithTimeout(ctx, nd.net.opts.Clock, nd.net.opts.CallTimeout)
		defer cancel()
	}
	// With retransmission enabled, re-send the same envelope (same seq)
	// on an interval: the receiver dedups and replays its reply, so a
	// dropped request or dropped reply heals within the Call window.
	// Timers are stoppable so a completed call leaves nothing pending on
	// a virtual clock.
	var retransmit *clock.Timer
	if nd.net.opts.RetransmitInterval > 0 {
		retransmit = clock.NewTimer(nd.net.opts.Clock, nd.net.opts.RetransmitInterval)
	}
	defer func() {
		if retransmit != nil {
			retransmit.Stop()
		}
	}()
	retransmitC := func() <-chan time.Time {
		if retransmit == nil {
			return nil
		}
		return retransmit.C
	}
	for {
		select {
		case reply := <-ch:
			replyToken = true
			return reply, nil
		case <-retransmitC():
			// A reply may already be buffered when the tick fires; take
			// it instead of re-sending, so whether a resend happens (and
			// consumes fault-injector randomness) depends only on whether
			// the reply had actually arrived, never on goroutine timing.
			select {
			case reply := <-ch:
				replyToken = true
				return reply, nil
			default:
			}
			_ = nd.net.send(env) // best effort; the next tick tries again
			retransmit = clock.NewTimer(nd.net.opts.Clock, nd.net.opts.RetransmitInterval)
		case <-ctx.Done():
			select {
			case reply := <-ch:
				replyToken = true
				return reply, nil
			default:
			}
			if !unregister() {
				// The loop claimed seq just as the deadline fired: the
				// reply won; wait out its (non-blocking, buffered) arrival.
				reply := <-ch
				replyToken = true
				return reply, nil
			}
			if clock.IsTimeout(ctx) {
				return nil, transport.ErrTimeout
			}
			return nil, ctx.Err()
		case <-nd.done:
			if !unregister() {
				reply := <-ch
				replyToken = true
				return reply, nil
			}
			return nil, transport.ErrClosed
		}
	}
}

// Send implements transport.Node.
func (nd *node) Send(ctx context.Context, to wire.SiteID, msg wire.Message) error {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return transport.ErrClosed
	}
	nd.seq++
	seq := nd.seq
	nd.mu.Unlock()
	ctx, sp := nd.span(ctx, to, "send.", msg)
	err := nd.net.send(nd.envelope(ctx, to, seq, msg))
	sp.Finish(err)
	return err
}

// span starts a send-side transport span for msg when tracing is on.
func (nd *node) span(ctx context.Context, to wire.SiteID, prefix string, msg wire.Message) (context.Context, *trace.Span) {
	ctx, sp := nd.net.opts.Tracer.Start(ctx, nd.id, prefix+msg.Kind().String())
	if sp != nil {
		sp.SetAttr("peer", strconv.Itoa(int(to)))
	}
	return ctx, sp
}

// envelope builds an outbound request envelope carrying ctx's trace
// context, if any.
func (nd *node) envelope(ctx context.Context, to wire.SiteID, seq uint64, msg wire.Message) *wire.Envelope {
	env := &wire.Envelope{From: nd.id, To: to, Seq: seq, Msg: msg}
	if nd.net.opts.Tracer.Enabled() {
		if sc := trace.FromContext(ctx); sc.Valid() {
			env.TraceID, env.SpanID = uint64(sc.Trace), uint64(sc.Span)
		}
	}
	return env
}

// Close implements transport.Node.
func (nd *node) Close() error {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil
	}
	nd.closed = true
	nd.mu.Unlock()
	close(nd.done)
	nd.wg.Wait()
	nd.net.mu.Lock()
	delete(nd.net.nodes, nd.id)
	nd.net.mu.Unlock()
	// Release the activity tokens of frames that were queued but never
	// processed, so a crashed site cannot wedge Settle.
	for {
		select {
		case <-nd.inbox:
			nd.net.actDone()
		default:
			return nil
		}
	}
}
