package memnet

import (
	"sync"
	"time"

	"avdb/internal/rng"
	"avdb/internal/wire"
)

// Latency model constructors for Options.Latency. Real WANs are neither
// uniform nor symmetric; these helpers let experiments model fixed
// delay, jitter, and per-link asymmetry without hand-writing closures.

// FixedLatency delays every message by d.
func FixedLatency(d time.Duration) func(from, to wire.SiteID) time.Duration {
	return func(from, to wire.SiteID) time.Duration { return d }
}

// JitteredLatency delays every message by base plus a uniform jitter in
// [0, jitter), drawn from a seeded generator (deterministic per seed,
// though delivery interleaving under concurrency is not).
func JitteredLatency(base, jitter time.Duration, seed uint64) func(from, to wire.SiteID) time.Duration {
	var mu sync.Mutex
	r := rng.New(seed)
	return func(from, to wire.SiteID) time.Duration {
		if jitter <= 0 {
			return base
		}
		mu.Lock()
		j := time.Duration(r.Int63n(int64(jitter)))
		mu.Unlock()
		return base + j
	}
}

// Link identifies a directed site pair.
type Link struct {
	From, To wire.SiteID
}

// PerLinkLatency delays each directed link by its entry in table,
// falling back to def for unlisted links — e.g. a remote retailer
// behind a slow line while the rest of the cluster is co-located.
func PerLinkLatency(def time.Duration, table map[Link]time.Duration) func(from, to wire.SiteID) time.Duration {
	return func(from, to wire.SiteID) time.Duration {
		if d, ok := table[Link{From: from, To: to}]; ok {
			return d
		}
		return def
	}
}
