package memnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"avdb/internal/metrics"
	"avdb/internal/transport"
	"avdb/internal/wire"
)

// echoHandler replies to Read requests with the key length as value.
func echoHandler(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
	if r, ok := msg.(*wire.Read); ok {
		return &wire.ReadReply{OK: true, Value: int64(len(r.Key))}
	}
	return nil
}

func TestCallRoundTrip(t *testing.T) {
	net := New(Options{})
	a, err := net.Open(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Open(2, echoHandler); err != nil {
		t.Fatal(err)
	}
	reply, err := a.Call(context.Background(), 2, &wire.Read{Key: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	rr := reply.(*wire.ReadReply)
	if !rr.OK || rr.Value != 5 {
		t.Fatalf("reply = %+v", rr)
	}
}

func TestOpenDuplicateFails(t *testing.T) {
	net := New(Options{})
	if _, err := net.Open(1, echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Open(1, echoHandler); err == nil {
		t.Fatal("duplicate Open succeeded")
	}
}

func TestCallUnknownDestination(t *testing.T) {
	net := New(Options{})
	a, _ := net.Open(1, echoHandler)
	_, err := a.Call(context.Background(), 9, &wire.Read{Key: "x"})
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	net := New(Options{})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	net.Block(1, 2)
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("blocked call err = %v", err)
	}
	net.Unblock(1, 2)
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatalf("healed call err = %v", err)
	}
}

func TestIsolateAndHeal(t *testing.T) {
	net := New(Options{})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	net.Open(3, echoHandler)
	net.Isolate(2)
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err == nil {
		t.Fatal("isolated site reachable")
	}
	if _, err := a.Call(context.Background(), 3, &wire.Read{Key: "x"}); err != nil {
		t.Fatalf("unrelated pair affected: %v", err)
	}
	net.Heal()
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatalf("heal did not restore: %v", err)
	}
}

func TestCrashAndRestart(t *testing.T) {
	net := New(Options{})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	net.Crash(2)
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("crashed call err = %v", err)
	}
	net.Restart(2)
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatalf("restart did not restore: %v", err)
	}
}

func TestDropCausesTimeout(t *testing.T) {
	dropAll := func(from, to wire.SiteID, msg wire.Message) bool { return true }
	net := New(Options{Drop: dropAll, CallTimeout: 50 * time.Millisecond})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	start := time.Now()
	_, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestContextCancelAbortsCall(t *testing.T) {
	dropAll := func(from, to wire.SiteID, msg wire.Message) bool { return true }
	net := New(Options{Drop: dropAll})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, err := a.Call(ctx, 2, &wire.Read{Key: "x"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	net := New(Options{Latency: func(from, to wire.SiteID) time.Duration { return 30 * time.Millisecond }})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	start := time.Now()
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 55*time.Millisecond {
		t.Fatalf("rtt = %v, want >= ~60ms (two one-way 30ms hops)", rtt)
	}
}

func TestCountingAttributesToInitiator(t *testing.T) {
	reg := metrics.NewRegistry()
	net := New(Options{Registry: reg})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	for i := 0; i < 5; i++ {
		if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	bySite := reg.MessagesBySite()
	if bySite[1] != 10 {
		t.Fatalf("initiator site 1 counted %d messages, want 10 (5 requests + 5 replies)", bySite[1])
	}
	if bySite[2] != 0 {
		t.Fatalf("responder site 2 counted %d messages, want 0", bySite[2])
	}
	if got := reg.TotalCorrespondences(); got != 5 {
		t.Fatalf("correspondences = %d, want 5", got)
	}
	byKind := reg.MessagesByKind()
	if byKind["read"] != 5 || byKind["read.reply"] != 5 {
		t.Fatalf("byKind = %v", byKind)
	}
}

func TestOneWaySend(t *testing.T) {
	var mu sync.Mutex
	var got []int64
	h := func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		if d, ok := msg.(*wire.DeltaAck); ok {
			mu.Lock()
			got = append(got, int64(d.UpTo))
			mu.Unlock()
		}
		return nil
	}
	net := New(Options{})
	a, _ := net.Open(1, h)
	net.Open(2, h)
	for i := 1; i <= 3; i++ {
		if err := a.Send(context.Background(), 2, &wire.DeltaAck{Origin: 1, UpTo: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d one-way messages, want 3", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	net := New(Options{})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// The ID can be reopened after close.
	if _, err := net.Open(1, echoHandler); err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	net := New(Options{})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				reply, err := a.Call(context.Background(), 2, &wire.Read{Key: "abc"})
				if err != nil {
					errs <- err
					return
				}
				if reply.(*wire.ReadReply).Value != 3 {
					errs <- errors.New("bad reply value")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSelfCall(t *testing.T) {
	// A site may address itself (the baseline central site does); the
	// message loops through the full encode/decode path.
	net := New(Options{})
	a, _ := net.Open(1, echoHandler)
	reply, err := a.Call(context.Background(), 1, &wire.Read{Key: "selfcall"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.(*wire.ReadReply).Value != 8 {
		t.Fatalf("self call reply = %+v", reply)
	}
}

func BenchmarkCallRTT(b *testing.B) {
	net := New(Options{})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFixedLatencyModel(t *testing.T) {
	f := FixedLatency(7 * time.Millisecond)
	if f(0, 1) != 7*time.Millisecond || f(3, 2) != 7*time.Millisecond {
		t.Fatal("fixed latency not fixed")
	}
}

func TestJitteredLatencyModel(t *testing.T) {
	f := JitteredLatency(2*time.Millisecond, 3*time.Millisecond, 5)
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := f(0, 1)
		if d < 2*time.Millisecond || d >= 5*time.Millisecond {
			t.Fatalf("latency %v out of [2ms,5ms)", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct values", len(seen))
	}
	// Zero jitter degenerates to fixed.
	g := JitteredLatency(time.Millisecond, 0, 1)
	if g(0, 1) != time.Millisecond {
		t.Fatal("zero jitter broken")
	}
}

func TestPerLinkLatencyModel(t *testing.T) {
	f := PerLinkLatency(time.Millisecond, map[Link]time.Duration{
		{From: 0, To: 2}: 50 * time.Millisecond,
	})
	if f(0, 2) != 50*time.Millisecond {
		t.Fatal("listed link wrong")
	}
	if f(2, 0) != time.Millisecond {
		t.Fatal("reverse direction must fall back (asymmetry)")
	}
	if f(1, 2) != time.Millisecond {
		t.Fatal("default wrong")
	}
}

func TestJitteredLatencyEndToEnd(t *testing.T) {
	net := New(Options{Latency: JitteredLatency(5*time.Millisecond, 5*time.Millisecond, 9)})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	start := time.Now()
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 9*time.Millisecond {
		t.Fatalf("rtt = %v, want >= ~10ms", rtt)
	}
}

// scriptedInterceptor applies a fixed sequence of faults to requests
// (replies pass clean unless faultReplies is set).
type scriptedInterceptor struct {
	mu           sync.Mutex
	faults       []transport.Fault
	faultReplies bool
	intercepts   int
}

func (si *scriptedInterceptor) Intercept(from, to wire.SiteID, isReply bool, kind wire.Kind) transport.Fault {
	si.mu.Lock()
	defer si.mu.Unlock()
	if isReply && !si.faultReplies {
		return transport.Fault{}
	}
	si.intercepts++
	if len(si.faults) == 0 {
		return transport.Fault{}
	}
	f := si.faults[0]
	si.faults = si.faults[1:]
	return f
}

func TestInterceptorDropCausesTimeout(t *testing.T) {
	si := &scriptedInterceptor{faults: []transport.Fault{{Drop: true}}}
	net := New(Options{Interceptor: si, CallTimeout: 50 * time.Millisecond})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestRetransmitHealsDroppedRequest(t *testing.T) {
	si := &scriptedInterceptor{faults: []transport.Fault{{Drop: true}}}
	net := New(Options{Interceptor: si, RetransmitInterval: 10 * time.Millisecond})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	reply, err := a.Call(context.Background(), 2, &wire.Read{Key: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.(*wire.ReadReply).Value != 3 {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestRetransmitHealsDroppedReply(t *testing.T) {
	// Drop the first *reply*; the retransmitted request must replay the
	// original reply from the receiver's dedup cache, and the handler
	// must not run twice.
	var handled sync.Map
	var count int
	var mu sync.Mutex
	handler := func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		mu.Lock()
		count++
		mu.Unlock()
		handled.Store(msg.(*wire.Read).Key, true)
		return &wire.ReadReply{OK: true, Value: 7}
	}
	si := &scriptedInterceptor{faults: []transport.Fault{{Drop: true}}, faultReplies: true}
	net := New(Options{RetransmitInterval: 10 * time.Millisecond})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, handler)
	// Install the interceptor for replies only after open; wrap: easier to
	// set via Options, but then the request itself is the first intercept.
	// Instead configure the fault sequence so the request passes and the
	// reply drops: with faultReplies, intercepts apply to both directions,
	// so pass the request explicitly first.
	si.mu.Lock()
	si.faults = []transport.Fault{{}, {Drop: true}}
	si.mu.Unlock()
	net.opts.Interceptor = si
	reply, err := a.Call(context.Background(), 2, &wire.Read{Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.(*wire.ReadReply).Value != 7 {
		t.Fatalf("reply = %+v", reply)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("handler ran %d times, want 1", count)
	}
}

func TestDuplicateRequestServedOnce(t *testing.T) {
	var mu sync.Mutex
	count := 0
	handler := func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		mu.Lock()
		count++
		mu.Unlock()
		return &wire.ReadReply{OK: true, Value: 1}
	}
	si := &scriptedInterceptor{faults: []transport.Fault{{Duplicate: true}}}
	net := New(Options{Interceptor: si})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, handler)
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	// The duplicate may still be in a handler goroutine; give dedup's
	// in-flight drop a moment.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("handler ran %d times, want 1", count)
	}
}

func TestInterceptorDelayPostponesDelivery(t *testing.T) {
	si := &scriptedInterceptor{faults: []transport.Fault{{Delay: 30 * time.Millisecond}}}
	net := New(Options{Interceptor: si})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	start := time.Now()
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("call returned after %v, want >= ~30ms", d)
	}
}

func TestReopenedSiteGetsFreshSeqEpoch(t *testing.T) {
	net := New(Options{})
	a, _ := net.Open(1, echoHandler)
	net.Open(2, echoHandler)
	if _, err := a.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	a2, err := net.Open(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	// The reopened node's seqs must not collide with those already in
	// site 2's dedup cache, or this call would be treated as a duplicate
	// and never answered.
	if _, err := a2.Call(context.Background(), 2, &wire.Read{Key: "y"}); err != nil {
		t.Fatal(err)
	}
	if s1, s2 := a.(*node).seq, a2.(*node).seq; s2>>32 == s1>>32 {
		t.Fatalf("reopened node shares seq epoch: %x vs %x", s1, s2)
	}
}
