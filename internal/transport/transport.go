// Package transport defines how avdb sites talk to each other. A Network
// hands out one Node per site; a Node offers synchronous request/reply
// Calls (every protocol exchange in the paper is a request/reply pair —
// AV request/grant, prepare/vote, decision/ack, central update/reply) and
// fire-and-forget Sends.
//
// Two implementations exist: memnet (in-process, deterministic, with
// latency/drop/partition injection — used by all experiments and tests)
// and tcpnet (real TCP between processes — used by cmd/avnode).
package transport

import (
	"context"
	"errors"
	"time"

	"avdb/internal/wire"
)

// Transport errors.
var (
	// ErrUnreachable is returned when the destination is partitioned away,
	// crashed, or unknown.
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrClosed is returned after a node has been closed.
	ErrClosed = errors.New("transport: node closed")
	// ErrTimeout is returned when a Call's context expires before the
	// reply arrives.
	ErrTimeout = errors.New("transport: call timed out")
)

// Handler processes one inbound request and returns the reply message.
// ctx carries the sender's distributed-tracing span context (when the
// envelope was traced), so spans the handler starts parent back to the
// remote caller; it is not a cancellation signal — the transport does
// not cancel handlers. Returning nil sends no reply (the caller's Call
// will time out, so nil is only appropriate for one-way traffic
// delivered via Send). Handlers may be invoked concurrently and must be
// safe for concurrent use.
type Handler func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message

// Node is one site's endpoint on the network.
type Node interface {
	// ID returns the site this node belongs to.
	ID() wire.SiteID
	// Call sends req to site to and blocks until the reply arrives, the
	// context is done, or the destination is known to be unreachable.
	// ctx's trace span context, if any, rides in the envelope.
	Call(ctx context.Context, to wire.SiteID, req wire.Message) (wire.Message, error)
	// Send delivers msg to site to without waiting for a reply. ctx only
	// propagates trace context; Send never blocks on the network.
	Send(ctx context.Context, to wire.SiteID, msg wire.Message) error
	// Close detaches the node from the network and releases resources.
	Close() error
}

// Network creates nodes. Implementations must allow each site ID to be
// opened at most once at a time.
type Network interface {
	// Open registers handler for site id and returns its node.
	Open(id wire.SiteID, handler Handler) (Node, error)
}

// Fault is an Interceptor's verdict on one message delivery.
type Fault struct {
	// Drop discards the message. Requests are dropped before delivery;
	// replies are dropped before reaching the caller. The sender observes
	// a timeout, not an error.
	Drop bool
	// Delay postpones delivery by the given duration (added on top of any
	// base transport latency).
	Delay time.Duration
	// Duplicate delivers the message twice, exercising the receiver's
	// idempotent-receive dedup.
	Duplicate bool
}

// Interceptor decides the fate of each message as it enters the
// transport. Both memnet and tcpnet consult it on their send paths (for
// requests, one-way sends, and replies), which is the seam the chaos
// package plugs into. Implementations must be safe for concurrent use.
type Interceptor interface {
	Intercept(from, to wire.SiteID, isReply bool, kind wire.Kind) Fault
}
