package transport

import (
	"sync"
	"testing"
)

func TestDeduperFirstDeliveryRuns(t *testing.T) {
	d := NewDeduper(4)
	run, replay := d.Begin(1, 10)
	if !run || replay != nil {
		t.Fatalf("first delivery: run=%v replay=%v", run, replay)
	}
}

func TestDeduperDuplicateReplaysReply(t *testing.T) {
	d := NewDeduper(4)
	d.Begin(1, 10)

	// Duplicate while the handler is still running: discard.
	if run, replay := d.Begin(1, 10); run || replay != nil {
		t.Fatalf("in-flight duplicate: run=%v replay=%v", run, replay)
	}

	d.Finish(1, 10, []byte("reply-bytes"))
	run, replay := d.Begin(1, 10)
	if run {
		t.Fatal("completed duplicate ran the handler")
	}
	if string(replay) != "reply-bytes" {
		t.Fatalf("replay = %q", replay)
	}
}

func TestDeduperNoReplyDuplicateIsDropped(t *testing.T) {
	d := NewDeduper(4)
	d.Begin(2, 7)
	d.Finish(2, 7, nil)
	if run, replay := d.Begin(2, 7); run || replay != nil {
		t.Fatalf("one-way duplicate: run=%v replay=%v", run, replay)
	}
}

func TestDeduperSendersAreIndependent(t *testing.T) {
	d := NewDeduper(4)
	d.Begin(1, 10)
	if run, _ := d.Begin(2, 10); !run {
		t.Fatal("same seq from a different sender treated as duplicate")
	}
}

func TestDeduperEvictsFIFO(t *testing.T) {
	d := NewDeduper(2)
	for seq := uint64(1); seq <= 3; seq++ {
		d.Begin(1, seq)
		d.Finish(1, seq, []byte{byte(seq)})
	}
	// seq 1 evicted: treated as new.
	if run, _ := d.Begin(1, 1); !run {
		t.Fatal("evicted seq not treated as new")
	}
	// seq 3 still cached.
	if run, replay := d.Begin(1, 3); run || replay == nil {
		t.Fatalf("cached seq: run=%v replay=%v", run, replay)
	}
}

func TestDeduperForget(t *testing.T) {
	d := NewDeduper(4)
	d.Begin(1, 10)
	d.Finish(1, 10, []byte("x"))
	d.Forget(1)
	if run, _ := d.Begin(1, 10); !run {
		t.Fatal("forgotten sender still deduped")
	}
}

func TestDeduperConcurrent(t *testing.T) {
	d := NewDeduper(64)
	var ran sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := uint64(0); seq < 64; seq++ {
				if run, _ := d.Begin(3, seq); run {
					if _, loaded := ran.LoadOrStore(seq, true); loaded {
						t.Errorf("seq %d ran twice", seq)
					}
					d.Finish(3, seq, []byte{1})
				}
			}
		}()
	}
	wg.Wait()
}
