package transport

import (
	"sync"

	"avdb/internal/wire"
)

// Deduper makes request receipt idempotent. When faults (or Call
// retransmission) can deliver the same request envelope more than once,
// running the handler again would double-apply its effects — an AV
// grant debited twice, a 2PC decision acked inconsistently. The deduper
// keys on (sender, envelope seq): the first delivery runs the handler
// and records the encoded reply; duplicates replay that reply byte for
// byte without touching the handler. Duplicates that arrive while the
// first delivery is still executing are discarded — the retransmitting
// caller will try again after the handler finishes.
//
// The cache is a bounded FIFO per sender. Retransmission windows are
// short (a Call's lifetime), so a duplicate arriving after its entry
// was evicted is possible only far outside that window; the protocol
// layers above additionally tolerate re-execution (escrowed AV
// transfers, 2PC decision cache) for exactly that reason.
type Deduper struct {
	mu      sync.Mutex
	perFrom map[wire.SiteID]*dedupQueue
	limit   int
}

type dedupQueue struct {
	order   []uint64
	entries map[uint64]*dedupEntry
}

type dedupEntry struct {
	done  bool
	reply []byte // encoded reply envelope; nil when the handler returned no reply
}

// DefaultDedupWindow is how many request seqs per sender a Deduper
// remembers by default.
const DefaultDedupWindow = 1024

// NewDeduper creates a deduper remembering the last `window` request
// seqs per sender (DefaultDedupWindow when window <= 0).
func NewDeduper(window int) *Deduper {
	if window <= 0 {
		window = DefaultDedupWindow
	}
	return &Deduper{perFrom: make(map[wire.SiteID]*dedupQueue), limit: window}
}

// Begin registers receipt of request (from, seq). It returns
// (run=true) when the caller should execute the handler, or
// (run=false, replay) when this is a duplicate: a non-nil replay is the
// cached encoded reply to resend, a nil replay means drop the duplicate
// (first execution still in flight, or it produced no reply).
func (d *Deduper) Begin(from wire.SiteID, seq uint64) (run bool, replay []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	q := d.perFrom[from]
	if q == nil {
		q = &dedupQueue{entries: make(map[uint64]*dedupEntry)}
		d.perFrom[from] = q
	}
	if e := q.entries[seq]; e != nil {
		if e.done {
			return false, e.reply
		}
		return false, nil
	}
	if len(q.order) >= d.limit {
		evict := q.order[0]
		q.order = q.order[1:]
		delete(q.entries, evict)
	}
	q.entries[seq] = &dedupEntry{}
	q.order = append(q.order, seq)
	return true, nil
}

// Finish records the encoded reply for request (from, seq) so later
// duplicates replay it. Pass nil when the handler produced no reply.
func (d *Deduper) Finish(from wire.SiteID, seq uint64, reply []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	q := d.perFrom[from]
	if q == nil {
		return
	}
	if e := q.entries[seq]; e != nil {
		e.done = true
		e.reply = reply
	}
}

// Forget drops all state for one sender — used when the underlying
// connection to that sender is torn down (its seq space may restart).
func (d *Deduper) Forget(from wire.SiteID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.perFrom, from)
}
