// Package tcpnet implements transport.Node over real TCP connections,
// so an avdb site can run as its own OS process (cmd/avnode) and a
// cluster can span machines. Frames are length-prefixed wire envelopes;
// every frame travels over a connection dialed toward its destination
// (accepted connections are read-only), which keeps the write path a
// simple per-peer mutex and makes reconnection after a peer restart
// automatic.
package tcpnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"avdb/internal/failure"
	"avdb/internal/metrics"
	"avdb/internal/trace"
	"avdb/internal/transport"
	"avdb/internal/wire"
)

// maxFrame bounds a frame to keep a corrupt length prefix from
// allocating gigabytes.
const maxFrame = 16 << 20

// Config parameterizes a TCP node.
type Config struct {
	// ID is this site's identity.
	ID wire.SiteID
	// Listen is the address to accept peers on (e.g. "127.0.0.1:7000";
	// ":0" picks a free port — read it back with Addr).
	Listen string
	// Peers maps site IDs to addresses. More can be added with AddPeer.
	Peers map[wire.SiteID]string
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds Call when the context has no deadline
	// (default 5s).
	CallTimeout time.Duration
	// Registry counts messages the same way memnet does (both directions
	// of an exchange charged to the initiator). Nil disables counting.
	Registry *metrics.Registry
	// Tracer records send/recv spans and propagates trace context in
	// envelopes. Nil disables tracing.
	Tracer *trace.Tracer
	// Interceptor, when non-nil, is consulted for every envelope before
	// it is written (requests, one-way sends, and replies) and may drop,
	// delay, or duplicate it — the same chaos seam memnet exposes, so
	// fault scenarios run against real TCP too.
	Interceptor transport.Interceptor
	// RetransmitInterval, when > 0, makes Call re-send its request (same
	// envelope seq) at this interval until the reply arrives or the
	// context expires; receivers dedup on (from, seq) per connection and
	// replay the original reply.
	RetransmitInterval time.Duration
	// RedialBackoff caps how eagerly a down peer is re-dialed: after a
	// failed dial, further sends to that peer fail fast (ErrUnreachable)
	// until the backoff elapses, and the delay grows exponentially with
	// consecutive failures. The zero value selects 50ms base / 2s cap.
	RedialBackoff failure.Policy
}

// Node is one site's TCP endpoint.
type Node struct {
	cfg     Config
	handler transport.Handler
	ln      net.Listener

	mu       sync.Mutex
	peers    map[wire.SiteID]string
	conns    map[wire.SiteID]*peerConn
	redial   map[wire.SiteID]*redialState
	accepted map[net.Conn]struct{}
	pending  map[uint64]chan wire.Message
	seq      uint64
	closed   bool

	wg sync.WaitGroup
}

// redialState throttles reconnection to one down peer.
type redialState struct {
	failures int       // consecutive failed dials
	until    time.Time // don't redial before this instant
}

// peerConn is an outgoing connection with a combining write buffer.
// Senders encode their frame directly into pending (no per-message
// allocation) and the first sender to find no flusher active becomes
// the flusher: it swaps pending for an empty spare and writes the whole
// batch with one Write syscall, repeating until the queue drains, while
// later senders wait on cond for their bytes to be reported written.
// Under contention many frames ride one syscall; a lone sender flushes
// immediately, so the uncontended latency is that of a direct write.
type peerConn struct {
	mu      sync.Mutex
	cond    *sync.Cond // signaled when a flush round completes
	conn    net.Conn
	pending []byte // frames queued but not yet handed to the kernel
	spare   []byte // recycled buffer for the next pending swap
	writing bool   // a sender is currently the flusher
	queued  uint64 // total bytes ever enqueued
	flushed uint64 // total bytes ever written (or abandoned on error)
	okUpTo  uint64 // bytes confirmed written before the first error
	err     error  // sticky first write error
}

func newPeerConn(conn net.Conn) *peerConn {
	pc := &peerConn{conn: conn}
	pc.cond = sync.NewCond(&pc.mu)
	return pc
}

// write enqueues env as one length-prefixed frame and returns once the
// frame has been written (possibly batched with others) or the
// connection failed.
func (pc *peerConn) write(env *wire.Envelope) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.err != nil {
		return pc.err
	}
	off := len(pc.pending)
	pc.pending = append(pc.pending, 0, 0, 0, 0)
	pc.pending = wire.AppendEnvelope(pc.pending, env)
	binary.BigEndian.PutUint32(pc.pending[off:], uint32(len(pc.pending)-off-4))
	pc.queued += uint64(len(pc.pending) - off)
	target := pc.queued
	for pc.writing && pc.flushed < target && pc.err == nil {
		pc.cond.Wait()
	}
	if pc.err == nil && pc.flushed < target {
		// No flusher is active and our bytes are still queued: drain.
		pc.writing = true
		for len(pc.pending) > 0 && pc.err == nil {
			batch := pc.pending
			pc.pending = pc.spare[:0]
			pc.spare = nil
			pc.mu.Unlock()
			_, werr := pc.conn.Write(batch)
			pc.mu.Lock()
			pc.spare = batch[:0]
			if werr != nil {
				pc.err = werr
				pc.okUpTo = pc.flushed // the failed batch never landed whole
				// Account the failed batch and everything queued behind it
				// as done so no waiter stalls; they all report the error.
				pc.flushed += uint64(len(batch)) + uint64(len(pc.pending))
			} else {
				pc.flushed += uint64(len(batch))
			}
		}
		pc.writing = false
		pc.cond.Broadcast()
	}
	if pc.err != nil && target > pc.okUpTo {
		return pc.err
	}
	return nil
}

// Open starts listening and returns the node.
func Open(cfg Config, handler transport.Handler) (*Node, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	if cfg.RedialBackoff.BaseDelay <= 0 {
		cfg.RedialBackoff.BaseDelay = 50 * time.Millisecond
	}
	if cfg.RedialBackoff.MaxDelay <= 0 {
		cfg.RedialBackoff.MaxDelay = 2 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	n := &Node{
		cfg:      cfg,
		handler:  handler,
		ln:       ln,
		peers:    make(map[wire.SiteID]string),
		conns:    make(map[wire.SiteID]*peerConn),
		redial:   make(map[wire.SiteID]*redialState),
		accepted: make(map[net.Conn]struct{}),
		pending:  make(map[uint64]chan wire.Message),
	}
	for id, addr := range cfg.Peers {
		n.peers[id] = addr
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// ID implements transport.Node.
func (n *Node) ID() wire.SiteID { return n.cfg.ID }

// Addr returns the bound listen address (useful with ":0").
func (n *Node) Addr() string { return n.ln.Addr().String() }

// AddPeer registers (or updates) a peer's address.
func (n *Node) AddPeer(id wire.SiteID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
	delete(n.conns, id)  // force re-dial at the new address
	delete(n.redial, id) // a new address gets a fresh chance
}

// acceptLoop accepts inbound connections and spawns readers.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection. Each connection
// gets its own request deduper: a peer restart means a new connection,
// so its fresh seq space can never collide with cached entries.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	dedup := transport.NewDeduper(0)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrame {
			return // protocol violation: drop the connection
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		env, err := wire.DecodeEnvelope(buf)
		if err != nil {
			continue // corrupt frame: skip
		}
		if env.IsReply {
			n.mu.Lock()
			ch := n.pending[env.Seq]
			delete(n.pending, env.Seq)
			n.mu.Unlock()
			if ch != nil {
				ch <- env.Msg
			}
			continue
		}
		run, replay := dedup.Begin(env.From, env.Seq)
		if !run {
			// Duplicate request: replay the recorded reply (if the first
			// execution finished with one), never re-run the handler.
			if replay != nil {
				if out, err := wire.DecodeEnvelope(replay); err == nil {
					_ = n.send(out)
				}
			}
			continue
		}
		n.wg.Add(1)
		go func(env *wire.Envelope) {
			defer n.wg.Done()
			ctx := context.Background()
			if env.TraceID != 0 {
				ctx = trace.ContextWith(ctx, trace.SpanContext{
					Trace: trace.TraceID(env.TraceID), Span: trace.SpanID(env.SpanID)})
			}
			ctx, sp := n.cfg.Tracer.Start(ctx, n.cfg.ID, "recv."+env.Msg.Kind().String())
			if sp != nil {
				sp.SetAttr("from", strconv.Itoa(int(env.From)))
			}
			reply := n.handler(ctx, env.From, env.Msg)
			sp.EndSpan()
			if reply == nil {
				dedup.Finish(env.From, env.Seq, nil)
				return
			}
			out := &wire.Envelope{
				From: n.cfg.ID, To: env.From, Seq: env.Seq, IsReply: true, Msg: reply,
			}
			if sc := trace.FromContext(ctx); sc.Valid() {
				out.TraceID, out.SpanID = uint64(sc.Trace), uint64(sc.Span)
			}
			dedup.Finish(env.From, env.Seq, wire.EncodeEnvelope(out))
			_ = n.send(out)
		}(env)
	}
}

// getConn returns a live outgoing connection to peer, dialing if
// needed. Dials to a down peer are throttled: after a failure, further
// attempts fail fast until an exponentially growing backoff elapses,
// so a dead site costs each sender one cheap error instead of a
// DialTimeout-long stall per message.
func (n *Node) getConn(to wire.SiteID) (*peerConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if pc, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	addr, ok := n.peers[to]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: no address for site %d", transport.ErrUnreachable, to)
	}
	if rd := n.redial[to]; rd != nil && time.Now().Before(rd.until) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: site %d in redial backoff", transport.ErrUnreachable, to)
	}
	n.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		n.mu.Lock()
		rd := n.redial[to]
		if rd == nil {
			rd = &redialState{}
			n.redial[to] = rd
		}
		rd.failures++
		rd.until = time.Now().Add(n.cfg.RedialBackoff.Backoff(rd.failures))
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: dial %s: %v", transport.ErrUnreachable, addr, err)
	}
	n.mu.Lock()
	delete(n.redial, to)
	n.mu.Unlock()
	pc := newPeerConn(conn)
	n.mu.Lock()
	if existing, ok := n.conns[to]; ok {
		// Lost the race; use the winner and drop ours.
		n.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	n.conns[to] = pc
	n.mu.Unlock()
	// Replies addressed to us may come back over this same connection
	// if the peer chooses to, so read from it too.
	n.wg.Add(1)
	go n.readLoop(conn)
	return pc, nil
}

// dropConn forgets a broken connection.
func (n *Node) dropConn(to wire.SiteID, pc *peerConn) {
	n.mu.Lock()
	if n.conns[to] == pc {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	pc.conn.Close()
}

// count attributes one message to the exchange's initiator: the sender
// for requests, the destination for replies (memnet's attribution, so a
// TCP deployment's /metrics matches the experiments').
func (n *Node) count(env *wire.Envelope) {
	if n.cfg.Registry == nil {
		return
	}
	site := env.From
	if env.IsReply {
		site = env.To
	}
	n.cfg.Registry.Counter(int(site), env.Msg.Kind().String()).Inc()
}

// send frames and writes one envelope through the connection's
// combining buffer, redialing once on a stale connection. The envelope
// is encoded directly into the buffer, so the steady state allocates
// nothing per message.
func (n *Node) send(env *wire.Envelope) error {
	n.count(env)
	if it := n.cfg.Interceptor; it != nil {
		fault := it.Intercept(env.From, env.To, env.IsReply, env.Msg.Kind())
		if fault.Drop {
			return nil // silently lost mid-flight
		}
		if fault.Duplicate {
			defer func() { _ = n.transmit(env) }()
		}
		if fault.Delay > 0 {
			time.AfterFunc(fault.Delay, func() { _ = n.transmit(env) })
			return nil
		}
	}
	return n.transmit(env)
}

// transmit is send after fault injection: dial (or reuse) and write.
func (n *Node) transmit(env *wire.Envelope) error {
	for attempt := 0; attempt < 2; attempt++ {
		pc, err := n.getConn(env.To)
		if err != nil {
			return err
		}
		if err := pc.write(env); err == nil {
			return nil
		}
		n.dropConn(env.To, pc)
	}
	return fmt.Errorf("%w: write to site %d failed", transport.ErrUnreachable, env.To)
}

// Call implements transport.Node.
func (n *Node) Call(ctx context.Context, to wire.SiteID, req wire.Message) (wire.Message, error) {
	ctx, sp := n.span(ctx, to, "call.", req)
	reply, err := n.call(ctx, to, req)
	sp.Finish(err)
	return reply, err
}

// call is Call without the tracing wrapper.
func (n *Node) call(ctx context.Context, to wire.SiteID, req wire.Message) (wire.Message, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	n.seq++
	seq := n.seq
	ch := make(chan wire.Message, 1)
	n.pending[seq] = ch
	n.mu.Unlock()

	unregister := func() {
		n.mu.Lock()
		delete(n.pending, seq)
		n.mu.Unlock()
	}
	env := n.envelope(ctx, to, seq, req)
	if err := n.send(env); err != nil {
		unregister()
		return nil, err
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.cfg.CallTimeout)
		defer cancel()
	}
	// With retransmission enabled, re-send the same envelope (same seq)
	// periodically; the receiver's per-connection dedup replays its reply.
	var retransmit <-chan time.Time
	if n.cfg.RetransmitInterval > 0 {
		t := time.NewTicker(n.cfg.RetransmitInterval)
		defer t.Stop()
		retransmit = t.C
	}
	for {
		select {
		case reply := <-ch:
			return reply, nil
		case <-retransmit:
			_ = n.send(env) // best effort; the next tick tries again
		case <-ctx.Done():
			unregister()
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, transport.ErrTimeout
			}
			return nil, ctx.Err()
		}
	}
}

// Send implements transport.Node.
func (n *Node) Send(ctx context.Context, to wire.SiteID, msg wire.Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	n.seq++
	seq := n.seq
	n.mu.Unlock()
	ctx, sp := n.span(ctx, to, "send.", msg)
	err := n.send(n.envelope(ctx, to, seq, msg))
	sp.Finish(err)
	return err
}

// span starts a send-side transport span for msg when tracing is on.
func (n *Node) span(ctx context.Context, to wire.SiteID, prefix string, msg wire.Message) (context.Context, *trace.Span) {
	ctx, sp := n.cfg.Tracer.Start(ctx, n.cfg.ID, prefix+msg.Kind().String())
	if sp != nil {
		sp.SetAttr("peer", strconv.Itoa(int(to)))
	}
	return ctx, sp
}

// envelope builds an outbound request envelope carrying ctx's trace
// context, if any.
func (n *Node) envelope(ctx context.Context, to wire.SiteID, seq uint64, msg wire.Message) *wire.Envelope {
	env := &wire.Envelope{From: n.cfg.ID, To: to, Seq: seq, Msg: msg}
	if n.cfg.Tracer.Enabled() {
		if sc := trace.FromContext(ctx); sc.Valid() {
			env.TraceID, env.SpanID = uint64(sc.Trace), uint64(sc.Span)
		}
	}
	return env
}

// Close implements transport.Node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := n.conns
	n.conns = make(map[wire.SiteID]*peerConn)
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()
	n.ln.Close()
	for _, pc := range conns {
		pc.conn.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	n.wg.Wait()
	return nil
}

// Network adapts per-process TCP nodes to the transport.Network
// interface so site.Open can use them: each Open call must match the
// configured ID.
type Network struct {
	Cfg Config
}

// Open implements transport.Network. id must equal Cfg.ID.
func (nw *Network) Open(id wire.SiteID, handler transport.Handler) (transport.Node, error) {
	if id != nw.Cfg.ID {
		return nil, fmt.Errorf("tcpnet: network configured for site %d, asked to open %d", nw.Cfg.ID, id)
	}
	return Open(nw.Cfg, handler)
}
