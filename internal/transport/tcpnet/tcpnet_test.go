package tcpnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"avdb/internal/site"
	"avdb/internal/storage"
	"avdb/internal/transport"
	"avdb/internal/wire"
)

func echo(from wire.SiteID, msg wire.Message) wire.Message {
	if r, ok := msg.(*wire.Read); ok {
		return &wire.ReadReply{OK: true, Value: int64(len(r.Key))}
	}
	return nil
}

// pair opens two wired-up nodes on loopback.
func pair(t *testing.T, h1, h2 transport.Handler) (*Node, *Node) {
	t.Helper()
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0"}, h1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n1.Close() })
	n2, err := Open(Config{ID: 2, Listen: "127.0.0.1:0"}, h2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n2.Close() })
	n1.AddPeer(2, n2.Addr())
	n2.AddPeer(1, n1.Addr())
	return n1, n2
}

func TestCallOverTCP(t *testing.T) {
	n1, _ := pair(t, echo, echo)
	reply, err := n1.Call(context.Background(), 2, &wire.Read{Key: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.(*wire.ReadReply).Value != 5 {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestBidirectionalCalls(t *testing.T) {
	n1, n2 := pair(t, echo, echo)
	for i := 0; i < 20; i++ {
		if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "ab"}); err != nil {
			t.Fatal(err)
		}
		if _, err := n2.Call(context.Background(), 1, &wire.Read{Key: "abcd"}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentCallsOverTCP(t *testing.T) {
	n1, _ := pair(t, echo, echo)
	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				reply, err := n1.Call(context.Background(), 2, &wire.Read{Key: "xyz"})
				if err != nil {
					errs <- err
					return
				}
				if reply.(*wire.ReadReply).Value != 3 {
					errs <- errors.New("bad value")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestUnknownPeer(t *testing.T) {
	n1, _ := pair(t, echo, echo)
	if _, err := n1.Call(context.Background(), 9, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadPeerUnreachable(t *testing.T) {
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0", DialTimeout: 200 * time.Millisecond}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n1.AddPeer(2, "127.0.0.1:1") // nothing listens there
	if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestPeerRestartReconnects(t *testing.T) {
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0", DialTimeout: 300 * time.Millisecond}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Open(Config{ID: 2, Listen: "127.0.0.1:0"}, echo)
	if err != nil {
		t.Fatal(err)
	}
	n1.AddPeer(2, n2.Addr())
	n2.AddPeer(1, n1.Addr()) // replies travel over dialed connections
	if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "ab"}); err != nil {
		t.Fatal(err)
	}
	addr := n2.Addr()
	n2.Close()
	// Peer down: calls fail.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	_, err = n1.Call(ctx, 2, &wire.Read{Key: "ab"})
	cancel()
	if err == nil {
		t.Fatal("call to dead peer succeeded")
	}
	// Peer comes back on the same address: transparent reconnect.
	n3, err := Open(Config{ID: 2, Listen: addr}, echo)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer n3.Close()
	n3.AddPeer(1, n1.Addr())
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "ab"}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected to restarted peer")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestClosedNodeRejects(t *testing.T) {
	n1, _ := pair(t, echo, echo)
	n1.Close()
	if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := n1.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestNetworkAdapterIDCheck(t *testing.T) {
	nw := &Network{Cfg: Config{ID: 3, Listen: "127.0.0.1:0"}}
	if _, err := nw.Open(4, echo); err == nil {
		t.Fatal("mismatched ID accepted")
	}
	node, err := nw.Open(3, echo)
	if err != nil {
		t.Fatal(err)
	}
	node.Close()
}

// TestFullSitesOverTCP runs a real 3-site avdb cluster over loopback
// TCP: immediate updates, delay updates with AV transfer, and lazy
// convergence, all through genuine sockets.
func TestFullSitesOverTCP(t *testing.T) {
	const n = 3
	// Stage 1: open the TCP nodes first so every address is known before
	// any site exists. Each node's handler indirects through a slot that
	// is filled in once its site is assembled.
	nodes := make([]*Node, n)
	sites := make([]*site.Site, n)
	handlers := make([]transport.Handler, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		idx := i
		h := func(from wire.SiteID, msg wire.Message) wire.Message {
			mu.Lock()
			hh := handlers[idx]
			mu.Unlock()
			if hh == nil {
				return nil
			}
			return hh(from, msg)
		}
		node, err := Open(Config{ID: wire.SiteID(i), Listen: "127.0.0.1:0"}, h)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].AddPeer(wire.SiteID(j), nodes[j].Addr())
			}
		}
	}
	// Stage 2: site.Open handles assembly via the Network interface; use
	// single-node adapters bound to the pre-opened nodes.
	for i := 0; i < n; i++ {
		idx := i
		adapter := networkFunc(func(id wire.SiteID, handler transport.Handler) (transport.Node, error) {
			mu.Lock()
			handlers[idx] = handler
			mu.Unlock()
			return nodes[idx], nil
		})
		var peers []wire.SiteID
		for p := 0; p < n; p++ {
			if p != i {
				peers = append(peers, wire.SiteID(p))
			}
		}
		s, err := site.Open(site.Config{
			ID: wire.SiteID(i), Base: 0, Peers: peers,
			LockTimeout: time.Second, PrepareTimeout: time.Second,
		}, adapter)
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = s
		if err := s.Seed(
			storage.Record{Key: "reg", Amount: 900, Class: storage.Regular},
			storage.Record{Key: "non", Amount: 100, Class: storage.NonRegular},
		); err != nil {
			t.Fatal(err)
		}
		if err := s.DefineAV("reg", 300); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	// Delay local.
	if _, err := sites[1].Update(ctx, "reg", -100); err != nil {
		t.Fatal(err)
	}
	// Delay with transfer over TCP.
	if res, err := sites[1].Update(ctx, "reg", -400); err != nil {
		t.Fatal(err)
	} else if res.Rounds == 0 {
		t.Fatal("expected AV transfer rounds over TCP")
	}
	// Immediate over TCP.
	if _, err := sites[2].Update(ctx, "non", -30); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, _ := sites[i].Read("non"); v != 70 {
			t.Fatalf("site %d non = %d", i, v)
		}
	}
	// Converge the delay updates.
	for i := 0; i < n; i++ {
		if err := sites[i].Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if v, _ := sites[i].Read("reg"); v != 400 {
			t.Fatalf("site %d reg = %d", i, v)
		}
	}
}

// networkFunc adapts a function to transport.Network.
type networkFunc func(id wire.SiteID, handler transport.Handler) (transport.Node, error)

func (f networkFunc) Open(id wire.SiteID, handler transport.Handler) (transport.Node, error) {
	return f(id, handler)
}
