package tcpnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"avdb/internal/failure"
	"avdb/internal/metrics"
	"avdb/internal/site"
	"avdb/internal/storage"
	"avdb/internal/trace"
	"avdb/internal/transport"
	"avdb/internal/wire"
)

func echo(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
	if r, ok := msg.(*wire.Read); ok {
		return &wire.ReadReply{OK: true, Value: int64(len(r.Key))}
	}
	return nil
}

// pair opens two wired-up nodes on loopback.
func pair(t *testing.T, h1, h2 transport.Handler) (*Node, *Node) {
	t.Helper()
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0"}, h1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n1.Close() })
	n2, err := Open(Config{ID: 2, Listen: "127.0.0.1:0"}, h2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n2.Close() })
	n1.AddPeer(2, n2.Addr())
	n2.AddPeer(1, n1.Addr())
	return n1, n2
}

func TestCallOverTCP(t *testing.T) {
	n1, _ := pair(t, echo, echo)
	reply, err := n1.Call(context.Background(), 2, &wire.Read{Key: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.(*wire.ReadReply).Value != 5 {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestBidirectionalCalls(t *testing.T) {
	n1, n2 := pair(t, echo, echo)
	for i := 0; i < 20; i++ {
		if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "ab"}); err != nil {
			t.Fatal(err)
		}
		if _, err := n2.Call(context.Background(), 1, &wire.Read{Key: "abcd"}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentCallsOverTCP(t *testing.T) {
	n1, _ := pair(t, echo, echo)
	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				reply, err := n1.Call(context.Background(), 2, &wire.Read{Key: "xyz"})
				if err != nil {
					errs <- err
					return
				}
				if reply.(*wire.ReadReply).Value != 3 {
					errs <- errors.New("bad value")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestUnknownPeer(t *testing.T) {
	n1, _ := pair(t, echo, echo)
	if _, err := n1.Call(context.Background(), 9, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadPeerUnreachable(t *testing.T) {
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0", DialTimeout: 200 * time.Millisecond}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n1.AddPeer(2, "127.0.0.1:1") // nothing listens there
	if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestPeerRestartReconnects(t *testing.T) {
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0", DialTimeout: 300 * time.Millisecond}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Open(Config{ID: 2, Listen: "127.0.0.1:0"}, echo)
	if err != nil {
		t.Fatal(err)
	}
	n1.AddPeer(2, n2.Addr())
	n2.AddPeer(1, n1.Addr()) // replies travel over dialed connections
	if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "ab"}); err != nil {
		t.Fatal(err)
	}
	addr := n2.Addr()
	n2.Close()
	// Peer down: calls fail.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	_, err = n1.Call(ctx, 2, &wire.Read{Key: "ab"})
	cancel()
	if err == nil {
		t.Fatal("call to dead peer succeeded")
	}
	// Peer comes back on the same address: transparent reconnect.
	n3, err := Open(Config{ID: 2, Listen: addr}, echo)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer n3.Close()
	n3.AddPeer(1, n1.Addr())
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "ab"}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected to restarted peer")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestClosedNodeRejects(t *testing.T) {
	n1, _ := pair(t, echo, echo)
	n1.Close()
	if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "x"}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := n1.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestNetworkAdapterIDCheck(t *testing.T) {
	nw := &Network{Cfg: Config{ID: 3, Listen: "127.0.0.1:0"}}
	if _, err := nw.Open(4, echo); err == nil {
		t.Fatal("mismatched ID accepted")
	}
	node, err := nw.Open(3, echo)
	if err != nil {
		t.Fatal(err)
	}
	node.Close()
}

// TestFullSitesOverTCP runs a real 3-site avdb cluster over loopback
// TCP: immediate updates, delay updates with AV transfer, and lazy
// convergence, all through genuine sockets.
func TestFullSitesOverTCP(t *testing.T) {
	const n = 3
	// Stage 1: open the TCP nodes first so every address is known before
	// any site exists. Each node's handler indirects through a slot that
	// is filled in once its site is assembled.
	nodes := make([]*Node, n)
	sites := make([]*site.Site, n)
	handlers := make([]transport.Handler, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		idx := i
		h := func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
			mu.Lock()
			hh := handlers[idx]
			mu.Unlock()
			if hh == nil {
				return nil
			}
			return hh(ctx, from, msg)
		}
		node, err := Open(Config{ID: wire.SiteID(i), Listen: "127.0.0.1:0"}, h)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].AddPeer(wire.SiteID(j), nodes[j].Addr())
			}
		}
	}
	// Stage 2: site.Open handles assembly via the Network interface; use
	// single-node adapters bound to the pre-opened nodes.
	for i := 0; i < n; i++ {
		idx := i
		adapter := networkFunc(func(id wire.SiteID, handler transport.Handler) (transport.Node, error) {
			mu.Lock()
			handlers[idx] = handler
			mu.Unlock()
			return nodes[idx], nil
		})
		var peers []wire.SiteID
		for p := 0; p < n; p++ {
			if p != i {
				peers = append(peers, wire.SiteID(p))
			}
		}
		s, err := site.Open(site.Config{
			ID: wire.SiteID(i), Base: 0, Peers: peers,
			LockTimeout: time.Second, PrepareTimeout: time.Second,
		}, adapter)
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = s
		if err := s.Seed(
			storage.Record{Key: "reg", Amount: 900, Class: storage.Regular},
			storage.Record{Key: "non", Amount: 100, Class: storage.NonRegular},
		); err != nil {
			t.Fatal(err)
		}
		if err := s.DefineAV("reg", 300); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	// Delay local.
	if _, err := sites[1].Update(ctx, "reg", -100); err != nil {
		t.Fatal(err)
	}
	// Delay with transfer over TCP.
	if res, err := sites[1].Update(ctx, "reg", -400); err != nil {
		t.Fatal(err)
	} else if res.Rounds == 0 {
		t.Fatal("expected AV transfer rounds over TCP")
	}
	// Immediate over TCP.
	if _, err := sites[2].Update(ctx, "non", -30); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, _ := sites[i].Read("non"); v != 70 {
			t.Fatalf("site %d non = %d", i, v)
		}
	}
	// Converge the delay updates.
	for i := 0; i < n; i++ {
		if err := sites[i].Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if v, _ := sites[i].Read("reg"); v != 400 {
			t.Fatalf("site %d reg = %d", i, v)
		}
	}
}

// TestRedialAfterStaleConnection exercises send()'s retry path: when the
// cached outgoing connection has died underneath us (peer kept its
// listener, only the socket broke), the first write fails, the
// connection is dropped, and one redial must complete the call.
func TestRedialAfterStaleConnection(t *testing.T) {
	n1, _ := pair(t, echo, echo)
	if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "ab"}); err != nil {
		t.Fatal(err)
	}

	// Sever the established outgoing socket behind the node's back. The
	// cached peerConn stays in n1.conns, so the next send writes to a
	// dead connection.
	n1.mu.Lock()
	pc := n1.conns[2]
	n1.mu.Unlock()
	if pc == nil {
		t.Fatal("no cached connection to peer 2 after a successful call")
	}
	pc.conn.Close()

	reply, err := n1.Call(context.Background(), 2, &wire.Read{Key: "abc"})
	if err != nil {
		t.Fatalf("call over stale connection did not redial: %v", err)
	}
	if reply.(*wire.ReadReply).Value != 3 {
		t.Fatalf("reply = %+v", reply)
	}
	// The broken connection must have been replaced, not resurrected.
	n1.mu.Lock()
	fresh := n1.conns[2]
	n1.mu.Unlock()
	if fresh == pc {
		t.Fatal("stale peerConn still cached after redial")
	}
}

// TestRegistryCountsExchanges verifies tcpnet charges both directions of
// a call to the initiating site, matching memnet's attribution.
func TestRegistryCountsExchanges(t *testing.T) {
	reg := metrics.NewRegistry()
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0", Registry: reg}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Open(Config{ID: 2, Listen: "127.0.0.1:0", Registry: reg}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.AddPeer(2, n2.Addr())
	n2.AddPeer(1, n1.Addr())

	for i := 0; i < 3; i++ {
		if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	bySite := reg.MessagesBySite()
	if bySite[1] != 6 { // 3 requests + 3 replies, all charged to site 1
		t.Fatalf("site 1 charged %d messages, want 6", bySite[1])
	}
	if bySite[2] != 0 {
		t.Fatalf("site 2 charged %d messages, want 0", bySite[2])
	}
}

// TestTraceContextPropagatesOverTCP verifies the envelope carries the
// caller's span across the socket: the receiver's recv span must parent
// to the sender's call span within the same trace.
func TestTraceContextPropagatesOverTCP(t *testing.T) {
	tr := trace.New(64)
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0", Tracer: tr}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Open(Config{ID: 2, Listen: "127.0.0.1:0", Tracer: tr}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.AddPeer(2, n2.Addr())
	n2.AddPeer(1, n1.Addr())

	ctx, root := tr.Start(context.Background(), 1, "test.root")
	if _, err := n1.Call(ctx, 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	root.EndSpan()

	var call, recv *trace.Span
	deadline := time.Now().Add(2 * time.Second)
	for call == nil || recv == nil {
		for _, sp := range tr.Trace(root.Context().Trace) {
			sp := sp
			switch sp.Name {
			case "call.read":
				call = &sp
			case "recv.read":
				recv = &sp
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("spans missing: call=%v recv=%v", call, recv)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if call.Parent != root.Context().Span {
		t.Fatalf("call span parent = %s, want root %s", call.Parent, root.Context().Span)
	}
	if recv.Parent != call.ID {
		t.Fatalf("recv span parent = %s, want call %s", recv.Parent, call.ID)
	}
	if recv.Site != 2 || call.Site != 1 {
		t.Fatalf("span sites: call=%d recv=%d", call.Site, recv.Site)
	}
}

// networkFunc adapts a function to transport.Network.
type networkFunc func(id wire.SiteID, handler transport.Handler) (transport.Node, error)

func (f networkFunc) Open(id wire.SiteID, handler transport.Handler) (transport.Node, error) {
	return f(id, handler)
}

// discard accepts every message and replies to none.
func discard(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
	return nil
}

// benchPair opens two wired-up nodes on loopback for benchmarks.
func benchPair(b *testing.B, h1, h2 transport.Handler) (*Node, *Node) {
	b.Helper()
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0"}, h1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n1.Close() })
	n2, err := Open(Config{ID: 2, Listen: "127.0.0.1:0"}, h2)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n2.Close() })
	n1.AddPeer(2, n2.Addr())
	n2.AddPeer(1, n1.Addr())
	return n1, n2
}

// BenchmarkSendAllocs counts allocations per one-way Send — the
// fire-and-forget path deltas and acks ride on. Envelopes are encoded
// in place into the connection's combining buffer, so the steady state
// stays near zero allocations per message.
func BenchmarkSendAllocs(b *testing.B) {
	n1, _ := benchPair(b, discard, discard)
	ctx := context.Background()
	msg := &wire.DeltaAck{Origin: 1, UpTo: 42}
	if err := n1.Send(ctx, 2, msg); err != nil { // dial once, outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n1.Send(ctx, 2, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendAllocsParallel is BenchmarkSendAllocs with concurrent
// senders sharing one connection, exercising the write-combining path.
func BenchmarkSendAllocsParallel(b *testing.B) {
	n1, _ := benchPair(b, discard, discard)
	ctx := context.Background()
	if err := n1.Send(ctx, 2, &wire.DeltaAck{Origin: 1, UpTo: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		msg := &wire.DeltaAck{Origin: 1, UpTo: 42}
		for pb.Next() {
			if err := n1.Send(ctx, 2, msg); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func TestRedialBackoffFailsFast(t *testing.T) {
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0",
		DialTimeout:   200 * time.Millisecond,
		RedialBackoff: failure.Policy{BaseDelay: time.Second, MaxDelay: time.Minute}}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	// A TEST-NET address that won't answer: the first dial eats the full
	// DialTimeout, subsequent sends inside the backoff window fail fast.
	n1.AddPeer(9, "127.0.0.1:1") // nothing listens on port 1
	ctx := context.Background()
	if err := n1.Send(ctx, 9, &wire.DeltaAck{Origin: 1, UpTo: 1}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("first send err = %v", err)
	}
	start := time.Now()
	if err := n1.Send(ctx, 9, &wire.DeltaAck{Origin: 1, UpTo: 2}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("second send err = %v", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("send during backoff took %v, want fail-fast", d)
	}
	n1.mu.Lock()
	rd := n1.redial[9]
	n1.mu.Unlock()
	if rd == nil || rd.failures == 0 {
		t.Fatalf("redial state not recorded: %+v", rd)
	}
}

func TestRedialBackoffGrowsAndResets(t *testing.T) {
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0",
		DialTimeout:   200 * time.Millisecond,
		RedialBackoff: failure.Policy{BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n1.AddPeer(9, "127.0.0.1:1")
	ctx := context.Background()
	// Accumulate failures (sleeping past each short backoff so every send
	// really dials).
	for i := 0; i < 4; i++ {
		n1.Send(ctx, 9, &wire.DeltaAck{Origin: 1, UpTo: 1})
		time.Sleep(60 * time.Millisecond)
	}
	n1.mu.Lock()
	failures := 0
	if rd := n1.redial[9]; rd != nil {
		failures = rd.failures
	}
	n1.mu.Unlock()
	if failures < 2 {
		t.Fatalf("failures = %d, want several", failures)
	}
	// A real peer at the address clears the backoff on first success.
	n2, err := Open(Config{ID: 9, Listen: "127.0.0.1:0"}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.AddPeer(9, n2.Addr()) // also resets redial state
	n2.AddPeer(1, n1.Addr())
	if _, err := n1.Call(ctx, 9, &wire.Read{Key: "xy"}); err != nil {
		t.Fatal(err)
	}
	n1.mu.Lock()
	rd := n1.redial[9]
	n1.mu.Unlock()
	if rd != nil {
		t.Fatalf("redial state survived success: %+v", rd)
	}
}

// tcpScriptedInterceptor drops the first matching request.
type tcpScriptedInterceptor struct {
	mu      sync.Mutex
	dropped bool
}

func (si *tcpScriptedInterceptor) Intercept(from, to wire.SiteID, isReply bool, kind wire.Kind) transport.Fault {
	si.mu.Lock()
	defer si.mu.Unlock()
	if !isReply && kind == wire.KindRead && !si.dropped {
		si.dropped = true
		return transport.Fault{Drop: true}
	}
	return transport.Fault{}
}

func TestRetransmitHealsDropOverTCP(t *testing.T) {
	var mu sync.Mutex
	count := 0
	counting := func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		if _, ok := msg.(*wire.Read); ok {
			mu.Lock()
			count++
			mu.Unlock()
			return &wire.ReadReply{OK: true, Value: 11}
		}
		return nil
	}
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0",
		Interceptor:        &tcpScriptedInterceptor{},
		RetransmitInterval: 20 * time.Millisecond}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Open(Config{ID: 2, Listen: "127.0.0.1:0"}, counting)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.AddPeer(2, n2.Addr())
	n2.AddPeer(1, n1.Addr())

	reply, err := n1.Call(context.Background(), 2, &wire.Read{Key: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.(*wire.ReadReply).Value != 11 {
		t.Fatalf("reply = %+v", reply)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("handler ran %d times, want 1", count)
	}
}

func TestDuplicateRequestDedupedOverTCP(t *testing.T) {
	var mu sync.Mutex
	count := 0
	counting := func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		if _, ok := msg.(*wire.Read); ok {
			mu.Lock()
			count++
			mu.Unlock()
			return &wire.ReadReply{OK: true, Value: 5}
		}
		return nil
	}
	dup := &dupOnceInterceptor{}
	n1, err := Open(Config{ID: 1, Listen: "127.0.0.1:0", Interceptor: dup}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Open(Config{ID: 2, Listen: "127.0.0.1:0"}, counting)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.AddPeer(2, n2.Addr())
	n2.AddPeer(1, n1.Addr())

	if _, err := n1.Call(context.Background(), 2, &wire.Read{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the duplicate land
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("handler ran %d times, want 1", count)
	}
}

type dupOnceInterceptor struct {
	mu   sync.Mutex
	done bool
}

func (di *dupOnceInterceptor) Intercept(from, to wire.SiteID, isReply bool, kind wire.Kind) transport.Fault {
	di.mu.Lock()
	defer di.mu.Unlock()
	if !isReply && kind == wire.KindRead && !di.done {
		di.done = true
		return transport.Fault{Duplicate: true}
	}
	return transport.Fault{}
}
