// Package eventlog is avdb's lightweight observability substrate: a
// bounded in-memory ring of structured protocol events (updates, AV
// grants, 2PC phases, sync batches) that operators can snapshot, dump,
// or subscribe to live. Sites append to it when configured with one;
// the cost when unconfigured is a nil check.
package eventlog

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/wire"
)

// Event is one observed protocol action.
type Event struct {
	Time   time.Time
	Site   wire.SiteID // the site that recorded the event
	Type   string      // dotted class, e.g. "update.delay", "av.grant"
	Key    string      // product key, when applicable
	Detail string      // free-form specifics

	// LSN, when non-zero, orders this event in its site's storage
	// stream (the WAL LSN of the batch it describes). Feed logs driving
	// the read plane set it; plain observability events leave it zero.
	LSN uint64
	// Payload optionally carries structured data for programmatic
	// consumers (the read plane's applier receives the storage ops of
	// an applied batch here). It is not rendered by String.
	Payload any
}

// String renders the event for humans.
func (e Event) String() string {
	return fmt.Sprintf("%s site=%d %s key=%s %s",
		e.Time.Format("15:04:05.000"), e.Site, e.Type, e.Key, e.Detail)
}

// Log is a fixed-capacity ring of events with optional live
// subscribers. It is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	count   int
	subs    map[int]*Subscriber
	nextS   int
	total   uint64
	dropped uint64 // fan-out drops across all subscribers, ever
	now     func() time.Time
}

// New creates a log keeping the most recent capacity events
// (minimum 16).
func New(capacity int) *Log {
	if capacity < 16 {
		capacity = 16
	}
	return &Log{buf: make([]Event, capacity), subs: make(map[int]*Subscriber)}
}

// SetNow replaces the time source used to stamp events appended with a
// zero Time (default: time.Now). The deterministic simulator points it
// at a virtual clock so event timestamps are in simulated time. Call
// before the log is shared.
func (l *Log) SetNow(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Append records an event, evicting the oldest when full, and fans it
// out to subscribers (dropping for any subscriber whose buffer is full
// — observability must never block the data path).
func (l *Log) Append(e Event) {
	if e.Time.IsZero() {
		l.mu.Lock()
		now := l.now
		l.mu.Unlock()
		if now != nil {
			e.Time = now()
		} else {
			e.Time = time.Now()
		}
	}
	l.mu.Lock()
	if l.count < len(l.buf) {
		l.buf[(l.start+l.count)%len(l.buf)] = e
		l.count++
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % len(l.buf)
	}
	l.total++
	for _, sub := range l.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			l.dropped++
		}
	}
	l.mu.Unlock()
}

// Appendf formats and records an event.
func (l *Log) Appendf(site wire.SiteID, typ, key, format string, args ...any) {
	l.Append(Event{Site: site, Type: typ, Key: key, Detail: fmt.Sprintf(format, args...)})
}

// Len returns how many events are currently retained.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Total returns how many events have ever been appended.
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained events, oldest first.
func (l *Log) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.count)
	for i := 0; i < l.count; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}

// Subscriber is one live tail of the log. Fan-out to a subscriber
// whose buffer is full drops the event (observability and read models
// must never block the data path); every such drop is counted, so a
// consumer that must not miss events (the read plane's applier) can
// detect the gap and resynchronize from authoritative state.
type Subscriber struct {
	l       *Log
	id      int
	ch      chan Event
	dropped atomic.Uint64
}

// C returns the subscriber's event channel. It is closed by Cancel.
func (s *Subscriber) C() <-chan Event { return s.ch }

// Dropped returns how many events were dropped for this subscriber
// because its buffer was full.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Cancel detaches the subscriber and closes its channel. Idempotent.
func (s *Subscriber) Cancel() {
	s.l.mu.Lock()
	if _, ok := s.l.subs[s.id]; ok {
		delete(s.l.subs, s.id)
		close(s.ch)
	}
	s.l.mu.Unlock()
}

// NewSubscriber registers a subscriber that receives every subsequent
// event, best effort: events are dropped (and counted) rather than
// blocking producers when its buffer is full.
func (l *Log) NewSubscriber(buffer int) *Subscriber {
	if buffer < 1 {
		buffer = 64
	}
	sub := &Subscriber{l: l, ch: make(chan Event, buffer)}
	l.mu.Lock()
	sub.id = l.nextS
	l.nextS++
	l.subs[sub.id] = sub
	l.mu.Unlock()
	return sub
}

// Subscribe returns a channel that receives every subsequent event
// (best effort: events are dropped rather than blocking producers when
// the buffer is full) and a cancel function that closes it. Callers
// that need overflow accounting use NewSubscriber directly.
func (l *Log) Subscribe(buffer int) (<-chan Event, func()) {
	sub := l.NewSubscriber(buffer)
	return sub.C(), sub.Cancel
}

// Stats is a point-in-time summary of the log's activity.
type Stats struct {
	Appended    uint64 // events ever appended
	Retained    int    // events currently in the ring
	Subscribers int    // live subscribers
	Dropped     uint64 // fan-out drops across all subscribers, ever
}

// Stats returns the log's counters. Dropped is cumulative and includes
// drops for subscribers that have since cancelled.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appended:    l.total,
		Retained:    l.count,
		Subscribers: len(l.subs),
		Dropped:     l.dropped,
	}
}

// Dump writes the retained events to w, oldest first.
func (l *Log) Dump(w io.Writer) error {
	for _, e := range l.Snapshot() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
