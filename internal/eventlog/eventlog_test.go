package eventlog

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendAndSnapshot(t *testing.T) {
	l := New(16)
	for i := 0; i < 3; i++ {
		l.Appendf(1, "update.delay", "k", "delta=%d", -i)
	}
	snap := l.Snapshot()
	if len(snap) != 3 || l.Len() != 3 || l.Total() != 3 {
		t.Fatalf("len=%d total=%d", l.Len(), l.Total())
	}
	if snap[0].Detail != "delta=0" || snap[2].Detail != "delta=-2" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if snap[0].Time.IsZero() {
		t.Fatal("timestamp not stamped")
	}
}

func TestRingEviction(t *testing.T) {
	l := New(16)
	for i := 0; i < 40; i++ {
		l.Appendf(0, "e", "k", "%d", i)
	}
	snap := l.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("retained %d", len(snap))
	}
	if snap[0].Detail != "24" || snap[15].Detail != "39" {
		t.Fatalf("window = %s..%s", snap[0].Detail, snap[15].Detail)
	}
	if l.Total() != 40 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestMinimumCapacity(t *testing.T) {
	l := New(1)
	for i := 0; i < 20; i++ {
		l.Appendf(0, "e", "", "%d", i)
	}
	if l.Len() != 16 {
		t.Fatalf("len = %d, want clamped capacity 16", l.Len())
	}
}

func TestSubscribeReceivesAndCancels(t *testing.T) {
	l := New(16)
	ch, cancel := l.Subscribe(8)
	l.Appendf(2, "av.grant", "k", "n=30")
	select {
	case e := <-ch:
		if e.Type != "av.grant" || e.Site != 2 {
			t.Fatalf("event = %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber got nothing")
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed by cancel")
	}
	cancel() // double cancel must not panic
	l.Appendf(2, "e", "", "after cancel")
}

func TestSlowSubscriberDoesNotBlock(t *testing.T) {
	l := New(16)
	_, cancel := l.Subscribe(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			l.Appendf(0, "e", "", "%d", i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("append blocked on a full subscriber")
	}
}

func TestSlowSubscriberDropsAreCounted(t *testing.T) {
	l := New(16)
	slow := l.NewSubscriber(1)
	defer slow.Cancel()
	fast := l.NewSubscriber(128)
	defer fast.Cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			l.Appendf(0, "e", "", "%d", i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("append blocked on a full subscriber")
	}
	// The slow subscriber's buffer holds 1: 99 events had nowhere to go.
	if got := slow.Dropped(); got != 99 {
		t.Fatalf("slow.Dropped() = %d, want 99", got)
	}
	if got := fast.Dropped(); got != 0 {
		t.Fatalf("fast.Dropped() = %d, want 0", got)
	}
	st := l.Stats()
	if st.Appended != 100 || st.Subscribers != 2 || st.Dropped != 99 {
		t.Fatalf("stats = %+v", st)
	}
	// Cancelling the slow subscriber keeps its drops in the aggregate.
	slow.Cancel()
	slow.Cancel() // idempotent
	if st := l.Stats(); st.Subscribers != 1 || st.Dropped != 99 {
		t.Fatalf("stats after cancel = %+v", st)
	}
}

func TestSubscriberReceivesLSNAndPayload(t *testing.T) {
	l := New(16)
	sub := l.NewSubscriber(4)
	defer sub.Cancel()
	l.Append(Event{Site: 2, Type: "apply", LSN: 7, Payload: []int{1, 2}})
	select {
	case e := <-sub.C():
		if e.LSN != 7 {
			t.Fatalf("LSN = %d, want 7", e.LSN)
		}
		if p, ok := e.Payload.([]int); !ok || len(p) != 2 {
			t.Fatalf("payload = %#v", e.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("event not delivered")
	}
}

func TestDumpFormat(t *testing.T) {
	l := New(16)
	l.Append(Event{Site: 3, Type: "iu.prepare", Key: "nonreg", Detail: "txn=9"})
	var b strings.Builder
	if err := l.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"site=3", "iu.prepare", "key=nonreg", "txn=9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump %q missing %q", out, want)
		}
	}
}

func TestConcurrentAppendAndSnapshot(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Appendf(0, "e", "", "x")
				_ = l.Snapshot()
			}
		}()
	}
	wg.Wait()
	if l.Total() != 2000 {
		t.Fatalf("total = %d", l.Total())
	}
}
