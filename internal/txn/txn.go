// Package txn provides strict two-phase-locking transactions over a
// site's storage engine. A transaction buffers its writes and applies
// them as one atomic storage batch at commit; abort simply discards the
// buffer. Locks are acquired as operations are issued (growing phase)
// and released only at commit or abort (strict 2PL), which is what the
// Immediate-Update participants need to hold a prepared update across
// the two message phases.
package txn

import (
	"context"
	"errors"
	"sync/atomic"

	"avdb/internal/lockmgr"
	"avdb/internal/storage"
)

// Transaction errors.
var (
	ErrDone = errors.New("txn: transaction already committed or aborted")
)

// Manager creates transactions bound to one engine and one lock table.
type Manager struct {
	eng   *storage.Engine
	locks *lockmgr.Manager
	next  atomic.Uint64
}

// NewManager builds a Manager over eng with its own lock table.
func NewManager(eng *storage.Engine, lockOpts lockmgr.Options) *Manager {
	return &Manager{eng: eng, locks: lockmgr.New(lockOpts)}
}

// Engine exposes the underlying engine (for non-transactional reads such
// as replica maintenance, which tolerates them by design).
func (m *Manager) Engine() *storage.Engine { return m.eng }

// Locks exposes the lock manager (shared with 2PC participants so their
// prepared locks conflict with local transactions).
func (m *Manager) Locks() *lockmgr.Manager { return m.locks }

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	return &Txn{
		id: lockmgr.TxnID(m.next.Add(1)),
		m:  m,
	}
}

// pendingKey accumulates a transaction's buffered effect on one key.
type pendingKey struct {
	key     string
	hasPut  bool
	rec     storage.Record
	deleted bool
	delta   int64
}

// Txn is a single transaction. A Txn is not safe for concurrent use by
// multiple goroutines (like database handles everywhere); concurrency
// comes from running many transactions.
//
// The pending buffer is a small slice scanned linearly: transactions
// touch a handful of keys, and the slice keeps Begin allocation-free
// where a map would cost an allocation per transaction on the
// zero-communication fast path.
type Txn struct {
	id      lockmgr.TxnID
	m       *Manager
	writes  []storage.Op
	pending []pendingKey
	done    bool
}

// ID returns the transaction's lock-owner identity.
func (t *Txn) ID() lockmgr.TxnID { return t.id }

// Get returns key's record as this transaction sees it (its own buffered
// writes overlay the stored state). It takes a shared lock.
func (t *Txn) Get(ctx context.Context, key string) (storage.Record, error) {
	if t.done {
		return storage.Record{}, ErrDone
	}
	if err := t.m.locks.Acquire(ctx, t.id, key, lockmgr.Shared); err != nil {
		return storage.Record{}, err
	}
	return t.view(key)
}

// find returns the pending entry for key, nil if none. The pointer is
// valid only until the next append to t.pending.
func (t *Txn) find(key string) *pendingKey {
	for i := range t.pending {
		if t.pending[i].key == key {
			return &t.pending[i]
		}
	}
	return nil
}

// view merges stored state with the pending buffer for key.
func (t *Txn) view(key string) (storage.Record, error) {
	p := t.find(key)
	if p != nil && p.deleted {
		return storage.Record{}, storage.ErrNotFound
	}
	var rec storage.Record
	if p != nil && p.hasPut {
		rec = p.rec
	} else {
		var err error
		rec, err = t.m.eng.Get(key)
		if err != nil {
			return storage.Record{}, err
		}
	}
	if p != nil {
		rec.Amount += p.delta
	}
	return rec, nil
}

// ensure returns (creating) the pending entry for key. The pointer is
// valid only until the next append to t.pending.
func (t *Txn) ensure(key string) *pendingKey {
	if p := t.find(key); p != nil {
		return p
	}
	t.pending = append(t.pending, pendingKey{key: key})
	return &t.pending[len(t.pending)-1]
}

// Put buffers an insert/replace of rec under an exclusive lock.
func (t *Txn) Put(ctx context.Context, rec storage.Record) error {
	if t.done {
		return ErrDone
	}
	if err := t.m.locks.Acquire(ctx, t.id, rec.Key, lockmgr.Exclusive); err != nil {
		return err
	}
	t.writes = append(t.writes, storage.PutOp(rec))
	p := t.ensure(rec.Key)
	p.hasPut, p.rec, p.deleted, p.delta = true, rec, false, 0
	return nil
}

// Delete buffers removal of key under an exclusive lock.
func (t *Txn) Delete(ctx context.Context, key string) error {
	if t.done {
		return ErrDone
	}
	if err := t.m.locks.Acquire(ctx, t.id, key, lockmgr.Exclusive); err != nil {
		return err
	}
	t.writes = append(t.writes, storage.DeleteOp(key))
	p := t.ensure(key)
	p.hasPut, p.deleted, p.delta = false, true, 0
	return nil
}

// ApplyDelta buffers an addition to key's Amount under an exclusive lock
// and returns the amount as it will be after commit. The key must exist
// (in storage or earlier in this transaction).
func (t *Txn) ApplyDelta(ctx context.Context, key string, delta int64) (int64, error) {
	if t.done {
		return 0, ErrDone
	}
	if err := t.m.locks.Acquire(ctx, t.id, key, lockmgr.Exclusive); err != nil {
		return 0, err
	}
	cur, err := t.view(key)
	if err != nil {
		return 0, err
	}
	t.writes = append(t.writes, storage.DeltaOp(key, delta))
	t.ensure(key).delta += delta
	return cur.Amount + delta, nil
}

// PutMeta buffers a metadata write (see storage.MetaPrefix). Metadata
// rows are internal bookkeeping (replication logs and watermarks); they
// take no locks — their writers serialize among themselves — but they
// commit atomically with the transaction's data writes, which is the
// point: a replicated delta and its log/watermark row land together.
func (t *Txn) PutMeta(key string, value []byte) error {
	if t.done {
		return ErrDone
	}
	t.writes = append(t.writes, storage.MetaPutOp(key, value))
	return nil
}

// DeleteMeta buffers a metadata deletion.
func (t *Txn) DeleteMeta(key string) error {
	if t.done {
		return ErrDone
	}
	t.writes = append(t.writes, storage.MetaDeleteOp(key))
	return nil
}

// Commit atomically applies the buffered writes and releases all locks.
func (t *Txn) Commit() error {
	if t.done {
		return ErrDone
	}
	t.done = true
	defer t.m.locks.ReleaseAll(t.id)
	if len(t.writes) == 0 {
		return nil
	}
	return t.m.eng.Apply(t.writes...)
}

// CommitAsync applies the buffered writes and releases all locks like
// Commit, but returns before the durability wait: the returned function
// blocks until the commit's WAL record is durable. The transaction's
// effects are visible as soon as CommitAsync returns (they were visible
// the moment the batch applied, exactly as with Commit — the engine
// never hid them behind the fsync); only the acknowledgement must be
// withheld until the wait resolves. This is how the 2PC coordinator
// pipelines commits across epoch boundaries.
func (t *Txn) CommitAsync() (wait func() error, err error) {
	if t.done {
		return nil, ErrDone
	}
	t.done = true
	defer t.m.locks.ReleaseAll(t.id)
	if len(t.writes) == 0 {
		return func() error { return nil }, nil
	}
	return t.m.eng.ApplyAsync(t.writes...)
}

// Abort discards the buffered writes and releases all locks. Abort on a
// finished transaction is a no-op, so `defer tx.Abort()` is safe.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.m.locks.ReleaseAll(t.id)
}
