package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"avdb/internal/lockmgr"
	"avdb/internal/storage"
)

func newMgr(t *testing.T) *Manager {
	t.Helper()
	eng, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return NewManager(eng, lockmgr.Options{WaitTimeout: 200 * time.Millisecond})
}

func bg() context.Context { return context.Background() }

func TestCommitAppliesWrites(t *testing.T) {
	m := newMgr(t)
	tx := m.Begin()
	if err := tx.Put(bg(), storage.Record{Key: "p", Amount: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ApplyDelta(bg(), "p", -40); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := m.Engine().Amount("p"); n != 60 {
		t.Fatalf("amount = %d, want 60", n)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := newMgr(t)
	m.Engine().Put(storage.Record{Key: "p", Amount: 100})
	tx := m.Begin()
	if _, err := tx.ApplyDelta(bg(), "p", -99); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if n, _ := m.Engine().Amount("p"); n != 100 {
		t.Fatalf("abort leaked writes: amount = %d", n)
	}
	// Locks must be free.
	tx2 := m.Begin()
	if _, err := tx2.ApplyDelta(bg(), "p", -1); err != nil {
		t.Fatalf("lock not released by abort: %v", err)
	}
	tx2.Commit()
}

func TestReadYourOwnWrites(t *testing.T) {
	m := newMgr(t)
	m.Engine().Put(storage.Record{Key: "p", Amount: 10})
	tx := m.Begin()
	defer tx.Abort()
	if _, err := tx.ApplyDelta(bg(), "p", 5); err != nil {
		t.Fatal(err)
	}
	rec, err := tx.Get(bg(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Amount != 15 {
		t.Fatalf("txn sees %d, want 15 (own delta)", rec.Amount)
	}
	// Other state unaffected until commit.
	if n, _ := m.Engine().Amount("p"); n != 10 {
		t.Fatalf("uncommitted delta visible: %d", n)
	}
}

func TestPutThenDeltaThenGet(t *testing.T) {
	m := newMgr(t)
	tx := m.Begin()
	defer tx.Abort()
	tx.Put(bg(), storage.Record{Key: "new", Amount: 50, Name: "N"})
	n, err := tx.ApplyDelta(bg(), "new", 25)
	if err != nil {
		t.Fatal(err)
	}
	if n != 75 {
		t.Fatalf("projected = %d, want 75", n)
	}
	rec, _ := tx.Get(bg(), "new")
	if rec.Amount != 75 || rec.Name != "N" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestDeleteVisibleInTxn(t *testing.T) {
	m := newMgr(t)
	m.Engine().Put(storage.Record{Key: "p", Amount: 1})
	tx := m.Begin()
	defer tx.Abort()
	tx.Delete(bg(), "p")
	if _, err := tx.Get(bg(), "p"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("deleted key visible: %v", err)
	}
	if _, err := tx.ApplyDelta(bg(), "p", 1); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("delta to deleted key: %v", err)
	}
}

func TestDeltaToMissingKeyFails(t *testing.T) {
	m := newMgr(t)
	tx := m.Begin()
	defer tx.Abort()
	if _, err := tx.ApplyDelta(bg(), "ghost", 1); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteConflictBlocks(t *testing.T) {
	m := newMgr(t)
	m.Engine().Put(storage.Record{Key: "p", Amount: 10})
	tx1 := m.Begin()
	if _, err := tx1.ApplyDelta(bg(), "p", -1); err != nil {
		t.Fatal(err)
	}
	tx2 := m.Begin()
	if _, err := tx2.ApplyDelta(bg(), "p", -1); !errors.Is(err, lockmgr.ErrTimeout) {
		t.Fatalf("concurrent writer: %v, want lock timeout", err)
	}
	tx1.Commit()
	tx3 := m.Begin()
	if _, err := tx3.ApplyDelta(bg(), "p", -1); err != nil {
		t.Fatalf("after commit: %v", err)
	}
	tx3.Commit()
	if n, _ := m.Engine().Amount("p"); n != 8 {
		t.Fatalf("amount = %d, want 8", n)
	}
}

func TestReadersShareLock(t *testing.T) {
	m := newMgr(t)
	m.Engine().Put(storage.Record{Key: "p", Amount: 10})
	tx1 := m.Begin()
	defer tx1.Abort()
	tx2 := m.Begin()
	defer tx2.Abort()
	if _, err := tx1.Get(bg(), "p"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Get(bg(), "p"); err != nil {
		t.Fatalf("second reader blocked: %v", err)
	}
}

func TestFinishedTxnRejectsOps(t *testing.T) {
	m := newMgr(t)
	tx := m.Begin()
	tx.Commit()
	if err := tx.Put(bg(), storage.Record{Key: "x"}); !errors.Is(err, ErrDone) {
		t.Fatalf("Put after commit: %v", err)
	}
	if _, err := tx.Get(bg(), "x"); !errors.Is(err, ErrDone) {
		t.Fatalf("Get after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Fatalf("double commit: %v", err)
	}
	tx.Abort() // no-op, must not panic
}

func TestConcurrentIncrementsSerialize(t *testing.T) {
	m := newMgr(t)
	m.Engine().Put(storage.Record{Key: "ctr", Amount: 0})
	var wg sync.WaitGroup
	const workers, each = 8, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				for {
					tx := m.Begin()
					ctx, cancel := context.WithTimeout(bg(), 2*time.Second)
					_, err := tx.ApplyDelta(ctx, "ctr", 1)
					cancel()
					if err != nil {
						tx.Abort()
						continue // lock timeout under contention: retry
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := m.Engine().Amount("ctr"); n != workers*each {
		t.Fatalf("counter = %d, want %d", n, workers*each)
	}
}

func TestDeadlockVictimCanRetry(t *testing.T) {
	m := newMgr(t)
	m.Engine().Put(storage.Record{Key: "a", Amount: 0})
	m.Engine().Put(storage.Record{Key: "b", Amount: 0})
	tx1 := m.Begin()
	tx2 := m.Begin()
	if _, err := tx1.ApplyDelta(bg(), "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.ApplyDelta(bg(), "b", 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tx1.ApplyDelta(bg(), "b", 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_, err := tx2.ApplyDelta(bg(), "a", 1)
	if !errors.Is(err, lockmgr.ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	tx2.Abort()
	if err := <-done; err != nil {
		t.Fatalf("survivor errored: %v", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if na, _ := m.Engine().Amount("a"); na != 1 {
		t.Fatalf("a = %d", na)
	}
	if nb, _ := m.Engine().Amount("b"); nb != 1 {
		t.Fatalf("b = %d", nb)
	}
}

func TestManyKeysOneTxn(t *testing.T) {
	m := newMgr(t)
	tx := m.Begin()
	for i := 0; i < 50; i++ {
		if err := tx.Put(bg(), storage.Record{Key: fmt.Sprintf("k%02d", i), Amount: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Engine().Len() != 50 {
		t.Fatalf("Len = %d", m.Engine().Len())
	}
}

func BenchmarkTxnDeltaCommit(b *testing.B) {
	eng, _ := storage.Open(storage.Options{})
	defer eng.Close()
	m := NewManager(eng, lockmgr.Options{})
	eng.Put(storage.Record{Key: "k", Amount: 0})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := m.Begin()
		if _, err := tx.ApplyDelta(ctx, "k", 1); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
