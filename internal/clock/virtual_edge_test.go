package clock

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestVirtualEdgeCases drives the virtual clock through the awkward
// corners the simulator depends on: timers created while an Advance is
// in flight, zero- and negative-duration After, and many concurrent
// Advance callers.
func TestVirtualEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, v *Virtual)
	}{
		{
			name: "timer scheduled during Advance fires on a later Advance",
			run: func(t *testing.T, v *Virtual) {
				first := v.After(10 * time.Millisecond)
				second := make(chan (<-chan time.Time), 1)
				done := make(chan struct{})
				go func() {
					defer close(done)
					<-first
					// Scheduled from inside the firing of the first
					// timer, i.e. concurrently with Advance.
					second <- v.After(10 * time.Millisecond)
				}()
				v.Advance(10 * time.Millisecond)
				<-done
				ch := <-second
				select {
				case <-ch:
					t.Fatal("second timer fired before its deadline")
				default:
				}
				v.Advance(10 * time.Millisecond)
				select {
				case <-ch:
				case <-time.After(time.Second):
					t.Fatal("second timer never fired")
				}
			},
		},
		{
			name: "zero duration After fires immediately without Advance",
			run: func(t *testing.T, v *Virtual) {
				before := v.Now()
				select {
				case at := <-v.After(0):
					if !at.Equal(before) {
						t.Fatalf("fired at %v, want %v", at, before)
					}
				default:
					t.Fatal("After(0) did not fire immediately")
				}
				if v.Pending() != 0 {
					t.Fatalf("Pending = %d, want 0", v.Pending())
				}
			},
		},
		{
			name: "negative duration After fires immediately",
			run: func(t *testing.T, v *Virtual) {
				select {
				case <-v.After(-time.Second):
				default:
					t.Fatal("After(-1s) did not fire immediately")
				}
			},
		},
		{
			name: "concurrent Advance callers fire every timer exactly once",
			run: func(t *testing.T, v *Virtual) {
				const timers = 32
				chans := make([]<-chan time.Time, timers)
				for i := range chans {
					chans[i] = v.After(time.Duration(i+1) * time.Millisecond)
				}
				var wg sync.WaitGroup
				for i := 0; i < 8; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						v.Advance(5 * time.Millisecond)
					}()
				}
				wg.Wait()
				// 8 × 5ms = 40ms total: every timer is due.
				for i, ch := range chans {
					select {
					case <-ch:
					case <-time.After(time.Second):
						t.Fatalf("timer %d never fired", i)
					}
					select {
					case <-ch:
						t.Fatalf("timer %d fired twice", i)
					default:
					}
				}
				if v.Pending() != 0 {
					t.Fatalf("Pending = %d, want 0", v.Pending())
				}
			},
		},
		{
			name: "Advance by zero fires timers due exactly now",
			run: func(t *testing.T, v *Virtual) {
				ch := v.After(5 * time.Millisecond)
				v.Advance(5 * time.Millisecond)
				select {
				case <-ch:
				default:
					t.Fatal("timer due exactly at the new now did not fire")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, NewVirtual(time.Unix(0, 0)))
		})
	}
}

func TestVirtualAdvanceToNext(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	if _, ok := v.AdvanceToNext(); ok {
		t.Fatal("AdvanceToNext with no timers reported ok")
	}
	a := v.After(30 * time.Millisecond)
	b := v.After(10 * time.Millisecond)
	c := v.After(10 * time.Millisecond)
	now, ok := v.AdvanceToNext()
	if !ok {
		t.Fatal("AdvanceToNext found no timer")
	}
	if want := time.Unix(0, 0).Add(10 * time.Millisecond); !now.Equal(want) {
		t.Fatalf("advanced to %v, want %v", now, want)
	}
	for name, ch := range map[string]<-chan time.Time{"b": b, "c": c} {
		select {
		case <-ch:
		default:
			t.Fatalf("timer %s due at the earliest deadline did not fire", name)
		}
	}
	select {
	case <-a:
		t.Fatal("later timer fired early")
	default:
	}
	if now, ok = v.AdvanceToNext(); !ok || !now.Equal(time.Unix(0, 0).Add(30*time.Millisecond)) {
		t.Fatalf("second AdvanceToNext = %v, %v", now, ok)
	}
	select {
	case <-a:
	default:
		t.Fatal("remaining timer did not fire")
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	tm := NewTimer(v, 10*time.Millisecond)
	if v.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", v.Pending())
	}
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer reported false")
	}
	if v.Pending() != 0 {
		t.Fatalf("Pending after Stop = %d, want 0", v.Pending())
	}
	if _, ok := v.AdvanceToNext(); ok {
		t.Fatal("stopped timer still visible to AdvanceToNext")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
}

func TestWithTimeoutVirtual(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ctx, cancel := WithTimeout(context.Background(), v, 50*time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
		t.Fatal("context done before the virtual deadline")
	default:
	}
	v.Advance(50 * time.Millisecond)
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("context never expired after Advance")
	}
	if !IsTimeout(ctx) {
		t.Fatalf("IsTimeout = false after expiry, cause %v", context.Cause(ctx))
	}

	// Cancellation before expiry must not read as a timeout and must
	// release the pending virtual timer.
	ctx2, cancel2 := WithTimeout(context.Background(), v, time.Hour)
	cancel2()
	<-ctx2.Done()
	if IsTimeout(ctx2) {
		t.Fatal("cancelled context reported as timeout")
	}
	deadline := time.Now().Add(time.Second)
	for v.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled WithTimeout left %d pending timers", v.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWithTimeoutReal(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), Real{}, time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("real-clock timeout never expired")
	}
	if !IsTimeout(ctx) {
		t.Fatal("IsTimeout = false for an expired real-clock context")
	}
}
