// Package clock abstracts time for avdb. Production code uses the real
// wall clock; tests and deterministic experiments use a manually advanced
// virtual clock so that timeouts and latency models never make a test
// flaky or slow.
package clock

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout avdb.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives the (then-current) time once
	// d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock. Time only moves when Advance is
// called; timers created with After fire during the Advance that passes
// their deadline. Virtual is safe for concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers []*vtimer
}

type vtimer struct {
	at time.Time
	ch chan time.Time
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity 1 so firing
// never blocks Advance.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &vtimer{at: v.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- v.now
		return t.ch
	}
	v.timers = append(v.timers, t)
	return t.ch
}

// Sleep on a virtual clock blocks until some other goroutine advances the
// clock past the deadline. Use with care in tests.
func (v *Virtual) Sleep(d time.Duration) { <-v.After(d) }

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.now = v.now.Add(d)
	now := v.now
	var due, rest []*vtimer
	for _, t := range v.timers {
		if !t.at.After(now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	v.timers = rest
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	v.mu.Unlock()
	for _, t := range due {
		t.ch <- now
	}
}

// Pending reports how many timers have not yet fired.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// NextDeadline returns the earliest pending timer deadline, if any.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	earliest := v.timers[0].at
	for _, t := range v.timers[1:] {
		if t.at.Before(earliest) {
			earliest = t.at
		}
	}
	return earliest, true
}

// AdvanceToNext jumps the clock to the earliest pending timer deadline
// and fires every timer due at that instant, in deadline order. It
// returns the new time and true, or the unchanged time and false when no
// timer is pending. This is the primitive the deterministic simulator
// uses: virtual time only ever moves to the next scheduled event.
func (v *Virtual) AdvanceToNext() (time.Time, bool) {
	v.mu.Lock()
	if len(v.timers) == 0 {
		now := v.now
		v.mu.Unlock()
		return now, false
	}
	earliest := v.timers[0].at
	for _, t := range v.timers[1:] {
		if t.at.Before(earliest) {
			earliest = t.at
		}
	}
	if earliest.After(v.now) {
		v.now = earliest
	}
	now := v.now
	var due, rest []*vtimer
	for _, t := range v.timers {
		if !t.at.After(now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	v.timers = rest
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	v.mu.Unlock()
	for _, t := range due {
		t.ch <- now
	}
	return now, true
}

func (v *Virtual) newTimer(d time.Duration) *Timer {
	v.mu.Lock()
	t := &vtimer{at: v.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- v.now
		v.mu.Unlock()
		return &Timer{C: t.ch, stop: func() bool { return false }}
	}
	v.timers = append(v.timers, t)
	v.mu.Unlock()
	return &Timer{C: t.ch, stop: func() bool { return v.removeTimer(t) }}
}

func (v *Virtual) removeTimer(t *vtimer) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, x := range v.timers {
		if x == t {
			v.timers = append(v.timers[:i], v.timers[i+1:]...)
			return true
		}
	}
	return false
}

// Timer is a stoppable one-shot timer bound to a Clock. Unlike After,
// stopping a Timer removes it from a Virtual clock's pending set, which
// keeps AdvanceToNext from wandering to deadlines nobody is waiting on.
type Timer struct {
	// C receives the clock's time once the timer fires.
	C    <-chan time.Time
	stop func() bool
}

// Stop cancels the timer. It reports whether the timer was still pending
// (false if it already fired or was stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	return t.stop()
}

// NewTimer returns a stoppable timer on clk. A nil clk uses the real
// clock.
func NewTimer(clk Clock, d time.Duration) *Timer {
	if v, ok := clk.(*Virtual); ok {
		return v.newTimer(d)
	}
	rt := time.NewTimer(d)
	return &Timer{C: rt.C, stop: rt.Stop}
}

// WithTimeout derives a context that is cancelled once d elapses on clk.
// On the real clock it is exactly context.WithTimeout. On a virtual
// clock the deadline is a virtual timer, and expiry is reported through
// the context cause: use IsTimeout (or context.Cause) rather than
// ctx.Err() to distinguish expiry from cancellation.
func WithTimeout(parent context.Context, clk Clock, d time.Duration) (context.Context, context.CancelFunc) {
	if clk == nil {
		clk = Real{}
	}
	if _, ok := clk.(Real); ok {
		return context.WithTimeout(parent, d)
	}
	ctx, cancel := context.WithCancelCause(parent)
	t := NewTimer(clk, d)
	go func() {
		defer t.Stop()
		select {
		case <-t.C:
			cancel(context.DeadlineExceeded)
		case <-ctx.Done():
		}
	}()
	// The returned cancel stops the timer synchronously (not via the
	// watcher goroutine) so that the moment a caller is done, no timer of
	// its remains pending — the simulator relies on pending virtual
	// timers all being live.
	return ctx, func() { t.Stop(); cancel(context.Canceled) }
}

// IsTimeout reports whether ctx ended because a deadline elapsed, either
// a native context deadline or a virtual-clock deadline installed by
// WithTimeout.
func IsTimeout(ctx context.Context) bool {
	if ctx.Err() == context.DeadlineExceeded {
		return true
	}
	return context.Cause(ctx) == context.DeadlineExceeded
}
