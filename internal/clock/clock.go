// Package clock abstracts time for avdb. Production code uses the real
// wall clock; tests and deterministic experiments use a manually advanced
// virtual clock so that timeouts and latency models never make a test
// flaky or slow.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout avdb.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives the (then-current) time once
	// d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock. Time only moves when Advance is
// called; timers created with After fire during the Advance that passes
// their deadline. Virtual is safe for concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers []*vtimer
}

type vtimer struct {
	at time.Time
	ch chan time.Time
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity 1 so firing
// never blocks Advance.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &vtimer{at: v.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- v.now
		return t.ch
	}
	v.timers = append(v.timers, t)
	return t.ch
}

// Sleep on a virtual clock blocks until some other goroutine advances the
// clock past the deadline. Use with care in tests.
func (v *Virtual) Sleep(d time.Duration) { <-v.After(d) }

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.now = v.now.Add(d)
	now := v.now
	var due, rest []*vtimer
	for _, t := range v.timers {
		if !t.at.After(now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	v.timers = rest
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	v.mu.Unlock()
	for _, t := range due {
		t.ch <- now
	}
}

// Pending reports how many timers have not yet fired.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}
