package clock

import (
	"testing"
	"time"
)

func TestRealNowMonotonicEnough(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestVirtualNowFixedUntilAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", v.Now(), start)
	}
	v.Advance(3 * time.Second)
	if want := start.Add(3 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAfterFiresOnAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ch := v.After(10 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	v.Advance(5 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired too early")
	default:
	}
	v.Advance(5 * time.Millisecond)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("timer did not fire after deadline passed")
	}
	if v.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", v.Pending())
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestVirtualMultipleTimersFireInOrder(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	c1 := v.After(1 * time.Second)
	c2 := v.After(2 * time.Second)
	c3 := v.After(3 * time.Second)
	v.Advance(10 * time.Second)
	for i, ch := range []<-chan time.Time{c1, c2, c3} {
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Fatalf("timer %d did not fire", i+1)
		}
	}
}

func TestVirtualSleepUnblocksOnAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register its timer.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep never returned")
	}
}
