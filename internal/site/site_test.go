package site

import (
	"context"
	"strings"
	"testing"
	"time"

	"avdb/internal/clock"
	"avdb/internal/core"
	"avdb/internal/epoch"
	"avdb/internal/eventlog"
	"avdb/internal/metrics"
	"avdb/internal/storage"
	"avdb/internal/transport/memnet"
	"avdb/internal/wire"
)

func bg() context.Context { return context.Background() }

// openPair opens n sites on a fresh memnet with the shared catalog.
func openSites(t *testing.T, net *memnet.Net, n int, cfg Config) []*Site {
	t.Helper()
	sites := make([]*Site, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.ID = wire.SiteID(i)
		c.Base = 0
		c.Peers = nil
		for p := 0; p < n; p++ {
			if p != i {
				c.Peers = append(c.Peers, wire.SiteID(p))
			}
		}
		s, err := Open(c, net)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		if err := s.Seed(
			storage.Record{Key: "reg", Amount: 600, Class: storage.Regular},
			storage.Record{Key: "non", Amount: 90, Class: storage.NonRegular},
		); err != nil {
			t.Fatal(err)
		}
		if err := s.DefineAV("reg", 200); err != nil {
			t.Fatal(err)
		}
		sites[i] = s
	}
	return sites
}

func TestDispatchAllMessageKinds(t *testing.T) {
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 3, Config{})

	// AVRequest path: force a transfer.
	if res, err := sites[1].Update(bg(), "reg", -300); err != nil {
		t.Fatal(err)
	} else if res.Path != core.PathDelayTransfer {
		t.Fatalf("path = %v", res.Path)
	}
	// IUPrepare/IUDecision path.
	if res, err := sites[2].Update(bg(), "non", -10); err != nil {
		t.Fatal(err)
	} else if res.Path != core.PathImmediate {
		t.Fatalf("path = %v", res.Path)
	}
	// DeltaSync path.
	if err := sites[1].Flush(bg()); err != nil {
		t.Fatal(err)
	}
	if v, _ := sites[0].Read("reg"); v != 300 {
		t.Fatalf("site0 reg = %d", v)
	}
	// Read path.
	v, err := sites[0].ReadRemote(bg(), 2, "reg")
	if err != nil {
		t.Fatal(err)
	}
	if v != 300 {
		t.Fatalf("remote read = %d", v)
	}
	if _, err := sites[0].ReadRemote(bg(), 2, "ghost"); err == nil {
		t.Fatal("remote read of missing key succeeded")
	}
}

func TestBackgroundFlushLoop(t *testing.T) {
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 2, Config{FlushInterval: 20 * time.Millisecond})
	if _, err := sites[1].Update(bg(), "reg", -50); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if v, _ := sites[0].Read("reg"); v == 550 {
			break
		}
		if time.Now().After(deadline) {
			v, _ := sites[0].Read("reg")
			t.Fatalf("background flush never converged: site0 = %d", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBackgroundSweepLoop(t *testing.T) {
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 2, Config{SweepInterval: 20 * time.Millisecond})
	// Plant an orphaned prepared transaction with an immediate deadline.
	iu := sites[1].TwoPC()
	vote := iu.HandlePrepare(context.Background(), 0, &wire.IUPrepare{TxnID: 42, Coord: 0, Key: "non", Delta: -1})
	if !vote.OK {
		t.Fatalf("prepare: %s", vote.Reason)
	}
	// The default TTL is long; verify the loop runs by sweeping manually
	// through the public hook and confirming the loop also doesn't crash.
	if n := sites[1].Sweep(); n != 0 {
		t.Fatalf("early sweep removed %d", n)
	}
	time.Sleep(60 * time.Millisecond) // let the loop tick a few times
	if iu.PreparedCount() != 1 {
		t.Fatal("sweep loop removed a non-expired prepared txn")
	}
	iu.HandleDecision(context.Background(), 0, &wire.IUDecision{TxnID: 42, Commit: false})
}

func TestDurableSiteRecovers(t *testing.T) {
	dir := t.TempDir()
	net := memnet.New(memnet.Options{})
	cfg := Config{ID: 0, StorageDir: dir, NoSync: true}
	s, err := Open(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(storage.Record{Key: "k", Amount: 100, Class: storage.Regular}); err != nil {
		t.Fatal(err)
	}
	s.DefineAV("k", 100)
	if _, err := s.Update(bg(), "k", -40); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(cfg, memnet.New(memnet.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, _ := s2.Read("k"); v != 60 {
		t.Fatalf("recovered value = %d", v)
	}
}

func TestPersistentAVSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ID: 0, StorageDir: dir, PersistAV: true, NoSync: true}
	s, err := Open(cfg, memnet.New(memnet.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(storage.Record{Key: "k", Amount: 100, Class: storage.Regular}); err != nil {
		t.Fatal(err)
	}
	s.DefineAV("k", 100)
	if _, err := s.Update(bg(), "k", -40); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(cfg, memnet.New(memnet.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Stock AND AV both recovered; conservation preserved.
	if v, _ := s2.Read("k"); v != 60 {
		t.Fatalf("stock = %d", v)
	}
	if av := s2.AV().Avail("k"); av != 60 {
		t.Fatalf("AV = %d, want 60", av)
	}
	// Without PersistAV the table would be empty after restart and the
	// same key would fall through to the Immediate path.
	if !s2.AV().Defined("k") {
		t.Fatal("AV definition lost")
	}
	if _, err := s2.Update(bg(), "k", -60); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Update(bg(), "k", -1); err == nil {
		t.Fatal("overdraft allowed after recovery — AV minted somewhere")
	}
}

func TestPersistAVRequiresStorageDir(t *testing.T) {
	_, err := Open(Config{ID: 0, PersistAV: true}, memnet.New(memnet.Options{}))
	if err == nil {
		t.Fatal("PersistAV without StorageDir accepted")
	}
}

func TestUpdateUnknownKeyFails(t *testing.T) {
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 2, Config{PrepareTimeout: 200 * time.Millisecond})
	// No AV defined and key missing: the immediate path aborts.
	if _, err := sites[0].Update(bg(), "ghost", -1); err == nil {
		t.Fatal("update of unknown key succeeded")
	}
}

func TestAccessors(t *testing.T) {
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 2, Config{})
	s := sites[1]
	if s.ID() != 1 {
		t.Fatalf("ID = %d", s.ID())
	}
	if s.Engine() == nil || s.AV() == nil || s.Accelerator() == nil ||
		s.Replicator() == nil || s.TwoPC() == nil {
		t.Fatal("nil component accessor")
	}
	if !s.AV().Defined("reg") {
		t.Fatal("AV accessor detached")
	}
}

func TestSyncFailureReturnsCurrentAck(t *testing.T) {
	// When HandleSync errors (unknown key from a mis-seeded peer), the
	// site must still reply with its applied watermark, not drop the
	// request.
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 2, Config{})
	reply := sites[0].handle(context.Background(), 1, &wire.DeltaSync{Origin: 1, Deltas: []wire.Delta{
		{Seq: 1, Key: "not-seeded", Amount: -1},
	}})
	ack, ok := reply.(*wire.DeltaAck)
	if !ok {
		t.Fatalf("reply = %T", reply)
	}
	if ack.UpTo != 0 {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestUnknownMessageIgnored(t *testing.T) {
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 1, Config{})
	if reply := sites[0].handle(context.Background(), 0, &wire.CentralUpdate{Key: "x", Delta: 1}); reply != nil {
		t.Fatalf("baseline message answered by a site: %T", reply)
	}
}

func TestPullAndReadFresh(t *testing.T) {
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 3, Config{})
	// Site 1 sells locally; nobody flushes.
	if _, err := sites[1].Update(bg(), "reg", -120); err != nil {
		t.Fatal(err)
	}
	if v, _ := sites[0].Read("reg"); v != 600 {
		t.Fatalf("stale read should still be 600, got %d", v)
	}
	// A fresh read at site 0 pulls the delta in.
	v, err := sites[0].ReadFresh(bg(), "reg")
	if err != nil {
		t.Fatal(err)
	}
	if v != 480 {
		t.Fatalf("fresh read = %d, want 480", v)
	}
	// And the pulled ack drained site 1's backlog for site 0.
	net.Quiesce()
	deadline := time.Now().Add(2 * time.Second)
	for sites[1].Replicator().Lag(0) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lag = %d after pull ack", sites[1].Replicator().Lag(0))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadFreshDuringPartitionDegrades(t *testing.T) {
	net := memnet.New(memnet.Options{CallTimeout: 200 * time.Millisecond})
	sites := openSites(t, net, 3, Config{})
	sites[1].Update(bg(), "reg", -100)
	net.Isolate(0)
	// Pull skips the unreachable peers; the read is the local view.
	v, err := sites[0].ReadFresh(bg(), "reg")
	if err != nil {
		t.Fatal(err)
	}
	if v != 600 {
		t.Fatalf("isolated fresh read = %d, want local 600", v)
	}
}

func TestDurableReplicationAcrossRestart(t *testing.T) {
	// A durable site commits local delay updates, "crashes" before
	// flushing, restarts, and must still propagate them; meanwhile a
	// peer's lost ack causes a retransmission that must not double-apply.
	dirA := t.TempDir()
	net1 := memnet.New(memnet.Options{})
	cfgA := Config{ID: 0, Peers: []wire.SiteID{1}, StorageDir: dirA, NoSync: true}
	a, err := Open(cfgA, net1)
	if err != nil {
		t.Fatal(err)
	}
	a.Seed(storage.Record{Key: "k", Amount: 500, Class: storage.Regular})
	a.DefineAV("k", 500)
	if _, err := a.Update(bg(), "k", -200); err != nil {
		t.Fatal(err)
	}
	// Crash before any flush: the outbound log must survive.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	net2 := memnet.New(memnet.Options{})
	a2, err := Open(cfgA, net2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	cfgB := Config{ID: 1, Peers: []wire.SiteID{0}}
	b, err := Open(cfgB, net2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	b.Seed(storage.Record{Key: "k", Amount: 500, Class: storage.Regular})
	b.DefineAV("k", 0)

	if err := a2.Flush(bg()); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Read("k"); v != 300 {
		t.Fatalf("peer value = %d, want 300 (log lost in restart?)", v)
	}
	// Retransmission (e.g. after a lost ack) must be idempotent.
	if err := a2.Flush(bg()); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Read("k"); v != 300 {
		t.Fatalf("peer value = %d after reflush", v)
	}
}

func TestDurableReceiverRestartDedupesRetransmission(t *testing.T) {
	dirB := t.TempDir()
	net1 := memnet.New(memnet.Options{})
	a, err := Open(Config{ID: 0, Peers: []wire.SiteID{1}}, net1)
	if err != nil {
		t.Fatal(err)
	}
	a.Seed(storage.Record{Key: "k", Amount: 500, Class: storage.Regular})
	a.DefineAV("k", 500)
	cfgB := Config{ID: 1, Peers: []wire.SiteID{0}, StorageDir: dirB, NoSync: true}
	b, err := Open(cfgB, net1)
	if err != nil {
		t.Fatal(err)
	}
	b.Seed(storage.Record{Key: "k", Amount: 500, Class: storage.Regular})
	b.DefineAV("k", 0)

	if _, err := a.Update(bg(), "k", -100); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(bg()); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Read("k"); v != 400 {
		t.Fatalf("b = %d", v)
	}
	// Receiver restarts; sender "forgets" the ack (fresh volatile state)
	// and retransmits everything.
	b.Close()
	a.Close()
	net2 := memnet.New(memnet.Options{})
	a2, err := Open(Config{ID: 0, Peers: []wire.SiteID{1}}, net2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	a2.Seed(storage.Record{Key: "k", Amount: 500, Class: storage.Regular})
	a2.DefineAV("k", 400)
	if _, err := a2.Update(bg(), "k", -100); err != nil { // same seq 1 again
		t.Fatal(err)
	}
	b2, err := Open(cfgB, net2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })
	// b2's durable watermark says origin 0 is at seq 1 — but a2 is a
	// FRESH origin reusing seq 1 for a genuinely new delta. This is the
	// documented operational rule: volatile sites must not reuse an ID
	// against durable peers. Here we verify the watermark at least
	// prevents double-apply of the original delta.
	if v, _ := b2.Read("k"); v != 400 {
		t.Fatalf("b2 recovered = %d", v)
	}
	if got := b2.Replicator().AppliedFrom(0); got != 1 {
		t.Fatalf("durable watermark = %d", got)
	}
}

func TestEventLogCapturesProtocol(t *testing.T) {
	log := eventlog.New(256)
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 2, Config{Events: log})
	// A transfer-producing update generates: update event at site 1,
	// recv.av.request at site 0.
	if _, err := sites[1].Update(bg(), "reg", -300); err != nil {
		t.Fatal(err)
	}
	var sawUpdate, sawRecv bool
	for _, e := range log.Snapshot() {
		if e.Type == "update.delay-transfer" && e.Site == 1 && e.Key == "reg" {
			sawUpdate = true
		}
		if e.Type == "recv.av.request" && e.Site == 0 && e.Key == "reg" {
			sawRecv = true
		}
	}
	if !sawUpdate || !sawRecv {
		var b strings.Builder
		log.Dump(&b)
		t.Fatalf("missing events (update=%v recv=%v):\n%s", sawUpdate, sawRecv, b.String())
	}
	// Failed updates are also recorded.
	sites[1].Update(bg(), "reg", -100000)
	found := false
	for _, e := range log.Snapshot() {
		if e.Type == "update.failed" {
			found = true
		}
	}
	if !found {
		t.Fatal("failed update not logged")
	}
}

func TestMaintainCompactsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	net := memnet.New(memnet.Options{})
	cfgA := Config{ID: 0, Peers: []wire.SiteID{1}, StorageDir: dir, PersistAV: true, NoSync: true}
	a, err := Open(cfgA, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := Open(Config{ID: 1, Peers: []wire.SiteID{0}}, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	for _, s := range []*Site{a, b} {
		s.Seed(storage.Record{Key: "k", Amount: 1000, Class: storage.Regular})
	}
	a.DefineAV("k", 1000)
	b.DefineAV("k", 0)
	for i := 0; i < 20; i++ {
		if _, err := a.Update(bg(), "k", -5); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(bg()); err != nil {
		t.Fatal(err)
	}
	if err := a.Maintain(); err != nil {
		t.Fatal(err)
	}
	if a.Replicator().LogLen() != 0 {
		t.Fatalf("log not compacted: %d entries", a.Replicator().LogLen())
	}
	// State is fully intact after maintenance + restart.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(cfgA, memnet.New(memnet.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	if v, _ := a2.Read("k"); v != 900 {
		t.Fatalf("value after maintain+restart = %d", v)
	}
	if av := a2.AV().Avail("k"); av != 900 {
		t.Fatalf("AV after maintain+restart = %d", av)
	}
	if a2.Replicator().NextSeq() != 21 {
		t.Fatalf("NextSeq = %d, want 21", a2.Replicator().NextSeq())
	}
	// In-memory sites: Maintain is a harmless no-op.
	if err := b.Maintain(); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockDrivesFlushLoop(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	net := memnet.New(memnet.Options{})
	sites := openSites(t, net, 2, Config{FlushInterval: time.Minute, Clock: vc})
	if _, err := sites[1].Update(bg(), "reg", -50); err != nil {
		t.Fatal(err)
	}
	// Real time passes, virtual time does not: nothing flushes.
	time.Sleep(30 * time.Millisecond)
	if v, _ := sites[0].Read("reg"); v != 600 {
		t.Fatalf("flush fired without virtual time advancing: %d", v)
	}
	// Step the virtual clock; the loop runs exactly then. Wait for both
	// sites to arm their timers first (2 flush loops).
	deadline := time.Now().Add(2 * time.Second)
	for vc.Pending() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("flush loops never armed their timers")
		}
		time.Sleep(time.Millisecond)
	}
	vc.Advance(time.Minute)
	deadline = time.Now().Add(2 * time.Second)
	for {
		if v, _ := sites[0].Read("reg"); v == 550 {
			break
		}
		if time.Now().After(deadline) {
			v, _ := sites[0].Read("reg")
			t.Fatalf("virtual tick did not trigger flush: site0 = %d", v)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHeartbeatSuspectsDeadPeer(t *testing.T) {
	net := memnet.New(memnet.Options{CallTimeout: 50 * time.Millisecond})
	sites := openSites(t, net, 2, Config{})

	net.Block(0, 1)
	for i := 0; i < 3; i++ { // failure.FailureThreshold consecutive misses
		sites[0].Heartbeat(bg())
	}
	if !sites[0].Detector().Suspect(1) {
		t.Fatal("detector did not suspect unreachable peer after 3 missed heartbeats")
	}
	net.Unblock(0, 1)
	sites[0].Heartbeat(bg())
	if sites[0].Detector().Suspect(1) {
		t.Fatal("one successful heartbeat did not clear suspicion")
	}
}

func TestReopenReconcilesEscrowObligations(t *testing.T) {
	// An escrowed AV transfer leaves a durable settle obligation at the
	// requester and a durable escrow at the granter. Both sites restart
	// before settling; Reconcile after Reopen must resolve the transfer
	// and conserve the global allowable volume.
	dirA, dirB := t.TempDir(), t.TempDir()
	mk := func(id, peer wire.SiteID, dir string) Config {
		return Config{
			ID: id, Base: 0, Peers: []wire.SiteID{peer},
			StorageDir: dir, PersistAV: true, NoSync: true,
			EscrowTransfers: true,
		}
	}
	net1 := memnet.New(memnet.Options{})
	a, err := Open(mk(0, 1, dirA), net1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(mk(1, 0, dirB), net1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Site{a, b} {
		if err := s.Seed(storage.Record{Key: "k", Amount: 500, Class: storage.Regular}); err != nil {
			t.Fatal(err)
		}
	}
	a.DefineAV("k", 400)
	b.DefineAV("k", 0)

	if _, err := b.Update(bg(), "k", -100); err != nil {
		t.Fatal(err)
	}
	if got := len(b.Accelerator().Obligations()); got != 1 {
		t.Fatalf("requester obligations = %d, want 1 (settle pending)", got)
	}
	esc := a.AV().Escrowed("k")
	if esc <= 0 {
		t.Fatalf("granter escrow = %d, want > 0", esc)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	net2 := memnet.New(memnet.Options{})
	a2, err := Reopen(mk(0, 1, dirA), net2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	b2, err := Reopen(mk(1, 0, dirB), net2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })

	if got := a2.AV().Escrowed("k"); got != esc {
		t.Fatalf("escrow after restart = %d, want %d", got, esc)
	}
	if got := len(b2.Accelerator().Obligations()); got != 1 {
		t.Fatalf("obligations after restart = %d, want 1", got)
	}
	remaining, err := b2.Reconcile(bg())
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 0 {
		t.Fatalf("reconcile left %d obligations", remaining)
	}
	if got := a2.AV().Escrowed("k"); got != 0 {
		t.Fatalf("escrow after reconcile = %d", got)
	}
	// The update itself consumed 100 of the initial 400; settling the
	// escrow must neither mint nor lose anything beyond that.
	if sum := a2.AV().Total("k") + b2.AV().Total("k"); sum != 300 {
		t.Fatalf("global AV = %d, want 300 (escrow settle minted or lost volume)", sum)
	}
}

func TestReopenRequiresStorageDir(t *testing.T) {
	if _, err := Reopen(Config{ID: 0}, memnet.New(memnet.Options{})); err == nil {
		t.Fatal("Reopen without StorageDir succeeded")
	}
}

// TestEpochModeSiteEndToEnd runs a durable two-site cluster with
// epoch-based commit on everywhere: Delay Updates (decrements ride the
// AV journal's epochs), an Immediate Update (2PC votes and acks carry
// epoch numbers), a read-your-writes token satisfied off an
// epoch-released commit, and a restart that must recover every
// acknowledged effect.
func TestEpochModeSiteEndToEnd(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	st := &epoch.Stats{AckWait: metrics.NewHistogram()}
	net := memnet.New(memnet.Options{})
	open := func(id int, network *memnet.Net) *Site {
		c := Config{
			ID: wire.SiteID(id), Base: 0,
			StorageDir: dirs[id], PersistAV: true, NoSync: true,
			EpochInterval: 200 * time.Microsecond,
			EpochStats:    st,
			ReadPlane:     true,
		}
		for p := 0; p < 2; p++ {
			if p != id {
				c.Peers = append(c.Peers, wire.SiteID(p))
			}
		}
		s, err := Open(c, network)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sites := []*Site{open(0, net), open(1, net)}
	for _, s := range sites {
		if err := s.Seed(
			storage.Record{Key: "reg", Amount: 600, Class: storage.Regular},
			storage.Record{Key: "non", Amount: 90, Class: storage.NonRegular},
		); err != nil {
			t.Fatal(err)
		}
		if err := s.DefineAV("reg", 200); err != nil {
			t.Fatal(err)
		}
	}

	// Delay Update: the zero-communication decrement's ack rode an epoch.
	res, err := sites[1].Update(bg(), "reg", -40)
	if err != nil {
		t.Fatal(err)
	}
	if st.Commits.Load() == 0 || st.Epochs.Load() == 0 {
		t.Fatalf("no epoch activity after a durable update: %d commits / %d epochs",
			st.Commits.Load(), st.Epochs.Load())
	}
	if sites[1].Epochs() == nil {
		t.Fatal("Epochs() accessor nil with epoch commit on")
	}
	if sites[1].Epochs().Durable() == 0 {
		t.Fatal("no epoch durable after an acknowledged update")
	}

	// RYW: a token minted from the epoch-released commit is satisfiable
	// (epoch commit keeps the LSN sequence dense).
	ctx, cancel := context.WithTimeout(bg(), 5*time.Second)
	defer cancel()
	if err := sites[1].ReadPlane().WaitFor(ctx, sites[1].Token(res)); err != nil {
		t.Fatalf("RYW token not satisfied under epoch commit: %v", err)
	}
	if v, ok := sites[1].ReadPlane().Stock().Amount("reg"); !ok || v != 560 {
		t.Fatalf("read plane stock = %d/%v, want 560", v, ok)
	}

	// Immediate Update: 2PC across epoch-mode sites. Votes/acks carry
	// epoch numbers on the wire (optional trailing fields).
	if _, err := sites[1].Update(bg(), "non", -10); err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if v, _ := s.Read("non"); v != 80 {
			t.Fatalf("site %d: non = %d, want 80", s.ID(), v)
		}
	}

	if err := sites[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := sites[1].Close(); err != nil {
		t.Fatal(err)
	}

	// Restart site 1: every acknowledged effect must have survived.
	s2 := open(1, memnet.New(memnet.Options{}))
	defer s2.Close()
	if v, _ := s2.Read("reg"); v != 560 {
		t.Fatalf("recovered reg = %d, want 560", v)
	}
	if v, _ := s2.Read("non"); v != 80 {
		t.Fatalf("recovered non = %d, want 80", v)
	}
	if av := s2.AV().Avail("reg"); av != 160 {
		t.Fatalf("recovered AV = %d, want 160", av)
	}
}
