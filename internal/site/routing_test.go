package site

import (
	"fmt"
	"testing"

	"avdb/internal/partition"
	"avdb/internal/storage"
	"avdb/internal/transport/memnet"
	"avdb/internal/wire"
)

// A site holding a stale partition map forwards to a site that no
// longer hosts the key; the rejection carries the newer map, the
// sender adopts it and the retried update lands on the right replica.
func TestStaleMapRedirectAndRetry(t *testing.T) {
	mapOld, err := partition.New([]wire.SiteID{0, 1}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	mapNew, err := mapOld.WithSites([]wire.SiteID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}

	// A key that moved: owned by site 1 under the old map, by the
	// newcomer site 2 under the new one.
	key := ""
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("product-%04d", i)
		if mapOld.OwnerOf(k) == 1 && mapNew.OwnerOf(k) == 2 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no moved key found")
	}

	net := memnet.New(memnet.Options{})
	open := func(id wire.SiteID, pm *partition.Map) *Site {
		var peers []wire.SiteID
		for p := wire.SiteID(0); p < 3; p++ {
			if p != id {
				peers = append(peers, p)
			}
		}
		s, err := Open(Config{ID: id, Base: 0, Peers: peers, Partitions: pm}, net)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	origin := open(0, mapOld) // stale
	open(1, mapNew)           // old owner, current map
	owner := open(2, mapNew)  // new owner

	if err := owner.Seed(storage.Record{Key: key, Amount: 50, Class: storage.Regular}); err != nil {
		t.Fatal(err)
	}
	if err := owner.DefineAV(key, 50); err != nil {
		t.Fatal(err)
	}

	res, err := origin.Update(bg(), key, -3)
	if err != nil {
		t.Fatalf("routed update after redirect: %v", err)
	}
	if res.LSN == 0 {
		t.Fatalf("forwarded result carries no applied LSN (RYW token gap)")
	}
	if res.Site != 2 {
		t.Fatalf("forwarded result names site %d, want the serving replica 2", res.Site)
	}
	if got := origin.PartitionMap().Version(); got != mapNew.Version() {
		t.Fatalf("origin map version = %d, want %d (adopted)", got, mapNew.Version())
	}
	rs := origin.RouteStats()
	if rs.MapRefreshes != 1 {
		t.Fatalf("map refreshes = %d, want 1", rs.MapRefreshes)
	}
	if rs.Forwarded != 1 {
		t.Fatalf("forwarded = %d, want 1", rs.Forwarded)
	}
	if v, err := owner.Read(key); err != nil || v != 47 {
		t.Fatalf("owner value = %d, %v, want 47", v, err)
	}
	// The old owner must have rejected, not applied: it never stored
	// the key, so a read there fails.
	if rsOld := origin.RouteStats(); rsOld.Misroutes != 0 {
		t.Fatalf("origin counted misroutes: %+v", rsOld)
	}
}

// An origin whose stale map still agrees with the receiver about the
// key keeps working: version skew alone never fails an update, it just
// refreshes the map opportunistically.
func TestVersionSkewOnAgreeingRouteStillServes(t *testing.T) {
	mapOld, err := partition.New([]wire.SiteID{0, 1}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	mapNew, err := mapOld.WithSites([]wire.SiteID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// A key that did NOT move: owned by site 1 under both maps.
	key := ""
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("product-%04d", i)
		if mapOld.OwnerOf(k) == 1 && mapNew.OwnerOf(k) == 1 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no stable key found")
	}

	net := memnet.New(memnet.Options{})
	origin, err := Open(Config{ID: 0, Peers: []wire.SiteID{1, 2}, Partitions: mapOld}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	ownerSite, err := Open(Config{ID: 1, Peers: []wire.SiteID{0, 2}, Partitions: mapNew}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer ownerSite.Close()
	if err := ownerSite.Seed(storage.Record{Key: key, Amount: 50, Class: storage.Regular}); err != nil {
		t.Fatal(err)
	}
	if err := ownerSite.DefineAV(key, 50); err != nil {
		t.Fatal(err)
	}

	if _, err := origin.Update(bg(), key, -2); err != nil {
		t.Fatalf("update across version skew: %v", err)
	}
	if v, _ := ownerSite.Read(key); v != 48 {
		t.Fatalf("owner value = %d, want 48", v)
	}
	// The reply piggybacked the newer map; the origin adopted it.
	if got := origin.PartitionMap().Version(); got != mapNew.Version() {
		t.Fatalf("origin map version = %d, want %d", got, mapNew.Version())
	}
}
