// Package site assembles one complete avdb site (Fig. 2 of the paper):
// the local database engine with its transaction manager, the AV
// management table, the accelerator, the Immediate-Update (2PC) engine,
// the lazy replicator, and the network endpoint with its message
// dispatch. A process embedding a Site gets the paper's full node; a
// cluster of Sites on any transport is the paper's integrated system.
package site

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/av"
	"avdb/internal/avstore"
	"avdb/internal/clock"
	"avdb/internal/core"
	"avdb/internal/epoch"
	"avdb/internal/eventlog"
	"avdb/internal/failure"
	"avdb/internal/lockmgr"
	"avdb/internal/partition"
	"avdb/internal/readplane"
	"avdb/internal/replica"
	"avdb/internal/storage"
	"avdb/internal/strategy"
	"avdb/internal/trace"
	"avdb/internal/transport"
	"avdb/internal/twopc"
	"avdb/internal/txn"
	"avdb/internal/wal"
	"avdb/internal/wire"
)

// Config parameterizes a Site.
type Config struct {
	// ID is this site's identity; Base hosts the primary copy (the maker).
	ID, Base wire.SiteID
	// Peers lists every other site in the system.
	Peers []wire.SiteID
	// StorageDir is the data directory; empty runs in memory.
	StorageDir string
	// PersistAV journals the AV table under StorageDir/av so the site's
	// allowable volume survives restarts (requires StorageDir).
	PersistAV bool
	// NoSync disables WAL fsync (experiments).
	NoSync bool
	// WALMaxSyncDelay stalls each WAL group-commit leader to widen fsync
	// batches (0 = commit immediately; batching then comes only from
	// concurrency). Applies to both the storage WAL and the AV journal.
	WALMaxSyncDelay time.Duration
	// WALStats, when non-nil, aggregates fsync/group-commit counters
	// across the storage WAL and the AV journal (exported on /metrics by
	// avnode when the admin server is enabled).
	WALStats *wal.Stats
	// EpochInterval, when positive on a durable site, turns on
	// epoch-based commit: acknowledgements (storage Apply and AV journal
	// ops) ride epoch boundaries, one covering fsync per epoch, instead
	// of per-commit group commits. Zero keeps the per-commit path and
	// leaves outputs byte-identical to pre-epoch builds.
	EpochInterval time.Duration
	// EpochMaxCommits closes an epoch early at this many commits
	// (0 means epoch.DefaultMaxCommits; negative disables).
	EpochMaxCommits int
	// EpochAdaptive turns on the adaptive interval controller in both
	// epoch managers: the interval widens under load and collapses when
	// idle, clamped to [EpochMinInterval, EpochMaxInterval] (see
	// epoch.Options). Requires EpochInterval > 0.
	EpochAdaptive    bool
	EpochMinInterval time.Duration
	EpochMaxInterval time.Duration
	// EpochAlignFlush aligns replication flushes to epoch boundaries:
	// outbound delta windows are snapshotted when the durable epoch
	// advances (the epoch's covering fsync already made every entry in
	// the window durable) and the flush loop is kicked right after each
	// close, so one fsync covers both the ack batch and the replication
	// watermark advance. Requires EpochInterval > 0; off keeps flushing
	// on its own timer, windows uncapped.
	EpochAlignFlush bool
	// EpochStats, when non-nil, aggregates epoch counters across the
	// storage engine's and AV journal's managers.
	EpochStats *epoch.Stats
	// Policy is the AV selecting/deciding policy (default SODA99).
	Policy strategy.Policy
	// Passes bounds AV gathering passes per update.
	Passes int
	// Seed feeds policy randomness.
	Seed uint64
	// Demand optionally feeds a demand-aware deciding policy with the
	// site's own consumption stream.
	Demand core.DemandObserver
	// DisableGossip turns off AV-view piggybacking (ablation A7).
	DisableGossip bool
	// Events, when non-nil, receives structured protocol events (inbound
	// messages and update outcomes) for observability.
	Events *eventlog.Log
	// Tracer records distributed-tracing spans for this site's protocol
	// activity (nil disables tracing). Sites of one cluster may share a
	// tracer; spans carry the site ID.
	Tracer *trace.Tracer
	// Clock drives the background loops (default the real clock; tests
	// inject a clock.Virtual to step them deterministically).
	Clock clock.Clock
	// LockTimeout bounds local lock waits (default 2s).
	LockTimeout time.Duration
	// RequestTimeout bounds AV transfer calls.
	RequestTimeout time.Duration
	// PrepareTimeout bounds 2PC phases.
	PrepareTimeout time.Duration
	// FlushInterval, when > 0, starts a background loop that pushes the
	// replication backlog every interval. Zero leaves flushing to the
	// caller (deterministic experiments flush explicitly).
	FlushInterval time.Duration
	// SweepInterval, when > 0, starts a background loop that aborts
	// expired prepared 2PC transactions.
	SweepInterval time.Duration
	// HeartbeatInterval, when > 0, starts a background loop that pings
	// every peer and feeds the failure detector, and re-drives any
	// outstanding escrow obligations (crash recovery settles lazily).
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a peer may fail consecutively before the
	// detector suspects it even below the failure-count threshold
	// (default failure.DefaultSuspectAfter).
	SuspectAfter time.Duration
	// FlushPeerTimeout bounds each peer's exchange within one replication
	// flush so a single dead peer cannot stall the fan-out.
	FlushPeerTimeout time.Duration
	// FlushBackoff, when BaseDelay > 0, skips peers whose flushes keep
	// failing for an exponentially growing window (backlog is retained).
	FlushBackoff failure.Policy
	// EscrowTransfers makes remote AV grants escrowed two-phase transfers
	// that a crash can only shrink, never mint. Off by default; the
	// healthy-path experiments are byte-identical without it.
	EscrowTransfers bool
	// XferSalt, when non-zero, makes escrow transfer ids deterministic
	// instead of wall-clock seeded (see core.Config.XferSalt). It must
	// differ across restarts of the same site.
	XferSalt uint64
	// TxnIDEpoch distinguishes this incarnation of the site's 2PC engine
	// from previous ones, so a restarted coordinator never re-mints a
	// transaction id it already used (see twopc.Options.IDEpoch).
	TxnIDEpoch uint64
	// TxnObserver, when non-nil, receives every locally applied 2PC
	// outcome (see twopc.Options.Observer). The simulator's atomicity
	// oracle hangs off this.
	TxnObserver func(twopc.Outcome)
	// ReadPlane materializes the event-sourced read models (per-site
	// stock, cross-site global position, top-K hot keys) off the
	// storage apply stream, with read-your-writes session tokens. The
	// feed is a dedicated eventlog (not Events, which stays a pure
	// observability surface), so enabling it never perturbs recorded
	// protocol traces.
	ReadPlane bool
	// ReadPlaneTopK bounds the hot view (default 10).
	ReadPlaneTopK int
	// Partitions, when non-nil, shards the key space: this site hosts
	// (stores, anti-entropies, gossips, accounts AV for) only the
	// partitions the map assigns it, and forwards updates for foreign
	// keys to the owning replica set (see routing.go). Nil keeps full
	// replication — every legacy code path byte-identical.
	Partitions *partition.Map
	// UpdateObserver, when non-nil, fires exactly once per Delay Update
	// committed at THIS site — including updates that arrived routed
	// from another site. The simulator's per-partition conservation
	// oracle hangs off this: in a routed world the applying site, not
	// the origin, is the ground truth for what committed.
	UpdateObserver func(key string, delta int64)
}

// Site is one running node.
type Site struct {
	cfg   Config
	eng   *storage.Engine
	tm    *txn.Manager
	avt   core.AVTable
	avs   *avstore.Store // non-nil when PersistAV
	iu    *twopc.Engine
	repl  *replica.Replicator
	accel *core.Accelerator
	node  transport.Node
	det   *failure.Detector
	feed  *eventlog.Log    // apply stream feeding the read plane
	plane *readplane.Plane // nil unless cfg.ReadPlane

	// Partition routing state (nil/zero when partitioning is off). The
	// map pointer is atomic because routed replies can refresh it while
	// updates are in flight.
	pm             atomic.Pointer[partition.Map]
	routeForwarded atomic.Uint64
	routeServed    atomic.Uint64
	routeMisroutes atomic.Uint64
	routeRefreshes atomic.Uint64

	// flushKick, non-nil when EpochAlignFlush is on, wakes the flush
	// loop right after each durable-epoch advance (capacity 1; a
	// pending kick absorbs further closes).
	flushKick chan struct{}

	stop      chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup
}

// Open builds the site and registers it on the network.
func Open(cfg Config, network transport.Network) (*Site, error) {
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 2 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	s := &Site{
		cfg:  cfg,
		stop: make(chan struct{}),
	}
	stOpts := storage.Options{
		Dir:              cfg.StorageDir,
		NoSync:           cfg.NoSync,
		MaxSyncDelay:     cfg.WALMaxSyncDelay,
		Stats:            cfg.WALStats,
		EpochInterval:    cfg.EpochInterval,
		EpochMaxCommits:  cfg.EpochMaxCommits,
		EpochAdaptive:    cfg.EpochAdaptive,
		EpochMinInterval: cfg.EpochMinInterval,
		EpochMaxInterval: cfg.EpochMaxInterval,
		Clock:            cfg.Clock,
		EpochStats:       cfg.EpochStats,
	}
	if cfg.EpochAlignFlush && cfg.EpochInterval > 0 && cfg.StorageDir != "" {
		// Epoch-aligned replication: each durable-epoch advance snapshots
		// the outbound window fence and kicks the flush loop. The hook
		// cannot fire before Open returns (the first epoch needs a
		// commit), so reading s.repl here is safe.
		s.flushKick = make(chan struct{}, 1)
		stOpts.EpochOnDurable = func(uint64) {
			if r := s.repl; r != nil {
				r.Fence()
			}
			select {
			case s.flushKick <- struct{}{}:
			default: // a kick is already pending
			}
		}
	}
	eng, err := storage.Open(stOpts)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	if cfg.Partitions != nil {
		s.pm.Store(cfg.Partitions)
	}
	if cfg.PersistAV {
		if cfg.StorageDir == "" {
			eng.Close()
			return nil, fmt.Errorf("site: PersistAV requires StorageDir")
		}
		avs, err := avstore.Open(filepath.Join(cfg.StorageDir, "av"), avstore.Options{
			NoSync:           cfg.NoSync,
			MaxSyncDelay:     cfg.WALMaxSyncDelay,
			Stats:            cfg.WALStats,
			EpochInterval:    cfg.EpochInterval,
			EpochMaxCommits:  cfg.EpochMaxCommits,
			EpochAdaptive:    cfg.EpochAdaptive,
			EpochMinInterval: cfg.EpochMinInterval,
			EpochMaxInterval: cfg.EpochMaxInterval,
			Clock:            cfg.Clock,
			EpochStats:       cfg.EpochStats,
		})
		if err != nil {
			eng.Close()
			return nil, err
		}
		s.avs = avs
		s.avt = avs
	} else {
		s.avt = av.NewTable()
	}
	s.tm = txn.NewManager(eng, lockmgr.Options{WaitTimeout: cfg.LockTimeout})
	iuOpts := twopc.Options{
		Site:           cfg.ID,
		Base:           cfg.Base,
		PrepareTimeout: cfg.PrepareTimeout,
		Tracer:         cfg.Tracer,
		Clock:          cfg.Clock,
		Observer:       cfg.TxnObserver,
		IDEpoch:        cfg.TxnIDEpoch,
		Epochs:         eng.Epochs(),
	}
	if cfg.Partitions != nil {
		// Sharded mode: each key's primary is its partition owner, not
		// the single cluster-wide base.
		iuOpts.BaseFor = func(key string) wire.SiteID {
			return s.pm.Load().OwnerOf(key)
		}
	}
	s.iu = twopc.New(iuOpts, s.tm)
	if cfg.StorageDir != "" {
		// A durable engine needs durable replication state, or a restart
		// could double-apply retransmissions and lose unpropagated deltas.
		s.repl, err = replica.NewDurable(cfg.ID, eng)
		if err != nil {
			if s.avs != nil {
				s.avs.Close()
			}
			eng.Close()
			return nil, err
		}
	} else {
		s.repl = replica.New(cfg.ID, eng)
	}
	if cfg.FlushPeerTimeout > 0 || cfg.FlushBackoff.BaseDelay > 0 {
		s.repl.SetFlushPolicy(cfg.FlushPeerTimeout, cfg.FlushBackoff, cfg.Clock)
	}
	if s.flushKick != nil {
		s.repl.AlignToEpochs()
	}
	if cfg.Partitions != nil {
		// Partial replication: deltas flow only to sites hosting the
		// key's partition, and inbound deltas for foreign partitions
		// are acknowledged but never applied.
		s.repl.SetPartitionFilter(
			func(peer wire.SiteID, key string) bool { return s.pm.Load().HostsKey(peer, key) },
			func(key string) bool { return s.pm.Load().HostsKey(cfg.ID, key) },
		)
	}
	s.det = failure.NewDetector(cfg.SuspectAfter, cfg.Clock)
	coreCfg := core.Config{
		Site:           cfg.ID,
		Base:           cfg.Base,
		Peers:          cfg.Peers,
		Policy:         cfg.Policy,
		Passes:         cfg.Passes,
		RequestTimeout: cfg.RequestTimeout,
		Seed:           cfg.Seed,
		Demand:         cfg.Demand,
		DisableGossip:  cfg.DisableGossip,
		Tracer:         cfg.Tracer,
		Detector:       s.det,
		Escrow:         cfg.EscrowTransfers,
		Clock:          cfg.Clock,
		XferSalt:       cfg.XferSalt,
		OnCommit:       cfg.UpdateObserver,
	}
	if cfg.Partitions != nil {
		// AV gathering and gossip stay inside the key's replica set.
		coreCfg.PeersFor = func(key string) []wire.SiteID {
			return s.pm.Load().PeersFor(cfg.ID, key)
		}
	}
	s.accel = core.New(coreCfg, s.avt, s.tm, s.iu, s.repl)

	if cfg.ReadPlane {
		// The feed must be live before the plane snapshots the engine:
		// the plane subscribes first, then materializes, so no batch
		// falls between its snapshot and its tail.
		s.feed = eventlog.New(4096)
		s.feed.SetNow(cfg.Clock.Now)
		feed := s.feed
		id := cfg.ID
		eng.SetApplyObserver(func(lsn uint64, ops []storage.Op) {
			// Copy: the batch slice belongs to the committing caller.
			feed.Append(eventlog.Event{
				Site: id, Type: readplane.EventType, LSN: lsn,
				Payload: append([]storage.Op(nil), ops...),
			})
		})
		s.plane, err = readplane.New(readplane.Config{
			Site:   cfg.ID,
			Engine: eng,
			Feed:   s.feed,
			AV:     s.avt,
			View:   s.accel.View(),
			Peers:  cfg.Peers,
			Now:    cfg.Clock.Now,
			TopK:   cfg.ReadPlaneTopK,
		})
		if err != nil {
			if s.avs != nil {
				s.avs.Close()
			}
			eng.Close()
			return nil, err
		}
	}

	node, err := network.Open(cfg.ID, s.handle)
	if err != nil {
		if s.plane != nil {
			s.plane.Close()
		}
		if s.avs != nil {
			s.avs.Close()
		}
		eng.Close()
		return nil, err
	}
	s.node = node
	s.iu.SetNode(node)
	s.accel.SetNode(node)

	if cfg.FlushInterval > 0 {
		s.wg.Add(1)
		go s.flushLoop()
	}
	if cfg.SweepInterval > 0 {
		s.wg.Add(1)
		go s.sweepLoop()
	}
	if cfg.HeartbeatInterval > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return s, nil
}

// Reopen restarts a durable site from its on-disk state (WAL + AV
// journal) after a crash or clean shutdown. It is Open with the
// durability requirement made explicit: the storage engine replays its
// WAL, the AV store re-establishes balances, pending escrows and
// unsettled obligations, and the replicator resumes from its durable
// cursor. Outstanding escrow obligations are then re-driven lazily by
// the heartbeat loop (or an explicit Reconcile call).
func Reopen(cfg Config, network transport.Network) (*Site, error) {
	if cfg.StorageDir == "" {
		return nil, fmt.Errorf("site: Reopen requires StorageDir (nothing to recover from)")
	}
	return Open(cfg, network)
}

// event records an observability event when a log is configured.
func (s *Site) event(typ, key, format string, args ...any) {
	if s.cfg.Events != nil {
		s.cfg.Events.Appendf(s.cfg.ID, typ, key, format, args...)
	}
}

// handle dispatches one inbound protocol message. ctx carries the
// sender's trace context, so handler spans parent to the remote caller.
func (s *Site) handle(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
	if s.cfg.Events != nil {
		key := ""
		switch m := msg.(type) {
		case *wire.AVRequest:
			key = m.Key
		case *wire.IUPrepare:
			key = m.Key
		case *wire.Read:
			key = m.Key
		}
		s.event("recv."+msg.Kind().String(), key, "from=%d", from)
	}
	switch m := msg.(type) {
	case *wire.RouteUpdate:
		return s.handleRouteUpdate(ctx, from, m)
	case *wire.AVRequest:
		return s.accel.HandleAVRequest(ctx, from, m)
	case *wire.AVSettle:
		ack, err := s.accel.HandleSettle(ctx, from, m)
		if err != nil {
			return nil
		}
		return ack
	case *wire.Ping:
		return &wire.Pong{}
	case *wire.IUPrepare:
		return s.iu.HandlePrepare(ctx, from, m)
	case *wire.IUDecision:
		return s.iu.HandleDecision(ctx, from, m)
	case *wire.DeltaSync:
		ack, err := s.repl.HandleSync(m)
		if err != nil {
			// Report what we have applied; the sender keeps the backlog.
			return &wire.DeltaAck{Origin: m.Origin, UpTo: s.repl.AppliedFrom(m.Origin)}
		}
		return ack
	case *wire.DeltaAck:
		// One-way ack from a peer that pulled our deltas.
		s.repl.HandleAck(from, m.UpTo)
		return nil
	case *wire.SyncPull:
		if sync := s.repl.PendingSyncFor(from); sync != nil {
			return sync
		}
		return &wire.DeltaSync{Origin: s.cfg.ID}
	case *wire.Read:
		n, err := s.eng.Amount(m.Key)
		return &wire.ReadReply{OK: err == nil, Value: n}
	default:
		return nil
	}
}

// flushLoop pushes the replication backlog periodically, and — when
// epoch-aligned flushing is on — immediately after each durable-epoch
// advance, so the freshly fenced window ships without waiting out the
// rest of the flush interval. s.flushKick is nil when alignment is off
// and the nil channel simply never fires.
func (s *Site) flushLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.cfg.Clock.After(s.cfg.FlushInterval):
		case <-s.flushKick:
		}
		ctx, cancel := clock.WithTimeout(context.Background(), s.cfg.Clock, s.cfg.FlushInterval)
		_ = s.repl.Flush(ctx, s.node, s.cfg.Peers)
		cancel()
	}
}

// heartbeatLoop probes every peer each interval, feeding the failure
// detector so AV gathering fails over away from dead peers, and
// re-drives outstanding escrow obligations left by failed transfers or
// a restart.
func (s *Site) heartbeatLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.cfg.Clock.After(s.cfg.HeartbeatInterval):
			ctx, cancel := clock.WithTimeout(context.Background(), s.cfg.Clock, s.cfg.HeartbeatInterval)
			s.Heartbeat(ctx)
			cancel()
		}
	}
}

// Heartbeat performs one round of what heartbeatLoop does periodically:
// ping every peer (reporting each outcome to the failure detector) and,
// when escrow obligations are outstanding, try to settle them. Exposed
// so deterministic tests and clusters can step liveness explicitly.
func (s *Site) Heartbeat(ctx context.Context) {
	for _, p := range s.cfg.Peers {
		if _, err := s.node.Call(ctx, p, &wire.Ping{}); err != nil {
			s.det.ReportFailure(p)
		} else {
			s.det.ReportSuccess(p)
		}
	}
	if len(s.accel.Obligations()) > 0 {
		if _, err := s.accel.Reconcile(ctx); err != nil {
			s.event("reconcile.failed", "", "err=%v", err)
		}
	}
}

// Reconcile re-drives this site's outstanding escrow obligations
// (settle credits it holds, cancel grants that never arrived) and
// returns how many remain unresolved.
func (s *Site) Reconcile(ctx context.Context) (int, error) {
	return s.accel.Reconcile(ctx)
}

// Detector returns the site's failure detector.
func (s *Site) Detector() *failure.Detector { return s.det }

// sweepLoop aborts expired prepared transactions periodically.
func (s *Site) sweepLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.cfg.Clock.After(s.cfg.SweepInterval):
			s.iu.Sweep(s.cfg.Clock.Now())
		}
	}
}

// Seed loads initial records (the paper's "all data are assumed to be
// delivered to all the sites initially from the base").
func (s *Site) Seed(recs ...storage.Record) error {
	ops := make([]storage.Op, len(recs))
	for i, r := range recs {
		ops[i] = storage.PutOp(r)
	}
	return s.eng.Apply(ops...)
}

// DefineAV declares this site's initial allowable volume for key,
// marking it a Delay-Update datum here.
func (s *Site) DefineAV(key string, volume int64) error {
	return s.avt.Define(key, volume)
}

// Update applies delta to key through the accelerator. When tracing is
// on, the whole update becomes one trace rooted here; remote spans the
// protocol causes (AV grants, 2PC votes) link back to it. Under a
// partition map, updates for keys this site does not host are
// forwarded to the owning replica set (see routing.go).
func (s *Site) Update(ctx context.Context, key string, delta int64) (core.Result, error) {
	if pm := s.pm.Load(); pm != nil && !pm.HostsKey(s.cfg.ID, key) {
		return s.forwardUpdate(ctx, key, delta)
	}
	return s.updateLocal(ctx, key, delta)
}

// updateLocal executes an update on this site's own accelerator,
// bypassing the routing check — the serve path for routed updates.
func (s *Site) updateLocal(ctx context.Context, key string, delta int64) (core.Result, error) {
	ctx, sp := s.cfg.Tracer.Start(ctx, s.cfg.ID, "update")
	res, err := s.accel.Update(ctx, key, delta)
	if sp != nil {
		sp.SetAttr("key", key)
		sp.SetAttr("path", res.Path.String())
		sp.Finish(err)
	}
	if err != nil {
		s.event("update.failed", key, "delta=%d err=%v", delta, err)
	} else {
		s.event("update."+res.Path.String(), key, "delta=%d rounds=%d transferred=%d",
			delta, res.Rounds, res.Transferred)
	}
	return res, err
}

// Read returns the local value of key.
func (s *Site) Read(key string) (int64, error) { return s.eng.Amount(key) }

// ReadRemote fetches key's value as another site currently sees it.
func (s *Site) ReadRemote(ctx context.Context, from wire.SiteID, key string) (int64, error) {
	reply, err := s.node.Call(ctx, from, &wire.Read{Key: key})
	if err != nil {
		return 0, err
	}
	rr, ok := reply.(*wire.ReadReply)
	if !ok || !rr.OK {
		return 0, fmt.Errorf("site: remote read of %q failed", key)
	}
	return rr.Value, nil
}

// Flush pushes the replication backlog to all peers once.
func (s *Site) Flush(ctx context.Context) error {
	return s.repl.Flush(ctx, s.node, s.cfg.Peers)
}

// Pull fetches and applies every reachable peer's pending deltas — the
// inverse of Flush. After Pull, this site's replica reflects all
// updates committed at the answering peers.
func (s *Site) Pull(ctx context.Context) error {
	return s.repl.Pull(ctx, s.node, s.cfg.Peers)
}

// ReadFresh pulls from all reachable peers and then reads locally: an
// up-to-date read without waiting for the lazy push cycle. (It is as
// fresh as the moment each peer answered; concurrent updates may still
// land afterwards — Immediate Update is the tool for reads that must
// serialize with writers.)
func (s *Site) ReadFresh(ctx context.Context, key string) (int64, error) {
	if err := s.Pull(ctx); err != nil {
		return 0, err
	}
	return s.Read(key)
}

// Sweep aborts expired prepared 2PC transactions now, judged against the
// site's own clock so sweeps are simulable on a virtual clock.
func (s *Site) Sweep() int { return s.iu.Sweep(s.cfg.Clock.Now()) }

// Maintain performs the periodic housekeeping a long-lived durable site
// needs: compact the replication log past what every peer acknowledged,
// checkpoint the storage engine (snapshot + WAL truncation), and
// checkpoint the AV journal when one exists. Cheap no-ops on in-memory
// sites.
func (s *Site) Maintain() error {
	s.repl.Compact(s.cfg.Peers)
	if err := s.eng.Checkpoint(); err != nil {
		return err
	}
	if s.avs != nil {
		return s.avs.Checkpoint()
	}
	return nil
}

// Accessors for experiments, examples and tests.

// ID returns the site's identity.
func (s *Site) ID() wire.SiteID { return s.cfg.ID }

// Engine returns the local storage engine.
func (s *Site) Engine() *storage.Engine { return s.eng }

// Epochs returns the storage engine's commit-epoch manager, nil when
// epoch commit is off.
func (s *Site) Epochs() *epoch.Manager { return s.eng.Epochs() }

// AV returns the AV table.
func (s *Site) AV() core.AVTable { return s.avt }

// Accelerator returns the accelerator.
func (s *Site) Accelerator() *core.Accelerator { return s.accel }

// Replicator returns the lazy replicator.
func (s *Site) Replicator() *replica.Replicator { return s.repl }

// TwoPC returns the Immediate-Update engine.
func (s *Site) TwoPC() *twopc.Engine { return s.iu }

// ReadPlane returns the site's read plane, nil unless Config.ReadPlane
// was set.
func (s *Site) ReadPlane() *readplane.Plane { return s.plane }

// Token mints a read-your-writes session token from an update result.
// The token names the site whose plane applied the commit — this site
// for local results, the serving replica for forwarded ones — because
// WaitFor rejects tokens minted against any other site's plane. The
// zero token (failed update, or a forwarded result from a peer that
// predates token-carrying replies) satisfies trivially.
func (s *Site) Token(res core.Result) readplane.Token {
	if res.LSN == 0 {
		return readplane.Token{}
	}
	return readplane.Mint(res.Site, res.LSN)
}

// Close stops background loops, detaches from the network, and closes
// the storage engine. Close is idempotent; repeated calls return the
// first result.
func (s *Site) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		if s.plane != nil {
			s.plane.Close()
		}
		if err := s.node.Close(); err != nil {
			s.closeErr = err
		}
		if s.avs != nil {
			if err := s.avs.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if err := s.eng.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}
