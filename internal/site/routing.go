// Update routing for the partitioned key space. A site that does not
// host a key's partition forwards the update to a replica (owner
// first) as a wire.RouteUpdate; the replica serves it through its own
// accelerator and answers with a RouteReply carrying the outcome. Map
// versions travel with every routed message: a receiver that sees a
// different version attaches its own map to the reply, and the side
// holding the older map adopts the newer one and retries — so a
// membership change propagates lazily along the request paths that
// care, without a synchronized reconfiguration barrier.
package site

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"avdb/internal/core"
	"avdb/internal/partition"
	"avdb/internal/storage"
	"avdb/internal/twopc"
	"avdb/internal/wire"
)

// ErrNotReplica is returned to a caller that routed an update here
// under a partition map disagreeing with ours: the update was NOT
// applied. The reply carries our map so the caller can re-route.
var ErrNotReplica = errors.New("site: not a replica for this key's partition")

// RouteStats counts routing activity at one site (all monotonic).
type RouteStats struct {
	// Forwarded updates left this site for a remote replica.
	Forwarded uint64
	// Served updates arrived here via RouteUpdate and were executed.
	Served uint64
	// Misroutes arrived for partitions we do not host and were
	// rejected, not applied.
	Misroutes uint64
	// MapRefreshes counts adoptions of a newer partition map learned
	// from a routed exchange.
	MapRefreshes uint64
}

// PartitionInfo summarizes one hosted partition at this site.
type PartitionInfo struct {
	Partition int           `json:"partition"`
	Owner     wire.SiteID   `json:"owner"`
	Replicas  []wire.SiteID `json:"replicas"`
	Keys      int           `json:"keys"`     // records stored locally
	AVKeys    int           `json:"av_keys"`  // keys with a local AV entry
	AVAvail   int64         `json:"av_avail"` // free volume across those keys
	AVHeld    int64         `json:"av_held"`  // reserved volume
	Stock     int64         `json:"stock"`    // sum of stored amounts
}

// PartitionMap returns the site's current partition map, nil when
// partitioning is disabled.
func (s *Site) PartitionMap() *partition.Map { return s.pm.Load() }

// RouteStats returns a snapshot of the site's routing counters.
func (s *Site) RouteStats() RouteStats {
	return RouteStats{
		Forwarded:    s.routeForwarded.Load(),
		Served:       s.routeServed.Load(),
		Misroutes:    s.routeMisroutes.Load(),
		MapRefreshes: s.routeRefreshes.Load(),
	}
}

// PartitionStats reports, per hosted partition, how many records and
// how much allowable volume this site holds. Nil when partitioning is
// disabled.
func (s *Site) PartitionStats() []PartitionInfo {
	pm := s.pm.Load()
	if pm == nil {
		return nil
	}
	byPart := make(map[int]*PartitionInfo)
	for _, p := range pm.Hosted(s.cfg.ID) {
		byPart[p] = &PartitionInfo{
			Partition: p,
			Owner:     pm.Owner(p),
			Replicas:  pm.Replicas(p),
		}
	}
	_ = s.eng.Scan(func(rec storage.Record) bool {
		if info := byPart[pm.PartitionOf(rec.Key)]; info != nil {
			info.Keys++
			info.Stock += rec.Amount
		}
		return true
	})
	for _, key := range s.avt.Keys() {
		if info := byPart[pm.PartitionOf(key)]; info != nil {
			info.AVKeys++
			info.AVAvail += s.avt.Avail(key)
			info.AVHeld += s.avt.Held(key)
		}
	}
	out := make([]PartitionInfo, 0, len(byPart))
	for _, info := range byPart {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Partition < out[j].Partition })
	return out
}

// adoptMap installs m if it is newer than the current map; returns
// true when the map changed. Version-guarded CAS so concurrent routed
// replies carrying different vintages converge on the newest.
func (s *Site) adoptMap(m *partition.Map) bool {
	for {
		cur := s.pm.Load()
		if cur == nil || m == nil || m.Version() <= cur.Version() {
			return false
		}
		if s.pm.CompareAndSwap(cur, m) {
			s.routeRefreshes.Add(1)
			s.event("route.map_refresh", "", "version=%d", m.Version())
			return true
		}
	}
}

// mapFromReply reconstructs the partition map attached to a reply,
// nil when none was attached or it is malformed.
func mapFromReply(rep *wire.RouteReply) *partition.Map {
	if rep.MapVersion == 0 {
		return nil
	}
	m, err := partition.NewAt(rep.MapVersion, rep.MapSites, int(rep.Parts), int(rep.RF))
	if err != nil {
		return nil
	}
	return m
}

// attachMap piggybacks our current map onto a routed reply.
func attachMap(rep *wire.RouteReply, pm *partition.Map) {
	rep.MapVersion = pm.Version()
	rep.Parts = uint32(pm.Parts())
	rep.RF = uint32(pm.RF())
	rep.MapSites = pm.Sites()
}

// routeErrClass maps an update error to its wire class so the origin
// can hand its caller the same sentinel it would get locally.
// Completion-unknown is checked before aborted: the twopc error chain
// can carry both flavors and the weaker claim must win.
func routeErrClass(err error) uint8 {
	switch {
	case errors.Is(err, core.ErrInsufficientAV):
		return wire.RouteErrInsufficientAV
	case errors.Is(err, twopc.ErrCompletionUnknown):
		return wire.RouteErrUnknown
	case errors.Is(err, twopc.ErrAborted):
		return wire.RouteErrAborted
	default:
		return wire.RouteErrOther
	}
}

// routeErrFromClass is the origin-side inverse of routeErrClass.
func routeErrFromClass(class uint8, target wire.SiteID, reason string) error {
	var sentinel error
	switch class {
	case wire.RouteErrInsufficientAV:
		sentinel = core.ErrInsufficientAV
	case wire.RouteErrUnknown:
		sentinel = twopc.ErrCompletionUnknown
	case wire.RouteErrAborted:
		sentinel = twopc.ErrAborted
	default:
		return fmt.Errorf("site: routed update to site %d failed: %s", target, reason)
	}
	return fmt.Errorf("%w (routed via site %d: %s)", sentinel, target, reason)
}

// forwardUpdate routes an update we do not host to the key's replica
// set: the owner first, the other replicas as transport-failure
// fallbacks. A reply carrying a newer map is adopted and the update
// retried once under the new map (possibly locally, if the new map
// hosts the key here).
func (s *Site) forwardUpdate(ctx context.Context, key string, delta int64) (core.Result, error) {
	const maxRetries = 1
	for attempt := 0; ; attempt++ {
		pm := s.pm.Load()
		if pm.HostsKey(s.cfg.ID, key) {
			// A refreshed map moved the key to us mid-flight.
			return s.updateLocal(ctx, key, delta)
		}
		targets := pm.ReplicasOf(key)
		var lastErr error
		for _, target := range targets {
			reply, err := s.node.Call(ctx, target, &wire.RouteUpdate{
				MapVersion: pm.Version(), Key: key, Delta: delta,
			})
			if err != nil {
				lastErr = err
				continue // dead or partitioned replica: try the next one
			}
			rep, ok := reply.(*wire.RouteReply)
			if !ok {
				return core.Result{}, fmt.Errorf("site: unexpected route reply %T from site %d", reply, target)
			}
			refreshed := s.adoptMap(mapFromReply(rep))
			switch rep.Status {
			case wire.RouteOK:
				s.routeForwarded.Add(1)
				s.event("route.forwarded", key, "to=%d path=%d", target, rep.Path)
				return core.Result{
					Path:        core.Path(rep.Path),
					Rounds:      int(rep.Rounds),
					Transferred: rep.Transferred,
					// The commit landed on the serving replica's plane, so
					// the read-your-writes position is *its* {site, lsn}:
					// a token minted from this pair gates that site's read
					// plane. An old peer that predates token-carrying
					// replies leaves AppliedLSN zero and the result mints
					// no token, which is the pre-fix behaviour.
					LSN:  rep.AppliedLSN,
					Site: rep.AppliedSite,
				}, nil
			case wire.RouteNotReplica:
				if refreshed && attempt < maxRetries {
					// Our map was stale; re-route under the adopted one.
					goto retry
				}
				return core.Result{}, fmt.Errorf("%w: site %d rejected key %q", ErrNotReplica, target, key)
			default:
				return core.Result{}, routeErrFromClass(rep.ErrClass, target, rep.Reason)
			}
		}
		if lastErr != nil {
			return core.Result{}, fmt.Errorf("site: no replica for %q reachable: %w", key, lastErr)
		}
		return core.Result{}, fmt.Errorf("site: no replicas for %q", key)
	retry:
	}
}

// handleRouteUpdate serves a routed update from another site. A
// misrouted update — we do not host the key under our map — is
// rejected without touching any state, and the reply carries our map
// so the sender can correct itself.
func (s *Site) handleRouteUpdate(ctx context.Context, from wire.SiteID, m *wire.RouteUpdate) *wire.RouteReply {
	pm := s.pm.Load()
	if pm == nil {
		return &wire.RouteReply{Status: wire.RouteErr, ErrClass: wire.RouteErrOther,
			Reason: "partitioning disabled at receiver"}
	}
	rep := &wire.RouteReply{}
	if m.MapVersion != pm.Version() {
		// Version skew: always teach the sender our map. If theirs is
		// newer they ignore it; if ours is newer they adopt it.
		attachMap(rep, pm)
	}
	if !pm.HostsKey(s.cfg.ID, m.Key) {
		s.routeMisroutes.Add(1)
		s.event("route.misroute", m.Key, "from=%d their_version=%d", from, m.MapVersion)
		rep.Status = wire.RouteNotReplica
		rep.Reason = fmt.Sprintf("site %d does not host partition %d", s.cfg.ID, pm.PartitionOf(m.Key))
		if rep.MapVersion == 0 {
			attachMap(rep, pm) // same version but different conclusion: send the map anyway
		}
		return rep
	}
	res, err := s.updateLocal(ctx, m.Key, m.Delta)
	if err != nil {
		rep.Status = wire.RouteErr
		rep.ErrClass = routeErrClass(err)
		rep.Reason = err.Error()
		return rep
	}
	s.routeServed.Add(1)
	rep.Status = wire.RouteOK
	rep.Path = uint8(res.Path)
	rep.Rounds = uint32(res.Rounds)
	rep.Transferred = res.Transferred
	// Carry our read-your-writes position back so the origin can mint a
	// token that gates *this* site's read plane (the commit never
	// touched the origin's).
	rep.AppliedSite = res.Site
	rep.AppliedLSN = res.LSN
	return rep
}
