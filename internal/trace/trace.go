// Package trace is avdb's lightweight distributed tracing: every
// protocol exchange — a Delay Update spending local AV, an accelerator
// shopping for AV transfers, an Immediate Update's two-phase commit —
// records causally linked spans across the sites it touches, so the
// paper's "relaxed when possible, strict when necessary" behaviour is
// observable per request rather than only as aggregate counters.
//
// The design favours the protocol's fast path: a disabled (or nil)
// Tracer costs roughly one atomic load per span site, allocates
// nothing, and keeps envelopes byte-identical to the untraced format.
// When enabled, finished spans land in a fixed-size ring of atomic
// slots — writers claim a slot with one atomic add and publish with one
// atomic store, so tracing never serializes the protocol goroutines —
// and exporters (internal/obs, tests) snapshot the ring without
// stopping writers.
//
// Trace identity crosses sites by riding in wire.Envelope (TraceID +
// parent SpanID); the receiving transport rebuilds the span context and
// hands it to the message handler through its context.Context, so a
// remote grant's span parents back to the requester's update span.
package trace

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"avdb/internal/wire"
)

// TraceID identifies one causally related set of spans (one update, end
// to end, across every site it touched). Zero means "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// SpanContext is the portable identity of a live span: enough to parent
// a child span locally or at a remote site.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// ctxKey keys the SpanContext stored in a context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying sc. Transports use it to plant the
// remote caller's span context before invoking the local handler.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the span context carried by ctx, if any.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one timed operation at one site. A *Span returned by Start is
// owned by the starting goroutine until End, which publishes an
// immutable copy to the tracer's ring; all methods are safe on a nil
// receiver so call sites need no tracer-enabled branches.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for a root span
	Site   wire.SiteID
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
	Error  string

	tracer *Tracer
}

// Context returns the span's portable identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID}
}

// SetAttr annotates the span. Callers that must format the value should
// guard with `if span != nil` to keep the disabled path allocation-free.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// SetError records err on the span (nil clears nothing and is ignored).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.Error = err.Error()
}

// Finish records err (if any), stamps the end time, and publishes the
// span — EndSpan with an error attached in one call.
func (s *Span) Finish(err error) {
	s.SetError(err)
	s.EndSpan()
}

// EndSpan stamps the end time and publishes an immutable copy of the
// span to the tracer's ring. (Named EndSpan, not End, because End is
// the exported end-timestamp field.) The span must not be mutated
// afterwards.
func (s *Span) EndSpan() {
	if s == nil {
		return
	}
	s.End = time.Now()
	s.tracer.publish(s)
}

// Tracer records spans for one process (one site in a TCP deployment;
// all sites of an in-process cluster may share one). The zero value is
// not usable; call New. A nil *Tracer is a valid always-disabled tracer.
type Tracer struct {
	enabled atomic.Bool
	ids     atomic.Uint64
	seed    uint64
	slots   []atomic.Pointer[Span]
	cursor  atomic.Uint64
	dropped atomic.Uint64
}

// DefaultCapacity is the ring size New uses when given n <= 0.
const DefaultCapacity = 4096

// New returns an enabled tracer retaining the last n finished spans
// (DefaultCapacity when n <= 0).
func New(n int) *Tracer {
	if n <= 0 {
		n = DefaultCapacity
	}
	t := &Tracer{
		seed:  uint64(time.Now().UnixNano()),
		slots: make([]atomic.Pointer[Span], n),
	}
	t.enabled.Store(true)
	return t
}

// SetEnabled flips recording. Disabling does not clear retained spans.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether spans are being recorded. A nil tracer is
// permanently disabled — this is the one-atomic-load fast path every
// instrumentation site goes through.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// splitmix64 scrambles a counter into a well-spread 64-bit ID.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// id returns a fresh nonzero identifier.
func (t *Tracer) id() uint64 {
	v := splitmix64(t.seed + t.ids.Add(1))
	if v == 0 {
		v = 1
	}
	return v
}

// Start begins a span named name at site. When ctx already carries a
// span context (a local parent, or a remote one planted by the
// transport) the new span joins that trace as a child; otherwise it
// roots a new trace. The returned context carries the new span for
// children; the returned *Span is nil when the tracer is disabled.
func (t *Tracer) Start(ctx context.Context, site wire.SiteID, name string) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	sp := &Span{
		ID:     SpanID(t.id()),
		Site:   site,
		Name:   name,
		Start:  time.Now(),
		tracer: t,
	}
	if parent := FromContext(ctx); parent.Valid() {
		sp.Trace = parent.Trace
		sp.Parent = parent.Span
	} else {
		sp.Trace = TraceID(t.id())
	}
	return ContextWith(ctx, sp.Context()), sp
}

// publish stores an immutable copy of s into the ring. Writers contend
// only on two atomics; a full ring overwrites the oldest span (Dropped
// counts overwrites so exporters can report truncation).
func (t *Tracer) publish(s *Span) {
	if t == nil {
		return
	}
	i := t.cursor.Add(1) - 1
	if i >= uint64(len(t.slots)) {
		t.dropped.Add(1)
	}
	cp := *s
	cp.tracer = nil
	t.slots[i%uint64(len(t.slots))].Store(&cp)
}

// Dropped reports how many spans have been overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Snapshot returns every retained span ordered by start time (ties by
// span ID). It never blocks writers.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		if sp := t.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Recent returns the n most recently started retained spans (all of
// them when n <= 0), newest last.
func (t *Tracer) Recent(n int) []Span {
	all := t.Snapshot()
	if n <= 0 || n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// Trace returns the retained spans of one trace, start-ordered.
func (t *Tracer) Trace(id TraceID) []Span {
	var out []Span
	for _, sp := range t.Snapshot() {
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	return out
}
