package trace

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestStartLinksParentAndChild(t *testing.T) {
	tr := New(16)
	ctx, root := tr.Start(context.Background(), 1, "update")
	if root == nil {
		t.Fatal("enabled tracer returned nil span")
	}
	_, child := tr.Start(ctx, 1, "av.gather")
	if child.Trace != root.Trace {
		t.Fatalf("child trace %v != root trace %v", child.Trace, root.Trace)
	}
	if child.Parent != root.ID {
		t.Fatalf("child parent %v != root id %v", child.Parent, root.ID)
	}
	child.EndSpan()
	root.EndSpan()
	spans := tr.Trace(root.Trace)
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	if spans[0].Name != "update" || spans[1].Name != "av.gather" {
		t.Fatalf("order: %q, %q", spans[0].Name, spans[1].Name)
	}
}

func TestRemoteParentViaContext(t *testing.T) {
	tr := New(16)
	// Simulate the receiving transport planting the caller's context.
	remote := SpanContext{Trace: 0xabc, Span: 0xdef}
	ctx := ContextWith(context.Background(), remote)
	_, sp := tr.Start(ctx, 2, "recv.av.request")
	if sp.Trace != remote.Trace || sp.Parent != remote.Span {
		t.Fatalf("span %+v not parented to remote %+v", sp, remote)
	}
	sp.EndSpan()
}

func TestDisabledAndNilTracerNoOp(t *testing.T) {
	var nilTr *Tracer
	ctx, sp := nilTr.Start(context.Background(), 0, "x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All span methods must be nil-safe.
	sp.SetAttr("k", "v")
	sp.SetError(errors.New("boom"))
	sp.Finish(nil)
	sp.EndSpan()
	if sc := FromContext(ctx); sc.Valid() {
		t.Fatal("nil tracer polluted the context")
	}

	tr := New(4)
	tr.SetEnabled(false)
	if _, sp := tr.Start(context.Background(), 0, "x"); sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled tracer retained %d spans", len(got))
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(4)
	var last TraceID
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), 0, "s")
		last = sp.Trace
		sp.EndSpan()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	found := false
	for _, sp := range spans {
		if sp.Trace == last {
			found = true
		}
	}
	if !found {
		t.Fatal("newest span evicted instead of oldest")
	}
}

func TestConcurrentPublishAndSnapshot(t *testing.T) {
	tr := New(64)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
				tr.Recent(8)
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				ctx, sp := tr.Start(context.Background(), 1, "op")
				_, c := tr.Start(ctx, 1, "child")
				c.EndSpan()
				sp.EndSpan()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if len(tr.Snapshot()) != 64 {
		t.Fatalf("ring not full: %d", len(tr.Snapshot()))
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	tr := New(16)
	ctx, root := tr.Start(context.Background(), 1, "update")
	root.SetAttr("key", "product-0001")
	_, child := tr.Start(ctx, 2, "av.grant")
	child.SetError(errors.New("refused"))
	child.EndSpan()
	root.EndSpan()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d spans, want 2", len(back))
	}
	if back[0].Trace != root.Trace || back[1].Parent != root.ID {
		t.Fatalf("ids lost in round trip: %+v", back)
	}
	if back[0].Attrs[0] != (Attr{"key", "product-0001"}) {
		t.Fatalf("attrs lost: %+v", back[0].Attrs)
	}
	if back[1].Error != "refused" {
		t.Fatalf("error lost: %+v", back[1])
	}
}

func TestExportText(t *testing.T) {
	tr := New(16)
	ctx, root := tr.Start(context.Background(), 1, "update")
	_, child := tr.Start(ctx, 2, "recv.av.request")
	child.EndSpan()
	root.EndSpan()

	var buf bytes.Buffer
	if err := WriteText(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trace "+root.Trace.String()) {
		t.Fatalf("missing trace header:\n%s", out)
	}
	// The child must be indented one level deeper than the root.
	rootLine, childLine := "", ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "update") {
			rootLine = line
		}
		if strings.Contains(line, "recv.av.request") {
			childLine = line
		}
	}
	if rootLine == "" || childLine == "" {
		t.Fatalf("spans missing:\n%s", out)
	}
	indent := func(s string) int { return len(s) - len(strings.TrimLeft(s, " ")) }
	if indent(childLine) <= indent(rootLine) {
		t.Fatalf("child not nested under root:\n%s", out)
	}
}

func TestParseTraceID(t *testing.T) {
	id := TraceID(0xdeadbeefcafe)
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", id.String(), got, err)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("garbage accepted")
	}
}
