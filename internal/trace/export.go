package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"avdb/internal/wire"
)

// String renders the trace ID as 16 hex digits — the form /trace?id=
// accepts and exports emit.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the span ID as 16 hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// jsonSpan is the export schema: IDs as hex strings (JSON numbers lose
// precision past 2^53), times as RFC3339Nano, duration in nanoseconds.
type jsonSpan struct {
	Trace    string    `json:"trace"`
	ID       string    `json:"id"`
	Parent   string    `json:"parent,omitempty"`
	Site     uint32    `json:"site"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration int64     `json:"duration_ns"`
	Attrs    []Attr    `json:"attrs,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s Span) MarshalJSON() ([]byte, error) {
	js := jsonSpan{
		Trace:    s.Trace.String(),
		ID:       s.ID.String(),
		Site:     uint32(s.Site),
		Name:     s.Name,
		Start:    s.Start,
		Duration: s.End.Sub(s.Start).Nanoseconds(),
		Attrs:    s.Attrs,
		Error:    s.Error,
	}
	if s.Parent != 0 {
		js.Parent = s.Parent.String()
	}
	return json.Marshal(js)
}

// UnmarshalJSON implements json.Unmarshaler (the inverse of MarshalJSON,
// used by tests and avctl to read exported spans back).
func (s *Span) UnmarshalJSON(b []byte) error {
	var js jsonSpan
	if err := json.Unmarshal(b, &js); err != nil {
		return err
	}
	tid, err := ParseTraceID(js.Trace)
	if err != nil {
		return err
	}
	id, err := strconv.ParseUint(js.ID, 16, 64)
	if err != nil {
		return fmt.Errorf("trace: bad span id %q: %w", js.ID, err)
	}
	var parent uint64
	if js.Parent != "" {
		if parent, err = strconv.ParseUint(js.Parent, 16, 64); err != nil {
			return fmt.Errorf("trace: bad parent id %q: %w", js.Parent, err)
		}
	}
	*s = Span{
		Trace:  tid,
		ID:     SpanID(id),
		Parent: SpanID(parent),
		Site:   wire.SiteID(js.Site),
		Name:   js.Name,
		Start:  js.Start,
		End:    js.Start.Add(time.Duration(js.Duration)),
		Attrs:  js.Attrs,
		Error:  js.Error,
	}
	return nil
}

// WriteJSON writes spans as a JSON array.
func WriteJSON(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if spans == nil {
		spans = []Span{}
	}
	return enc.Encode(spans)
}

// ReadJSON parses a span array produced by WriteJSON.
func ReadJSON(r io.Reader) ([]Span, error) {
	var spans []Span
	if err := json.NewDecoder(r).Decode(&spans); err != nil {
		return nil, err
	}
	return spans, nil
}

// WriteText renders spans as an aligned tree: children indent under
// their parents, orphans (parent not retained, e.g. the parent ran at
// another site or aged out of the ring) print at top level. One trace's
// spans stay contiguous.
func WriteText(w io.Writer, spans []Span) error {
	byParent := make(map[SpanID][]Span)
	present := make(map[SpanID]bool, len(spans))
	for _, sp := range spans {
		present[sp.ID] = true
	}
	var roots []Span
	for _, sp := range spans {
		if sp.Parent != 0 && present[sp.Parent] {
			byParent[sp.Parent] = append(byParent[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	// Group root spans by trace so interleaved traces render separately.
	sort.SliceStable(roots, func(i, j int) bool {
		if roots[i].Trace != roots[j].Trace {
			return roots[i].Trace < roots[j].Trace
		}
		return roots[i].Start.Before(roots[j].Start)
	})
	var b strings.Builder
	lastTrace := TraceID(0)
	for _, r := range roots {
		if r.Trace != lastTrace {
			fmt.Fprintf(&b, "trace %s\n", r.Trace)
			lastTrace = r.Trace
		}
		writeSpanTree(&b, r, byParent, 1)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSpanTree renders one span and its descendants.
func writeSpanTree(b *strings.Builder, sp Span, byParent map[SpanID][]Span, depth int) {
	fmt.Fprintf(b, "%s%-24s site=%d %12s", strings.Repeat("  ", depth), sp.Name, sp.Site,
		sp.End.Sub(sp.Start).Round(time.Microsecond))
	for _, a := range sp.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Val)
	}
	if sp.Error != "" {
		fmt.Fprintf(b, " error=%q", sp.Error)
	}
	b.WriteByte('\n')
	kids := byParent[sp.ID]
	sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
	for _, k := range kids {
		writeSpanTree(b, k, byParent, depth+1)
	}
}
