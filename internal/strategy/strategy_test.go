package strategy

import (
	"testing"

	"avdb/internal/rng"
	"avdb/internal/wire"
)

func sites(cands []Candidate) []wire.SiteID {
	out := make([]wire.SiteID, len(cands))
	for i, c := range cands {
		out[i] = c.Site
	}
	return out
}

func TestMaxKnownOrdering(t *testing.T) {
	cands := []Candidate{
		{Site: 3, Known: 10},
		{Site: 1, Known: 500},
		{Site: 2, Known: 10},
		{Site: 0, Known: 0},
	}
	got := sites(MaxKnown{}.Order(cands, rng.New(1)))
	want := []wire.SiteID{1, 2, 3, 0} // by known desc, ties by site id
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestRandomSelectPermutes(t *testing.T) {
	base := []Candidate{{Site: 0}, {Site: 1}, {Site: 2}, {Site: 3}, {Site: 4}}
	r := rng.New(7)
	seenDifferent := false
	for trial := 0; trial < 20 && !seenDifferent; trial++ {
		cands := append([]Candidate(nil), base...)
		got := sites(RandomSelect{}.Order(cands, r))
		if len(got) != len(base) {
			t.Fatalf("length changed: %v", got)
		}
		seen := map[wire.SiteID]bool{}
		for _, s := range got {
			seen[s] = true
		}
		if len(seen) != len(base) {
			t.Fatalf("elements changed: %v", got)
		}
		for i, s := range got {
			if s != base[i].Site {
				seenDifferent = true
			}
		}
	}
	if !seenDifferent {
		t.Fatal("20 shuffles never changed the order")
	}
}

func TestRoundRobinRotates(t *testing.T) {
	rr := &RoundRobin{}
	r := rng.New(1)
	mk := func() []Candidate { return []Candidate{{Site: 2}, {Site: 0}, {Site: 1}} }
	first := sites(rr.Order(mk(), r))
	second := sites(rr.Order(mk(), r))
	third := sites(rr.Order(mk(), r))
	fourth := sites(rr.Order(mk(), r))
	if first[0] != 0 || second[0] != 1 || third[0] != 2 || fourth[0] != 0 {
		t.Fatalf("rotation heads = %v %v %v %v", first[0], second[0], third[0], fourth[0])
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	rr := &RoundRobin{}
	if got := rr.Order(nil, rng.New(1)); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestDeciders(t *testing.T) {
	cases := []struct {
		d          Decider
		avail, req int64
		want       int64
	}{
		{GrantHalf{}, 100, 30, 50},
		{GrantHalf{}, 1, 30, 0},
		{GrantHalf{}, 0, 10, 0},
		{GrantExact{}, 100, 30, 30},
		{GrantExact{}, 20, 30, 20},
		{GrantAll{}, 100, 1, 100},
		{GrantGenerous{}, 100, 30, 50},
		{GrantGenerous{}, 100, 80, 80},
		{GrantGenerous{}, 50, 80, 50},
	}
	for _, c := range cases {
		if got := c.d.Grant(c.avail, c.req); got != c.want {
			t.Errorf("%s.Grant(%d,%d) = %d, want %d", c.d.Name(), c.avail, c.req, got, c.want)
		}
	}
	for _, d := range []Decider{GrantHalf{}, GrantExact{}, GrantAll{}, GrantGenerous{}} {
		if d.Request(42) != 42 {
			t.Errorf("%s.Request != shortage", d.Name())
		}
	}
}

func TestSODA99Bundle(t *testing.T) {
	p := SODA99()
	if p.Selector.Name() != "max-known" || p.Decider.Name() != "half" {
		t.Fatalf("SODA99 = %s/%s", p.Selector.Name(), p.Decider.Name())
	}
}

func TestViewObserveAndCandidates(t *testing.T) {
	v := NewView()
	if _, ok := v.Known(1, "k"); ok {
		t.Fatal("empty view knows something")
	}
	v.Observe(1, "k", 100)
	v.Observe(2, "k", 50)
	v.Observe(1, "k", 80) // newer observation overwrites
	if n, ok := v.Known(1, "k"); !ok || n != 80 {
		t.Fatalf("Known(1,k) = %d,%v", n, ok)
	}
	cands := v.Candidates("k", []wire.SiteID{1, 2, 3})
	if len(cands) != 3 {
		t.Fatalf("candidates = %v", cands)
	}
	byHost := map[wire.SiteID]int64{}
	for _, c := range cands {
		byHost[c.Site] = c.Known
	}
	if byHost[1] != 80 || byHost[2] != 50 || byHost[3] != 0 {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestViewObserveAll(t *testing.T) {
	v := NewView()
	v.ObserveAll([]wire.AVInfo{
		{Site: 0, Key: "a", Avail: 7},
		{Site: 0, Key: "b", Avail: 9},
		{Site: 4, Key: "a", Avail: 1},
	})
	if n, _ := v.Known(0, "b"); n != 9 {
		t.Fatalf("Known(0,b) = %d", n)
	}
	if n, _ := v.Known(4, "a"); n != 1 {
		t.Fatalf("Known(4,a) = %d", n)
	}
}

func TestViewConcurrency(t *testing.T) {
	v := NewView()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			v.Observe(wire.SiteID(i%4), "k", int64(i))
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		v.Candidates("k", []wire.SiteID{0, 1, 2, 3})
	}
	<-done
}
