// Package strategy implements the accelerator's *selecting* and
// *deciding* functions and the gossiped AV view they work from.
//
// The paper adopts the policy of Kawazoe/Shibuya/Tokuyama's SODA'99
// electronic-money distribution system: a requester asks for exactly its
// shortage, a grantor donates half of what it keeps, and the target site
// is chosen by the amount of AV it is believed to hold — belief formed
// from information "collected at the necessary communication for AV
// management", i.e. piggybacked on AV replies and possibly stale.
//
// Each policy is pluggable so the ablation experiments (DESIGN.md A1/A2)
// can quantify what the SODA'99 choices contribute.
package strategy

import (
	"sort"
	"sync"

	"avdb/internal/rng"
	"avdb/internal/wire"
)

// Candidate is a potential AV donor as the selector sees it.
type Candidate struct {
	Site  wire.SiteID
	Known int64 // last-gossiped available AV; 0 when never heard from
}

// Selector orders candidate sites for AV requests; the accelerator asks
// them in the returned order until its shortage is covered.
type Selector interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Order returns the candidates in preference order. It may reorder
	// in place and must not add or drop entries.
	Order(cands []Candidate, r *rng.Rand) []Candidate
}

// Decider chooses transfer volumes.
type Decider interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Request returns how much AV to ask a peer for, given the remaining
	// shortage. (SODA'99: the shortage itself.)
	Request(shortage int64) int64
	// Grant returns how much a site holding avail free AV donates to a
	// peer requesting req. The caller caps the result at avail.
	Grant(avail, req int64) int64
}

// Policy bundles the two functions.
type Policy struct {
	Selector Selector
	Decider  Decider
}

// SODA99 is the paper's policy: ask for the shortage, grant half of the
// holding, prefer the largest known holder.
func SODA99() Policy {
	return Policy{Selector: MaxKnown{}, Decider: GrantHalf{}}
}

// MaxKnown prefers the site believed to hold the most AV; ties and
// never-heard-from sites fall back to ascending site ID so the order is
// deterministic.
type MaxKnown struct{}

// Name implements Selector.
func (MaxKnown) Name() string { return "max-known" }

// Order implements Selector.
func (MaxKnown) Order(cands []Candidate, r *rng.Rand) []Candidate {
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Known != cands[j].Known {
			return cands[i].Known > cands[j].Known
		}
		return cands[i].Site < cands[j].Site
	})
	return cands
}

// RandomSelect asks peers in uniformly random order.
type RandomSelect struct{}

// Name implements Selector.
func (RandomSelect) Name() string { return "random" }

// Order implements Selector.
func (RandomSelect) Order(cands []Candidate, r *rng.Rand) []Candidate {
	r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return cands
}

// RoundRobin rotates through peers, spreading requests evenly regardless
// of belief. It is stateful per accelerator.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name implements Selector.
func (rr *RoundRobin) Name() string { return "round-robin" }

// Order implements Selector.
func (rr *RoundRobin) Order(cands []Candidate, r *rng.Rand) []Candidate {
	if len(cands) == 0 {
		return cands
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Site < cands[j].Site })
	rr.mu.Lock()
	start := rr.next % len(cands)
	rr.next++
	rr.mu.Unlock()
	rotated := make([]Candidate, 0, len(cands))
	rotated = append(rotated, cands[start:]...)
	rotated = append(rotated, cands[:start]...)
	copy(cands, rotated)
	return cands
}

// GrantHalf is the SODA'99 decider: donate half of the free holding,
// regardless of the request size.
type GrantHalf struct{}

// Name implements Decider.
func (GrantHalf) Name() string { return "half" }

// Request implements Decider.
func (GrantHalf) Request(shortage int64) int64 { return shortage }

// Grant implements Decider.
func (GrantHalf) Grant(avail, req int64) int64 { return avail / 2 }

// GrantExact donates exactly what was asked (capped by the caller at
// avail) — the minimal-transfer ablation.
type GrantExact struct{}

// Name implements Decider.
func (GrantExact) Name() string { return "exact" }

// Request implements Decider.
func (GrantExact) Request(shortage int64) int64 { return shortage }

// Grant implements Decider.
func (GrantExact) Grant(avail, req int64) int64 {
	if req < avail {
		return req
	}
	return avail
}

// GrantAll donates the entire free holding — the maximal-transfer
// ablation (fewest future requests, worst donor depletion).
type GrantAll struct{}

// Name implements Decider.
func (GrantAll) Name() string { return "all" }

// Request implements Decider.
func (GrantAll) Request(shortage int64) int64 { return shortage }

// Grant implements Decider.
func (GrantAll) Grant(avail, req int64) int64 { return avail }

// GrantGenerous donates the larger of the request and half the holding:
// it always satisfies the request when possible, and tops up beyond it
// when the donor is rich.
type GrantGenerous struct{}

// Name implements Decider.
func (GrantGenerous) Name() string { return "generous" }

// Request implements Decider.
func (GrantGenerous) Request(shortage int64) int64 { return shortage }

// Grant implements Decider.
func (GrantGenerous) Grant(avail, req int64) int64 {
	g := avail / 2
	if req > g {
		g = req
	}
	if g > avail {
		g = avail
	}
	return g
}

// View is a site's (possibly stale) belief about how much available AV
// every other site holds per key, learned from AVReply piggybacks. It is
// safe for concurrent use.
type View struct {
	mu    sync.Mutex
	known map[wire.SiteID]map[string]int64
}

// NewView creates an empty view.
func NewView() *View {
	return &View{known: make(map[wire.SiteID]map[string]int64)}
}

// Observe records that site was seen holding avail free AV for key.
func (v *View) Observe(site wire.SiteID, key string, avail int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m := v.known[site]
	if m == nil {
		m = make(map[string]int64)
		v.known[site] = m
	}
	m[key] = avail
}

// ObserveAll records a batch of gossiped AVInfo entries.
func (v *View) ObserveAll(infos []wire.AVInfo) {
	for _, in := range infos {
		v.Observe(in.Site, in.Key, in.Avail)
	}
}

// Known returns the last observation of site's AV for key (0, false when
// never observed).
func (v *View) Known(site wire.SiteID, key string) (int64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.known[site]
	if !ok {
		return 0, false
	}
	n, ok := m[key]
	return n, ok
}

// Candidates builds the candidate list for key over the given peers.
func (v *View) Candidates(key string, peers []wire.SiteID) []Candidate {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Candidate, 0, len(peers))
	for _, p := range peers {
		var known int64
		if m, ok := v.known[p]; ok {
			known = m[key]
		}
		out = append(out, Candidate{Site: p, Known: known})
	}
	return out
}
