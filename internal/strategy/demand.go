package strategy

import "sync"

// Meter tracks a site's own consumption of AV per key as an
// exponentially weighted moving average of the volume spent per local
// decrement. A demand-aware donor uses it to predict how much slack it
// should keep for its own customers before granting to peers —
// a policy extension beyond the paper's fixed "half" rule.
// Meter is safe for concurrent use.
type Meter struct {
	mu    sync.Mutex
	alpha float64
	rate  map[string]float64
}

// NewMeter creates a meter; alpha in (0, 1] is the EWMA weight of the
// newest observation (default 0.2 when out of range).
func NewMeter(alpha float64) *Meter {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &Meter{alpha: alpha, rate: make(map[string]float64)}
}

// Observe records that a local decrement consumed n units of key.
func (m *Meter) Observe(key string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old, ok := m.rate[key]
	if !ok {
		m.rate[key] = float64(n)
		return
	}
	m.rate[key] = (1-m.alpha)*old + m.alpha*float64(n)
}

// Rate returns the current demand estimate for key (0 if never seen).
func (m *Meter) Rate(key string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rate[key]
}

// GrantDemandAware donates like GrantHalf but first sets aside enough
// volume to cover Horizon of its own expected upcoming decrements for
// the key. A donor with hot local demand gives little; a donor whose
// stock sits idle gives generously.
type GrantDemandAware struct {
	// Meter is the donor's own consumption meter (required).
	Meter *Meter
	// Horizon is how many future local decrements to reserve for
	// (default 4 when <= 0).
	Horizon float64
	// Key ties Grant calls to a demand stream: the decider receives only
	// (avail, req), so the accelerator sets PerKey via the wrapper below.
	key string
}

// Name implements Decider.
func (g GrantDemandAware) Name() string { return "demand-aware" }

// Request implements Decider.
func (g GrantDemandAware) Request(shortage int64) int64 { return shortage }

// Grant implements Decider.
func (g GrantDemandAware) Grant(avail, req int64) int64 {
	horizon := g.Horizon
	if horizon <= 0 {
		horizon = 4
	}
	var reserve int64
	if g.Meter != nil {
		reserve = int64(horizon * g.Meter.Rate(g.key))
	}
	free := avail - reserve
	if free <= 0 {
		return 0
	}
	grant := free / 2
	if grant < req && free >= req {
		grant = req
	}
	if grant > free {
		grant = free
	}
	return grant
}

// ForKey returns a copy of the decider bound to one key's demand
// stream. The accelerator calls this per request.
func (g GrantDemandAware) ForKey(key string) Decider {
	g.key = key
	return g
}

// KeyedDecider is implemented by deciders whose grant depends on which
// key is being requested (e.g. GrantDemandAware). The accelerator
// detects it and binds the key before asking for a grant.
type KeyedDecider interface {
	Decider
	ForKey(key string) Decider
}
