package strategy

import (
	"sync"
	"testing"
)

func TestMeterEWMA(t *testing.T) {
	m := NewMeter(0.5)
	if m.Rate("k") != 0 {
		t.Fatal("fresh meter has rate")
	}
	m.Observe("k", 100)
	if m.Rate("k") != 100 {
		t.Fatalf("first observation = %v", m.Rate("k"))
	}
	m.Observe("k", 0)
	if m.Rate("k") != 50 {
		t.Fatalf("after decay = %v", m.Rate("k"))
	}
	m.Observe("k", 50)
	if m.Rate("k") != 50 {
		t.Fatalf("steady = %v", m.Rate("k"))
	}
}

func TestMeterBadAlphaDefaults(t *testing.T) {
	for _, a := range []float64{-1, 0, 1.5} {
		m := NewMeter(a)
		m.Observe("k", 10)
		if m.Rate("k") != 10 {
			t.Fatalf("alpha %v: rate = %v", a, m.Rate("k"))
		}
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter(0.1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Observe("k", 10)
				_ = m.Rate("k")
			}
		}()
	}
	wg.Wait()
	if r := m.Rate("k"); r != 10 {
		t.Fatalf("constant stream rate = %v", r)
	}
}

func TestGrantDemandAwareReserves(t *testing.T) {
	m := NewMeter(1) // rate == last observation
	d := GrantDemandAware{Meter: m, Horizon: 4}
	keyed := d.ForKey("hot").(GrantDemandAware)

	// No demand yet: behaves like GrantHalf-with-top-up.
	if got := keyed.Grant(100, 30); got != 50 {
		t.Fatalf("idle grant = %d, want 50", got)
	}
	// Hot key: reserve 4 * 20 = 80, leaving 20 free; grant half of free
	// unless the request fits.
	m.Observe("hot", 20)
	if got := keyed.Grant(100, 30); got != 10 {
		t.Fatalf("hot grant = %d, want 10 (half of 100-80)", got)
	}
	if got := keyed.Grant(100, 15); got != 15 {
		t.Fatalf("fitting request = %d, want 15", got)
	}
	// Demand exceeds holdings: give nothing.
	m.Observe("hot", 50)
	if got := keyed.Grant(100, 1); got != 0 {
		t.Fatalf("starved grant = %d, want 0", got)
	}
	// The reservation is per-key: a cold key is unaffected.
	cold := d.ForKey("cold")
	if got := cold.Grant(100, 30); got != 50 {
		t.Fatalf("cold grant = %d, want 50", got)
	}
}

func TestGrantDemandAwareDefaults(t *testing.T) {
	d := GrantDemandAware{} // nil meter, zero horizon
	if d.Name() != "demand-aware" {
		t.Fatal("name")
	}
	if d.Request(7) != 7 {
		t.Fatal("request")
	}
	// free=100, half=50; the request (200) exceeds free, so the grant
	// stays at half — never more than the donor can spare.
	if got := d.Grant(100, 200); got != 50 {
		t.Fatalf("nil-meter grant = %d, want 50", got)
	}
}

func TestKeyedDeciderInterface(t *testing.T) {
	var d Decider = GrantDemandAware{Meter: NewMeter(0.2)}
	if _, ok := d.(KeyedDecider); !ok {
		t.Fatal("GrantDemandAware must implement KeyedDecider")
	}
	var plain Decider = GrantHalf{}
	if _, ok := plain.(KeyedDecider); ok {
		t.Fatal("GrantHalf must not be keyed")
	}
}
