package core

// AVTable is the accelerator's view of an Allowable Volume table. The
// canonical implementation is av.Table (volatile); avstore.Store wraps
// it with a journal so a site's AV survives restarts without breaking
// the global conservation argument (it may only *under*-count after a
// crash, never over-count — lost slack is safe, minted slack is not).
type AVTable interface {
	// Define declares (or adds to) the AV for key.
	Define(key string, initial int64) error
	// Defined reports whether key carries an AV (the checking function).
	Defined(key string) bool
	// Avail returns the free volume; Held the reserved volume; Total
	// their sum.
	Avail(key string) int64
	Held(key string) int64
	Total(key string) int64
	// AcquireUpTo reserves up to want units and returns how many.
	AcquireUpTo(key string, want int64) (int64, error)
	// Acquire reserves exactly n units or nothing.
	Acquire(key string, n int64) (bool, error)
	// CreditHeld adds transferred-in units directly to the reservation.
	CreditHeld(key string, n int64) error
	// Release moves n reserved units back to available (abort/surplus).
	Release(key string, n int64) error
	// Consume destroys n reserved units (commit of a decrement).
	Consume(key string, n int64) error
	// Credit adds n fresh available units (increment or inbound grant).
	Credit(key string, n int64) error
	// Debit removes up to n available units for an outbound transfer and
	// returns how many were taken.
	Debit(key string, n int64) (int64, error)
	// Keys lists defined keys; Snapshot maps key -> available volume.
	Keys() []string
	Snapshot() map[string]int64
}
