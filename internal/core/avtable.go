package core

import "avdb/internal/av"

// AVTable is the accelerator's view of an Allowable Volume table. The
// canonical implementation is av.Table (volatile); avstore.Store wraps
// it with a journal so a site's AV survives restarts without breaking
// the global conservation argument (it may only *under*-count after a
// crash, never over-count — lost slack is safe, minted slack is not).
type AVTable interface {
	// Define declares (or adds to) the AV for key.
	Define(key string, initial int64) error
	// Defined reports whether key carries an AV (the checking function).
	Defined(key string) bool
	// Avail returns the free volume; Held the reserved volume; Total
	// their sum.
	Avail(key string) int64
	Held(key string) int64
	Total(key string) int64
	// AcquireUpTo reserves up to want units and returns how many.
	AcquireUpTo(key string, want int64) (int64, error)
	// Acquire reserves exactly n units or nothing.
	Acquire(key string, n int64) (bool, error)
	// CreditHeld adds transferred-in units directly to the reservation.
	CreditHeld(key string, n int64) error
	// Release moves n reserved units back to available (abort/surplus).
	Release(key string, n int64) error
	// Consume destroys n reserved units (commit of a decrement).
	Consume(key string, n int64) error
	// Credit adds n fresh available units (increment or inbound grant).
	Credit(key string, n int64) error
	// Debit removes up to n available units for an outbound transfer and
	// returns how many were taken.
	Debit(key string, n int64) (int64, error)
	// EscrowDebit removes up to n available units for the outbound
	// transfer identified by xfer, parking them in escrow until the
	// transfer settles (units destroyed here, credited remotely) or
	// cancels (units refunded to available). Duplicate calls for a known
	// xfer return the originally escrowed amount; calls for an already
	// resolved xfer return 0.
	EscrowDebit(key string, xfer uint64, n int64) (int64, error)
	// ResolveEscrow finishes the transfer: refund=true returns the units
	// to available (cancel), refund=false destroys them (settle). It
	// returns the escrowed amount, or 0 for an unknown xfer.
	ResolveEscrow(xfer uint64, refund bool) (int64, error)
	// Escrowed returns the volume currently parked in escrow for key.
	Escrowed(key string) int64
	// AddObligation records a requester-side promise to settle or cancel
	// an inbound escrowed transfer; CompleteObligation discharges it;
	// Obligations lists the outstanding ones. Recorded *before* their
	// effects so a restarted site re-drives unfinished transfers.
	AddObligation(ob av.Obligation) error
	CompleteObligation(xfer uint64) error
	Obligations() []av.Obligation
	// Keys lists defined keys; Snapshot maps key -> available volume.
	Keys() []string
	Snapshot() map[string]int64
}
