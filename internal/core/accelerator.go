// Package core implements the paper's primary contribution: the
// accelerator. One accelerator runs at each site, owns the site's AV
// management table, and realizes both update disciplines behind a single
// Update call:
//
//   - checking — consult the AV table: a key with a defined AV is a
//     Delay Update (regular product); otherwise Immediate Update;
//   - Delay Update — spend local AV with zero communication (Fig. 3);
//     on shortage, hold what the site has and request transfers from
//     peers chosen by the selecting function, in volumes chosen by the
//     deciding function (Fig. 4);
//   - Immediate Update — delegate to the primary-copy two-phase commit
//     (Fig. 5).
//
// The accelerator never exposes AV to end users, holds AV reservations
// instead of exclusive locks, and compensates (releases) holds when an
// update cannot complete — exactly the behaviour §3.3 of the paper
// prescribes.
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/av"
	"avdb/internal/clock"
	"avdb/internal/failure"
	"avdb/internal/replica"
	"avdb/internal/rng"
	"avdb/internal/strategy"
	"avdb/internal/trace"
	"avdb/internal/transport"
	"avdb/internal/twopc"
	"avdb/internal/txn"
	"avdb/internal/wire"
)

// Accelerator errors.
var (
	// ErrInsufficientAV reports that the site's own AV plus everything
	// peers were willing to transfer did not cover the update. All
	// accumulated AV was returned to the local table (paper §3.3).
	ErrInsufficientAV = errors.New("core: insufficient allowable volume")
)

// Config parameterizes an Accelerator.
type Config struct {
	// Site is this accelerator's site.
	Site wire.SiteID
	// Base hosts the primary copy for Immediate Updates.
	Base wire.SiteID
	// Peers lists every other site.
	Peers []wire.SiteID
	// PeersFor, when non-nil, narrows the peer set per key: on a
	// partitioned cluster only the other replicas of the key's partition
	// hold its AV, receive its gossip, or participate in its Immediate
	// Updates, so every per-key interaction consults this instead of
	// Peers. Nil keeps the full-replication behaviour (all peers, for
	// every key) byte-identical to pre-partition builds.
	PeersFor func(key string) []wire.SiteID
	// OnCommit, when non-nil, observes every successfully committed
	// Delay Update at the site that applied it: (key, delta) exactly
	// once per commit, before Update returns. On partitioned clusters
	// the simulator's conservation oracle accounts from these
	// observations, because the site that *issued* a routed update
	// cannot always know whether the owner applied it (a lost reply
	// looks like a rejection). Immediate Updates are observed through
	// twopc.Options.Observer instead.
	OnCommit func(key string, delta int64)
	// Policy supplies the selecting and deciding functions
	// (default strategy.SODA99()).
	Policy strategy.Policy
	// Passes bounds how many times the full candidate list may be
	// re-consulted for one update (default 3). Within a pass each peer
	// is asked at most once.
	Passes int
	// RequestTimeout bounds each AV transfer call (default 2s).
	RequestTimeout time.Duration
	// Seed feeds the policy's randomness.
	Seed uint64
	// Demand, when non-nil, is fed the volume of every local decrement
	// so demand-aware deciding policies can forecast the site's own
	// needs (see strategy.GrantDemandAware).
	Demand DemandObserver
	// DisableGossip drops the AV-view piggyback on replies and ignores
	// received views — the A7 ablation isolating the value of the
	// paper's "information collected at the necessary communication".
	DisableGossip bool
	// Tracer records protocol spans (nil disables tracing).
	Tracer *trace.Tracer
	// Detector, when non-nil, feeds AV transfer outcomes into a failure
	// detector and makes the selecting step fail over: suspect peers are
	// demoted behind every healthy candidate, so a request reaches the
	// next-best AV holder instead of timing out on a dead one.
	Detector *failure.Detector
	// Escrow switches AV transfers to the escrowed protocol: grants are
	// parked in the granter's escrow under a unique transfer id and the
	// requester durably promises (before using the units) to settle or
	// cancel, so a crash on either side cannot mint AV — at worst it
	// strands slack until Reconcile re-drives the promise. Off by
	// default; the healthy-path experiments are byte-identical without
	// it.
	Escrow bool
	// Clock drives AV transfer call timeouts (nil means the real clock).
	Clock clock.Clock
	// XferSalt, when non-zero, seeds the transfer-id counter base instead
	// of wall-clock entropy, making transfer ids deterministic. The salt
	// must differ across a site's restarts (the simulator mixes a restart
	// epoch in) because granters tombstone resolved ids.
	XferSalt uint64
}

// DemandObserver receives the site's own consumption stream.
type DemandObserver interface {
	// Observe records that a local decrement consumed n units of key.
	Observe(key string, n int64)
}

// Stats counts accelerator outcomes; all fields are atomically updated.
type Stats struct {
	DelayLocal     atomic.Int64 // delay updates completed with no communication
	DelayTransfer  atomic.Int64 // delay updates that needed >= 1 AV transfer
	TransferRounds atomic.Int64 // total AV request round trips issued
	Immediate      atomic.Int64 // immediate updates attempted
	Insufficient   atomic.Int64 // delay updates failed for lack of AV
	Failovers      atomic.Int64 // candidate passes that demoted >= 1 suspect peer
	Settles        atomic.Int64 // escrowed transfers settled (units destroyed at granter)
	Cancels        atomic.Int64 // escrowed transfers canceled (units refunded at granter)
}

// Accelerator is one site's accelerator.
type Accelerator struct {
	cfg  Config
	avt  AVTable
	view *strategy.View
	tm   *txn.Manager
	iu   *twopc.Engine
	repl *replica.Replicator
	node transport.Node

	rmu sync.Mutex
	rnd *rng.Rand

	// xferBase + xferCtr mint transfer ids unique across this site's
	// restarts (the base is wall-clock entropy, the high bits the site).
	xferBase uint64
	xferCtr  atomic.Uint64

	stats Stats
}

// New assembles an accelerator from its site's components. Call SetNode
// once the transport endpoint exists.
func New(cfg Config, avt AVTable, tm *txn.Manager, iu *twopc.Engine, repl *replica.Replicator) *Accelerator {
	if cfg.Policy.Selector == nil || cfg.Policy.Decider == nil {
		cfg.Policy = strategy.SODA99()
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 3
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	xferBase := uint64(time.Now().UnixNano()) & (1<<40 - 1)
	if cfg.XferSalt != 0 {
		// Deterministic base: a splitmix64 finalization of the salt, so
		// nearby salts (site/epoch increments) land far apart.
		z := cfg.XferSalt + 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		xferBase = (z ^ (z >> 31)) & (1<<40 - 1)
	}
	return &Accelerator{
		cfg:      cfg,
		avt:      avt,
		view:     strategy.NewView(),
		tm:       tm,
		iu:       iu,
		repl:     repl,
		rnd:      rng.New(cfg.Seed ^ (uint64(cfg.Site) << 32)),
		xferBase: xferBase,
	}
}

// nextXfer mints a transfer id: site in the high bits, a wall-clock
// seeded counter in the low 40. Restart uniqueness matters because the
// granter tombstones resolved ids — a reused id would be refused.
func (a *Accelerator) nextXfer() uint64 {
	return uint64(a.cfg.Site)<<40 | ((a.xferBase + a.xferCtr.Add(1)) & (1<<40 - 1))
}

// SetNode attaches the transport endpoint.
func (a *Accelerator) SetNode(n transport.Node) { a.node = n }

// AV exposes the AV table (examples and experiments inspect it).
func (a *Accelerator) AV() AVTable { return a.avt }

// View exposes the gossiped AV view.
func (a *Accelerator) View() *strategy.View { return a.view }

// Stats exposes the outcome counters.
func (a *Accelerator) Stats() *Stats { return &a.stats }

// Path says which discipline handled an update.
type Path int

// Update paths.
const (
	PathDelayLocal Path = iota
	PathDelayTransfer
	PathImmediate
)

// String names the path.
func (p Path) String() string {
	switch p {
	case PathDelayLocal:
		return "delay-local"
	case PathDelayTransfer:
		return "delay-transfer"
	default:
		return "immediate"
	}
}

// Result describes a completed update.
type Result struct {
	Path        Path
	Rounds      int   // AV transfer round trips used
	Transferred int64 // AV received from peers
	// LSN is the applying site's storage cursor as of the commit: a
	// read-plane session token minted from it (ReadToken{Site, LSN})
	// guarantees read-your-writes, because the committed batch's LSN is
	// <= LSN. It can over-approximate (include concurrent commits),
	// which only makes the guarantee stricter. Zero when the update
	// failed.
	LSN uint64
	// Site is the site whose plane LSN refers to: the accelerator's own
	// for local commits, the serving replica's for forwarded ones. A
	// token minted from (Site, LSN) must gate that site's read plane —
	// the origin's plane never saw a forwarded commit. Meaningful only
	// when LSN is nonzero.
	Site wire.SiteID
}

// Update applies delta to key using the appropriate discipline. This is
// the accelerator's single entry point: the checking function decides
// the path.
func (a *Accelerator) Update(ctx context.Context, key string, delta int64) (Result, error) {
	var res Result
	var err error
	if a.avt.Defined(key) {
		res, err = a.delayUpdate(ctx, key, delta)
	} else {
		a.stats.Immediate.Add(1)
		err = a.iu.Update(ctx, a.peersFor(key), key, delta)
		res = Result{Path: PathImmediate}
	}
	if err == nil {
		res.LSN = a.tm.Engine().LastLSN()
		res.Site = a.cfg.Site
	}
	return res, err
}

// peersFor returns the peer set for one key's protocol interactions:
// the key's partition replicas when a router narrows them, every peer
// otherwise.
func (a *Accelerator) peersFor(key string) []wire.SiteID {
	if a.cfg.PeersFor != nil {
		return a.cfg.PeersFor(key)
	}
	return a.cfg.Peers
}

// delayUpdate is the Delay Update path (Figs. 3 and 4).
func (a *Accelerator) delayUpdate(ctx context.Context, key string, delta int64) (Result, error) {
	if delta >= 0 {
		// An increment creates slack: apply locally and credit the AV.
		if err := a.applyLocal(ctx, key, delta); err != nil {
			return Result{}, err
		}
		// Observe before the credit: a conservation checker watching
		// expected stock must never see the freshly minted AV precede the
		// stock that justifies it.
		if a.cfg.OnCommit != nil {
			a.cfg.OnCommit(key, delta)
		}
		if err := a.avt.Credit(key, delta); err != nil {
			return Result{}, err
		}
		a.stats.DelayLocal.Add(1)
		return Result{Path: PathDelayLocal}, nil
	}

	need := -delta
	if a.cfg.Demand != nil {
		a.cfg.Demand.Observe(key, need)
	}
	got, err := a.avt.AcquireUpTo(key, need)
	if err != nil {
		return Result{}, err
	}
	rounds := 0
	var transferred int64

	if got < need {
		// Hold what we have and shop for the shortage.
		got2, rounds2, transferred2, err := a.gatherAV(ctx, key, need, got)
		got, rounds, transferred = got2, rounds2, transferred2
		if err != nil {
			// Store all accumulated AV back in the local table (§3.3).
			if relErr := a.avt.Release(key, got); relErr != nil {
				return Result{}, relErr
			}
			a.stats.Insufficient.Add(1)
			return Result{Rounds: rounds, Transferred: transferred}, err
		}
	}

	// Enough volume is held: apply the update, spend the AV, return any
	// surplus from generous grants to the table. On a durable site both
	// steps ride the group-commit pipeline — applyLocal returns once the
	// storage WAL record is durable, Consume once the AV journal record
	// is — so many concurrent zero-communication decrements share fsyncs
	// instead of paying one each, and nothing observable (the caller's
	// return, the surplus release) happens before the covering LSN is
	// stable. With epoch commit on, both waits ride epoch boundaries
	// instead — same durable-before-observable rule, one covering fsync
	// per epoch rather than per group.
	if err := a.applyLocal(ctx, key, delta); err != nil {
		a.avt.Release(key, got)
		return Result{}, err
	}
	if err := a.avt.Consume(key, need); err != nil {
		return Result{}, err
	}
	if got > need {
		if err := a.avt.Release(key, got-need); err != nil {
			return Result{}, err
		}
	}
	res := Result{Path: PathDelayLocal, Rounds: rounds, Transferred: transferred}
	if rounds > 0 {
		res.Path = PathDelayTransfer
		a.stats.DelayTransfer.Add(1)
	} else {
		a.stats.DelayLocal.Add(1)
	}
	if a.cfg.OnCommit != nil {
		a.cfg.OnCommit(key, delta)
	}
	return res, nil
}

// gatherAV requests AV transfers until the hold reaches need or the
// candidate passes are exhausted. It returns the final hold size, the
// number of request rounds, and the total volume received.
func (a *Accelerator) gatherAV(ctx context.Context, key string, need, got int64) (_ int64, _ int, _ int64, err error) {
	ctx, sp := a.cfg.Tracer.Start(ctx, a.cfg.Site, "av.gather")
	if sp != nil {
		sp.SetAttr("key", key)
		sp.SetAttr("need", strconv.FormatInt(need, 10))
		defer func() { sp.Finish(err) }()
	}
	rounds := 0
	var transferred int64
	for pass := 0; pass < a.cfg.Passes && got < need; pass++ {
		cands := a.view.Candidates(key, a.peersFor(key))
		a.rmu.Lock()
		cands = a.cfg.Policy.Selector.Order(cands, a.rnd)
		a.rmu.Unlock()
		cands = a.demoteSuspects(cands)
		progress := false
		for _, c := range cands {
			if got >= need {
				break
			}
			req := a.cfg.Policy.Decider.Request(need - got)
			msg := &wire.AVRequest{Key: key, Amount: req}
			var xfer uint64
			if a.cfg.Escrow {
				xfer = a.nextXfer()
				msg.Xfer = xfer
			}
			cctx, cancel := clock.WithTimeout(ctx, a.cfg.Clock, a.cfg.RequestTimeout)
			reply, err := a.node.Call(cctx, c.Site, msg)
			cancel()
			rounds++
			a.stats.TransferRounds.Add(1)
			if err != nil {
				// Unreachable peer: remember it as empty so the selector
				// deprioritizes it until we hear otherwise, and tell the
				// failure detector so the next selecting step fails over.
				if a.cfg.Detector != nil {
					a.cfg.Detector.ReportFailure(c.Site)
				}
				if xfer != 0 {
					// The grant may have landed in the peer's escrow even
					// though the reply never arrived; durably promise to
					// cancel it so the units are refunded, not stranded.
					if oerr := a.avt.AddObligation(av.Obligation{Xfer: xfer, Peer: uint32(c.Site), Cancel: true}); oerr != nil {
						return got, rounds, transferred, oerr
					}
				}
				a.view.Observe(c.Site, key, 0)
				continue
			}
			if a.cfg.Detector != nil {
				a.cfg.Detector.ReportSuccess(c.Site)
			}
			avr, ok := reply.(*wire.AVReply)
			if !ok {
				continue
			}
			if !a.cfg.DisableGossip {
				a.view.ObserveAll(avr.View)
			}
			if avr.Granted > 0 {
				if xfer != 0 {
					// Promise to settle *before* the credit becomes
					// spendable: a crash between the two loses the units
					// (the settle destroys the granter's escrow and we
					// never credited — lost slack, the safe direction),
					// whereas the opposite order could double them.
					if oerr := a.avt.AddObligation(av.Obligation{Xfer: xfer, Peer: uint32(c.Site)}); oerr != nil {
						return got, rounds, transferred, oerr
					}
				}
				if err := a.avt.CreditHeld(key, avr.Granted); err != nil {
					return got, rounds, transferred, err
				}
				got += avr.Granted
				transferred += avr.Granted
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	if got < need {
		return got, rounds, transferred, fmt.Errorf("%w: key %s need %d held %d after %d rounds",
			ErrInsufficientAV, key, need, got, rounds)
	}
	return got, rounds, transferred, nil
}

// demoteSuspects stably moves candidates the failure detector suspects
// behind every healthy one: the selecting function's order is kept
// within each class, but a request always tries the next-best healthy
// AV holder before burning a timeout on a suspect.
func (a *Accelerator) demoteSuspects(cands []strategy.Candidate) []strategy.Candidate {
	if a.cfg.Detector == nil {
		return cands
	}
	healthy := make([]strategy.Candidate, 0, len(cands))
	var suspect []strategy.Candidate
	for _, c := range cands {
		if a.cfg.Detector.Suspect(c.Site) {
			suspect = append(suspect, c)
		} else {
			healthy = append(healthy, c)
		}
	}
	if len(suspect) == 0 {
		return cands
	}
	a.stats.Failovers.Add(1)
	return append(healthy, suspect...)
}

// Reconcile re-drives the outstanding settle/cancel obligations of
// escrowed transfers: for each one it calls the granter with an
// AVSettle and discharges the obligation on acknowledgement. It returns
// the number of obligations still outstanding (peers that stayed
// unreachable) and the first error. Sites call this periodically and
// after restart; it is idempotent — the granter resolves each transfer
// at most once and acknowledges duplicates harmlessly.
func (a *Accelerator) Reconcile(ctx context.Context) (int, error) {
	obls := a.avt.Obligations()
	var firstErr error
	remaining := 0
	for _, ob := range obls {
		cctx, cancel := clock.WithTimeout(ctx, a.cfg.Clock, a.cfg.RequestTimeout)
		reply, err := a.node.Call(cctx, wire.SiteID(ob.Peer), &wire.AVSettle{Xfer: ob.Xfer, Cancel: ob.Cancel})
		cancel()
		if err != nil {
			if a.cfg.Detector != nil {
				a.cfg.Detector.ReportFailure(wire.SiteID(ob.Peer))
			}
			remaining++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if a.cfg.Detector != nil {
			a.cfg.Detector.ReportSuccess(wire.SiteID(ob.Peer))
		}
		if _, ok := reply.(*wire.AVSettleAck); !ok {
			remaining++
			continue
		}
		if err := a.avt.CompleteObligation(ob.Xfer); err != nil {
			remaining++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ob.Cancel {
			a.stats.Cancels.Add(1)
		} else {
			a.stats.Settles.Add(1)
		}
	}
	return remaining, firstErr
}

// Obligations exposes the outstanding transfer obligations.
func (a *Accelerator) Obligations() []av.Obligation { return a.avt.Obligations() }

// HandleSettle is the granter-side handler for AVSettle: it resolves
// the escrowed transfer (cancel refunds, settle destroys) and reports
// the amount. Unknown or already-resolved transfers acknowledge with
// amount 0, so retries and duplicates are harmless.
func (a *Accelerator) HandleSettle(ctx context.Context, from wire.SiteID, msg *wire.AVSettle) (*wire.AVSettleAck, error) {
	n, err := a.avt.ResolveEscrow(msg.Xfer, msg.Cancel)
	if err != nil {
		return nil, err
	}
	return &wire.AVSettleAck{Xfer: msg.Xfer, Amount: n}, nil
}

// applyLocal commits delta to the local database under a (brief)
// exclusive lock and records it for lazy propagation — atomically with
// the data when the site is durable.
func (a *Accelerator) applyLocal(ctx context.Context, key string, delta int64) error {
	tx := a.tm.Begin()
	if _, err := tx.ApplyDelta(ctx, key, delta); err != nil {
		tx.Abort()
		return err
	}
	_, err := a.repl.CommitWithRecord(tx, key, delta)
	return err
}

// HandleAVRequest is the peer-side handler for AV transfer requests: the
// deciding function computes the donation, the table enforces it, and
// the reply piggybacks this site's view so the requester's selecting
// function has fresher information (the paper's gossip: "information is
// collected at the necessary communication for AV management").
func (a *Accelerator) HandleAVRequest(ctx context.Context, from wire.SiteID, req *wire.AVRequest) *wire.AVReply {
	_, sp := a.cfg.Tracer.Start(ctx, a.cfg.Site, "av.grant")
	if sp != nil {
		sp.SetAttr("key", req.Key)
		defer sp.EndSpan()
	}
	decider := a.cfg.Policy.Decider
	if kd, ok := decider.(strategy.KeyedDecider); ok {
		decider = kd.ForKey(req.Key)
	}
	want := decider.Grant(a.avt.Avail(req.Key), req.Amount)
	var granted int64
	var err error
	if req.Xfer != 0 {
		// Escrowed transfer: the units leave avail but wait under the
		// transfer id until the requester settles or cancels, so a lost
		// reply can be refunded instead of stranding the grant.
		granted, err = a.avt.EscrowDebit(req.Key, req.Xfer, want)
	} else {
		granted, err = a.avt.Debit(req.Key, want)
	}
	if err != nil {
		granted = 0
	}
	if a.cfg.DisableGossip {
		return &wire.AVReply{Key: req.Key, Granted: granted}
	}
	// The requester asked because it is short; remember that.
	a.view.Observe(from, req.Key, 0)
	infos := []wire.AVInfo{{Site: a.cfg.Site, Key: req.Key, Avail: a.avt.Avail(req.Key)}}
	for _, p := range a.peersFor(req.Key) {
		if p == from {
			continue
		}
		if known, ok := a.view.Known(p, req.Key); ok {
			infos = append(infos, wire.AVInfo{Site: p, Key: req.Key, Avail: known})
		}
	}
	return &wire.AVReply{Key: req.Key, Granted: granted, View: infos}
}

// Read returns the site's current local value for key — the autonomous
// read the Delay discipline offers (fresh for local updates, eventually
// consistent for remote ones).
func (a *Accelerator) Read(key string) (int64, error) {
	return a.tm.Engine().Amount(key)
}
