package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"avdb/internal/av"
	"avdb/internal/failure"
	"avdb/internal/lockmgr"
	"avdb/internal/replica"
	"avdb/internal/storage"
	"avdb/internal/strategy"
	"avdb/internal/transport"
	"avdb/internal/transport/memnet"
	"avdb/internal/twopc"
	"avdb/internal/txn"
	"avdb/internal/wire"
)

// testSite is a minimal site: accelerator + components + dispatch.
type testSite struct {
	acc  *Accelerator
	avt  *av.Table
	eng  *storage.Engine
	repl *replica.Replicator
	iu   *twopc.Engine
}

func buildSites(t *testing.T, n int, initial int64, avPer int64, policy strategy.Policy) []*testSite {
	t.Helper()
	return buildSitesNet(t, n, initial, avPer, policy, memnet.Options{CallTimeout: time.Second})
}

func buildSitesNet(t *testing.T, n int, initial int64, avPer int64, policy strategy.Policy, opts memnet.Options) []*testSite {
	t.Helper()
	net := memnet.New(opts)
	sites := make([]*testSite, n)
	for i := 0; i < n; i++ {
		eng, err := storage.Open(storage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		eng.Put(storage.Record{Key: "k", Amount: initial})
		avt := av.NewTable()
		avt.Define("k", avPer)
		tm := txn.NewManager(eng, lockmgr.Options{WaitTimeout: 300 * time.Millisecond})
		iu := twopc.New(twopc.Options{Site: wire.SiteID(i), Base: 0, PrepareTimeout: 300 * time.Millisecond}, tm)
		repl := replica.New(wire.SiteID(i), eng)
		var peers []wire.SiteID
		for p := 0; p < n; p++ {
			if p != i {
				peers = append(peers, wire.SiteID(p))
			}
		}
		acc := New(Config{Site: wire.SiteID(i), Base: 0, Peers: peers, Policy: policy, Seed: 5}, avt, tm, iu, repl)
		ts := &testSite{acc: acc, avt: avt, eng: eng, repl: repl, iu: iu}
		node, err := net.Open(wire.SiteID(i), func(ts *testSite) transport.Handler {
			return func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
				switch m := msg.(type) {
				case *wire.AVRequest:
					return ts.acc.HandleAVRequest(ctx, from, m)
				case *wire.AVSettle:
					ack, _ := ts.acc.HandleSettle(ctx, from, m)
					return ack
				case *wire.IUPrepare:
					return ts.iu.HandlePrepare(ctx, from, m)
				case *wire.IUDecision:
					return ts.iu.HandleDecision(ctx, from, m)
				case *wire.DeltaSync:
					ack, _ := ts.repl.HandleSync(m)
					return ack
				}
				return nil
			}
		}(ts))
		if err != nil {
			t.Fatal(err)
		}
		acc.SetNode(node)
		iu.SetNode(node)
		sites[i] = ts
	}
	return sites
}

func TestDelayLocalWithinAV(t *testing.T) {
	sites := buildSites(t, 3, 100, 40, strategy.SODA99())
	res, err := sites[1].acc.Update(context.Background(), "k", -40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathDelayLocal || res.Rounds != 0 || res.Transferred != 0 {
		t.Fatalf("res = %+v", res)
	}
	if v, _ := sites[1].acc.Read("k"); v != 60 {
		t.Fatalf("value = %d", v)
	}
	if sites[1].avt.Avail("k") != 0 || sites[1].avt.Held("k") != 0 {
		t.Fatalf("AV not fully consumed: avail=%d held=%d",
			sites[1].avt.Avail("k"), sites[1].avt.Held("k"))
	}
	st := sites[1].acc.Stats()
	if st.DelayLocal.Load() != 1 || st.DelayTransfer.Load() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDelayTransferFig1Scenario(t *testing.T) {
	// Fig. 1: total stock 100, AVs 40/20/40. Site 1 updates -30: its 20
	// is short, it requests and receives 30 (our SODA99 grant = half of
	// 40 = 20, so it needs two rounds), ends with stock 70.
	net := memnet.New(memnet.Options{})
	_ = net
	sites := buildSites(t, 3, 100, 0, strategy.SODA99())
	sites[0].avt.Credit("k", 40)
	sites[1].avt.Credit("k", 20)
	sites[2].avt.Credit("k", 40)
	res, err := sites[1].acc.Update(context.Background(), "k", -30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathDelayTransfer {
		t.Fatalf("path = %v", res.Path)
	}
	if v, _ := sites[1].acc.Read("k"); v != 70 {
		t.Fatalf("site1 value = %d, want 70", v)
	}
	// Conservation: total AV across sites fell by exactly 30.
	sum := sites[0].avt.Total("k") + sites[1].avt.Total("k") + sites[2].avt.Total("k")
	if sum != 70 {
		t.Fatalf("AV sum = %d, want 70", sum)
	}
}

func TestGrantHalfLeavesDonorHalf(t *testing.T) {
	sites := buildSites(t, 2, 1000, 0, strategy.SODA99())
	sites[0].avt.Credit("k", 400)
	// Site 1 asks for 100; SODA99 donor gives half its holding = 200.
	res, err := sites[1].acc.Update(context.Background(), "k", -100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred != 200 {
		t.Fatalf("transferred = %d, want 200 (half of 400)", res.Transferred)
	}
	if sites[0].avt.Avail("k") != 200 {
		t.Fatalf("donor left with %d", sites[0].avt.Avail("k"))
	}
	// Surplus beyond the need stays at the requester.
	if sites[1].avt.Avail("k") != 100 {
		t.Fatalf("requester surplus = %d, want 100", sites[1].avt.Avail("k"))
	}
}

func TestInsufficientReturnsAccumulated(t *testing.T) {
	sites := buildSites(t, 3, 50, 10, strategy.Policy{Selector: strategy.MaxKnown{}, Decider: strategy.GrantAll{}})
	// Total AV 30 < need 40: fails, but the requester keeps what it
	// gathered (its own 10 + peers' 20), nothing is lost.
	_, err := sites[2].acc.Update(context.Background(), "k", -40)
	if !errors.Is(err, ErrInsufficientAV) {
		t.Fatalf("err = %v", err)
	}
	if v, _ := sites[2].acc.Read("k"); v != 50 {
		t.Fatalf("value mutated: %d", v)
	}
	sum := sites[0].avt.Total("k") + sites[1].avt.Total("k") + sites[2].avt.Total("k")
	if sum != 30 {
		t.Fatalf("AV sum = %d, want 30 (conserved)", sum)
	}
	if sites[2].avt.Avail("k") != 30 {
		t.Fatalf("requester stored %d, want all 30 accumulated", sites[2].avt.Avail("k"))
	}
	if sites[2].acc.Stats().Insufficient.Load() != 1 {
		t.Fatal("Insufficient not counted")
	}
}

func TestPositiveDeltaCreditsAV(t *testing.T) {
	sites := buildSites(t, 2, 10, 5, strategy.SODA99())
	if _, err := sites[0].acc.Update(context.Background(), "k", 90); err != nil {
		t.Fatal(err)
	}
	if sites[0].avt.Avail("k") != 95 {
		t.Fatalf("AV = %d, want 5+90", sites[0].avt.Avail("k"))
	}
	if v, _ := sites[0].acc.Read("k"); v != 100 {
		t.Fatalf("value = %d", v)
	}
}

func TestImmediatePathForUndefinedAV(t *testing.T) {
	sites := buildSites(t, 3, 100, 50, strategy.SODA99())
	for _, s := range sites {
		s.eng.Put(storage.Record{Key: "nonreg", Amount: 100, Class: storage.NonRegular})
	}
	res, err := sites[1].acc.Update(context.Background(), "nonreg", -60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathImmediate {
		t.Fatalf("path = %v", res.Path)
	}
	for i, s := range sites {
		if v, _ := s.eng.Amount("nonreg"); v != 40 {
			t.Fatalf("site %d = %d", i, v)
		}
	}
	if sites[1].acc.Stats().Immediate.Load() != 1 {
		t.Fatal("Immediate not counted")
	}
}

func TestHandleAVRequestGossip(t *testing.T) {
	sites := buildSites(t, 3, 100, 60, strategy.SODA99())
	// Teach site 0 something about site 2 first.
	sites[0].acc.View().Observe(2, "k", 33)
	reply := sites[0].acc.HandleAVRequest(context.Background(), 1, &wire.AVRequest{Key: "k", Amount: 10})
	if reply.Granted != 30 { // half of 60
		t.Fatalf("granted = %d", reply.Granted)
	}
	var sawSelf, sawPeer bool
	for _, info := range reply.View {
		if info.Site == 0 && info.Avail == 30 { // post-debit avail
			sawSelf = true
		}
		if info.Site == 2 && info.Avail == 33 {
			sawPeer = true
		}
	}
	if !sawSelf || !sawPeer {
		t.Fatalf("gossip view incomplete: %+v", reply.View)
	}
	// The donor noted that the requester is short.
	if n, ok := sites[0].acc.View().Known(1, "k"); !ok || n != 0 {
		t.Fatalf("requester not recorded as short: %d,%v", n, ok)
	}
}

func TestConcurrentDelayUpdatesShareAV(t *testing.T) {
	sites := buildSites(t, 2, 10000, 10000, strategy.SODA99())
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := sites[0].acc.Update(context.Background(), "k", -10); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v, _ := sites[0].acc.Read("k"); v != 9000 {
		t.Fatalf("value = %d, want 9000", v)
	}
	if sites[0].avt.Avail("k") != 9000 || sites[0].avt.Held("k") != 0 {
		t.Fatalf("AV avail=%d held=%d", sites[0].avt.Avail("k"), sites[0].avt.Held("k"))
	}
}

func TestPathString(t *testing.T) {
	if PathDelayLocal.String() != "delay-local" ||
		PathDelayTransfer.String() != "delay-transfer" ||
		PathImmediate.String() != "immediate" {
		t.Fatal("Path.String broken")
	}
}

func TestDisableGossipSuppressesView(t *testing.T) {
	sites := buildSites(t, 3, 1000, 0, strategy.SODA99())
	for _, s := range sites {
		s.avt.Credit("k", 300)
	}
	// Rebuild site 1's accelerator with gossip off (direct construction
	// keeps the same components).
	acc := sites[1].acc
	acc.cfg.DisableGossip = true
	reply := acc.HandleAVRequest(context.Background(), 2, &wire.AVRequest{Key: "k", Amount: 10})
	if len(reply.View) != 0 {
		t.Fatalf("gossip-off reply carries a view: %+v", reply.View)
	}
	if reply.Granted != 150 {
		t.Fatalf("granted = %d", reply.Granted)
	}
	// And received views are ignored on the request path.
	if _, err := acc.Update(context.Background(), "k", -400); err != nil {
		t.Fatal(err)
	}
	if _, ok := acc.View().Known(0, "k"); ok {
		t.Fatal("gossip-off accelerator learned from replies")
	}
}

type captureDemand struct {
	mu  sync.Mutex
	obs []int64
}

func (c *captureDemand) Observe(key string, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = append(c.obs, n)
}

func TestDemandObserverFed(t *testing.T) {
	sites := buildSites(t, 2, 1000, 500, strategy.SODA99())
	cap := &captureDemand{}
	sites[0].acc.cfg.Demand = cap
	if _, err := sites[0].acc.Update(context.Background(), "k", -30); err != nil {
		t.Fatal(err)
	}
	if _, err := sites[0].acc.Update(context.Background(), "k", 10); err != nil {
		t.Fatal(err) // increments are not demand
	}
	cap.mu.Lock()
	defer cap.mu.Unlock()
	if len(cap.obs) != 1 || cap.obs[0] != 30 {
		t.Fatalf("observations = %v", cap.obs)
	}
}

func TestEscrowTransferSettlesViaReconcile(t *testing.T) {
	sites := buildSites(t, 2, 1000, 0, strategy.SODA99())
	sites[0].avt.Credit("k", 400)
	sites[1].acc.cfg.Escrow = true

	res, err := sites[1].acc.Update(context.Background(), "k", -100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred != 200 {
		t.Fatalf("transferred = %d, want 200", res.Transferred)
	}
	// The grant is parked in the donor's escrow until settled, so the
	// cross-site sum of Totals transiently double-counts it...
	if got := sites[0].avt.Escrowed("k"); got != 200 {
		t.Fatalf("donor escrow = %d, want 200", got)
	}
	obls := sites[1].acc.Obligations()
	if len(obls) != 1 || obls[0].Cancel {
		t.Fatalf("obligations = %+v, want one settle", obls)
	}
	// ...and Reconcile destroys the escrow, restoring conservation:
	// 400 (donor) - 100 (spent) = 300.
	remaining, err := sites[1].acc.Reconcile(context.Background())
	if err != nil || remaining != 0 {
		t.Fatalf("Reconcile = %d, %v", remaining, err)
	}
	if got := sites[0].avt.Escrowed("k"); got != 0 {
		t.Fatalf("donor escrow after settle = %d", got)
	}
	if sum := sites[0].avt.Total("k") + sites[1].avt.Total("k"); sum != 300 {
		t.Fatalf("AV sum = %d, want 300", sum)
	}
	if len(sites[1].acc.Obligations()) != 0 {
		t.Fatal("obligation not discharged")
	}
	if sites[1].acc.Stats().Settles.Load() != 1 {
		t.Fatal("Settles not counted")
	}
}

// replyDropper drops AV replies while enabled, so the requester times
// out after the granter has already escrowed the grant.
type replyDropper struct{}

var dropReplies bool
var dropMu sync.Mutex

func (d *replyDropper) Intercept(from, to wire.SiteID, isReply bool, kind wire.Kind) transport.Fault {
	dropMu.Lock()
	defer dropMu.Unlock()
	return transport.Fault{Drop: dropReplies && isReply && kind == wire.KindAVReply}
}

func TestEscrowCancelRefundsLostGrant(t *testing.T) {
	dropMu.Lock()
	dropReplies = true
	dropMu.Unlock()
	sites := buildSitesNet(t, 2, 1000, 0, strategy.SODA99(),
		memnet.Options{CallTimeout: 100 * time.Millisecond, Interceptor: &replyDropper{}})
	sites[0].avt.Credit("k", 400)
	sites[1].acc.cfg.Escrow = true
	sites[1].acc.cfg.RequestTimeout = 50 * time.Millisecond

	// The donor escrows the grant, but the reply never arrives: the
	// update fails and the requester records cancel obligations.
	if _, err := sites[1].acc.Update(context.Background(), "k", -100); !errors.Is(err, ErrInsufficientAV) {
		t.Fatalf("err = %v, want insufficient", err)
	}
	if got := sites[0].avt.Escrowed("k"); got == 0 {
		t.Fatal("donor never escrowed — reply drop did not exercise the lost-grant path")
	}
	obls := sites[1].acc.Obligations()
	if len(obls) == 0 || !obls[0].Cancel {
		t.Fatalf("obligations = %+v, want cancels", obls)
	}

	// Heal the network; Reconcile cancels every stranded transfer and the
	// donor refunds in full. Nothing was lost or minted.
	dropMu.Lock()
	dropReplies = false
	dropMu.Unlock()
	remaining, err := sites[1].acc.Reconcile(context.Background())
	if err != nil || remaining != 0 {
		t.Fatalf("Reconcile = %d, %v", remaining, err)
	}
	if got := sites[0].avt.Escrowed("k"); got != 0 {
		t.Fatalf("donor escrow after cancel = %d", got)
	}
	if got := sites[0].avt.Avail("k"); got != 400 {
		t.Fatalf("donor avail after refund = %d, want 400", got)
	}
	if sites[1].acc.Stats().Cancels.Load() == 0 {
		t.Fatal("Cancels not counted")
	}
}

func TestFailoverSkipsSuspectPeer(t *testing.T) {
	sites := buildSites(t, 3, 1000, 0, strategy.Policy{Selector: strategy.MaxKnown{}, Decider: strategy.GrantAll{}})
	sites[0].avt.Credit("k", 1000)
	sites[2].avt.Credit("k", 300)
	// Site 1 believes site 0 is the best holder...
	sites[1].acc.View().Observe(0, "k", 1000)
	sites[1].acc.View().Observe(2, "k", 300)
	// ...but the failure detector suspects it.
	det := failure.NewDetector(0, nil)
	for i := 0; i < failure.FailureThreshold; i++ {
		det.ReportFailure(0)
	}
	if !det.Suspect(0) {
		t.Fatal("detector should suspect site 0")
	}
	sites[1].acc.cfg.Detector = det

	res, err := sites[1].acc.Update(context.Background(), "k", -100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathDelayTransfer {
		t.Fatalf("path = %v", res.Path)
	}
	// The healthy next-best holder supplied the transfer; the suspect was
	// never touched.
	if got := sites[0].avt.Avail("k"); got != 1000 {
		t.Fatalf("suspect peer was debited: avail = %d", got)
	}
	if got := sites[2].avt.Avail("k"); got != 0 {
		t.Fatalf("healthy peer not used: avail = %d", got)
	}
	if sites[1].acc.Stats().Failovers.Load() == 0 {
		t.Fatal("Failovers not counted")
	}
}

func TestSuspectPeerStillUsedAsLastResort(t *testing.T) {
	// Failover demotes suspects, it does not blacklist them: when no
	// healthy peer can cover the need, the suspect is still asked.
	sites := buildSites(t, 2, 1000, 0, strategy.Policy{Selector: strategy.MaxKnown{}, Decider: strategy.GrantAll{}})
	sites[0].avt.Credit("k", 500)
	sites[1].acc.View().Observe(0, "k", 500)
	det := failure.NewDetector(0, nil)
	for i := 0; i < failure.FailureThreshold; i++ {
		det.ReportFailure(0)
	}
	sites[1].acc.cfg.Detector = det

	if _, err := sites[1].acc.Update(context.Background(), "k", -200); err != nil {
		t.Fatal(err)
	}
	// Success reports healed the suspicion.
	if det.Suspect(0) {
		t.Fatal("successful call should clear suspicion")
	}
}
