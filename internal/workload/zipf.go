package workload

import (
	"fmt"
	"math"

	"avdb/internal/rng"
)

// ZipfConfig parameterizes the scale workload: SCM delta rules over a
// large key space with Zipfian popularity and optional site affinity.
// The generator draws from three independent substreams — site/delta,
// key rank, and affinity — so changing the key-space size or the skew
// exponent never perturbs the site and delta schedule, and enabling
// affinity never perturbs the key schedule.
type ZipfConfig struct {
	SCMConfig
	// Theta is the Zipfian skew exponent in [0, 1): 0 is uniform and
	// values near 1 concentrate traffic on few keys (default 0.99, the
	// YCSB convention).
	Theta float64
	// SiteAffinity is the probability an operation originates at its
	// key's home site instead of the SCM-drawn site. Useful with
	// partitioned clusters, where home-site updates avoid a forward hop.
	SiteAffinity float64
	// HomeSite maps a key to its home site (typically the partition
	// owner). Required when SiteAffinity > 0.
	HomeSite func(key string) int
}

// Zipf generates SCM-shaped updates with Zipfian key popularity. Ranks
// are scattered across the catalog with a coprime multiplier so the hot
// keys are spread over partitions instead of clustering at the low
// indices.
type Zipf struct {
	cfg      ZipfConfig
	r        *rng.Rand // site + delta substream
	kr       *rng.Rand // key-rank substream
	ar       *rng.Rand // affinity substream
	makerMax int64
	retMax   int64
	rr       int

	n     int
	mult  uint64
	theta float64
	zetan float64
	half  float64 // 0.5^theta
	alpha float64
	eta   float64
}

// NewZipf builds the generator. len(cfg.Keys) is the key space; use
// Keys(n) for paper-style catalogs of any size.
func NewZipf(cfg ZipfConfig) (*Zipf, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("workload: need >= 1 site")
	}
	if len(cfg.Keys) == 0 {
		return nil, fmt.Errorf("workload: need >= 1 key")
	}
	if cfg.InitialAmount < 1 {
		return nil, fmt.Errorf("workload: need positive initial amount")
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.Theta < 0 || cfg.Theta >= 1 {
		return nil, fmt.Errorf("workload: zipf theta %v outside [0, 1)", cfg.Theta)
	}
	if cfg.SiteAffinity < 0 || cfg.SiteAffinity > 1 {
		return nil, fmt.Errorf("workload: site affinity %v outside [0, 1]", cfg.SiteAffinity)
	}
	if cfg.SiteAffinity > 0 && cfg.HomeSite == nil {
		return nil, fmt.Errorf("workload: site affinity needs a HomeSite map")
	}
	if cfg.MakerIncreaseFrac == 0 {
		cfg.MakerIncreaseFrac = 0.20
	}
	if cfg.RetailerDecreaseFrac == 0 {
		cfg.RetailerDecreaseFrac = 0.10
	}
	g := &Zipf{
		cfg:      cfg,
		r:        rng.New(cfg.Seed),
		kr:       rng.New(cfg.Seed ^ 0x21AF7E3D5B9C0441),
		ar:       rng.New(cfg.Seed ^ 0xAFF1A17E00C0FFEE),
		makerMax: int64(cfg.MakerIncreaseFrac * float64(cfg.InitialAmount)),
		retMax:   int64(cfg.RetailerDecreaseFrac * float64(cfg.InitialAmount)),
		n:        len(cfg.Keys),
		theta:    cfg.Theta,
	}
	if g.makerMax < 1 {
		g.makerMax = 1
	}
	if g.retMax < 1 {
		g.retMax = 1
	}
	// Knuth's multiplicative-hash constant, nudged until coprime with the
	// key count so rank -> index stays a bijection.
	g.mult = 2654435761
	for gcd(g.mult, uint64(g.n)) != 1 {
		g.mult++
	}
	// YCSB's bounded zipfian: precompute the generalized harmonic number
	// and the interpolation constants once; sampling is then one uniform
	// draw plus arithmetic.
	for i := 1; i <= g.n; i++ {
		g.zetan += 1 / math.Pow(float64(i), g.theta)
	}
	g.half = math.Pow(0.5, g.theta)
	g.alpha = 1 / (1 - g.theta)
	zeta2 := 1 + g.half
	g.eta = (1 - math.Pow(2/float64(g.n), 1-g.theta)) / (1 - zeta2/g.zetan)
	return g, nil
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// rank samples a Zipf-distributed rank in [0, n): rank 0 is the hottest.
func (g *Zipf) rank() int {
	u := g.kr.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+g.half {
		return 1
	}
	return int(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
}

// Next implements Generator. Draw order is fixed — key rank, then site,
// then one delta uniform, then (when enabled) affinity — and every draw
// happens on every call, so parameter changes cannot shift a substream.
func (g *Zipf) Next() Op {
	idx := int(uint64(g.rank()) * g.mult % uint64(g.n))
	key := g.cfg.Keys[idx]
	var site int
	if g.cfg.RoundRobinSites {
		site = g.rr % g.cfg.Sites
		g.rr++
	} else {
		site = g.r.Intn(g.cfg.Sites)
	}
	// One uniform covers the delta regardless of which site ends up
	// originating: the sign and bound follow the final site.
	u := g.r.Float64()
	if g.cfg.SiteAffinity > 0 && g.ar.Bool(g.cfg.SiteAffinity) {
		site = g.cfg.HomeSite(key)
	}
	var delta int64
	if site == 0 {
		delta = 1 + int64(u*float64(g.makerMax))
	} else {
		delta = -(1 + int64(u*float64(g.retMax)))
	}
	return Op{Site: site, Key: key, Delta: delta}
}
