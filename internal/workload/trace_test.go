package workload

import (
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	g, _ := NewSCM(scmCfg())
	var ops []Op
	for i := 0; i < 200; i++ {
		ops = append(ops, g.Next())
	}
	var b strings.Builder
	if err := WriteTrace(&b, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0 product-0001 25\n  \n2 product-0002 -7\n"
	ops, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Delta != 25 || ops[1].Site != 2 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"0 key\n",        // missing delta
		"x key 1\n",      // bad site
		"-1 key 1\n",     // negative site
		"0 key nope\n",   // bad delta
		"0 key 1 tail\n", // extra field
	} {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("trace %q accepted", in)
		}
	}
}

func TestReplaySequence(t *testing.T) {
	ops := []Op{{Site: 0, Key: "a", Delta: 1}, {Site: 1, Key: "b", Delta: -2}}
	r := NewReplay(ops)
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Next() != ops[0] || r.Next() != ops[1] {
		t.Fatal("replay order broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted replay did not panic")
		}
	}()
	r.Next()
}

func TestReplayLoop(t *testing.T) {
	r := NewReplay([]Op{{Key: "a"}, {Key: "b"}})
	r.Loop = true
	seq := ""
	for i := 0; i < 5; i++ {
		seq += r.Next().Key
	}
	if seq != "ababa" {
		t.Fatalf("seq = %q", seq)
	}
}

func TestTeeRecords(t *testing.T) {
	g, _ := NewSCM(scmCfg())
	tee := NewTee(g)
	var direct []Op
	for i := 0; i < 50; i++ {
		direct = append(direct, tee.Next())
	}
	if len(tee.Recorded) != 50 {
		t.Fatalf("recorded %d", len(tee.Recorded))
	}
	for i := range direct {
		if tee.Recorded[i] != direct[i] {
			t.Fatal("tee diverged from passthrough")
		}
	}
	// The recording replays to the same stream a fresh generator yields.
	g2, _ := NewSCM(scmCfg())
	for i, op := range tee.Recorded {
		if got := g2.Next(); got != op {
			t.Fatalf("op %d: %+v != %+v", i, got, op)
		}
	}
}
